// E2 — Figure 4: unmodified Ando Go-To-Centre-Of-SEC separates a pair of
// robots beyond V under (a) 1-Async and (b) 2-NestA scheduling, while KKNPS
// (with matching k) survives the same adversarial timelines.
#include <iostream>

#include "adversary/fig4.hpp"
#include "metrics/table.hpp"

using namespace cohesion;

int main() {
  std::cout << "E2 / Figure 4 — stale-snapshot separation of unmodified Ando (V = 1)\n\n";

  metrics::Table table({"variant", "ando_|XY|_final", "ando_breaks_V", "kknps_|XY|_final",
                        "kknps_breaks_V", "schedule_certified", "search_trials"});

  for (const auto variant : {adversary::Fig4Variant::kOneAsync, adversary::Fig4Variant::kTwoNestA}) {
    const adversary::Fig4Result r = adversary::find_fig4_counterexample(variant, 200000, 42);
    table.add_row(variant == adversary::Fig4Variant::kOneAsync ? "1-Async" : "2-NestA",
                  r.final_separation, r.ando_separates ? "YES" : "no", r.kknps_separation,
                  r.kknps_separates ? "YES" : "no", r.schedule_valid ? "yes" : "NO",
                  r.trials_used);
    if (!r.initial.empty()) {
      std::cout << "  configuration (" << (variant == adversary::Fig4Variant::kOneAsync
                                               ? "1-Async"
                                               : "2-NestA")
                << "): A=(" << r.initial[0].x << "," << r.initial[0].y << ") B=(" << r.initial[1].x
                << "," << r.initial[1].y << ") C=(" << r.initial[2].x << "," << r.initial[2].y
                << ") X0=(" << r.initial[3].x << "," << r.initial[3].y << ") Y0=("
                << r.initial[4].x << "," << r.initial[4].y << ")\n";
    }
  }
  std::cout << '\n';
  table.print();
  std::cout << "\nExpected shape (paper Fig. 4): Ando > 1 in both variants; KKNPS <= 1.\n";
  return 0;
}
