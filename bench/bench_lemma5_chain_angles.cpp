// E4 — Figures 10-14 / Lemma 5: the chain-angle invariant along engaged
// robot pairs. Lemma 5 proves that in any would-be "doomed engagement" every
// chain angle satisfies cos(theta) >= sqrt((2+sqrt(3))/4) ~ 0.9659 and
// |e_t| > V cos(theta_t). We simulate long 1-Async and k-Async engagements
// of robot pairs running KKNPS near the visibility threshold and report the
// empirical extremes of the corresponding chain quantities: separations
// never approach the doom threshold, matching the theorem.
#include <cmath>
#include <iostream>
#include <random>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "core/visibility.hpp"
#include "geometry/angles.hpp"
#include "metrics/configurations.hpp"
#include "metrics/table.hpp"
#include "sched/asynchronous.hpp"

using namespace cohesion;
using geom::Vec2;

int main() {
  std::cout << "E4 / Lemma 5 — engagement chains of robot pairs under k-Async (V = 1)\n\n";
  const double bound = std::sqrt((2.0 + std::sqrt(3.0)) / 4.0);
  std::cout << "Lemma 5 bound: cos(theta) >= " << bound << "\n\n";

  metrics::Table table({"k", "pairs", "activations", "max_pair_separation/V", "min_cos_turn",
                        "doomed_chains"});

  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    const algo::KknpsAlgorithm algo({.k = k});
    double worst_sep = 0.0;
    double min_cos = 1.0;
    int doomed = 0;
    int pairs = 0;

    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
      // A pair at the visibility threshold, plus anchors pulling them apart:
      // the hardest regime for visibility preservation.
      std::vector<Vec2> initial{{0.0, 0.0}, {0.999, 0.0}, {-0.9, 0.0}, {1.899, 0.0}};
      ++pairs;
      sched::KAsyncScheduler::Params p;
      p.k = k;
      p.seed = seed;
      p.min_duration = 0.5;
      p.max_duration = 4.0;
      p.xi = 0.3;
      sched::KAsyncScheduler sched(initial.size(), p);
      core::EngineConfig cfg;
      cfg.visibility.radius = 1.0;
      cfg.seed = seed;
      core::Engine engine(initial, algo, sched, cfg);
      engine.run(4000);

      // Walk the trace of the central pair (robots 0 and 1) and measure the
      // chain quantities: consecutive endpoint edges and their turn angles.
      const core::Trace& trace = engine.trace();
      Vec2 prev_edge{};
      bool have_prev = false;
      const double end = trace.end_time();
      for (double t = 0.0; t <= end; t += 0.5) {
        const auto c = trace.configuration(t);
        const double sep = c[0].distance_to(c[1]);
        worst_sep = std::max(worst_sep, sep);
        if (sep > 1.0 + 1e-9) ++doomed;
        const Vec2 edge = c[1] - c[0];
        // Lemma 5 concerns chains of near-threshold edges (a doomed
        // engagement needs |e_t| > V cos(theta)); once the pair has begun
        // to congregate the edge direction is meaningless, so only measure
        // turns while the edge is still load-bearing.
        if (have_prev && edge.norm() > 0.9 && prev_edge.norm() > 0.9) {
          const double cosv = edge.normalized().dot(prev_edge.normalized());
          min_cos = std::min(min_cos, cosv);
        }
        prev_edge = edge;
        have_prev = true;
      }
    }
    table.add_row(k, pairs, 4000, worst_sep, min_cos, doomed);
  }
  table.print();
  std::cout << "\nExpected shape: max separation stays <= 1 (no doomed chains) for every\n"
            << "k, and the pair edge turns slowly (cos near 1) — consistent with the\n"
            << "Lemma 5 invariant that a separating chain would need cos(theta) >= "
            << bound << ",\nwhich the safe regions make unreachable.\n";
  return 0;
}
