// E3 — Figures 5-9 / Lemmas 1-2: Monte-Carlo certification of the reach
// regions R^{j V/(8k)}_{Y0}(X0, X1). For each k we simulate chains of j <= k
// scaled safe moves against stationary and moving neighbours and count
// containment violations (the lemmas say: zero), plus the share of endpoints
// that needed the bulge (i.e. escaped the core) — the quantity Fig. 5
// illustrates.
#include <algorithm>
#include <iostream>
#include <random>
#include <vector>

#include "geometry/angles.hpp"
#include "geometry/reach_region.hpp"
#include "geometry/safe_region.hpp"
#include "metrics/table.hpp"

using namespace cohesion;
using geom::Vec2;

int main() {
  std::cout << "E3 / Figures 5-9, Lemmas 1-2 — reach-region containment (V = 1)\n\n";
  metrics::Table table({"k", "trials", "lemma1_violations", "lemma2_violations",
                        "bulge_only_endpoints", "max_endpoint_dist"});

  const double v = 1.0;
  for (const std::size_t k : {1u, 2u, 3u, 4u, 6u, 8u}) {
    std::mt19937_64 rng(4242 + k);
    std::uniform_real_distribution<double> u01(0.0, 1.0);
    std::uniform_real_distribution<double> ang(-geom::kPi, geom::kPi);
    const double r = v / (8.0 * static_cast<double>(k));

    const int trials = 4000;
    int viol1 = 0, viol2 = 0, bulge_only = 0;
    double max_dist = 0.0;

    for (int t = 0; t < trials; ++t) {
      const Vec2 y0{0.0, 0.0};
      const Vec2 x0 = geom::unit(ang(rng)) * (0.5 * v + 0.5 * v * u01(rng));
      // Lemma 1: stationary neighbour.
      {
        Vec2 y = y0;
        for (std::size_t j = 1; j <= k; ++j) {
          const geom::Circle s = geom::kknps_safe_region(y, x0, r);
          y = s.center + geom::unit(ang(rng)) * (s.radius * u01(rng));
          const geom::Circle bound =
              geom::kknps_safe_region(y0, x0, static_cast<double>(j) * r);
          if (!bound.contains(y, 1e-9)) ++viol1;
        }
      }
      // Lemma 2: neighbour moving monotonically X0 -> X1.
      {
        Vec2 x1 = x0 + geom::unit(ang(rng)) * (v / 8.0 * u01(rng));
        std::vector<double> prog(k);
        for (auto& p : prog) p = u01(rng);
        std::sort(prog.begin(), prog.end());
        Vec2 y = y0;
        for (std::size_t j = 1; j <= k; ++j) {
          const Vec2 xs = geom::lerp(x0, x1, prog[j - 1]);
          if (geom::almost_equal(xs, y, 1e-9)) continue;
          const geom::Circle s = geom::kknps_safe_region(y, xs, r);
          y = s.center + geom::unit(ang(rng)) * (s.radius * u01(rng));
          const geom::ReachRegion bound(y0, x0, x1, static_cast<double>(j) * r);
          const bool core = bound.core_contains(y, 1e-7);
          const bool in = core || bound.bulge_contains(y, 1e-7);
          if (!in) ++viol2;
          if (!core && in && j == k) ++bulge_only;
        }
        max_dist = std::max(max_dist, y.norm());
      }
    }
    table.add_row(k, trials, viol1, viol2, bulge_only, max_dist);
  }
  table.print();
  std::cout << "\nExpected shape: zero violations for all k (Lemmas 1-2); endpoint\n"
            << "distances stay below k * V/(4k) = V/4; a small share of endpoints\n"
            << "requires the bulge, which is why the core alone is not a valid bound\n"
            << "(paper Fig. 5).\n";
  return 0;
}
