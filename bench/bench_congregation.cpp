// E6 — §5 / Figures 16-17 / Lemma 8: incremental congregation. Tracks the
// monotone decay of hull diameter and perimeter under KKNPS and reports
// rounds-to-halve-diameter as a function of n and the scheduling model.
#include <iostream>
#include <memory>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "geometry/convex_hull.hpp"
#include "metrics/configurations.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "sched/asynchronous.hpp"
#include "sched/synchronous.hpp"

using namespace cohesion;

namespace {

std::unique_ptr<core::Scheduler> make_scheduler(const std::string& kind, std::size_t n,
                                                std::size_t k, std::uint64_t seed) {
  if (kind == "SSync") {
    sched::SSyncScheduler::Params p;
    p.seed = seed;
    return std::make_unique<sched::SSyncScheduler>(n, p);
  }
  if (kind == "k-NestA") {
    sched::KNestAScheduler::Params p;
    p.k = k;
    p.seed = seed;
    p.xi = 0.5;
    return std::make_unique<sched::KNestAScheduler>(n, p);
  }
  sched::KAsyncScheduler::Params p;
  p.k = k;
  p.seed = seed;
  p.xi = 0.5;
  return std::make_unique<sched::KAsyncScheduler>(n, p);
}

}  // namespace

int main() {
  std::cout << "E6 / §5 congregation — hull decay and rounds-to-halve (V = 1)\n\n";

  metrics::Table table({"scheduler", "k", "n", "initial_diam", "final_diam", "rounds",
                        "rounds_to_halve", "hull_monotone"});

  for (const std::string kind : {"SSync", "k-NestA", "k-Async"}) {
    for (const std::size_t n : {8u, 16u, 32u, 64u}) {
      const std::size_t k = kind == "SSync" ? 1 : 2;
      const algo::KknpsAlgorithm algo({.k = k});
      const auto initial =
          metrics::random_connected_configuration(n, 0.4 * std::sqrt(double(n)), 1.0, 300 + n);
      auto sched = make_scheduler(kind, n, k, 17 + n);
      core::EngineConfig cfg;
      cfg.visibility.radius = 1.0;
      cfg.seed = 55 + n;
      core::Engine engine(initial, algo, *sched, cfg);
      engine.run_until_converged(0.05, n * 4000);

      const auto rep = metrics::analyze(engine.trace(), 1.0, 0.05);

      // Hull-perimeter monotonicity along round boundaries (Lemma 8's
      // mechanism: each epsilon-neighbourhood evacuation shortens it).
      bool monotone = true;
      double prev = 1e18;
      for (const double t : engine.trace().round_boundaries()) {
        const auto hull = geom::convex_hull(engine.trace().configuration(t));
        const double per = geom::polygon_perimeter(hull);
        if (per > prev + 1e-7) monotone = false;
        prev = per;
      }

      table.add_row(kind, k, n, rep.initial_diameter, rep.final_diameter, rep.rounds,
                    rep.rounds_to_halve, monotone ? "yes" : "NO");
    }
  }
  table.print();
  std::cout << "\nExpected shape: hull perimeter monotone in every run; rounds-to-halve\n"
            << "grows mildly with n; convergence in every scheduling model (§5).\n";
  return 0;
}
