// E6 — §5 / Figures 16-17 / Lemma 8: incremental congregation. Tracks the
// monotone decay of hull diameter and perimeter under KKNPS and reports
// rounds-to-halve-diameter as a function of n and the scheduling model.
//
// Declarative form: one run::ExperimentSpec with two axes — a scheduler
// axis (SSync / k-NestA / k-Async variants, each carrying its matching
// algorithm k) crossed with a swarm-size axis (n, the activation budget
// and the world radius scale together) — executed by run::BatchRunner
// with a trace-metric hook checking Lemma 8's hull-perimeter
// monotonicity along round boundaries.
#include <cmath>
#include <iostream>
#include <thread>

#include "core/engine.hpp"
#include "geometry/convex_hull.hpp"
#include "metrics/table.hpp"
#include "run/batch_runner.hpp"

using namespace cohesion;

namespace {

run::Json scheduler_case(const std::string& kind, std::size_t k) {
  run::Json j = run::Json::object();
  j.set("label", kind);
  run::Json sched = run::Json::object();
  sched.set("type", kind == "SSync" ? "ssync" : (kind == "k-NestA" ? "knesta" : "kasync"));
  run::Json sched_params = run::Json::object();
  if (kind != "SSync") {
    sched_params.set("k", k);
    sched_params.set("xi", 0.5);
  }
  sched.set("params", sched_params);
  j.set("scheduler", sched);
  run::Json algo = run::Json::object();
  run::Json algo_params = run::Json::object();
  algo_params.set("k", k);
  algo.set("params", algo_params);
  j.set("algorithm", algo);
  return j;
}

run::Json size_case(std::size_t n) {
  run::Json j = run::Json::object();
  j.set("label", "n=" + std::to_string(n));
  j.set("n", n);
  run::Json stop = run::Json::object();
  stop.set("max_activations", n * 4000);
  j.set("stop", stop);
  return j;
}

/// Lemma 8's mechanism: each epsilon-neighbourhood evacuation shortens the
/// hull perimeter, so the series along round boundaries never grows.
double hull_perimeter_monotone(const run::RunSpec&, const core::Engine& engine) {
  double prev = 1e18;
  for (const double t : engine.trace().round_boundaries()) {
    const auto hull = geom::convex_hull(engine.trace().configuration(t));
    const double per = geom::polygon_perimeter(hull);
    if (per > prev + 1e-7) return 0.0;
    prev = per;
  }
  return 1.0;
}

}  // namespace

int main() {
  std::cout << "E6 / §5 congregation — hull decay and rounds-to-halve (V = 1)\n\n";

  run::ExperimentSpec experiment;
  experiment.name = "congregation";
  experiment.base.name = "e6";
  experiment.base.seed = 300;
  experiment.base.algorithm = {.type = "kknps"};
  // world radius 0.4 * sqrt(n) * v keeps density constant across the n axis.
  experiment.base.initial = {.type = "random",
                             .params = run::Json::parse(R"({"world_radius_per_sqrt_n": 0.4})")};
  experiment.base.stop.epsilon = 0.05;

  run::SweepAxis sched_axis;
  sched_axis.path = "";
  sched_axis.values = {scheduler_case("SSync", 1), scheduler_case("k-NestA", 2),
                       scheduler_case("k-Async", 2)};
  run::SweepAxis size_axis;
  size_axis.path = "";
  for (const std::size_t n : {8u, 16u, 32u, 64u}) size_axis.values.push_back(size_case(n));
  experiment.axes = {sched_axis, size_axis};

  std::cout << "spec: " << experiment.to_json().dump() << "\n\n";

  run::BatchRunner::Options options;
  options.threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  options.trace_metric = hull_perimeter_monotone;
  const run::BatchResult result = run::BatchRunner(options).run(experiment);

  metrics::Table table({"scheduler", "n", "initial_diam", "final_diam", "rounds",
                        "rounds_to_halve", "hull_monotone"});
  for (const run::RunOutcome& o : result.outcomes) {
    table.add_row(o.label, o.n, o.report.initial_diameter, o.report.final_diameter,
                  o.report.rounds, o.report.rounds_to_halve, o.custom >= 1.0 ? "yes" : "NO");
  }
  table.print();
  std::cout << "\n(" << result.outcomes.size() << " runs, " << result.threads << " threads, "
            << result.wall_seconds << " s)\n";
  std::cout << "\nExpected shape: hull perimeter monotone in every run; rounds-to-halve\n"
            << "grows mildly with n; convergence in every scheduling model (§5).\n";
  return 0;
}
