#!/usr/bin/env bash
# Runs every bench executable in the build tree with JSON output and distills
# the engine-throughput trajectory into BENCH_engine.json so successive PRs
# have a perf baseline to compare against. Also drives one declarative sweep
# (bench/specs/kasync_sweep.json) through the cohesion_run batch driver at 1
# and N worker threads: asserts the deterministic reports are byte-identical
# and records the wall-clock numbers + speedup in BENCH_engine.json. A
# second stage re-runs the same sweep as 3 cohesion_run --shard processes
# plus cohesion_merge and as a truncated-checkpoint --resume, byte-compares
# both against the single-process report (the shard-union and resume
# determinism contracts), and records the walls under shard_sweep. A third
# stage runs the sweep under cohesion_launch with an injected kill/stall/
# corrupt fault schedule and byte-compares the supervised report against
# the fresh run (the fault-tolerance contract), recording the wall under
# fault_sweep. A fourth stage runs one n=16384 spec in bounded-memory
# stream-trace mode (--trace-dir), asserts peak RSS under a fixed ceiling,
# byte-compares the report against the in-memory reference run and the
# cohesion_replay recomputation of the stream file, and records walls +
# RSS under stream_sweep. A fifth stage exercises the content-addressed
# result cache (cohesion_run --cache): the sweep cold into an empty
# cache, fully warm, and with one axis edited — asserting warm and
# mixed hit/miss reports byte-identical to their cold counterparts and
# that exactly the edited variants recompute — and records the walls
# under cache_sweep. A serve stage submits the sweep to a cohesion_serve
# work-queue daemon feeding two workers, SIGKILLs one mid-run, and
# byte-compares the served report (assembled across the 2 -> 1 elastic
# re-partition) against the fresh single-process run, recording the wall
# under serve_sweep.
#
# Usage: bench/run_benches.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  cmake build tree containing the bench_* executables (default: build)
#   OUT_DIR    where per-bench JSON and BENCH_engine.json land (default: bench/out)
#
# Env:
#   BENCH_MIN_TIME   --benchmark_min_time per bench (default 0.1s: trajectory
#                    tracking, not microbenchmark-grade precision)
#   BENCH_FILTER     glob over bench executable names (default: all)
set -euo pipefail

BUILD_DIR=${1:-build}
OUT_DIR=${2:-bench/out}
MIN_TIME=${BENCH_MIN_TIME:-0.1}
FILTER=${BENCH_FILTER:-bench_*}

cd "$(dirname "$0")/.."
mkdir -p "$OUT_DIR"

# Documentation must match the tree before numbers are recorded.
bash tools/check_docs.sh

found=0
for exe in "$BUILD_DIR"/$FILTER; do
  [ -x "$exe" ] || continue
  name=$(basename "$exe")
  found=1
  echo "== $name"
  "$exe" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
         --benchmark_out="$OUT_DIR/$name.json" --benchmark_out_format=json \
    > /dev/null || { echo "   FAILED (continuing)"; rm -f "$OUT_DIR/$name.json"; }
done
if [ "$found" = 0 ]; then
  echo "No bench executables under $BUILD_DIR/ — build with COHESION_BUILD_BENCHES=ON" >&2
  exit 1
fi

# Declarative batch sweep through cohesion_run: one spec, 1 vs N worker
# threads. The --no-timing reports must be byte-identical (deterministic
# seeding); the timed runs give the wall-clock scaling numbers.
BATCH_JSON="$OUT_DIR/batch_sweep_timing.json"
rm -f "$BATCH_JSON"
if [ -x "$BUILD_DIR/cohesion_run" ] && [ -f bench/specs/kasync_sweep.json ]; then
  NTHREADS=${BENCH_SWEEP_THREADS:-$(nproc)}
  echo "== cohesion_run sweep (1 vs $NTHREADS threads)"
  "$BUILD_DIR/cohesion_run" bench/specs/kasync_sweep.json --threads 1 --no-timing \
      --out "$OUT_DIR/sweep_t1.json" 2> /dev/null
  "$BUILD_DIR/cohesion_run" bench/specs/kasync_sweep.json --threads "$NTHREADS" --no-timing \
      --out "$OUT_DIR/sweep_tN.json" 2> /dev/null
  if ! cmp -s "$OUT_DIR/sweep_t1.json" "$OUT_DIR/sweep_tN.json"; then
    echo "ERROR: sweep results differ between 1 and $NTHREADS threads" >&2
    exit 1
  fi
  echo "   deterministic: 1-thread and $NTHREADS-thread reports byte-identical"
  t1=$("$BUILD_DIR/cohesion_run" bench/specs/kasync_sweep.json --threads 1 \
         --out "$OUT_DIR/sweep_timed.json" 2>&1 | sed -n 's/.* \([0-9.]*\) s)$/\1/p')
  tN=$("$BUILD_DIR/cohesion_run" bench/specs/kasync_sweep.json --threads "$NTHREADS" \
         --out "$OUT_DIR/sweep_timed.json" 2>&1 | sed -n 's/.* \([0-9.]*\) s)$/\1/p')
  python3 - "$BATCH_JSON" "$NTHREADS" "$t1" "$tN" "$OUT_DIR/sweep_timed.json" <<'EOF'
import json, sys
target, threads, t1, tn, report_path = sys.argv[1:6]
report = json.load(open(report_path))
runs = report["aggregate"]["runs"]
json.dump({
    "spec": "bench/specs/kasync_sweep.json",
    "runs": runs,
    "threads": int(threads),
    "wall_seconds_1_thread": float(t1),
    "wall_seconds_N_threads": float(tn),
    "speedup": round(float(t1) / float(tn), 2) if float(tn) > 0 else None,
}, open(target, "w"))
EOF
else
  echo "cohesion_run or bench/specs/kasync_sweep.json missing; skipping sweep" >&2
fi

# Sharded sweep through cohesion_run/cohesion_merge: the same spec run (a)
# in one process, (b) as 3 shards merged back together, and (c) resumed
# from a mid-file-truncated checkpoint. All three deterministic reports
# must be byte-identical — these are the shard-union and resume contracts
# of docs/operations.md — and the wall numbers land under shard_sweep.
SHARD_JSON="$OUT_DIR/shard_sweep_timing.json"
rm -f "$SHARD_JSON"
if [ -x "$BUILD_DIR/cohesion_run" ] && [ -x "$BUILD_DIR/cohesion_merge" ] \
   && [ -f bench/specs/kasync_sweep.json ]; then
  echo "== sharded sweep (1 process vs 3 shards + merge, + truncated resume)"
  t_single=$( { time "$BUILD_DIR/cohesion_run" bench/specs/kasync_sweep.json --no-timing \
      --out "$OUT_DIR/shard_single.json" 2> /dev/null; } 2>&1 | sed -n 's/^real[[:space:]]*//p' )
  t_shards=$( { time { for i in 0 1 2; do
        "$BUILD_DIR/cohesion_run" bench/specs/kasync_sweep.json --shard "$i/3" \
            --out "$OUT_DIR/shard_p$i.json" 2> /dev/null
      done; }; } 2>&1 | sed -n 's/^real[[:space:]]*//p' )
  "$BUILD_DIR/cohesion_merge" "$OUT_DIR"/shard_p{0,1,2}.json \
      --out "$OUT_DIR/shard_merged.json" 2> /dev/null
  if ! cmp -s "$OUT_DIR/shard_single.json" "$OUT_DIR/shard_merged.json"; then
    echo "ERROR: 3-shard merged report differs from the single-process report" >&2
    exit 1
  fi
  echo "   shard-union: 3-shard merge byte-identical to single process"
  rm -f "$OUT_DIR/shard.ckpt"
  "$BUILD_DIR/cohesion_run" bench/specs/kasync_sweep.json --no-timing \
      --checkpoint "$OUT_DIR/shard.ckpt" --out /dev/null 2> /dev/null
  python3 - "$OUT_DIR/shard.ckpt" <<'EOF'
import pathlib, sys
p = pathlib.Path(sys.argv[1])
data = p.read_bytes()
p.write_bytes(data[: len(data) * 3 // 5])  # kill-at-random-point stand-in
EOF
  "$BUILD_DIR/cohesion_run" bench/specs/kasync_sweep.json --no-timing \
      --resume "$OUT_DIR/shard.ckpt" --out "$OUT_DIR/shard_resumed.json" 2> /dev/null
  if ! cmp -s "$OUT_DIR/shard_single.json" "$OUT_DIR/shard_resumed.json"; then
    echo "ERROR: resumed-from-truncated-checkpoint report differs from fresh run" >&2
    exit 1
  fi
  echo "   resume: truncated-checkpoint resume byte-identical to fresh run"
  rm -f "$OUT_DIR/shard.ckpt"
  python3 - "$SHARD_JSON" "$t_single" "$t_shards" <<'EOF'
import json, sys

def seconds(real):  # "0m1.234s" -> 1.234
    m, s = real.rstrip("s").split("m")
    return int(m) * 60 + float(s)

target, t_single, t_shards = sys.argv[1:4]
json.dump({
    "spec": "bench/specs/kasync_sweep.json",
    "shards": 3,
    "wall_seconds_single": round(seconds(t_single), 3),
    "wall_seconds_3_shards_serial": round(seconds(t_shards), 3),
}, open(target, "w"))
EOF
else
  echo "cohesion_run/cohesion_merge or bench/specs/kasync_sweep.json missing; skipping shard sweep" >&2
fi

# Fault-injected supervised sweep through cohesion_launch: the same spec
# under a full crash schedule — SIGKILL one shard mid-journal, SIGSTOP
# another until its lease expires, kill + corrupt a third's journal tail —
# must still produce a report byte-identical to the fresh single-process
# one (the supervised fault-tolerance contract of docs/operations.md).
# The wall number lands under fault_sweep.
FAULT_JSON="$OUT_DIR/fault_sweep_timing.json"
rm -f "$FAULT_JSON"
if [ -x "$BUILD_DIR/cohesion_launch" ] && [ -x "$BUILD_DIR/cohesion_run" ] \
   && [ -f bench/specs/kasync_sweep.json ]; then
  echo "== fault-injected supervised sweep (kill + stall + corrupt, 3 shards)"
  "$BUILD_DIR/cohesion_run" bench/specs/kasync_sweep.json --no-timing \
      --out "$OUT_DIR/fault_fresh.json" 2> /dev/null
  rm -rf "$OUT_DIR/fault_work"
  t_fault=$( { time "$BUILD_DIR/cohesion_launch" bench/specs/kasync_sweep.json \
      --shards 3 --work-dir "$OUT_DIR/fault_work" --out "$OUT_DIR/fault_supervised.json" \
      --throttle-ms 20 --lease-timeout 2 --poll-interval 0.02 --backoff-base 0.05 \
      --fault kill:shard=1,after=2 --fault stall:shard=0,after=1 \
      --fault corrupt:shard=2,after=1 --quiet 2> /dev/null; } 2>&1 \
      | sed -n 's/^real[[:space:]]*//p' )
  if ! cmp -s "$OUT_DIR/fault_fresh.json" "$OUT_DIR/fault_supervised.json"; then
    echo "ERROR: supervised report under injected faults differs from the fresh run" >&2
    exit 1
  fi
  echo "   fault tolerance: supervised report byte-identical under kill/stall/corrupt"
  rm -rf "$OUT_DIR/fault_work"
  python3 - "$FAULT_JSON" "$t_fault" <<'EOF'
import json, sys

def seconds(real):  # "0m1.234s" -> 1.234
    m, s = real.rstrip("s").split("m")
    return int(m) * 60 + float(s)

target, t_fault = sys.argv[1:3]
json.dump({
    "spec": "bench/specs/kasync_sweep.json",
    "shards": 3,
    "faults": ["kill:shard=1,after=2", "stall:shard=0,after=1", "corrupt:shard=2,after=1"],
    "wall_seconds_supervised_faulted": round(seconds(t_fault), 3),
}, open(target, "w"))
EOF
else
  echo "cohesion_launch or bench/specs/kasync_sweep.json missing; skipping fault sweep" >&2
fi

# Streaming-trace sweep: one n=16384 run in bounded-memory stream mode
# (bench/specs/stream_run.json, far past the sizes the in-memory sweeps
# use). Three contracts are asserted, matching docs/architecture.md's
# trace layer: peak RSS stays under a fixed ceiling (no O(activations)
# state — the in-memory run of the same spec is measured alongside for
# contrast), the deterministic report equals the in-memory reference
# field for field once the trace-only fields are stripped, and
# cohesion_replay --check recomputes the reported metrics byte-for-byte
# from the stream file. Walls and RSS land under stream_sweep.
STREAM_JSON="$OUT_DIR/stream_sweep_timing.json"
rm -f "$STREAM_JSON"
if [ -x "$BUILD_DIR/cohesion_run" ] && [ -x "$BUILD_DIR/cohesion_replay" ] \
   && [ -f bench/specs/stream_run.json ]; then
  echo "== stream sweep (n=16384 bounded-memory stream mode + replay byte-check)"
  RSS_CEILING_KB=${BENCH_STREAM_RSS_CEILING_KB:-32768}
  rm -rf "$OUT_DIR/stream_traces"
  t_stream=$( { time "$BUILD_DIR/cohesion_run" bench/specs/stream_run.json --no-timing \
      --trace-dir "$OUT_DIR/stream_traces" --peak-rss \
      --out "$OUT_DIR/stream_report.json" 2> "$OUT_DIR/stream_stderr.txt"; } 2>&1 \
      | sed -n 's/^real[[:space:]]*//p' )
  rss_stream=$(sed -n 's/^peak_rss_kb: //p' "$OUT_DIR/stream_stderr.txt")
  if [ -z "$rss_stream" ] || [ "$rss_stream" -gt "$RSS_CEILING_KB" ]; then
    echo "ERROR: stream-mode peak RSS ${rss_stream:-unknown} KB exceeds the" \
         "$RSS_CEILING_KB KB ceiling — bounded-memory mode is leaking history" >&2
    exit 1
  fi
  echo "   bounded memory: peak RSS $rss_stream KB <= $RSS_CEILING_KB KB ceiling"
  t_memory=$( { time "$BUILD_DIR/cohesion_run" bench/specs/stream_run.json --no-timing \
      --peak-rss --out "$OUT_DIR/stream_memory_report.json" \
      2> "$OUT_DIR/stream_stderr.txt"; } 2>&1 | sed -n 's/^real[[:space:]]*//p' )
  rss_memory=$(sed -n 's/^peak_rss_kb: //p' "$OUT_DIR/stream_stderr.txt")
  python3 - "$OUT_DIR/stream_report.json" "$OUT_DIR/stream_memory_report.json" <<'EOF'
import json, sys
stream, memory = (json.load(open(p)) for p in sys.argv[1:3])
stream.get("experiment", {}).get("base", {}).pop("trace", None)
for run in stream.get("runs", []):
    run.pop("trace_path", None)
    run.pop("trace_fingerprint", None)
if stream != memory:
    sys.exit("ERROR: stream-mode report differs from the in-memory reference")
EOF
  echo "   bit-identity: stream-mode report == in-memory report (trace fields aside)"
  trace_file=$(ls "$OUT_DIR"/stream_traces/*.cohtrace | head -1)
  t_replay=$( { time "$BUILD_DIR/cohesion_replay" "$trace_file" \
      --check "$OUT_DIR/stream_report.json" > /dev/null; } 2>&1 \
      | sed -n 's/^real[[:space:]]*//p' )
  echo "   replay: cohesion_replay --check byte-matched the reported metrics"
  stream_bytes=$(wc -c < "$trace_file")
  rm -f "$OUT_DIR/stream_stderr.txt"
  python3 - "$STREAM_JSON" "$t_stream" "$t_memory" "$t_replay" "$rss_stream" "$rss_memory" \
      "$RSS_CEILING_KB" "$stream_bytes" "$OUT_DIR/stream_report.json" <<'EOF'
import json, sys

def seconds(real):  # "0m1.234s" -> 1.234
    m, s = real.rstrip("s").split("m")
    return int(m) * 60 + float(s)

(target, t_stream, t_memory, t_replay, rss_stream, rss_memory, ceiling, stream_bytes,
 report_path) = sys.argv[1:10]
report = json.load(open(report_path))
json.dump({
    "spec": "bench/specs/stream_run.json",
    "n": report["runs"][0]["n"],
    "activations": report["runs"][0]["activations"],
    "wall_seconds_stream": round(seconds(t_stream), 3),
    "wall_seconds_memory": round(seconds(t_memory), 3),
    "wall_seconds_replay": round(seconds(t_replay), 3),
    "peak_rss_kb_stream": int(rss_stream),
    "peak_rss_kb_memory": int(rss_memory),
    "rss_ceiling_kb": int(ceiling),
    "stream_bytes": int(stream_bytes),
}, open(target, "w"))
EOF
else
  echo "cohesion_run/cohesion_replay or bench/specs/stream_run.json missing; skipping stream sweep" >&2
fi

# Content-addressed result cache: the same sweep run cold into an empty
# cache, then fully warm, then with one axis edited (k values [1,2] ->
# [1,3]) both warm-over-the-cache and cold-without-cache. Contracts
# (docs/architecture.md #11): warm reports byte-identical to cold ones,
# and an edit recomputes exactly the changed variants — here 2 of 4
# variants (32 of 64 runs) keep k=1 and must hit. All four runs use the
# same binary back to back, so the cold/warm walls are comparable on a
# drifting-clock host. Numbers land under cache_sweep.
CACHE_JSON="$OUT_DIR/cache_sweep_timing.json"
rm -f "$CACHE_JSON"
if [ -x "$BUILD_DIR/cohesion_run" ] && [ -f bench/specs/kasync_sweep.json ]; then
  echo "== cache sweep (cold vs warm vs edit-one-axis, shared cache dir)"
  CACHE_DIR="$OUT_DIR/cache_sweep_dir"
  rm -rf "$CACHE_DIR"
  t_cold=$( { time "$BUILD_DIR/cohesion_run" bench/specs/kasync_sweep.json --no-timing \
      --cache "$CACHE_DIR" --out "$OUT_DIR/cache_cold.json" \
      2> "$OUT_DIR/cache_stderr.txt"; } 2>&1 | sed -n 's/^real[[:space:]]*//p' )
  t_warm=$( { time "$BUILD_DIR/cohesion_run" bench/specs/kasync_sweep.json --no-timing \
      --cache "$CACHE_DIR" --out "$OUT_DIR/cache_warm.json" \
      2> "$OUT_DIR/cache_stderr.txt"; } 2>&1 | sed -n 's/^real[[:space:]]*//p' )
  warm_stats=$(sed -n 's/^cache: \(.*\) (.*$/\1/p' "$OUT_DIR/cache_stderr.txt")
  if ! cmp -s "$OUT_DIR/cache_cold.json" "$OUT_DIR/cache_warm.json"; then
    echo "ERROR: warm-cache report differs from the cold report" >&2
    exit 1
  fi
  case "$warm_stats" in
    "64 hits, 0 misses, 0 rejects, 0 inserts") : ;;
    *) echo "ERROR: warm run expected 64 pure hits, saw: $warm_stats" >&2; exit 1 ;;
  esac
  echo "   warm: 64/64 runs served from cache, report byte-identical to cold"
  python3 - bench/specs/kasync_sweep.json "$OUT_DIR/cache_edited_spec.json" <<'EOF'
import json, sys
spec = json.load(open(sys.argv[1]))
axis = next(a for a in spec["sweep"] if a["path"] == "scheduler.params.k")
assert axis["values"] == [1, 2], axis
axis["values"] = [1, 3]  # the edit: half the grid (k=1 variants) survives
json.dump(spec, open(sys.argv[2], "w"), indent=2)
EOF
  t_edit_cold=$( { time "$BUILD_DIR/cohesion_run" "$OUT_DIR/cache_edited_spec.json" \
      --no-timing --no-cache --out "$OUT_DIR/cache_edit_ref.json" 2> /dev/null; } 2>&1 \
      | sed -n 's/^real[[:space:]]*//p' )
  t_edit_warm=$( { time "$BUILD_DIR/cohesion_run" "$OUT_DIR/cache_edited_spec.json" \
      --no-timing --cache "$CACHE_DIR" --out "$OUT_DIR/cache_edit_warm.json" \
      2> "$OUT_DIR/cache_stderr.txt"; } 2>&1 | sed -n 's/^real[[:space:]]*//p' )
  edit_stats=$(sed -n 's/^cache: \(.*\) (.*$/\1/p' "$OUT_DIR/cache_stderr.txt")
  if ! cmp -s "$OUT_DIR/cache_edit_ref.json" "$OUT_DIR/cache_edit_warm.json"; then
    echo "ERROR: warm report of the edited sweep differs from its cold no-cache report" >&2
    exit 1
  fi
  case "$edit_stats" in
    "32 hits, 32 misses, 0 rejects, 32 inserts") : ;;
    *) echo "ERROR: edited sweep expected 32 hits + 32 misses, saw: $edit_stats" >&2; exit 1 ;;
  esac
  echo "   edit-one-axis: exactly the 32 changed runs recomputed, report byte-identical"
  rm -f "$OUT_DIR/cache_stderr.txt"
  python3 - "$CACHE_JSON" "$t_cold" "$t_warm" "$t_edit_cold" "$t_edit_warm" <<'EOF'
import json, sys

def seconds(real):  # "0m1.234s" -> 1.234
    m, s = real.rstrip("s").split("m")
    return int(m) * 60 + float(s)

target, t_cold, t_warm, t_edit_cold, t_edit_warm = sys.argv[1:6]
cold, warm = seconds(t_cold), seconds(t_warm)
json.dump({
    "spec": "bench/specs/kasync_sweep.json",
    "runs": 64,
    "wall_seconds_cold": round(cold, 3),
    "wall_seconds_warm": round(warm, 3),
    "warm_speedup": round(cold / warm, 2) if warm > 0 else None,
    "wall_seconds_edited_cold_nocache": round(seconds(t_edit_cold), 3),
    "wall_seconds_edited_warm": round(seconds(t_edit_warm), 3),
    "edited_recomputed_runs": 32,
    "edited_hit_runs": 32,
}, open(target, "w"))
EOF
else
  echo "cohesion_run or bench/specs/kasync_sweep.json missing; skipping cache sweep" >&2
fi

# SoA snapshot-kernel A/B (architecture contract 12): the scalar and SoA
# kernels live in the same binary (EngineConfig::soa_kernel), so
# bench_spatial_scaling re-runs the two A/B pairs at n=4096 —
# BM_FSyncGrid vs BM_FSyncSoA and BM_KAsyncFast vs BM_KAsyncFastSoA —
# interleaved with repetitions, immune to the clock drift that makes
# cross-binary comparisons meaningless here. Alongside the timing, the
# declarative kasync sweep is run once with soa_kernel on: its report
# must equal the scalar report except for the spec echo (the run-layer
# face of the bit-identity contract; the per-build certification lives in
# the soa_certification ctest test). Medians and speedups land under
# soa_sweep.
SOA_JSON="$OUT_DIR/soa_sweep_timing.json"
rm -f "$SOA_JSON"
if [ -x "$BUILD_DIR/bench_spatial_scaling" ] && [ -x "$BUILD_DIR/cohesion_run" ] \
   && [ -f bench/specs/kasync_sweep.json ]; then
  echo "== soa sweep (scalar vs SoA kernel: same-binary n=4096 A/B + report byte-identity)"
  "$BUILD_DIR/bench_spatial_scaling" \
      --benchmark_filter='(BM_FSyncGrid|BM_FSyncSoA|BM_KAsyncFast|BM_KAsyncFastSoA)/4096' \
      --benchmark_min_time="${BENCH_SOA_MIN_TIME:-0.3}" \
      --benchmark_repetitions="${BENCH_SOA_REPETITIONS:-5}" \
      --benchmark_report_aggregates_only \
      --benchmark_format=json --benchmark_out="$OUT_DIR/soa_ab.json" \
      --benchmark_out_format=json > /dev/null
  python3 - bench/specs/kasync_sweep.json "$OUT_DIR/soa_spec.json" <<'EOF'
import json, sys
spec = json.load(open(sys.argv[1]))
spec["base"]["soa_kernel"] = True  # the only knob that may differ in the A/B
json.dump(spec, open(sys.argv[2], "w"), indent=2)
EOF
  "$BUILD_DIR/cohesion_run" bench/specs/kasync_sweep.json --no-timing \
      --out "$OUT_DIR/soa_scalar_report.json" 2> /dev/null
  "$BUILD_DIR/cohesion_run" "$OUT_DIR/soa_spec.json" --no-timing \
      --out "$OUT_DIR/soa_kernel_report.json" 2> /dev/null
  python3 - "$OUT_DIR/soa_scalar_report.json" "$OUT_DIR/soa_kernel_report.json" <<'EOF'
import json, sys
scalar, soa = (json.load(open(p)) for p in sys.argv[1:3])
flag = soa.get("experiment", {}).get("base", {}).pop("soa_kernel", None)
if flag is not True:
    sys.exit("ERROR: SoA sweep report does not echo soa_kernel=true — wrong spec ran")
if scalar != soa:
    sys.exit("ERROR: SoA-kernel sweep report differs from the scalar report "
             "(bit-identity contract 12 violated at the run layer)")
EOF
  echo "   bit-identity: soa_kernel sweep report == scalar report (spec echo aside)"
  python3 - "$SOA_JSON" "$OUT_DIR/soa_ab.json" <<'EOF'
import json, sys

target, ab_path = sys.argv[1:3]
data = json.load(open(ab_path))
medians = {
    b["name"].replace("/4096_median", ""): b["items_per_second"]
    for b in data.get("benchmarks", [])
    if b.get("run_type") == "aggregate" and b.get("aggregate_name") == "median"
    and "items_per_second" in b
}
def speedup(soa, scalar):
    if medians.get(scalar, 0) > 0 and soa in medians:
        return round(medians[soa] / medians[scalar], 3)
    return None
json.dump({
    "benchmark": "bench_spatial_scaling n=4096, median of repetitions, same binary",
    "median_activations_per_second": {k: round(v, 1) for k, v in medians.items()},
    "speedup_fsync_soa_over_grid": speedup("BM_FSyncSoA", "BM_FSyncGrid"),
    "speedup_kasync_fast_soa_over_fast": speedup("BM_KAsyncFastSoA", "BM_KAsyncFast"),
    "report_byte_identity": "pass",
}, open(target, "w"))
EOF
  rm -f "$OUT_DIR/soa_spec.json"
else
  echo "bench_spatial_scaling/cohesion_run or bench/specs/kasync_sweep.json missing; skipping soa sweep" >&2
fi

# Served sweep through the cohesion_serve work-queue daemon: the same spec
# submitted to a daemon feeding two workers, one of which is SIGKILLed
# mid-run (no flush, no release — a true crash). The daemon must observe
# the death, re-partition 2 -> 1, re-lease the dead worker's uncovered
# variants, and still deliver a report byte-identical to the fresh
# single-process run (architecture contract 13). Walls land under
# serve_sweep.
SERVE_JSON="$OUT_DIR/serve_sweep_timing.json"
rm -f "$SERVE_JSON"
if [ -x "$BUILD_DIR/cohesion_serve" ] && [ -x "$BUILD_DIR/cohesion_run" ] \
   && [ -f bench/specs/kasync_sweep.json ]; then
  echo "== serve sweep (daemon + 2 workers, one SIGKILLed mid-run, byte-compared)"
  "$BUILD_DIR/cohesion_run" bench/specs/kasync_sweep.json --no-timing \
      --out "$OUT_DIR/serve_fresh.json" 2> /dev/null
  SERVE_DIR="$OUT_DIR/serve_work"
  rm -rf "$SERVE_DIR"
  mkdir -p "$SERVE_DIR"
  SERVE_ADDR="unix:$SERVE_DIR/serve.sock"
  "$BUILD_DIR/cohesion_serve" --listen "$SERVE_ADDR" --ledger "$SERVE_DIR/serve.ledger" \
      --poll-interval 0.01 --backoff-base 0.05 --backoff-max 0.2 --jitter 0 \
      > "$SERVE_DIR/daemon.log" 2>&1 &
  serve_daemon=$!
  "$BUILD_DIR/cohesion_serve" --worker "$SERVE_ADDR" --name bench-w1 \
      --work-dir "$SERVE_DIR/w1.work" --runner "$BUILD_DIR/cohesion_run" \
      --throttle-ms 20 > "$SERVE_DIR/w1.log" 2>&1 &
  serve_w1=$!
  "$BUILD_DIR/cohesion_serve" --worker "$SERVE_ADDR" --name bench-w2 \
      --work-dir "$SERVE_DIR/w2.work" --runner "$BUILD_DIR/cohesion_run" \
      --throttle-ms 20 > "$SERVE_DIR/w2.log" 2>&1 &
  serve_w2=$!
  # Crash injector: the moment real work is streaming into the ledger,
  # SIGKILL one lease holder.
  ( while ! grep -q '"event":"outcome"' "$SERVE_DIR/serve.ledger" 2> /dev/null; do
      sleep 0.05
    done
    kill -9 "$serve_w2" 2> /dev/null ) &
  serve_killer=$!
  t_serve=$( { time "$BUILD_DIR/cohesion_serve" --submit bench/specs/kasync_sweep.json \
      "$SERVE_ADDR" --wait --out "$OUT_DIR/serve_report.json" > /dev/null 2>&1; } 2>&1 \
      | sed -n 's/^real[[:space:]]*//p' )
  wait "$serve_killer" 2> /dev/null || true
  wait "$serve_w2" 2> /dev/null || true
  if ! cmp -s "$OUT_DIR/serve_fresh.json" "$OUT_DIR/serve_report.json"; then
    echo "ERROR: served report with a SIGKILLed worker differs from the fresh run" >&2
    exit 1
  fi
  if ! grep -q 're-partitioned 2 -> 1' "$SERVE_DIR/daemon.log"; then
    echo "ERROR: daemon never re-partitioned after the worker was SIGKILLed" >&2
    exit 1
  fi
  echo "   fault tolerance: served report byte-identical after SIGKILL + 2 -> 1 re-partition"
  kill "$serve_w1" 2> /dev/null || true
  wait "$serve_w1" 2> /dev/null || true
  "$BUILD_DIR/cohesion_serve" --shutdown "$SERVE_ADDR" > /dev/null 2>&1 || true
  wait "$serve_daemon" 2> /dev/null || true
  rm -rf "$SERVE_DIR"
  python3 - "$SERVE_JSON" "$t_serve" <<'EOF'
import json, sys

def seconds(real):  # "0m1.234s" -> 1.234
    m, s = real.rstrip("s").split("m")
    return int(m) * 60 + float(s)

target, t_serve = sys.argv[1:3]
json.dump({
    "spec": "bench/specs/kasync_sweep.json",
    "workers": 2,
    "fault": "SIGKILL one worker after the first journaled outcome",
    "wall_seconds_served_faulted": round(seconds(t_serve), 3),
}, open(target, "w"))
EOF
else
  echo "cohesion_serve/cohesion_run or bench/specs/kasync_sweep.json missing; skipping serve sweep" >&2
fi

# Distill activations/sec per swarm size from the engine benches into one
# trajectory file: {bench -> {benchmark_name -> items_per_second}}, plus the
# declarative-sweep wall-clock scaling when it ran.
python3 - "$OUT_DIR" <<'EOF'
import json, pathlib, sys

out_dir = pathlib.Path(sys.argv[1])
engine = {}
for path in sorted(out_dir.glob("bench_*.json")):
    if path.name not in ("bench_engine_throughput.json", "bench_spatial_scaling.json"):
        continue
    data = json.loads(path.read_text())
    series = {
        b["name"]: round(b["items_per_second"], 1)
        for b in data.get("benchmarks", [])
        if "items_per_second" in b
    }
    if series:
        engine[path.stem] = series

summary = {"context": "activations/sec (items_per_second) per benchmark", "engine": engine}
batch = out_dir / "batch_sweep_timing.json"
if batch.exists():
    summary["batch_sweep"] = json.loads(batch.read_text())
    summary["context"] += "; batch_sweep: cohesion_run wall-clock at 1 vs N threads"
    batch.unlink()
shard = out_dir / "shard_sweep_timing.json"
if shard.exists():
    summary["shard_sweep"] = json.loads(shard.read_text())
    summary["context"] += "; shard_sweep: 1 process vs 3 shards + merge (byte-compared)"
    shard.unlink()
fault = out_dir / "fault_sweep_timing.json"
if fault.exists():
    summary["fault_sweep"] = json.loads(fault.read_text())
    summary["context"] += "; fault_sweep: supervised kill/stall/corrupt schedule (byte-compared)"
    fault.unlink()
stream = out_dir / "stream_sweep_timing.json"
if stream.exists():
    summary["stream_sweep"] = json.loads(stream.read_text())
    summary["context"] += ("; stream_sweep: n=16384 bounded-memory stream run "
                           "(RSS-ceiling + replay byte-compared)")
    stream.unlink()
cache = out_dir / "cache_sweep_timing.json"
if cache.exists():
    summary["cache_sweep"] = json.loads(cache.read_text())
    summary["context"] += ("; cache_sweep: result cache cold vs warm vs edit-one-axis "
                           "(byte-compared)")
    cache.unlink()
soa = out_dir / "soa_sweep_timing.json"
if soa.exists():
    summary["soa_sweep"] = json.loads(soa.read_text())
    summary["context"] += ("; soa_sweep: scalar vs SoA snapshot kernel, same binary "
                           "(medians of repeated n=4096 A/B, report byte-compared)")
    soa.unlink()
serve = out_dir / "serve_sweep_timing.json"
if serve.exists():
    summary["serve_sweep"] = json.loads(serve.read_text())
    summary["context"] += ("; serve_sweep: work-queue daemon + 2 workers, one SIGKILLed "
                           "mid-run (byte-compared)")
    serve.unlink()
target = out_dir / "BENCH_engine.json"
target.write_text(json.dumps(summary, indent=2) + "\n")
print(f"wrote {target}")
for bench, series in engine.items():
    for name, ips in series.items():
        print(f"  {name}: {ips:,.0f} activations/s")
if "batch_sweep" in summary:
    b = summary["batch_sweep"]
    print(f"  batch sweep: {b['runs']} runs, {b['wall_seconds_1_thread']}s @1t, "
          f"{b['wall_seconds_N_threads']}s @{b['threads']}t, speedup {b['speedup']}x")
if "shard_sweep" in summary:
    s = summary["shard_sweep"]
    print(f"  shard sweep: {s['wall_seconds_single']}s single vs "
          f"{s['wall_seconds_3_shards_serial']}s as {s['shards']} serial shards")
if "fault_sweep" in summary:
    f = summary["fault_sweep"]
    print(f"  fault sweep: {f['wall_seconds_supervised_faulted']}s supervised under "
          f"{len(f['faults'])} injected faults ({f['shards']} shards)")
if "stream_sweep" in summary:
    s = summary["stream_sweep"]
    print(f"  stream sweep: n={s['n']}, {s['activations']:,} activations, "
          f"{s['peak_rss_kb_stream']} KB streamed vs {s['peak_rss_kb_memory']} KB in-memory, "
          f"replay {s['wall_seconds_replay']}s")
if "cache_sweep" in summary:
    c = summary["cache_sweep"]
    print(f"  cache sweep: {c['wall_seconds_cold']}s cold vs {c['wall_seconds_warm']}s warm "
          f"({c['warm_speedup']}x), edit-one-axis {c['wall_seconds_edited_warm']}s warm vs "
          f"{c['wall_seconds_edited_cold_nocache']}s cold ({c['edited_hit_runs']}/64 hits)")
if "soa_sweep" in summary:
    s = summary["soa_sweep"]
    print(f"  soa sweep: KAsyncFast SoA/scalar {s['speedup_kasync_fast_soa_over_fast']}x, "
          f"FSync SoA/grid {s['speedup_fsync_soa_over_grid']}x "
          f"(n=4096 medians, report byte-identity {s['report_byte_identity']})")
if "serve_sweep" in summary:
    s = summary["serve_sweep"]
    print(f"  serve sweep: {s['wall_seconds_served_faulted']}s served by {s['workers']} workers "
          f"with one SIGKILLed mid-run (byte-compared)")
EOF
