#!/usr/bin/env bash
# Runs every bench executable in the build tree with JSON output and distills
# the engine-throughput trajectory into BENCH_engine.json so successive PRs
# have a perf baseline to compare against.
#
# Usage: bench/run_benches.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  cmake build tree containing the bench_* executables (default: build)
#   OUT_DIR    where per-bench JSON and BENCH_engine.json land (default: bench/out)
#
# Env:
#   BENCH_MIN_TIME   --benchmark_min_time per bench (default 0.1s: trajectory
#                    tracking, not microbenchmark-grade precision)
#   BENCH_FILTER     glob over bench executable names (default: all)
set -euo pipefail

BUILD_DIR=${1:-build}
OUT_DIR=${2:-bench/out}
MIN_TIME=${BENCH_MIN_TIME:-0.1}
FILTER=${BENCH_FILTER:-bench_*}

cd "$(dirname "$0")/.."
mkdir -p "$OUT_DIR"

found=0
for exe in "$BUILD_DIR"/$FILTER; do
  [ -x "$exe" ] || continue
  name=$(basename "$exe")
  found=1
  echo "== $name"
  "$exe" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
         --benchmark_out="$OUT_DIR/$name.json" --benchmark_out_format=json \
    > /dev/null || { echo "   FAILED (continuing)"; rm -f "$OUT_DIR/$name.json"; }
done
if [ "$found" = 0 ]; then
  echo "No bench executables under $BUILD_DIR/ — build with COHESION_BUILD_BENCHES=ON" >&2
  exit 1
fi

# Distill activations/sec per swarm size from the engine benches into one
# trajectory file: {bench -> {benchmark_name -> items_per_second}}.
python3 - "$OUT_DIR" <<'EOF'
import json, pathlib, sys

out_dir = pathlib.Path(sys.argv[1])
engine = {}
for path in sorted(out_dir.glob("bench_*.json")):
    if path.name not in ("bench_engine_throughput.json", "bench_spatial_scaling.json"):
        continue
    data = json.loads(path.read_text())
    series = {
        b["name"]: round(b["items_per_second"], 1)
        for b in data.get("benchmarks", [])
        if "items_per_second" in b
    }
    if series:
        engine[path.stem] = series

summary = {"context": "activations/sec (items_per_second) per benchmark", "engine": engine}
target = out_dir / "BENCH_engine.json"
target.write_text(json.dumps(summary, indent=2) + "\n")
print(f"wrote {target}")
for bench, series in engine.items():
    for name, ips in series.items():
        print(f"  {name}: {ips:,.0f} activations/s")
EOF
