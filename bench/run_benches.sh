#!/usr/bin/env bash
# Runs every bench executable in the build tree with JSON output and distills
# the engine-throughput trajectory into BENCH_engine.json so successive PRs
# have a perf baseline to compare against. Also drives one declarative sweep
# (bench/specs/kasync_sweep.json) through the cohesion_run batch driver at 1
# and N worker threads: asserts the deterministic reports are byte-identical
# and records the wall-clock numbers + speedup in BENCH_engine.json.
#
# Usage: bench/run_benches.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  cmake build tree containing the bench_* executables (default: build)
#   OUT_DIR    where per-bench JSON and BENCH_engine.json land (default: bench/out)
#
# Env:
#   BENCH_MIN_TIME   --benchmark_min_time per bench (default 0.1s: trajectory
#                    tracking, not microbenchmark-grade precision)
#   BENCH_FILTER     glob over bench executable names (default: all)
set -euo pipefail

BUILD_DIR=${1:-build}
OUT_DIR=${2:-bench/out}
MIN_TIME=${BENCH_MIN_TIME:-0.1}
FILTER=${BENCH_FILTER:-bench_*}

cd "$(dirname "$0")/.."
mkdir -p "$OUT_DIR"

# Documentation must match the tree before numbers are recorded.
bash tools/check_docs.sh

found=0
for exe in "$BUILD_DIR"/$FILTER; do
  [ -x "$exe" ] || continue
  name=$(basename "$exe")
  found=1
  echo "== $name"
  "$exe" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
         --benchmark_out="$OUT_DIR/$name.json" --benchmark_out_format=json \
    > /dev/null || { echo "   FAILED (continuing)"; rm -f "$OUT_DIR/$name.json"; }
done
if [ "$found" = 0 ]; then
  echo "No bench executables under $BUILD_DIR/ — build with COHESION_BUILD_BENCHES=ON" >&2
  exit 1
fi

# Declarative batch sweep through cohesion_run: one spec, 1 vs N worker
# threads. The --no-timing reports must be byte-identical (deterministic
# seeding); the timed runs give the wall-clock scaling numbers.
BATCH_JSON="$OUT_DIR/batch_sweep_timing.json"
rm -f "$BATCH_JSON"
if [ -x "$BUILD_DIR/cohesion_run" ] && [ -f bench/specs/kasync_sweep.json ]; then
  NTHREADS=${BENCH_SWEEP_THREADS:-$(nproc)}
  echo "== cohesion_run sweep (1 vs $NTHREADS threads)"
  "$BUILD_DIR/cohesion_run" bench/specs/kasync_sweep.json --threads 1 --no-timing \
      --out "$OUT_DIR/sweep_t1.json" 2> /dev/null
  "$BUILD_DIR/cohesion_run" bench/specs/kasync_sweep.json --threads "$NTHREADS" --no-timing \
      --out "$OUT_DIR/sweep_tN.json" 2> /dev/null
  if ! cmp -s "$OUT_DIR/sweep_t1.json" "$OUT_DIR/sweep_tN.json"; then
    echo "ERROR: sweep results differ between 1 and $NTHREADS threads" >&2
    exit 1
  fi
  echo "   deterministic: 1-thread and $NTHREADS-thread reports byte-identical"
  t1=$("$BUILD_DIR/cohesion_run" bench/specs/kasync_sweep.json --threads 1 \
         --out "$OUT_DIR/sweep_timed.json" 2>&1 | sed -n 's/.* \([0-9.]*\) s)$/\1/p')
  tN=$("$BUILD_DIR/cohesion_run" bench/specs/kasync_sweep.json --threads "$NTHREADS" \
         --out "$OUT_DIR/sweep_timed.json" 2>&1 | sed -n 's/.* \([0-9.]*\) s)$/\1/p')
  python3 - "$BATCH_JSON" "$NTHREADS" "$t1" "$tN" "$OUT_DIR/sweep_timed.json" <<'EOF'
import json, sys
target, threads, t1, tn, report_path = sys.argv[1:6]
report = json.load(open(report_path))
runs = report["aggregate"]["runs"]
json.dump({
    "spec": "bench/specs/kasync_sweep.json",
    "runs": runs,
    "threads": int(threads),
    "wall_seconds_1_thread": float(t1),
    "wall_seconds_N_threads": float(tn),
    "speedup": round(float(t1) / float(tn), 2) if float(tn) > 0 else None,
}, open(target, "w"))
EOF
else
  echo "cohesion_run or bench/specs/kasync_sweep.json missing; skipping sweep" >&2
fi

# Distill activations/sec per swarm size from the engine benches into one
# trajectory file: {bench -> {benchmark_name -> items_per_second}}, plus the
# declarative-sweep wall-clock scaling when it ran.
python3 - "$OUT_DIR" <<'EOF'
import json, pathlib, sys

out_dir = pathlib.Path(sys.argv[1])
engine = {}
for path in sorted(out_dir.glob("bench_*.json")):
    if path.name not in ("bench_engine_throughput.json", "bench_spatial_scaling.json"):
        continue
    data = json.loads(path.read_text())
    series = {
        b["name"]: round(b["items_per_second"], 1)
        for b in data.get("benchmarks", [])
        if "items_per_second" in b
    }
    if series:
        engine[path.stem] = series

summary = {"context": "activations/sec (items_per_second) per benchmark", "engine": engine}
batch = out_dir / "batch_sweep_timing.json"
if batch.exists():
    summary["batch_sweep"] = json.loads(batch.read_text())
    summary["context"] += "; batch_sweep: cohesion_run wall-clock at 1 vs N threads"
    batch.unlink()
target = out_dir / "BENCH_engine.json"
target.write_text(json.dumps(summary, indent=2) + "\n")
print(f"wrote {target}")
for bench, series in engine.items():
    for name, ips in series.items():
        print(f"  {name}: {ips:,.0f} activations/s")
if "batch_sweep" in summary:
    b = summary["batch_sweep"]
    print(f"  batch sweep: {b['runs']} runs, {b['wall_seconds_1_thread']}s @1t, "
          f"{b['wall_seconds_N_threads']}s @{b['threads']}t, speedup {b['speedup']}x")
EOF
