// E10 — ablation of the 1/k scaling (§3.2): run the motion function with
// scaling alpha = 1/k_algo under a k_sched-Async scheduler and measure how
// much of the close-pair safety margin is consumed.
//
// Geometry of the risk: once a neighbour is *distant* (> V_Y/2), the
// tangent safe disk makes every move weakly approach it — separation of a
// distant pair never grows. All separation risk sits with *close* pairs
// (<= V/2): a close neighbour is ignored, so a robot may move V_Y/(8k)
// straight away from it, and an adversary can nest k such moves inside one
// activity interval. The paper's margin argument (§3.2.1 note (i)) is that
// scaled moves keep the total close-pair growth below V/2 + V/4; unscaled
// motion under deep asynchrony eats multiples of that budget.
//
// We therefore measure, on a zig-zag chain with spacing at the close/
// distant boundary plus opposed anchors, the maximum separation ever
// reached by an initially close pair (growth above V/2 consumes margin;
// crossing V breaks visibility that cohesion may later need).
//
// Declarative form: the zig-zag chain registers as a bespoke
// "boundary_chain" initial-configuration factory, each (k_sched, variant)
// cell is a RunSpec (the "safe" column couples algo k to k_sched, which
// makes the grid irregular — so the cells are expanded explicitly and
// handed to run::BatchRunner as a run list), and the margin metric is a
// trace-metric hook. A second section times scheduler proposals alone:
// KAsyncScheduler's open-interval index (own-look rings + start-sorted
// interval list with prefix-max ends; O(log n) per proposal) vs. the
// legacy flat scan, whose dense per-interval count vectors cost O(n)
// zeroing per proposal and O(n^2) live memory at n = 4096. The residual
// cost common to both paths is the O(n) RNG-draw selection loop, which is
// part of the scheduler's seeded-stream contract.
#include <chrono>
#include <iostream>
#include <thread>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "metrics/configurations.hpp"
#include "metrics/table.hpp"
#include "run/batch_runner.hpp"
#include "run/registry.hpp"
#include "sched/asynchronous.hpp"

using namespace cohesion;
using geom::Vec2;

namespace {

/// Zig-zag chain with spacing around V/2 (the close/distant boundary) and
/// two far anchors that pull the ends apart.
std::vector<Vec2> boundary_chain() {
  std::vector<Vec2> pts;
  const double s = 0.48;
  for (int i = 0; i < 8; ++i) {
    // Adjacent pairs at distance ~0.49 < V/2: close neighbours, which the
    // destination rule ignores — the margin-consuming regime.
    pts.push_back({s * i, (i % 2 == 0) ? 0.0 : 0.1});
  }
  // Opposed anchors just inside visibility of the chain ends.
  const Vec2 first = pts.front();
  const Vec2 last = pts.back();
  pts.push_back(first + Vec2{-0.97, 0.1});
  pts.push_back(last + Vec2{0.97, -0.1});
  return pts;
}

/// Max separation ever reached by a pair that starts closer than V/2.
double worst_close_pair_growth(const run::RunSpec&, const core::Engine& engine) {
  const auto& trace = engine.trace();
  const auto& initial = trace.initial_configuration();
  const std::size_t n = initial.size();
  double worst = 0.0;
  for (double t = 0.0; t <= trace.end_time() + 1.0; t += 0.5) {
    const auto c = trace.configuration(t);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (initial[i].distance_to(initial[j]) <= 0.5 + 1e-12) {
          worst = std::max(worst, c[i].distance_to(c[j]));
        }
      }
    }
  }
  return worst;
}

/// One cell of the (k_sched x algorithm-variant) grid.
run::RunSpec cell_spec(std::size_t k_sched, const std::string& algo_type, std::size_t algo_k) {
  run::RunSpec spec;
  spec.name = "e10";
  spec.initial.type = "boundary_chain";
  spec.algorithm.type = algo_type;
  if (algo_type == "kknps") spec.algorithm.params.set("k", algo_k);
  spec.scheduler.type = "kasync";
  spec.scheduler.params.set("k", k_sched);
  spec.scheduler.params.set("min_duration", 1.0);
  spec.scheduler.params.set("max_duration", 8.0);
  spec.scheduler.params.set("xi", 0.3);
  spec.stop.epsilon = -1.0;  // fixed-length run: no convergence stop
  spec.stop.max_activations = 12000;
  return spec;
}

/// Scheduler-only proposal throughput (no engine): the view is inert, the
/// frontier advances with each proposal exactly as the engine would move it.
double proposals_per_second(std::size_t n, bool indexed, std::size_t proposals) {
  struct InertView final : core::SimulationView {
    std::size_t n_robots = 0;
    core::Time front = 0.0;
    [[nodiscard]] std::size_t robot_count() const override { return n_robots; }
    [[nodiscard]] core::Time busy_until(core::RobotId) const override { return 0.0; }
    [[nodiscard]] core::Time frontier() const override { return front; }
    [[nodiscard]] Vec2 position(core::RobotId, core::Time) const override { return {}; }
    [[nodiscard]] std::size_t activations_of(core::RobotId) const override { return 0; }
  };
  sched::KAsyncScheduler::Params p;
  p.k = 2;
  p.seed = 99;
  p.indexed_intervals = indexed;
  sched::KAsyncScheduler scheduler(n, p);
  InertView view;
  view.n_robots = n;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < proposals; ++i) {
    const auto a = scheduler.next(view);
    view.front = a->t_look;
  }
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return static_cast<double>(proposals) / secs;
}

/// Engine-level KAsync activation throughput with the spatial index in
/// incremental vs rebuild-per-Look-time mode (the PR 3 tentpole axis; the
/// JSON-tracked counterpart lives in bench_spatial_scaling).
double engine_activations_per_second(std::size_t n, bool incremental, bool heap_selection,
                                     std::size_t activations) {
  const algo::KknpsAlgorithm algo({.k = 1});
  const auto initial = metrics::grid_configuration(n, 0.75);
  sched::KAsyncScheduler sched(n, {.seed = 11, .heap_selection = heap_selection});
  core::EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  cfg.incremental_index = incremental;
  core::Engine engine(initial, algo, sched, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t done = engine.run(activations);
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return static_cast<double>(done) / secs;
}

}  // namespace

int main() {
  // Bespoke initial configurations plug into the same registry the
  // built-ins use; every spec below names it by key.
  run::initials().add("boundary_chain",
                      [](std::size_t, double, std::uint64_t, const run::Json&) {
                        return boundary_chain();
                      });

  std::cout << "E10 — 1/k scaling ablation: worst close-pair separation ever reached\n"
            << "(V = 1; pairs start <= V/2; crossing 1 would break visibility)\n\n";

  // Irregular grid: the "safe" column sets algo_k = k_sched.
  const std::size_t k_scheds[] = {1, 2, 4, 8};
  constexpr std::size_t kSeedsPerCell = 8;
  std::vector<run::ExpandedRun> runs;
  std::size_t variant = 0;
  for (const std::size_t ks : k_scheds) {
    std::vector<std::pair<std::string, run::RunSpec>> row;
    for (const std::size_t ak : {1u, 2u, 4u, 8u}) {
      row.emplace_back("algo_k=" + std::to_string(ak), cell_spec(ks, "kknps", ak));
    }
    row.emplace_back("algo_k=k_sched", cell_spec(ks, "kknps", ks));
    row.emplace_back("katreniak", cell_spec(ks, "katreniak", 0));
    for (auto& [label, spec] : row) {
      for (std::size_t r = 0; r < kSeedsPerCell; ++r) {
        run::ExpandedRun er;
        er.spec = spec;
        er.index = runs.size();
        er.variant = variant;
        er.repeat = r;
        er.label = "k_sched=" + std::to_string(ks) + "," + label;
        er.spec.seed = run::derive_seeds(/*experiment_seed=*/10, er.index).run;
        runs.push_back(std::move(er));
      }
      ++variant;
    }
  }

  run::BatchRunner::Options options;
  options.threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  options.trace_metric = worst_close_pair_growth;
  const run::BatchResult result = run::BatchRunner(options).run(runs);
  const auto cells = run::BatchRunner::aggregate_by_variant(result.outcomes);

  metrics::Table table({"k_sched", "algo_k=1", "algo_k=2", "algo_k=4", "algo_k=8",
                        "algo_k=k_sched_safe", "katreniak"});
  for (std::size_t row = 0; row < 4; ++row) {
    const auto worst = [&](std::size_t col) { return cells[row * 6 + col].max_custom; };
    table.add_row(k_scheds[row], worst(0), worst(1), worst(2), worst(3), worst(4), worst(5));
  }
  table.print();
  std::cout << "\n(" << runs.size() << " runs, " << result.threads << " threads, "
            << result.wall_seconds << " s)\n";

  std::cout << "\nMeasured shape (and why): KKNPS close-pair growth is self-limiting\n"
            << "for EVERY scaling: once a pair's separation passes V_Y/2 both see each\n"
            << "other as distant, and the tangent safe disk makes all further moves\n"
            << "weakly approaching — growth caps near V/2 + V/4 regardless of k. That\n"
            << "structural margin is what Theorem 4's k_algo >= k_sched guarantee rests\n"
            << "on. Katreniak's larger two-disk regions permit visibly more close-pair\n"
            << "growth (cf. the paper's remark (iii) in §3.1 that his algorithm fails\n"
            << "for sufficiently large k).\n";

  std::cout << "\nScheduler-proposal throughput: indexed interval bookkeeping (binary\n"
            << "search + prefix-max over the start-sorted open-interval list) vs the\n"
            << "legacy flat scan (k = 2; the legacy path allocates + zeroes an n-entry\n"
            << "count vector per proposal and walks every open interval):\n\n";
  metrics::Table sched_table({"n", "proposals", "indexed/s", "legacy/s", "speedup"});
  for (const std::size_t n : {1024u, 4096u}) {
    const std::size_t proposals = 20000;
    const double indexed = proposals_per_second(n, true, proposals);
    const double legacy = proposals_per_second(n, false, proposals);
    sched_table.add_row(n, proposals, indexed, legacy, indexed / legacy);
  }
  sched_table.print();

  std::cout << "\nEngine-level KAsync throughput: incremental cell maintenance (re-bucket\n"
            << "only the just-moved robot's segment) vs full grid rebuild at every\n"
            << "distinct Look time. Async Looks all have distinct times, so the rebuild\n"
            << "path pays O(n) per activation; the incremental path pays O(1) amortized\n"
            << "plus the candidate scan. The residual O(n) term is then the scheduler's\n"
            << "own tie-jitter selection loop; the fast column removes it too via the\n"
            << "opt-in heap selection (a different but equally valid seeded stream):\n\n";
  metrics::Table engine_table(
      {"n", "activations", "incremental/s", "rebuild/s", "speedup", "fast/s (heap sel)"});
  for (const std::size_t n : {1024u, 4096u}) {
    const std::size_t activations = n * 8;
    const double incremental = engine_activations_per_second(n, true, false, activations);
    const double rebuild = engine_activations_per_second(n, false, false, activations);
    const double fast = engine_activations_per_second(n, true, true, activations);
    engine_table.add_row(n, activations, incremental, rebuild, incremental / rebuild, fast);
  }
  engine_table.print();
  return 0;
}
