// E10 — ablation of the 1/k scaling (§3.2): run the motion function with
// scaling alpha = 1/k_algo under a k_sched-Async scheduler and measure how
// much of the close-pair safety margin is consumed.
//
// Geometry of the risk: once a neighbour is *distant* (> V_Y/2), the
// tangent safe disk makes every move weakly approach it — separation of a
// distant pair never grows. All separation risk sits with *close* pairs
// (<= V/2): a close neighbour is ignored, so a robot may move V_Y/(8k)
// straight away from it, and an adversary can nest k such moves inside one
// activity interval. The paper's margin argument (§3.2.1 note (i)) is that
// scaled moves keep the total close-pair growth below V/2 + V/4; unscaled
// motion under deep asynchrony eats multiples of that budget.
//
// We therefore measure, on a zig-zag chain with spacing at the close/
// distant boundary plus opposed anchors, the maximum separation ever
// reached by an initially close pair (growth above V/2 consumes margin;
// crossing V breaks visibility that cohesion may later need).
#include <iostream>

#include "algo/baselines.hpp"
#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "geometry/angles.hpp"
#include "metrics/configurations.hpp"
#include "metrics/table.hpp"
#include "sched/asynchronous.hpp"

using namespace cohesion;
using geom::Vec2;

namespace {

/// Zig-zag chain with spacing around V/2 (the close/distant boundary) and
/// two far anchors that pull the ends apart.
std::vector<Vec2> boundary_chain() {
  std::vector<Vec2> pts;
  const double s = 0.48;
  for (int i = 0; i < 8; ++i) {
    // Adjacent pairs at distance ~0.49 < V/2: close neighbours, which the
    // destination rule ignores — the margin-consuming regime.
    pts.push_back({s * i, (i % 2 == 0) ? 0.0 : 0.1});
  }
  // Opposed anchors just inside visibility of the chain ends.
  const Vec2 first = pts.front();
  const Vec2 last = pts.back();
  pts.push_back(first + Vec2{-0.97, 0.1});
  pts.push_back(last + Vec2{0.97, -0.1});
  return pts;
}

/// Max separation ever reached by a pair that starts closer than V/2.
double worst_close_pair_growth(const core::Algorithm& algo, std::size_t k_sched,
                               std::uint64_t seed) {
  const auto initial = boundary_chain();
  sched::KAsyncScheduler::Params p;
  p.k = k_sched;
  p.seed = seed;
  p.min_duration = 1.0;
  p.max_duration = 8.0;
  p.xi = 0.3;
  sched::KAsyncScheduler sched(initial.size(), p);
  core::EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  cfg.seed = seed;
  core::Engine engine(initial, algo, sched, cfg);
  engine.run(12000);

  double worst = 0.0;
  const auto& trace = engine.trace();
  const std::size_t n = initial.size();
  for (double t = 0.0; t <= trace.end_time() + 1.0; t += 0.5) {
    const auto c = trace.configuration(t);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (initial[i].distance_to(initial[j]) <= 0.5 + 1e-12) {
          worst = std::max(worst, c[i].distance_to(c[j]));
        }
      }
    }
  }
  return worst;
}

}  // namespace

int main() {
  std::cout << "E10 — 1/k scaling ablation: worst close-pair separation ever reached\n"
            << "(V = 1; pairs start <= V/2; crossing 1 would break visibility)\n\n";
  metrics::Table table({"k_sched", "algo_k=1", "algo_k=2", "algo_k=4", "algo_k=8",
                        "algo_k=k_sched_safe", "katreniak"});
  const algo::KatreniakAlgorithm katreniak;
  for (const std::size_t ks : {1u, 2u, 4u, 8u}) {
    double w[4] = {0, 0, 0, 0};
    double wsafe = 0, wkat = 0;
    const std::size_t algo_ks[4] = {1, 2, 4, 8};
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      for (int i = 0; i < 4; ++i) {
        const algo::KknpsAlgorithm a({.k = algo_ks[i]});
        w[i] = std::max(w[i], worst_close_pair_growth(a, ks, seed));
      }
      const algo::KknpsAlgorithm safe({.k = ks});
      wsafe = std::max(wsafe, worst_close_pair_growth(safe, ks, seed));
      wkat = std::max(wkat, worst_close_pair_growth(katreniak, ks, seed));
    }
    table.add_row(ks, w[0], w[1], w[2], w[3], wsafe, wkat);
  }
  table.print();
  std::cout << "\nMeasured shape (and why): KKNPS close-pair growth is self-limiting\n"
            << "for EVERY scaling: once a pair's separation passes V_Y/2 both see each\n"
            << "other as distant, and the tangent safe disk makes all further moves\n"
            << "weakly approaching — growth caps near V/2 + V/4 regardless of k. That\n"
            << "structural margin is what Theorem 4's k_algo >= k_sched guarantee rests\n"
            << "on. Katreniak's larger two-disk regions permit visibly more close-pair\n"
            << "growth (cf. the paper's remark (iii) in §3.1 that his algorithm fails\n"
            << "for sufficiently large k).\n";
  return 0;
}
