// E7 — §1.2.2 baselines under unlimited visibility: CoG (Cohen-Peleg [14],
// O(n^2) rounds) vs GCM (center-of-minbox [16], Theta(n), O(1) with axis
// agreement) vs KKNPS. Reports rounds to halve the hull diameter as n grows;
// the paper's related-work claims predict CoG's round count growing faster
// with n than GCM's.
#include <iostream>

#include "algo/baselines.hpp"
#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "metrics/configurations.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "sched/synchronous.hpp"

using namespace cohesion;

namespace {

metrics::ConvergenceReport run_one(const core::Algorithm& algo, std::size_t n,
                                   std::uint64_t seed) {
  const double v = 1e6;  // effectively unlimited visibility
  const auto initial = metrics::random_connected_configuration(n, 10.0, v, seed);
  sched::SSyncScheduler::Params p;
  p.activation_probability = 0.6;
  p.seed = seed;
  sched::SSyncScheduler sched(n, p);
  core::EngineConfig cfg;
  cfg.visibility.radius = v;
  cfg.seed = seed;
  core::Engine engine(initial, algo, sched, cfg);
  engine.run_until_converged(0.1, n * 3000);
  return metrics::analyze(engine.trace(), v, 0.1);
}

}  // namespace

int main() {
  std::cout << "E7 — unlimited-visibility baselines, SSync (diameter ~20, eps = 0.1)\n\n";
  metrics::Table table({"algorithm", "n", "rounds_to_halve", "rounds_total", "converged"});

  const algo::CogAlgorithm cog;
  const algo::GcmAlgorithm gcm;
  const algo::KknpsAlgorithm kknps({.k = 1});

  for (const std::size_t n : {4u, 8u, 16u, 32u}) {
    for (const auto* a : std::initializer_list<const core::Algorithm*>{&cog, &gcm, &kknps}) {
      const auto rep = run_one(*a, n, 1000 + n);
      table.add_row(a->name(), n, rep.rounds_to_halve, rep.rounds, rep.converged ? "yes" : "NO");
    }
  }
  table.print();
  std::cout << "\nMeasured shape: on random configurations both centre-based baselines\n"
            << "halve the diameter in O(1) rounds (CoG's O(n^2) and GCM's Theta(n) are\n"
            << "WORST-CASE bounds over adversarial configurations and schedulers, not\n"
            << "random-case rates); the visible difference is that KKNPS, whose moves\n"
            << "are capped at V_Y/8 by the safe regions, needs a constant factor more\n"
            << "rounds — the price of limited-visibility safety it alone provides.\n";
  return 0;
}
