// E13 — spatial-index scaling: engine throughput of the grid + kinematic-
// cache hot path vs the brute-force reference (EngineConfig::
// use_spatial_index = false) across swarm sizes n in {16, 64, 256, 1024,
// 4096}. Both paths produce bit-identical traces (see
// tests/core/engine_equivalence_test.cpp); only the work per Look differs:
// O(cells + neighbors) amortized vs O(n log k). The acceptance bar is a
// >= 5x activations/sec advantage at n = 1024. The brute-force series stops
// at 1024 — beyond that a single reference run dominates the whole bench.
#include <benchmark/benchmark.h>

#include <cmath>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "metrics/configurations.hpp"
#include "sched/asynchronous.hpp"
#include "sched/synchronous.hpp"

using namespace cohesion;

namespace {

constexpr std::size_t kActivationsPerRobot = 8;

void run_fsync(benchmark::State& state, bool use_spatial_index) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const algo::KknpsAlgorithm algo({.k = 1});
  const auto initial =
      metrics::grid_configuration(n, 0.75);
  const std::size_t activations = n * kActivationsPerRobot;
  for (auto _ : state) {
    state.PauseTiming();
    sched::FSyncScheduler sched(n);
    core::EngineConfig cfg;
    cfg.visibility.radius = 1.0;
    cfg.use_spatial_index = use_spatial_index;
    core::Engine engine(initial, algo, sched, cfg);
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.run(activations));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(activations));
}

void run_kasync(benchmark::State& state, bool use_spatial_index) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const algo::KknpsAlgorithm algo({.k = 1});
  const auto initial =
      metrics::grid_configuration(n, 0.75);
  const std::size_t activations = n * kActivationsPerRobot;
  for (auto _ : state) {
    state.PauseTiming();
    sched::KAsyncScheduler sched(n, {.seed = 11});
    core::EngineConfig cfg;
    cfg.visibility.radius = 1.0;
    cfg.use_spatial_index = use_spatial_index;
    core::Engine engine(initial, algo, sched, cfg);
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.run(activations));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(activations));
}

void BM_FSyncGrid(benchmark::State& state) { run_fsync(state, true); }
void BM_FSyncBrute(benchmark::State& state) { run_fsync(state, false); }
void BM_KAsyncGrid(benchmark::State& state) { run_kasync(state, true); }
void BM_KAsyncBrute(benchmark::State& state) { run_kasync(state, false); }

BENCHMARK(BM_FSyncGrid)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FSyncBrute)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KAsyncGrid)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KAsyncBrute)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
