// E13 — spatial-index scaling: engine throughput across the three snapshot
// paths — brute-force reference (EngineConfig::use_spatial_index = false),
// per-Look-time grid rebuild (incremental_index = false) and incremental
// cell maintenance (the default) — across swarm sizes n in {16, 64, 256,
// 1024, 4096}. All three produce bit-identical traces (see
// tests/core/engine_equivalence_test.cpp); only the work per Look differs:
//
//   brute        O(n log k) per snapshot
//   rebuild      O(n) per *distinct Look time* — amortizes to O(1)-ish per
//                Look under FSync (one rebuild serves a whole round), but
//                stays O(n) per activation under async schedulers
//   incremental  O(segment cells) per commit + O(candidates) per query,
//                regardless of how Look times are distributed
//
// The interesting axis is therefore incremental-vs-rebuild under KAsync,
// where every Look has a distinct time: acceptance for PR 3 is >= 1.3x at
// n = 4096 (BM_KAsyncFast vs the PR 2 BM_KAsyncGrid number). Once the
// rebuild is gone the scheduler's own O(n) tie-jitter selection loop is
// the next O(n)-per-activation term, so the KAsync series carries a fourth
// variant, BM_KAsyncFast = incremental index + the scheduler's opt-in
// heap selection. The brute-force series stops at 1024 — beyond that a
// single reference run dominates the whole bench.
#include <benchmark/benchmark.h>

#include <cmath>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "metrics/configurations.hpp"
#include "sched/asynchronous.hpp"
#include "sched/synchronous.hpp"

using namespace cohesion;

namespace {

constexpr std::size_t kActivationsPerRobot = 8;

enum class Mode { kBrute, kRebuild, kIncremental };

core::EngineConfig config_for(Mode mode, bool soa = false) {
  core::EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  cfg.use_spatial_index = mode != Mode::kBrute;
  cfg.incremental_index = mode == Mode::kIncremental;
  cfg.soa_kernel = soa;
  return cfg;
}

void run_fsync(benchmark::State& state, Mode mode, bool soa = false) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const algo::KknpsAlgorithm algo({.k = 1});
  const auto initial =
      metrics::grid_configuration(n, 0.75);
  const std::size_t activations = n * kActivationsPerRobot;
  for (auto _ : state) {
    state.PauseTiming();
    sched::FSyncScheduler sched(n);
    core::Engine engine(initial, algo, sched, config_for(mode, soa));
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.run(activations));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(activations));
}

void run_kasync(benchmark::State& state, Mode mode, bool heap_selection = false,
                bool soa = false) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const algo::KknpsAlgorithm algo({.k = 1});
  const auto initial =
      metrics::grid_configuration(n, 0.75);
  const std::size_t activations = n * kActivationsPerRobot;
  for (auto _ : state) {
    state.PauseTiming();
    sched::KAsyncScheduler sched(n, {.seed = 11, .heap_selection = heap_selection});
    core::Engine engine(initial, algo, sched, config_for(mode, soa));
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.run(activations));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(activations));
}

// "Grid" keeps naming continuity with the PR 1/PR 2 trajectory in
// bench/out/BENCH_engine.json: it was the rebuild-per-Look-time path then
// and still measures exactly that path.
void BM_FSyncGrid(benchmark::State& state) { run_fsync(state, Mode::kRebuild); }
void BM_FSyncIncremental(benchmark::State& state) { run_fsync(state, Mode::kIncremental); }
void BM_FSyncBrute(benchmark::State& state) { run_fsync(state, Mode::kBrute); }
void BM_KAsyncGrid(benchmark::State& state) { run_kasync(state, Mode::kRebuild); }
void BM_KAsyncIncremental(benchmark::State& state) { run_kasync(state, Mode::kIncremental); }
void BM_KAsyncBrute(benchmark::State& state) { run_kasync(state, Mode::kBrute); }
// The full PR 3 fast path: incremental index + the scheduler's opt-in
// O(log n) heap selection (Params::heap_selection; a different but equally
// valid seeded stream). With both O(n)-per-activation costs gone this is
// the KAsync configuration a production deployment would run.
void BM_KAsyncFast(benchmark::State& state) {
  run_kasync(state, Mode::kIncremental, /*heap_selection=*/true);
}
// PR 9 SoA snapshot kernel (EngineConfig::soa_kernel) A/B pairs, same
// binary, registered adjacent to their scalar twins so an interleaved run
// measures both under the same thermal/clock conditions. FSync pairs with
// the rebuild path (under FSync the incremental path's cross-round
// position memoization beats re-evaluating segment lanes, so grid + SoA is
// the honest win there); KAsync pairs with BM_KAsyncFast, the production
// configuration. Both produce bit-identical traces to their twins —
// enforced by the soa_certification battery (architecture contract 12).
void BM_FSyncSoA(benchmark::State& state) {
  run_fsync(state, Mode::kRebuild, /*soa=*/true);
}
void BM_KAsyncFastSoA(benchmark::State& state) {
  run_kasync(state, Mode::kIncremental, /*heap_selection=*/true, /*soa=*/true);
}

BENCHMARK(BM_FSyncGrid)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FSyncSoA)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FSyncIncremental)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FSyncBrute)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KAsyncGrid)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KAsyncIncremental)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KAsyncFast)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KAsyncFastSoA)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KAsyncBrute)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
