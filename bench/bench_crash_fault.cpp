// E11 — §6.1 fail-stop fault: with one crashed robot, the survivors
// converge to the crash site. Sweeps the crash position along a chain.
#include <iostream>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "metrics/configurations.hpp"
#include "metrics/table.hpp"
#include "sched/asynchronous.hpp"

using namespace cohesion;

int main() {
  std::cout << "E11 / §6.1 — single fail-stop crash (KKNPS, k = 2, V = 1)\n\n";
  metrics::Table table({"n", "crashed_robot", "converged", "final_diameter",
                        "gather_error_at_crash_site"});

  for (const std::size_t n : {6u, 12u}) {
    for (const core::RobotId crashed : {core::RobotId{0}, core::RobotId{n / 2}, core::RobotId{n - 1}}) {
      const algo::KknpsAlgorithm algo({.k = 2});
      const auto initial = metrics::line_configuration(n, 0.8);
      sched::KAsyncScheduler::Params p;
      p.k = 2;
      p.seed = 7 + n + crashed;
      sched::KAsyncScheduler sched(n, p);
      core::EngineConfig cfg;
      cfg.visibility.radius = 1.0;
      core::Engine engine(initial, algo, sched, cfg);
      engine.crash(crashed);
      const bool conv = engine.run_until_converged(0.05, n * 30000);
      const auto final_cfg = engine.current_configuration();
      double err = 0.0;
      for (const auto& pos : final_cfg) err = std::max(err, pos.distance_to(initial[crashed]));
      table.add_row(n, crashed, conv ? "yes" : "NO", engine.current_diameter(), err);
    }
  }
  table.print();
  std::cout << "\nExpected shape: convergence in every row, with the gathering point at\n"
            << "the crashed robot's location (error ~ final diameter).\n";
  return 0;
}
