// E5 — Theorems 3 and 4: visibility preservation under k-NestA and k-Async.
// Sweep n x k x scheduler; report the worst stretch of initially visible
// pairs (must stay <= 1) and whether acquired strong visibility (<= V/2)
// was ever lost (must never happen).
#include <iostream>
#include <memory>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "core/validators.hpp"
#include "core/visibility.hpp"
#include "metrics/configurations.hpp"
#include "metrics/table.hpp"
#include "sched/asynchronous.hpp"

using namespace cohesion;

int main() {
  std::cout << "E5 / Theorems 3-4 — visibility preservation sweep (V = 1)\n\n";
  metrics::Table table({"scheduler", "n", "k", "activations", "worst_initial_stretch",
                        "max_pair_growth", "acquired_lost", "trace_certified"});

  for (const bool nested : {true, false}) {
    for (const std::size_t n : {8u, 16u, 32u}) {
      for (const std::size_t k : {1u, 2u, 4u, 8u}) {
        const algo::KknpsAlgorithm algo({.k = k});
        const auto initial =
            metrics::random_connected_configuration(n, 0.45 * std::sqrt(double(n)), 1.0, 97 + n + k);

        std::unique_ptr<core::Scheduler> sched;
        if (nested) {
          sched::KNestAScheduler::Params p;
          p.k = k;
          p.seed = 7 * n + k;
          p.xi = 0.3;
          sched = std::make_unique<sched::KNestAScheduler>(n, p);
        } else {
          sched::KAsyncScheduler::Params p;
          p.k = k;
          p.seed = 7 * n + k;
          p.xi = 0.3;
          sched = std::make_unique<sched::KAsyncScheduler>(n, p);
        }

        core::EngineConfig cfg;
        cfg.visibility.radius = 1.0;
        cfg.seed = n * 1000 + k;
        core::Engine engine(initial, algo, *sched, cfg);
        const std::size_t steps = engine.run(n * 600);

        // Audit the trace.
        const core::Trace& trace = engine.trace();
        double worst = 0.0;
        double max_growth = 0.0;  // worst (d_t - d_0) over initially visible pairs
        bool acquired_lost = false;
        std::vector<std::vector<bool>> acquired(n, std::vector<bool>(n, false));
        const double end = trace.end_time() + 1.0;
        for (double t = 0.0; t <= end; t += 0.5) {
          const auto c = trace.configuration(t);
          worst = std::max(worst, core::worst_initial_pair_stretch(initial, c, 1.0));
          for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
              const double d = c[i].distance_to(c[j]);
              const double d0 = initial[i].distance_to(initial[j]);
              if (d0 <= 1.0 + 1e-12) max_growth = std::max(max_growth, d - d0);
              if (acquired[i][j] && d > 1.0 + 1e-9) acquired_lost = true;
              if (d <= 0.5 + 1e-12) acquired[i][j] = true;
            }
          }
        }
        const bool certified =
            nested ? core::is_k_nesta(trace, k) : core::is_k_async(trace, k);
        table.add_row(nested ? "k-NestA" : "k-Async", n, k, steps, worst, max_growth,
                      acquired_lost ? "YES" : "no", certified ? "yes" : "NO");
      }
    }
  }
  table.print();
  std::cout << "\nExpected shape: worst_initial_stretch <= 1 and acquired_lost = no in\n"
            << "every row — Theorems 3 and 4.\n";
  return 0;
}
