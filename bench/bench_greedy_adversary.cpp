// E14 — greedy adversarial search: a one-step-lookahead omniscient
// scheduler that deliberately maximizes the worst initially-visible pair
// separation, under a k-Async constraint. Sharp empirical probe of
// Theorem 4: against KKNPS with matching 1/k scaling it must stay <= V;
// against Ando (1-Async suffices, cf. Fig. 4) and Katreniak (large k,
// §3.1(iii)) it hunts for — and finds — weaknesses faster than random
// scheduling does.
#include <iostream>

#include "adversary/greedy_stretch.hpp"
#include "algo/baselines.hpp"
#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "core/validators.hpp"
#include "core/visibility.hpp"
#include "metrics/configurations.hpp"
#include "metrics/table.hpp"

using namespace cohesion;

namespace {

struct Outcome {
  double worst = 0.0;
  bool certified = false;
};

Outcome attack(const core::Algorithm& algo, std::size_t k, std::uint64_t seed) {
  // Alternate hard families: near-threshold chains and tight random blobs.
  const auto initial = (seed % 2 == 0)
                           ? metrics::line_configuration(8, 0.98)
                           : metrics::random_connected_configuration(8, 1.1, 1.0, seed);
  adversary::GreedyStretchScheduler::Params p;
  p.k = k;
  p.visibility = 1.0;
  adversary::GreedyStretchScheduler sched(algo, initial, p);
  core::EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  cfg.error.random_rotation = false;  // the adversary's lookahead assumes exact frames
  core::Engine engine(initial, algo, sched, cfg);
  engine.run(2500);

  Outcome out;
  const auto& trace = engine.trace();
  for (double t = 0.0; t <= trace.end_time() + 1.0; t += 0.5) {
    out.worst = std::max(out.worst, core::worst_initial_pair_stretch(
                                        initial, trace.configuration(t), 1.0));
  }
  out.certified = core::is_k_async(trace, k);
  return out;
}

}  // namespace

int main() {
  std::cout << "E14 — greedy stretch-maximizing adversary (V = 1, n = 8)\n"
            << "worst initial-pair separation / V over the whole run; > 1 = broken\n\n";

  metrics::Table table({"algorithm", "k_async", "worst_stretch", "visibility_broken",
                        "schedule_certified"});

  for (const std::size_t k : {1u, 2u, 4u}) {
    double kknps_w = 0.0, ando_w = 0.0, kat_w = 0.0;
    bool cert = true;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const algo::KknpsAlgorithm kknps({.k = k});
      const algo::AndoAlgorithm ando(1.0);
      const algo::KatreniakAlgorithm kat;
      const Outcome a = attack(kknps, k, seed);
      const Outcome b = attack(ando, k, seed);
      const Outcome c = attack(kat, k, seed);
      kknps_w = std::max(kknps_w, a.worst);
      ando_w = std::max(ando_w, b.worst);
      kat_w = std::max(kat_w, c.worst);
      cert = cert && a.certified && b.certified && c.certified;
    }
    table.add_row("KKNPS(k)", k, kknps_w, kknps_w > 1.0 + 1e-9 ? "YES" : "no",
                  cert ? "yes" : "NO");
    table.add_row("Ando", k, ando_w, ando_w > 1.0 + 1e-9 ? "YES" : "no", cert ? "yes" : "NO");
    table.add_row("Katreniak", k, kat_w, kat_w > 1.0 + 1e-9 ? "YES" : "no",
                  cert ? "yes" : "NO");
  }
  table.print();
  std::cout << "\nMeasured shape: no algorithm concedes any separation growth to one-step\n"
            << "greedy lookahead — all rows sit at the initial worst-pair distance.\n"
            << "KKNPS is covered by Theorem 4; for Ando and Katreniak the result is a\n"
            << "finding about the ADVERSARY: myopic play cannot set up the coordinated\n"
            << "two-activation stale-snapshot trap that breaks Ando (Fig. 4 / bench E2).\n"
            << "Separating executions require multi-step constructions — which is why\n"
            << "the paper exhibits one explicitly instead of appealing to search.\n";
  return 0;
}
