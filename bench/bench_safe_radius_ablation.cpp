// E13 — ablation of the safe-region radius (paper footnote 11): the paper
// picks radius V_Y/8 "mostly for convenience"; anything at least that
// cautious works, while substantially larger regions give robots enough
// reach to strain initial visibility under asynchrony. We sweep the radius
// divisor (region radius = V_Y / (divisor * k)) and report worst
// initial-pair stretch and convergence speed — exposing the safety/speed
// trade-off behind the paper's choice.
#include <iostream>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "core/visibility.hpp"
#include "metrics/configurations.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "sched/asynchronous.hpp"

using namespace cohesion;

int main() {
  std::cout << "E13 — safe-region radius ablation (V = 1, 2-Async, near-threshold chain)\n"
            << "region radius = V_Y / (divisor * k)\n\n";

  metrics::Table table({"divisor", "worst_initial_stretch", "cohesive", "converged",
                        "rounds_to_halve"});

  for (const double divisor : {2.5, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0}) {
    double worst = 0.0;
    bool cohesive = true;
    bool converged_all = true;
    std::size_t halve = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const algo::KknpsAlgorithm algo({.k = 2, .radius_divisor = divisor});
      const auto initial = metrics::line_configuration(10, 0.99);
      sched::KAsyncScheduler::Params p;
      p.k = 2;
      p.seed = seed;
      p.min_duration = 1.0;
      p.max_duration = 6.0;
      p.xi = 0.3;
      sched::KAsyncScheduler sched(initial.size(), p);
      core::EngineConfig cfg;
      cfg.visibility.radius = 1.0;
      cfg.seed = seed;
      core::Engine engine(initial, algo, sched, cfg);
      const bool conv = engine.run_until_converged(0.05, 60000);
      converged_all = converged_all && conv;
      const auto& trace = engine.trace();
      for (double t = 0.0; t <= trace.end_time() + 1.0; t += 0.5) {
        worst = std::max(worst, core::worst_initial_pair_stretch(initial, trace.configuration(t),
                                                                 1.0));
      }
      const auto rep = metrics::analyze(trace, 1.0, 0.05);
      cohesive = cohesive && rep.cohesive;
      halve = std::max(halve, rep.rounds_to_halve);
    }
    table.add_row(divisor, worst, cohesive ? "yes" : "NO", converged_all ? "yes" : "NO", halve);
  }
  table.print();
  std::cout << "\nMeasured shape: rounds-to-halve grows linearly with the divisor — the\n"
            << "paper's V_Y/8 choice costs ~3x the speed of an aggressive V_Y/2.5 region.\n"
            << "Under the randomized adversary every divisor stayed cohesive (worst\n"
            << "stretch dominated by the initial near-threshold spacing): the payoff of\n"
            << "the conservative choice is the PROOF of Theorem 4, which covers divisor\n"
            << ">= 8 only; smaller divisors forfeit the guarantee, not (on random\n"
            << "schedules) the behaviour.\n";
  return 0;
}
