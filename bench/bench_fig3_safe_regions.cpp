// E1 — Figure 3: quantitative comparison of the safe regions of Ando et
// al., Katreniak, and KKNPS for a robot Y viewing a neighbour X at distance
// d (V = V_Y = 1). Regenerates the figure as a table: region area, maximum
// permitted planned move, and whether the region depends on d at all.
#include <iostream>

#include "geometry/safe_region.hpp"
#include "metrics/table.hpp"

using namespace cohesion;

int main() {
  std::cout << "E1 / Figure 3 — safe regions for motion (V = V_Y = 1)\n"
            << "Y at origin, neighbour X at distance d along +x.\n\n";

  metrics::Table table({"d", "ando_area", "ando_max_move", "katreniak_area", "katreniak_max_move",
                        "kknps_area", "kknps_max_move(=V/4)"});

  const geom::Vec2 y0{0.0, 0.0};
  const double v = 1.0;
  for (const double d : {0.30, 0.45, 0.55, 0.70, 0.85, 1.00}) {
    const geom::Vec2 x0{d, 0.0};
    const geom::Circle ando = geom::ando_safe_region(y0, x0, v);
    const geom::KatreniakRegion kat = geom::katreniak_safe_region(y0, x0, v);
    const geom::Circle kknps = geom::kknps_safe_region(y0, x0, v / 8.0);

    // Katreniak max move: furthest point of the union from Y.
    const double kat_move = std::max(geom::max_move_within(kat.near_disk, y0),
                                     geom::max_move_within(kat.self_disk, y0));

    table.add_row(d, ando.area(), geom::max_move_within(ando, y0), kat.area(), kat_move,
                  kknps.area(), geom::max_move_within(kknps, y0));
  }
  table.print();

  std::cout << "\nKey shape facts (paper §3.2.1):\n"
            << "  * KKNPS region is independent of d (direction-only) and defined for\n"
            << "    distant neighbours (d > V_Y/2) only; max planned move V_Y/4, and the\n"
            << "    destination rule further caps moves at V_Y/8.\n"
            << "  * Ando's disk always reaches the midpoint of Y and X; max move grows\n"
            << "    with d up to V.\n"
            << "  * Katreniak's union shrinks as d -> V_Y (self-disk radius (V_Y-d)/4).\n";
  return 0;
}
