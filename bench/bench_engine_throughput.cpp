// E12 — engineering throughput: activations/second of the simulation engine
// as a function of swarm size and scheduler (google-benchmark).
#include <benchmark/benchmark.h>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "metrics/configurations.hpp"
#include "sched/asynchronous.hpp"
#include "sched/synchronous.hpp"

using namespace cohesion;

namespace {

void BM_FSyncEngine(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const algo::KknpsAlgorithm algo({.k = 1});
  const auto initial = metrics::random_connected_configuration(n, 0.4 * std::sqrt(double(n)), 1.0, 1);
  for (auto _ : state) {
    state.PauseTiming();
    sched::FSyncScheduler sched(n);
    core::EngineConfig cfg;
    cfg.visibility.radius = 1.0;
    core::Engine engine(initial, algo, sched, cfg);
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.run(n * 20));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * 20);
}
BENCHMARK(BM_FSyncEngine)->Arg(8)->Arg(32)->Arg(128);

void BM_KAsyncEngine(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  const algo::KknpsAlgorithm algo({.k = k});
  const auto initial = metrics::random_connected_configuration(n, 0.4 * std::sqrt(double(n)), 1.0, 2);
  for (auto _ : state) {
    state.PauseTiming();
    sched::KAsyncScheduler::Params p;
    p.k = k;
    sched::KAsyncScheduler sched(n, p);
    core::EngineConfig cfg;
    cfg.visibility.radius = 1.0;
    core::Engine engine(initial, algo, sched, cfg);
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.run(n * 20));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * 20);
}
BENCHMARK(BM_KAsyncEngine)->Args({8, 1})->Args({32, 2})->Args({128, 4});

void BM_KknpsCompute(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const algo::KknpsAlgorithm algo({.k = 2});
  core::Snapshot snap;
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (std::size_t i = 0; i < m; ++i) {
    snap.neighbours.push_back({{u(rng), u(rng)}, false});
  }
  for (auto _ : state) benchmark::DoNotOptimize(algo.compute(snap));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_KknpsCompute)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
