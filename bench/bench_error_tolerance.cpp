// E9 — §6.1 error tolerance: sweep relative distance error delta, angle
// skew lambda, and quadratic motion error; report convergence and cohesion
// of the delta-aware KKNPS variant under k-Async.
#include <iostream>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "metrics/configurations.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "sched/asynchronous.hpp"

using namespace cohesion;

namespace {

struct Row {
  bool converged;
  bool cohesive;
  double final_diam;
};

Row run_case(double delta, double lambda, double motion, std::uint64_t seed) {
  const std::size_t n = 12, k = 2;
  const algo::KknpsAlgorithm algo({.k = k, .distance_delta = delta});
  const auto initial = metrics::random_connected_configuration(n, 1.6, 1.0, seed);
  sched::KAsyncScheduler::Params p;
  p.k = k;
  p.seed = seed;
  p.xi = 0.4;
  sched::KAsyncScheduler sched(n, p);
  core::EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  cfg.seed = seed;
  cfg.error.distance_delta = delta;
  cfg.error.skew_lambda = lambda;
  cfg.error.motion_quad_coeff = motion;
  core::Engine engine(initial, algo, sched, cfg);
  const bool conv = engine.run_until_converged(0.08, 250000);
  const auto rep = metrics::analyze(engine.trace(), 1.0, 0.08);
  return {conv, rep.cohesive, rep.final_diameter};
}

}  // namespace

int main() {
  std::cout << "E9 / §6.1 — error-tolerance sweep (KKNPS, k = 2, n = 12, V = 1)\n\n";
  metrics::Table table({"delta(dist)", "lambda(skew)", "motion_coeff", "converged", "cohesive",
                        "final_diameter"});
  const double cases[][3] = {
      {0.00, 0.00, 0.0},  // exact
      {0.02, 0.00, 0.0},  {0.05, 0.00, 0.0}, {0.10, 0.00, 0.0},  // distance error
      {0.00, 0.05, 0.0},  {0.00, 0.15, 0.0}, {0.00, 0.30, 0.0},  // skew
      {0.00, 0.00, 0.1},  {0.00, 0.00, 0.3},                     // motion error
      {0.05, 0.10, 0.1},  {0.10, 0.20, 0.2},                     // combined
  };
  std::uint64_t seed = 9000;
  for (const auto& c : cases) {
    const Row r = run_case(c[0], c[1], c[2], seed++);
    table.add_row(c[0], c[1], c[2], r.converged ? "yes" : "NO", r.cohesive ? "yes" : "NO",
                  r.final_diam);
  }
  table.print();
  std::cout << "\nExpected shape: convergence and cohesion for modest delta/lambda/motion\n"
            << "error — the paper's §6.1 claims; very large errors may slow or stall\n"
            << "convergence but must not break cohesion of the delta-aware variant.\n";
  return 0;
}
