// E9 — §6.1 error tolerance: sweep relative distance error delta, angle
// skew lambda, and quadratic motion error; report convergence and cohesion
// of the delta-aware KKNPS variant under k-Async.
//
// Declarative form: the whole sweep is one run::ExperimentSpec — a base
// RunSpec plus a single root-merge axis whose eleven case objects override
// the correlated error knobs (the algorithm's assumed delta must track the
// error model's actual delta) — fanned out by run::BatchRunner. The spec
// JSON is printed first: save it and the sweep reruns via `cohesion_run`.
#include <iostream>
#include <thread>

#include "metrics/table.hpp"
#include "run/batch_runner.hpp"

using namespace cohesion;

namespace {

/// One error case: the algorithm is told the same delta the error model
/// inflicts (the paper's delta-aware variant).
run::Json error_case(double delta, double lambda, double motion) {
  run::Json j = run::Json::object();
  char label[64];
  std::snprintf(label, sizeof label, "d=%.2f,l=%.2f,m=%.1f", delta, lambda, motion);
  j.set("label", label);
  run::Json algo = run::Json::object();
  run::Json algo_params = run::Json::object();
  algo_params.set("distance_delta", delta);
  algo.set("params", algo_params);
  j.set("algorithm", algo);
  run::Json err = run::Json::object();
  run::Json err_params = run::Json::object();
  err_params.set("distance_delta", delta);
  err_params.set("skew_lambda", lambda);
  err_params.set("motion_quad_coeff", motion);
  err.set("params", err_params);
  j.set("error", err);
  return j;
}

}  // namespace

int main() {
  std::cout << "E9 / §6.1 — error-tolerance sweep (KKNPS, k = 2, n = 12, V = 1)\n\n";

  run::ExperimentSpec experiment;
  experiment.name = "error_tolerance";
  experiment.base.name = "e9";
  experiment.base.n = 12;
  experiment.base.seed = 9000;
  experiment.base.algorithm = {.type = "kknps", .params = run::Json::parse(R"({"k": 2})")};
  experiment.base.scheduler = {.type = "kasync", .params = run::Json::parse(R"({"k": 2, "xi": 0.4})")};
  experiment.base.initial = {.type = "random", .params = run::Json::parse(R"({"world_radius": 1.6})")};
  experiment.base.stop.epsilon = 0.08;
  experiment.base.stop.max_activations = 250000;

  run::SweepAxis cases;
  cases.path = "";  // root deep-merge: each case overrides correlated knobs
  const double grid[][3] = {
      {0.00, 0.00, 0.0},  // exact
      {0.02, 0.00, 0.0},  {0.05, 0.00, 0.0}, {0.10, 0.00, 0.0},  // distance error
      {0.00, 0.05, 0.0},  {0.00, 0.15, 0.0}, {0.00, 0.30, 0.0},  // skew
      {0.00, 0.00, 0.1},  {0.00, 0.00, 0.3},                     // motion error
      {0.05, 0.10, 0.1},  {0.10, 0.20, 0.2},                     // combined
  };
  for (const auto& c : grid) cases.values.push_back(error_case(c[0], c[1], c[2]));
  experiment.axes.push_back(cases);

  std::cout << "spec: " << experiment.to_json().dump() << "\n\n";

  run::BatchRunner::Options options;
  options.threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  const run::BatchResult result = run::BatchRunner(options).run(experiment);

  metrics::Table table({"case", "converged", "cohesive", "final_diameter"});
  const auto by_variant = run::BatchRunner::aggregate_by_variant(result.outcomes);
  std::vector<std::string> labels(by_variant.size());
  for (const run::RunOutcome& o : result.outcomes) labels[o.variant] = o.label;
  for (std::size_t v = 0; v < by_variant.size(); ++v) {
    const run::Aggregate& a = by_variant[v];
    table.add_row(labels[v], a.converged == a.runs ? "yes" : "NO",
                  a.cohesion_failures == 0 ? "yes" : "NO", a.mean_final_diameter);
  }
  table.print();
  std::cout << "\n(" << result.outcomes.size() << " runs, " << result.threads << " threads, "
            << result.wall_seconds << " s)\n";
  std::cout << "\nExpected shape: convergence and cohesion for modest delta/lambda/motion\n"
            << "error — the paper's §6.1 claims; very large errors may slow or stall\n"
            << "convergence but must not break cohesion of the delta-aware variant.\n";
  return 0;
}
