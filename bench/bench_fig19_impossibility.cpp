// E8 — §7 / Figures 19-22: the impossibility construction. The discrete
// spiral plus the sliver-flattening adversary (NestA, unbounded nesting)
// breaks the visibility between X_A and X_B for a cohesive error-tolerant
// algorithm; truncating the adversary's asynchrony (k-Async scheduling with
// KKNPS's matching 1/k scaling) preserves it — the separation headline.
#include <iostream>

#include "adversary/spiral.hpp"
#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "core/visibility.hpp"
#include "metrics/configurations.hpp"
#include "metrics/table.hpp"
#include "sched/asynchronous.hpp"

using namespace cohesion;

int main() {
  std::cout << "E8 / §7 impossibility — spiral + sliver flattening (V = 1)\n\n";

  metrics::Table table({"psi", "n", "zeta(X_A move)", "|X_A X_B|_final", "broken", "max_drift",
                        "nested_activations", "schedule_nested"});
  for (const double psi : {0.35, 0.30, 0.25}) {
    const auto r = adversary::run_spiral_experiment(psi, 0.92);
    table.add_row(psi, r.robot_count, r.zeta, r.final_separation_ab,
                  r.visibility_broken ? "YES" : "no", r.max_chain_drift, r.nesting_depth,
                  r.schedule_nested ? "yes" : "NO");
  }
  table.print();

  // Control: the same spiral under *bounded* asynchrony with KKNPS —
  // initially visible pairs never separate.
  std::cout << "\nControl: spiral configuration, KKNPS under k-Async (bounded)\n\n";
  metrics::Table control({"k", "activations", "worst_initial_stretch", "still_connected"});
  for (const std::size_t k : {1u, 4u}) {
    const auto cfg = metrics::spiral_configuration(0.30, 0.92);
    const algo::KknpsAlgorithm algo({.k = k});
    sched::KAsyncScheduler::Params p;
    p.k = k;
    p.seed = 5 + k;
    sched::KAsyncScheduler sched(cfg.positions.size(), p);
    core::EngineConfig ecfg;
    ecfg.visibility.radius = 1.0;
    core::Engine engine(cfg.positions, algo, sched, ecfg);
    const std::size_t steps = engine.run(cfg.positions.size() * 200);
    double worst = 0.0;
    const auto& trace = engine.trace();
    for (double t = 0.0; t <= trace.end_time() + 1.0; t += 1.0) {
      worst = std::max(worst, core::worst_initial_pair_stretch(
                                  cfg.positions, trace.configuration(t), 1.0));
    }
    const bool connected =
        core::VisibilityGraph(engine.current_configuration(), 1.0).connected();
    control.add_row(k, steps, worst, connected ? "yes" : "NO");
  }
  control.print();
  std::cout << "\nExpected shape: unbounded nesting breaks A-B visibility (> 1) with\n"
            << "chain drift O(psi^2); bounded k-Async with the 1/k-scaled algorithm\n"
            << "keeps every initial pair within V — the paper's separation between\n"
            << "bounded and unbounded asynchrony.\n";
  return 0;
}
