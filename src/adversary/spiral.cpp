#include "adversary/spiral.hpp"

#include <algorithm>
#include <cmath>

#include "algo/lens_midpoint.hpp"
#include "core/engine.hpp"
#include "core/validators.hpp"
#include "core/visibility.hpp"
#include "geometry/angles.hpp"

namespace cohesion::adversary {

using core::Activation;
using core::RobotId;
using core::SimulationView;
using geom::Vec2;

SliverFlatteningScheduler::SliverFlatteningScheduler(std::size_t robot_count, Params params)
    : n_(robot_count), params_(params) {}

std::optional<Activation> SliverFlatteningScheduler::next(const SimulationView& view) {
  if (done_) return std::nullopt;
  if (issued_ >= params_.max_activations) {
    exhausted_ = true;
    done_ = true;
    return std::nullopt;
  }

  if (!a_committed_) {
    // X_A (robot 0): Look now, Move in the far future. Everything else nests
    // inside this interval.
    a_committed_ = true;
    ++issued_;
    Activation a;
    a.robot = 0;
    a.t_look = 0.0;
    a.t_move_start = params_.far_future;
    a.t_move_end = params_.far_future + 1.0;
    a.realized_fraction = 1.0;
    return a;
  }

  const std::size_t chain_len = n_ - params_.chain_begin;  // X_0 .. X_{chain_len-1}
  const double now = clock_;

  // Find, within the current stage's prefix, the robot with the largest
  // deviation from co-linearity with its chain neighbours; anchor of stage i
  // is P_i (original position, untouched so far).
  while (stage_ < chain_len) {
    RobotId best = core::kInvalidRobot;
    double best_dev = params_.colinearity_tolerance;
    for (std::size_t m = 0; m < stage_; ++m) {
      const RobotId j = params_.chain_begin + m;
      const RobotId prev = (m == 0) ? 0 : j - 1;  // X_0's predecessor is X_A
      const RobotId nxt = j + 1;
      const Vec2 pj = view.position(j, now);
      const Vec2 pp = view.position(prev, now);
      const Vec2 pn = view.position(nxt, now);
      // The victim only moves when it perceives exactly these two
      // neighbours; skip robots whose neighbourhood is off (visibility
      // drifted), rather than activating uselessly.
      if (pj.distance_to(pp) > params_.visibility || pj.distance_to(pn) > params_.visibility) {
        continue;
      }
      const double dev = geom::kPi - geom::interior_angle(pp, pj, pn);
      if (dev > best_dev) {
        best_dev = dev;
        best = j;
      }
    }
    if (best == core::kInvalidRobot) {
      ++stage_;  // stage flattened to tolerance; advance the anchor
      continue;
    }
    ++issued_;
    clock_ += 1.0;
    Activation a;
    a.robot = best;
    a.t_look = now;
    a.t_move_start = now + 0.25;
    a.t_move_end = now + 0.75;
    a.realized_fraction = 1.0;
    return a;
  }

  done_ = true;  // all stages flattened; X_A's pending move closes the run
  return std::nullopt;
}

SpiralExperimentResult run_spiral_experiment(double psi, double edge_scale,
                                             std::size_t max_activations) {
  SpiralExperimentResult result;
  result.psi = psi;
  result.edge_scale = edge_scale;

  const metrics::SpiralConfiguration cfg = metrics::spiral_configuration(psi, edge_scale);
  const std::vector<Vec2>& initial = cfg.positions;
  result.robot_count = initial.size();

  constexpr double kV = 1.0;
  result.initially_connected = core::VisibilityGraph(initial, kV).connected();

  const std::size_t chain_len = initial.size() - cfg.chain_begin;
  const double tolerance = psi / (2.0 * static_cast<double>(chain_len));

  const algo::LensMidpointAlgorithm victim({.colinearity_tolerance = tolerance});
  SliverFlatteningScheduler::Params sparams;
  sparams.chain_begin = cfg.chain_begin;
  sparams.visibility = kV;
  sparams.colinearity_tolerance = tolerance;
  sparams.max_activations = max_activations;
  SliverFlatteningScheduler scheduler(initial.size(), sparams);

  core::EngineConfig config;
  config.visibility.radius = kV;
  config.error.random_rotation = false;  // exact perception; see DESIGN.md §5
  core::Engine engine(initial, victim, scheduler, config);
  engine.run(max_activations + 2);

  const core::Trace& trace = engine.trace();
  result.activations = trace.records().size();

  const auto final_cfg = engine.current_configuration();
  const Vec2 a0 = initial[0];
  result.zeta = final_cfg[0].distance_to(a0);
  result.final_separation_ab = final_cfg[0].distance_to(final_cfg[cfg.chain_begin]);
  result.visibility_broken = result.final_separation_ab > kV + 1e-9;
  result.finally_connected = core::VisibilityGraph(final_cfg, kV).connected();

  // Drift is measured against A's ORIGINAL position: distances to A are the
  // paper's preserved quantity (§7.2.3); A itself only moves at the very end.
  for (std::size_t j = cfg.chain_begin; j < initial.size(); ++j) {
    const double drift = std::abs(final_cfg[j].distance_to(a0) - initial[j].distance_to(a0));
    result.max_chain_drift = std::max(result.max_chain_drift, drift);
  }

  result.schedule_nested = core::is_nested_activation(trace);
  // Nesting depth: activations whose Look falls inside X_A's interval.
  std::size_t depth = 0;
  for (const auto& rec : trace.records()) {
    if (rec.activation.robot != 0) ++depth;
  }
  result.nesting_depth = depth;
  return result;
}

}  // namespace cohesion::adversary
