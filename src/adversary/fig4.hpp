// The Figure-4 counterexample: unmodified Ando Go-To-Centre-Of-SEC loses
// visibility under 1-Async (a) and 2-NestA (b) scheduling.
//
// Five robots: A, B, C stationary (never activated); X is activated twice,
// Y once. The timelines make every Look of X see Y still at Y0 and the Look
// of Y see X still at X0 (Y's Move is scheduled after X's moves complete) —
// the stale-snapshot mechanism of the paper's Fig. 4. The paper gives the
// construction qualitatively; we search a seeded random family of
// placements for one where the final separation |X2 Y1| exceeds V, then
// certify the schedule with the trace validators.
#pragma once

#include <vector>

#include "core/activation.hpp"
#include "core/algorithm.hpp"
#include "geometry/vec2.hpp"

namespace cohesion::adversary {

enum class Fig4Variant { kOneAsync, kTwoNestA };

struct Fig4Result {
  std::vector<geom::Vec2> initial;   ///< [A, B, C, X0, Y0]
  double final_separation = 0.0;     ///< |X2 Y1| under Ando, units of V
  double kknps_separation = 0.0;     ///< same timeline under KKNPS
  bool ando_separates = false;       ///< final_separation > V
  bool kknps_separates = false;      ///< should always be false
  bool schedule_valid = false;       ///< validator certified the model
  std::size_t trials_used = 0;
};

/// Index constants into Fig4Result::initial.
inline constexpr std::size_t kFig4A = 0, kFig4B = 1, kFig4C = 2, kFig4X = 3, kFig4Y = 4;

/// The scripted activation timeline for the variant (V-independent).
std::vector<core::Activation> fig4_timeline(Fig4Variant variant);

/// Search up to `max_trials` seeded placements for a separating
/// configuration; returns the best found (ando_separates tells success).
Fig4Result find_fig4_counterexample(Fig4Variant variant, std::size_t max_trials = 200000,
                                    std::uint64_t seed = 42);

/// Run the given initial placement through the variant's timeline with the
/// given algorithm; returns final |XY| separation (V = 1).
double run_fig4_scenario(const std::vector<geom::Vec2>& initial, Fig4Variant variant,
                         const core::Algorithm& algorithm);

}  // namespace cohesion::adversary
