#include "adversary/greedy_stretch.hpp"

#include <algorithm>
#include <limits>

namespace cohesion::adversary {

using core::Activation;
using core::RobotId;
using core::SimulationView;
using core::Snapshot;
using geom::Vec2;

GreedyStretchScheduler::GreedyStretchScheduler(const core::Algorithm& algorithm,
                                               std::vector<Vec2> initial, Params params)
    : algorithm_(algorithm), initial_(std::move(initial)), params_(params), n_(initial_.size()) {
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      if (initial_[i].distance_to(initial_[j]) <= params_.visibility + 1e-12) {
        watched_pairs_.emplace_back(i, j);
      }
    }
  }
}

Snapshot GreedyStretchScheduler::snapshot_at(const SimulationView& view, RobotId robot,
                                             double t) const {
  const Vec2 self = view.position(robot, t);
  Snapshot snap;
  for (RobotId other = 0; other < n_; ++other) {
    if (other == robot) continue;
    const Vec2 p = view.position(other, t);
    if (self.distance_to(p) <= params_.visibility + 1e-12) {
      snap.neighbours.push_back({p - self, false});
    }
  }
  return snap;
}

double GreedyStretchScheduler::score_candidate(const SimulationView& view, RobotId robot,
                                               double look, double fraction) const {
  const Snapshot snap = snapshot_at(view, robot, look);
  const Vec2 self = view.position(robot, look);
  const Vec2 move = algorithm_.compute(snap) * fraction;
  const Vec2 dest = self + move;

  // Everyone else at their committed endpoints ("far future").
  const double future = look + 1e6;
  double worst = 0.0;
  for (const auto& [i, j] : watched_pairs_) {
    const Vec2 pi = (i == robot) ? dest : view.position(i, future);
    const Vec2 pj = (j == robot) ? dest : view.position(j, future);
    worst = std::max(worst, pi.distance_to(pj));
  }
  // Tie-break toward motion: among equally-stretching choices, prefer the
  // one that displaces a robot the most — stasis never sets up a future
  // stale-snapshot opportunity.
  return worst + 1e-4 * move.norm();
}

std::optional<Activation> GreedyStretchScheduler::next(const SimulationView& view) {
  const double frontier = view.frontier();
  Candidate best{0, frontier, 1.0, -1.0};

  const bool forced = params_.fairness_every != 0 && picks_ % params_.fairness_every == 0;
  const RobotId forced_robot = picks_ % std::max<std::size_t>(n_, 1);

  for (RobotId r = 0; r < n_; ++r) {
    if (forced && r != forced_robot) continue;
    double look = std::max(view.busy_until(r), frontier);
    // Respect the k-bound by postponement, as in KAsyncScheduler.
    if (params_.k != static_cast<std::size_t>(-1)) {
      bool moved = true;
      while (moved) {
        moved = false;
        for (const OpenInterval& c : open_) {
          if (c.robot == r) continue;
          if (look > c.start + 1e-12 && look < c.end - 1e-12 && c.looks_inside[r] >= params_.k) {
            look = c.end;
            moved = true;
          }
        }
      }
    }
    for (const double fraction : {params_.xi, 1.0}) {
      const double score = score_candidate(view, r, look, fraction);
      // Prefer higher score; tie-break toward earlier look times so the
      // schedule stays dense.
      if (score > best.score + 1e-12 ||
          (score > best.score - 1e-12 && look < best.look)) {
        best = {r, look, fraction, score};
      }
    }
  }
  ++picks_;

  Activation a;
  a.robot = best.robot;
  a.t_look = best.look;
  a.t_move_start = best.look + 0.1;
  a.t_move_end = best.look + params_.move_duration;
  a.realized_fraction = best.fraction;

  for (OpenInterval& c : open_) {
    if (c.robot != best.robot && best.look > c.start + 1e-12 && best.look < c.end - 1e-12) {
      ++c.looks_inside[best.robot];
    }
  }
  open_.push_back({best.robot, a.t_look, a.t_move_end, std::vector<std::size_t>(n_, 0)});
  std::erase_if(open_, [&](const OpenInterval& c) { return c.end <= best.look + 1e-12; });

  return a;
}

}  // namespace cohesion::adversary
