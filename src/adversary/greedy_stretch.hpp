// A greedy adversarial scheduler: at every step it evaluates, with one-step
// lookahead, which robot's activation (and which xi-rigid truncation)
// maximizes the worst separation among initially visible pairs — then
// schedules exactly that, subject to the k-Async bound.
//
// This is a much stronger adversary than the randomized schedulers: it
// plays the stale-snapshot game deliberately (long Move intervals create
// windows in which others act on outdated positions). Against Ando it finds
// separations quickly; against KKNPS with matching 1/k scaling it must fail
// (Theorem 4), which makes it a sharp empirical probe of the theorem.
//
// The adversary is omniscient (it knows the control algorithm and exact
// positions), which the paper's scheduler model permits.
#pragma once

#include <optional>
#include <vector>

#include "core/algorithm.hpp"
#include "core/scheduler.hpp"
#include "geometry/vec2.hpp"

namespace cohesion::adversary {

class GreedyStretchScheduler final : public core::Scheduler {
 public:
  struct Params {
    std::size_t k = 1;            ///< k-Async bound to respect (SIZE_MAX = none)
    double visibility = 1.0;      ///< V (the adversary knows it)
    double move_duration = 4.0;   ///< long moves maximize stale windows
    double xi = 0.5;              ///< adversary may truncate to this fraction
    std::size_t fairness_every = 16;  ///< force round-robin every N picks
  };

  /// `algorithm` is the controller under attack; `initial` the starting
  /// configuration (used to fix the set of initially visible pairs).
  GreedyStretchScheduler(const core::Algorithm& algorithm, std::vector<geom::Vec2> initial,
                         Params params);

  std::optional<core::Activation> next(const core::SimulationView& view) override;
  [[nodiscard]] std::string_view name() const override { return "greedy-stretch"; }

 private:
  struct Candidate {
    core::RobotId robot;
    double look;
    double fraction;
    double score;
  };

  /// Exact honest snapshot the robot would take at time t, from the view.
  [[nodiscard]] core::Snapshot snapshot_at(const core::SimulationView& view,
                                           core::RobotId robot, double t) const;
  /// Worst separation among initially visible pairs if `robot` realizes
  /// `fraction` of its computed move, all others resting at their committed
  /// endpoints.
  [[nodiscard]] double score_candidate(const core::SimulationView& view, core::RobotId robot,
                                       double look, double fraction) const;

  const core::Algorithm& algorithm_;
  std::vector<geom::Vec2> initial_;
  std::vector<std::pair<std::size_t, std::size_t>> watched_pairs_;
  Params params_;
  std::size_t n_;
  std::size_t picks_ = 0;

  struct OpenInterval {
    core::RobotId robot;
    double start, end;
    std::vector<std::size_t> looks_inside;
  };
  std::vector<OpenInterval> open_;
};

}  // namespace cohesion::adversary
