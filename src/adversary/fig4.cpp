#include "adversary/fig4.hpp"

#include <cmath>
#include <random>

#include "algo/baselines.hpp"
#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "core/validators.hpp"
#include "geometry/angles.hpp"
#include "sched/asynchronous.hpp"

namespace cohesion::adversary {

using core::Activation;
using geom::Vec2;

std::vector<Activation> fig4_timeline(Fig4Variant variant) {
  // Robots X (index 3) and Y (index 4). Long Compute phases realize the
  // stale snapshots: Y looks early but moves last.
  std::vector<Activation> acts;
  auto act = [](core::RobotId r, double look, double ms, double me) {
    Activation a;
    a.robot = r;
    a.t_look = look;
    a.t_move_start = ms;
    a.t_move_end = me;
    a.realized_fraction = 1.0;  // rigid, per the paper's Fig. 4 discussion
    return a;
  };
  if (variant == Fig4Variant::kOneAsync) {
    // X: [0.0, 1.0], Y: [0.5, 5.1] (crossing), X again: [1.5, 2.0] inside
    // Y's interval. One Look of each within any interval of the other.
    acts.push_back(act(kFig4X, 0.0, 0.9, 1.0));
    acts.push_back(act(kFig4Y, 0.5, 5.0, 5.1));
    acts.push_back(act(kFig4X, 1.5, 1.9, 2.0));
  } else {
    // Y: [0.4, 6.0] with both X activations nested inside: 2-NestA.
    acts.push_back(act(kFig4Y, 0.4, 5.0, 6.0));
    acts.push_back(act(kFig4X, 0.5, 0.9, 1.0));
    acts.push_back(act(kFig4X, 1.5, 1.9, 2.0));
  }
  return acts;
}

double run_fig4_scenario(const std::vector<Vec2>& initial, Fig4Variant variant,
                         const core::Algorithm& algorithm) {
  sched::ScriptedScheduler scheduler(fig4_timeline(variant));
  core::EngineConfig config;
  config.visibility.radius = 1.0;
  config.error = {};  // exact perception; rigid motion comes from the script
  config.error.random_rotation = false;
  core::Engine engine(initial, algorithm, scheduler, config);
  engine.run(100);
  const auto final_cfg = engine.current_configuration();
  return final_cfg[kFig4X].distance_to(final_cfg[kFig4Y]);
}

Fig4Result find_fig4_counterexample(Fig4Variant variant, std::size_t max_trials,
                                    std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);

  const algo::AndoAlgorithm ando(/*v=*/1.0);
  Fig4Result best;
  best.final_separation = 0.0;

  std::uniform_real_distribution<double> full_angle(-geom::kPi, geom::kPi);
  const std::size_t random_trials = max_trials > 4000 ? max_trials - 4000 : max_trials;

  for (std::size_t trial = 0; trial < random_trials; ++trial) {
    // Family around the paper's figure: X0 at the origin; Y0 near the
    // visibility threshold; A is Y's "puller" (shapes Y's SEC goal), B and C
    // are X's pullers; all directions free — the separating geometry sends
    // X and Y on roughly perpendicular, opposed detours.
    const double d_xy = 0.80 + 0.199 * u01(rng);
    const Vec2 x0{0.0, 0.0};
    const Vec2 y0 = geom::unit(geom::kPi + 0.4 * (u01(rng) - 0.5)) * d_xy;
    const Vec2 b = geom::unit(full_angle(rng)) * (0.5 + 0.499 * u01(rng));
    const Vec2 c = geom::unit(full_angle(rng)) * (0.5 + 0.499 * u01(rng));
    const Vec2 a = y0 + geom::unit(full_angle(rng)) * (0.5 + 0.499 * u01(rng));
    const std::vector<Vec2> initial{a, b, c, x0, y0};

    const double sep = run_fig4_scenario(initial, variant, ando);
    if (sep > best.final_separation) {
      best.final_separation = sep;
      best.initial = initial;
      best.trials_used = trial + 1;
      if (sep > 1.02) break;  // comfortably separated; stop sampling
    }
  }

  // Local refinement: jitter the best placement, keep improvements.
  if (!best.initial.empty()) {
    std::normal_distribution<double> jitter(0.0, 0.02);
    std::vector<Vec2> current = best.initial;
    for (std::size_t it = 0; it < 4000 && best.final_separation <= 1.05; ++it) {
      std::vector<Vec2> cand = current;
      for (const std::size_t idx : {kFig4A, kFig4B, kFig4C, kFig4Y}) {
        cand[idx] += Vec2{jitter(rng), jitter(rng)};
      }
      const double sep = run_fig4_scenario(cand, variant, ando);
      if (sep > best.final_separation) {
        best.final_separation = sep;
        best.initial = cand;
        current = cand;
        ++best.trials_used;
      }
    }
  }

  best.ando_separates = best.final_separation > 1.0 + 1e-9;

  if (!best.initial.empty()) {
    // Control: the same timeline with KKNPS (k matching the variant).
    const std::size_t k = variant == Fig4Variant::kOneAsync ? 1 : 2;
    const algo::KknpsAlgorithm kknps({.k = k});
    best.kknps_separation = run_fig4_scenario(best.initial, variant, kknps);
    best.kknps_separates = best.kknps_separation > 1.0 + 1e-9;

    // Certify the timeline really is in the claimed scheduling model.
    sched::ScriptedScheduler scheduler(fig4_timeline(variant));
    core::EngineConfig config;
    config.visibility.radius = 1.0;
    config.error.random_rotation = false;
    core::Engine engine(best.initial, ando, scheduler, config);
    engine.run(100);
    const core::Trace& trace = engine.trace();
    best.schedule_valid = variant == Fig4Variant::kOneAsync
                              ? core::is_k_async(trace, 1)
                              : core::is_k_nesta(trace, 2);
  }
  return best;
}

}  // namespace cohesion::adversary
