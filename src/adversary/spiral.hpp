// The Section-7 impossibility construction: an Async (in fact NestA, with
// unbounded nesting depth) adversarial scheduler that disconnects an
// initially connected configuration controlled by a cohesive, modestly
// error-tolerant algorithm.
//
// Strategy (paper §7.2):
//  1. Activate robot X_A once. It perceives B and C at the visibility
//     threshold with interior angle 3pi/4 and is forced to plan a move of
//     some zeta > 0 into the sector CAB. Its Move phase is scheduled in the
//     far future, so it stays put — motile — for the whole construction.
//  2. Nested inside X_A's activity interval, flatten the discrete spiral
//     tail sliver by sliver: in stage i, robots X_0 .. X_{i-1} are driven to
//     essential co-linearity with their neighbours so they end up on the
//     chord A-P_i, whose direction rotates by ~psi per stage, accumulating
//     to 3pi/8. Distances from A are preserved up to O(psi^2) per robot.
//  3. X_A's stale move finally executes, carrying it ~zeta in the direction
//     of the bisector of the ORIGINAL angle CAB — while X_B now sits at
//     ~3pi/8 on the other side. Their separation exceeds V: visibility (and
//     connectivity — the components are linearly separable) is broken.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

#include "core/scheduler.hpp"
#include "core/trace.hpp"
#include "metrics/configurations.hpp"

namespace cohesion::adversary {

class SliverFlatteningScheduler final : public core::Scheduler {
 public:
  struct Params {
    std::size_t chain_begin = 2;      ///< index of X_B = P_0 in the configuration
    double visibility = 1.0;          ///< V (known to the adversary)
    double colinearity_tolerance = 1e-4;  ///< matches the victim algorithm's threshold
    double far_future = 1e7;          ///< when X_A's Move executes
    std::size_t max_activations = 500000;
  };

  explicit SliverFlatteningScheduler(std::size_t robot_count, Params params);

  std::optional<core::Activation> next(const core::SimulationView& view) override;
  [[nodiscard]] std::string_view name() const override { return "sliver-flattening"; }

  [[nodiscard]] std::size_t stages_completed() const { return stage_ - 1; }
  [[nodiscard]] bool exhausted_budget() const { return exhausted_; }

 private:
  std::size_t n_;
  Params params_;
  std::size_t stage_ = 1;       // currently flattening toward chord A-P_stage
  double clock_ = 1.0;          // next activation time (inside X_A's interval)
  std::size_t issued_ = 0;
  bool a_committed_ = false;
  bool done_ = false;
  bool exhausted_ = false;
};

/// End-to-end run of the impossibility experiment.
struct SpiralExperimentResult {
  std::size_t robot_count = 0;
  double psi = 0.0;
  double edge_scale = 0.0;
  double zeta = 0.0;                 ///< length of X_A's forced move
  double final_separation_ab = 0.0;  ///< |X_A X_B| at the end, units of V
  bool visibility_broken = false;    ///< final_separation_ab > V
  bool initially_connected = false;
  bool finally_connected = false;    ///< visibility graph still connected?
  double max_chain_drift = 0.0;      ///< max | |X_j A|_final - |X_j A|_initial |
  std::size_t activations = 0;
  bool schedule_nested = false;      ///< trace certified NestA
  std::size_t nesting_depth = 0;     ///< activations nested in X_A's interval
};

/// Build the psi-spiral, run the sliver-flattening adversary against the
/// LensMidpoint victim algorithm, and report. `edge_scale` < 1 leaves head
/// room below V for the O(psi^2) flattening drift.
SpiralExperimentResult run_spiral_experiment(double psi, double edge_scale,
                                             std::size_t max_activations = 500000);

}  // namespace cohesion::adversary
