// Minimal SVG rendering of configurations, visibility graphs and
// trajectories — for inspecting runs and for the figures the examples emit.
#pragma once

#include <string>
#include <vector>

#include "core/trace.hpp"
#include "geometry/vec2.hpp"

namespace cohesion::metrics {

struct SvgStyle {
  double canvas = 720.0;        ///< output square size in px
  double margin = 24.0;         ///< px margin around the data bounding box
  double robot_radius = 3.5;    ///< px
  bool draw_visibility_edges = true;
  bool draw_visibility_disks = false;  ///< faint V-disks around robots
  std::string robot_color = "#1f6feb";
  std::string edge_color = "#c0c7cf";
  std::string trajectory_color = "#d29922";
};

/// Render a single configuration (with visibility graph at radius v).
std::string render_configuration(const std::vector<geom::Vec2>& positions, double v,
                                 const SvgStyle& style = {});

/// Render a whole run: initial configuration (hollow), final configuration
/// (filled), and per-robot trajectories sampled from the trace.
std::string render_trace(const core::Trace& trace, double v, std::size_t samples = 200,
                         const SvgStyle& style = {});

/// Write an SVG string to a file (convenience).
void write_svg(const std::string& path, const std::string& svg);

}  // namespace cohesion::metrics
