#include "metrics/configurations.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

#include "core/visibility.hpp"
#include "geometry/angles.hpp"

namespace cohesion::metrics {

using geom::Vec2;

std::vector<Vec2> line_configuration(std::size_t n, double spacing) {
  std::vector<Vec2> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = {spacing * static_cast<double>(i), 0.0};
  return out;
}

std::vector<Vec2> grid_configuration(std::size_t n, double spacing) {
  const auto cols = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  std::vector<Vec2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({spacing * static_cast<double>(i % cols),
                   spacing * static_cast<double>(i / cols)});
  }
  return out;
}

std::vector<Vec2> regular_polygon_configuration(std::size_t n, double side) {
  if (n < 3) throw std::invalid_argument("regular_polygon_configuration: n < 3");
  const double r = side / (2.0 * std::sin(geom::kPi / static_cast<double>(n)));
  std::vector<Vec2> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = geom::unit(geom::kTwoPi * static_cast<double>(i) / static_cast<double>(n)) * r;
  }
  return out;
}

std::vector<Vec2> random_connected_configuration(std::size_t n, double world_radius, double v,
                                                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(-world_radius, world_radius);
  for (int attempt = 0; attempt < 10000; ++attempt) {
    std::vector<Vec2> pts;
    pts.reserve(n);
    while (pts.size() < n) {
      const Vec2 p{coord(rng), coord(rng)};
      if (p.norm() <= world_radius) pts.push_back(p);
    }
    if (core::VisibilityGraph(pts, v).connected()) return pts;
  }
  throw std::runtime_error(
      "random_connected_configuration: could not generate a connected configuration; "
      "decrease world_radius or increase v");
}

std::vector<Vec2> two_cluster_configuration(std::size_t n, std::size_t bridge, double v,
                                            std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const double gap = v * static_cast<double>(bridge + 1) * 0.95;
  std::uniform_real_distribution<double> jitter(-v / 4.0, v / 4.0);
  std::vector<Vec2> out;
  const std::size_t half = (n > bridge ? n - bridge : 0) / 2;
  for (std::size_t i = 0; i < half; ++i) out.push_back({jitter(rng), jitter(rng)});
  for (std::size_t i = 0; i < half; ++i) out.push_back({gap + jitter(rng), jitter(rng)});
  for (std::size_t i = 1; out.size() < n; ++i) {
    out.push_back({gap * static_cast<double>(i) / static_cast<double>(bridge + 1), 0.0});
  }
  if (!core::VisibilityGraph(out, v).connected()) {
    // Tighten the bridge until connected (deterministic fallback).
    return two_cluster_configuration(n, bridge + 1, v, seed + 1);
  }
  return out;
}

SpiralConfiguration spiral_configuration(double psi, double edge_scale) {
  if (psi <= 0.0 || psi >= 0.5) {
    throw std::invalid_argument("spiral_configuration: psi must be in (0, 0.5)");
  }
  SpiralConfiguration cfg;
  cfg.psi = psi;
  const Vec2 a{0.0, 0.0};
  const Vec2 c{-1.0 / std::sqrt(2.0), -1.0 / std::sqrt(2.0)};
  const Vec2 b{1.0, 0.0};
  cfg.positions = {a, c, b};

  // Grow the tail: P_i is at unit distance from P_{i-1}; the turn angle
  // between the chord A->P_{i-1} and the edge P_{i-1}->P_i is pi - psi on
  // the ccw side (i.e. the edge deviates by psi from the extension of the
  // chord). Stop when the chord has swept 3*pi/8 from A->B.
  Vec2 prev = b;
  const double target = 3.0 * geom::kPi / 8.0;
  double chord_angle = 0.0;  // angle of A->prev
  while (chord_angle < target) {
    const double edge_dir = chord_angle + psi;  // deviate ccw by psi from the chord
    const Vec2 next = prev + geom::unit(edge_dir);
    cfg.positions.push_back(next);
    prev = next;
    chord_angle = (prev - a).angle();
    if (cfg.positions.size() > 2'000'000) {
      throw std::runtime_error("spiral_configuration: tail too long; increase psi");
    }
  }
  cfg.total_chord_angle = chord_angle;

  if (edge_scale != 1.0) {
    for (Vec2& p : cfg.positions) p *= edge_scale;
  }
  return cfg;
}

}  // namespace cohesion::metrics
