#include "metrics/online.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/visibility.hpp"
#include "geometry/convex_hull.hpp"

namespace cohesion::metrics {

using core::RobotId;
using core::Time;
using geom::Vec2;

namespace {

/// The engine admits Looks up to this far before the frontier; a pending
/// sample at T is closed only by a record provably beyond that reach.
constexpr double kLookSlack = 1e-12;

}  // namespace

ConvergenceAccumulator::ConvergenceAccumulator(std::vector<Vec2> initial, double v, double epsilon,
                                               bool track_min_pairwise)
    : initial_(std::move(initial)),
      v_(v),
      epsilon_(epsilon),
      cur_(initial_.size()),
      prev_(initial_.size()),
      done_(initial_.size(), false),
      remaining_(initial_.size()),
      per_robot_activations_(initial_.size(), 0),
      track_min_pairwise_(track_min_pairwise) {
  for (std::size_t r = 0; r < initial_.size(); ++r) {
    cur_[r].from = initial_[r];
    cur_[r].realized = initial_[r];
  }
  prev_ = cur_;
  initial_diameter_ = geom::set_diameter(initial_);
  // The batch path samples every round boundary, and round_boundaries()
  // always starts with t = 0 — open it here so a zero-duration move at
  // time 0 (which teleports a robot at the sampled instant) lands in it.
  open_sample(0.0);
}

Vec2 ConvergenceAccumulator::eval(const Segment& s, Time t) {
  // Identical branches and arithmetic to Trace::position's segment tail —
  // bit-identity with the batch path rests on this.
  if (t >= s.t_move_end) return s.realized;
  if (t >= s.t_move_start) {
    const Time span = s.t_move_end - s.t_move_start;
    const double frac = span > 0.0 ? (t - s.t_move_start) / span : 1.0;
    return geom::lerp(s.from, s.realized, frac);
  }
  return s.from;
}

Vec2 ConvergenceAccumulator::position_at(RobotId robot, Time t) const {
  if (t >= cur_[robot].t_look) return eval(cur_[robot], t);
  if (t >= prev_[robot].t_look) return eval(prev_[robot], t);
  throw std::logic_error(
      "ConvergenceAccumulator: robot " + std::to_string(robot) +
      " completed two activity cycles within the scheduler's 1e-12 look slack around sample t=" +
      std::to_string(t) + " — single-pass analysis keeps only two segments of history");
}

void ConvergenceAccumulator::open_sample(Time t) {
  PendingSample s;
  s.t = t;
  s.positions.resize(initial_.size());
  for (RobotId r = 0; r < initial_.size(); ++r) s.positions[r] = position_at(r, t);
  pending_.push_back(std::move(s));
}

void ConvergenceAccumulator::fold_sample(const std::vector<Vec2>& cfg) {
  const double diam = geom::set_diameter(cfg);
  if (rounds_to_halve_ == 0 && sample_index_ > 0 && diam <= initial_diameter_ / 2.0) {
    rounds_to_halve_ = sample_index_;
  }
  const double stretch = core::worst_initial_pair_stretch(initial_, cfg, v_);
  worst_stretch_ = std::max(worst_stretch_, stretch);
  if (stretch > 1.0 + 1e-9) cohesive_ = false;
  if (!first_converged_sample_ && diam <= epsilon_) first_converged_sample_ = sample_index_;
  if (track_min_pairwise_) {
    const double mp = min_pairwise_distance(cfg);
    windowed_min_pairwise_ = any_sample_folded_ ? std::min(windowed_min_pairwise_, mp) : mp;
    any_sample_folded_ = true;
  }
  ++sample_index_;
}

void ConvergenceAccumulator::finalize_front() {
  fold_sample(pending_.front().positions);
  pending_.pop_front();
}

void ConvergenceAccumulator::add(const core::ActivationRecord& rec) {
  const core::Activation& a = rec.activation;
  const RobotId r = a.robot;
  if (r >= initial_.size()) throw std::logic_error("ConvergenceAccumulator: bad robot id");

  // A Look beyond a pending sample's slack window proves no future record
  // can move anything at that sample — fold it into the report.
  while (!pending_.empty() && a.t_look > pending_.front().t + kLookSlack) finalize_front();

  prev_[r] = cur_[r];
  cur_[r].from = rec.from;
  cur_[r].realized = rec.realized;
  cur_[r].t_look = a.t_look;
  cur_[r].t_move_start = a.t_move_start;
  cur_[r].t_move_end = a.t_move_end;

  // This record is now r's latest with t_look <= s.t at every pending
  // sample it reaches — exactly the record Trace::position would pick.
  for (PendingSample& s : pending_) {
    if (a.t_look <= s.t) s.positions[r] = eval(cur_[r], s.t);
  }

  // Round-boundary state machine (mirrors Trace::round_boundaries).
  if (a.t_look >= last_bound_) {
    if (!done_[r]) {
      done_[r] = true;
      round_end_ = std::max(round_end_, a.t_move_end);
      if (--remaining_ == 0) {
        last_bound_ = round_end_;
        ++rounds_;
        open_sample(last_bound_);
        std::fill(done_.begin(), done_.end(), false);
        remaining_ = initial_.size();
        round_end_ = last_bound_;
      }
    }
  }

  end_time_ = std::max(end_time_, a.t_move_end);
  ++activations_;
  ++per_robot_activations_[r];
}

ConvergenceReport ConvergenceAccumulator::finish() {
  if (finished_) throw std::logic_error("ConvergenceAccumulator::finish called twice");
  finished_ = true;
  while (!pending_.empty()) finalize_front();

  // The batch path appends one sample past the end of all committed motion.
  const Time t_end = end_time_ + 1.0;
  std::vector<Vec2> cfg(initial_.size());
  for (RobotId r = 0; r < initial_.size(); ++r) cfg[r] = eval(cur_[r], t_end);
  fold_sample(cfg);

  ConvergenceReport rep;
  rep.activations = activations_;
  rep.initial_diameter = initial_diameter_;
  rep.rounds = rounds_;
  rep.rounds_to_halve = rounds_to_halve_;
  rep.worst_stretch = worst_stretch_;
  rep.cohesive = cohesive_;
  rep.final_diameter = geom::set_diameter(cfg);
  rep.converged = rep.final_diameter <= epsilon_;
  return rep;
}

}  // namespace cohesion::metrics
