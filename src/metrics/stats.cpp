#include "metrics/stats.hpp"

#include <algorithm>
#include <limits>

#include "core/visibility.hpp"
#include "geometry/convex_hull.hpp"
#include "geometry/smallest_enclosing_circle.hpp"

namespace cohesion::metrics {

using geom::Vec2;

ConfigurationStats configuration_stats(const std::vector<Vec2>& positions, double v) {
  ConfigurationStats s;
  const auto hull = geom::convex_hull(positions);
  s.diameter = geom::hull_diameter(hull);
  s.hull_perimeter = geom::polygon_perimeter(hull);
  s.sec_radius = geom::smallest_enclosing_circle(positions).radius;
  s.min_pairwise = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      s.min_pairwise = std::min(s.min_pairwise, positions[i].distance_to(positions[j]));
    }
  }
  if (positions.size() < 2) s.min_pairwise = 0.0;
  s.connected = core::VisibilityGraph(positions, v).connected();
  return s;
}

std::vector<ConfigurationStats> stats_over_time(const core::Trace& trace,
                                                const std::vector<core::Time>& times, double v) {
  std::vector<ConfigurationStats> out;
  out.reserve(times.size());
  for (const core::Time t : times) out.push_back(configuration_stats(trace.configuration(t), v));
  return out;
}

ConvergenceReport analyze(const core::Trace& trace, double v, double epsilon) {
  ConvergenceReport rep;
  rep.activations = trace.records().size();
  const auto& initial = trace.initial_configuration();
  rep.initial_diameter = geom::set_diameter(initial);

  std::vector<core::Time> samples = trace.round_boundaries();
  samples.push_back(trace.end_time() + 1.0);
  rep.rounds = samples.size() >= 2 ? samples.size() - 2 : 0;

  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto cfg = trace.configuration(samples[i]);
    const double diam = geom::set_diameter(cfg);
    if (rep.rounds_to_halve == 0 && i > 0 && diam <= rep.initial_diameter / 2.0) {
      rep.rounds_to_halve = i;
    }
    const double stretch = core::worst_initial_pair_stretch(initial, cfg, v);
    rep.worst_stretch = std::max(rep.worst_stretch, stretch);
    if (stretch > 1.0 + 1e-9) rep.cohesive = false;
  }
  rep.final_diameter = geom::set_diameter(trace.configuration(trace.end_time() + 1.0));
  rep.converged = rep.final_diameter <= epsilon;
  return rep;
}

}  // namespace cohesion::metrics
