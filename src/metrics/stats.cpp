#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/spatial_index.hpp"
#include "core/visibility.hpp"
#include "metrics/online.hpp"
#include "geometry/convex_hull.hpp"
#include "geometry/smallest_enclosing_circle.hpp"

namespace cohesion::metrics {

using geom::Vec2;

double min_pairwise_distance_brute(const std::vector<Vec2>& positions) {
  if (positions.size() < 2) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      best = std::min(best, positions[i].distance_to(positions[j]));
    }
  }
  return best;
}

double min_pairwise_distance(const std::vector<Vec2>& positions) {
  const std::size_t n = positions.size();
  if (n < 2) return 0.0;

  // Start from the radius a uniform configuration would need (bounding-box
  // diagonal over sqrt(n)); degenerate all-coincident inputs get any
  // positive radius.
  double min_x = positions[0].x, max_x = min_x, min_y = positions[0].y, max_y = min_y;
  for (const Vec2& p : positions) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double diagonal = std::hypot(max_x - min_x, max_y - min_y);
  double radius = diagonal > 0.0 ? diagonal / std::sqrt(static_cast<double>(n)) : 1.0;

  core::SpatialGrid grid;
  std::vector<std::size_t> neighbor_ids;
  std::vector<bool> resolved(n, false);
  double best = std::numeric_limits<double>::infinity();
  std::size_t remaining = n;
  while (remaining > 0) {
    // The cell side tracks the query radius, so a query touches <= 3x3
    // cells every round; each rebuild is O(n).
    grid.set_cell_size(radius);
    grid.rebuild(positions);
    for (std::size_t i = 0; i < n; ++i) {
      if (resolved[i]) continue;
      grid.neighbors_within(positions[i], radius, /*open_ball=*/false, neighbor_ids);
      double nearest = std::numeric_limits<double>::infinity();
      for (const std::size_t j : neighbor_ids) {
        if (j != i) nearest = std::min(nearest, positions[i].distance_to(positions[j]));
      }
      // A found neighbour at distance d <= radius bounds the true nearest
      // neighbour by d, and every point closer than d is inside the query
      // ball too — so `nearest` is exact once any neighbour is found.
      if (nearest < std::numeric_limits<double>::infinity()) {
        resolved[i] = true;
        --remaining;
        best = std::min(best, nearest);
      }
    }
    // Unresolved points have no neighbour within `radius`; they cannot beat
    // a best already at or below it.
    if (best <= radius) break;
    radius *= 2.0;
  }
  return best;
}

ConfigurationStats configuration_stats(const std::vector<Vec2>& positions, double v) {
  ConfigurationStats s;
  const auto hull = geom::convex_hull(positions);
  s.diameter = geom::hull_diameter(hull);
  s.hull_perimeter = geom::polygon_perimeter(hull);
  s.sec_radius = geom::smallest_enclosing_circle(positions).radius;
  s.min_pairwise = min_pairwise_distance(positions);
  s.connected = core::VisibilityGraph(positions, v).connected();
  return s;
}

std::vector<ConfigurationStats> stats_over_time(const core::Trace& trace,
                                                const std::vector<core::Time>& times, double v) {
  std::vector<ConfigurationStats> out;
  out.reserve(times.size());
  for (const core::Time t : times) out.push_back(configuration_stats(trace.configuration(t), v));
  return out;
}

ConvergenceReport analyze(const core::Trace& trace, double v, double epsilon) {
  ConvergenceAccumulator acc(trace.initial_configuration(), v, epsilon);
  for (const core::ActivationRecord& rec : trace.records()) acc.add(rec);
  return acc.finish();
}

ConvergenceReport analyze_rescan(const core::Trace& trace, double v, double epsilon) {
  ConvergenceReport rep;
  rep.activations = trace.records().size();
  const auto& initial = trace.initial_configuration();
  rep.initial_diameter = geom::set_diameter(initial);

  std::vector<core::Time> samples = trace.round_boundaries();
  samples.push_back(trace.end_time() + 1.0);
  rep.rounds = samples.size() >= 2 ? samples.size() - 2 : 0;

  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto cfg = trace.configuration(samples[i]);
    const double diam = geom::set_diameter(cfg);
    if (rep.rounds_to_halve == 0 && i > 0 && diam <= rep.initial_diameter / 2.0) {
      rep.rounds_to_halve = i;
    }
    const double stretch = core::worst_initial_pair_stretch(initial, cfg, v);
    rep.worst_stretch = std::max(rep.worst_stretch, stretch);
    if (stretch > 1.0 + 1e-9) rep.cohesive = false;
  }
  rep.final_diameter = geom::set_diameter(trace.configuration(trace.end_time() + 1.0));
  rep.converged = rep.final_diameter <= epsilon;
  return rep;
}

}  // namespace cohesion::metrics
