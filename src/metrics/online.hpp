// Single-pass convergence analysis: the same ConvergenceReport analyze()
// computes from a materialized Trace, folded from a forward stream of
// ActivationRecords in bounded memory.
//
// The hard part is that a round boundary T (the paper's rate unit) is only
// *discovered* when the round's last robot completes its cycle — but T is
// the max move-end of the counted cycles, so records arriving after the
// discovery can still have Look times <= T and move robots at T. The
// accumulator therefore keeps each discovered boundary as a *pending
// sample*: an O(n) positions-at-T vector updated by late records, finalized
// (diameter / cohesion-stretch folded into the report) only once a record
// with t_look > T + 1e-12 proves — via the engine's look-ordering contract,
// which admits Looks at most 1e-12 before the frontier — that no future
// record can reach back to T. Finalization order is discovery order, so
// sample indices (and thus rounds_to_halve) match the batch path exactly.
//
// Positions at a pending T are evaluated from each robot's current or
// previous trajectory segment (the same retention trick as
// KinematicState::position_bounded). A robot would escape that window only
// by completing two full activity cycles within the 1e-12 slack; the
// accumulator rejects that loudly rather than silently diverging from the
// reference. Every per-sample position runs the identical interpolation
// arithmetic as Trace::position, so the resulting report is bit-identical
// to metrics::analyze_rescan on the materialized trace.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "core/activation.hpp"
#include "core/types.hpp"
#include "geometry/vec2.hpp"
#include "metrics/stats.hpp"

namespace cohesion::metrics {

class ConvergenceAccumulator {
 public:
  /// `v` is the visibility radius (cohesion stretch unit), `epsilon` the
  /// convergence threshold — the same parameters analyze() takes.
  /// `track_min_pairwise` additionally folds the grid-accelerated minimum
  /// pairwise distance at every sample window (the collision indicator of
  /// configuration_stats); off by default so analyze() costs what the
  /// rescan path cost.
  ConvergenceAccumulator(std::vector<geom::Vec2> initial, double v, double epsilon,
                         bool track_min_pairwise = false);

  /// Fold one committed activation. Records must arrive in the engine's
  /// commit order (non-decreasing Look times up to the 1e-12 slack).
  void add(const core::ActivationRecord& rec);

  /// Finalize remaining samples plus the end-of-run sample and return the
  /// report. Call once, after the last add().
  [[nodiscard]] ConvergenceReport finish();

  [[nodiscard]] std::size_t robot_count() const { return initial_.size(); }
  [[nodiscard]] std::size_t activations() const { return activations_; }
  [[nodiscard]] core::Time end_time() const { return end_time_; }
  /// Completed activations per robot, maintained as records fold in.
  [[nodiscard]] const std::vector<std::size_t>& per_robot_activations() const {
    return per_robot_activations_;
  }
  /// Index of the first finalized sample whose diameter was <= epsilon
  /// (the convergence-epsilon window), if any yet.
  [[nodiscard]] std::optional<std::size_t> first_converged_sample() const {
    return first_converged_sample_;
  }
  /// Min over finalized sample windows of the configuration's minimum
  /// pairwise distance (metrics::min_pairwise_distance, grid-accelerated).
  /// Requires track_min_pairwise; 0 before any sample finalized.
  [[nodiscard]] double windowed_min_pairwise() const { return windowed_min_pairwise_; }

 private:
  struct Segment {
    geom::Vec2 from;
    geom::Vec2 realized;
    core::Time t_look = 0.0;
    core::Time t_move_start = 0.0;
    core::Time t_move_end = 0.0;
  };
  struct PendingSample {
    core::Time t = 0.0;
    std::vector<geom::Vec2> positions;  // configuration at t so far
  };

  [[nodiscard]] static geom::Vec2 eval(const Segment& s, core::Time t);
  [[nodiscard]] geom::Vec2 position_at(core::RobotId robot, core::Time t) const;
  void open_sample(core::Time t);
  void finalize_front();
  void fold_sample(const std::vector<geom::Vec2>& cfg);

  std::vector<geom::Vec2> initial_;
  double v_;
  double epsilon_;

  // Last two trajectory segments per robot (current + previous), the
  // bounded history every pending sample draws from.
  std::vector<Segment> cur_;
  std::vector<Segment> prev_;

  // Round-boundary state machine, mirroring Trace::round_boundaries.
  std::vector<bool> done_;
  std::size_t remaining_ = 0;
  core::Time round_end_ = 0.0;
  core::Time last_bound_ = 0.0;

  std::deque<PendingSample> pending_;  // discovery order == time order

  // Report fields folded as samples finalize.
  std::size_t sample_index_ = 0;
  std::size_t rounds_ = 0;
  std::size_t rounds_to_halve_ = 0;
  double initial_diameter_ = 0.0;
  double worst_stretch_ = 0.0;
  bool cohesive_ = true;
  std::size_t activations_ = 0;
  core::Time end_time_ = 0.0;
  std::vector<std::size_t> per_robot_activations_;
  std::optional<std::size_t> first_converged_sample_;
  bool track_min_pairwise_ = false;
  double windowed_min_pairwise_ = 0.0;
  bool any_sample_folded_ = false;
  bool finished_ = false;
};

}  // namespace cohesion::metrics
