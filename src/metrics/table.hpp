// Minimal fixed-width table printer for the benchmark harness, so every
// bench emits readable paper-style rows, plus a CSV writer for plotting.
#pragma once

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace cohesion::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  template <typename... Ts>
  void add_row(const Ts&... cells) {
    std::vector<std::string> row;
    (row.push_back(to_cell(cells)), ...);
    rows_.push_back(std::move(row));
  }

  void print(std::ostream& os = std::cout) const;
  void write_csv(const std::string& path) const;

 private:
  template <typename T>
  static std::string to_cell(const T& value) {
    std::ostringstream ss;
    ss.precision(6);
    ss << value;
    return ss.str();
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cohesion::metrics
