// Initial-configuration generators for experiments and tests.
//
// All generators produce configurations whose visibility graph at radius
// `v` is connected (the paper's standing assumption), unless noted.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/vec2.hpp"

namespace cohesion::metrics {

/// `n` robots on a line with spacing `spacing` (connected iff spacing <= v).
std::vector<geom::Vec2> line_configuration(std::size_t n, double spacing);

/// Square-ish grid with the given spacing.
std::vector<geom::Vec2> grid_configuration(std::size_t n, double spacing);

/// Regular n-gon with the given side length (the frozen configuration of the
/// paper's angle-error impossibility argument, §6.1).
std::vector<geom::Vec2> regular_polygon_configuration(std::size_t n, double side);

/// Random points in a disk of radius `world_radius`, resampled until the
/// visibility graph at `v` is connected. Deterministic in `seed`.
std::vector<geom::Vec2> random_connected_configuration(std::size_t n, double world_radius,
                                                       double v, std::uint64_t seed);

/// Two dense clusters of n/2 robots bridged by a chain of `bridge` robots at
/// visibility-range spacing — stresses connectivity preservation.
std::vector<geom::Vec2> two_cluster_configuration(std::size_t n, std::size_t bridge, double v,
                                                  std::uint64_t seed);

/// The Section-7 discrete spiral: A at the origin, C at (-1/sqrt2,-1/sqrt2),
/// B = P0 at (1, 0), then P_1 ... P_{n-3} with unit edges, each turning by
/// `psi` relative to the chord from A (paper §7.1, Fig. 19). The count n is
/// chosen so that the angle between chords A-P0 and A-P_{n-3} reaches
/// 3*pi/8. All edge lengths are scaled by `edge_scale` (set slightly below
/// the visibility threshold so that flattening drift keeps pairs visible).
struct SpiralConfiguration {
  std::vector<geom::Vec2> positions;  ///< [0]=A, [1]=C, [2]=B=P0, [3..]=P1..
  std::size_t chain_begin = 2;        ///< index of B
  double psi = 0.0;
  double total_chord_angle = 0.0;     ///< achieved angle between A-P0 and A-P_last
};

SpiralConfiguration spiral_configuration(double psi, double edge_scale = 1.0);

}  // namespace cohesion::metrics
