// Configuration statistics and convergence measurements.
#pragma once

#include <vector>

#include "core/trace.hpp"
#include "geometry/vec2.hpp"

namespace cohesion::metrics {

struct ConfigurationStats {
  double diameter = 0.0;        ///< max pairwise distance
  double hull_perimeter = 0.0;  ///< perimeter of the convex hull
  double sec_radius = 0.0;      ///< radius of the smallest enclosing circle
  double min_pairwise = 0.0;    ///< min pairwise distance (collision indicator)
  bool connected = false;       ///< visibility graph connected at radius v
};

ConfigurationStats configuration_stats(const std::vector<geom::Vec2>& positions, double v);

/// Exact minimum pairwise distance (0 for fewer than two points).
/// Grid-accelerated: expanding-radius nearest-neighbour queries over
/// core::SpatialGrid — each round doubles the radius, resolves every point
/// that has a neighbour within it, and stops once no unresolved point can
/// beat the best distance found. The grid changes which pairs are
/// examined, never the distance computation, so the result is bit-identical
/// to the O(n^2) scan below.
double min_pairwise_distance(const std::vector<geom::Vec2>& positions);

/// The brute-force reference — kept as the oracle for tests.
double min_pairwise_distance_brute(const std::vector<geom::Vec2>& positions);

/// Time series of statistics sampled at the given times.
std::vector<ConfigurationStats> stats_over_time(const core::Trace& trace,
                                                const std::vector<core::Time>& times, double v);

/// Convergence-rate summary extracted from a finished trace.
struct ConvergenceReport {
  bool converged = false;       ///< final diameter <= epsilon
  double initial_diameter = 0.0;
  double final_diameter = 0.0;
  std::size_t rounds = 0;       ///< completed rounds (paper's rate unit)
  std::size_t rounds_to_halve = 0;  ///< rounds until diameter <= initial/2 (0 if never)
  std::size_t activations = 0;
  bool cohesive = true;         ///< E(0) subseteq E(t) at every sampled time
  double worst_stretch = 0.0;   ///< max over time of worst initial-pair distance / V
};

/// Analyze a trace: samples the configuration at every round boundary plus
/// the end of the trace. Single forward pass over the records (via
/// ConvergenceAccumulator) — no whole-trace position rescans.
ConvergenceReport analyze(const core::Trace& trace, double v, double epsilon);

/// The original rescan implementation — computes round boundaries from the
/// full trace, then reconstructs the configuration at every sample via
/// per-robot binary searches. Bit-identical to analyze(); kept as the
/// oracle the single-pass and streaming paths are tested against.
ConvergenceReport analyze_rescan(const core::Trace& trace, double v, double epsilon);

}  // namespace cohesion::metrics
