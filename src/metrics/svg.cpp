#include "metrics/svg.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "core/visibility.hpp"
#include "geometry/minbox.hpp"

namespace cohesion::metrics {

using geom::Vec2;

namespace {

/// Affine map from world coordinates to SVG pixel coordinates (y flipped).
class Viewport {
 public:
  Viewport(const geom::MinBox& box, const SvgStyle& style) {
    const double w = std::max({box.width(), box.height(), 1e-9});
    scale_ = (style.canvas - 2.0 * style.margin) / w;
    // Centre the data box in the canvas.
    const Vec2 c = box.center();
    offset_x_ = style.canvas / 2.0 - c.x * scale_;
    offset_y_ = style.canvas / 2.0 + c.y * scale_;
  }

  [[nodiscard]] double x(double wx) const { return offset_x_ + wx * scale_; }
  [[nodiscard]] double y(double wy) const { return offset_y_ - wy * scale_; }
  [[nodiscard]] double len(double w) const { return w * scale_; }

 private:
  double scale_ = 1.0;
  double offset_x_ = 0.0;
  double offset_y_ = 0.0;
};

void open_svg(std::ostringstream& out, const SvgStyle& style) {
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << style.canvas << "\" height=\""
      << style.canvas << "\" viewBox=\"0 0 " << style.canvas << ' ' << style.canvas << "\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
}

void draw_edges(std::ostringstream& out, const Viewport& vp,
                const std::vector<Vec2>& positions, double v, const SvgStyle& style) {
  const core::VisibilityGraph g(positions, v);
  for (const auto& [a, b] : g.edges()) {
    out << "<line x1=\"" << vp.x(positions[a].x) << "\" y1=\"" << vp.y(positions[a].y)
        << "\" x2=\"" << vp.x(positions[b].x) << "\" y2=\"" << vp.y(positions[b].y)
        << "\" stroke=\"" << style.edge_color << "\" stroke-width=\"1\"/>\n";
  }
}

void draw_robots(std::ostringstream& out, const Viewport& vp,
                 const std::vector<Vec2>& positions, const SvgStyle& style, bool filled) {
  for (const Vec2 p : positions) {
    out << "<circle cx=\"" << vp.x(p.x) << "\" cy=\"" << vp.y(p.y) << "\" r=\""
        << style.robot_radius << "\" ";
    if (filled) {
      out << "fill=\"" << style.robot_color << "\"";
    } else {
      out << "fill=\"none\" stroke=\"" << style.robot_color << "\" stroke-width=\"1.2\"";
    }
    out << "/>\n";
  }
}

}  // namespace

std::string render_configuration(const std::vector<Vec2>& positions, double v,
                                 const SvgStyle& style) {
  std::ostringstream out;
  open_svg(out, style);
  const Viewport vp(geom::minbox(positions), style);
  if (style.draw_visibility_disks) {
    for (const Vec2 p : positions) {
      out << "<circle cx=\"" << vp.x(p.x) << "\" cy=\"" << vp.y(p.y) << "\" r=\"" << vp.len(v)
          << "\" fill=\"none\" stroke=\"#eef1f4\" stroke-width=\"1\"/>\n";
    }
  }
  if (style.draw_visibility_edges) draw_edges(out, vp, positions, v, style);
  draw_robots(out, vp, positions, style, /*filled=*/true);
  out << "</svg>\n";
  return out.str();
}

std::string render_trace(const core::Trace& trace, double v, std::size_t samples,
                         const SvgStyle& style) {
  const auto& initial = trace.initial_configuration();
  const double end = trace.end_time() + 1.0;
  const auto final_cfg = trace.configuration(end);

  // Bounding box over initial + final (trajectories stay in the initial
  // hull by the hull-diminishing property, but be safe and include both).
  std::vector<Vec2> all = initial;
  all.insert(all.end(), final_cfg.begin(), final_cfg.end());
  std::ostringstream out;
  open_svg(out, style);
  const Viewport vp(geom::minbox(all), style);

  if (style.draw_visibility_edges) draw_edges(out, vp, initial, v, style);

  // Trajectories.
  for (core::RobotId r = 0; r < trace.robot_count(); ++r) {
    out << "<polyline fill=\"none\" stroke=\"" << style.trajectory_color
        << "\" stroke-width=\"1\" points=\"";
    for (std::size_t s = 0; s <= samples; ++s) {
      const double t = end * static_cast<double>(s) / static_cast<double>(samples);
      const Vec2 p = trace.position(r, t);
      out << vp.x(p.x) << ',' << vp.y(p.y) << ' ';
    }
    out << "\"/>\n";
  }

  draw_robots(out, vp, initial, style, /*filled=*/false);
  draw_robots(out, vp, final_cfg, style, /*filled=*/true);
  out << "</svg>\n";
  return out.str();
}

void write_svg(const std::string& path, const std::string& svg) {
  std::ofstream f(path);
  f << svg;
}

}  // namespace cohesion::metrics
