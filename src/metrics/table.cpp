#include "metrics/table.hpp"

#include <algorithm>
#include <iomanip>

namespace cohesion::metrics {

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(widths[c])) << (c < row.size() ? row[c] : "");
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 2;
  for (const auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  auto join = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) f << ',';
      f << row[c];
    }
    f << '\n';
  };
  join(headers_);
  for (const auto& row : rows_) join(row);
}

}  // namespace cohesion::metrics
