// Two-dimensional Euclidean vectors and points.
//
// The simulation treats robots as dimensionless points in R^2 (paper, §2.1);
// Vec2 is the common currency of every other module.
#pragma once

#include <cmath>
#include <iosfwd>
#include <limits>

namespace cohesion::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }
  constexpr bool operator==(const Vec2&) const = default;

  [[nodiscard]] constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// z-component of the 3D cross product; >0 iff `o` is counter-clockwise of *this.
  [[nodiscard]] constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }
  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  [[nodiscard]] double distance_to(Vec2 o) const { return (*this - o).norm(); }
  [[nodiscard]] constexpr double distance2_to(Vec2 o) const { return (*this - o).norm2(); }

  /// Unit vector in the same direction. Undefined for the zero vector
  /// (returns {0,0} so callers can branch on it without UB).
  [[nodiscard]] Vec2 normalized() const {
    const double n = norm();
    if (n == 0.0) return {0.0, 0.0};
    return {x / n, y / n};
  }

  /// Angle of the vector in (-pi, pi], measured from the +x axis.
  [[nodiscard]] double angle() const { return std::atan2(y, x); }

  /// Counter-clockwise rotation by `theta` radians.
  [[nodiscard]] Vec2 rotated(double theta) const {
    const double c = std::cos(theta), s = std::sin(theta);
    return {c * x - s * y, s * x + c * y};
  }

  /// Perpendicular vector (counter-clockwise quarter turn).
  [[nodiscard]] constexpr Vec2 perp() const { return {-y, x}; }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

/// Linear interpolation: a at t=0, b at t=1.
constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) { return a + (b - a) * t; }

/// Midpoint of the segment ab.
constexpr Vec2 midpoint(Vec2 a, Vec2 b) { return (a + b) * 0.5; }

/// Unit vector at angle theta.
inline Vec2 unit(double theta) { return {std::cos(theta), std::sin(theta)}; }

/// Component-wise approximate equality within absolute tolerance `eps`.
inline bool almost_equal(Vec2 a, Vec2 b, double eps = 1e-9) {
  return std::abs(a.x - b.x) <= eps && std::abs(a.y - b.y) <= eps;
}

std::ostream& operator<<(std::ostream& os, Vec2 v);

}  // namespace cohesion::geom
