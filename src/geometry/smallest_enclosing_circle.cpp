#include "geometry/smallest_enclosing_circle.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace cohesion::geom {

namespace {

Circle circle_from(Vec2 a, Vec2 b) { return {midpoint(a, b), a.distance_to(b) / 2.0}; }

Circle circle_from(Vec2 a, Vec2 b, Vec2 c) {
  if (auto cc = circumcircle(a, b, c)) return *cc;
  // (Nearly) collinear: return the smallest of the three 2-point circles
  // that covers all of them.
  Circle best{{0, 0}, std::numeric_limits<double>::infinity()};
  for (const auto& cand : {circle_from(a, b), circle_from(b, c), circle_from(a, c)}) {
    if (cand.contains(a) && cand.contains(b) && cand.contains(c) && cand.radius < best.radius) {
      best = cand;
    }
  }
  return best;
}

}  // namespace

Circle smallest_enclosing_circle(std::vector<Vec2> points) {
  if (points.empty()) return {{0.0, 0.0}, 0.0};
  // Deterministic shuffle so worst-case inputs do not trigger O(n^3).
  std::mt19937_64 rng(0x5ec5ec5ull);
  std::shuffle(points.begin(), points.end(), rng);

  // Welzl's move-to-front, iterative formulation.
  Circle c{points[0], 0.0};
  const std::size_t n = points.size();
  for (std::size_t i = 1; i < n; ++i) {
    if (c.contains(points[i])) continue;
    c = {points[i], 0.0};
    for (std::size_t j = 0; j < i; ++j) {
      if (c.contains(points[j])) continue;
      c = circle_from(points[i], points[j]);
      for (std::size_t k = 0; k < j; ++k) {
        if (c.contains(points[k])) continue;
        c = circle_from(points[i], points[j], points[k]);
      }
    }
  }
  return c;
}

bool encloses(const Circle& c, const std::vector<Vec2>& points, double eps) {
  return std::all_of(points.begin(), points.end(),
                     [&](Vec2 p) { return c.contains(p, eps); });
}

}  // namespace cohesion::geom
