// Safe regions for motion — the geometric heart of every cohesive algorithm
// the paper discusses (Fig. 3).
//
//  * Ando et al. [2]:   disk of radius V/2 centred at the midpoint of X0 Y0.
//  * Katreniak [25]:    union of a disk of radius |X0Y0|/4 centred at
//                       (X0 + 3 Y0)/4 and a disk of radius (V_Y - |X0Y0|)/4
//                       centred at Y0.
//  * KKNPS (this paper): disk of radius r = alpha * V_Y / 8 centred at the
//                       point at distance r from Y0 *in the direction of* X0,
//                       defined for distant neighbours only; alpha = 1/k in
//                       the k-Async / k-NestA models.
#pragma once

#include <vector>

#include "geometry/circle.hpp"
#include "geometry/vec2.hpp"

namespace cohesion::geom {

/// KKNPS basic safe region S^r_{Y0}(X0): the disk of radius `r` centred at
/// Y0 + r * dir(X0 - Y0). Requires X0 != Y0.
Circle kknps_safe_region(Vec2 y0, Vec2 x0, double r);

/// Ando et al. safe region: disk of radius V/2 centred at midpoint(X0, Y0).
Circle ando_safe_region(Vec2 y0, Vec2 x0, double v);

/// Katreniak's two-disk safe region for robot Y at y0 viewing X at x0 with
/// working radius v_y (distance to Y's furthest visible neighbour).
struct KatreniakRegion {
  Circle near_disk;  ///< radius |X0Y0|/4 centred at (X0 + 3*Y0)/4
  Circle self_disk;  ///< radius (v_y - |X0Y0|)/4 centred at Y0

  [[nodiscard]] bool contains(Vec2 p, double eps = 1e-9) const {
    return near_disk.contains(p, eps) || self_disk.contains(p, eps);
  }
  [[nodiscard]] double area() const;
};

KatreniakRegion katreniak_safe_region(Vec2 y0, Vec2 x0, double v_y);

/// Maximum planned move length permitted by a single safe region from y0:
/// the largest |y0 - p| over p in the region. For the KKNPS disk this is 2r;
/// for Ando it depends on |X0Y0|; provided for the Fig. 3 bench.
double max_move_within(const Circle& region, Vec2 y0);

}  // namespace cohesion::geom
