#include "geometry/minbox.hpp"

#include <algorithm>

namespace cohesion::geom {

MinBox minbox(const std::vector<Vec2>& points) {
  if (points.empty()) return {{0.0, 0.0}, {0.0, 0.0}};
  MinBox box{points[0], points[0]};
  for (const Vec2 p : points) {
    box.lo.x = std::min(box.lo.x, p.x);
    box.lo.y = std::min(box.lo.y, p.y);
    box.hi.x = std::max(box.hi.x, p.x);
    box.hi.y = std::max(box.hi.y, p.y);
  }
  return box;
}

}  // namespace cohesion::geom
