// Three-dimensional vectors — substrate for the paper's §6.3.2 extension
// of the convergence algorithm to R^3.
#pragma once

#include <cmath>

namespace cohesion::geom {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3& operator+=(Vec3 o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr bool operator==(const Vec3&) const = default;

  [[nodiscard]] constexpr double dot(Vec3 o) const { return x * o.x + y * o.y + z * o.z; }
  [[nodiscard]] constexpr Vec3 cross(Vec3 o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y + z * z; }
  [[nodiscard]] double norm() const { return std::sqrt(norm2()); }
  [[nodiscard]] double distance_to(Vec3 o) const { return (*this - o).norm(); }

  [[nodiscard]] Vec3 normalized() const {
    const double n = norm();
    if (n == 0.0) return {0.0, 0.0, 0.0};
    return *this / n;
  }
};

constexpr Vec3 operator*(double s, Vec3 v) { return v * s; }

constexpr Vec3 lerp3(Vec3 a, Vec3 b, double t) { return a + (b - a) * t; }

inline bool almost_equal(Vec3 a, Vec3 b, double eps = 1e-9) {
  return std::abs(a.x - b.x) <= eps && std::abs(a.y - b.y) <= eps && std::abs(a.z - b.z) <= eps;
}

}  // namespace cohesion::geom
