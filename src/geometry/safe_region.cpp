#include "geometry/safe_region.hpp"

#include <cmath>
#include <stdexcept>

#include "geometry/angles.hpp"

namespace cohesion::geom {

Circle kknps_safe_region(Vec2 y0, Vec2 x0, double r) {
  const Vec2 dir = (x0 - y0).normalized();
  if (dir == Vec2{0.0, 0.0}) {
    throw std::invalid_argument("kknps_safe_region: X0 coincides with Y0");
  }
  return {y0 + dir * r, r};
}

Circle ando_safe_region(Vec2 y0, Vec2 x0, double v) {
  return {midpoint(y0, x0), v / 2.0};
}

double KatreniakRegion::area() const {
  return near_disk.area() + self_disk.area() - lens_area(near_disk, self_disk);
}

KatreniakRegion katreniak_safe_region(Vec2 y0, Vec2 x0, double v_y) {
  const double d = y0.distance_to(x0);
  KatreniakRegion r;
  r.near_disk = {(x0 + y0 * 3.0) / 4.0, d / 4.0};
  r.self_disk = {y0, std::max(0.0, (v_y - d) / 4.0)};
  return r;
}

double max_move_within(const Circle& region, Vec2 y0) {
  return region.center.distance_to(y0) + region.radius;
}

}  // namespace cohesion::geom
