#include "geometry/segment.hpp"

#include <algorithm>
#include <cmath>

namespace cohesion::geom {

double Segment::closest_parameter(Vec2 p) const {
  const Vec2 d = b - a;
  const double len2 = d.norm2();
  if (len2 == 0.0) return 0.0;
  return std::clamp((p - a).dot(d) / len2, 0.0, 1.0);
}

int orientation(Vec2 a, Vec2 b, Vec2 c, double eps) {
  const double v = (b - a).cross(c - a);
  if (v > eps) return 1;
  if (v < -eps) return -1;
  return 0;
}

std::optional<Vec2> intersect(const Segment& s, const Segment& t) {
  const Vec2 r = s.b - s.a;
  const Vec2 q = t.b - t.a;
  const double denom = r.cross(q);
  const Vec2 diff = t.a - s.a;
  if (std::abs(denom) < 1e-15) {
    // Parallel. Check collinearity, then overlap.
    if (std::abs(diff.cross(r)) > 1e-12) return std::nullopt;
    const double len2 = r.norm2();
    if (len2 == 0.0) {
      if (almost_equal(s.a, t.a) || almost_equal(s.a, t.b)) return s.a;
      return std::nullopt;
    }
    double t0 = diff.dot(r) / len2;
    double t1 = t0 + q.dot(r) / len2;
    if (t0 > t1) std::swap(t0, t1);
    const double lo = std::max(t0, 0.0), hi = std::min(t1, 1.0);
    if (lo > hi) return std::nullopt;
    return s.point_at(lo);
  }
  const double u = diff.cross(q) / denom;
  const double v = diff.cross(r) / denom;
  if (u < -1e-12 || u > 1.0 + 1e-12 || v < -1e-12 || v > 1.0 + 1e-12) return std::nullopt;
  return s.point_at(std::clamp(u, 0.0, 1.0));
}

}  // namespace cohesion::geom
