// Circles and disks: membership, intersections, lens geometry.
//
// Safe regions in every algorithm the paper discusses are disks or unions /
// intersections of disks, so this is the workhorse of src/algo.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "geometry/angles.hpp"
#include "geometry/segment.hpp"
#include "geometry/vec2.hpp"

namespace cohesion::geom {

struct Circle {
  Vec2 center;
  double radius = 0.0;

  /// Closed-disk membership (with tolerance for boundary points).
  [[nodiscard]] bool contains(Vec2 p, double eps = 1e-9) const {
    return center.distance_to(p) <= radius + eps;
  }
  [[nodiscard]] double area() const { return kPi * radius * radius; }
};

/// Intersection points of two circle boundaries (0, 1, or 2 points).
std::vector<Vec2> intersect(const Circle& c1, const Circle& c2);

/// Intersection of a circle boundary with a segment (0, 1, or 2 points,
/// ordered by parameter along the segment).
std::vector<Vec2> intersect(const Circle& c, const Segment& s);

/// Area of the intersection of two closed disks (the "lens").
double lens_area(const Circle& c1, const Circle& c2);

/// True iff the closed disks intersect.
bool disks_intersect(const Circle& c1, const Circle& c2, double eps = 1e-9);

/// Largest t in [0,1] such that every point of segment(origin, origin + t*(dest-origin))
/// lies in all of the given closed disks; nullopt if the origin itself is outside.
/// Used to clamp planned motions to composite safe regions.
std::optional<double> clamp_ray_to_disks(Vec2 origin, Vec2 dest, const std::vector<Circle>& disks,
                                         double eps = 1e-12);

/// Circle through three non-collinear points; nullopt if (nearly) collinear.
std::optional<Circle> circumcircle(Vec2 a, Vec2 b, Vec2 c);

}  // namespace cohesion::geom
