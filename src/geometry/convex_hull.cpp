#include "geometry/convex_hull.hpp"

#include <algorithm>
#include <cmath>

#include "geometry/segment.hpp"

namespace cohesion::geom {

std::vector<Vec2> convex_hull(std::vector<Vec2> pts) {
  std::sort(pts.begin(), pts.end(), [](Vec2 a, Vec2 b) {
    if (a.x != b.x) return a.x < b.x;
    return a.y < b.y;
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const std::size_t n = pts.size();
  if (n <= 2) return pts;

  std::vector<Vec2> hull(2 * n);
  std::size_t k = 0;
  // Lower hull.
  for (std::size_t i = 0; i < n; ++i) {
    while (k >= 2 && (hull[k - 1] - hull[k - 2]).cross(pts[i] - hull[k - 2]) <= 0) --k;
    hull[k++] = pts[i];
  }
  // Upper hull.
  const std::size_t lower = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {
    while (k >= lower && (hull[k - 1] - hull[k - 2]).cross(pts[i] - hull[k - 2]) <= 0) --k;
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);
  return hull;
}

double polygon_perimeter(const std::vector<Vec2>& hull) {
  const std::size_t n = hull.size();
  if (n < 2) return 0.0;
  double p = 0.0;
  for (std::size_t i = 0; i < n; ++i) p += hull[i].distance_to(hull[(i + 1) % n]);
  if (n == 2) p /= 2.0;  // a segment counted once
  return p;
}

double polygon_area(const std::vector<Vec2>& hull) {
  const std::size_t n = hull.size();
  if (n < 3) return 0.0;
  double a = 0.0;
  for (std::size_t i = 0; i < n; ++i) a += hull[i].cross(hull[(i + 1) % n]);
  return a / 2.0;
}

double hull_diameter(const std::vector<Vec2>& hull) {
  const std::size_t n = hull.size();
  if (n < 2) return 0.0;
  if (n == 2) return hull[0].distance_to(hull[1]);
  // Rotating calipers over antipodal pairs.
  double best = 0.0;
  std::size_t j = 1;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 edge = hull[(i + 1) % n] - hull[i];
    while (true) {
      const std::size_t jn = (j + 1) % n;
      if (edge.cross(hull[jn] - hull[j]) > 0) {
        j = jn;
      } else {
        break;
      }
    }
    best = std::max({best, hull[i].distance_to(hull[j]), hull[(i + 1) % n].distance_to(hull[j])});
  }
  return best;
}

double set_diameter(const std::vector<Vec2>& points) {
  return hull_diameter(convex_hull(points));
}

bool hull_contains(const std::vector<Vec2>& hull, Vec2 p, double eps) {
  const std::size_t n = hull.size();
  if (n == 0) return false;
  if (n == 1) return hull[0].distance_to(p) <= eps;
  if (n == 2) {
    const Segment s{hull[0], hull[1]};
    return s.distance_to(p) <= eps;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = hull[i], b = hull[(i + 1) % n];
    if ((b - a).cross(p - a) < -eps * (b - a).norm()) return false;
  }
  return true;
}

}  // namespace cohesion::geom
