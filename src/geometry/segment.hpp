// Line segments: distances, projections, intersections.
#pragma once

#include <optional>

#include "geometry/vec2.hpp"

namespace cohesion::geom {

struct Segment {
  Vec2 a;
  Vec2 b;

  [[nodiscard]] double length() const { return a.distance_to(b); }
  [[nodiscard]] Vec2 point_at(double t) const { return lerp(a, b, t); }
  [[nodiscard]] Vec2 direction() const { return (b - a).normalized(); }

  /// Parameter t in [0,1] of the point on the segment closest to `p`.
  [[nodiscard]] double closest_parameter(Vec2 p) const;
  [[nodiscard]] Vec2 closest_point(Vec2 p) const { return point_at(closest_parameter(p)); }
  [[nodiscard]] double distance_to(Vec2 p) const { return closest_point(p).distance_to(p); }
};

/// Proper or touching intersection point of two segments, if any.
/// Collinear overlaps report one shared point (an endpoint of the overlap).
std::optional<Vec2> intersect(const Segment& s, const Segment& t);

/// Orientation predicate: >0 ccw, <0 cw, 0 collinear (within `eps`).
int orientation(Vec2 a, Vec2 b, Vec2 c, double eps = 1e-12);

}  // namespace cohesion::geom
