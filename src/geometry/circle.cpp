#include "geometry/circle.hpp"

#include <algorithm>
#include <cmath>

#include "geometry/angles.hpp"

namespace cohesion::geom {

std::vector<Vec2> intersect(const Circle& c1, const Circle& c2) {
  const double d = c1.center.distance_to(c2.center);
  if (d == 0.0) return {};  // concentric: none or infinitely many; report none
  const double r1 = c1.radius, r2 = c2.radius;
  if (d > r1 + r2 + 1e-12 || d < std::abs(r1 - r2) - 1e-12) return {};
  // Distance from c1.center to the radical line along the center line.
  const double a = (r1 * r1 - r2 * r2 + d * d) / (2.0 * d);
  const double h2 = r1 * r1 - a * a;
  const Vec2 dir = (c2.center - c1.center) / d;
  const Vec2 base = c1.center + dir * a;
  if (h2 <= 1e-15) return {base};
  const double h = std::sqrt(h2);
  const Vec2 off = dir.perp() * h;
  return {base + off, base - off};
}

std::vector<Vec2> intersect(const Circle& c, const Segment& s) {
  const Vec2 d = s.b - s.a;
  const Vec2 f = s.a - c.center;
  const double A = d.norm2();
  if (A == 0.0) {
    if (std::abs(f.norm() - c.radius) <= 1e-12) return {s.a};
    return {};
  }
  const double B = 2.0 * f.dot(d);
  const double C = f.norm2() - c.radius * c.radius;
  const double disc = B * B - 4.0 * A * C;
  if (disc < 0.0) return {};
  const double sq = std::sqrt(disc);
  std::vector<Vec2> out;
  for (const double t : {(-B - sq) / (2.0 * A), (-B + sq) / (2.0 * A)}) {
    if (t >= -1e-12 && t <= 1.0 + 1e-12) out.push_back(s.point_at(std::clamp(t, 0.0, 1.0)));
  }
  if (out.size() == 2 && almost_equal(out[0], out[1], 1e-12)) out.pop_back();
  return out;
}

bool disks_intersect(const Circle& c1, const Circle& c2, double eps) {
  return c1.center.distance_to(c2.center) <= c1.radius + c2.radius + eps;
}

double lens_area(const Circle& c1, const Circle& c2) {
  const double d = c1.center.distance_to(c2.center);
  const double r = c1.radius, R = c2.radius;
  if (d >= r + R) return 0.0;
  if (d <= std::abs(R - r)) {
    const double m = std::min(r, R);
    return kPi * m * m;
  }
  const double alpha = std::acos(std::clamp((d * d + r * r - R * R) / (2.0 * d * r), -1.0, 1.0));
  const double beta = std::acos(std::clamp((d * d + R * R - r * r) / (2.0 * d * R), -1.0, 1.0));
  return r * r * (alpha - std::sin(2.0 * alpha) / 2.0) + R * R * (beta - std::sin(2.0 * beta) / 2.0);
}

std::optional<double> clamp_ray_to_disks(Vec2 origin, Vec2 dest, const std::vector<Circle>& disks,
                                         double eps) {
  double t_max = 1.0;
  for (const Circle& c : disks) {
    const Vec2 f = origin - c.center;
    if (f.norm() > c.radius + 1e-9) return std::nullopt;
    const Vec2 d = dest - origin;
    const double A = d.norm2();
    if (A == 0.0) continue;
    const double B = 2.0 * f.dot(d);
    const double C = f.norm2() - c.radius * c.radius;
    // Solve A t^2 + B t + C <= 0 for the largest t in [0, 1].
    const double disc = B * B - 4.0 * A * C;
    if (disc < 0.0) {
      // Origin inside but ray never exits? impossible when C<=0 and disc<0 can't
      // happen for C<=0; treat defensively as no constraint.
      continue;
    }
    const double t_exit = (-B + std::sqrt(disc)) / (2.0 * A);
    t_max = std::min(t_max, std::max(0.0, t_exit - eps));
  }
  return t_max;
}

std::optional<Circle> circumcircle(Vec2 a, Vec2 b, Vec2 c) {
  const double d = 2.0 * ((b - a).cross(c - a));
  if (std::abs(d) < 1e-14) return std::nullopt;
  const double a2 = a.norm2(), b2 = b.norm2(), c2 = c.norm2();
  const double ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
  const double uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
  const Vec2 center{ux, uy};
  return Circle{center, center.distance_to(a)};
}

}  // namespace cohesion::geom
