// Axis-aligned minimal bounding box ("minbox").
//
// The Go-To-Centre-Of-Minbox baseline [16] (paper §1.2.2) moves robots
// toward the centre of the minbox; implemented for experiment E7.
#pragma once

#include <vector>

#include "geometry/vec2.hpp"

namespace cohesion::geom {

struct MinBox {
  Vec2 lo;  ///< min corner
  Vec2 hi;  ///< max corner

  [[nodiscard]] Vec2 center() const { return midpoint(lo, hi); }
  [[nodiscard]] double width() const { return hi.x - lo.x; }
  [[nodiscard]] double height() const { return hi.y - lo.y; }
  [[nodiscard]] double diagonal() const { return lo.distance_to(hi); }
  [[nodiscard]] bool contains(Vec2 p, double eps = 1e-9) const {
    return p.x >= lo.x - eps && p.x <= hi.x + eps && p.y >= lo.y - eps && p.y <= hi.y + eps;
  }
};

/// Minimal axis-aligned box containing all points. Empty input -> zero box.
MinBox minbox(const std::vector<Vec2>& points);

}  // namespace cohesion::geom
