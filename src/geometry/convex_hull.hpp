// Convex hulls of point sets.
//
// The paper's congregation argument (§5) measures progress through the
// perimeter and diameter of the convex hull of robot positions (CH_t is a
// nested, shrinking sequence). These routines feed the metrics module and
// the congregation benches (E6).
#pragma once

#include <vector>

#include "geometry/vec2.hpp"

namespace cohesion::geom {

/// Convex hull via Andrew's monotone chain.
/// Returns vertices in counter-clockwise order, no duplicated endpoint,
/// collinear boundary points removed. Degenerate inputs (all points equal
/// or collinear) return the 1- or 2-point hull.
std::vector<Vec2> convex_hull(std::vector<Vec2> points);

/// Perimeter of the polygon given by `hull` (closed implicitly).
double polygon_perimeter(const std::vector<Vec2>& hull);

/// Signed area (ccw positive) of the polygon given by `hull`.
double polygon_area(const std::vector<Vec2>& hull);

/// Diameter (max pairwise distance) of a convex polygon via rotating calipers.
double hull_diameter(const std::vector<Vec2>& hull);

/// Max pairwise distance of an arbitrary point set (hull + calipers).
double set_diameter(const std::vector<Vec2>& points);

/// True iff `p` lies in the closed convex polygon `hull` (ccw order).
bool hull_contains(const std::vector<Vec2>& hull, Vec2 p, double eps = 1e-9);

}  // namespace cohesion::geom
