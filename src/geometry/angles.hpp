// Angle arithmetic on the circle.
//
// Needed throughout: the KKNPS destination rule reasons about the angular
// gaps between directions to distant neighbours (paper §5, Fig. 15), and the
// impossibility construction (§7) manipulates turn angles of spiral chords.
#pragma once

#include <numbers>
#include <vector>

#include "geometry/vec2.hpp"

namespace cohesion::geom {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Normalize an angle into [0, 2*pi).
double normalize_angle(double theta);

/// Normalize an angle into (-pi, pi].
double normalize_angle_signed(double theta);

/// Smallest absolute difference between two angles, in [0, pi].
double angle_distance(double a, double b);

/// Signed counter-clockwise sweep from `a` to `b`, in [0, 2*pi).
double ccw_sweep(double from, double to);

/// Interior angle at vertex Q of the polyline P-Q-R, in [0, pi].
double interior_angle(Vec2 p, Vec2 q, Vec2 r);

/// Turn angle at Q walking P -> Q -> R: pi minus the interior angle, signed
/// (+ for a counter-clockwise turn). In (-pi, pi].
double turn_angle(Vec2 p, Vec2 q, Vec2 r);

/// Result of the largest-gap analysis over a set of directions.
struct AngularGap {
  double gap = 0.0;        ///< size of the largest empty arc, in [0, 2*pi]
  std::size_t before = 0;  ///< index (into the input) of the direction preceding the gap (ccw)
  std::size_t after = 0;   ///< index of the direction following the gap (ccw)
};

/// Largest angular gap between consecutive directions (sorted ccw).
///
/// `directions` must be non-empty; for a single direction the gap is 2*pi
/// with before == after == 0. Ties broken toward the smallest index.
AngularGap largest_angular_gap(const std::vector<double>& directions);

}  // namespace cohesion::geom
