// Smallest enclosing circle (SEC) via Welzl's randomized algorithm.
//
// The Ando et al. baseline moves each robot toward the centre of the SEC of
// its visible neighbourhood (paper §3.1), and the congregation analysis
// (§5, Fig. 16) uses the smallest bounding circle Xi of the hull.
#pragma once

#include <vector>

#include "geometry/circle.hpp"
#include "geometry/vec2.hpp"

namespace cohesion::geom {

/// Smallest circle enclosing all `points`. Expected O(n) after an internal
/// deterministic shuffle (seeded; results are reproducible). Empty input
/// yields a zero circle at the origin.
Circle smallest_enclosing_circle(std::vector<Vec2> points);

/// True iff circle `c` encloses all points (closed, tolerance eps).
bool encloses(const Circle& c, const std::vector<Vec2>& points, double eps = 1e-7);

}  // namespace cohesion::geom
