#include "geometry/reach_region.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geometry/safe_region.hpp"

namespace cohesion::geom {

namespace {

/// Point of circle `c` at maximum distance from `q` (the antipode of the
/// projection of q).
Vec2 farthest_point_on_circle(const Circle& c, Vec2 q) {
  const Vec2 d = (c.center - q).normalized();
  if (d == Vec2{0.0, 0.0}) return c.center + Vec2{c.radius, 0.0};
  return c.center + d * c.radius;
}

}  // namespace

ReachRegion::ReachRegion(Vec2 y0, Vec2 x0, Vec2 x1, double r)
    : y0_(y0), x0_(x0), x1_(x1), r_(r) {
  if (almost_equal(x0, y0, 1e-15) || almost_equal(x1, y0, 1e-15)) {
    throw std::invalid_argument("ReachRegion: X coincides with Y0");
  }
  const Circle s_x0 = kknps_safe_region(y0, x0, r);
  const Circle s_x1 = kknps_safe_region(y0, x1, r);
  y_plus_ = farthest_point_on_circle(s_x0, x1);
  y_minus_ = farthest_point_on_circle(s_x1, x0);

  // Bulge = (a) points within |X1 Y0+| of X1 and within |Y0 Y0+| of Y0,
  // intersected with (b) points within |X0 Y0-| of X0 and |Y0 Y0-| of Y0.
  bulge_disks_ = {
      Circle{x1, x1.distance_to(y_plus_)},
      Circle{y0, y0.distance_to(y_plus_)},
      Circle{x0, x0.distance_to(y_minus_)},
      Circle{y0, y0.distance_to(y_minus_)},
  };
}

Vec2 ReachRegion::core_center(double s) const {
  const Vec2 xs = lerp(x0_, x1_, s);
  const Vec2 dir = (xs - y0_).normalized();
  return y0_ + dir * r_;
}

bool ReachRegion::core_contains(Vec2 p, double eps) const {
  // Distance from p to the swept centre, as a function of s, is continuous;
  // the sweep of centres is an arc of the circle of radius r around Y0, over
  // which distance-to-p is unimodal in arc angle, hence in s it has at most
  // one interior extremum on each monotone piece of the angle map. A
  // golden-section search bracketed by a coarse scan is robust here.
  auto dist = [&](double s) { return core_center(s).distance_to(p); };

  constexpr int kScan = 64;
  double best = std::min(dist(0.0), dist(1.0));
  double best_s = dist(0.0) <= dist(1.0) ? 0.0 : 1.0;
  for (int i = 1; i < kScan; ++i) {
    const double s = static_cast<double>(i) / kScan;
    const double d = dist(s);
    if (d < best) {
      best = d;
      best_s = s;
    }
  }
  // Refine around best_s.
  double lo = std::max(0.0, best_s - 1.0 / kScan);
  double hi = std::min(1.0, best_s + 1.0 / kScan);
  constexpr double kGolden = 0.618033988749895;
  double a = lo, b = hi;
  double c1 = b - kGolden * (b - a), c2 = a + kGolden * (b - a);
  double f1 = dist(c1), f2 = dist(c2);
  for (int it = 0; it < 60; ++it) {
    if (f1 < f2) {
      b = c2;
      c2 = c1;
      f2 = f1;
      c1 = b - kGolden * (b - a);
      f1 = dist(c1);
    } else {
      a = c1;
      c1 = c2;
      f1 = f2;
      c2 = a + kGolden * (b - a);
      f2 = dist(c2);
    }
  }
  best = std::min({best, f1, f2});
  return best <= r_ + eps;
}

bool ReachRegion::bulge_contains(Vec2 p, double eps) const {
  return std::all_of(bulge_disks_.begin(), bulge_disks_.end(),
                     [&](const Circle& c) { return c.contains(p, eps); });
}

bool ReachRegion::contains(Vec2 p, double eps) const {
  return core_contains(p, eps) || bulge_contains(p, eps);
}

}  // namespace cohesion::geom
