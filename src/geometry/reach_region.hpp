// Reach regions R^r_{Y0}(X0, X1) — paper §3.2.1, Fig. 5.
//
// R^r_{Y0}(X0,X1) over-approximates the set of points robot Y (starting at
// Y0) can reach by up to k successive moves, each confined to the current
// 1/k-scaled safe region with respect to a moving neighbour X travelling
// from X0 to X1 (Lemmas 1 and 2). It is the union of
//   * the CORE: all disks of radius r centred at distance r from Y0 in the
//     direction of some X* on the segment X0 X1; and
//   * the BULGE: the intersection of four disks determined by the extreme
//     points Y0+ and Y0- (see below).
#pragma once

#include <vector>

#include "geometry/circle.hpp"
#include "geometry/segment.hpp"
#include "geometry/vec2.hpp"

namespace cohesion::geom {

class ReachRegion {
 public:
  /// Build R^r_{Y0}(X0, X1). Requires X0 != Y0 and X1 != Y0.
  ReachRegion(Vec2 y0, Vec2 x0, Vec2 x1, double r);

  /// Closed membership test. Core membership is decided by minimising the
  /// distance to the swept disk centre over X* in X0X1 (the distance is
  /// unimodal in the sweep parameter; golden-section search plus endpoint
  /// checks).
  [[nodiscard]] bool contains(Vec2 p, double eps = 1e-9) const;

  [[nodiscard]] bool core_contains(Vec2 p, double eps = 1e-9) const;
  [[nodiscard]] bool bulge_contains(Vec2 p, double eps = 1e-9) const;

  /// Y0+ : point of S^r_{Y0}(X0) furthest from X1 (paper Fig. 5).
  [[nodiscard]] Vec2 y_plus() const { return y_plus_; }
  /// Y0- : point of S^r_{Y0}(X1) furthest from X0.
  [[nodiscard]] Vec2 y_minus() const { return y_minus_; }

  [[nodiscard]] Vec2 y0() const { return y0_; }
  [[nodiscard]] Vec2 x0() const { return x0_; }
  [[nodiscard]] Vec2 x1() const { return x1_; }
  [[nodiscard]] double r() const { return r_; }

  /// Swept safe-region centre for sweep parameter s in [0,1]:
  /// Y0 + r * dir(X(s) - Y0) with X(s) = lerp(X0, X1, s).
  [[nodiscard]] Vec2 core_center(double s) const;

 private:
  Vec2 y0_, x0_, x1_;
  double r_;
  Vec2 y_plus_, y_minus_;
  std::vector<Circle> bulge_disks_;  // 4 disks; bulge = their intersection
};

}  // namespace cohesion::geom
