#include "geometry/angles.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>
#include <stdexcept>

namespace cohesion::geom {

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

double normalize_angle(double theta) {
  double t = std::fmod(theta, kTwoPi);
  if (t < 0.0) t += kTwoPi;
  return t;
}

double normalize_angle_signed(double theta) {
  double t = normalize_angle(theta);
  if (t > kPi) t -= kTwoPi;
  return t;
}

double angle_distance(double a, double b) {
  return std::abs(normalize_angle_signed(a - b));
}

double ccw_sweep(double from, double to) { return normalize_angle(to - from); }

double interior_angle(Vec2 p, Vec2 q, Vec2 r) {
  const Vec2 u = p - q, v = r - q;
  const double nu = u.norm(), nv = v.norm();
  if (nu == 0.0 || nv == 0.0) return 0.0;
  const double c = std::clamp(u.dot(v) / (nu * nv), -1.0, 1.0);
  return std::acos(c);
}

double turn_angle(Vec2 p, Vec2 q, Vec2 r) {
  const Vec2 u = q - p, v = r - q;
  if (u.norm2() == 0.0 || v.norm2() == 0.0) return 0.0;
  return std::atan2(u.cross(v), u.dot(v));
}

AngularGap largest_angular_gap(const std::vector<double>& directions) {
  if (directions.empty()) throw std::invalid_argument("largest_angular_gap: empty input");
  const std::size_t n = directions.size();
  if (n == 1) return AngularGap{kTwoPi, 0, 0};

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> norm(n);
  for (std::size_t i = 0; i < n; ++i) norm[i] = normalize_angle(directions[i]);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (norm[a] != norm[b]) return norm[a] < norm[b];
    return a < b;
  });

  AngularGap best;
  best.gap = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cur = order[i];
    const std::size_t nxt = order[(i + 1) % n];
    double gap = norm[nxt] - norm[cur];
    if (i + 1 == n) gap += kTwoPi;
    if (gap > best.gap) {
      best.gap = gap;
      best.before = cur;
      best.after = nxt;
    }
  }
  return best;
}

}  // namespace cohesion::geom
