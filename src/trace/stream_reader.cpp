#include "trace/stream_reader.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "trace/stream_format.hpp"

namespace cohesion::trace {

namespace {

/// Fixed-size header prefix: magic + version + reserved + fingerprint +
/// robot count + visibility radius + epsilon.
constexpr std::size_t kHeaderPrefixSize = 8 + 4 + 4 + 8 + 8 + 8 + 8;

[[nodiscard]] std::size_t expected_payload(std::uint8_t type) {
  switch (type) {
    case kFrameActivation: return kActivationPayloadSize;
    case kFrameIndex: return kIndexPayloadSize;
    case kFrameEnd: return kEndPayloadSize;
    default: return static_cast<std::size_t>(-1);
  }
}

}  // namespace

StreamTraceReader::StreamTraceReader(std::string path) : path_(std::move(path)) {
  in_.open(path_, std::ios::binary);
  if (!in_) throw std::runtime_error("StreamTraceReader: cannot open '" + path_ + "'");
  in_.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in_.tellg());
  in_.seekg(0, std::ios::beg);

  std::vector<char> hdr(kHeaderPrefixSize);
  if (file_size < kHeaderPrefixSize || !read_exact(hdr.data(), hdr.size())) {
    throw std::runtime_error("StreamTraceReader: '" + path_ +
                             "' is too short to hold an activation-stream header");
  }
  if (!std::equal(kStreamMagic, kStreamMagic + sizeof(kStreamMagic), hdr.data())) {
    throw std::runtime_error("StreamTraceReader: '" + path_ +
                             "' is not an activation stream (magic mismatch; expected COHTRACE)");
  }
  const std::uint32_t version = get_u32(hdr.data() + 8);
  if (version != kFormatVersion) {
    throw std::runtime_error("StreamTraceReader: '" + path_ + "' has format version " +
                             std::to_string(version) + " but this build reads version " +
                             std::to_string(kFormatVersion) +
                             " — re-record the stream or use a matching build");
  }
  header_.fingerprint = get_u64(hdr.data() + 16);
  const std::uint64_t n = get_u64(hdr.data() + 24);
  header_.visibility_radius = get_f64(hdr.data() + 32);
  header_.stop_epsilon = get_f64(hdr.data() + 40);

  const std::uint64_t full_header = kHeaderPrefixSize + 16 * n + 4;
  if (file_size < full_header) {
    throw std::runtime_error("StreamTraceReader: '" + path_ +
                             "' header is truncated (declares " + std::to_string(n) +
                             " robots but the file ends inside the initial configuration)");
  }
  hdr.resize(full_header);
  if (!read_exact(hdr.data() + kHeaderPrefixSize, full_header - kHeaderPrefixSize)) {
    throw std::runtime_error("StreamTraceReader: short read in '" + path_ + "' header");
  }
  const std::uint32_t stored = get_u32(hdr.data() + full_header - 4);
  const std::uint32_t computed = fnv1a32(hdr.data(), full_header - 4);
  if (stored != computed) {
    throw std::runtime_error("StreamTraceReader: '" + path_ +
                             "' header checksum mismatch — the file is corrupt");
  }
  header_.initial.resize(n);
  for (std::uint64_t r = 0; r < n; ++r) {
    header_.initial[r].x = get_f64(hdr.data() + kHeaderPrefixSize + 16 * r);
    header_.initial[r].y = get_f64(hdr.data() + kHeaderPrefixSize + 16 * r + 8);
  }
  data_begin_ = full_header;
}

bool StreamTraceReader::read_exact(char* out, std::size_t size) {
  in_.read(out, static_cast<std::streamsize>(size));
  return static_cast<std::size_t>(in_.gcount()) == size;
}

bool StreamTraceReader::next(core::ActivationRecord& rec) {
  if (done_) return false;
  char head[5];
  char payload[kActivationPayloadSize > kIndexPayloadSize ? kActivationPayloadSize
                                                          : kIndexPayloadSize];
  for (;;) {
    if (!read_exact(head, sizeof(head))) {
      // EOF (or a torn 5-byte frame head) without an 'E' frame: the writer
      // stopped mid-stream; everything yielded so far is the committed
      // prefix.
      done_ = true;
      truncated_ = true;
      return false;
    }
    const std::uint8_t type = static_cast<std::uint8_t>(head[0]);
    const std::uint32_t size = get_u32(head + 1);
    if (size != expected_payload(type)) {  // unknown type or wrong size: torn/corrupt
      done_ = true;
      truncated_ = true;
      return false;
    }
    char tail[4];
    if (!read_exact(payload, size) || !read_exact(tail, sizeof(tail))) {
      done_ = true;
      truncated_ = true;
      return false;
    }
    std::uint32_t checksum = fnv1a32(head, sizeof(head));
    checksum = fnv1a32(payload, size, checksum);
    if (checksum != get_u32(tail)) {
      done_ = true;
      truncated_ = true;
      return false;
    }

    if (type == kFrameActivation) {
      rec.activation.robot = static_cast<core::RobotId>(get_u64(payload));
      rec.activation.t_look = get_f64(payload + 8);
      rec.activation.t_move_start = get_f64(payload + 16);
      rec.activation.t_move_end = get_f64(payload + 24);
      rec.activation.realized_fraction = get_f64(payload + 32);
      rec.from = {get_f64(payload + 40), get_f64(payload + 48)};
      rec.planned = {get_f64(payload + 56), get_f64(payload + 64)};
      rec.realized = {get_f64(payload + 72), get_f64(payload + 80)};
      rec.seen = static_cast<std::size_t>(get_u64(payload + 88));
      ++records_read_;
      end_time_ = std::max(end_time_, rec.activation.t_move_end);
      return true;
    }
    if (type == kFrameEnd) {
      done_ = true;
      clean_ = true;
      end_time_ = std::max(end_time_, get_f64(payload + 16));
      return false;
    }
    // 'X' index frame: seek metadata only; skip.
  }
}

std::optional<StreamTraceReader::Footer> StreamTraceReader::read_footer(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  in.seekg(0, std::ios::end);
  const auto file_size = in.tellg();
  constexpr std::streamoff kEndFrame = static_cast<std::streamoff>(frame_size(kEndPayloadSize));
  if (file_size < kEndFrame) return std::nullopt;
  in.seekg(file_size - kEndFrame);
  char buf[frame_size(kEndPayloadSize)];
  in.read(buf, sizeof(buf));
  if (static_cast<std::size_t>(in.gcount()) != sizeof(buf)) return std::nullopt;
  if (static_cast<std::uint8_t>(buf[0]) != kFrameEnd) return std::nullopt;
  if (get_u32(buf + 1) != kEndPayloadSize) return std::nullopt;
  if (fnv1a32(buf, 5 + kEndPayloadSize) != get_u32(buf + 5 + kEndPayloadSize)) {
    return std::nullopt;
  }
  Footer f;
  f.total_records = get_u64(buf + 5);
  f.last_index_offset = get_u64(buf + 13);
  f.end_time = get_f64(buf + 21);
  return f;
}

void StreamTraceReader::restart_after_header() {
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(data_begin_));
  records_read_ = 0;
  end_time_ = 0.0;
  done_ = clean_ = truncated_ = false;
}

bool StreamTraceReader::seek_to(std::uint64_t index) {
  // Walk the backward 'X' chain of a cleanly closed stream to the last
  // index frame at or before `index`, then scan the remainder forward.
  std::uint64_t base = 0;
  std::uint64_t base_offset = data_begin_;
  if (const auto footer = read_footer(path_)) {
    std::uint64_t offset = footer->last_index_offset;
    char buf[frame_size(kIndexPayloadSize)];
    while (offset != 0) {
      in_.clear();
      in_.seekg(static_cast<std::streamoff>(offset));
      in_.read(buf, sizeof(buf));
      if (static_cast<std::size_t>(in_.gcount()) != sizeof(buf)) break;
      if (static_cast<std::uint8_t>(buf[0]) != kFrameIndex ||
          get_u32(buf + 1) != kIndexPayloadSize ||
          fnv1a32(buf, 5 + kIndexPayloadSize) != get_u32(buf + 5 + kIndexPayloadSize)) {
        break;
      }
      const std::uint64_t count = get_u64(buf + 5);
      if (count <= index) {
        base = count;
        base_offset = offset + sizeof(buf);  // first frame after the 'X'
        break;
      }
      offset = get_u64(buf + 13);  // previous 'X' frame
    }
  }
  restart_after_header();
  if (base_offset != data_begin_) {
    in_.seekg(static_cast<std::streamoff>(base_offset));
    records_read_ = base;
  }
  core::ActivationRecord rec;
  while (records_read_ < index) {
    if (!next(rec)) return false;
  }
  // Verify record `index` actually exists: peek one frame and rewind, so
  // seeking to (or past) the end reports false instead of parking the
  // cursor on the 'E' frame and claiming success.
  const std::streamoff pos = in_.tellg();
  const core::Time saved_end = end_time_;
  if (!next(rec)) return false;
  in_.clear();
  in_.seekg(pos);
  --records_read_;
  end_time_ = saved_end;
  return true;
}

}  // namespace cohesion::trace
