#include "trace/stream_writer.hpp"

#include <algorithm>
#include <stdexcept>

#include "trace/stream_format.hpp"

namespace cohesion::trace {

StreamTraceWriter::StreamTraceWriter(std::string path, StreamHeader header,
                                     StreamWriterOptions options)
    : path_(std::move(path)), options_(options) {
  if (options_.flush_every_records == 0) options_.flush_every_records = 1;
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("StreamTraceWriter: cannot open '" + path_ + "' for writing");
  }

  std::vector<char> hdr;
  hdr.insert(hdr.end(), kStreamMagic, kStreamMagic + sizeof(kStreamMagic));
  put_u32(hdr, kFormatVersion);
  put_u32(hdr, 0);  // reserved
  put_u64(hdr, header.fingerprint);
  put_u64(hdr, static_cast<std::uint64_t>(header.initial.size()));
  put_f64(hdr, header.visibility_radius);
  put_f64(hdr, header.stop_epsilon);
  for (const geom::Vec2& p : header.initial) {
    put_f64(hdr, p.x);
    put_f64(hdr, p.y);
  }
  put_u32(hdr, fnv1a32(hdr.data(), hdr.size()));
  out_.write(hdr.data(), static_cast<std::streamsize>(hdr.size()));
  bytes_committed_ = hdr.size();
  if (!out_) throw std::runtime_error("StreamTraceWriter: header write to '" + path_ + "' failed");
}

StreamTraceWriter::~StreamTraceWriter() {
  if (!finished_) {
    try {
      finish();
    } catch (...) {
      // Destructor cleanup path: the torn tail is exactly what the framing
      // is designed to survive.
    }
  }
}

void StreamTraceWriter::frame(std::uint8_t type, const std::vector<char>& payload) {
  const std::size_t at = buf_.size();
  buf_.push_back(static_cast<char>(type));
  put_u32(buf_, static_cast<std::uint32_t>(payload.size()));
  buf_.insert(buf_.end(), payload.begin(), payload.end());
  put_u32(buf_, fnv1a32(buf_.data() + at, buf_.size() - at));
}

void StreamTraceWriter::flush_buffer() {
  if (!buf_.empty()) {
    out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    bytes_committed_ += buf_.size();
    buf_.clear();
  }
  out_.flush();
  if (!out_) throw std::runtime_error("StreamTraceWriter: write to '" + path_ + "' failed");
  records_at_flush_ = records_;
}

void StreamTraceWriter::emit_index_frame() {
  // The offset recorded for the chain is where this frame itself begins.
  const std::uint64_t offset = bytes_committed_ + buf_.size();
  payload_.clear();
  put_u64(payload_, records_);
  put_u64(payload_, last_index_offset_);
  put_f64(payload_, end_time_);
  frame(kFrameIndex, payload_);
  last_index_offset_ = offset;
}

void StreamTraceWriter::append(const core::ActivationRecord& rec) {
  if (finished_) throw std::logic_error("StreamTraceWriter: append after finish");
  payload_.clear();
  put_u64(payload_, static_cast<std::uint64_t>(rec.activation.robot));
  put_f64(payload_, rec.activation.t_look);
  put_f64(payload_, rec.activation.t_move_start);
  put_f64(payload_, rec.activation.t_move_end);
  put_f64(payload_, rec.activation.realized_fraction);
  put_f64(payload_, rec.from.x);
  put_f64(payload_, rec.from.y);
  put_f64(payload_, rec.planned.x);
  put_f64(payload_, rec.planned.y);
  put_f64(payload_, rec.realized.x);
  put_f64(payload_, rec.realized.y);
  put_u64(payload_, static_cast<std::uint64_t>(rec.seen));
  frame(kFrameActivation, payload_);
  ++records_;
  end_time_ = std::max(end_time_, rec.activation.t_move_end);

  if (options_.index_every_records > 0 && records_ % options_.index_every_records == 0) {
    emit_index_frame();
  }
  if (records_ - records_at_flush_ >= options_.flush_every_records) flush_buffer();
}

void StreamTraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  payload_.clear();
  put_u64(payload_, records_);
  put_u64(payload_, last_index_offset_);
  put_f64(payload_, end_time_);
  frame(kFrameEnd, payload_);
  flush_buffer();
  out_.close();
  if (!out_) throw std::runtime_error("StreamTraceWriter: closing '" + path_ + "' failed");
}

}  // namespace cohesion::trace
