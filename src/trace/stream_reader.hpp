// Single-pass activation-stream reader with torn-tail recovery.
//
// The reader validates the header (magic, version, checksum) up front and
// then yields activation records one frame at a time. Any short read or
// checksum mismatch ends iteration and marks the stream truncated — the
// records already yielded are exactly the committed prefix, which is all a
// crashed writer ever durably produced. A cleanly closed stream ends with
// an 'E' frame carrying the record count and end time; on such streams
// seek_to() jumps near a target record via the backward 'X' index chain
// instead of scanning from the start.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>

#include "core/activation.hpp"
#include "core/types.hpp"
#include "trace/stream_writer.hpp"  // StreamHeader

namespace cohesion::trace {

class StreamTraceReader {
 public:
  /// Opens and validates the header. Throws std::runtime_error with an
  /// actionable message on a missing file, foreign magic, unsupported
  /// version, or corrupt/truncated header.
  explicit StreamTraceReader(std::string path);

  StreamTraceReader(const StreamTraceReader&) = delete;
  StreamTraceReader& operator=(const StreamTraceReader&) = delete;

  [[nodiscard]] const StreamHeader& header() const { return header_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Yield the next activation record. Returns false at end of stream —
  /// clean ('E' frame) or torn (see truncated()); false forever after.
  bool next(core::ActivationRecord& rec);

  /// True iff iteration ended at a torn tail (short frame, checksum
  /// mismatch, or missing 'E' frame). Meaningful once next() returned false.
  [[nodiscard]] bool truncated() const { return truncated_; }
  /// True iff the 'E' end frame was reached.
  [[nodiscard]] bool closed_cleanly() const { return clean_; }

  /// Records yielded so far (== committed prefix length at end of stream).
  [[nodiscard]] std::uint64_t records_read() const { return records_read_; }
  /// Max committed t_move_end over yielded records; on a cleanly closed
  /// stream this equals the 'E' frame's end time once iteration finishes.
  [[nodiscard]] core::Time end_time() const { return end_time_; }

  /// The 'E' frame of a cleanly closed stream, readable without a forward
  /// scan. nullopt if the file is missing, torn, or not an activation
  /// stream.
  struct Footer {
    std::uint64_t total_records = 0;
    std::uint64_t last_index_offset = 0;  // 0: stream carries no 'X' frames
    core::Time end_time = 0.0;
  };
  [[nodiscard]] static std::optional<Footer> read_footer(const std::string& path);

  /// Reposition so the next next() yields record `index` (0-based). Uses
  /// the 'X' chain of a cleanly closed stream to skip whole index spans;
  /// falls back to a forward scan from the current or initial position.
  /// Returns false (cursor at end) if the stream holds fewer records.
  bool seek_to(std::uint64_t index);

 private:
  [[nodiscard]] bool read_exact(char* out, std::size_t size);
  void restart_after_header();

  std::string path_;
  std::ifstream in_;
  StreamHeader header_;
  std::uint64_t data_begin_ = 0;  // byte offset of the first frame
  std::uint64_t records_read_ = 0;
  core::Time end_time_ = 0.0;
  bool done_ = false;
  bool clean_ = false;
  bool truncated_ = false;
};

}  // namespace cohesion::trace
