// The on-disk activation-stream format shared by StreamTraceWriter,
// StreamTraceReader and the cohesion_replay tool.
//
// Layout (all integers and doubles little-endian; IEEE-754 binary64):
//
//   header:
//     8  bytes  magic "COHTRACE"
//     4  bytes  u32 format version (kFormatVersion)
//     4  bytes  u32 reserved (0)
//     8  bytes  u64 run fingerprint (FNV-1a 64 of the resolved RunSpec JSON;
//               0 when the producer has no spec)
//     8  bytes  u64 robot count n
//     8  bytes  f64 visibility radius
//     8  bytes  f64 convergence epsilon
//     16n bytes n x (f64 x, f64 y) initial configuration
//     4  bytes  u32 FNV-1a 32 checksum of every preceding header byte
//
//   then a sequence of frames, each:
//     1  byte   frame type ('A' activation, 'X' index, 'E' end)
//     4  bytes  u32 payload size
//     payload
//     4  bytes  u32 FNV-1a 32 checksum of type + size + payload
//
//   'A' payload (one committed ActivationRecord, 96 bytes):
//     u64 robot, f64 t_look, f64 t_move_start, f64 t_move_end,
//     f64 realized_fraction, f64 from.x, f64 from.y, f64 planned.x,
//     f64 planned.y, f64 realized.x, f64 realized.y, u64 seen
//
//   'X' payload (periodic index frame, 24 bytes):
//     u64 activation count before this frame,
//     u64 byte offset of the previous 'X' frame (0 if none),
//     f64 max committed t_move_end so far
//
//   'E' payload (end-of-stream frame, 24 bytes):
//     u64 total activation count,
//     u64 byte offset of the last 'X' frame (0 if none),
//     f64 end time (max committed t_move_end)
//
// Crash safety comes from the framing alone: frames are appended atomically
// from the reader's point of view (a torn write leaves a short or
// checksum-failing tail), so a reader always recovers exactly the committed
// prefix and can report whether the stream was closed cleanly ('E' frame
// present). The backward 'X' chain anchored in the 'E' frame supports
// seeking on cleanly closed streams without a forward scan.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

static_assert(std::endian::native == std::endian::little,
              "activation-stream format assumes a little-endian host");
static_assert(sizeof(double) == 8, "activation-stream format assumes 8-byte IEEE doubles");

namespace cohesion::trace {

inline constexpr char kStreamMagic[8] = {'C', 'O', 'H', 'T', 'R', 'A', 'C', 'E'};
inline constexpr std::uint32_t kFormatVersion = 1;

inline constexpr std::uint8_t kFrameActivation = 0x41;  // 'A'
inline constexpr std::uint8_t kFrameIndex = 0x58;       // 'X'
inline constexpr std::uint8_t kFrameEnd = 0x45;         // 'E'

inline constexpr std::size_t kActivationPayloadSize = 96;
inline constexpr std::size_t kIndexPayloadSize = 24;
inline constexpr std::size_t kEndPayloadSize = 24;
/// type + size + payload + checksum.
inline constexpr std::size_t frame_size(std::size_t payload) { return 1 + 4 + payload + 4; }

/// FNV-1a 32-bit, the frame/header checksum. Deliberately cheap: it guards
/// against torn writes and bit rot, not adversaries.
inline std::uint32_t fnv1a32(const char* data, std::size_t size,
                             std::uint32_t h = 2166136261u) {
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 16777619u;
  }
  return h;
}

/// Little-endian appenders into a byte buffer (memcpy: the host is
/// little-endian by the static_assert above).
inline void put_u32(std::vector<char>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}
inline void put_u64(std::vector<char>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}
inline void put_f64(std::vector<char>& out, double v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}

inline std::uint32_t get_u32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline std::uint64_t get_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
inline double get_f64(const char* p) {
  double v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace cohesion::trace
