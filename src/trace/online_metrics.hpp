// TraceSink adapter over metrics::ConvergenceAccumulator: computes the
// ConvergenceReport a finished run would get from metrics::analyze, while
// the run is still producing records and without materializing a Trace.
// Attach to the engine (possibly through a TeeSink next to a
// StreamTraceWriter) or feed from a StreamTraceReader during replay —
// both routes produce bit-identical reports.
#pragma once

#include <optional>
#include <vector>

#include "core/trace_sink.hpp"
#include "geometry/vec2.hpp"
#include "metrics/online.hpp"

namespace cohesion::trace {

class OnlineMetrics final : public core::TraceSink {
 public:
  OnlineMetrics(std::vector<geom::Vec2> initial, double v, double epsilon,
                bool track_min_pairwise = false)
      : acc_(std::move(initial), v, epsilon, track_min_pairwise) {}

  void append(const core::ActivationRecord& rec) override { acc_.add(rec); }
  void finish() override {
    if (!report_) report_ = acc_.finish();
  }

  /// The final report. Calls finish() if the owner has not yet.
  [[nodiscard]] const metrics::ConvergenceReport& report() {
    finish();
    return *report_;
  }

  /// The live accumulator set: per-robot activation counts, end time,
  /// convergence-epsilon window, windowed min pairwise distance.
  [[nodiscard]] const metrics::ConvergenceAccumulator& accumulator() const { return acc_; }

 private:
  metrics::ConvergenceAccumulator acc_;
  std::optional<metrics::ConvergenceReport> report_;
};

}  // namespace cohesion::trace
