// Bounded-memory activation-stream writer: a TraceSink that frames every
// committed ActivationRecord into the on-disk format of stream_format.hpp.
//
// Writes are buffered (flush cadence in records, configurable) and each
// frame carries its own checksum, so a crash mid-run loses at most the
// unflushed tail and never leaves an undetectably corrupt file: the reader
// stops at the first short or checksum-failing frame and reports the stream
// as truncated. Periodic 'X' index frames (optional) chain backwards and
// are anchored in the final 'E' frame for seeking on cleanly closed files.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/trace_sink.hpp"
#include "core/types.hpp"
#include "geometry/vec2.hpp"

namespace cohesion::trace {

/// Everything the header records about the run. The fingerprint ties the
/// stream to a resolved RunSpec (run::spec_fingerprint); readers refuse to
/// replay against a mismatching spec.
struct StreamHeader {
  std::uint64_t fingerprint = 0;
  std::vector<geom::Vec2> initial;
  double visibility_radius = 1.0;
  double stop_epsilon = 0.0;
};

struct StreamWriterOptions {
  /// Flush the in-memory frame buffer to the OS every this many records
  /// (also bounds writer memory). >= 1.
  std::size_t flush_every_records = 4096;
  /// Emit an 'X' index frame every this many records; 0 disables indexing.
  std::size_t index_every_records = 65536;
};

class StreamTraceWriter final : public core::TraceSink {
 public:
  /// Creates/truncates `path` and writes the header immediately. Throws
  /// std::runtime_error if the file cannot be opened.
  StreamTraceWriter(std::string path, StreamHeader header, StreamWriterOptions options = {});
  /// Closes the stream cleanly if finish() was never called. Prefer calling
  /// finish() explicitly — a destructor cannot report I/O errors.
  ~StreamTraceWriter() override;

  StreamTraceWriter(const StreamTraceWriter&) = delete;
  StreamTraceWriter& operator=(const StreamTraceWriter&) = delete;

  void append(const core::ActivationRecord& rec) override;
  /// Write the 'E' end frame and flush. Idempotent; appending after is an
  /// error. Throws std::runtime_error if the underlying stream failed.
  void finish() override;

  [[nodiscard]] std::uint64_t records_written() const { return records_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool finished() const { return finished_; }

 private:
  void emit_index_frame();
  void flush_buffer();
  void frame(std::uint8_t type, const std::vector<char>& payload);

  std::string path_;
  StreamWriterOptions options_;
  std::ofstream out_;
  std::vector<char> buf_;      // pending frame bytes
  std::vector<char> payload_;  // per-frame scratch
  std::uint64_t records_ = 0;
  std::uint64_t bytes_committed_ = 0;  // bytes already handed to the stream
  std::uint64_t last_index_offset_ = 0;
  std::uint64_t records_at_flush_ = 0;
  core::Time end_time_ = 0.0;
  bool finished_ = false;
};

}  // namespace cohesion::trace
