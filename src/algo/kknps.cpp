#include "algo/kknps.hpp"

#include <stdexcept>
#include <vector>

#include "geometry/angles.hpp"

namespace cohesion::algo {

using core::Snapshot;
using geom::Vec2;

KknpsAlgorithm::KknpsAlgorithm() : KknpsAlgorithm(Params{}) {}

KknpsAlgorithm::KknpsAlgorithm(Params params) : params_(params) {
  if (params.k == 0) throw std::invalid_argument("KknpsAlgorithm: k must be >= 1");
  if (params.distance_delta < 0.0) {
    throw std::invalid_argument("KknpsAlgorithm: negative distance_delta");
  }
  if (params.radius_divisor <= 2.0) {
    // Divisor 2 would allow a planned move of V_Y, trivially unsafe.
    throw std::invalid_argument("KknpsAlgorithm: radius_divisor must exceed 2");
  }
}

Vec2 KknpsAlgorithm::compute(const Snapshot& snapshot) const {
  if (snapshot.empty()) return {0.0, 0.0};

  double v_y = snapshot.furthest_distance();
  // §6.1: guard against distance over-estimation.
  v_y /= (1.0 + params_.distance_delta);
  if (v_y <= 0.0) return {0.0, 0.0};

  std::vector<double> directions;
  directions.reserve(snapshot.size());
  for (const auto& o : snapshot.neighbours) {
    if (o.position.norm() > v_y / 2.0) directions.push_back(o.position.angle());
  }
  if (directions.empty()) return {0.0, 0.0};  // cannot happen with delta == 0

  const geom::AngularGap gap = geom::largest_angular_gap(directions);
  if (gap.gap <= geom::kPi + params_.halfplane_tolerance) {
    // Y lies in the convex hull of its distant neighbours: the intersection
    // of safe regions is exactly {Y} — stay put.
    return {0.0, 0.0};
  }

  const double r = safe_radius(v_y);
  // The two distant neighbours bounding the occupied sector are the ones on
  // either side of the largest gap.
  const Vec2 c1 = geom::unit(directions[gap.after]) * r;
  const Vec2 c2 = geom::unit(directions[gap.before]) * r;
  return geom::midpoint(c1, c2);
}

}  // namespace cohesion::algo
