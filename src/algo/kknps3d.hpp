// Three-dimensional generalization of the KKNPS algorithm (paper §6.3.2).
//
// Safe regions generalize verbatim: for a distant neighbour X of robot Y,
// the region is the ball of radius r = V_Y/(8k) centred at distance r from
// Y in the direction of X. The destination rule is the natural analogue of
// the planar one:
//   * if no open half-space through Y contains all distant neighbours
//     (equivalently, the origin lies in the convex hull of the unit
//     direction vectors), stay put — the safe balls intersect only at Y;
//   * otherwise let w be the minimum-norm point of that convex hull
//     (computed by Frank-Wolfe); w/|w| is a half-space witness with
//     w_hat . u_i >= |w| > 0 for every direction u_i, and the point
//     t * w_hat with t = min_i 2 r (w_hat . u_i) lies in every safe ball
//     (|t w_hat - r u|^2 <= r^2 iff t <= 2 r (w_hat . u)). We move to the
//     midpoint t/2 of that chord, which is interior to every ball and caps
//     the move at r <= V_Y/(8k), mirroring the planar V/8 cap.
//
// The paper leaves the full 3D correctness details to future work; this
// module provides the implementation plus the synchronous simulator used
// by the tests to check convergence and cohesion empirically.
#pragma once

#include <cstdint>
#include <vector>

#include "core/algorithm.hpp"
#include "geometry/vec3.hpp"

namespace cohesion::algo {

struct Kknps3dParams {
  std::size_t k = 1;
  /// Hull distance below which the direction set is treated as surrounding
  /// the robot (stay-put).
  double hull_tolerance = 1e-9;
};

/// Destination (relative to the robot at the origin) given perceived
/// neighbour offsets.
geom::Vec3 kknps3d_destination(const std::vector<geom::Vec3>& neighbours,
                               const Kknps3dParams& params = {});

/// Minimum-norm point of the convex hull of `points` via Frank-Wolfe.
/// Exposed for testing.
geom::Vec3 min_norm_point_in_hull(const std::vector<geom::Vec3>& points, int iterations = 256);

/// Minimal synchronous simulator in R^3 (FSync/SSync rounds) for the tests
/// and the 3D example: returns final positions after `rounds` rounds; in
/// each round every robot (or a seeded random subset if `ssync`) performs a
/// full Look-Compute-Move with exact perception.
struct Sim3dResult {
  std::vector<geom::Vec3> final_positions;
  double final_diameter = 0.0;
  double worst_initial_stretch = 0.0;  ///< over initially visible pairs, / V
};

Sim3dResult simulate_kknps3d(std::vector<geom::Vec3> positions, double v, std::size_t k,
                             std::size_t rounds, bool ssync = false, std::uint64_t seed = 1);

/// Planar restriction of the 3D rule, packaged as a core::Algorithm so the
/// 2D engine (and the run-spec registry) can drive it. The snapshot embeds
/// at z = 0; every Frank-Wolfe iterate is a convex combination of z = 0
/// directions, so the computed destination has exactly zero z component
/// and the restriction is well defined. On planar input the rule differs
/// from KknpsAlgorithm only in its destination *within* the common safe
/// region (chord midpoint along the min-norm witness vs. Fig. 15 sector
/// bisection), making it a useful cross-check of both.
class Kknps3dPlanarAlgorithm final : public core::Algorithm {
 public:
  Kknps3dPlanarAlgorithm() = default;
  explicit Kknps3dPlanarAlgorithm(Kknps3dParams params) : params_(params) {}

  [[nodiscard]] geom::Vec2 compute(const core::Snapshot& snapshot) const override;
  [[nodiscard]] std::string_view name() const override { return "KKNPS-3D/planar"; }

 private:
  Kknps3dParams params_;
};

}  // namespace cohesion::algo
