#include "algo/lens_midpoint.hpp"

#include "geometry/angles.hpp"
#include "geometry/segment.hpp"

namespace cohesion::algo {

using geom::Vec2;

Vec2 LensMidpointAlgorithm::compute(const core::Snapshot& snapshot) const {
  if (snapshot.size() != 2) return {0.0, 0.0};
  const Vec2 p = snapshot.neighbours[0].position;
  const Vec2 r = snapshot.neighbours[1].position;
  const double angle = geom::interior_angle(p, {0.0, 0.0}, r);
  if (angle >= geom::kPi - params_.colinearity_tolerance) return {0.0, 0.0};
  // Projection of the robot (origin) onto the segment PR: the nearest point
  // of co-linearity; it lies in the lens because projection cannot increase
  // the distance to either endpoint.
  const geom::Segment chord{p, r};
  return chord.closest_point({0.0, 0.0});
}

}  // namespace cohesion::algo
