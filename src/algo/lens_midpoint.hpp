// A natural cohesive, error-tolerant algorithm used as the victim of the
// Section-7 impossibility construction.
//
// With exactly two neighbours P and R perceived at (close to) the visibility
// threshold and a perceived interior angle less than pi - tolerance, the
// robot moves to its projection onto the line PR — the point of
// co-linearity inside the lens of the two unit disks (paper §7.2.2,
// Fig. 21). With any other neighbourhood it stays put. The paper's argument
// shows any error-tolerant algorithm is *forced* to make such moves; this
// class makes the forced behaviour concrete so the adversary in
// src/adversary can drive it.
#pragma once

#include "core/algorithm.hpp"

namespace cohesion::algo {

class LensMidpointAlgorithm final : public core::Algorithm {
 public:
  struct Params {
    /// "Essential co-linearity" tolerance: if the interior angle at the
    /// robot is within `colinearity_tolerance` of pi, it does not move
    /// (paper §7.2: angle in (pi - psi/2n, pi]).
    double colinearity_tolerance = 1e-4;
  };

  LensMidpointAlgorithm() : LensMidpointAlgorithm(Params{}) {}
  explicit LensMidpointAlgorithm(Params params) : params_(params) {}

  [[nodiscard]] geom::Vec2 compute(const core::Snapshot& snapshot) const override;
  [[nodiscard]] std::string_view name() const override { return "LensMidpoint"; }

 private:
  Params params_;
};

}  // namespace cohesion::algo
