#include "algo/kknps3d.hpp"

#include <algorithm>
#include <limits>
#include <random>

namespace cohesion::algo {

using geom::Vec3;

Vec3 min_norm_point_in_hull(const std::vector<Vec3>& points, int iterations) {
  if (points.empty()) return {0.0, 0.0, 0.0};
  // Frank-Wolfe: x_{t+1} = (1 - gamma) x_t + gamma s_t, where s_t is the
  // hull vertex minimizing the linearization <x_t, s>.
  Vec3 x = points[0];
  for (int t = 0; t < iterations; ++t) {
    const Vec3* best = &points[0];
    double best_dot = std::numeric_limits<double>::infinity();
    for (const Vec3& p : points) {
      const double d = x.dot(p);
      if (d < best_dot) {
        best_dot = d;
        best = &p;
      }
    }
    // Exact line search on |x + gamma (s - x)|^2.
    const Vec3 dir = *best - x;
    const double denom = dir.norm2();
    if (denom < 1e-18) break;
    const double gamma = std::clamp(-x.dot(dir) / denom, 0.0, 1.0);
    if (gamma <= 0.0) break;  // optimality: no descent direction
    x += dir * gamma;
  }
  return x;
}

Vec3 kknps3d_destination(const std::vector<Vec3>& neighbours, const Kknps3dParams& params) {
  if (neighbours.empty()) return {0.0, 0.0, 0.0};
  double v_y = 0.0;
  for (const Vec3& p : neighbours) v_y = std::max(v_y, p.norm());
  if (v_y <= 0.0) return {0.0, 0.0, 0.0};

  std::vector<Vec3> dirs;
  dirs.reserve(neighbours.size());
  for (const Vec3& p : neighbours) {
    if (p.norm() > v_y / 2.0) dirs.push_back(p.normalized());
  }
  if (dirs.empty()) return {0.0, 0.0, 0.0};

  const Vec3 w = min_norm_point_in_hull(dirs);
  if (w.norm() <= params.hull_tolerance) {
    return {0.0, 0.0, 0.0};  // surrounded: safe balls meet only at the origin
  }
  const Vec3 w_hat = w.normalized();
  const double r = v_y / (8.0 * static_cast<double>(params.k));
  double t = std::numeric_limits<double>::infinity();
  for (const Vec3& u : dirs) t = std::min(t, 2.0 * r * w_hat.dot(u));
  if (t <= 0.0) return {0.0, 0.0, 0.0};
  return w_hat * (t / 2.0);  // chord midpoint: interior to every safe ball
}

Sim3dResult simulate_kknps3d(std::vector<Vec3> positions, double v, std::size_t k,
                             std::size_t rounds, bool ssync, std::uint64_t seed) {
  Sim3dResult result;
  const std::vector<Vec3> initial = positions;
  const std::size_t n = positions.size();
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  const Kknps3dParams params{.k = k};

  auto audit = [&](const std::vector<Vec3>& cfg) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (initial[i].distance_to(initial[j]) <= v + 1e-12) {
          result.worst_initial_stretch =
              std::max(result.worst_initial_stretch, cfg[i].distance_to(cfg[j]) / v);
        }
      }
    }
  };

  for (std::size_t round = 0; round < rounds; ++round) {
    std::vector<Vec3> next = positions;
    for (std::size_t i = 0; i < n; ++i) {
      if (ssync && coin(rng) < 0.5) continue;  // idle this round
      std::vector<Vec3> neighbours;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        if (positions[i].distance_to(positions[j]) <= v + 1e-12) {
          neighbours.push_back(positions[j] - positions[i]);
        }
      }
      next[i] = positions[i] + kknps3d_destination(neighbours, params);
    }
    positions = std::move(next);
    audit(positions);
  }

  result.final_positions = positions;
  double diam = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      diam = std::max(diam, positions[i].distance_to(positions[j]));
    }
  }
  result.final_diameter = diam;
  return result;
}

geom::Vec2 Kknps3dPlanarAlgorithm::compute(const core::Snapshot& snapshot) const {
  std::vector<Vec3> neighbours;
  neighbours.reserve(snapshot.neighbours.size());
  for (const core::ObservedRobot& o : snapshot.neighbours) {
    neighbours.push_back({o.position.x, o.position.y, 0.0});
  }
  const Vec3 d = kknps3d_destination(neighbours, params_);
  return {d.x, d.y};
}

}  // namespace cohesion::algo
