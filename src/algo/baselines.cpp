#include "algo/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "geometry/circle.hpp"
#include "geometry/minbox.hpp"
#include "geometry/safe_region.hpp"
#include "geometry/smallest_enclosing_circle.hpp"

namespace cohesion::algo {

using core::Snapshot;
using geom::Circle;
using geom::Vec2;

namespace {

/// Positions of all perceived robots including the observer at the origin.
std::vector<Vec2> with_self(const Snapshot& snapshot) {
  std::vector<Vec2> pts;
  pts.reserve(snapshot.size() + 1);
  pts.emplace_back(0.0, 0.0);
  for (const auto& o : snapshot.neighbours) pts.push_back(o.position);
  return pts;
}

/// Containment interval [t0, t1] (clamped to [0,1]) of the ray origin ->
/// dest within a closed disk; empty optional if the ray misses the disk.
std::optional<std::pair<double, double>> ray_disk_interval(Vec2 origin, Vec2 dest,
                                                           const Circle& c) {
  const Vec2 d = dest - origin;
  const double A = d.norm2();
  if (A == 0.0) {
    if (c.contains(origin)) return std::make_pair(0.0, 1.0);
    return std::nullopt;
  }
  const Vec2 f = origin - c.center;
  const double B = 2.0 * f.dot(d);
  const double C = f.norm2() - c.radius * c.radius;
  const double disc = B * B - 4.0 * A * C;
  if (disc < 0.0) return std::nullopt;
  const double sq = std::sqrt(disc);
  double t0 = (-B - sq) / (2.0 * A);
  double t1 = (-B + sq) / (2.0 * A);
  t0 = std::max(t0, 0.0);
  t1 = std::min(t1, 1.0);
  if (t0 > t1) return std::nullopt;
  return std::make_pair(t0, t1);
}

}  // namespace

Vec2 AndoAlgorithm::compute(const Snapshot& snapshot) const {
  if (snapshot.empty()) return {0.0, 0.0};
  const double v = v_ > 0.0 ? v_ : snapshot.furthest_distance();

  const Circle sec = geom::smallest_enclosing_circle(with_self(snapshot));
  const Vec2 goal = sec.center;

  // Move as far as possible toward the SEC centre while staying inside every
  // neighbour's safe disk: radius V/2 centred at the midpoint to the
  // neighbour (Fig. 3, grey).
  std::vector<Circle> disks;
  disks.reserve(snapshot.size());
  for (const auto& o : snapshot.neighbours) {
    disks.push_back(geom::ando_safe_region({0.0, 0.0}, o.position, v));
  }
  const auto t = geom::clamp_ray_to_disks({0.0, 0.0}, goal, disks);
  if (!t) return {0.0, 0.0};
  return goal * *t;
}

Vec2 KatreniakAlgorithm::compute(const Snapshot& snapshot) const {
  if (snapshot.empty()) return {0.0, 0.0};
  const double v_z = snapshot.furthest_distance();
  const Circle sec = geom::smallest_enclosing_circle(with_self(snapshot));
  const Vec2 goal = sec.center;
  if (goal.norm() == 0.0) return {0.0, 0.0};

  // For each neighbour, the union of the two disks constrains the prefix of
  // the ray we may traverse: compute the largest t such that [0, t] is
  // covered by the union, then take the min over neighbours.
  double t_all = 1.0;
  for (const auto& o : snapshot.neighbours) {
    const geom::KatreniakRegion region = geom::katreniak_safe_region({0.0, 0.0}, o.position, v_z);
    const auto self_iv = ray_disk_interval({0.0, 0.0}, goal, region.self_disk);
    const auto near_iv = ray_disk_interval({0.0, 0.0}, goal, region.near_disk);
    double covered = 0.0;  // [0, covered] is inside the union
    if (self_iv && self_iv->first <= 1e-12) covered = self_iv->second;
    if (near_iv && near_iv->first <= covered + 1e-12) {
      covered = std::max(covered, near_iv->second);
      // The self disk might extend the chain again (rare; one more pass).
      if (self_iv && self_iv->first <= covered + 1e-12) {
        covered = std::max(covered, self_iv->second);
      }
    }
    t_all = std::min(t_all, covered);
  }
  return goal * std::max(0.0, t_all);
}

Vec2 CogAlgorithm::compute(const Snapshot& snapshot) const {
  if (snapshot.empty()) return {0.0, 0.0};
  Vec2 sum{0.0, 0.0};
  for (const auto& o : snapshot.neighbours) sum += o.position;
  return sum / static_cast<double>(snapshot.size() + 1);  // observer included at origin
}

Vec2 GcmAlgorithm::compute(const Snapshot& snapshot) const {
  if (snapshot.empty()) return {0.0, 0.0};
  return geom::minbox(with_self(snapshot)).center();
}

}  // namespace cohesion::algo
