// Baseline algorithms the paper reviews (§1.2, §3.1).
//
//  * AndoAlgorithm      — Go_To_The_Centre_Of_The_SEC, Ando et al. [2].
//                         Assumes the visibility radius V is known; correct
//                         in SSync, provably incorrect in 1-Async (Fig. 4).
//  * KatreniakAlgorithm — Katreniak [25]; V unknown, two-disk safe regions;
//                         correct in 1-Async, fails for large k in k-Async.
//  * CogAlgorithm       — Go_To_The_Centre_Of_Gravity, Cohen & Peleg [14];
//                         O(n^2) rounds, unlimited-visibility setting.
//  * GcmAlgorithm       — Go_To_The_Center_Of_Minbox [16]; Theta(n) rounds,
//                         unlimited-visibility setting.
//  * NullAlgorithm      — never moves (control).
#pragma once

#include "core/algorithm.hpp"

namespace cohesion::algo {

class AndoAlgorithm final : public core::Algorithm {
 public:
  /// `v` is the common visibility radius, known to the algorithm. If
  /// `v <= 0`, the distance to the furthest visible neighbour is used
  /// instead (the weakened assumption in the paper's footnote 9).
  explicit AndoAlgorithm(double v) : v_(v) {}

  [[nodiscard]] geom::Vec2 compute(const core::Snapshot& snapshot) const override;
  [[nodiscard]] std::string_view name() const override { return "Ando-SEC"; }

 private:
  double v_;
};

class KatreniakAlgorithm final : public core::Algorithm {
 public:
  [[nodiscard]] geom::Vec2 compute(const core::Snapshot& snapshot) const override;
  [[nodiscard]] std::string_view name() const override { return "Katreniak"; }
};

class CogAlgorithm final : public core::Algorithm {
 public:
  [[nodiscard]] geom::Vec2 compute(const core::Snapshot& snapshot) const override;
  [[nodiscard]] std::string_view name() const override { return "CoG"; }
};

class GcmAlgorithm final : public core::Algorithm {
 public:
  [[nodiscard]] geom::Vec2 compute(const core::Snapshot& snapshot) const override;
  [[nodiscard]] std::string_view name() const override { return "GCM"; }
};

class NullAlgorithm final : public core::Algorithm {
 public:
  [[nodiscard]] geom::Vec2 compute(const core::Snapshot&) const override { return {0.0, 0.0}; }
  [[nodiscard]] std::string_view name() const override { return "Null"; }
};

}  // namespace cohesion::algo
