// The paper's convergence algorithm (§3.2 and §5) — we name it KKNPS after
// its authors.
//
// On activation, robot Y:
//   1. sets V_Y = distance to the furthest visible neighbour (the visibility
//      radius V is NOT assumed known);
//   2. classifies neighbours further than V_Y/2 as *distant* (there is
//      always at least one);
//   3. builds, for each distant neighbour X, the 1/k-scaled safe region:
//      the disk of radius r = V_Y/(8k) centred at distance r from Y in the
//      direction of X;
//   4. if no open half-plane through Y contains all distant neighbours
//      (largest angular gap <= pi), stays put — the safe regions intersect
//      only at Y;
//   5. otherwise moves to the midpoint of the safe-region centres of the two
//      distant neighbours bounding the smallest sector that contains all
//      distant neighbours (Fig. 15). With a single distant neighbour this
//      degenerates to the centre of its safe region.
//
// The planned move never exceeds V_Y/8 and lies in every distant
// neighbour's scaled safe region, which is what the visibility-preservation
// theorems (Thm. 3/4) require.
//
// Error tolerance (§6.1): if relative distance error is bounded by delta,
// the perceived V_Y is divided by (1 + delta) so it never overestimates V.
#pragma once

#include "core/algorithm.hpp"

namespace cohesion::algo {

class KknpsAlgorithm final : public core::Algorithm {
 public:
  struct Params {
    std::size_t k = 1;          ///< asynchrony bound; safe regions scale 1/k
    double distance_delta = 0.0;  ///< assumed bound on relative distance error
    /// Angular slack below pi for the stay-put test. The paper's test is
    /// exact (gap <= pi); a tiny tolerance guards floating-point ties.
    double halfplane_tolerance = 1e-12;
    /// Safe-region radius = V_Y / (radius_divisor * k). The paper uses 8
    /// "mostly for convenience" (footnote 11): anything at least this
    /// cautious works, while substantially larger regions (smaller
    /// divisors) break visibility preservation — see the E13 ablation.
    double radius_divisor = 8.0;
  };

  KknpsAlgorithm();
  explicit KknpsAlgorithm(Params params);

  [[nodiscard]] geom::Vec2 compute(const core::Snapshot& snapshot) const override;
  [[nodiscard]] std::string_view name() const override { return "KKNPS"; }

  [[nodiscard]] const Params& params() const { return params_; }

  /// The scaled safe-region radius for a given working range V_Y.
  [[nodiscard]] double safe_radius(double v_y) const {
    return v_y / (params_.radius_divisor * static_cast<double>(params_.k));
  }

 private:
  Params params_;
};

}  // namespace cohesion::algo
