// Parallel execution of a spec grid — the repo's first wall-clock scaling
// axis. Commits inside one run are inherently serial (Async semantics fix
// a total order of Look times), but runs of a sweep are independent, so
// BatchRunner fans the expanded grid out over a std::thread worker pool,
// one isolated Engine per run. It also owns the batch ops features:
// outcomes journal to an append-only JSONL checkpoint (run/checkpoint) so
// a killed batch resumes without re-running or diverging, the run list
// may be one ExperimentSpec::expand_shard slice for multi-process sweeps
// (run/shard merges the partial reports back exactly), an EarlyStop
// rule elides a variant's remaining repeats once early ones agree, and a
// content-addressed ResultCache (run/result_cache) serves unchanged runs
// from disk instead of recomputing them.
//
// Determinism: a run's behavior depends only on its RunSpec (seeds are
// derived from grid position at expansion time, before any thread starts),
// workers claim runs off an atomic counter but write results into the
// run's own grid slot, and aggregation folds that ordered vector — so the
// aggregate is bit-identical for any worker count. With early stopping the
// claim unit becomes a whole variant (its repeats run in order, which the
// rule needs); resume replays journaled outcomes into their slots before
// workers start; neither changes any byte of the report. Wall-clock fields
// are the one exception and live strictly outside the deterministic report
// (RunOutcome::wall_seconds, BatchResult::wall_seconds; never inside
// aggregate/report JSON marked deterministic).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "metrics/stats.hpp"
#include "run/spec.hpp"

namespace cohesion::run {

class ResultCache;

/// What one run produced. `error` is the exception text when the run
/// failed to build or execute (other runs are unaffected); `skipped` marks
/// a repeat the per-variant early-stop rule decided not to execute.
struct RunOutcome {
  std::size_t index = 0;
  std::size_t variant = 0;
  std::size_t repeat = 0;
  std::string label;
  std::uint64_t seed = 0;
  std::size_t n = 0;             ///< actual robot count (factories may adjust)
  bool converged = false;
  bool skipped = false;          ///< elided by EarlyStop; carries no report
  metrics::ConvergenceReport report;
  double custom = 0.0;           ///< trace-metric hook result (0 if no hook)
  /// Stream-mode runs: where the activation stream was written and the
  /// run's spec fingerprint (run::fingerprint_hex), the identity
  /// cohesion_replay validates against. Empty for memory/off modes —
  /// serialized only when set, so existing reports keep their bytes.
  std::string trace_path;
  std::string trace_fingerprint;
  std::string error;
  double wall_seconds = 0.0;     ///< non-deterministic; excluded from reports

  [[nodiscard]] Json to_json() const;  ///< deterministic fields only
  /// Inverse of to_json() for the deterministic fields — the round trip is
  /// exact (doubles dump as shortest round-trippable decimals), which is
  /// what lets checkpoints and shard-merged reports reproduce a fresh
  /// in-process report byte for byte.
  static RunOutcome from_json(const Json& j);
};

/// Order-independent folds over a set of outcomes. Percentiles use the
/// nearest-rank rule over sorted values; round statistics are over
/// converged runs only (non-converged runs have no convergence time).
struct Aggregate {
  std::size_t runs = 0;
  std::size_t converged = 0;
  std::size_t cohesion_failures = 0;
  std::size_t errors = 0;
  std::size_t skipped = 0;  ///< early-stopped repeats; excluded from folds
  std::uint64_t total_activations = 0;
  double mean_rounds = 0.0;
  double p50_rounds = 0.0;
  double p90_rounds = 0.0;
  double mean_rounds_to_halve = 0.0;
  double mean_initial_diameter = 0.0;
  double mean_final_diameter = 0.0;
  double max_final_diameter = 0.0;
  double max_worst_stretch = 0.0;
  double mean_custom = 0.0;
  double max_custom = 0.0;

  [[nodiscard]] Json to_json() const;
};

struct BatchResult {
  std::vector<RunOutcome> outcomes;  ///< grid order (index-ascending)
  double wall_seconds = 0.0;
  std::size_t threads = 0;
  /// True when Options::cancel stopped the batch early. `outcomes` then
  /// holds only the runs that finished (still index-ascending) — an
  /// incomplete set that must not be reported as a full batch; the journal,
  /// if any, is flushed and resumable.
  bool interrupted = false;
};

/// Executes an expanded grid (or any subset of one, e.g. a shard) over a
/// worker pool. Deterministic by construction — see the file header —
/// with optional append-only JSONL checkpointing/resume (Options) and
/// per-variant early stopping (EarlyStop). Stateless apart from Options;
/// one instance can run many batches.
class BatchRunner {
 public:
  struct Options {
    /// Worker threads; 0 means std::thread::hardware_concurrency().
    std::size_t threads = 1;
    /// Optional per-run metric computed from the finished engine (e.g. a
    /// worst-pair-growth scan over the trace). Must be a pure function of
    /// its arguments — it runs on worker threads.
    std::function<double(const RunSpec&, const core::Engine&)> trace_metric;
    /// When non-empty, journal every completed outcome to this JSONL file
    /// (format: src/run/checkpoint.hpp). With `resume` false an existing
    /// file is overwritten; with `resume` true it is validated against the
    /// run list, its completed grid positions are *not* re-executed, and
    /// the final BatchResult is identical to an uninterrupted run.
    /// Caveat: the journal's fingerprint covers the run list and the
    /// early-stop rule but cannot cover `trace_metric` (an opaque
    /// std::function) — resume-identity holds only if the hook is the
    /// same pure function across the original and resumed invocations.
    /// (The CLI has no hook, so this concerns library callers only.)
    std::string checkpoint_path;
    bool resume = false;
    /// fsync cadence of the journal, in outcomes (1 = every outcome, the
    /// safest; 0 = only on close). A crash loses at most the outcomes
    /// since the last fsync — they are simply re-run on resume.
    std::size_t checkpoint_fsync_every = 1;
    /// Cooperative cancellation (how the CLI implements graceful
    /// SIGTERM/SIGINT): when the pointee becomes true, workers finish the
    /// run in hand, stop claiming new ones, and run() returns with
    /// BatchResult::interrupted set. Never aborts a run mid-flight, so
    /// every journaled line stays a complete outcome.
    const std::atomic<bool>* cancel = nullptr;
    /// Sleep this long after every executed run — a pacing knob for the
    /// fault-injection harness (gives a supervisor's journal poller a
    /// stable line cadence to trigger on). 0 (the default) for real runs.
    std::size_t post_run_delay_ms = 0;
    /// Optional content-addressed outcome store (run/result_cache.hpp):
    /// consulted before executing a run, inserted into after. Hits carry
    /// the byte-identical physics of a recomputation (or the entry is
    /// rejected and the run executes), so every report/bit-identity
    /// contract holds with any mix of hits and misses; the throttle knob
    /// above still applies after a hit, so journal-cadence pacing
    /// survives a warm cache. Shared safely by all worker threads. Same
    /// caveat as checkpoint_path for library callers: the cached `custom`
    /// field is only valid if `trace_metric` is the same pure function
    /// that produced the entry (the CLI has no hook, so this concerns
    /// embedders only).
    ResultCache* cache = nullptr;
  };

  BatchRunner() : BatchRunner(Options{}) {}
  explicit BatchRunner(Options options);

  /// Expand and execute a whole experiment (honors experiment.early_stop).
  [[nodiscard]] BatchResult run(const ExperimentSpec& experiment) const;
  /// Execute an explicit run list (for grids too irregular to express as
  /// sweep axes — the caller labels/indexes the runs), optionally under a
  /// per-variant early-stop rule. The list may be any subset of a grid
  /// (e.g. one ExperimentSpec::expand_shard shard); outcomes keep the
  /// runs' global indices.
  [[nodiscard]] BatchResult run(const std::vector<ExpandedRun>& runs) const;
  [[nodiscard]] BatchResult run(const std::vector<ExpandedRun>& runs,
                                const EarlyStop& early_stop) const;

  static Aggregate aggregate(const std::vector<RunOutcome>& outcomes);
  /// One aggregate per variant, variant-index order.
  static std::vector<Aggregate> aggregate_by_variant(const std::vector<RunOutcome>& outcomes);

  /// Full deterministic report: experiment echo + overall and per-variant
  /// aggregates + per-run outcomes. `timing` (wall seconds, threads,
  /// throughput) is appended under a "timing" key only when
  /// include_timing — diffable across thread counts without it.
  static Json report_json(const ExperimentSpec& experiment, const BatchResult& result,
                          bool include_timing);
  /// Same report built from an already-serialized experiment echo and a
  /// bare outcome list (always timing-free). This is the shard-merge path:
  /// the echo comes from partial reports rather than a live ExperimentSpec,
  /// and reusing its bytes verbatim is what makes a merged report
  /// byte-identical to the single-process `--no-timing` report.
  static Json report_json_from(const Json& experiment_echo,
                               const std::vector<RunOutcome>& outcomes);

 private:
  Options options_;
};

}  // namespace cohesion::run
