// Parallel execution of a spec grid — the repo's first wall-clock scaling
// axis. Commits inside one run are inherently serial (Async semantics fix
// a total order of Look times), but runs of a sweep are independent, so
// BatchRunner fans the expanded grid out over a std::thread worker pool,
// one isolated Engine per run.
//
// Determinism: a run's behavior depends only on its RunSpec (seeds are
// derived from grid position at expansion time, before any thread starts),
// workers claim runs off an atomic counter but write results into the
// run's own grid slot, and aggregation folds that ordered vector — so the
// aggregate is bit-identical for any worker count. Wall-clock fields are
// the one exception and live strictly outside the deterministic report
// (RunOutcome::wall_seconds, BatchResult::wall_seconds; never inside
// aggregate/report JSON marked deterministic).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "metrics/stats.hpp"
#include "run/spec.hpp"

namespace cohesion::run {

/// What one run produced. `error` is the exception text when the run
/// failed to build or execute (other runs are unaffected).
struct RunOutcome {
  std::size_t index = 0;
  std::size_t variant = 0;
  std::size_t repeat = 0;
  std::string label;
  std::uint64_t seed = 0;
  std::size_t n = 0;             ///< actual robot count (factories may adjust)
  bool converged = false;
  metrics::ConvergenceReport report;
  double custom = 0.0;           ///< trace-metric hook result (0 if no hook)
  std::string error;
  double wall_seconds = 0.0;     ///< non-deterministic; excluded from reports

  [[nodiscard]] Json to_json() const;  ///< deterministic fields only
};

/// Order-independent folds over a set of outcomes. Percentiles use the
/// nearest-rank rule over sorted values; round statistics are over
/// converged runs only (non-converged runs have no convergence time).
struct Aggregate {
  std::size_t runs = 0;
  std::size_t converged = 0;
  std::size_t cohesion_failures = 0;
  std::size_t errors = 0;
  std::uint64_t total_activations = 0;
  double mean_rounds = 0.0;
  double p50_rounds = 0.0;
  double p90_rounds = 0.0;
  double mean_rounds_to_halve = 0.0;
  double mean_initial_diameter = 0.0;
  double mean_final_diameter = 0.0;
  double max_final_diameter = 0.0;
  double max_worst_stretch = 0.0;
  double mean_custom = 0.0;
  double max_custom = 0.0;

  [[nodiscard]] Json to_json() const;
};

struct BatchResult {
  std::vector<RunOutcome> outcomes;  ///< grid order (index-ascending)
  double wall_seconds = 0.0;
  std::size_t threads = 0;
};

class BatchRunner {
 public:
  struct Options {
    /// Worker threads; 0 means std::thread::hardware_concurrency().
    std::size_t threads = 1;
    /// Optional per-run metric computed from the finished engine (e.g. a
    /// worst-pair-growth scan over the trace). Must be a pure function of
    /// its arguments — it runs on worker threads.
    std::function<double(const RunSpec&, const core::Engine&)> trace_metric;
  };

  BatchRunner() : BatchRunner(Options{}) {}
  explicit BatchRunner(Options options);

  /// Expand and execute a whole experiment.
  [[nodiscard]] BatchResult run(const ExperimentSpec& experiment) const;
  /// Execute an explicit run list (for grids too irregular to express as
  /// sweep axes — the caller labels/indexes the runs).
  [[nodiscard]] BatchResult run(const std::vector<ExpandedRun>& runs) const;

  static Aggregate aggregate(const std::vector<RunOutcome>& outcomes);
  /// One aggregate per variant, variant-index order.
  static std::vector<Aggregate> aggregate_by_variant(const std::vector<RunOutcome>& outcomes);

  /// Full deterministic report: experiment echo + overall and per-variant
  /// aggregates + per-run outcomes. `timing` (wall seconds, threads,
  /// throughput) is appended under a "timing" key only when
  /// include_timing — diffable across thread counts without it.
  static Json report_json(const ExperimentSpec& experiment, const BatchResult& result,
                          bool include_timing);

 private:
  Options options_;
};

}  // namespace cohesion::run
