// Spec presets: layered experiment files via "extends".
//
// A spec JSON document (RunSpec or ExperimentSpec alike) may carry a
// top-level
//
//   "extends": "base.json"              // single base
//   "extends": ["a.json", "b.json"]     // chain: later bases override earlier
//
// naming other spec files whose contents it refines. load_spec_file()
// resolves the whole chain at load time: each base is loaded (recursively —
// a base may itself extend further), the bases are deep-merged in order,
// and the referring document's own keys are merged last, so the override
// always wins. Merge semantics match the sweep empty-path override
// (docs/experiments.md): objects merge key-by-key recursively; scalars and
// arrays replace. Base paths are resolved relative to the directory of the
// file that names them, so preset libraries relocate as a unit.
//
// The "extends" key itself is consumed — the resolved document contains no
// trace of the layering, which is the property the result cache leans on:
// resolution happens *before* fingerprinting, so refactoring a spec into
// presets (or reshuffling the preset stack) that resolves to the same
// document keeps every fingerprint, checkpoint and cache entry valid.
//
// Failure modes are permanent spec errors (exit 1 in the CLI taxonomy),
// and every message names the full chain of files that led to the problem:
// a cycle ("a.json -> b.json -> a.json"), a missing or unreadable base, a
// non-string "extends" entry, or a base whose document is not a JSON
// object. Only top-level "extends" is honored; the key has no meaning
// inside nested objects.
#pragma once

#include <string>

#include "run/json.hpp"

namespace cohesion::run {

/// Deep-merge `overlay` into `base`, override-wins: objects merge
/// recursively, anything else (scalars, arrays, nulls) replaces. Exposed
/// for tests; the grain of both "extends" and empty-path sweep overrides.
void deep_merge(Json& base, const Json& overlay);

/// Parse the spec file at `path` and resolve its "extends" chain (see file
/// header). With no "extends" key this is exactly Json::parse_file.
/// Throws std::runtime_error naming the preset chain on cycles, missing
/// bases, or malformed "extends" values.
[[nodiscard]] Json load_spec_file(const std::string& path);

/// Resolve an already-parsed document against bases located relative to
/// `source_dir` (the directory of the file `doc` came from; "" means the
/// process CWD). load_spec_file is parse_file + this.
[[nodiscard]] Json resolve_extends(Json doc, const std::string& source_dir);

}  // namespace cohesion::run
