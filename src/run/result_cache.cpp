#include "run/result_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "run/exit_codes.hpp"

namespace cohesion::run {

namespace {

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

/// The cached physics of a run — exactly the deterministic report fields a
/// successful memory/off-mode outcome serializes, in the same order, so a
/// hit reassembled around a fresh shell reproduces RunOutcome::to_json()
/// byte for byte.
Json physics_to_json(const RunOutcome& o) {
  Json j = Json::object();
  j.set("n", o.n);
  j.set("converged", o.converged);
  j.set("cohesive", o.report.cohesive);
  j.set("initial_diameter", o.report.initial_diameter);
  j.set("final_diameter", o.report.final_diameter);
  j.set("rounds", o.report.rounds);
  j.set("rounds_to_halve", o.report.rounds_to_halve);
  j.set("activations", o.report.activations);
  j.set("worst_stretch", o.report.worst_stretch);
  j.set("custom", o.custom);
  return j;
}

/// Inverse of physics_to_json; throws on any missing/mistyped field (the
/// caller turns that into a named reject).
RunOutcome physics_from_json(const Json& j) {
  RunOutcome o;
  o.n = static_cast<std::size_t>(j.at("n").as_uint());
  o.converged = j.at("converged").as_bool();
  o.report.converged = o.converged;
  o.report.cohesive = j.at("cohesive").as_bool();
  o.report.initial_diameter = j.at("initial_diameter").as_double();
  o.report.final_diameter = j.at("final_diameter").as_double();
  o.report.rounds = static_cast<std::size_t>(j.at("rounds").as_uint());
  o.report.rounds_to_halve = static_cast<std::size_t>(j.at("rounds_to_halve").as_uint());
  o.report.activations = static_cast<std::size_t>(j.at("activations").as_uint());
  o.report.worst_stretch = j.at("worst_stretch").as_double();
  o.custom = j.at("custom").as_double();
  return o;
}

}  // namespace

Json CacheStats::to_json() const {
  Json j = Json::object();
  j.set("hits", hits);
  j.set("misses", misses);
  j.set("rejects", rejects);
  j.set("inserts", inserts);
  j.set("bypassed", bypassed);
  return j;
}

ResultCache::ResultCache(Options options) : options_(std::move(options)) {
  if (options_.dir.empty()) {
    throw std::runtime_error("result cache needs a directory");
  }
  if (!options_.read_only) {
    std::error_code ec;
    std::filesystem::create_directories(options_.dir, ec);
    if (ec) {
      throw TransientError("cannot create cache directory " + options_.dir + " (" + ec.message() +
                           ")");
    }
  }
}

std::string ResultCache::entry_path(const RunSpec& spec) const {
  return options_.dir + "/" + fingerprint_hex(run_identity(spec)) + ".json";
}

void ResultCache::record_reject(const std::string& path, const std::string& cause) {
  rejects_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mutex_);
  reject_causes_.push_back(path + ": " + cause);
}

std::optional<RunOutcome> ResultCache::lookup(const ExpandedRun& run) noexcept {
  try {
    if (run.spec.trace.mode == "stream") {
      // A hit would skip writing the run's .cohtrace — the cache must never
      // change what artifacts a batch produces, so stream runs execute.
      bypassed_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    const std::string path = entry_path(run.spec);
    std::string content;
    {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
      content.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    }

    Json doc;
    try {
      doc = Json::parse(content);
    } catch (const std::exception& e) {
      record_reject(path, std::string("not valid JSON — truncated or torn entry (") + e.what() +
                              "); recomputing");
      return std::nullopt;
    }
    if (!doc.is_object() || doc.string_or("format", "") != kFormat) {
      record_reject(path, "missing/unknown format marker (expected \"" + std::string(kFormat) +
                              "\", got \"" + (doc.is_object() ? doc.string_or("format", "") : "") +
                              "\") — foreign or wrong-version entry; recomputing");
      return std::nullopt;
    }
    const std::string expected_id = fingerprint_hex(run_identity(run.spec));
    const std::string found_id = doc.string_or("identity", "");
    if (found_id != expected_id) {
      record_reject(path, "identity mismatch (entry " + found_id + ", this run " + expected_id +
                              ") — misfiled entry; recomputing");
      return std::nullopt;
    }
    const Json* payload = doc.find("outcome");
    if (!payload || !payload->is_object()) {
      record_reject(path, "entry carries no outcome object; recomputing");
      return std::nullopt;
    }
    const std::string expected_sum = fingerprint_hex(fnv1a64(payload->dump()));
    if (doc.string_or("checksum", "") != expected_sum) {
      record_reject(path, "checksum mismatch (entry " + doc.string_or("checksum", "<missing>") +
                              ", payload " + expected_sum + ") — bit rot or torn write; recomputing");
      return std::nullopt;
    }
    RunOutcome out;
    try {
      out = physics_from_json(*payload);
    } catch (const std::exception& e) {
      record_reject(path, std::string("payload is not a run outcome (") + e.what() +
                              "); recomputing");
      return std::nullopt;
    }
    // The grid shell is this run's, not the inserting run's: the same
    // physics may serve any sweep position that resolves to the same spec.
    out.index = run.index;
    out.variant = run.variant;
    out.repeat = run.repeat;
    out.label = run.label;
    out.seed = run.spec.seed;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return out;
  } catch (...) {
    // A sick cache degrades to a miss, never to a failed batch.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
}

void ResultCache::insert(const ExpandedRun& run, const RunOutcome& outcome) noexcept {
  try {
    if (options_.read_only) return;
    if (!outcome.error.empty() || outcome.skipped) return;

    const Json payload = physics_to_json(outcome);
    Json entry = Json::object();
    entry.set("format", kFormat);
    entry.set("identity", fingerprint_hex(run_identity(run.spec)));
    entry.set("outcome", payload);
    entry.set("checksum", fingerprint_hex(fnv1a64(payload.dump())));
    const std::string bytes = entry.dump() + "\n";

    // Atomic publish: unique temp file, full write + fsync, rename(2).
    // Concurrent inserters of one key race benignly — deterministic runs
    // make every contender's bytes identical, so last-rename-wins serves
    // the same entry regardless of interleaving.
    const std::string path = entry_path(run.spec);
    const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                            std::to_string(temp_serial_.fetch_add(1, std::memory_order_relaxed));
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) return;
    std::size_t off = 0;
    bool ok = true;
    while (off < bytes.size()) {
      const ::ssize_t w = ::write(fd, bytes.data() + off, bytes.size() - off);
      if (w < 0) {
        if (errno == EINTR) continue;
        ok = false;
        break;
      }
      off += static_cast<std::size_t>(w);
    }
    if (ok) ok = ::fsync(fd) == 0;
    ::close(fd);
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
      ::unlink(tmp.c_str());
      return;
    }
    inserts_.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    // Dropped insert: the entry is simply absent next time.
  }
}

CacheStats ResultCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.rejects = rejects_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.bypassed = bypassed_.load(std::memory_order_relaxed);
  return s;
}

std::vector<std::string> ResultCache::reject_causes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return reject_causes_;
}

}  // namespace cohesion::run
