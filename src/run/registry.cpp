#include "run/registry.hpp"

#include <cmath>

#include "algo/baselines.hpp"
#include "algo/kknps.hpp"
#include "algo/kknps3d.hpp"
#include "algo/lens_midpoint.hpp"
#include "core/activation.hpp"
#include "metrics/configurations.hpp"
#include "sched/asynchronous.hpp"
#include "sched/synchronous.hpp"

namespace cohesion::run {

namespace {

std::size_t size_or(const Json& params, std::string_view key, std::size_t fallback) {
  return static_cast<std::size_t>(params.uint_or(key, fallback));
}

std::unique_ptr<core::Scheduler> make_kasync(std::size_t n, std::uint64_t seed, const Json& params,
                                             bool unrestricted) {
  sched::KAsyncScheduler::Params p;
  // k = 0 (or the "async" key) selects unrestricted Async.
  p.k = unrestricted ? static_cast<std::size_t>(-1) : size_or(params, "k", p.k);
  if (p.k == 0) p.k = static_cast<std::size_t>(-1);
  p.min_duration = params.number_or("min_duration", p.min_duration);
  p.max_duration = params.number_or("max_duration", p.max_duration);
  p.min_gap = params.number_or("min_gap", p.min_gap);
  p.max_gap = params.number_or("max_gap", p.max_gap);
  p.xi = params.number_or("xi", p.xi);
  p.indexed_intervals = params.bool_or("indexed_intervals", p.indexed_intervals);
  p.heap_selection = params.bool_or("heap_selection", p.heap_selection);
  p.seed = params.uint_or("seed", seed);
  return std::make_unique<sched::KAsyncScheduler>(n, p);
}

void register_algorithms(Registry<AlgorithmFactory>& r) {
  r.add("kknps", [](const Json& params) -> std::unique_ptr<core::Algorithm> {
    algo::KknpsAlgorithm::Params p;
    p.k = size_or(params, "k", p.k);
    p.distance_delta = params.number_or("distance_delta", p.distance_delta);
    p.halfplane_tolerance = params.number_or("halfplane_tolerance", p.halfplane_tolerance);
    p.radius_divisor = params.number_or("radius_divisor", p.radius_divisor);
    return std::make_unique<algo::KknpsAlgorithm>(p);
  });
  r.add("kknps3d", [](const Json& params) -> std::unique_ptr<core::Algorithm> {
    algo::Kknps3dParams p;
    p.k = size_or(params, "k", p.k);
    p.hull_tolerance = params.number_or("hull_tolerance", p.hull_tolerance);
    return std::make_unique<algo::Kknps3dPlanarAlgorithm>(p);
  });
  r.add("ando", [](const Json& params) -> std::unique_ptr<core::Algorithm> {
    // v <= 0 selects the weakened "furthest neighbour" variant (footnote 9).
    return std::make_unique<algo::AndoAlgorithm>(params.number_or("v", 1.0));
  });
  r.add("katreniak", [](const Json&) -> std::unique_ptr<core::Algorithm> {
    return std::make_unique<algo::KatreniakAlgorithm>();
  });
  r.add("cog", [](const Json&) -> std::unique_ptr<core::Algorithm> {
    return std::make_unique<algo::CogAlgorithm>();
  });
  r.add("gcm", [](const Json&) -> std::unique_ptr<core::Algorithm> {
    return std::make_unique<algo::GcmAlgorithm>();
  });
  r.add("null", [](const Json&) -> std::unique_ptr<core::Algorithm> {
    return std::make_unique<algo::NullAlgorithm>();
  });
  r.add("lens_midpoint", [](const Json& params) -> std::unique_ptr<core::Algorithm> {
    algo::LensMidpointAlgorithm::Params p;
    p.colinearity_tolerance = params.number_or("colinearity_tolerance", p.colinearity_tolerance);
    return std::make_unique<algo::LensMidpointAlgorithm>(p);
  });
}

void register_schedulers(Registry<SchedulerFactory>& r) {
  r.add("fsync", [](std::size_t n, std::uint64_t, const Json&) -> std::unique_ptr<core::Scheduler> {
    return std::make_unique<sched::FSyncScheduler>(n);
  });
  r.add("ssync",
        [](std::size_t n, std::uint64_t seed, const Json& params) -> std::unique_ptr<core::Scheduler> {
          sched::SSyncScheduler::Params p;
          p.activation_probability = params.number_or("activation_probability", p.activation_probability);
          p.fairness_window = size_or(params, "fairness_window", p.fairness_window);
          p.xi = params.number_or("xi", p.xi);
          p.seed = params.uint_or("seed", seed);
          return std::make_unique<sched::SSyncScheduler>(n, p);
        });
  r.add("kasync",
        [](std::size_t n, std::uint64_t seed, const Json& params) -> std::unique_ptr<core::Scheduler> {
          return make_kasync(n, seed, params, /*unrestricted=*/false);
        });
  r.add("async",
        [](std::size_t n, std::uint64_t seed, const Json& params) -> std::unique_ptr<core::Scheduler> {
          return make_kasync(n, seed, params, /*unrestricted=*/true);
        });
  r.add("knesta",
        [](std::size_t n, std::uint64_t seed, const Json& params) -> std::unique_ptr<core::Scheduler> {
          sched::KNestAScheduler::Params p;
          p.k = size_or(params, "k", p.k);
          p.xi = params.number_or("xi", p.xi);
          p.seed = params.uint_or("seed", seed);
          return std::make_unique<sched::KNestAScheduler>(n, p);
        });
  r.add("scripted",
        [](std::size_t, std::uint64_t, const Json& params) -> std::unique_ptr<core::Scheduler> {
          // params.script: [[robot, t_look, t_move_start, t_move_end, frac], ...]
          std::vector<core::Activation> script;
          for (const Json& row : params.at("script").items()) {
            const JsonArray& f = row.items();
            if (f.size() != 5) throw std::runtime_error("scripted: rows need 5 fields");
            core::Activation a;
            a.robot = static_cast<core::RobotId>(f[0].as_uint());
            a.t_look = f[1].as_double();
            a.t_move_start = f[2].as_double();
            a.t_move_end = f[3].as_double();
            a.realized_fraction = f[4].as_double();
            script.push_back(a);
          }
          return std::make_unique<sched::ScriptedScheduler>(std::move(script));
        });
}

void register_errors(Registry<ErrorModelFactory>& r) {
  // "exact": identity frames, no noise — the validator/test setting.
  r.add("exact", [](const Json&) {
    core::ErrorModel m;
    m.random_rotation = false;
    return m;
  });
  // "noisy": the engine's general setting — rotated local frames plus
  // whatever error magnitudes the params set (all default 0, which is the
  // engine's own default ErrorModel).
  r.add("noisy", [](const Json& params) {
    core::ErrorModel m;
    m.distance_delta = params.number_or("distance_delta", m.distance_delta);
    m.skew_lambda = params.number_or("skew_lambda", m.skew_lambda);
    m.motion_quad_coeff = params.number_or("motion_quad_coeff", m.motion_quad_coeff);
    m.random_rotation = params.bool_or("random_rotation", m.random_rotation);
    m.allow_reflection = params.bool_or("allow_reflection", m.allow_reflection);
    return m;
  });
}

void register_initials(Registry<InitialConfigFactory>& r) {
  // Spacing-style params are in units of the visibility radius v.
  r.add("line", [](std::size_t n, double v, std::uint64_t, const Json& params) {
    return metrics::line_configuration(n, params.number_or("spacing", 0.9) * v);
  });
  r.add("grid", [](std::size_t n, double v, std::uint64_t, const Json& params) {
    return metrics::grid_configuration(n, params.number_or("spacing", 0.9) * v);
  });
  r.add("circle", [](std::size_t n, double v, std::uint64_t, const Json& params) {
    return metrics::regular_polygon_configuration(n, params.number_or("side", 0.9) * v);
  });
  r.add("random", [](std::size_t n, double v, std::uint64_t seed, const Json& params) {
    // world_radius wins when given; otherwise radius scales with sqrt(n)
    // for asymptotically constant density.
    double radius = params.number_or("world_radius", -1.0);
    if (radius <= 0.0) {
      radius = params.number_or("world_radius_per_sqrt_n", 0.4) * v *
               std::sqrt(static_cast<double>(n));
    }
    return metrics::random_connected_configuration(n, radius, v, params.uint_or("seed", seed));
  });
  r.add("two_cluster", [](std::size_t n, double v, std::uint64_t seed, const Json& params) {
    return metrics::two_cluster_configuration(
        n, static_cast<std::size_t>(params.uint_or("bridge", 3)), v, params.uint_or("seed", seed));
  });
  r.add("spiral", [](std::size_t, double v, std::uint64_t, const Json& params) {
    // Robot count is dictated by the construction; RunSpec.n is overridden.
    return metrics::spiral_configuration(params.number_or("psi", 0.3),
                                         params.number_or("edge_scale", 0.92) * v)
        .positions;
  });
}

}  // namespace

Registry<AlgorithmFactory>& algorithms() {
  static Registry<AlgorithmFactory>* r = [] {
    auto* reg = new Registry<AlgorithmFactory>("algorithm");
    register_algorithms(*reg);
    return reg;
  }();
  return *r;
}

Registry<SchedulerFactory>& schedulers() {
  static Registry<SchedulerFactory>* r = [] {
    auto* reg = new Registry<SchedulerFactory>("scheduler");
    register_schedulers(*reg);
    return reg;
  }();
  return *r;
}

Registry<ErrorModelFactory>& errors() {
  static Registry<ErrorModelFactory>* r = [] {
    auto* reg = new Registry<ErrorModelFactory>("error model");
    register_errors(*reg);
    return reg;
  }();
  return *r;
}

Registry<InitialConfigFactory>& initials() {
  static Registry<InitialConfigFactory>* r = [] {
    auto* reg = new Registry<InitialConfigFactory>("initial configuration");
    register_initials(*reg);
    return reg;
  }();
  return *r;
}

}  // namespace cohesion::run
