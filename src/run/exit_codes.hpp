// Exit-code taxonomy shared by the batch CLIs (cohesion_run,
// cohesion_merge, cohesion_launch) and the supervisor that retries them.
//
// The taxonomy exists for exactly one consumer question: *is retrying this
// invocation, unchanged, able to fix it?* Transient failures (I/O: disk
// full, unreadable input file, torn journal write) can vanish on a retry;
// permanent failures (malformed spec, unknown registry key, fingerprint
// mismatch, invalid merge) reproduce deterministically, so a supervisor
// must re-classify them as operator problems instead of burning its retry
// budget. Documented for operators in docs/experiments.md ("Exit codes")
// and docs/operations.md.
#pragma once

#include <stdexcept>

namespace cohesion::run {

enum ExitCode : int {
  kExitSuccess = 0,      ///< every run executed; report written
  kExitPermanent = 1,    ///< deterministic failure — retrying cannot fix it
  kExitUsage = 2,        ///< bad command line
  kExitTransient = 3,    ///< environmental I/O failure — retrying may fix it
  kExitInterrupted = 4,  ///< SIGTERM/SIGINT: journal flushed, resumable
  kExitTransientNetwork = 5,  ///< peer unreachable/refused/reset — retrying may fix it
};

/// Thrown for failures of the environment (open/write/fsync/truncate), as
/// opposed to failures of the input. CLIs map it to kExitTransient; plain
/// std::runtime_error maps to kExitPermanent.
struct TransientError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown when a network peer is unreachable (connection refused/reset,
/// lookup failure, send/recv timeout): a distinct transient cause, because
/// the right response differs — a worker that cannot reach its daemon
/// should keep retrying the *connect* under backoff (the daemon may be
/// restarting), not relaunch its whole invocation. CLIs map it to
/// kExitTransientNetwork; it is-a TransientError, so code that only
/// distinguishes transient-vs-permanent keeps working.
struct TransientNetworkError : TransientError {
  using TransientError::TransientError;
};

/// Whether a worker that exited with `code` is worth relaunching with the
/// same arguments. Transient (I/O or network) and interrupted exits are;
/// success needs no retry and permanent/usage exits would fail identically
/// again.
[[nodiscard]] inline bool exit_code_retryable(int code) {
  return code == kExitTransient || code == kExitInterrupted || code == kExitTransientNetwork;
}

}  // namespace cohesion::run
