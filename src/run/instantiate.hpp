// Resolve a RunSpec into live objects: registry lookups for every slot,
// seed-stream derivation, and an Engine wired to owned algorithm/scheduler
// instances. The smallest way to go from "one JSON artifact" to "a running
// simulation" — BatchRunner, the CLI and the examples all sit on this.
#pragma once

#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "run/spec.hpp"

namespace cohesion::run {

/// Owns everything a run needs. The engine holds references into
/// `algorithm` and `scheduler`, so the instance must outlive it — keep the
/// struct alive for as long as the engine is used.
struct RunInstance {
  std::unique_ptr<core::Algorithm> algorithm;
  std::unique_ptr<core::Scheduler> scheduler;
  std::vector<geom::Vec2> initial;
  core::EngineConfig config;
  std::unique_ptr<core::Engine> engine;
};

/// Build a runnable instance. Throws std::runtime_error on unknown registry
/// keys or malformed params. The initial-configuration factory may override
/// the robot count (e.g. spiral); the scheduler sees the actual count.
RunInstance instantiate(const RunSpec& spec);

}  // namespace cohesion::run
