// Append-only JSONL checkpoint journal for resumable batches.
//
// File format (one JSON document per '\n'-terminated line):
//
//   line 1   header: {"format": "cohesion-checkpoint/1",
//                     "fingerprint": "<16 hex chars>", "total_runs": N}
//   line 2+  one completed RunOutcome per line (deterministic fields only,
//            i.e. RunOutcome::to_json()); lines appear in *completion*
//            order, which is racy across worker threads — each line carries
//            its global grid index, so the order never matters.
//
// The fingerprint is a 64-bit FNV-1a hash over every expanded run's
// (index, resolved RunSpec) plus the early-stop rule, so a checkpoint is
// bound to the exact grid — including derived seeds and any --shard
// selection — that produced it. Resuming against a different spec, shard
// or early-stop rule fails with an error that says so, instead of silently
// mixing incompatible outcomes.
//
// Crash tolerance: every append is a single write(2) of a complete line
// (O_APPEND), fsync'd every `fsync_every` outcomes. A crash can therefore
// leave at most one torn line, and only at the tail; load() drops it and
// truncates the file back to the last complete line before appending
// resumes. Malformed JSON anywhere *before* the final line is not a crash
// artifact and is rejected as corruption.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "run/batch_runner.hpp"
#include "run/spec.hpp"

namespace cohesion::run {

/// Hex fingerprint binding a checkpoint to an exact expanded run list +
/// early-stop rule (see file header). Pure function of its arguments.
std::string runs_fingerprint(const std::vector<ExpandedRun>& runs, const EarlyStop& early_stop);

/// Writer/loader for the JSONL journal. Thread-safe appends; one instance
/// per batch. Construction opens (and truncates or validates) the file;
/// destruction fsyncs and closes it.
class CheckpointJournal {
 public:
  struct Loaded {
    std::vector<RunOutcome> outcomes;   ///< complete outcomes found on disk
    std::size_t dropped_tail_bytes = 0; ///< torn final line removed, if any
  };

  /// Start a fresh journal at `path` (an existing file is overwritten).
  static std::unique_ptr<CheckpointJournal> create(const std::string& path,
                                                   const std::string& fingerprint,
                                                   std::size_t total_runs,
                                                   std::size_t fsync_every);

  /// Resume: validate an existing journal against (fingerprint, total_runs),
  /// return its completed outcomes via `loaded`, truncate any torn tail, and
  /// open for appending. A missing file degrades to create() — resuming a
  /// run that never started is just starting it. Throws std::runtime_error
  /// with an actionable message on a malformed header/body or on a
  /// fingerprint/total mismatch (stale checkpoint).
  static std::unique_ptr<CheckpointJournal> resume(const std::string& path,
                                                   const std::string& fingerprint,
                                                   std::size_t total_runs,
                                                   std::size_t fsync_every, Loaded& loaded);

  /// Append one completed outcome as a single atomic line write; fsyncs
  /// every `fsync_every` appends (0: only on close). Never throws — it is
  /// called from worker threads, where an escaping exception would
  /// std::terminate the process. A write failure (disk full, quota, ...)
  /// instead latches error() and turns further appends into no-ops; the
  /// batch itself finishes, and the caller surfaces the error afterwards.
  void append(const RunOutcome& outcome) noexcept;

  /// First append failure, or empty when the journal is healthy. Check
  /// after the batch: a non-empty value means the file on disk is
  /// incomplete (resuming from it is still safe — missing runs re-run).
  [[nodiscard]] std::string error() const;

  ~CheckpointJournal();
  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

 private:
  CheckpointJournal(int fd, std::string path, std::size_t fsync_every);

  int fd_ = -1;
  std::string path_;
  std::size_t fsync_every_ = 1;
  std::size_t since_sync_ = 0;
  std::string error_;  ///< first append failure; latched, guarded by mutex_
  mutable std::mutex mutex_;
};

}  // namespace cohesion::run
