// Minimal JSON value type for experiment specs and batch reports.
//
// Why not an external library: the container bakes in no JSON dependency,
// and the run subsystem needs only a small, deterministic subset — but two
// properties matter enough to implement carefully:
//
//  * Integer fidelity. Seeds are full 64-bit values (derived per-run seeds
//    use the whole range); storing them as doubles would corrupt anything
//    above 2^53. Numbers therefore keep their parsed flavor — uint64, int64
//    or double — and only widen to double on request.
//  * Deterministic serialization. Batch aggregates are compared byte-for-
//    byte across worker-thread counts, so dump() must be a pure function of
//    the value: objects preserve insertion order and doubles print as the
//    shortest round-trippable decimal.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace cohesion::run {

class Json;
using JsonArray = std::vector<Json>;
/// Insertion-ordered object (duplicate keys rejected by the parser).
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
 public:
  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(double d) : v_(d) {}
  Json(int i) : v_(static_cast<std::int64_t>(i)) {}
  Json(long i) : v_(static_cast<std::int64_t>(i)) {}
  Json(long long i) : v_(static_cast<std::int64_t>(i)) {}
  Json(unsigned u) : v_(static_cast<std::uint64_t>(u)) {}
  Json(unsigned long u) : v_(static_cast<std::uint64_t>(u)) {}
  Json(unsigned long long u) : v_(static_cast<std::uint64_t>(u)) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(std::string_view s) : v_(std::string(s)) {}
  Json(JsonArray a) : v_(std::move(a)) {}
  Json(JsonObject o) : v_(std::move(o)) {}

  static Json object() { return Json(JsonObject{}); }
  static Json array() { return Json(JsonArray{}); }

  /// Parse a complete JSON document; throws std::runtime_error with a
  /// character offset on malformed input or trailing garbage.
  static Json parse(std::string_view text);
  static Json parse_file(const std::string& path);

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v_) || std::holds_alternative<std::int64_t>(v_) ||
           std::holds_alternative<std::uint64_t>(v_);
  }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<JsonArray>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<JsonObject>(v_); }

  /// Typed accessors throw std::runtime_error on kind mismatch (and on
  /// narrowing that would change the value, e.g. as_uint of -1 or of 2.5).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& items() const;
  [[nodiscard]] JsonArray& items();
  [[nodiscard]] const JsonObject& entries() const;
  [[nodiscard]] JsonObject& entries();

  // --- object helpers -------------------------------------------------------
  [[nodiscard]] bool contains(std::string_view key) const;
  /// Pointer to the member value, or nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const;
  [[nodiscard]] Json* find(std::string_view key);
  /// Member access that throws std::runtime_error naming the missing key.
  [[nodiscard]] const Json& at(std::string_view key) const;
  /// Insert-or-assign preserving insertion order.
  void set(std::string_view key, Json value);

  // Lookup-with-default for the common "optional spec field" pattern.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::uint64_t uint_or(std::string_view key, std::uint64_t fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key, std::string_view fallback) const;

  /// Serialize. indent < 0 gives a single line; otherwise pretty-print with
  /// `indent` spaces per level. Deterministic (see header comment).
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Structural equality. Numbers compare by value across flavors (1 ==
  /// 1.0); objects compare order-sensitively, matching dump() equality.
  bool operator==(const Json& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::int64_t, std::uint64_t, std::string, JsonArray,
               JsonObject>
      v_;
};

}  // namespace cohesion::run
