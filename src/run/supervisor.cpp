#include "run/supervisor.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <thread>

#include "run/exit_codes.hpp"
#include "run/shard.hpp"
#include "run/spec.hpp"

namespace cohesion::run {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr const char* kPartialFormat = "cohesion-partial-report/1";
constexpr const char* kSupervisedFormat = "cohesion-supervised-partial/1";

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// The cohesion_run binary next to the current executable — the right
/// default for both the cohesion_launch CLI and the test binary, which
/// live in the same build tree as their workers.
std::string sibling_runner() {
  char buf[4096];
  const ::ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "cohesion_run";
  buf[n] = '\0';
  const std::string exe(buf);
  const std::size_t slash = exe.rfind('/');
  if (slash == std::string::npos) return "cohesion_run";
  return exe.substr(0, slash + 1) + "cohesion_run";
}

/// Cheap heartbeat read: journal size and complete-line count. No JSON
/// parsing — growth is the heartbeat, lines arm fault triggers.
struct JournalStat {
  std::size_t bytes = 0;
  std::size_t outcome_lines = 0;  ///< complete lines minus the header
};

JournalStat stat_journal(const std::string& path) {
  JournalStat s;
  std::ifstream in(path, std::ios::binary);
  if (!in) return s;
  std::size_t lines = 0;
  char chunk[1 << 14];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    const std::streamsize got = in.gcount();
    s.bytes += static_cast<std::size_t>(got);
    lines += static_cast<std::size_t>(
        std::count(chunk, chunk + got, '\n'));
    if (got < static_cast<std::streamsize>(sizeof(chunk))) break;
  }
  s.outcome_lines = lines > 0 ? lines - 1 : 0;  // line 1 is the header
  return s;
}

/// Everything the supervisor tracks about one shard beyond its public
/// ShardStatus. The lease is (last_progress, journal growth); `retained`
/// accumulates outcomes recovered from dead attempts so a retry that
/// starts over (or a final partial report) never loses them.
struct ShardState {
  ShardStatus status;
  ::pid_t pid = -1;
  Clock::time_point last_progress{};
  Clock::time_point retry_at{};
  std::size_t journal_bytes = 0;
  bool corrupt_pending = false;  ///< corrupt fault fired; scribble tail at reap
  std::vector<RunOutcome> retained;
  Json partial;  ///< parsed partial report once collected
  std::vector<char> fault_fired;  ///< parallel to SupervisorOptions::faults

  std::string journal_path;
  std::string partial_path;
  std::string log_path;
};

bool is_terminal(const ShardState& s) {
  return s.status.state == ShardStatus::State::done ||
         s.status.state == ShardStatus::State::failed;
}

void append_torn_tail(const std::string& path) {
  // A newline-free fragment of a plausible outcome line: exactly what a
  // crash mid-write(2) would leave if appends were not single writes.
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << R"({"index": 4294967295, "variant": 0, "repe)";
}

}  // namespace

double RetryPolicy::backoff_seconds(std::size_t shard, std::size_t failed_attempts) const {
  const std::size_t exponent = failed_attempts > 0 ? failed_attempts - 1 : 0;
  double delay = base_delay_seconds * std::pow(multiplier, static_cast<double>(exponent));
  delay = std::min(delay, max_delay_seconds);
  // Seeded jitter: a pure function of (seed, shard, attempt), so backoff
  // schedules are reproducible — asserted in tests — yet differ across
  // shards that died in the same instant.
  std::uint64_t state = jitter_seed;
  state ^= 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(shard) + 1);
  state ^= 0xBF58476D1CE4E5B9ull * (static_cast<std::uint64_t>(failed_attempts) + 1);
  const double u = static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  return delay * (1.0 + jitter * u);
}

FaultPlan FaultPlan::parse(const std::string& text) {
  const auto bad = [&](const std::string& why) -> std::runtime_error {
    return std::runtime_error("bad fault \"" + text + "\": " + why +
                              " (expected kind:shard=J[,attempt=A][,after=K] with kind one of "
                              "kill, stall, corrupt)");
  };
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) throw bad("missing ':'");
  const std::string kind = text.substr(0, colon);
  FaultPlan f;
  if (kind == "kill") {
    f.kind = Kind::kill;
  } else if (kind == "stall") {
    f.kind = Kind::stall;
  } else if (kind == "corrupt") {
    f.kind = Kind::corrupt;
  } else {
    throw bad("unknown kind \"" + kind + "\"");
  }
  bool have_shard = false;
  std::size_t pos = colon + 1;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(pos, comma - pos);
    const std::size_t eq = token.find('=');
    if (token.empty() || eq == std::string::npos) throw bad("bad token \"" + token + "\"");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    std::size_t parsed = 0;
    if (value.empty()) throw bad("empty value for " + key);
    for (const char c : value) {
      if (c < '0' || c > '9') throw bad("non-numeric value for " + key);
      parsed = parsed * 10 + static_cast<std::size_t>(c - '0');
    }
    if (key == "shard") {
      f.shard = parsed;
      have_shard = true;
    } else if (key == "attempt") {
      if (parsed == 0) throw bad("attempt is 1-based");
      f.attempt = parsed;
    } else if (key == "after") {
      f.after_lines = parsed;
    } else {
      throw bad("unknown key \"" + key + "\"");
    }
    pos = comma + 1;
  }
  if (!have_shard) throw bad("missing shard=J");
  return f;
}

std::string FaultPlan::describe() const {
  const char* kind_name =
      kind == Kind::kill ? "kill" : kind == Kind::stall ? "stall" : "corrupt";
  return std::string(kind_name) + ":shard=" + std::to_string(shard) +
         ",attempt=" + std::to_string(attempt) + ",after=" + std::to_string(after_lines);
}

const char* ShardStatus::state_name() const {
  switch (state) {
    case State::pending: return "pending";
    case State::running: return "running";
    case State::backoff: return "backoff";
    case State::done: return "done";
    case State::failed: return "failed";
  }
  return "?";
}

std::vector<RunOutcome> merge_attempt_outcomes(
    const std::vector<std::vector<RunOutcome>>& attempts) {
  std::map<std::size_t, RunOutcome> by_index;
  for (const std::vector<RunOutcome>& attempt : attempts) {
    for (const RunOutcome& o : attempt) {
      const auto [it, fresh] = by_index.try_emplace(o.index, o);
      if (fresh) continue;
      RunOutcome& kept = it->second;
      const bool kept_ok = kept.error.empty();
      const bool new_ok = o.error.empty();
      if (kept_ok && new_ok) {
        // Outcomes are deterministic functions of the grid position, so two
        // completed attempts must agree exactly; a difference means the
        // attempts ran different specs (or nondeterminism crept in) and no
        // silent choice between them is right.
        if (kept.to_json().dump() != o.to_json().dump()) {
          throw std::runtime_error(
              "attempt merge: conflicting completed outcomes for grid index " +
              std::to_string(o.index) +
              " — attempts disagree on a deterministic run (different spec or "
              "nondeterministic engine); refusing to pick one");
        }
      } else if (!kept_ok && new_ok) {
        kept = o;  // a completed outcome supersedes an environmental error
      } else if (!kept_ok && !new_ok) {
        kept = o;  // between two errors, the later attempt's wins
      }
      // kept_ok && !new_ok: keep the completed outcome.
    }
  }
  std::vector<RunOutcome> out;
  out.reserve(by_index.size());
  for (auto& [index, o] : by_index) out.push_back(std::move(o));
  return out;
}

bool read_journal_outcomes(const std::string& path, std::vector<RunOutcome>& outcomes) {
  outcomes.clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  const std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) break;  // torn tail — a crash artifact, ignored
    const std::string_view line(content.data() + pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    if (line_no == 1) continue;  // header
    try {
      outcomes.push_back(RunOutcome::from_json(Json::parse(line)));
    } catch (const std::exception&) {
      // A live worker owns this file; skip anything unreadable rather than
      // fail supervision over a monitoring read.
    }
  }
  return line_no > 0;
}

Supervisor::Supervisor(SupervisorOptions options) : options_(std::move(options)) {}

SupervisorResult Supervisor::run() {
  if (options_.shards == 0) throw std::runtime_error("supervisor: shards must be >= 1");
  if (options_.retry.max_attempts == 0) {
    throw std::runtime_error("supervisor: max_attempts must be >= 1");
  }
  if (options_.runner.empty()) options_.runner = sibling_runner();
  if (::access(options_.runner.c_str(), X_OK) != 0) {
    throw std::runtime_error("supervisor: runner " + options_.runner + " is not executable");
  }

  // Parse the spec up front: total_runs for progress/coverage, and a spec
  // error is the supervisor's to report, not N workers' to rediscover.
  const Json doc = Json::parse_file(options_.spec_path);
  ExperimentSpec experiment;
  if (doc.contains("base")) {
    experiment = ExperimentSpec::from_json(doc);
  } else {
    experiment.base = RunSpec::from_json(doc);
    experiment.name = experiment.base.name;
  }
  const std::size_t total_runs =
      experiment.variant_count() * std::max<std::size_t>(experiment.repeats, 1);

  std::error_code ec;
  fs::create_directories(options_.work_dir, ec);
  if (ec) {
    throw std::runtime_error("supervisor: cannot create work dir " + options_.work_dir + " (" +
                             ec.message() + ")");
  }

  const auto event = [&](const std::string& line) {
    if (options_.on_event) options_.on_event(line);
  };

  std::vector<ShardState> shards(options_.shards);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    ShardState& s = shards[i];
    const std::string stem = options_.work_dir + "/shard_" + std::to_string(i);
    s.journal_path = stem + ".ckpt";
    s.partial_path = stem + ".partial.json";
    s.log_path = stem + ".log";
    s.fault_fired.assign(options_.faults.size(), 0);
  }

  const auto spawn = [&](std::size_t index) {
    ShardState& s = shards[index];
    fs::remove(s.partial_path, ec);  // a stale partial must never masquerade as coverage
    ++s.status.attempts;
    s.corrupt_pending = false;
    std::vector<std::string> args = {
        options_.runner,
        options_.spec_path,
        "--shard",
        std::to_string(index) + "/" + std::to_string(options_.shards),
        "--resume",
        s.journal_path,
        "--out",
        s.partial_path,
        "--threads",
        std::to_string(std::max<std::size_t>(options_.worker_threads, 1)),
    };
    if (options_.throttle_ms > 0) {
      args.push_back("--throttle-ms");
      args.push_back(std::to_string(options_.throttle_ms));
    }
    const ::pid_t pid = ::fork();
    if (pid < 0) {
      // Treat like any other transient death; the retry path owns it.
      s.status.last_failure = std::string("fork failed (") + std::strerror(errno) + ")";
      s.status.state = s.status.attempts >= options_.retry.max_attempts
                           ? ShardStatus::State::failed
                           : ShardStatus::State::backoff;
      s.retry_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double>(options_.retry.backoff_seconds(
                                          index, s.status.attempts)));
      return;
    }
    if (pid == 0) {
      const int log = ::open(s.log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (log >= 0) {
        ::dup2(log, STDOUT_FILENO);
        ::dup2(log, STDERR_FILENO);
        if (log > STDERR_FILENO) ::close(log);
      }
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      ::_exit(127);  // exec failure — reported through the exit status
    }
    s.pid = pid;
    s.status.state = ShardStatus::State::running;
    s.journal_bytes = stat_journal(s.journal_path).bytes;
    s.last_progress = Clock::now();
    event("shard " + std::to_string(index) + " attempt " + std::to_string(s.status.attempts) +
          " launched (pid " + std::to_string(pid) + ")");
  };

  // A dead worker's journal still holds fsync'd outcomes; fold them into
  // `retained` so no completed run is ever lost — not to a retry that
  // starts a fresh journal, and not to a shard that fails for good.
  const auto retain_journal = [&](ShardState& s) {
    std::vector<RunOutcome> journaled;
    read_journal_outcomes(s.journal_path, journaled);
    try {
      s.retained = merge_attempt_outcomes({s.retained, journaled});
    } catch (const std::exception& e) {
      event(std::string("WARNING: ") + e.what());
    }
  };

  const auto on_death = [&](std::size_t index, const std::string& reason, bool permanent) {
    ShardState& s = shards[index];
    s.pid = -1;
    s.status.last_failure = reason;
    retain_journal(s);
    if (permanent) {
      s.status.state = ShardStatus::State::failed;
      event("shard " + std::to_string(index) + " FAILED permanently: " + reason);
      return;
    }
    if (s.status.attempts >= options_.retry.max_attempts) {
      s.status.state = ShardStatus::State::failed;
      event("shard " + std::to_string(index) + " FAILED: retry budget exhausted after " +
            std::to_string(s.status.attempts) + " attempts (last: " + reason + ")");
      return;
    }
    const double delay = options_.retry.backoff_seconds(index, s.status.attempts);
    s.status.state = ShardStatus::State::backoff;
    s.retry_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(delay));
    event("shard " + std::to_string(index) + " died (" + reason + "); retry " +
          std::to_string(s.status.attempts + 1) + "/" +
          std::to_string(options_.retry.max_attempts) + " in " + std::to_string(delay) + "s");
  };

  const auto try_collect_partial = [&](ShardState& s, std::size_t index,
                                       std::string& why) -> bool {
    try {
      Json p = Json::parse_file(s.partial_path);
      if (!p.is_object() || p.string_or("format", "") != kPartialFormat) {
        why = "not a partial report";
        return false;
      }
      if (static_cast<std::size_t>(p.at("shard").at("index").as_uint()) != index) {
        why = "partial report belongs to another shard";
        return false;
      }
      std::vector<RunOutcome> outcomes;
      for (const Json& r : p.at("runs").items()) outcomes.push_back(RunOutcome::from_json(r));
      s.retained = merge_attempt_outcomes({s.retained, outcomes});
      s.partial = std::move(p);
      return true;
    } catch (const std::exception& e) {
      why = e.what();
      return false;
    }
  };

  // One pass over a running shard: heartbeat from the journal, armed fault
  // triggers, then the lease check. Reaping happens separately so a kill
  // issued here is observed (and classified) on a later pass.
  const auto poll_running = [&](std::size_t index) {
    ShardState& s = shards[index];
    const JournalStat js = stat_journal(s.journal_path);
    if (js.bytes > s.journal_bytes) {
      s.journal_bytes = js.bytes;
      s.last_progress = Clock::now();
    }
    s.status.journal_lines = js.outcome_lines;

    for (std::size_t f = 0; f < options_.faults.size(); ++f) {
      const FaultPlan& fault = options_.faults[f];
      if (s.fault_fired[f] || fault.shard != index || fault.attempt != s.status.attempts ||
          js.outcome_lines < fault.after_lines) {
        continue;
      }
      s.fault_fired[f] = 1;
      event("fault injected on shard " + std::to_string(index) + ": " + fault.describe());
      switch (fault.kind) {
        case FaultPlan::Kind::kill:
          ::kill(s.pid, SIGKILL);
          break;
        case FaultPlan::Kind::stall:
          // The worker lives but its heartbeat stops; only the lease can
          // catch this, which is exactly what the harness verifies.
          ::kill(s.pid, SIGSTOP);
          break;
        case FaultPlan::Kind::corrupt:
          ::kill(s.pid, SIGKILL);
          s.corrupt_pending = true;
          break;
      }
    }

    if (seconds_between(s.last_progress, Clock::now()) > options_.lease.timeout_seconds) {
      // Lease expired: no journal growth for the whole window. SIGKILL is
      // safe on live, wedged and SIGSTOPped processes alike.
      ::kill(s.pid, SIGKILL);
      int st = 0;
      ::waitpid(s.pid, &st, 0);
      on_death(index,
               "lease expired (no journal progress for " +
                   std::to_string(options_.lease.timeout_seconds) + "s)",
               /*permanent=*/false);
    }
  };

  const auto reap = [&](std::size_t index) {
    ShardState& s = shards[index];
    int st = 0;
    const ::pid_t got = ::waitpid(s.pid, &st, WNOHANG);
    if (got != s.pid) return;
    s.pid = -1;
    if (s.corrupt_pending) {
      append_torn_tail(s.journal_path);
      s.corrupt_pending = false;
    }
    if (WIFEXITED(st)) {
      const int code = WEXITSTATUS(st);
      // Any exit that left a complete partial report covers the shard —
      // including exit 1 from in-report run errors, which the merged
      // report carries exactly like a single-process run would.
      std::string why;
      if (try_collect_partial(s, index, why)) {
        s.status.state = ShardStatus::State::done;
        s.status.journal_lines = stat_journal(s.journal_path).outcome_lines;
        event("shard " + std::to_string(index) + " done (exit " + std::to_string(code) +
              ", attempt " + std::to_string(s.status.attempts) + ")");
        return;
      }
      if (code == kExitSuccess) {
        on_death(index, "exit 0 but partial report unusable (" + why + ")",
                 /*permanent=*/false);
      } else {
        on_death(index, "exit code " + std::to_string(code),
                 /*permanent=*/!exit_code_retryable(code));
      }
      return;
    }
    if (WIFSIGNALED(st)) {
      on_death(index, std::string("killed by signal ") + std::to_string(WTERMSIG(st)),
               /*permanent=*/false);
    }
  };

  // Everything recovered so far, shard by shard: collected partials and
  // retained journal outcomes for the dead, the live journal view for the
  // running. Attempt-supersedes keeps it one outcome per index.
  const auto recovered_outcomes = [&]() -> std::vector<RunOutcome> {
    std::vector<std::vector<RunOutcome>> per_shard;
    for (ShardState& s : shards) {
      if (s.status.state == ShardStatus::State::done) {
        per_shard.push_back(s.retained);
        continue;
      }
      std::vector<RunOutcome> live;
      read_journal_outcomes(s.journal_path, live);
      try {
        per_shard.push_back(merge_attempt_outcomes({s.retained, live}));
      } catch (const std::exception& e) {
        event(std::string("WARNING: ") + e.what());
        per_shard.push_back(s.retained);
      }
    }
    std::vector<RunOutcome> all;
    for (std::vector<RunOutcome>& v : per_shard) {
      all.insert(all.end(), std::make_move_iterator(v.begin()),
                 std::make_move_iterator(v.end()));
    }
    std::sort(all.begin(), all.end(),
              [](const RunOutcome& a, const RunOutcome& b) { return a.index < b.index; });
    return all;
  };

  event("supervising " + std::to_string(options_.shards) + " shards of " + options_.spec_path +
        " (" + std::to_string(total_runs) + " runs, max " +
        std::to_string(options_.retry.max_attempts) + " attempts/shard, lease " +
        std::to_string(options_.lease.timeout_seconds) + "s)");

  Clock::time_point last_status = Clock::now();
  while (true) {
    std::size_t running = 0;
    for (const ShardState& s : shards) {
      if (s.status.state == ShardStatus::State::running) ++running;
    }
    const std::size_t cap =
        options_.max_parallel == 0 ? shards.size() : options_.max_parallel;
    for (std::size_t i = 0; i < shards.size() && running < cap; ++i) {
      ShardState& s = shards[i];
      const bool due_retry =
          s.status.state == ShardStatus::State::backoff && Clock::now() >= s.retry_at;
      if (s.status.state == ShardStatus::State::pending || due_retry) {
        spawn(i);
        if (s.status.state == ShardStatus::State::running) ++running;
      }
    }

    for (std::size_t i = 0; i < shards.size(); ++i) {
      if (shards[i].status.state != ShardStatus::State::running) continue;
      reap(i);
      if (shards[i].status.state == ShardStatus::State::running) poll_running(i);
    }

    const bool all_terminal =
        std::all_of(shards.begin(), shards.end(), [](const ShardState& s) {
          return is_terminal(s);
        });
    if (all_terminal) break;

    if (seconds_between(last_status, Clock::now()) >= options_.lease.status_interval_seconds) {
      last_status = Clock::now();
      const std::vector<RunOutcome> all = recovered_outcomes();
      std::size_t done = 0, in_flight = 0, backoff = 0, failed = 0;
      for (const ShardState& s : shards) {
        switch (s.status.state) {
          case ShardStatus::State::done: ++done; break;
          case ShardStatus::State::running: ++in_flight; break;
          case ShardStatus::State::backoff: ++backoff; break;
          case ShardStatus::State::failed: ++failed; break;
          case ShardStatus::State::pending: break;
        }
      }
      event("progress: " + std::to_string(all.size()) + "/" + std::to_string(total_runs) +
            " runs; shards " + std::to_string(done) + " done, " + std::to_string(in_flight) +
            " running, " + std::to_string(backoff) + " backoff, " + std::to_string(failed) +
            " failed; partial aggregate: " + BatchRunner::aggregate(all).to_json().dump());
    }

    std::this_thread::sleep_for(std::chrono::duration<double>(
        std::max(options_.lease.poll_interval_seconds, 0.001)));
  }

  SupervisorResult result;
  result.total_runs = total_runs;
  for (ShardState& s : shards) result.shards.push_back(s.status);

  const bool all_done = std::all_of(shards.begin(), shards.end(), [](const ShardState& s) {
    return s.status.state == ShardStatus::State::done;
  });
  if (all_done) {
    std::vector<Json> partials;
    partials.reserve(shards.size());
    for (ShardState& s : shards) partials.push_back(std::move(s.partial));
    try {
      result.report = merge_partial_reports(partials);
      result.complete = true;
      result.covered_runs = total_runs;
      const std::size_t errors =
          static_cast<std::size_t>(result.report.at("aggregate").at("errors").as_uint());
      result.exit_code = errors == 0 ? kExitSuccess : kExitPermanent;
      event("complete: merged " + std::to_string(shards.size()) + " partial reports (" +
            std::to_string(total_runs) + " runs" +
            (errors > 0 ? ", " + std::to_string(errors) + " run errors" : "") + ")");
      return result;
    } catch (const std::exception& e) {
      // Partials that refuse to merge degrade to the partial document —
      // an explicit inconsistency report, never a silent wrong answer.
      event(std::string("merge failed: ") + e.what());
      result.report = Json::object();
      result.report.set("merge_error", std::string(e.what()));
    }
  }

  // Degraded output: every recovered outcome plus an explicit statement of
  // what is NOT covered.
  const std::vector<RunOutcome> all = recovered_outcomes();
  Json merge_err = result.report.is_object() && result.report.contains("merge_error")
                       ? std::move(result.report)
                       : Json::object();
  Json out = Json::object();
  out.set("format", kSupervisedFormat);
  out.set("complete", false);
  out.set("spec", options_.spec_path);
  out.set("total_runs", total_runs);
  out.set("covered_runs", all.size());
  JsonArray uncovered;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (shards[i].status.state != ShardStatus::State::done) uncovered.push_back(Json(i));
  }
  out.set("uncovered_shards", Json(std::move(uncovered)));
  JsonArray shard_docs;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardStatus& st = shards[i].status;
    Json sd = Json::object();
    sd.set("index", i);
    sd.set("state", st.state_name());
    sd.set("attempts", st.attempts);
    sd.set("journal_lines", st.journal_lines);
    if (!st.last_failure.empty()) sd.set("last_failure", st.last_failure);
    shard_docs.push_back(std::move(sd));
  }
  out.set("shards", Json(std::move(shard_docs)));
  if (merge_err.contains("merge_error")) out.set("merge_error", merge_err.at("merge_error"));
  out.set("aggregate", BatchRunner::aggregate(all).to_json());
  JsonArray runs;
  for (const RunOutcome& o : all) runs.push_back(o.to_json());
  out.set("runs", Json(std::move(runs)));

  result.report = std::move(out);
  result.complete = false;
  result.covered_runs = all.size();
  result.exit_code = kExitPermanent;
  event("INCOMPLETE: " + std::to_string(all.size()) + "/" + std::to_string(total_runs) +
        " runs covered; see uncovered_shards in the partial report");
  return result;
}

}  // namespace cohesion::run
