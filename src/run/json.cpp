#include "run/json.hpp"

#include <cerrno>
#include <charconv>
#include <cstring>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cohesion::run {

namespace {

[[noreturn]] void fail(std::string_view what) { throw std::runtime_error(std::string(what)); }

/// Recursive-descent parser over a string_view with offset-bearing errors.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) error("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void error(std::string_view what) const {
    fail("JSON parse error at offset " + std::to_string(pos_) + ": " + std::string(what));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) error("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) error(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        error("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        error("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        error("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      if (peek() != '"') error("expected object key string");
      std::string key = parse_string();
      for (const auto& [k, v] : obj) {
        if (k == key) error("duplicate object key \"" + key + "\"");
      }
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(obj));
      }
      error("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(arr));
      }
      error("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) error("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) error("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = parse_hex4();
          // Surrogate pair handling for completeness; specs are ASCII in
          // practice.
          if (code >= 0xD800 && code <= 0xDBFF && text_.substr(pos_, 2) == "\\u") {
            pos_ += 2;
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) error("invalid low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
          }
          append_utf8(out, code);
          break;
        }
        default: error("invalid escape character");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) error("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else error("invalid hex digit in \\u escape");
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Json parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") error("invalid number");
    if (integral) {
      // Keep the exact integer flavor: uint64 for non-negative, int64 for
      // negative. Out-of-range integers fall through to double.
      if (token[0] != '-') {
        std::uint64_t u = 0;
        const auto [p, ec] = std::from_chars(token.begin(), token.end(), u);
        if (ec == std::errc() && p == token.end()) return Json(u);
      } else {
        std::int64_t i = 0;
        const auto [p, ec] = std::from_chars(token.begin(), token.end(), i);
        if (ec == std::errc() && p == token.end()) return Json(i);
      }
    }
    double d = 0.0;
    const auto [p, ec] = std::from_chars(token.begin(), token.end(), d);
    if (ec != std::errc() || p != token.end()) error("invalid number");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Shortest decimal that parses back to exactly `d` (tried at increasing
/// precision), so serialization is deterministic and round-trips.
void append_double(std::string& out, double d) {
  if (!std::isfinite(d)) fail("JSON cannot represent a non-finite number");
  char buf[32];
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  out += buf;
  // Keep the number flavor visible: "1e5" and "1.5" already look like
  // doubles; a bare integer like "2" would re-parse as uint64, so mark it.
  if (out.find_first_of(".eE", out.size() - std::strlen(buf)) == std::string::npos) {
    out += ".0";
  }
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

Json Json::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

bool Json::as_bool() const {
  if (const bool* b = std::get_if<bool>(&v_)) return *b;
  fail("JSON value is not a bool");
}

double Json::as_double() const {
  if (const double* d = std::get_if<double>(&v_)) return *d;
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) return static_cast<double>(*i);
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&v_)) return static_cast<double>(*u);
  fail("JSON value is not a number");
}

std::int64_t Json::as_int() const {
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) return *i;
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&v_)) {
    if (*u <= static_cast<std::uint64_t>(INT64_MAX)) return static_cast<std::int64_t>(*u);
    fail("JSON integer does not fit int64");
  }
  if (const double* d = std::get_if<double>(&v_)) {
    if (*d == static_cast<double>(static_cast<std::int64_t>(*d))) {
      return static_cast<std::int64_t>(*d);
    }
    fail("JSON number is not an integer");
  }
  fail("JSON value is not a number");
}

std::uint64_t Json::as_uint() const {
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&v_)) return *u;
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) {
    if (*i >= 0) return static_cast<std::uint64_t>(*i);
    fail("JSON integer is negative");
  }
  if (const double* d = std::get_if<double>(&v_)) {
    if (*d >= 0.0 && *d == static_cast<double>(static_cast<std::uint64_t>(*d))) {
      return static_cast<std::uint64_t>(*d);
    }
    fail("JSON number is not a non-negative integer");
  }
  fail("JSON value is not a number");
}

const std::string& Json::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&v_)) return *s;
  fail("JSON value is not a string");
}

const JsonArray& Json::items() const {
  if (const JsonArray* a = std::get_if<JsonArray>(&v_)) return *a;
  fail("JSON value is not an array");
}

JsonArray& Json::items() {
  if (JsonArray* a = std::get_if<JsonArray>(&v_)) return *a;
  fail("JSON value is not an array");
}

const JsonObject& Json::entries() const {
  if (const JsonObject* o = std::get_if<JsonObject>(&v_)) return *o;
  fail("JSON value is not an object");
}

JsonObject& Json::entries() {
  if (JsonObject* o = std::get_if<JsonObject>(&v_)) return *o;
  fail("JSON value is not an object");
}

bool Json::contains(std::string_view key) const { return find(key) != nullptr; }

const Json* Json::find(std::string_view key) const {
  const JsonObject* o = std::get_if<JsonObject>(&v_);
  if (!o) return nullptr;
  for (const auto& [k, v] : *o) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json* Json::find(std::string_view key) {
  JsonObject* o = std::get_if<JsonObject>(&v_);
  if (!o) return nullptr;
  for (auto& [k, v] : *o) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  if (const Json* v = find(key)) return *v;
  fail("missing JSON object key \"" + std::string(key) + "\"");
}

void Json::set(std::string_view key, Json value) {
  if (Json* v = find(key)) {
    *v = std::move(value);
    return;
  }
  entries().emplace_back(std::string(key), std::move(value));
}

double Json::number_or(std::string_view key, double fallback) const {
  const Json* v = find(key);
  return v ? v->as_double() : fallback;
}

std::uint64_t Json::uint_or(std::string_view key, std::uint64_t fallback) const {
  const Json* v = find(key);
  return v ? v->as_uint() : fallback;
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  const Json* v = find(key);
  return v ? v->as_bool() : fallback;
}

std::string Json::string_or(std::string_view key, std::string_view fallback) const {
  const Json* v = find(key);
  return v ? v->as_string() : std::string(fallback);
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d), ' ');
  };
  if (is_null()) {
    out += "null";
  } else if (const bool* b = std::get_if<bool>(&v_)) {
    out += *b ? "true" : "false";
  } else if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) {
    out += std::to_string(*i);
  } else if (const std::uint64_t* u = std::get_if<std::uint64_t>(&v_)) {
    out += std::to_string(*u);
  } else if (const double* d = std::get_if<double>(&v_)) {
    append_double(out, *d);
  } else if (const std::string* s = std::get_if<std::string>(&v_)) {
    append_escaped(out, *s);
  } else if (const JsonArray* a = std::get_if<JsonArray>(&v_)) {
    if (a->empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i2 = 0; i2 < a->size(); ++i2) {
      if (i2 > 0) out.push_back(',');
      newline(depth + 1);
      (*a)[i2].dump_to(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back(']');
  } else if (const JsonObject* o = std::get_if<JsonObject>(&v_)) {
    if (o->empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [k, v] : *o) {
      if (!first) out.push_back(',');
      first = false;
      newline(depth + 1);
      append_escaped(out, k);
      out.push_back(':');
      if (indent >= 0) out.push_back(' ');
      v.dump_to(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back('}');
  }
}

bool Json::operator==(const Json& other) const {
  if (is_number() && other.is_number()) {
    // Cross-flavor numeric equality; exact for the integer flavors.
    const bool lu = std::holds_alternative<std::uint64_t>(v_);
    const bool ru = std::holds_alternative<std::uint64_t>(other.v_);
    const bool li = std::holds_alternative<std::int64_t>(v_);
    const bool ri = std::holds_alternative<std::int64_t>(other.v_);
    if ((lu || li) && (ru || ri)) {
      if (lu && ri) return other.as_int() >= 0 && as_uint() == other.as_uint();
      if (li && ru) return as_int() >= 0 && as_uint() == other.as_uint();
      if (lu && ru) return as_uint() == other.as_uint();
      return as_int() == other.as_int();
    }
    return as_double() == other.as_double();
  }
  return v_ == other.v_;
}

}  // namespace cohesion::run
