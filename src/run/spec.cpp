#include "run/spec.hpp"

#include <stdexcept>

namespace cohesion::run {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

RunSeeds seed_streams(std::uint64_t run_seed) {
  RunSeeds s;
  s.run = run_seed;
  s.engine = splitmix64(run_seed);
  s.scheduler = splitmix64(run_seed);
  s.initial = splitmix64(run_seed);
  return s;
}

RunSeeds derive_seeds(std::uint64_t experiment_seed, std::uint64_t run_index) {
  // Decorrelate the (seed, index) pair before streaming: two experiments
  // with nearby seeds must not share any per-run seed streams.
  std::uint64_t state = experiment_seed ^ (0xA0761D6478BD642Full * (run_index + 1));
  return seed_streams(splitmix64(state));
}

Json FactorySpec::to_json() const {
  Json j = Json::object();
  j.set("type", type);
  if (!params.entries().empty()) j.set("params", params);
  return j;
}

FactorySpec FactorySpec::from_json(const Json& j, const std::string& fallback_type) {
  FactorySpec f;
  if (j.is_string()) {
    // Shorthand: "fsync" == {"type": "fsync"}.
    f.type = j.as_string();
    return f;
  }
  f.type = j.string_or("type", fallback_type);
  if (const Json* p = j.find("params")) {
    if (!p->is_object()) throw std::runtime_error("FactorySpec params must be an object");
    f.params = *p;
  }
  return f;
}

Json TraceSpec::to_json() const {
  Json j = Json::object();
  j.set("mode", mode);
  if (!path.empty()) j.set("path", path);
  if (flush_every != 4096) j.set("flush_every", flush_every);
  if (index_every != 65536) j.set("index_every", index_every);
  return j;
}

TraceSpec TraceSpec::from_json(const Json& j) {
  TraceSpec t;
  if (j.is_string()) {
    // Shorthand: "stream" == {"mode": "stream"}.
    t.mode = j.as_string();
  } else if (j.is_object()) {
    t.mode = j.string_or("mode", t.mode);
    t.path = j.string_or("path", t.path);
    t.flush_every = static_cast<std::size_t>(j.uint_or("flush_every", t.flush_every));
    t.index_every = static_cast<std::size_t>(j.uint_or("index_every", t.index_every));
  } else {
    throw std::runtime_error("trace must be a JSON object or mode string");
  }
  if (t.mode != "memory" && t.mode != "stream" && t.mode != "off") {
    throw std::runtime_error("trace.mode must be \"memory\", \"stream\" or \"off\" (got \"" +
                             t.mode + "\")");
  }
  return t;
}

Json RunSpec::to_json() const {
  Json j = Json::object();
  j.set("name", name);
  j.set("n", n);
  j.set("seed", seed);
  j.set("algorithm", algorithm.to_json());
  j.set("scheduler", scheduler.to_json());
  j.set("error", error.to_json());
  j.set("initial", initial.to_json());
  Json vis = Json::object();
  vis.set("radius", visibility_radius);
  vis.set("open_ball", open_ball);
  vis.set("multiplicity", multiplicity_detection);
  j.set("visibility", vis);
  j.set("use_spatial_index", use_spatial_index);
  j.set("incremental_index", incremental_index);
  // Echoed only when enabled: existing specs (and their fingerprints,
  // cache keys and checkpoints) keep their exact bytes.
  if (soa_kernel) j.set("soa_kernel", true);
  Json stop_j = Json::object();
  stop_j.set("epsilon", stop.epsilon);
  stop_j.set("max_activations", stop.max_activations);
  stop_j.set("check_every", stop.check_every);
  stop_j.set("max_time", stop.max_time);
  j.set("stop", stop_j);
  // Only a non-default block is echoed: existing memory-mode specs keep
  // their exact bytes (and thus their checkpoint fingerprints).
  if (!trace.is_default()) j.set("trace", trace.to_json());
  return j;
}

RunSpec RunSpec::from_json(const Json& j) {
  if (!j.is_object()) throw std::runtime_error("RunSpec must be a JSON object");
  RunSpec s;
  s.name = j.string_or("name", s.name);
  s.n = static_cast<std::size_t>(j.uint_or("n", s.n));
  s.seed = j.uint_or("seed", s.seed);
  if (const Json* v = j.find("algorithm")) s.algorithm = FactorySpec::from_json(*v, "kknps");
  if (const Json* v = j.find("scheduler")) s.scheduler = FactorySpec::from_json(*v, "kasync");
  if (const Json* v = j.find("error")) s.error = FactorySpec::from_json(*v, "noisy");
  if (const Json* v = j.find("initial")) s.initial = FactorySpec::from_json(*v, "random");
  if (const Json* vis = j.find("visibility")) {
    s.visibility_radius = vis->number_or("radius", s.visibility_radius);
    s.open_ball = vis->bool_or("open_ball", s.open_ball);
    s.multiplicity_detection = vis->bool_or("multiplicity", s.multiplicity_detection);
  }
  s.use_spatial_index = j.bool_or("use_spatial_index", s.use_spatial_index);
  s.incremental_index = j.bool_or("incremental_index", s.incremental_index);
  s.soa_kernel = j.bool_or("soa_kernel", s.soa_kernel);
  if (const Json* st = j.find("stop")) {
    s.stop.epsilon = st->number_or("epsilon", s.stop.epsilon);
    s.stop.max_activations =
        static_cast<std::size_t>(st->uint_or("max_activations", s.stop.max_activations));
    s.stop.check_every = static_cast<std::size_t>(st->uint_or("check_every", s.stop.check_every));
    s.stop.max_time = st->number_or("max_time", s.stop.max_time);
  }
  if (const Json* t = j.find("trace")) s.trace = TraceSpec::from_json(*t);
  return s;
}

namespace {

std::uint64_t fnv1a64(const std::string& doc) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  for (const char c : doc) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::uint64_t spec_fingerprint(const RunSpec& spec) {
  RunSpec hashed = spec;
  hashed.trace = TraceSpec{};  // capture config is not part of the run identity
  return fnv1a64(hashed.to_json().dump());
}

std::uint64_t run_identity(const RunSpec& spec) {
  RunSpec hashed = spec;
  hashed.trace = TraceSpec{};  // capture config never changes the dynamics
  hashed.name = RunSpec{}.name;  // labels/repeat suffixes are display identity
  return fnv1a64(hashed.to_json().dump());
}

std::string fingerprint_hex(std::uint64_t fp) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 16; i-- > 0; fp >>= 4) out[i] = digits[fp & 0xF];
  return out;
}

Json EarlyStop::to_json() const {
  Json j = Json::object();
  j.set("window", window);
  j.set("epsilon", epsilon);
  j.set("metric", metric);
  return j;
}

EarlyStop EarlyStop::from_json(const Json& j) {
  if (!j.is_object()) throw std::runtime_error("early_stop must be a JSON object");
  EarlyStop e;
  e.window = static_cast<std::size_t>(j.uint_or("window", e.window));
  e.epsilon = j.number_or("epsilon", e.epsilon);
  e.metric = j.string_or("metric", e.metric);
  return e;
}

void apply_override(Json& doc, const std::string& path, const Json& value) {
  if (path.empty()) {
    if (!value.is_object()) {
      throw std::runtime_error("sweep axis with empty path requires object values");
    }
    for (const auto& [k, v] : value.entries()) {
      if (k == "label") continue;  // display-only
      Json* slot = doc.find(k);
      if (slot && slot->is_object() && v.is_object()) {
        apply_override(*slot, "", v);
      } else {
        doc.set(k, v);
      }
    }
    return;
  }
  const std::size_t dot = path.find('.');
  const std::string head = path.substr(0, dot);
  if (head.empty()) throw std::runtime_error("empty sweep-path segment in \"" + path + "\"");
  if (!doc.is_object()) throw std::runtime_error("sweep path \"" + path + "\" descends into a non-object");
  if (dot == std::string::npos) {
    doc.set(head, value);
    return;
  }
  Json* child = doc.find(head);
  if (!child) {
    doc.set(head, Json::object());
    child = doc.find(head);
  }
  apply_override(*child, path.substr(dot + 1), value);
}

namespace {

std::string value_label(const Json& v) {
  if (const Json* l = v.find("label")) return l->as_string();
  if (v.is_string()) return v.as_string();
  return v.dump();
}

std::string axis_label(const SweepAxis& axis, const Json& v) {
  if (axis.path.empty()) return value_label(v);
  // Last path segment is usually descriptive enough ("k", "n", ...).
  const std::size_t dot = axis.path.rfind('.');
  const std::string leaf = dot == std::string::npos ? axis.path : axis.path.substr(dot + 1);
  return leaf + "=" + value_label(v);
}

void replace_all(std::string& s, const std::string& token, const std::string& value) {
  for (std::size_t at = s.find(token); at != std::string::npos; at = s.find(token, at)) {
    s.replace(at, token.size(), value);
    at += value.size();
  }
}

/// Resolve a TraceSpec path template for one expanded run. {name} is
/// sanitized ('/' and '#' from sweep labels would fragment the filename).
std::string substitute_trace_path(std::string templ, const ExpandedRun& run) {
  std::string safe_name = run.spec.name;
  for (char& c : safe_name) {
    if (c == '/' || c == '#') c = '_';
  }
  replace_all(templ, "{name}", safe_name);
  replace_all(templ, "{index}", std::to_string(run.index));
  replace_all(templ, "{variant}", std::to_string(run.variant));
  replace_all(templ, "{repeat}", std::to_string(run.repeat));
  replace_all(templ, "{seed}", std::to_string(run.spec.seed));
  return templ;
}

}  // namespace

std::size_t ExperimentSpec::variant_count() const {
  std::size_t count = 1;
  for (const SweepAxis& axis : axes) {
    if (axis.values.empty()) throw std::runtime_error("sweep axis \"" + axis.path + "\" has no values");
    count *= axis.values.size();
  }
  return count;
}

std::vector<ExpandedRun> ExperimentSpec::expand() const {
  const std::size_t variants = variant_count();
  const std::size_t reps = std::max<std::size_t>(repeats, 1);
  const Json base_json = base.to_json();

  std::vector<ExpandedRun> out;
  out.reserve(variants * reps);
  std::vector<std::size_t> odometer(axes.size(), 0);
  for (std::size_t v = 0; v < variants; ++v) {
    Json doc = base_json;
    std::string label;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const Json& value = axes[a].values[odometer[a]];
      apply_override(doc, axes[a].path, value);
      if (!label.empty()) label += ",";
      label += axis_label(axes[a], value);
    }
    if (label.empty()) label = base.name;
    RunSpec resolved = RunSpec::from_json(doc);
    // The JSON round trip cannot carry the programmatic stop predicate.
    resolved.stop.predicate = base.stop.predicate;
    for (std::size_t r = 0; r < reps; ++r) {
      ExpandedRun run;
      run.spec = resolved;
      run.index = v * reps + r;
      run.variant = v;
      run.repeat = r;
      run.label = label;
      run.spec.name = name + "/" + label + (reps > 1 ? "#" + std::to_string(r) : "");
      // A sweep axis may pin the seed itself (resolved.seed then differs
      // from the base); derivation applies only to unpinned variants.
      if (resolved.seed == base.seed) {
        run.spec.seed = derive_seeds(base.seed, run.index).run;
      }
      if (!run.spec.trace.path.empty()) {
        run.spec.trace.path = substitute_trace_path(run.spec.trace.path, run);
      }
      out.push_back(std::move(run));
    }
    // Advance the odometer, last axis fastest (so the first axis is the
    // outermost loop, matching reading order of the JSON).
    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++odometer[a] < axes[a].values.size()) break;
      odometer[a] = 0;
    }
  }
  return out;
}

std::vector<ExpandedRun> ExperimentSpec::expand_shard(std::size_t shard_index,
                                                      std::size_t shard_count) const {
  if (shard_count == 0) throw std::runtime_error("shard count must be >= 1");
  if (shard_index >= shard_count) {
    throw std::runtime_error("shard index " + std::to_string(shard_index) +
                             " out of range for " + std::to_string(shard_count) + " shards");
  }
  std::vector<ExpandedRun> all = expand();
  std::vector<ExpandedRun> out;
  out.reserve(all.size() / shard_count + 1);
  for (ExpandedRun& run : all) {
    if (run.variant % shard_count == shard_index) out.push_back(std::move(run));
  }
  return out;
}

Json ExperimentSpec::to_json() const {
  Json j = Json::object();
  j.set("name", name);
  j.set("base", base.to_json());
  j.set("repeats", repeats);
  if (early_stop.enabled()) j.set("early_stop", early_stop.to_json());
  if (!axes.empty()) {
    JsonArray arr;
    for (const SweepAxis& axis : axes) {
      Json a = Json::object();
      a.set("path", axis.path);
      a.set("values", Json(JsonArray(axis.values)));
      arr.push_back(std::move(a));
    }
    j.set("sweep", Json(std::move(arr)));
  }
  return j;
}

ExperimentSpec ExperimentSpec::from_json(const Json& j) {
  if (!j.is_object()) throw std::runtime_error("ExperimentSpec must be a JSON object");
  ExperimentSpec e;
  e.name = j.string_or("name", e.name);
  e.base = RunSpec::from_json(j.at("base"));
  e.repeats = static_cast<std::size_t>(j.uint_or("repeats", e.repeats));
  if (const Json* es = j.find("early_stop")) e.early_stop = EarlyStop::from_json(*es);
  if (const Json* sweep = j.find("sweep")) {
    for (const Json& a : sweep->items()) {
      SweepAxis axis;
      axis.path = a.at("path").as_string();
      axis.values = a.at("values").items();
      e.axes.push_back(std::move(axis));
    }
  }
  return e;
}

}  // namespace cohesion::run
