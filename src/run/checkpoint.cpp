#include "run/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "run/exit_codes.hpp"

namespace cohesion::run {

namespace {

constexpr const char* kFormat = "cohesion-checkpoint/1";

void fnv1a(std::uint64_t& h, std::string_view text) {
  for (const unsigned char c : text) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
}

std::string hex16(std::uint64_t h) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, h >>= 4) out[static_cast<std::size_t>(i)] = digits[h & 0xF];
  return out;
}

std::string header_line(const std::string& fingerprint, std::size_t total_runs) {
  Json h = Json::object();
  h.set("format", kFormat);
  h.set("fingerprint", fingerprint);
  h.set("total_runs", total_runs);
  return h.dump() + "\n";
}

// Failures of the *input* (not a checkpoint, wrong fingerprint, corrupt
// body) are permanent: the same invocation fails the same way forever.
[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("checkpoint " + path + ": " + what);
}

// Failures of the *environment* (open/write/truncate) are transient: a
// retry — possibly on another disk or after an operator fixes quota — can
// succeed, so supervisors may spend retry budget on them.
[[noreturn]] void fail_io(const std::string& path, const std::string& what) {
  throw TransientError("checkpoint " + path + ": " + what);
}

int open_or_throw(const std::string& path, int flags) {
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) fail_io(path, std::string("cannot open (") + std::strerror(errno) + ")");
  return fd;
}

void write_all(int fd, const std::string& path, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ::ssize_t w = ::write(fd, data.data() + off, data.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      fail_io(path, std::string("write failed (") + std::strerror(errno) + ")");
    }
    off += static_cast<std::size_t>(w);
  }
}

}  // namespace

std::string runs_fingerprint(const std::vector<ExpandedRun>& runs, const EarlyStop& early_stop) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const ExpandedRun& run : runs) {
    fnv1a(h, std::to_string(run.index));
    fnv1a(h, ":");
    fnv1a(h, run.spec.to_json().dump());
    fnv1a(h, ";");
  }
  fnv1a(h, "early_stop=");
  fnv1a(h, early_stop.to_json().dump());
  return hex16(h);
}

CheckpointJournal::CheckpointJournal(int fd, std::string path, std::size_t fsync_every)
    : fd_(fd), path_(std::move(path)), fsync_every_(fsync_every) {}

CheckpointJournal::~CheckpointJournal() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

std::unique_ptr<CheckpointJournal> CheckpointJournal::create(const std::string& path,
                                                             const std::string& fingerprint,
                                                             std::size_t total_runs,
                                                             std::size_t fsync_every) {
  const int fd = open_or_throw(path, O_WRONLY | O_CREAT | O_TRUNC | O_APPEND);
  write_all(fd, path, header_line(fingerprint, total_runs));
  ::fsync(fd);
  return std::unique_ptr<CheckpointJournal>(new CheckpointJournal(fd, path, fsync_every));
}

std::unique_ptr<CheckpointJournal> CheckpointJournal::resume(const std::string& path,
                                                             const std::string& fingerprint,
                                                             std::size_t total_runs,
                                                             std::size_t fsync_every,
                                                             Loaded& loaded) {
  loaded = Loaded{};
  std::ifstream in(path, std::ios::binary);
  if (!in) return create(path, fingerprint, total_runs, fsync_every);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  in.close();

  // Complete lines end in '\n'; anything after the last '\n' is a torn
  // final line from a crash mid-append and is dropped + truncated away.
  const std::size_t last_nl = content.rfind('\n');
  const std::size_t valid_bytes = last_nl == std::string::npos ? 0 : last_nl + 1;
  loaded.dropped_tail_bytes = content.size() - valid_bytes;

  // A file with no complete header line (crash before the very first
  // fsync, or an empty placeholder) holds no outcomes: start fresh.
  if (valid_bytes == 0) return create(path, fingerprint, total_runs, fsync_every);

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < valid_bytes) {
    const std::size_t nl = content.find('\n', pos);
    const std::string_view line(content.data() + pos, nl - pos);
    ++line_no;
    Json doc;
    try {
      doc = Json::parse(line);
    } catch (const std::exception& e) {
      fail(path, "line " + std::to_string(line_no) +
                     " is not valid JSON — the file is corrupted beyond simple tail "
                     "truncation; delete it to restart from scratch (" +
                     e.what() + ")");
    }
    if (line_no == 1) {
      if (!doc.is_object() || doc.string_or("format", "") != kFormat) {
        fail(path, std::string("missing/unknown format marker (expected \"") + kFormat +
                       "\") — not a cohesion checkpoint file");
      }
      const std::string found = doc.string_or("fingerprint", "");
      if (found != fingerprint) {
        fail(path, "fingerprint mismatch (file " + found + ", this run " + fingerprint +
                       ") — the checkpoint was written for a different spec, shard "
                       "selection or early-stop rule; rerun with the original "
                       "arguments or delete the file to start over");
      }
      if (doc.uint_or("total_runs", 0) != total_runs) {
        fail(path, "total_runs mismatch (file " + std::to_string(doc.uint_or("total_runs", 0)) +
                       ", this run " + std::to_string(total_runs) + ")");
      }
    } else {
      RunOutcome outcome;
      try {
        outcome = RunOutcome::from_json(doc);
      } catch (const std::exception& e) {
        fail(path, "line " + std::to_string(line_no) + " is not a run outcome (" + e.what() + ")");
      }
      // Indices are *global* grid positions (a shard's journal holds a
      // sparse subset), so membership is validated by the caller against
      // its run list, not against total_runs here.
      loaded.outcomes.push_back(std::move(outcome));
    }
    pos = nl + 1;
  }

  const int fd = open_or_throw(path, O_WRONLY | O_APPEND);
  if (loaded.dropped_tail_bytes > 0 &&
      ::ftruncate(fd, static_cast<::off_t>(valid_bytes)) != 0) {
    const int err = errno;
    ::close(fd);
    fail_io(path, std::string("cannot truncate torn tail (") + std::strerror(err) + ")");
  }
  return std::unique_ptr<CheckpointJournal>(new CheckpointJournal(fd, path, fsync_every));
}

void CheckpointJournal::append(const RunOutcome& outcome) noexcept {
  try {
    const std::string line = outcome.to_json().dump() + "\n";
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!error_.empty()) return;  // journal already dead; keep the batch alive
    write_all(fd_, path_, line);
    if (fsync_every_ > 0 && ++since_sync_ >= fsync_every_) {
      ::fsync(fd_);
      since_sync_ = 0;
    }
  } catch (const std::exception& e) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (error_.empty()) error_ = e.what();
  }
}

std::string CheckpointJournal::error() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return error_;
}

}  // namespace cohesion::run
