#include "run/shard.hpp"

#include <stdexcept>

namespace cohesion::run {

namespace {

constexpr const char* kFormat = "cohesion-partial-report/1";

std::size_t parse_count(const std::string& text, const std::string& whole) {
  if (text.empty()) throw std::runtime_error("bad shard \"" + whole + "\": expected i/N");
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') throw std::runtime_error("bad shard \"" + whole + "\": expected i/N");
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return value;
}

}  // namespace

Shard Shard::parse(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) {
    throw std::runtime_error("bad shard \"" + text + "\": expected i/N (e.g. 0/3)");
  }
  Shard s;
  s.index = parse_count(text.substr(0, slash), text);
  s.count = parse_count(text.substr(slash + 1), text);
  if (s.count == 0) throw std::runtime_error("bad shard \"" + text + "\": N must be >= 1");
  if (s.index >= s.count) {
    throw std::runtime_error("bad shard \"" + text + "\": index must be in [0, " +
                             std::to_string(s.count) + ") — shards are 0-based");
  }
  return s;
}

Json partial_report_json(const ExperimentSpec& experiment, const Shard& shard,
                         std::size_t total_runs, const std::vector<RunOutcome>& outcomes) {
  Json j = Json::object();
  j.set("format", kFormat);
  j.set("experiment", experiment.to_json());
  j.set("total_runs", total_runs);
  Json s = Json::object();
  s.set("index", shard.index);
  s.set("count", shard.count);
  s.set("runs", outcomes.size());
  j.set("shard", s);
  JsonArray runs;
  for (const RunOutcome& o : outcomes) runs.push_back(o.to_json());
  j.set("runs", Json(std::move(runs)));
  return j;
}

Json merge_partial_reports(const std::vector<Json>& partials) {
  if (partials.empty()) throw std::runtime_error("merge: no partial reports given");

  const Json* echo = nullptr;        // experiment of the first partial, reused verbatim
  std::string echo_dump;
  std::size_t total = 0;
  std::size_t shard_count = 0;
  std::vector<char> shard_seen;
  std::vector<char> have;
  std::vector<RunOutcome> outcomes;

  for (std::size_t p = 0; p < partials.size(); ++p) {
    const Json& part = partials[p];
    const std::string where = "partial report #" + std::to_string(p);
    if (!part.is_object() || part.string_or("format", "") != kFormat) {
      throw std::runtime_error(where + ": missing/unknown format marker (expected \"" + kFormat +
                               "\") — inputs must be cohesion_run --shard outputs");
    }
    const Json& exp = part.at("experiment");
    const std::size_t p_total = static_cast<std::size_t>(part.at("total_runs").as_uint());
    const Json& sh = part.at("shard");
    const std::size_t s_index = static_cast<std::size_t>(sh.at("index").as_uint());
    const std::size_t s_count = static_cast<std::size_t>(sh.at("count").as_uint());
    if (s_count == 0 || s_index >= s_count) {
      throw std::runtime_error(where + ": invalid shard coordinates " + std::to_string(s_index) +
                               "/" + std::to_string(s_count));
    }
    if (echo == nullptr) {
      echo = &exp;
      echo_dump = exp.dump();
      total = p_total;
      shard_count = s_count;
      shard_seen.assign(shard_count, 0);
      have.assign(total, 0);
      outcomes.resize(total);
    } else {
      if (exp.dump() != echo_dump) {
        throw std::runtime_error(where + " (shard " + std::to_string(s_index) +
                                 "): experiment spec differs from partial report #0 — these "
                                 "shards were not produced from the same spec file");
      }
      if (p_total != total || s_count != shard_count) {
        throw std::runtime_error(where + ": grid shape mismatch (total_runs " +
                                 std::to_string(p_total) + "/" + std::to_string(total) +
                                 ", shard count " + std::to_string(s_count) + "/" +
                                 std::to_string(shard_count) + ")");
      }
    }
    if (shard_seen[s_index]) {
      throw std::runtime_error(where + ": shard " + std::to_string(s_index) + "/" +
                               std::to_string(shard_count) + " appears twice in the input set");
    }
    shard_seen[s_index] = 1;
    for (const Json& r : part.at("runs").items()) {
      RunOutcome o = RunOutcome::from_json(r);
      if (o.index >= total) {
        throw std::runtime_error(where + ": run index " + std::to_string(o.index) +
                                 " out of range for total_runs " + std::to_string(total));
      }
      if (o.variant % shard_count != s_index) {
        throw std::runtime_error(where + ": run index " + std::to_string(o.index) +
                                 " (variant " + std::to_string(o.variant) +
                                 ") does not belong to shard " + std::to_string(s_index) + "/" +
                                 std::to_string(shard_count));
      }
      if (have[o.index]) {
        throw std::runtime_error(where + ": run index " + std::to_string(o.index) +
                                 " already supplied by another partial");
      }
      have[o.index] = 1;
      outcomes[o.index] = std::move(o);
    }
  }

  if (partials.size() != shard_count) {
    std::string missing;
    for (std::size_t s = 0; s < shard_count; ++s) {
      if (!shard_seen[s]) missing += (missing.empty() ? "" : ", ") + std::to_string(s);
    }
    throw std::runtime_error("merge: got " + std::to_string(partials.size()) + " of " +
                             std::to_string(shard_count) + " shards (missing: " + missing + ")");
  }
  for (std::size_t i = 0; i < total; ++i) {
    if (!have[i]) {
      throw std::runtime_error("merge: grid index " + std::to_string(i) +
                               " is covered by no partial report");
    }
  }
  return BatchRunner::report_json_from(*echo, outcomes);
}

}  // namespace cohesion::run
