#include "run/preset.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace cohesion::run {

namespace fs = std::filesystem;

namespace {

/// The chain of files currently being resolved, outermost first — the
/// breadcrumb every error message carries, and the cycle detector (a base
/// whose canonical path is already on the chain closes a loop).
struct Chain {
  std::vector<std::string> display;   ///< paths as written, for messages
  std::vector<std::string> canonical; ///< normalized, for cycle detection

  [[nodiscard]] std::string text() const {
    std::string out;
    for (const std::string& p : display) {
      if (!out.empty()) out += " -> ";
      out += p;
    }
    return out;
  }
};

[[noreturn]] void fail(const Chain& chain, const std::string& what) {
  throw std::runtime_error("preset chain " + chain.text() + ": " + what);
}

/// Normalize without requiring the file to exist (weakly_canonical walks
/// symlinks where it can, lexical-normalizes the rest) so "a.json" and
/// "./sub/../a.json" close the same cycle.
std::string canonical_key(const fs::path& p) {
  std::error_code ec;
  const fs::path c = fs::weakly_canonical(p, ec);
  return (ec ? p.lexically_normal() : c).string();
}

Json load_resolved(const fs::path& path, Chain& chain);

Json resolve_in_chain(Json doc, const std::string& source_dir, Chain& chain) {
  if (!doc.is_object()) {
    if (chain.display.empty()) return doc;  // bare non-object: not ours to judge
    fail(chain, "document is not a JSON object");
  }
  const Json* ext = doc.find("extends");
  if (!ext) return doc;

  std::vector<std::string> bases;
  if (ext->is_string()) {
    bases.push_back(ext->as_string());
  } else if (ext->is_array()) {
    for (const Json& e : ext->items()) {
      if (!e.is_string()) fail(chain, "\"extends\" array entries must be file-path strings");
      bases.push_back(e.as_string());
    }
  } else {
    fail(chain, "\"extends\" must be a file-path string or an array of them");
  }

  Json merged = Json::object();
  for (const std::string& base : bases) {
    fs::path base_path(base);
    if (base_path.is_relative() && !source_dir.empty()) base_path = fs::path(source_dir) / base_path;
    const std::string key = canonical_key(base_path);
    for (const std::string& seen : chain.canonical) {
      if (seen == key) {
        Chain cycle = chain;
        cycle.display.push_back(base);
        fail(cycle, "\"extends\" cycle");
      }
    }
    chain.display.push_back(base);
    chain.canonical.push_back(key);
    deep_merge(merged, load_resolved(base_path, chain));
    chain.display.pop_back();
    chain.canonical.pop_back();
  }

  // The referring document's own keys win; the consumed "extends" key must
  // not leak into the resolved spec (it would perturb every fingerprint).
  Json own = Json::object();
  for (const auto& [k, v] : doc.entries()) {
    if (k != "extends") own.set(k, v);
  }
  deep_merge(merged, own);
  return merged;
}

Json load_resolved(const fs::path& path, Chain& chain) {
  {
    std::ifstream probe(path);
    if (!probe) fail(chain, "cannot open \"" + path.string() + "\"");
  }
  Json doc;
  try {
    doc = Json::parse_file(path.string());
  } catch (const std::exception& e) {
    fail(chain, "\"" + path.string() + "\" is not valid JSON (" + std::string(e.what()) + ")");
  }
  return resolve_in_chain(std::move(doc), path.parent_path().string(), chain);
}

}  // namespace

void deep_merge(Json& base, const Json& overlay) {
  if (!base.is_object() || !overlay.is_object()) {
    base = overlay;
    return;
  }
  for (const auto& [k, v] : overlay.entries()) {
    Json* slot = base.find(k);
    if (slot && slot->is_object() && v.is_object()) {
      deep_merge(*slot, v);
    } else {
      base.set(k, v);
    }
  }
}

Json resolve_extends(Json doc, const std::string& source_dir) {
  Chain chain;
  return resolve_in_chain(std::move(doc), source_dir, chain);
}

Json load_spec_file(const std::string& path) {
  Chain chain;
  chain.display.push_back(path);
  chain.canonical.push_back(canonical_key(path));
  // The top-level file is opened by the caller's rules (the CLI probes it
  // for the transient/permanent distinction first); parse errors here keep
  // their plain form, chain errors begin once an "extends" is followed.
  Json doc = Json::parse_file(path);
  return resolve_in_chain(std::move(doc), fs::path(path).parent_path().string(), chain);
}

}  // namespace cohesion::run
