// String-keyed factory registries — the binding between declarative specs
// and concrete library types. Four registries cover the four spec slots:
//
//   algorithms()  key -> core::Algorithm        (kknps, kknps3d, ando,
//                                                katreniak, cog, gcm, null,
//                                                lens_midpoint)
//   schedulers()  key -> core::Scheduler        (fsync, ssync, kasync,
//                                                async, knesta, scripted)
//   errors()      key -> core::ErrorModel       (exact, noisy)
//   initials()    key -> initial configuration  (line, grid, circle, random,
//                                                two_cluster, spiral)
//
// Built-ins are registered on first access; user code may add factories
// (benches register bespoke initial configurations this way) — register
// before fanning out a batch, lookups are unsynchronized reads.
// Unknown keys throw std::runtime_error listing the registered keys.
//
// Param schemas are documented per factory in docs/experiments.md; every
// factory tolerates an empty params object (library defaults apply).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithm.hpp"
#include "core/error_model.hpp"
#include "core/scheduler.hpp"
#include "geometry/vec2.hpp"
#include "run/json.hpp"

namespace cohesion::run {

/// A string-keyed factory table. Factory is any std::function; keys are
/// unique (re-registration replaces, enabling test doubles).
template <typename Factory>
class Registry {
 public:
  explicit Registry(std::string kind) : kind_(std::move(kind)) {}

  void add(const std::string& key, Factory factory) {
    for (auto& [k, f] : entries_) {
      if (k == key) {
        f = std::move(factory);
        return;
      }
    }
    entries_.emplace_back(key, std::move(factory));
  }

  [[nodiscard]] const Factory& get(const std::string& key) const {
    for (const auto& [k, f] : entries_) {
      if (k == key) return f;
    }
    std::string known;
    for (const auto& [k, f] : entries_) {
      if (!known.empty()) known += ", ";
      known += k;
    }
    throw std::runtime_error("unknown " + kind_ + " \"" + key + "\" (registered: " + known + ")");
  }

  [[nodiscard]] bool contains(const std::string& key) const {
    for (const auto& [k, f] : entries_) {
      if (k == key) return true;
    }
    return false;
  }

  [[nodiscard]] std::vector<std::string> keys() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [k, f] : entries_) out.push_back(k);
    return out;
  }

 private:
  std::string kind_;
  std::vector<std::pair<std::string, Factory>> entries_;  // insertion order
};

/// Algorithms are stateless/shared; params fully determine behavior.
using AlgorithmFactory = std::function<std::unique_ptr<core::Algorithm>(const Json& params)>;
/// Schedulers are per-run and seeded; `seed` is the derived scheduler
/// stream (params "seed" may pin it instead).
using SchedulerFactory = std::function<std::unique_ptr<core::Scheduler>(
    std::size_t robot_count, std::uint64_t seed, const Json& params)>;
using ErrorModelFactory = std::function<core::ErrorModel(const Json& params)>;
/// `v` is the visibility radius (spacings scale with it), `seed` the
/// derived initial stream. May return a different robot count than
/// requested (e.g. spiral); callers read back .size().
using InitialConfigFactory = std::function<std::vector<geom::Vec2>(
    std::size_t n, double v, std::uint64_t seed, const Json& params)>;

Registry<AlgorithmFactory>& algorithms();
Registry<SchedulerFactory>& schedulers();
Registry<ErrorModelFactory>& errors();
Registry<InitialConfigFactory>& initials();

}  // namespace cohesion::run
