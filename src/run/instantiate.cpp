#include "run/instantiate.hpp"

#include <stdexcept>

#include "run/registry.hpp"

namespace cohesion::run {

RunInstance instantiate(const RunSpec& spec) {
  const RunSeeds seeds = seed_streams(spec.seed);
  RunInstance inst;
  inst.algorithm = algorithms().get(spec.algorithm.type)(spec.algorithm.params);
  inst.initial = initials().get(spec.initial.type)(spec.n, spec.visibility_radius, seeds.initial,
                                                   spec.initial.params);
  inst.scheduler = schedulers().get(spec.scheduler.type)(inst.initial.size(), seeds.scheduler,
                                                         spec.scheduler.params);
  inst.config.visibility.radius = spec.visibility_radius;
  inst.config.visibility.open_ball = spec.open_ball;
  inst.config.visibility.multiplicity_detection = spec.multiplicity_detection;
  inst.config.error = errors().get(spec.error.type)(spec.error.params);
  inst.config.seed = seeds.engine;
  inst.config.use_spatial_index = spec.use_spatial_index;
  inst.config.incremental_index = spec.incremental_index;
  if (spec.soa_kernel && !spec.use_spatial_index) {
    throw std::runtime_error(
        "soa_kernel requires use_spatial_index: the SoA filter sits behind the "
        "grid candidate queries (the scan path is its scalar reference)");
  }
  inst.config.soa_kernel = spec.soa_kernel;
  if (spec.trace.mode != "memory") {
    if (!spec.use_spatial_index) {
      throw std::runtime_error(
          "trace.mode \"" + spec.trace.mode +
          "\" requires use_spatial_index: the reference scan path reconstructs positions "
          "from the in-memory Trace it would no longer have");
    }
    inst.config.record_history = false;
  }
  inst.engine = std::make_unique<core::Engine>(inst.initial, *inst.algorithm, *inst.scheduler,
                                               inst.config);
  return inst;
}

}  // namespace cohesion::run
