#include "run/batch_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "core/trace_sink.hpp"
#include "run/checkpoint.hpp"
#include "run/exit_codes.hpp"
#include "run/instantiate.hpp"
#include "run/result_cache.hpp"
#include "trace/online_metrics.hpp"
#include "trace/stream_writer.hpp"

namespace cohesion::run {

namespace {

double wall_now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Nearest-rank percentile of an ascending-sorted vector.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank =
      std::min(sorted.size() - 1,
               static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(sorted.size()))) -
                   (p > 0.0 ? 1 : 0));
  return sorted[rank];
}

/// The grid fields every outcome shares, copied from its ExpandedRun.
RunOutcome outcome_shell(const ExpandedRun& run) {
  RunOutcome out;
  out.index = run.index;
  out.variant = run.variant;
  out.repeat = run.repeat;
  out.label = run.label;
  out.seed = run.spec.seed;
  return out;
}

RunOutcome execute(const ExpandedRun& run,
                   const std::function<double(const RunSpec&, const core::Engine&)>& trace_metric,
                   ResultCache* cache) {
  const double t0 = wall_now();
  if (cache) {
    // Content-addressed short-circuit: a valid entry carries the physics a
    // recomputation would produce, byte for byte; anything invalid was
    // rejected (and counted) inside lookup and falls through to execute.
    if (std::optional<RunOutcome> hit = cache->lookup(run)) {
      hit->wall_seconds = wall_now() - t0;
      return *hit;
    }
  }
  RunOutcome out = outcome_shell(run);
  try {
    RunInstance inst = instantiate(run.spec);
    out.n = inst.initial.size();
    if (run.spec.trace.mode == "memory") {
      out.converged = inst.engine->run_until(run.spec.stop);
      out.report = metrics::analyze(inst.engine->trace(), run.spec.visibility_radius,
                                    run.spec.stop.epsilon);
    } else {
      // Bounded-memory path: the engine materializes no Trace; metrics fold
      // online and (in stream mode) every record is framed to disk. The
      // online report is bit-identical to the memory path's by the
      // ConvergenceAccumulator contract.
      const std::uint64_t fp = spec_fingerprint(run.spec);
      trace::OnlineMetrics online(inst.initial, run.spec.visibility_radius,
                                  run.spec.stop.epsilon);
      std::optional<trace::StreamTraceWriter> writer;
      std::vector<core::TraceSink*> sinks;
      if (run.spec.trace.mode == "stream") {
        if (run.spec.trace.path.empty()) {
          throw std::runtime_error(
              "trace.mode \"stream\" needs a destination: set trace.path in the spec "
              "or pass --trace-dir to cohesion_run");
        }
        trace::StreamHeader header;
        header.fingerprint = fp;
        header.initial = inst.initial;
        header.visibility_radius = run.spec.visibility_radius;
        header.stop_epsilon = run.spec.stop.epsilon;
        trace::StreamWriterOptions wopts;
        wopts.flush_every_records = run.spec.trace.flush_every;
        wopts.index_every_records = run.spec.trace.index_every;
        writer.emplace(run.spec.trace.path, std::move(header), wopts);
        sinks.push_back(&*writer);
        out.trace_path = run.spec.trace.path;
        out.trace_fingerprint = fingerprint_hex(fp);
      }
      sinks.push_back(&online);
      core::TeeSink tee(std::move(sinks));
      inst.engine->set_trace_sink(&tee);
      out.converged = inst.engine->run_until(run.spec.stop);
      tee.finish();
      out.report = online.report();
    }
    if (trace_metric) out.custom = trace_metric(run.spec, *inst.engine);
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  // Errors and skips are refused by insert itself; stream-mode outcomes
  // store their (mode-independent) physics even though they bypass lookup.
  if (cache) cache->insert(run, out);
  out.wall_seconds = wall_now() - t0;
  return out;
}

/// The value an EarlyStop rule compares, or nullopt for outcomes that carry
/// no usable report (skipped repeats, failed runs).
std::optional<double> early_stop_value(const RunOutcome& o, const std::string& metric) {
  if (o.skipped || !o.error.empty()) return std::nullopt;
  if (metric == "final_diameter") return o.report.final_diameter;
  if (metric == "rounds") return static_cast<double>(o.report.rounds);
  if (metric == "rounds_to_halve") return static_cast<double>(o.report.rounds_to_halve);
  if (metric == "activations") return static_cast<double>(o.report.activations);
  if (metric == "worst_stretch") return o.report.worst_stretch;
  if (metric == "custom") return o.custom;
  if (metric == "converged") return o.converged ? 1.0 : 0.0;
  throw std::runtime_error(
      "unknown early_stop metric \"" + metric +
      "\" (known: final_diameter, rounds, rounds_to_halve, activations, worst_stretch, "
      "custom, converged)");
}

/// True once the last `window` usable outcomes among `completed_prefix`
/// agree within epsilon — the prefix is in repeat order, so the decision is
/// a pure function of the spec (see EarlyStop's determinism contract).
bool early_stop_fires(const std::vector<const RunOutcome*>& completed_prefix,
                      const EarlyStop& rule) {
  std::vector<double> values;
  for (const RunOutcome* o : completed_prefix) {
    if (const std::optional<double> v = early_stop_value(*o, rule.metric)) values.push_back(*v);
  }
  if (values.size() < rule.window) return false;
  const auto tail = values.end() - static_cast<std::ptrdiff_t>(rule.window);
  const auto [lo, hi] = std::minmax_element(tail, values.end());
  return *hi - *lo <= rule.epsilon;
}

}  // namespace

Json RunOutcome::to_json() const {
  Json j = Json::object();
  j.set("index", index);
  j.set("variant", variant);
  j.set("repeat", repeat);
  j.set("label", label);
  j.set("seed", seed);
  if (skipped) {
    j.set("skipped", true);
    return j;
  }
  if (!error.empty()) {
    j.set("error", error);
    return j;
  }
  j.set("n", n);
  j.set("converged", converged);
  j.set("cohesive", report.cohesive);
  j.set("initial_diameter", report.initial_diameter);
  j.set("final_diameter", report.final_diameter);
  j.set("rounds", report.rounds);
  j.set("rounds_to_halve", report.rounds_to_halve);
  j.set("activations", report.activations);
  j.set("worst_stretch", report.worst_stretch);
  j.set("custom", custom);
  if (!trace_path.empty()) {
    j.set("trace_path", trace_path);
    j.set("trace_fingerprint", trace_fingerprint);
  }
  return j;
}

RunOutcome RunOutcome::from_json(const Json& j) {
  if (!j.is_object()) throw std::runtime_error("RunOutcome must be a JSON object");
  RunOutcome o;
  o.index = static_cast<std::size_t>(j.at("index").as_uint());
  o.variant = static_cast<std::size_t>(j.at("variant").as_uint());
  o.repeat = static_cast<std::size_t>(j.at("repeat").as_uint());
  o.label = j.at("label").as_string();
  o.seed = j.at("seed").as_uint();
  o.skipped = j.bool_or("skipped", false);
  if (o.skipped) return o;
  o.error = j.string_or("error", "");
  if (!o.error.empty()) return o;
  o.n = static_cast<std::size_t>(j.at("n").as_uint());
  o.converged = j.at("converged").as_bool();
  o.report.converged = o.converged;
  o.report.cohesive = j.at("cohesive").as_bool();
  o.report.initial_diameter = j.at("initial_diameter").as_double();
  o.report.final_diameter = j.at("final_diameter").as_double();
  o.report.rounds = static_cast<std::size_t>(j.at("rounds").as_uint());
  o.report.rounds_to_halve = static_cast<std::size_t>(j.at("rounds_to_halve").as_uint());
  o.report.activations = static_cast<std::size_t>(j.at("activations").as_uint());
  o.report.worst_stretch = j.at("worst_stretch").as_double();
  o.custom = j.at("custom").as_double();
  o.trace_path = j.string_or("trace_path", "");
  o.trace_fingerprint = j.string_or("trace_fingerprint", "");
  return o;
}

Json Aggregate::to_json() const {
  Json j = Json::object();
  j.set("runs", runs);
  j.set("converged", converged);
  j.set("cohesion_failures", cohesion_failures);
  j.set("errors", errors);
  j.set("skipped", skipped);
  j.set("total_activations", total_activations);
  j.set("mean_rounds", mean_rounds);
  j.set("p50_rounds", p50_rounds);
  j.set("p90_rounds", p90_rounds);
  j.set("mean_rounds_to_halve", mean_rounds_to_halve);
  j.set("mean_initial_diameter", mean_initial_diameter);
  j.set("mean_final_diameter", mean_final_diameter);
  j.set("max_final_diameter", max_final_diameter);
  j.set("max_worst_stretch", max_worst_stretch);
  j.set("mean_custom", mean_custom);
  j.set("max_custom", max_custom);
  return j;
}

BatchRunner::BatchRunner(Options options) : options_(std::move(options)) {}

BatchResult BatchRunner::run(const ExperimentSpec& experiment) const {
  return run(experiment.expand(), experiment.early_stop);
}

BatchResult BatchRunner::run(const std::vector<ExpandedRun>& runs) const {
  return run(runs, EarlyStop{});
}

BatchResult BatchRunner::run(const std::vector<ExpandedRun>& runs,
                             const EarlyStop& early_stop) const {
  // Reject an unknown metric before any run (or journal write) happens.
  if (early_stop.enabled()) (void)early_stop_value(RunOutcome{}, early_stop.metric);

  BatchResult result;
  std::size_t threads = options_.threads;
  if (threads == 0) threads = std::max<unsigned>(std::thread::hardware_concurrency(), 1);
  threads = std::min(threads, std::max<std::size_t>(runs.size(), 1));
  result.threads = threads;
  result.outcomes.resize(runs.size());

  // done[i] marks slots whose outcome is already final — preloaded from a
  // resumed checkpoint. Written only here, before any worker starts.
  std::vector<char> done(runs.size(), 0);
  std::unique_ptr<CheckpointJournal> journal;
  if (!options_.checkpoint_path.empty()) {
    const std::string fingerprint = runs_fingerprint(runs, early_stop);
    if (options_.resume) {
      CheckpointJournal::Loaded loaded;
      journal = CheckpointJournal::resume(options_.checkpoint_path, fingerprint, runs.size(),
                                          options_.checkpoint_fsync_every, loaded);
      std::unordered_map<std::size_t, std::size_t> slot_of;  // global grid index -> slot
      slot_of.reserve(runs.size());
      for (std::size_t i = 0; i < runs.size(); ++i) slot_of.emplace(runs[i].index, i);
      for (RunOutcome& o : loaded.outcomes) {
        const auto it = slot_of.find(o.index);
        if (it == slot_of.end()) {
          throw std::runtime_error("checkpoint " + options_.checkpoint_path +
                                   ": run index " + std::to_string(o.index) +
                                   " is not part of this run list");
        }
        if (done[it->second]) continue;  // duplicate line; outcomes are deterministic
        result.outcomes[it->second] = std::move(o);
        done[it->second] = 1;
      }
    } else {
      journal = CheckpointJournal::create(options_.checkpoint_path, fingerprint, runs.size(),
                                          options_.checkpoint_fsync_every);
    }
  }

  const double t0 = wall_now();
  // Cooperative cancellation: checked between runs only, so a set flag
  // never tears an in-flight outcome (or its journal line) — it just stops
  // further claims. done[i] doubles as the "slot i holds a real outcome"
  // marker an interrupted batch compacts by.
  const auto cancelled = [&] {
    return options_.cancel != nullptr && options_.cancel->load(std::memory_order_relaxed);
  };
  const auto throttle = [&] {
    if (options_.post_run_delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options_.post_run_delay_ms));
    }
  };
  std::function<void()> worker;
  std::atomic<std::size_t> next{0};
  std::vector<std::vector<std::size_t>> groups;
  if (!early_stop.enabled()) {
    // Work-stealing off a shared counter: claim order is racy, but outcome
    // slots are disjoint and each run is self-seeded, so results do not
    // depend on the interleaving.
    worker = [&] {
      while (!cancelled()) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= runs.size()) return;
        if (done[i]) continue;
        result.outcomes[i] = execute(runs[i], options_.trace_metric, options_.cache);
        done[i] = 1;
        if (journal) journal->append(result.outcomes[i]);
        throttle();
      }
    };
  } else {
    // Early stopping makes repeat j's fate depend on outcomes 0..j-1 of
    // its own variant, so a variant's repeats run as one sequential chain
    // (repeat order = grid order) and workers steal whole variants. The
    // skip decisions are then a pure function of the spec at any thread
    // count — the chains are self-contained and outcomes deterministic.
    std::unordered_map<std::size_t, std::size_t> group_of;  // variant -> groups index
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto [it, fresh] = group_of.try_emplace(runs[i].variant, groups.size());
      if (fresh) groups.emplace_back();
      groups[it->second].push_back(i);
    }
    worker = [&] {
      while (!cancelled()) {
        const std::size_t g = next.fetch_add(1, std::memory_order_relaxed);
        if (g >= groups.size()) return;
        std::vector<const RunOutcome*> prefix;
        bool stop_rest = false;
        for (const std::size_t slot : groups[g]) {
          // Stopping mid-chain is safe: a resume reloads the journaled
          // prefix and recomputes the (deterministic) skip decisions.
          if (cancelled()) return;
          // Once fired the rule stays fired: skipped repeats contribute no
          // values, so the agreeing window persists.
          if (!stop_rest && early_stop_fires(prefix, early_stop)) stop_rest = true;
          if (stop_rest) {
            if (!done[slot]) {
              RunOutcome o = outcome_shell(runs[slot]);
              o.skipped = true;
              result.outcomes[slot] = std::move(o);
              done[slot] = 1;
              if (journal) journal->append(result.outcomes[slot]);
            }
          } else if (!done[slot]) {
            result.outcomes[slot] = execute(runs[slot], options_.trace_metric, options_.cache);
            done[slot] = 1;
            if (journal) journal->append(result.outcomes[slot]);
            throttle();
          }
          prefix.push_back(&result.outcomes[slot]);
        }
      }
    };
  }
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  result.wall_seconds = wall_now() - t0;
  if (cancelled()) {
    result.interrupted = true;
    std::vector<RunOutcome> finished;
    finished.reserve(runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (done[i]) finished.push_back(std::move(result.outcomes[i]));
    }
    result.outcomes = std::move(finished);
  }
  // A journal write failure (disk full, ...) must not kill worker threads
  // mid-flight — append latches it instead; surface it now that the batch
  // (and its results) are complete. Transient: the batch's results are
  // correct, only the journal on disk is short.
  if (journal && !journal->error().empty()) {
    throw TransientError("checkpoint journaling failed: " + journal->error() +
                         " — the journal on disk is incomplete (resuming from it "
                         "re-runs the missing outcomes)");
  }
  return result;
}

Aggregate BatchRunner::aggregate(const std::vector<RunOutcome>& outcomes) {
  Aggregate a;
  a.runs = outcomes.size();
  std::vector<double> rounds_converged;
  for (const RunOutcome& o : outcomes) {
    if (o.skipped) {
      ++a.skipped;
      continue;
    }
    if (!o.error.empty()) {
      ++a.errors;
      continue;
    }
    if (o.converged) {
      ++a.converged;
      rounds_converged.push_back(static_cast<double>(o.report.rounds));
    }
    if (!o.report.cohesive) ++a.cohesion_failures;
    a.total_activations += o.report.activations;
    a.mean_rounds_to_halve += static_cast<double>(o.report.rounds_to_halve);
    a.mean_initial_diameter += o.report.initial_diameter;
    a.mean_final_diameter += o.report.final_diameter;
    a.max_final_diameter = std::max(a.max_final_diameter, o.report.final_diameter);
    a.max_worst_stretch = std::max(a.max_worst_stretch, o.report.worst_stretch);
    a.mean_custom += o.custom;
    a.max_custom = std::max(a.max_custom, o.custom);
  }
  const double ok = static_cast<double>(a.runs - a.errors - a.skipped);
  if (ok > 0.0) {
    a.mean_rounds_to_halve /= ok;
    a.mean_initial_diameter /= ok;
    a.mean_final_diameter /= ok;
    a.mean_custom /= ok;
  }
  if (!rounds_converged.empty()) {
    std::sort(rounds_converged.begin(), rounds_converged.end());
    double sum = 0.0;
    for (const double r : rounds_converged) sum += r;
    a.mean_rounds = sum / static_cast<double>(rounds_converged.size());
    a.p50_rounds = percentile(rounds_converged, 50.0);
    a.p90_rounds = percentile(rounds_converged, 90.0);
  }
  return a;
}

std::vector<Aggregate> BatchRunner::aggregate_by_variant(const std::vector<RunOutcome>& outcomes) {
  std::size_t variants = 0;
  for (const RunOutcome& o : outcomes) variants = std::max(variants, o.variant + 1);
  std::vector<std::vector<RunOutcome>> buckets(variants);
  for (const RunOutcome& o : outcomes) buckets[o.variant].push_back(o);
  std::vector<Aggregate> out;
  out.reserve(variants);
  for (const auto& bucket : buckets) out.push_back(aggregate(bucket));
  return out;
}

Json BatchRunner::report_json_from(const Json& experiment_echo,
                                   const std::vector<RunOutcome>& outcomes) {
  Json j = Json::object();
  j.set("experiment", experiment_echo);
  j.set("aggregate", aggregate(outcomes).to_json());

  const std::vector<Aggregate> by_variant = aggregate_by_variant(outcomes);
  JsonArray variants;
  for (std::size_t v = 0; v < by_variant.size(); ++v) {
    Json entry = Json::object();
    entry.set("variant", v);
    // All repeats of a variant share its label.
    for (const RunOutcome& o : outcomes) {
      if (o.variant == v) {
        entry.set("label", o.label);
        break;
      }
    }
    entry.set("aggregate", by_variant[v].to_json());
    variants.push_back(std::move(entry));
  }
  j.set("variants", Json(std::move(variants)));

  JsonArray runs;
  for (const RunOutcome& o : outcomes) runs.push_back(o.to_json());
  j.set("runs", Json(std::move(runs)));
  return j;
}

Json BatchRunner::report_json(const ExperimentSpec& experiment, const BatchResult& result,
                              bool include_timing) {
  Json j = report_json_from(experiment.to_json(), result.outcomes);
  if (include_timing) {
    Json timing = Json::object();
    timing.set("threads", result.threads);
    timing.set("wall_seconds", result.wall_seconds);
    std::uint64_t activations = 0;
    for (const RunOutcome& o : result.outcomes) activations += o.report.activations;
    timing.set("activations_per_second",
               result.wall_seconds > 0.0 ? static_cast<double>(activations) / result.wall_seconds
                                         : 0.0);
    j.set("timing", timing);
  }
  return j;
}

}  // namespace cohesion::run
