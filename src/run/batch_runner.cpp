#include "run/batch_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "run/instantiate.hpp"

namespace cohesion::run {

namespace {

double wall_now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Nearest-rank percentile of an ascending-sorted vector.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank =
      std::min(sorted.size() - 1,
               static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(sorted.size()))) -
                   (p > 0.0 ? 1 : 0));
  return sorted[rank];
}

RunOutcome execute(const ExpandedRun& run,
                   const std::function<double(const RunSpec&, const core::Engine&)>& trace_metric) {
  RunOutcome out;
  out.index = run.index;
  out.variant = run.variant;
  out.repeat = run.repeat;
  out.label = run.label;
  out.seed = run.spec.seed;
  const double t0 = wall_now();
  try {
    RunInstance inst = instantiate(run.spec);
    out.n = inst.initial.size();
    out.converged = inst.engine->run_until(run.spec.stop);
    out.report = metrics::analyze(inst.engine->trace(), run.spec.visibility_radius,
                                  run.spec.stop.epsilon);
    if (trace_metric) out.custom = trace_metric(run.spec, *inst.engine);
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  out.wall_seconds = wall_now() - t0;
  return out;
}

}  // namespace

Json RunOutcome::to_json() const {
  Json j = Json::object();
  j.set("index", index);
  j.set("variant", variant);
  j.set("repeat", repeat);
  j.set("label", label);
  j.set("seed", seed);
  if (!error.empty()) {
    j.set("error", error);
    return j;
  }
  j.set("n", n);
  j.set("converged", converged);
  j.set("cohesive", report.cohesive);
  j.set("initial_diameter", report.initial_diameter);
  j.set("final_diameter", report.final_diameter);
  j.set("rounds", report.rounds);
  j.set("rounds_to_halve", report.rounds_to_halve);
  j.set("activations", report.activations);
  j.set("worst_stretch", report.worst_stretch);
  j.set("custom", custom);
  return j;
}

Json Aggregate::to_json() const {
  Json j = Json::object();
  j.set("runs", runs);
  j.set("converged", converged);
  j.set("cohesion_failures", cohesion_failures);
  j.set("errors", errors);
  j.set("total_activations", total_activations);
  j.set("mean_rounds", mean_rounds);
  j.set("p50_rounds", p50_rounds);
  j.set("p90_rounds", p90_rounds);
  j.set("mean_rounds_to_halve", mean_rounds_to_halve);
  j.set("mean_initial_diameter", mean_initial_diameter);
  j.set("mean_final_diameter", mean_final_diameter);
  j.set("max_final_diameter", max_final_diameter);
  j.set("max_worst_stretch", max_worst_stretch);
  j.set("mean_custom", mean_custom);
  j.set("max_custom", max_custom);
  return j;
}

BatchRunner::BatchRunner(Options options) : options_(std::move(options)) {}

BatchResult BatchRunner::run(const ExperimentSpec& experiment) const {
  return run(experiment.expand());
}

BatchResult BatchRunner::run(const std::vector<ExpandedRun>& runs) const {
  BatchResult result;
  std::size_t threads = options_.threads;
  if (threads == 0) threads = std::max<unsigned>(std::thread::hardware_concurrency(), 1);
  threads = std::min(threads, std::max<std::size_t>(runs.size(), 1));
  result.threads = threads;
  result.outcomes.resize(runs.size());

  const double t0 = wall_now();
  // Work-stealing off a shared counter: claim order is racy, but outcome
  // slots are disjoint and each run is self-seeded, so results do not
  // depend on the interleaving.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= runs.size()) return;
      result.outcomes[i] = execute(runs[i], options_.trace_metric);
    }
  };
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  result.wall_seconds = wall_now() - t0;
  return result;
}

Aggregate BatchRunner::aggregate(const std::vector<RunOutcome>& outcomes) {
  Aggregate a;
  a.runs = outcomes.size();
  std::vector<double> rounds_converged;
  for (const RunOutcome& o : outcomes) {
    if (!o.error.empty()) {
      ++a.errors;
      continue;
    }
    if (o.converged) {
      ++a.converged;
      rounds_converged.push_back(static_cast<double>(o.report.rounds));
    }
    if (!o.report.cohesive) ++a.cohesion_failures;
    a.total_activations += o.report.activations;
    a.mean_rounds_to_halve += static_cast<double>(o.report.rounds_to_halve);
    a.mean_initial_diameter += o.report.initial_diameter;
    a.mean_final_diameter += o.report.final_diameter;
    a.max_final_diameter = std::max(a.max_final_diameter, o.report.final_diameter);
    a.max_worst_stretch = std::max(a.max_worst_stretch, o.report.worst_stretch);
    a.mean_custom += o.custom;
    a.max_custom = std::max(a.max_custom, o.custom);
  }
  const double ok = static_cast<double>(a.runs - a.errors);
  if (ok > 0.0) {
    a.mean_rounds_to_halve /= ok;
    a.mean_initial_diameter /= ok;
    a.mean_final_diameter /= ok;
    a.mean_custom /= ok;
  }
  if (!rounds_converged.empty()) {
    std::sort(rounds_converged.begin(), rounds_converged.end());
    double sum = 0.0;
    for (const double r : rounds_converged) sum += r;
    a.mean_rounds = sum / static_cast<double>(rounds_converged.size());
    a.p50_rounds = percentile(rounds_converged, 50.0);
    a.p90_rounds = percentile(rounds_converged, 90.0);
  }
  return a;
}

std::vector<Aggregate> BatchRunner::aggregate_by_variant(const std::vector<RunOutcome>& outcomes) {
  std::size_t variants = 0;
  for (const RunOutcome& o : outcomes) variants = std::max(variants, o.variant + 1);
  std::vector<std::vector<RunOutcome>> buckets(variants);
  for (const RunOutcome& o : outcomes) buckets[o.variant].push_back(o);
  std::vector<Aggregate> out;
  out.reserve(variants);
  for (const auto& bucket : buckets) out.push_back(aggregate(bucket));
  return out;
}

Json BatchRunner::report_json(const ExperimentSpec& experiment, const BatchResult& result,
                              bool include_timing) {
  Json j = Json::object();
  j.set("experiment", experiment.to_json());
  j.set("aggregate", aggregate(result.outcomes).to_json());

  const std::vector<Aggregate> by_variant = aggregate_by_variant(result.outcomes);
  JsonArray variants;
  for (std::size_t v = 0; v < by_variant.size(); ++v) {
    Json entry = Json::object();
    entry.set("variant", v);
    // All repeats of a variant share its label.
    for (const RunOutcome& o : result.outcomes) {
      if (o.variant == v) {
        entry.set("label", o.label);
        break;
      }
    }
    entry.set("aggregate", by_variant[v].to_json());
    variants.push_back(std::move(entry));
  }
  j.set("variants", Json(std::move(variants)));

  JsonArray runs;
  for (const RunOutcome& o : result.outcomes) runs.push_back(o.to_json());
  j.set("runs", Json(std::move(runs)));

  if (include_timing) {
    Json timing = Json::object();
    timing.set("threads", result.threads);
    timing.set("wall_seconds", result.wall_seconds);
    std::uint64_t activations = 0;
    for (const RunOutcome& o : result.outcomes) activations += o.report.activations;
    timing.set("activations_per_second",
               result.wall_seconds > 0.0 ? static_cast<double>(activations) / result.wall_seconds
                                         : 0.0);
    j.set("timing", timing);
  }
  return j;
}

}  // namespace cohesion::run
