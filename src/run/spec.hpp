// Declarative run descriptions: a RunSpec names every ingredient of one
// simulation (algorithm, scheduler, error model, initial configuration,
// visibility, stop rule, seed) by registry key + JSON params, and an
// ExperimentSpec turns a RunSpec into a whole sweep — a cartesian grid of
// parameter overrides times a repeat count — in one JSON artifact.
//
// Seed derivation (the rule that makes batches deterministic regardless of
// worker-thread count): every expanded run gets
//
//   run_seed        = mix(experiment_seed, run_index)        (splitmix64)
//   engine_seed     = stream(run_seed, 0)
//   scheduler_seed  = stream(run_seed, 1)
//   initial_seed    = stream(run_seed, 2)
//
// where run_index enumerates the grid in document order (variants outer,
// repeats inner). Seeds depend only on the spec and the run's position in
// the grid, never on scheduling of the worker pool. A scheduler/initial
// params object may pin "seed" explicitly, which wins over derivation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/stop_condition.hpp"
#include "run/json.hpp"

namespace cohesion::run {

/// SplitMix64 step — the standard 64-bit mixer (Steele et al.), used for
/// all seed derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// Seeds for one run, derived per the rule above.
struct RunSeeds {
  std::uint64_t run = 0;        ///< per-run master seed
  std::uint64_t engine = 0;     ///< EngineConfig::seed
  std::uint64_t scheduler = 0;  ///< generative-scheduler seed
  std::uint64_t initial = 0;    ///< initial-configuration seed
};

RunSeeds derive_seeds(std::uint64_t experiment_seed, std::uint64_t run_index);

/// The component streams of a run master seed (RunSpec::seed). Used by
/// instantiate(); exposed so tests can pin the rule. Note the state is
/// advanced by value: seed_streams(s).run == s.
RunSeeds seed_streams(std::uint64_t run_seed);

/// One registry-resolvable component: a string key plus a params object
/// whose schema belongs to the factory behind the key.
struct FactorySpec {
  std::string type;
  Json params = Json::object();

  [[nodiscard]] Json to_json() const;
  static FactorySpec from_json(const Json& j, const std::string& fallback_type);
};

/// How a run's activation history is captured.
///
///   memory — materialize the in-memory core::Trace (the default and the
///            bit-identical reference path)
///   stream — bounded-memory: no in-memory history; records are framed to
///            `path` by trace::StreamTraceWriter and metrics fold online
///   off    — bounded-memory, no capture at all (metrics still fold online)
///
/// `path` is a template; expand() substitutes {name}, {index}, {seed},
/// {variant} and {repeat} per run ({name} with '/' and '#' mapped to '_'
/// so labels stay filesystem-safe). Serialized into the spec JSON only
/// when non-default, so existing memory-mode specs, reports and
/// fingerprints keep their bytes.
struct TraceSpec {
  std::string mode = "memory";
  std::string path;                 ///< stream mode: output path template
  std::size_t flush_every = 4096;   ///< writer flush cadence (records)
  std::size_t index_every = 65536;  ///< 'X' index frame cadence; 0 disables

  [[nodiscard]] bool is_default() const {
    return mode == "memory" && path.empty() && flush_every == 4096 && index_every == 65536;
  }

  [[nodiscard]] Json to_json() const;
  static TraceSpec from_json(const Json& j);
};

/// Complete description of one run. Defaults reproduce the quickstart
/// setup: KKNPS under k-Async on a random connected configuration.
struct RunSpec {
  std::string name = "run";
  std::size_t n = 16;
  std::uint64_t seed = 1;  ///< master seed; see derive_seeds
  FactorySpec algorithm{.type = "kknps"};
  FactorySpec scheduler{.type = "kasync"};
  FactorySpec error{.type = "noisy"};
  FactorySpec initial{.type = "random"};
  double visibility_radius = 1.0;
  bool open_ball = false;
  bool multiplicity_detection = false;
  bool use_spatial_index = true;
  bool incremental_index = true;
  /// SoA/SIMD snapshot kernel (EngineConfig::soa_kernel) — bit-identical to
  /// the scalar reference by architecture contract 12. Requires
  /// use_spatial_index; instantiate() rejects the combination otherwise.
  /// Serialized only when true, so existing spec bytes, fingerprints and
  /// cache keys are untouched.
  bool soa_kernel = false;
  core::StopCondition stop;  ///< predicate is not serialized
  TraceSpec trace;           ///< history capture; default preserves old bytes

  [[nodiscard]] Json to_json() const;
  static RunSpec from_json(const Json& j);
};

/// FNV-1a 64 of the resolved spec JSON — the run identity stamped into
/// stream headers, reports and checkpoints. The trace block is excluded
/// before hashing: capture configuration never changes the dynamics, so a
/// stream recorded in any mode of the same physical run carries the same
/// fingerprint as the in-memory reference.
[[nodiscard]] std::uint64_t spec_fingerprint(const RunSpec& spec);
/// 16-hex-digit rendering of a fingerprint (zero-padded, lowercase).
[[nodiscard]] std::string fingerprint_hex(std::uint64_t fp);

/// Content address of a run's *outcome* — what run/result_cache keys its
/// entries by. Like spec_fingerprint it hashes the resolved spec JSON with
/// the trace block excluded, but it additionally excludes `name`: expand()
/// bakes the sweep label and repeat-sibling suffix ("exp/k=2#1") into the
/// name, which is display identity, not physics — two sweeps that resolve a
/// variant to the same spec (same seed included) must share one cache entry
/// even though their labels differ. Everything that *does* change the
/// dynamics (n, seed, factories + params, visibility, index flags, stop
/// bounds) stays in the hash. The grid position (index/variant/repeat) is
/// never hashed; it only reaches the outcome through the derived seed.
/// Caveats (same as the checkpoint fingerprint): the programmatic
/// stop.predicate and the trace_metric hook are opaque C++ and cannot be
/// covered — identity is exact for anything expressible in spec JSON.
[[nodiscard]] std::uint64_t run_identity(const RunSpec& spec);

/// One axis of a sweep. `path` is a dotted path into the RunSpec JSON
/// ("scheduler.params.k", "n", ...); each value is substituted at that
/// path. The empty path "" deep-merges object values into the whole spec,
/// which expresses correlated overrides (e.g. matching algorithm and
/// scheduler k) and irregular case lists; such objects may carry a "label"
/// key, consumed for display only.
struct SweepAxis {
  std::string path;
  std::vector<Json> values;
};

/// A RunSpec expanded at one grid point, ready to execute.
struct ExpandedRun {
  RunSpec spec;          ///< fully resolved (overrides applied, seeds derived)
  std::size_t index = 0;    ///< position in the grid (document order)
  std::size_t variant = 0;  ///< grid point (repeats collapse to one variant)
  std::size_t repeat = 0;
  std::string label;        ///< human-readable grid-point description
};

/// Per-variant early stopping: once `window` consecutive completed repeats
/// of a variant agree on `metric` to within `epsilon` (max - min over the
/// window), the variant's remaining repeats are skipped.
///
/// Determinism contract: the rule is evaluated over a variant's own
/// outcomes in repeat order only, and each outcome is a pure function of
/// its RunSpec — so which repeats are skipped is a pure function of the
/// spec, never of thread count or completion order. BatchRunner enforces
/// the order by running a variant's repeats sequentially (different
/// variants still run in parallel) whenever the rule is enabled.
struct EarlyStop {
  std::size_t window = 0;  ///< agreeing-outcome count needed; 0 disables
  double epsilon = 0.0;    ///< max-min tolerance over the window
  /// Outcome field compared: "final_diameter" (default), "rounds",
  /// "rounds_to_halve", "activations", "worst_stretch", "custom" or
  /// "converged" (0/1). Unknown names throw before any run starts.
  std::string metric = "final_diameter";

  [[nodiscard]] bool enabled() const { return window > 0; }

  [[nodiscard]] Json to_json() const;
  static EarlyStop from_json(const Json& j);
};

/// A whole sweep as one JSON artifact: a base RunSpec, a cartesian grid
/// of parameter overrides (`axes`), a repeat count, and an optional
/// per-variant early-stop rule. `expand()` is the single source of truth
/// for grid order and seed derivation; `expand_shard()` is its
/// deterministic partition for multi-process execution.
struct ExperimentSpec {
  std::string name = "experiment";
  RunSpec base;
  std::size_t repeats = 1;  ///< runs per grid point (distinct derived seeds)
  std::vector<SweepAxis> axes;
  EarlyStop early_stop;     ///< per-variant early stopping (default: off)

  /// Expand to the full run list: cartesian product of the axes (first axis
  /// outermost) times `repeats`, in document order. Deterministic.
  [[nodiscard]] std::vector<ExpandedRun> expand() const;

  /// Shard view of the grid for multi-process sweeps: the subset of
  /// expand() whose runs satisfy `variant % shard_count == shard_index`
  /// (round-robin over variants, not contiguous chunks, so every shard
  /// samples the whole sweep). Each run keeps its *global* grid index and
  /// therefore its derived seeds — the union over all shards is exactly
  /// expand(), which is what makes shard-merged reports bit-identical to a
  /// single-process run. Partitioning whole variants (rather than striding
  /// raw run indices) keeps every variant's repeat sequence inside one
  /// shard, so per-variant early stopping sees the full prefix it needs.
  /// Throws when shard_index >= shard_count or shard_count == 0.
  [[nodiscard]] std::vector<ExpandedRun> expand_shard(std::size_t shard_index,
                                                      std::size_t shard_count) const;
  [[nodiscard]] std::size_t variant_count() const;

  [[nodiscard]] Json to_json() const;
  static ExperimentSpec from_json(const Json& j);
};

/// Substitute `value` at dotted `path` inside spec JSON `doc`, creating
/// intermediate objects as needed. Empty path requires an object value and
/// deep-merges it (objects recursively, anything else replaces).
void apply_override(Json& doc, const std::string& path, const Json& value);

}  // namespace cohesion::run
