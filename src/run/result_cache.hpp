// Persistent, content-addressed run-outcome cache — OrcaSlicer-style step
// invalidation applied to experiment grids: a run whose inputs (resolved
// spec, seed included) are unchanged is never recomputed; only edited
// variants of a sweep re-run.
//
// Keying. Entries are addressed by run::run_identity(spec) — the FNV-1a 64
// fingerprint of the resolved RunSpec JSON with the trace block (capture
// config is not run identity) and the name (labels/repeat suffixes are
// display identity) excluded. Presets resolve before fingerprinting, so a
// spec refactored into "extends" layers that resolves to the same document
// hits. Two different sweeps that resolve a variant to the same spec
// deduplicate through one cache directory.
//
// Layout. One entry per file, DIR/<16-hex-identity>.json:
//
//   {"format": "cohesion-result-cache/1",
//    "identity": "<16 hex>",
//    "outcome":  { ...physics fields of RunOutcome::to_json()... },
//    "checksum": "<16 hex FNV-1a of the outcome object's dump>"}
//
// The payload stores only the physics of the run (n, converged, cohesive,
// diameters, rounds, activations, worst_stretch, custom) — never the grid
// position (index/variant/repeat/label/seed come from the ExpandedRun a
// hit is served to), never wall-clock, never errors or skips, and never
// stream-trace paths (a stream-mode run must actually write its trace, so
// it bypasses lookup — it still inserts, its physics are mode-independent
// by architecture contract 10).
//
// Architecture contract (#11, docs/architecture.md): cached outcome ≡
// recomputed outcome, or the entry is rejected as corrupt with a named
// cause and the run recomputed. The Json dump/parse round trip is exact
// (64-bit ints, shortest round-trippable doubles), so a report assembled
// from hits is byte-identical to the cold run's --no-timing report; any
// entry failing validation (foreign format, version skew, identity or
// checksum mismatch, truncation, bit flips, malformed payload) is a
// *reject* — counted, its cause recorded, never silently served.
//
// Concurrency. Inserts are atomic: the entry is written to a unique temp
// file in the cache directory, fsync'd, then rename(2)'d into place —
// readers see either no entry or a complete one, and racing writers of the
// same key produce identical bytes (outcomes are deterministic), so last-
// rename-wins is harmless. One ResultCache may be shared by every worker
// thread of a BatchRunner, and one directory by any number of processes
// (the sharded-sweep e2e test runs 3 concurrent shard workers against one
// cache). Lookup/insert never throw — a sick cache degrades to misses, a
// failed insert is dropped; the cache is an accelerator, not a journal.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "run/batch_runner.hpp"
#include "run/spec.hpp"

namespace cohesion::run {

/// Traffic counters, all monotone over one ResultCache's lifetime. A run
/// is counted exactly once per lookup/insert attempt: hit, miss or reject
/// on the read side (reject means an entry existed but failed validation —
/// the run recomputes, like a miss, but loudly); insert on the write side.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t rejects = 0;    ///< corrupt entries refused (cause recorded)
  std::uint64_t inserts = 0;
  std::uint64_t bypassed = 0;   ///< stream-mode runs that skipped lookup

  [[nodiscard]] Json to_json() const;
};

class ResultCache {
 public:
  struct Options {
    std::string dir;         ///< entry directory; created if absent
    bool read_only = false;  ///< serve hits but never write entries
  };

  /// Creates the cache directory (unless read_only). Throws TransientError
  /// when the directory cannot be created — that is an environment
  /// problem, not a spec problem.
  explicit ResultCache(Options options);

  /// Content-addressed lookup for one expanded run. On a hit the returned
  /// outcome carries the run's own grid fields (index/variant/repeat/
  /// label/seed) around the cached physics — ready to drop into the report
  /// slot. nullopt on miss, reject (cause recorded, see reject_causes) and
  /// for stream-mode runs (bypassed). Never throws.
  [[nodiscard]] std::optional<RunOutcome> lookup(const ExpandedRun& run) noexcept;

  /// Store one completed outcome (atomically; see file header). Errored
  /// and skipped outcomes are refused here — an error may be environmental
  /// (and a skip carries no report), so neither is reproducible physics —
  /// and overwriting an existing key rewrites the identical bytes. No-op
  /// in read_only mode. Never throws; a failed write is dropped (the next
  /// run of the same spec simply misses and re-inserts).
  void insert(const ExpandedRun& run, const RunOutcome& outcome) noexcept;

  [[nodiscard]] CacheStats stats() const;
  /// One human-readable line per rejected entry, in rejection order:
  /// "<path>: <named cause>". Drained by the CLI onto stderr.
  [[nodiscard]] std::vector<std::string> reject_causes() const;

  /// Where the entry for `spec` lives — exposed for the adversarial tests
  /// that truncate/flip/forge entries on disk.
  [[nodiscard]] std::string entry_path(const RunSpec& spec) const;

  static constexpr const char* kFormat = "cohesion-result-cache/1";

 private:
  void record_reject(const std::string& path, const std::string& cause);

  Options options_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> rejects_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> bypassed_{0};
  std::atomic<std::uint64_t> temp_serial_{0};  ///< unique temp-file names
  mutable std::mutex mutex_;
  std::vector<std::string> reject_causes_;  ///< guarded by mutex_
};

}  // namespace cohesion::run
