// Fault-tolerant sweep supervision: launch `cohesion_run --shard i/N`
// worker processes, watch each shard under a lease, and retry dead shards
// until the sweep's merged report is byte-identical to the single-process
// `--no-timing` report — or, when a shard exhausts its retry budget, emit
// a coverage-annotated partial report instead of nothing.
//
// The moving parts:
//
//   * Lease/heartbeat. A worker's heartbeat is its checkpoint journal:
//     every completed run appends one fsync'd line, so journal growth
//     (bytes + complete lines) is progress. A shard whose journal stops
//     growing for LeaseConfig::timeout_seconds has lost its lease — the
//     supervisor SIGKILLs whatever is left of it and treats it as a
//     transient death. No in-band protocol, no pipes: a worker that is
//     alive but wedged (or SIGSTOPped) is indistinguishable from a dead
//     one, which is exactly the point.
//   * Retry with exponential backoff + deterministic jitter. Transient
//     deaths (signals, lease expiry, exit codes 3/4) are relaunched with
//     `--resume` against the same journal, so completed runs are never
//     recomputed; RetryPolicy caps attempts and spreads relaunches with a
//     seeded jitter source (pure function of shard + attempt — asserted
//     in tests, so backoff schedules are reproducible). Permanent exits
//     (1/2: bad spec, fingerprint mismatch) fail the shard immediately.
//   * Degraded output. While shards are in flight the supervisor streams
//     progress + a partial aggregate (folded over every journaled outcome
//     so far) through SupervisorOptions::on_event. When every shard
//     completes, the partial reports merge byte-identically
//     (run::merge_partial_reports); when any shard fails for good, the
//     result is a "cohesion-supervised-partial/1" document that names the
//     uncovered shards and still carries everything recovered from their
//     journals — never a silent wrong answer.
//   * Fault injection. FaultPlan sabotages a specific (shard, attempt)
//     from the supervisor's poll loop — SIGKILL after k journal lines,
//     SIGSTOP (a heartbeat stall the lease must catch), or kill + corrupt
//     the journal tail (which `--resume` must truncate away). The
//     injection matrix is driven by tests/run/launch_e2e_test.cpp and the
//     fault_sweep stage of bench/run_benches.sh; the acceptance bar is
//     byte-identity of the supervised report under every schedule.
//
// Single-host first: workers are fork/exec'd children on this machine.
// The multi-host story composes on top (each host runs one supervisor
// over its own shard range; journals and partials are plain files) — see
// docs/operations.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "run/batch_runner.hpp"
#include "run/json.hpp"

namespace cohesion::run {

/// Exponential backoff with seeded jitter. backoff_seconds is a pure
/// function of (shard, attempt) — deterministic schedules, testable and
/// reproducible across supervisor restarts — while still de-synchronizing
/// shards that died together (jitter differs per shard).
struct RetryPolicy {
  std::size_t max_attempts = 3;    ///< total launches per shard (>= 1)
  double base_delay_seconds = 0.25;///< backoff before the 2nd attempt
  double multiplier = 2.0;         ///< growth per further attempt
  double max_delay_seconds = 30.0; ///< cap before jitter
  double jitter = 0.5;             ///< adds up to this fraction on top
  std::uint64_t jitter_seed = 0x636f686573696f6eull;

  /// Delay before relaunching `shard` after it has died `failed_attempts`
  /// times (>= 1): min(max, base * multiplier^(failed_attempts-1)) *
  /// (1 + jitter * u) with u in [0,1) drawn by splitmix64 from
  /// (jitter_seed, shard, failed_attempts).
  [[nodiscard]] double backoff_seconds(std::size_t shard, std::size_t failed_attempts) const;
};

/// Lease/heartbeat timing. The journal poll is the supervisor's clock.
struct LeaseConfig {
  double timeout_seconds = 15.0;        ///< no journal growth for this long = dead
  double poll_interval_seconds = 0.05;  ///< reap/heartbeat/fault poll cadence
  double status_interval_seconds = 2.0; ///< partial-aggregate stream cadence
};

/// One injected fault: sabotage `shard`'s launch number `attempt` once its
/// journal holds `after_lines` completed-outcome lines.
struct FaultPlan {
  enum class Kind {
    kill,    ///< SIGKILL — a crash/OOM stand-in
    stall,   ///< SIGSTOP — heartbeats stop but the process lives; the
             ///< lease must expire before the supervisor recovers
    corrupt, ///< SIGKILL, then append a torn (newline-free) garbage tail
             ///< to the journal — resume must drop + truncate it
  };
  Kind kind = Kind::kill;
  std::size_t shard = 0;
  std::size_t attempt = 1;      ///< 1-based launch number to sabotage
  std::size_t after_lines = 0;  ///< outcome lines that arm the fault

  /// Parse the CLI form "kind:shard=J[,attempt=A][,after=K]", e.g.
  /// "kill:shard=1,after=3" or "stall:shard=0,attempt=2". Throws
  /// std::runtime_error naming the bad token otherwise.
  static FaultPlan parse(const std::string& text);
  [[nodiscard]] std::string describe() const;
};

/// Where one shard ended up, for reports and tests.
struct ShardStatus {
  enum class State { pending, running, backoff, done, failed };
  State state = State::pending;
  std::size_t attempts = 0;       ///< launches so far
  std::size_t journal_lines = 0;  ///< completed-outcome lines last observed
  std::string last_failure;       ///< most recent death, human-readable
  [[nodiscard]] const char* state_name() const;
};

struct SupervisorOptions {
  std::string runner;          ///< cohesion_run binary (default: sibling of this process)
  std::string spec_path;       ///< experiment spec file, passed through to workers
  std::size_t shards = 1;      ///< N in --shard i/N
  std::size_t worker_threads = 1;  ///< --threads per worker
  std::size_t max_parallel = 0;    ///< concurrently running workers; 0 = all
  std::size_t throttle_ms = 0;     ///< forwarded as --throttle-ms (fault harness pacing)
  std::string work_dir = "cohesion_launch.work";  ///< journals, partials, worker logs
  RetryPolicy retry;
  LeaseConfig lease;
  std::vector<FaultPlan> faults;
  /// Progress/event sink (one line per call, no trailing newline). The CLI
  /// points this at stderr; default drops events.
  std::function<void(const std::string&)> on_event;
};

struct SupervisorResult {
  bool complete = false;   ///< every shard covered; `report` is the merged report
  Json report;             ///< merged single-process report, or the partial doc
  std::vector<ShardStatus> shards;
  std::size_t total_runs = 0;
  std::size_t covered_runs = 0;  ///< outcomes present in `report`
  int exit_code = 1;             ///< suggested process exit (run/exit_codes.hpp)
};

/// Collapse per-attempt outcome lists for one shard into exactly one
/// outcome per grid index — the merge a supervisor needs when a retry's
/// journal overlaps its dead predecessor's. Semantics (attempt-supersedes):
///   * an index only one attempt produced keeps that outcome;
///   * two *completed* outcomes (no `error`) for the same index must be
///     byte-identical (outcomes are deterministic — a difference means the
///     attempts ran different specs or the engine is nondeterministic) or
///     the merge throws std::runtime_error naming the index;
///   * a completed outcome supersedes an errored one in either direction
///     (the error was environmental; the completed result is the run's one
///     true outcome); between two errored outcomes the later attempt wins.
/// Returns outcomes sorted by grid index.
std::vector<RunOutcome> merge_attempt_outcomes(
    const std::vector<std::vector<RunOutcome>>& attempts);

/// Read every complete outcome line of a checkpoint journal (header
/// skipped, torn tail ignored) without validating fingerprints — the
/// supervisor's heartbeat/partial-aggregate view of a worker's progress.
/// Returns false when the file is missing/empty. Unparseable complete
/// lines are skipped (a live worker may be mid-write of weird state; the
/// authoritative read is the worker's own resume).
bool read_journal_outcomes(const std::string& path, std::vector<RunOutcome>& outcomes);

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions options);

  /// Run the whole supervised sweep to a terminal state. Blocking; returns
  /// rather than throws for everything attributable to workers (their
  /// failures land in the result). Throws std::runtime_error only for
  /// supervisor-level misuse: unreadable/invalid spec, shards == 0, or an
  /// un-creatable work dir.
  [[nodiscard]] SupervisorResult run();

 private:
  SupervisorOptions options_;
};

}  // namespace cohesion::run
