// Process-level sharding for multi-machine sweeps.
//
// The model: every process runs the *same* spec file with a different
// `--shard i/N` argument, writes a partial report, and a final
// `cohesion_merge` invocation combines the N partial reports into the
// exact report a single process would have produced (byte-identical to
// `cohesion_run spec.json --no-timing`). The pieces:
//
//   * ExperimentSpec::expand_shard(i, N) — the deterministic partition of
//     the grid (round-robin over variants; global indices and derived
//     seeds unchanged), declared in run/spec.hpp.
//   * partial_report_json — one shard's deterministic output: experiment
//     echo, shard coordinates, and the shard's outcomes under their
//     global grid indices. Never carries timing (wall numbers go to
//     stderr), so partials are diffable across machines.
//   * merge_partial_reports — validates that the partials belong to the
//     same experiment and jointly cover every grid position exactly once,
//     then reassembles the single-process report. Errors name the missing
//     or conflicting shard, not just "bad input".
//
// Format stability: partial reports carry a "format" marker
// ("cohesion-partial-report/1"); merge rejects anything else with an
// actionable message. Schema details: docs/operations.md.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "run/batch_runner.hpp"
#include "run/json.hpp"
#include "run/spec.hpp"

namespace cohesion::run {

/// One process's slice of a sweep: shard `index` of `count` (0-based).
struct Shard {
  std::size_t index = 0;
  std::size_t count = 1;

  /// Parse the CLI form "i/N" (e.g. "0/3"). Throws std::runtime_error on
  /// anything else, including i >= N or N == 0.
  static Shard parse(const std::string& text);
};

/// Serialize one shard's result as a partial report (deterministic; no
/// timing block). `total_runs` is the size of the *whole* grid, i.e.
/// ExperimentSpec::expand().size(), which merge uses to prove coverage.
Json partial_report_json(const ExperimentSpec& experiment, const Shard& shard,
                         std::size_t total_runs, const std::vector<RunOutcome>& outcomes);

/// Combine all N partial reports of one sweep into the single-process
/// report (BatchRunner::report_json with include_timing=false, byte for
/// byte). Validates format markers, experiment-echo equality, shard-count
/// agreement, distinct shard indices, and exactly-once coverage of every
/// grid index; throws std::runtime_error naming the offending shard/index
/// otherwise. Order of `partials` does not matter.
Json merge_partial_reports(const std::vector<Json>& partials);

}  // namespace cohesion::run
