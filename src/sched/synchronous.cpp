#include "sched/synchronous.hpp"

namespace cohesion::sched {

using core::Activation;
using core::SimulationView;

FSyncScheduler::FSyncScheduler(std::size_t robot_count) : n_(robot_count) {}

std::optional<Activation> FSyncScheduler::next(const SimulationView&) {
  if (cursor_ == n_) {
    cursor_ = 0;
    ++round_;
  }
  const double t0 = static_cast<double>(round_);
  Activation a;
  a.robot = cursor_++;
  a.t_look = t0;
  a.t_move_start = t0 + 0.25;
  a.t_move_end = t0 + 0.75;
  a.realized_fraction = 1.0;
  return a;
}

SSyncScheduler::SSyncScheduler(std::size_t robot_count) : SSyncScheduler(robot_count, Params{}) {}

SSyncScheduler::SSyncScheduler(std::size_t robot_count, Params params)
    : n_(robot_count), params_(params), rng_(params.seed), idle_rounds_(robot_count, 0) {
  plan_round();
}

void SSyncScheduler::plan_round() {
  active_.clear();
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (core::RobotId r = 0; r < n_; ++r) {
    const bool forced = idle_rounds_[r] + 1 >= params_.fairness_window;
    if (forced || coin(rng_) < params_.activation_probability) {
      active_.push_back(r);
      idle_rounds_[r] = 0;
    } else {
      ++idle_rounds_[r];
    }
  }
  cursor_ = 0;
}

std::optional<Activation> SSyncScheduler::next(const SimulationView&) {
  while (cursor_ == active_.size()) {
    ++round_;
    plan_round();
  }
  const double t0 = static_cast<double>(round_);
  std::uniform_real_distribution<double> frac(params_.xi, 1.0);
  Activation a;
  a.robot = active_[cursor_++];
  a.t_look = t0;
  a.t_move_start = t0 + 0.25;
  a.t_move_end = t0 + 0.75;
  a.realized_fraction = params_.xi >= 1.0 ? 1.0 : frac(rng_);
  return a;
}

}  // namespace cohesion::sched
