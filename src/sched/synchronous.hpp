// Synchronous schedulers: FSync (all robots every round) and SSync
// (adversarial/random subsets, fairness-bounded) — paper §2.3.1, Fig. 1.
//
// A round occupies one time unit: Look at the round start, Move within the
// round, ending before the next round begins.
#pragma once

#include <random>

#include "core/scheduler.hpp"

namespace cohesion::sched {

class FSyncScheduler final : public core::Scheduler {
 public:
  explicit FSyncScheduler(std::size_t robot_count);

  std::optional<core::Activation> next(const core::SimulationView& view) override;
  [[nodiscard]] std::string_view name() const override { return "FSync"; }

 private:
  std::size_t n_;
  std::size_t round_ = 0;
  std::size_t cursor_ = 0;  // next robot within the round
};

/// SSync with per-round independent activation probability `p`, plus a
/// fairness window: a robot idle for `fairness_window` consecutive rounds is
/// forcibly activated. Optionally truncates moves xi-rigidly.
class SSyncScheduler final : public core::Scheduler {
 public:
  struct Params {
    double activation_probability = 0.5;
    std::size_t fairness_window = 8;  ///< max consecutive idle rounds
    double xi = 1.0;                  ///< min realized fraction (1 = rigid)
    std::uint64_t seed = 7;
  };

  explicit SSyncScheduler(std::size_t robot_count);
  SSyncScheduler(std::size_t robot_count, Params params);

  std::optional<core::Activation> next(const core::SimulationView& view) override;
  [[nodiscard]] std::string_view name() const override { return "SSync"; }

 private:
  void plan_round();

  std::size_t n_;
  Params params_;
  std::mt19937_64 rng_;
  std::size_t round_ = 0;
  std::vector<core::RobotId> active_;  // robots chosen for the current round
  std::size_t cursor_ = 0;
  std::vector<std::size_t> idle_rounds_;
};

}  // namespace cohesion::sched
