#include "sched/asynchronous.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace cohesion::sched {

using core::Activation;
using core::RobotId;
using core::SimulationView;

namespace {
/// Interval-membership slack shared by both bookkeeping paths.
constexpr double kIntervalEps = 1e-12;
}  // namespace

KAsyncScheduler::KAsyncScheduler(std::size_t robot_count) : KAsyncScheduler(robot_count, Params{}) {}

KAsyncScheduler::KAsyncScheduler(std::size_t robot_count, Params params)
    : n_(robot_count), params_(params), rng_(params.seed), next_ready_(robot_count, 0.0) {
  if (robot_count == 0) throw std::invalid_argument("KAsyncScheduler: no robots");
  if (params.k == 0) throw std::invalid_argument("KAsyncScheduler: k must be >= 1");
  if (params_.indexed_intervals && params_.k != static_cast<std::size_t>(-1)) {
    // The rings cost n * k doubles. For absurdly large finite k (someone
    // approximating unbounded asynchrony) that would overflow or exhaust
    // memory, so fall back to the legacy scan, whose footprint is
    // k-independent.
    constexpr std::size_t kMaxRingEntries = std::size_t{1} << 24;  // 128 MiB
    if (params_.k > kMaxRingEntries / n_) {
      params_.indexed_intervals = false;
    } else {
      own_looks_.resize(n_ * params_.k, 0.0);
      own_look_count_.resize(n_, 0);
      intervals_.reserve(2 * n_ + 17);
      prefix_max_end_.reserve(2 * n_ + 17);
    }
  }
  // Stagger initial looks so intervals overlap from the start.
  std::uniform_real_distribution<double> jitter(0.0, params.min_duration);
  for (auto& t : next_ready_) t = jitter(rng_);
  if (params_.heap_selection) {
    for (RobotId r = 0; r < n_; ++r) ready_heap_.emplace(next_ready_[r], r);
  }
}

double KAsyncScheduler::postpone_indexed(RobotId best, double look) {
  const std::size_t k = params_.k;
  if (own_look_count_[best] < k) return look;  // fewer than k looks ever committed
  // The oldest of the robot's k most recent looks sits in the ring slot the
  // next look will overwrite.
  const double kth_recent = own_looks_[best * k + own_look_count_[best] % k];
  // An interval is saturated for this robot iff its start admits all k
  // recent looks (start + eps < kth_recent, the same predicate the legacy
  // path applies look by look). Starts are non-decreasing, so the
  // candidates are a prefix.
  const auto split = std::partition_point(
      intervals_.begin(), intervals_.end(),
      [&](const OpenInterval& c) { return kth_recent > c.start + kIntervalEps; });
  if (split == intervals_.begin()) return look;
  const double max_end = prefix_max_end_[static_cast<std::size_t>(split - intervals_.begin()) - 1];
  // One step settles the legacy fixed point: the candidate set is
  // look-independent, and after jumping to the max end no candidate can
  // still contain the look. Expired candidates have ends at or below the
  // look and fail the same containment test they fail in the legacy scan.
  if (look < max_end - kIntervalEps) look = max_end;
  return look;
}

double KAsyncScheduler::postpone_legacy(RobotId best, double look) {
  bool moved = true;
  while (moved) {
    moved = false;
    for (const Committed& c : open_) {
      if (c.robot == best) continue;
      if (look > c.start + kIntervalEps && look < c.end - kIntervalEps &&
          c.looks_inside[best] >= params_.k) {
        look = c.end;  // postpone past the saturated interval
        moved = true;
      }
    }
  }
  return look;
}

void KAsyncScheduler::commit_indexed(RobotId best, const Activation& a) {
  if (params_.k == static_cast<std::size_t>(-1)) return;  // unrestricted: nothing to track
  // Record the robot's own committed look in its ring of the last k.
  const std::size_t k = params_.k;
  own_looks_[best * k + own_look_count_[best] % k] = a.t_look;
  ++own_look_count_[best];

  // Amortized compaction: drop expired intervals (same threshold as the
  // legacy erase_if) once the list exceeds twice the robot count. At most
  // one interval per robot is open, so this at least halves the list.
  if (intervals_.size() >= 2 * n_ + 16) {
    const double look = a.t_look;
    std::size_t w = 0;
    for (const OpenInterval& c : intervals_) {
      if (c.end > look + kIntervalEps) intervals_[w++] = c;
    }
    intervals_.resize(w);
    prefix_max_end_.resize(w);
    double running = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < w; ++i) {
      running = std::max(running, intervals_[i].end);
      prefix_max_end_[i] = running;
    }
  }
  // Append the new interval; starts arrive non-decreasing, so creation
  // order keeps the list sorted and the prefix max extends in O(1).
  intervals_.push_back({a.t_look, a.t_move_end});
  prefix_max_end_.push_back(prefix_max_end_.empty()
                                ? a.t_move_end
                                : std::max(prefix_max_end_.back(), a.t_move_end));
}

void KAsyncScheduler::commit_legacy(RobotId best, const Activation& a) {
  const double look = a.t_look;
  for (Committed& c : open_) {
    if (c.robot != best && look > c.start + kIntervalEps && look < c.end - kIntervalEps) {
      ++c.looks_inside[best];
    }
  }
  open_.push_back({best, a.t_look, a.t_move_end, std::vector<std::size_t>(n_, 0)});
  std::erase_if(open_, [&](const Committed& c) { return c.end <= look + kIntervalEps; });
}

std::optional<Activation> KAsyncScheduler::next(const SimulationView& view) {
  // Pick the robot with the earliest permissible look time (jittered to vary
  // the interleaving), then enforce the k-bound by postponement. The two
  // bookkeeping paths draw no RNG, so the schedules they produce are
  // bit-identical (tests/sched/kasync_index_test.cpp).
  const double frontier = view.frontier();
  RobotId best = 0;
  if (params_.heap_selection) {
    // Most-starved robot first: ready times only change for the committed
    // robot (re-pushed below), so the heap top is always current.
    best = ready_heap_.top().second;
    ready_heap_.pop();
  } else {
    double best_t = std::numeric_limits<double>::infinity();
    std::uniform_real_distribution<double> tie(0.0, 1e-6);
    for (RobotId r = 0; r < n_; ++r) {
      const double t = std::max(next_ready_[r], frontier) + tie(rng_);
      if (t < best_t) {
        best_t = t;
        best = r;
      }
    }
  }

  double look = std::max(next_ready_[best], frontier);
  if (params_.k != static_cast<std::size_t>(-1)) {
    look = params_.indexed_intervals ? postpone_indexed(best, look)
                                     : postpone_legacy(best, look);
  }

  std::uniform_real_distribution<double> dur(params_.min_duration, params_.max_duration);
  std::uniform_real_distribution<double> gap(params_.min_gap, params_.max_gap);
  std::uniform_real_distribution<double> compute_frac(0.1, 0.5);
  std::uniform_real_distribution<double> frac(params_.xi, 1.0);

  const double duration = dur(rng_);
  Activation a;
  a.robot = best;
  a.t_look = look;
  a.t_move_start = look + compute_frac(rng_) * duration;
  a.t_move_end = look + duration;
  a.realized_fraction = params_.xi >= 1.0 ? 1.0 : frac(rng_);

  if (params_.indexed_intervals) {
    commit_indexed(best, a);
  } else {
    commit_legacy(best, a);
  }

  next_ready_[best] = a.t_move_end + gap(rng_);
  if (params_.heap_selection) ready_heap_.emplace(next_ready_[best], best);
  return a;
}

KNestAScheduler::KNestAScheduler(std::size_t robot_count) : KNestAScheduler(robot_count, Params{}) {}

KNestAScheduler::KNestAScheduler(std::size_t robot_count, Params params)
    : n_(robot_count), params_(params), rng_(params.seed) {
  if (robot_count == 0) throw std::invalid_argument("KNestAScheduler: no robots");
  if (params.k == 0) throw std::invalid_argument("KNestAScheduler: k must be >= 1");
  plan_round();
}

void KNestAScheduler::plan_round() {
  const double t0 = static_cast<double>(round_);
  std::vector<RobotId> order(n_);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng_);
  std::uniform_real_distribution<double> frac(params_.xi, 1.0);

  std::vector<Activation> acts;
  const std::size_t pairs = n_ / 2;
  // Outer robots (and a possible leftover) span the whole round; equal
  // intervals are mutually nested.
  auto outer_activation = [&](RobotId r) {
    Activation a;
    a.robot = r;
    a.t_look = t0;
    a.t_move_start = t0 + 0.4;
    a.t_move_end = t0 + 1.0;
    a.realized_fraction = params_.xi >= 1.0 ? 1.0 : frac(rng_);
    return a;
  };
  for (std::size_t p = 0; p < pairs; ++p) acts.push_back(outer_activation(order[2 * p]));
  if (n_ % 2 == 1) acts.push_back(outer_activation(order[n_ - 1]));

  // Inner robots: k sequential activations inside a pair-private sub-slot of
  // (t0 + 0.05, t0 + 0.95); sub-slots are pairwise disjoint so all inner
  // intervals are disjoint from each other and strictly nested in every
  // outer interval.
  if (pairs > 0) {
    const double usable = 0.9;
    const double slot = usable / static_cast<double>(pairs);
    for (std::size_t p = 0; p < pairs; ++p) {
      const RobotId inner = order[2 * p + 1];
      const double s0 = t0 + 0.05 + slot * static_cast<double>(p);
      const double each = slot / static_cast<double>(params_.k);
      for (std::size_t i = 0; i < params_.k; ++i) {
        Activation a;
        a.robot = inner;
        a.t_look = s0 + each * static_cast<double>(i) + 0.05 * each;
        a.t_move_start = a.t_look + 0.3 * each;
        a.t_move_end = a.t_look + 0.8 * each;
        a.realized_fraction = params_.xi >= 1.0 ? 1.0 : frac(rng_);
        acts.push_back(a);
      }
    }
  }

  std::sort(acts.begin(), acts.end(),
            [](const Activation& a, const Activation& b) { return a.t_look < b.t_look; });
  pending_.assign(acts.begin(), acts.end());
  ++round_;
}

std::optional<Activation> KNestAScheduler::next(const SimulationView&) {
  if (pending_.empty()) plan_round();
  Activation a = pending_.front();
  pending_.pop_front();
  return a;
}

ScriptedScheduler::ScriptedScheduler(std::vector<Activation> script) : script_(std::move(script)) {
  // Enforce the same ordering contract the engine does: each look may
  // regress below the *previous* look (the engine's frontier is the last
  // committed Look time, not a running max) only within the 1e-12 slack.
  // (The Section-7 constructions write exactly-sorted scripts; the slack
  // exists so adversarial scripts can exercise the engine's tolerance too.)
  double frontier = -std::numeric_limits<double>::infinity();
  for (const Activation& a : script_) {
    if (a.t_look + 1e-12 < frontier) {
      throw std::invalid_argument("ScriptedScheduler: script must be sorted by t_look");
    }
    frontier = a.t_look;
  }
}

std::optional<Activation> ScriptedScheduler::next(const SimulationView&) {
  if (cursor_ == script_.size()) return std::nullopt;
  return script_[cursor_++];
}

}  // namespace cohesion::sched
