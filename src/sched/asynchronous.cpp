#include "sched/asynchronous.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace cohesion::sched {

using core::Activation;
using core::RobotId;
using core::SimulationView;

KAsyncScheduler::KAsyncScheduler(std::size_t robot_count) : KAsyncScheduler(robot_count, Params{}) {}

KAsyncScheduler::KAsyncScheduler(std::size_t robot_count, Params params)
    : n_(robot_count), params_(params), rng_(params.seed), next_ready_(robot_count, 0.0) {
  if (robot_count == 0) throw std::invalid_argument("KAsyncScheduler: no robots");
  if (params.k == 0) throw std::invalid_argument("KAsyncScheduler: k must be >= 1");
  // Stagger initial looks so intervals overlap from the start.
  std::uniform_real_distribution<double> jitter(0.0, params.min_duration);
  for (auto& t : next_ready_) t = jitter(rng_);
}

std::optional<Activation> KAsyncScheduler::next(const SimulationView& view) {
  // Pick the robot with the earliest permissible look time (jittered to vary
  // the interleaving), then enforce the k-bound by postponement.
  const double frontier = view.frontier();
  RobotId best = 0;
  double best_t = std::numeric_limits<double>::infinity();
  std::uniform_real_distribution<double> tie(0.0, 1e-6);
  for (RobotId r = 0; r < n_; ++r) {
    const double t = std::max(next_ready_[r], frontier) + tie(rng_);
    if (t < best_t) {
      best_t = t;
      best = r;
    }
  }

  double look = std::max(next_ready_[best], frontier);
  if (params_.k != static_cast<std::size_t>(-1)) {
    bool moved = true;
    while (moved) {
      moved = false;
      for (const Committed& c : open_) {
        if (c.robot == best) continue;
        if (look > c.start + 1e-12 && look < c.end - 1e-12 && c.looks_inside[best] >= params_.k) {
          look = c.end;  // postpone past the saturated interval
          moved = true;
        }
      }
    }
  }

  std::uniform_real_distribution<double> dur(params_.min_duration, params_.max_duration);
  std::uniform_real_distribution<double> gap(params_.min_gap, params_.max_gap);
  std::uniform_real_distribution<double> compute_frac(0.1, 0.5);
  std::uniform_real_distribution<double> frac(params_.xi, 1.0);

  const double duration = dur(rng_);
  Activation a;
  a.robot = best;
  a.t_look = look;
  a.t_move_start = look + compute_frac(rng_) * duration;
  a.t_move_end = look + duration;
  a.realized_fraction = params_.xi >= 1.0 ? 1.0 : frac(rng_);

  // Book-keeping: count this Look inside every open foreign interval, then
  // register the new interval and prune closed ones.
  for (Committed& c : open_) {
    if (c.robot != best && look > c.start + 1e-12 && look < c.end - 1e-12) {
      ++c.looks_inside[best];
    }
  }
  open_.push_back({best, a.t_look, a.t_move_end, std::vector<std::size_t>(n_, 0)});
  std::erase_if(open_, [&](const Committed& c) { return c.end <= look + 1e-12; });

  next_ready_[best] = a.t_move_end + gap(rng_);
  return a;
}

KNestAScheduler::KNestAScheduler(std::size_t robot_count) : KNestAScheduler(robot_count, Params{}) {}

KNestAScheduler::KNestAScheduler(std::size_t robot_count, Params params)
    : n_(robot_count), params_(params), rng_(params.seed) {
  if (robot_count == 0) throw std::invalid_argument("KNestAScheduler: no robots");
  if (params.k == 0) throw std::invalid_argument("KNestAScheduler: k must be >= 1");
  plan_round();
}

void KNestAScheduler::plan_round() {
  const double t0 = static_cast<double>(round_);
  std::vector<RobotId> order(n_);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng_);
  std::uniform_real_distribution<double> frac(params_.xi, 1.0);

  std::vector<Activation> acts;
  const std::size_t pairs = n_ / 2;
  // Outer robots (and a possible leftover) span the whole round; equal
  // intervals are mutually nested.
  auto outer_activation = [&](RobotId r) {
    Activation a;
    a.robot = r;
    a.t_look = t0;
    a.t_move_start = t0 + 0.4;
    a.t_move_end = t0 + 1.0;
    a.realized_fraction = params_.xi >= 1.0 ? 1.0 : frac(rng_);
    return a;
  };
  for (std::size_t p = 0; p < pairs; ++p) acts.push_back(outer_activation(order[2 * p]));
  if (n_ % 2 == 1) acts.push_back(outer_activation(order[n_ - 1]));

  // Inner robots: k sequential activations inside a pair-private sub-slot of
  // (t0 + 0.05, t0 + 0.95); sub-slots are pairwise disjoint so all inner
  // intervals are disjoint from each other and strictly nested in every
  // outer interval.
  if (pairs > 0) {
    const double usable = 0.9;
    const double slot = usable / static_cast<double>(pairs);
    for (std::size_t p = 0; p < pairs; ++p) {
      const RobotId inner = order[2 * p + 1];
      const double s0 = t0 + 0.05 + slot * static_cast<double>(p);
      const double each = slot / static_cast<double>(params_.k);
      for (std::size_t i = 0; i < params_.k; ++i) {
        Activation a;
        a.robot = inner;
        a.t_look = s0 + each * static_cast<double>(i) + 0.05 * each;
        a.t_move_start = a.t_look + 0.3 * each;
        a.t_move_end = a.t_look + 0.8 * each;
        a.realized_fraction = params_.xi >= 1.0 ? 1.0 : frac(rng_);
        acts.push_back(a);
      }
    }
  }

  std::sort(acts.begin(), acts.end(),
            [](const Activation& a, const Activation& b) { return a.t_look < b.t_look; });
  pending_.assign(acts.begin(), acts.end());
  ++round_;
}

std::optional<Activation> KNestAScheduler::next(const SimulationView&) {
  if (pending_.empty()) plan_round();
  Activation a = pending_.front();
  pending_.pop_front();
  return a;
}

ScriptedScheduler::ScriptedScheduler(std::vector<Activation> script) : script_(std::move(script)) {
  if (!std::is_sorted(script_.begin(), script_.end(), [](const Activation& a, const Activation& b) {
        return a.t_look < b.t_look;
      })) {
    throw std::invalid_argument("ScriptedScheduler: script must be sorted by t_look");
  }
}

std::optional<Activation> ScriptedScheduler::next(const SimulationView&) {
  if (cursor_ == script_.size()) return std::nullopt;
  return script_[cursor_++];
}

}  // namespace cohesion::sched
