// Asynchronous schedulers (paper §2.3.1, Fig. 2).
//
//  * KAsyncScheduler — randomized Async with the k-bound enforced *online*:
//    an activation of Y is postponed past the end of any open interval of X
//    that already contains k Looks of Y. k = SIZE_MAX gives unrestricted
//    Async.
//  * KNestAScheduler — k-NestA: rounds of pair-blocks; the outer robot's
//    interval spans the round, the inner robot performs up to k activations
//    nested inside a sub-slot, sub-slots pairwise disjoint. Roles rotate for
//    fairness.
//  * ScriptedScheduler — replays an explicit activation list (used by the
//    Fig. 4 and Section-7 counterexamples).
#pragma once

#include <deque>
#include <random>
#include <vector>

#include "core/scheduler.hpp"

namespace cohesion::sched {

class KAsyncScheduler final : public core::Scheduler {
 public:
  struct Params {
    std::size_t k = 1;                ///< asynchrony bound (SIZE_MAX = Async)
    double min_duration = 0.2;        ///< min activity-interval length
    double max_duration = 3.0;        ///< max activity-interval length
    double min_gap = 0.05;            ///< min inactivity between own intervals
    double max_gap = 1.0;             ///< max inactivity (fairness bound)
    double xi = 1.0;                  ///< min realized move fraction
    std::uint64_t seed = 11;
  };

  explicit KAsyncScheduler(std::size_t robot_count);
  KAsyncScheduler(std::size_t robot_count, Params params);

  std::optional<core::Activation> next(const core::SimulationView& view) override;
  [[nodiscard]] std::string_view name() const override { return "k-Async"; }

 private:
  struct Committed {
    core::RobotId robot;
    double start, end;
    std::vector<std::size_t> looks_inside;  // per-robot Look counts in (start, end)
  };

  std::size_t n_;
  Params params_;
  std::mt19937_64 rng_;
  std::vector<double> next_ready_;     // earliest allowed next look per robot
  std::vector<Committed> open_;        // committed intervals that may still nest looks
};

class KNestAScheduler final : public core::Scheduler {
 public:
  struct Params {
    std::size_t k = 2;     ///< nested activations per outer interval
    double xi = 1.0;
    std::uint64_t seed = 13;
  };

  explicit KNestAScheduler(std::size_t robot_count);
  KNestAScheduler(std::size_t robot_count, Params params);

  std::optional<core::Activation> next(const core::SimulationView& view) override;
  [[nodiscard]] std::string_view name() const override { return "k-NestA"; }

 private:
  void plan_round();

  std::size_t n_;
  Params params_;
  std::mt19937_64 rng_;
  std::size_t round_ = 0;
  std::deque<core::Activation> pending_;
};

class ScriptedScheduler final : public core::Scheduler {
 public:
  explicit ScriptedScheduler(std::vector<core::Activation> script);

  std::optional<core::Activation> next(const core::SimulationView& view) override;
  [[nodiscard]] std::string_view name() const override { return "scripted"; }

 private:
  std::vector<core::Activation> script_;
  std::size_t cursor_ = 0;
};

}  // namespace cohesion::sched
