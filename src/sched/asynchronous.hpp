// Asynchronous schedulers (paper §2.3.1, Fig. 2).
//
//  * KAsyncScheduler — randomized Async with the k-bound enforced *online*:
//    an activation of Y is postponed past the end of any open interval of X
//    that already contains k Looks of Y. k = SIZE_MAX gives unrestricted
//    Async.
//  * KNestAScheduler — k-NestA: rounds of pair-blocks; the outer robot's
//    interval spans the round, the inner robot performs up to k activations
//    nested inside a sub-slot, sub-slots pairwise disjoint. Roles rotate for
//    fairness.
//  * ScriptedScheduler — replays an explicit activation list (used by the
//    Fig. 4 and Section-7 counterexamples).
#pragma once

#include <deque>
#include <queue>
#include <random>
#include <vector>

#include "core/scheduler.hpp"

namespace cohesion::sched {

class KAsyncScheduler final : public core::Scheduler {
 public:
  struct Params {
    std::size_t k = 1;                ///< asynchrony bound (SIZE_MAX = Async)
    double min_duration = 0.2;        ///< min activity-interval length
    double max_duration = 3.0;        ///< max activity-interval length
    double min_gap = 0.05;            ///< min inactivity between own intervals
    double max_gap = 1.0;             ///< max inactivity (fairness bound)
    double xi = 1.0;                  ///< min realized move fraction
    std::uint64_t seed = 11;
    /// Indexed open-interval bookkeeping (see below). false selects the
    /// original flat scan — kept as the equivalence oracle and for the
    /// ablation bench; both paths draw RNG identically and produce
    /// bit-identical schedules.
    bool indexed_intervals = true;
    /// Robot selection strategy. The default draws a fresh tie-jitter for
    /// every robot on every proposal and takes the argmin — O(n) RNG draws
    /// per proposal, the dominant per-proposal cost at n >= 4096, but the
    /// seeded stream all previously recorded schedules follow. true keeps
    /// the ready times in a min-heap instead (most-starved robot first,
    /// O(log n) and O(1) RNG draws per proposal). Both produce valid
    /// k-async schedules, deterministically from the seed, but along
    /// *different* streams: enabling this changes every schedule, so it is
    /// opt-in rather than a new default.
    bool heap_selection = false;
  };

  explicit KAsyncScheduler(std::size_t robot_count);
  KAsyncScheduler(std::size_t robot_count, Params params);

  std::optional<core::Activation> next(const core::SimulationView& view) override;
  [[nodiscard]] std::string_view name() const override { return "k-Async"; }

 private:
  // Legacy representation: every open interval carries a dense per-robot
  // Look-count vector — O(n) allocation + zeroing per proposal and O(n^2)
  // live memory at steady state (one n-sized vector per robot's interval).
  struct Committed {
    core::RobotId robot;
    double start, end;
    std::vector<std::size_t> looks_inside;  // per-robot Look counts in (start, end)
  };

  // Indexed representation. Two observations turn the per-proposal walks
  // into O(log n) queries:
  //
  //  * Counts are derivable from the looking robot's own history. An
  //    interval X holds >= k looks of Y exactly when Y's k-th most recent
  //    committed look lies strictly inside it — and since all of Y's looks
  //    precede the proposal being placed, "inside" reduces to "after the
  //    interval's start". So instead of incrementing a counter in every
  //    open interval containing each look (Theta(open intervals) per
  //    proposal, with the legacy dense count vectors costing O(n)
  //    allocation + zeroing each and O(n^2) live memory), each robot keeps
  //    a ring of its own last k look times.
  //  * Committed look times are non-decreasing (the Scheduler contract), so
  //    the open-interval list in creation order is sorted by start. The
  //    saturated intervals for Y are then a *prefix* of the list (start
  //    before Y's k-th recent look) found by binary search, and the
  //    postponement target is the prefix's maximum end — an append-only
  //    prefix-max array. The candidate set does not depend on the proposal
  //    time, so the legacy fixed-point loop collapses to one max lookup.
  //
  // Expired intervals are compacted away once the list exceeds twice the
  // robot count (at most one interval per robot is open, so compaction
  // halves it — amortized O(1) per proposal). Results are bit-identical to
  // the legacy scan (tests/sched/kasync_index_test.cpp) up to ties between
  // interval end times closer than 1e-12, which the continuous random
  // durations do not produce.
  struct OpenInterval {
    double start, end;
  };

  double postpone_indexed(core::RobotId best, double look);
  double postpone_legacy(core::RobotId best, double look);
  void commit_indexed(core::RobotId best, const core::Activation& a);
  void commit_legacy(core::RobotId best, const core::Activation& a);

  std::size_t n_;
  Params params_;
  std::mt19937_64 rng_;
  std::vector<double> next_ready_;     // earliest allowed next look per robot
  // heap_selection: robots ordered by ready time (ties by id); a robot's
  // entry is re-pushed with its new ready time after each of its commits,
  // so entries are never stale.
  std::priority_queue<std::pair<double, core::RobotId>,
                      std::vector<std::pair<double, core::RobotId>>, std::greater<>>
      ready_heap_;
  std::vector<Committed> open_;        // legacy path: flat open-interval list
  std::vector<OpenInterval> intervals_;  // indexed path: sorted by start
  std::vector<double> prefix_max_end_;   // prefix max of intervals_[i].end
  std::vector<double> own_looks_;        // n x k ring of own committed looks
  std::vector<std::uint64_t> own_look_count_;
};

class KNestAScheduler final : public core::Scheduler {
 public:
  struct Params {
    std::size_t k = 2;     ///< nested activations per outer interval
    double xi = 1.0;
    std::uint64_t seed = 13;
  };

  explicit KNestAScheduler(std::size_t robot_count);
  KNestAScheduler(std::size_t robot_count, Params params);

  std::optional<core::Activation> next(const core::SimulationView& view) override;
  [[nodiscard]] std::string_view name() const override { return "k-NestA"; }

 private:
  void plan_round();

  std::size_t n_;
  Params params_;
  std::mt19937_64 rng_;
  std::size_t round_ = 0;
  std::deque<core::Activation> pending_;
};

class ScriptedScheduler final : public core::Scheduler {
 public:
  explicit ScriptedScheduler(std::vector<core::Activation> script);

  std::optional<core::Activation> next(const core::SimulationView& view) override;
  [[nodiscard]] std::string_view name() const override { return "scripted"; }

 private:
  std::vector<core::Activation> script_;
  std::size_t cursor_ = 0;
};

}  // namespace cohesion::sched
