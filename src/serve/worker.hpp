// The cohesion_serve worker loop: turns any host with the binaries into a
// sweep-cluster member. One connection to the daemon, one leased shard at
// a time, each executed by fork/exec'ing `cohesion_run <spec> --shard i/N
// --resume <journal>` — so every per-run guarantee (derived seeds, exact
// checkpoint resume, partial-report determinism) is the proven PR 4/5
// machinery, not a reimplementation.
//
//   * Journals live in work_dir, keyed job<J>_s<I>of<N>.ckpt: re-leasing
//     the same (job, shard, N) to this worker resumes its own journal and
//     recomputes nothing. The worker relays journal growth (bytes, lines)
//     plus the newly journaled outcomes in each heartbeat — the daemon's
//     lease clock *and* its streamed partial aggregate in one message.
//   * A heartbeat answered valid=false means the lease is gone (revoked
//     by an elastic re-partition, or expired): SIGTERM the runner (its
//     journal flushes — exit 4 contract), hand every journaled outcome
//     back via "release", and request fresh work.
//   * Runner exits classify exactly like run/supervisor: a usable partial
//     report covers the shard (exit 0, or exit 1 whose report carries the
//     in-run errors); retryable exits (3/4/5, signals) are reported as
//     transient failures the daemon re-leases under backoff; permanent
//     exits (1 with no usable partial, 2) poison the shard's variants.
//   * Connect failures — daemon not up yet, daemon restarting — retry
//     under exponential backoff up to connect_attempts, then exit 5
//     (run::kExitTransientNetwork): an outer supervisor (compose,
//     systemd) knows relaunching may fix it. A connection lost mid-lease
//     stops the runner and re-enters the same connect loop; the daemon
//     reclaims the lease via the dropped connection.
//   * SIGTERM/SIGINT (WorkerOptions::stop): SIGTERM the runner, wait for
//     its journal flush, release the lease, exit run::kExitInterrupted —
//     the same graceful-stop contract as cohesion_run.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>

#include "serve/protocol.hpp"

namespace cohesion::serve {

struct WorkerOptions {
  Address address;
  std::string work_dir = "cohesion_worker.work";  ///< journals, spec files, runner logs
  std::string runner;      ///< cohesion_run binary; default: sibling of this executable
  std::string name;        ///< advertised in hello; default worker-<pid>
  std::size_t threads = 1;           ///< --threads per runner
  std::size_t throttle_ms = 0;       ///< forwarded as --throttle-ms (fault pacing)
  double heartbeat_interval_seconds = 0.5;
  double idle_poll_seconds = 0.25;   ///< re-request cadence when the daemon is idle
  std::size_t connect_attempts = 10; ///< connect tries before exit 5
  double connect_backoff_seconds = 0.25;  ///< doubled per retry, capped at 5s
  double io_timeout_seconds = 10.0;
  bool oneshot = false;  ///< exit 0 when the daemon has no work (tests/benches)
  const std::atomic<bool>* stop = nullptr;  ///< SIGTERM/SIGINT flag from the CLI
  std::function<void(const std::string&)> on_event;
};

/// Blocking worker. Returns the process exit code: run::kExitInterrupted
/// after a stop-flag exit, run::kExitTransientNetwork when the daemon
/// stayed unreachable past connect_attempts, 0 on a oneshot idle exit.
int run_worker(const WorkerOptions& options);

}  // namespace cohesion::serve
