#include "serve/job_table.hpp"

#include <algorithm>
#include <stdexcept>

#include "run/exit_codes.hpp"

namespace cohesion::serve {

JobTable::JobTable(ServeConfig config) : config_(std::move(config)) {}

JobTable::JobState& JobTable::job_or_throw(std::uint64_t job) {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) throw std::runtime_error("unknown job " + std::to_string(job));
  return it->second;
}

const JobTable::JobState& JobTable::job_or_throw(std::uint64_t job) const {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) throw std::runtime_error("unknown job " + std::to_string(job));
  return it->second;
}

std::uint64_t JobTable::add_job(const std::string& name, const Json& experiment_echo,
                                double now, Effects& effects) {
  // Parse first: an invalid spec must fail the submit, not a worker later.
  const run::ExperimentSpec spec = run::ExperimentSpec::from_json(experiment_echo);
  JobState j;
  j.id = next_job_++;
  j.name = name.empty() ? spec.name : name;
  // Store the *normalized* echo. The JSON round trip is exact, so these are
  // the same bytes a single-process report's experiment echo carries —
  // which is what makes the final report byte-identical (contract 13).
  j.echo = spec.to_json();
  j.variants = spec.variant_count();
  j.repeats = std::max<std::size_t>(spec.repeats, 1);
  j.total_runs = j.variants * j.repeats;
  j.attempts.assign(j.variants, 0);
  j.retry_at.assign(j.variants, now);
  j.partition = 1;
  const std::uint64_t id = j.id;
  effects.notes.push_back("job " + std::to_string(id) + " (" + j.name + "): " +
                          std::to_string(j.total_runs) + " runs over " +
                          std::to_string(j.variants) + " variants");
  jobs_.emplace(id, std::move(j));
  return id;
}

void JobTable::replay_job(std::uint64_t id, const std::string& name, const Json& experiment_echo) {
  const run::ExperimentSpec spec = run::ExperimentSpec::from_json(experiment_echo);
  JobState j;
  j.id = id;
  j.name = name.empty() ? spec.name : name;
  j.echo = spec.to_json();
  j.variants = spec.variant_count();
  j.repeats = std::max<std::size_t>(spec.repeats, 1);
  j.total_runs = j.variants * j.repeats;
  j.attempts.assign(j.variants, 0);
  j.retry_at.assign(j.variants, 0.0);
  j.partition = 1;
  jobs_[id] = std::move(j);
  next_job_ = std::max(next_job_, id + 1);
}

void JobTable::replay_outcome(std::uint64_t job, const run::RunOutcome& outcome) {
  Effects ignored;
  record_outcomes(job_or_throw(job), {outcome}, ignored);
}

void JobTable::replay_terminal(std::uint64_t job, bool failed) {
  JobState& j = job_or_throw(job);
  j.done = !failed;
  j.failed = failed;
}

std::uint64_t JobTable::worker_joined(const std::string& name) {
  const std::uint64_t id = next_worker_++;
  workers_[id] = name.empty() ? "worker-" + std::to_string(id) : name;
  return id;
}

void JobTable::worker_left(std::uint64_t worker, double now, Effects& effects) {
  workers_.erase(worker);
  // The dead worker's leases are transient failures: one attempt spent,
  // uncovered variants go under backoff.
  std::vector<std::uint64_t> held;
  for (const auto& [id, lease] : leases_) {
    if (lease.worker == worker) held.push_back(id);
  }
  for (const std::uint64_t id : held) {
    LeaseState lease = leases_.at(id);
    leases_.erase(id);
    revoked_[id] = lease.job;
    JobState& j = job_or_throw(lease.job);
    j.leased_shards.erase(lease.shard);
    j.last_failure = "worker connection lost (lease " + std::to_string(id) + ", shard " +
                     std::to_string(lease.shard) + "/" + std::to_string(lease.of) + ")";
    effects.notes.push_back("job " + std::to_string(lease.job) + ": " + j.last_failure);
    penalize_shard(j, lease.shard, lease.of, /*poison=*/false, now, effects);
    check_terminal(j, effects);
  }
  // Elastic shrink: the surviving workers re-cover the grid under the new
  // width. Outcomes already collected stay; `variant % N` keeps indices
  // and seeds fixed, so the eventual merge is exact either way.
  for (auto& [id, j] : jobs_) {
    if (j.done || j.failed) continue;
    const std::size_t want = desired_partition(j);
    if (want != j.partition) repartition(j, want, effects);
  }
}

bool JobTable::variant_covered(const JobState& j, std::size_t v) const {
  for (std::size_t r = 0; r < j.repeats; ++r) {
    if (j.outcomes.find(v * j.repeats + r) == j.outcomes.end()) return false;
  }
  return true;
}

bool JobTable::variant_poisoned(const JobState& j, std::size_t v) const {
  return j.attempts[v] >= config_.retry.max_attempts;
}

std::size_t JobTable::desired_partition(const JobState& j) const {
  const std::size_t w = std::max<std::size_t>(workers_.size(), 1);
  return std::min(w, std::max<std::size_t>(j.variants, 1));
}

void JobTable::record_outcomes(JobState& j, const std::vector<run::RunOutcome>& outcomes,
                               Effects& effects) {
  for (const run::RunOutcome& o : outcomes) {
    if (o.index >= j.total_runs) {
      effects.notes.push_back("job " + std::to_string(j.id) + ": ignoring outcome with "
                              "out-of-range index " + std::to_string(o.index));
      continue;
    }
    auto it = j.outcomes.find(o.index);
    if (it == j.outcomes.end()) {
      j.outcomes.emplace(o.index, o);
      effects.fresh.emplace_back(j.id, o);
      continue;
    }
    // Attempt-supersedes fold, same semantics as merge_attempt_outcomes:
    // completed beats errored; two completed must be byte-identical; two
    // errored — the later arrival wins.
    const bool have_completed = it->second.error.empty();
    const bool new_completed = o.error.empty();
    if (have_completed && new_completed) {
      if (it->second.to_json().dump() != o.to_json().dump()) {
        // Two workers computed the same grid index and disagreed: either
        // they ran different specs or the engine is nondeterministic.
        // Never pick one silently — fail the job, naming the index.
        j.failed = true;
        j.merge_error = "conflicting completed outcomes for run index " +
                        std::to_string(o.index) +
                        " — attempts produced different bytes for the same grid position";
        effects.failed_jobs.push_back(j.id);
        effects.notes.push_back("job " + std::to_string(j.id) + ": " + j.merge_error);
        return;
      }
      continue;  // identical duplicate — not fresh
    }
    if (!have_completed && new_completed) {
      it->second = o;
      effects.fresh.emplace_back(j.id, o);
      continue;
    }
    if (!have_completed && !new_completed) {
      it->second = o;
      effects.fresh.emplace_back(j.id, o);
    }
    // have_completed && !new_completed: keep the completed outcome.
  }
}

void JobTable::penalize_shard(JobState& j, std::size_t shard, std::size_t of, bool poison,
                              double now, Effects& effects) {
  for (std::size_t v = shard; v < j.variants; v += of) {
    if (variant_covered(j, v)) continue;
    if (poison) {
      j.attempts[v] = config_.retry.max_attempts;
      continue;
    }
    if (j.attempts[v] >= config_.retry.max_attempts) continue;
    ++j.attempts[v];
    if (j.attempts[v] < config_.retry.max_attempts) {
      j.retry_at[v] = now + config_.retry.backoff_seconds(v, j.attempts[v]);
    } else {
      effects.notes.push_back("job " + std::to_string(j.id) + ": variant " +
                              std::to_string(v) + " poisoned after " +
                              std::to_string(j.attempts[v]) + " attempts");
    }
  }
}

void JobTable::repartition(JobState& j, std::size_t new_n, Effects& effects) {
  std::vector<std::uint64_t> held;
  for (const auto& [id, lease] : leases_) {
    if (lease.job == j.id) held.push_back(id);
  }
  for (const std::uint64_t id : held) {
    const LeaseState lease = leases_.at(id);
    leases_.erase(id);
    revoked_[id] = j.id;
    effects.notes.push_back("job " + std::to_string(j.id) + ": revoked lease " +
                            std::to_string(id) + " (shard " + std::to_string(lease.shard) +
                            "/" + std::to_string(lease.of) + ") for re-partition");
  }
  j.leased_shards.clear();
  effects.notes.push_back("job " + std::to_string(j.id) + ": re-partitioned " +
                          std::to_string(j.partition) + " -> " + std::to_string(new_n) +
                          " shards (" + std::to_string(workers_.size()) + " workers)");
  j.partition = new_n;
}

std::optional<Lease> JobTable::try_lease_job(JobState& j, std::uint64_t worker, double now,
                                             Effects& effects) {
  if (j.done || j.failed) return std::nullopt;
  for (std::size_t s = 0; s < j.partition; ++s) {
    if (j.leased_shards.count(s)) continue;
    bool leasable = false;
    for (std::size_t v = s; v < j.variants; v += j.partition) {
      if (!variant_covered(j, v) && !variant_poisoned(j, v) && j.retry_at[v] <= now) {
        leasable = true;
        break;
      }
    }
    if (!leasable) continue;
    Lease lease;
    lease.id = next_lease_++;
    lease.job = j.id;
    lease.shard = s;
    lease.of = j.partition;
    lease.deadline_seconds = config_.lease_timeout_seconds;
    lease.spec = j.echo;
    LeaseState state;
    state.job = j.id;
    state.shard = s;
    state.of = j.partition;
    state.worker = worker;
    state.last_progress = now;
    leases_.emplace(lease.id, state);
    j.leased_shards.insert(s);
    effects.notes.push_back("job " + std::to_string(j.id) + ": leased shard " +
                            std::to_string(s) + "/" + std::to_string(j.partition) +
                            " to worker " + std::to_string(worker) + " (lease " +
                            std::to_string(lease.id) + ")");
    return lease;
  }
  return std::nullopt;
}

std::optional<Lease> JobTable::request_lease(std::uint64_t worker, double now,
                                             Effects& effects) {
  for (auto& [id, j] : jobs_) {
    if (j.done || j.failed) continue;
    // Free re-partition: with no leases outstanding nothing is revoked, so
    // track the worker count eagerly.
    if (active_lease_count(id) == 0) {
      const std::size_t want = desired_partition(j);
      if (want != j.partition) repartition(j, want, effects);
    }
    if (auto lease = try_lease_job(j, worker, now, effects)) return lease;
  }
  // Nothing leasable under current widths. If this idle worker would get a
  // shard under the *desired* width (elastic grow: workers joined after
  // the job started), re-partition — outstanding leases are revoked
  // gracefully and their journaled outcomes come back via release.
  for (auto& [id, j] : jobs_) {
    if (j.done || j.failed) continue;
    const std::size_t want = desired_partition(j);
    if (want == j.partition) continue;
    bool ready_work = false;
    for (std::size_t v = 0; v < j.variants; ++v) {
      if (!variant_covered(j, v) && !variant_poisoned(j, v) && j.retry_at[v] <= now) {
        ready_work = true;
        break;
      }
    }
    if (!ready_work) continue;
    repartition(j, want, effects);
    if (auto lease = try_lease_job(j, worker, now, effects)) return lease;
  }
  return std::nullopt;
}

bool JobTable::heartbeat(std::uint64_t lease_id, std::size_t journal_bytes,
                         std::size_t journal_lines,
                         const std::vector<run::RunOutcome>& outcomes, double now,
                         Effects& effects) {
  auto it = leases_.find(lease_id);
  if (it == leases_.end()) {
    // Revoked or unknown: the data is still welcome, the lease is not.
    auto rv = revoked_.find(lease_id);
    if (rv != revoked_.end() && jobs_.count(rv->second)) {
      JobState& j = jobs_.at(rv->second);
      record_outcomes(j, outcomes, effects);
      check_terminal(j, effects);
    }
    return false;
  }
  LeaseState& lease = it->second;
  // Journal growth is the heartbeat. A heartbeat message whose journal has
  // not grown does NOT extend the lease: a wedged runner pinging through a
  // healthy worker is still wedged (wedged == dead).
  if (journal_bytes > lease.journal_bytes || journal_lines > lease.journal_lines) {
    lease.last_progress = now;
  }
  lease.journal_bytes = journal_bytes;
  lease.journal_lines = journal_lines;
  JobState& j = job_or_throw(lease.job);
  record_outcomes(j, outcomes, effects);
  check_terminal(j, effects);
  if (j.done || j.failed) return false;  // nothing left worth running
  return true;
}

void JobTable::complete(std::uint64_t lease_id, const std::vector<run::RunOutcome>& outcomes,
                        double now, Effects& effects) {
  auto it = leases_.find(lease_id);
  if (it == leases_.end()) {
    auto rv = revoked_.find(lease_id);
    if (rv != revoked_.end() && jobs_.count(rv->second)) {
      JobState& j = jobs_.at(rv->second);
      record_outcomes(j, outcomes, effects);
      check_terminal(j, effects);
    }
    return;
  }
  const LeaseState lease = it->second;
  leases_.erase(it);
  revoked_[lease_id] = lease.job;
  JobState& j = job_or_throw(lease.job);
  j.leased_shards.erase(lease.shard);
  record_outcomes(j, outcomes, effects);
  // A "complete" that left shard variants uncovered is a short delivery —
  // treat it as one failed attempt so the budget still bounds it.
  bool uncovered = false;
  for (std::size_t v = lease.shard; v < j.variants; v += lease.of) {
    if (!variant_covered(j, v)) { uncovered = true; break; }
  }
  if (uncovered && !j.failed) {
    effects.notes.push_back("job " + std::to_string(j.id) + ": lease " +
                            std::to_string(lease_id) + " completed short of covering shard " +
                            std::to_string(lease.shard) + "/" + std::to_string(lease.of));
    penalize_shard(j, lease.shard, lease.of, /*poison=*/false, now, effects);
  }
  check_terminal(j, effects);
}

void JobTable::fail(std::uint64_t lease_id, int exit_code, const std::string& reason,
                    const std::vector<run::RunOutcome>& outcomes, double now,
                    Effects& effects) {
  auto it = leases_.find(lease_id);
  if (it == leases_.end()) {
    auto rv = revoked_.find(lease_id);
    if (rv != revoked_.end() && jobs_.count(rv->second)) {
      JobState& j = jobs_.at(rv->second);
      record_outcomes(j, outcomes, effects);
      check_terminal(j, effects);
    }
    return;
  }
  const LeaseState lease = it->second;
  leases_.erase(it);
  revoked_[lease_id] = lease.job;
  JobState& j = job_or_throw(lease.job);
  j.leased_shards.erase(lease.shard);
  record_outcomes(j, outcomes, effects);
  const bool poison = !run::exit_code_retryable(exit_code) && exit_code != run::kExitSuccess;
  j.last_failure = "shard " + std::to_string(lease.shard) + "/" + std::to_string(lease.of) +
                   " failed (exit " + std::to_string(exit_code) + "): " + reason;
  effects.notes.push_back("job " + std::to_string(j.id) + ": " + j.last_failure +
                          (poison ? " [permanent]" : " [retryable]"));
  penalize_shard(j, lease.shard, lease.of, poison, now, effects);
  check_terminal(j, effects);
}

void JobTable::release(std::uint64_t lease_id, const std::vector<run::RunOutcome>& outcomes,
                       double now, Effects& effects) {
  (void)now;
  auto it = leases_.find(lease_id);
  if (it == leases_.end()) {
    auto rv = revoked_.find(lease_id);
    if (rv != revoked_.end() && jobs_.count(rv->second)) {
      JobState& j = jobs_.at(rv->second);
      record_outcomes(j, outcomes, effects);
      check_terminal(j, effects);
    }
    return;
  }
  const LeaseState lease = it->second;
  leases_.erase(it);
  revoked_[lease_id] = lease.job;
  JobState& j = job_or_throw(lease.job);
  j.leased_shards.erase(lease.shard);
  record_outcomes(j, outcomes, effects);
  effects.notes.push_back("job " + std::to_string(j.id) + ": lease " +
                          std::to_string(lease_id) + " released (shard " +
                          std::to_string(lease.shard) + "/" + std::to_string(lease.of) + ")");
  check_terminal(j, effects);
}

void JobTable::tick(double now, Effects& effects) {
  std::vector<std::uint64_t> expired;
  for (const auto& [id, lease] : leases_) {
    if (now - lease.last_progress > config_.lease_timeout_seconds) expired.push_back(id);
  }
  for (const std::uint64_t id : expired) {
    const LeaseState lease = leases_.at(id);
    leases_.erase(id);
    revoked_[id] = lease.job;
    JobState& j = job_or_throw(lease.job);
    j.leased_shards.erase(lease.shard);
    j.last_failure = "lease " + std::to_string(id) + " expired (shard " +
                     std::to_string(lease.shard) + "/" + std::to_string(lease.of) +
                     ": journal silent past " +
                     std::to_string(config_.lease_timeout_seconds) + "s)";
    effects.notes.push_back("job " + std::to_string(j.id) + ": " + j.last_failure);
    penalize_shard(j, lease.shard, lease.of, /*poison=*/false, now, effects);
    check_terminal(j, effects);
  }
}

std::size_t JobTable::active_lease_count(std::uint64_t job) const {
  std::size_t n = 0;
  for (const auto& [id, lease] : leases_) {
    if (lease.job == job) ++n;
  }
  return n;
}

void JobTable::check_terminal(JobState& j, Effects& effects) {
  if (j.done || j.failed) return;
  if (j.outcomes.size() == j.total_runs) {
    j.done = true;
    effects.done_jobs.push_back(j.id);
    effects.notes.push_back("job " + std::to_string(j.id) + ": complete (" +
                            std::to_string(j.total_runs) + " runs)");
    return;
  }
  if (active_lease_count(j.id) > 0) return;
  for (std::size_t v = 0; v < j.variants; ++v) {
    if (!variant_covered(j, v) && !variant_poisoned(j, v)) return;  // still workable
  }
  j.failed = true;
  effects.failed_jobs.push_back(j.id);
  effects.notes.push_back("job " + std::to_string(j.id) +
                          ": FAILED — every uncovered variant exhausted its attempts");
}

bool JobTable::job_exists(std::uint64_t job) const { return jobs_.count(job) != 0; }
bool JobTable::job_done(std::uint64_t job) const { return job_or_throw(job).done; }
bool JobTable::job_failed(std::uint64_t job) const { return job_or_throw(job).failed; }

int JobTable::job_exit_code(std::uint64_t job) const {
  const JobState& j = job_or_throw(job);
  if (j.failed) return run::kExitPermanent;
  for (const auto& [index, o] : j.outcomes) {
    if (!o.error.empty()) return run::kExitPermanent;
  }
  return run::kExitSuccess;
}

Json JobTable::job_report(std::uint64_t job) const {
  const JobState& j = job_or_throw(job);
  if (!j.done && !j.failed) {
    throw std::runtime_error("job " + std::to_string(job) + " is still running");
  }
  std::vector<run::RunOutcome> all;
  all.reserve(j.outcomes.size());
  for (const auto& [index, o] : j.outcomes) all.push_back(o);  // map: index order
  if (j.done) return run::BatchRunner::report_json_from(j.echo, all);

  // Degraded output, per contract 13: everything recovered plus an
  // explicit statement of what is NOT covered — never a silent wrong
  // answer.
  Json out = Json::object();
  out.set("format", kSupervisedPartialFormat);
  out.set("complete", false);
  out.set("job", j.id);
  out.set("name", j.name);
  out.set("spec", j.echo);
  out.set("total_runs", j.total_runs);
  out.set("covered_runs", all.size());
  out.set("partition", j.partition);
  JsonArray uncovered_variants;
  std::set<std::size_t> uncovered_shards;
  for (std::size_t v = 0; v < j.variants; ++v) {
    if (variant_covered(j, v)) continue;
    Json vd = Json::object();
    vd.set("variant", v);
    vd.set("attempts", j.attempts[v]);
    uncovered_variants.push_back(std::move(vd));
    uncovered_shards.insert(v % j.partition);
  }
  out.set("uncovered_variants", Json(std::move(uncovered_variants)));
  JsonArray shards;
  for (const std::size_t s : uncovered_shards) shards.push_back(Json(s));
  out.set("uncovered_shards", Json(std::move(shards)));
  if (!j.merge_error.empty()) out.set("merge_error", j.merge_error);
  if (!j.last_failure.empty()) out.set("last_failure", j.last_failure);
  out.set("aggregate", run::BatchRunner::aggregate(all).to_json());
  JsonArray runs;
  for (const run::RunOutcome& o : all) runs.push_back(o.to_json());
  out.set("runs", Json(std::move(runs)));
  return out;
}

Json JobTable::status_json() const {
  Json out = Json::object();
  out.set("workers", workers_.size());
  JsonArray jobs;
  for (const auto& [id, j] : jobs_) {
    Json jd = Json::object();
    jd.set("job", id);
    jd.set("name", j.name);
    jd.set("state", j.done ? "done" : (j.failed ? "failed" : "running"));
    jd.set("total_runs", j.total_runs);
    jd.set("covered_runs", j.outcomes.size());
    jd.set("partition", j.partition);
    jd.set("active_leases", active_lease_count(id));
    std::vector<run::RunOutcome> all;
    all.reserve(j.outcomes.size());
    for (const auto& [index, o] : j.outcomes) all.push_back(o);
    jd.set("aggregate", run::BatchRunner::aggregate(all).to_json());
    if (!j.last_failure.empty()) jd.set("last_failure", j.last_failure);
    jobs.push_back(std::move(jd));
  }
  out.set("jobs", Json(std::move(jobs)));
  return out;
}

}  // namespace cohesion::serve
