#include "serve/daemon.hpp"

#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <map>
#include <memory>
#include <vector>

#include "run/exit_codes.hpp"
#include "serve/ledger.hpp"

namespace cohesion::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::vector<run::RunOutcome> parse_outcomes(const Json& msg) {
  std::vector<run::RunOutcome> out;
  const Json* arr = msg.find("outcomes");
  if (arr == nullptr || !arr->is_array()) return out;
  for (const Json& o : arr->items()) out.push_back(run::RunOutcome::from_json(o));
  return out;
}

struct Client {
  LineConnection conn;
  std::uint64_t worker = 0;  ///< 0 until a worker hello
  explicit Client(int fd) : conn(fd) {}
};

class DaemonLoop {
 public:
  explicit DaemonLoop(const DaemonOptions& options)
      : options_(options), table_(options.config), start_(Clock::now()) {}

  int run() {
    JobLedger::Loaded loaded;
    ledger_ = JobLedger::open(options_.ledger_path, loaded);
    replay(loaded);
    listen_fd_ = listen_on(options_.address);
    event("listening on " + options_.address.describe() + " (ledger " + options_.ledger_path +
          ", " + std::to_string(loaded.events.size()) + " events replayed)");

    while (!shutdown_requested_) {
      if (options_.stop != nullptr && options_.stop->load()) {
        event("interrupted (SIGTERM/SIGINT): ledger flushed, " +
              std::to_string(clients_.size()) + " connections closed — restart resumes "
              "every in-flight job from the ledger");
        ::close(listen_fd_);
        return run::kExitInterrupted;
      }
      poll_once();
      Effects effects;
      table_.tick(now(), effects);
      apply(effects);
      maybe_report_progress();
    }
    ::close(listen_fd_);
    event("shutdown requested: exiting");
    return 0;
  }

 private:
  double now() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void event(const std::string& line) {
    if (options_.on_event) options_.on_event(line);
  }

  void replay(const JobLedger::Loaded& loaded) {
    for (const LedgerEvent& e : loaded.events) {
      if (e.event == "job") {
        table_.replay_job(e.job, e.payload.string_or("name", ""), e.payload.at("spec"));
      } else if (e.event == "outcome") {
        table_.replay_outcome(e.job, run::RunOutcome::from_json(e.payload.at("run")));
      } else if (e.event == "done") {
        table_.replay_terminal(e.job, /*failed=*/false);
      } else if (e.event == "failed") {
        table_.replay_terminal(e.job, /*failed=*/true);
      } else {
        throw std::runtime_error("ledger " + options_.ledger_path + ": unknown event \"" +
                                 e.event + "\"");
      }
    }
  }

  /// Ledger + log every effect of a JobTable mutation. Outcome events are
  /// written before the done/failed seals they may have caused.
  void apply(Effects& effects) {
    for (const auto& [job, outcome] : effects.fresh) {
      Json e = Json::object();
      e.set("event", "outcome");
      e.set("job", job);
      e.set("run", outcome.to_json());
      ledger_->append(e);
    }
    for (const std::uint64_t job : effects.done_jobs) {
      Json e = Json::object();
      e.set("event", "done");
      e.set("job", job);
      ledger_->append(e);
    }
    for (const std::uint64_t job : effects.failed_jobs) {
      Json e = Json::object();
      e.set("event", "failed");
      e.set("job", job);
      ledger_->append(e);
    }
    for (const std::string& note : effects.notes) event(note);
  }

  void poll_once() {
    std::vector<struct pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    std::vector<std::uint64_t> order;
    bool buffered = false;
    for (auto& [id, client] : clients_) {
      fds.push_back({client->conn.fd(), POLLIN, 0});
      order.push_back(id);
      buffered = buffered || client->conn.has_buffered_line();
    }
    const int timeout_ms =
        buffered ? 0 : static_cast<int>(options_.poll_interval_seconds * 1000.0);
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms < 1 ? 1 : timeout_ms);
    if (ready < 0 && errno != EINTR) {
      throw run::TransientNetworkError("poll failed");
    }

    if (fds[0].revents & POLLIN) {
      const int fd = accept_on(listen_fd_, options_.io_timeout_seconds);
      if (fd >= 0) {
        clients_.emplace(next_client_++, std::make_unique<Client>(fd));
      }
    }
    std::vector<std::uint64_t> dead;
    for (std::size_t i = 0; i < order.size(); ++i) {
      Client& client = *clients_.at(order[i]);
      const bool readable = (fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) != 0;
      if (!readable && !client.conn.has_buffered_line()) continue;
      if (!serve_client(client)) dead.push_back(order[i]);
    }
    for (const std::uint64_t id : dead) drop_client(id);
  }

  /// Drain every complete message the connection has for us. Returns false
  /// when the connection is finished (EOF or error) and must be dropped.
  bool serve_client(Client& client) {
    try {
      do {
        std::optional<Json> msg = client.conn.receive();
        if (!msg) return false;  // clean EOF
        Json reply = handle(client, *msg);
        client.conn.send(reply);
      } while (client.conn.has_buffered_line());
      return true;
    } catch (const std::exception& e) {
      // Torn line, reset, timeout, or unparseable message: the connection
      // is beyond repair. The worker's leases are reclaimed by drop_client.
      event(std::string("connection error: ") + e.what());
      return false;
    }
  }

  void drop_client(std::uint64_t id) {
    auto it = clients_.find(id);
    if (it == clients_.end()) return;
    const std::uint64_t worker = it->second->worker;
    clients_.erase(it);
    if (worker != 0) {
      Effects effects;
      table_.worker_left(worker, now(), effects);
      event("worker " + std::to_string(worker) + " disconnected (" +
            std::to_string(table_.active_workers()) + " left)");
      apply(effects);
    }
  }

  Json ok() {
    Json r = Json::object();
    r.set("ok", true);
    return r;
  }

  Json error_reply(const std::string& message) {
    Json r = Json::object();
    r.set("ok", false);
    r.set("error", message);
    return r;
  }

  Json handle(Client& client, const Json& msg) {
    const std::string op = msg.string_or("op", "");
    try {
      Effects effects;
      Json reply = ok();
      if (op == "hello") {
        if (msg.string_or("role", "") == "worker") {
          client.worker = table_.worker_joined(msg.string_or("name", ""));
          reply.set("worker", client.worker);
          event("worker " + std::to_string(client.worker) + " (" + msg.string_or("name", "?") +
                ") joined (" + std::to_string(table_.active_workers()) + " active)");
        }
      } else if (op == "submit") {
        const Json* spec = msg.find("spec");
        if (spec == nullptr) return error_reply("submit: missing \"spec\"");
        const std::uint64_t job =
            table_.add_job(msg.string_or("name", ""), *spec, now(), effects);
        // Durability before the ack: once the client hears the job id, a
        // daemon restart must still know the job.
        Json e = Json::object();
        e.set("event", "job");
        e.set("job", job);
        e.set("name", msg.string_or("name", ""));
        e.set("spec", run::ExperimentSpec::from_json(*spec).to_json());
        ledger_->append(e);
        reply.set("job", job);
      } else if (op == "request") {
        if (client.worker == 0) return error_reply("request: hello as a worker first");
        std::optional<Lease> lease = table_.request_lease(client.worker, now(), effects);
        if (lease) {
          Json ld = Json::object();
          ld.set("id", lease->id);
          ld.set("job", lease->job);
          ld.set("shard", lease->shard);
          ld.set("of", lease->of);
          ld.set("deadline_seconds", lease->deadline_seconds);
          ld.set("spec", lease->spec);
          reply.set("lease", std::move(ld));
        } else {
          reply.set("idle", true);
          reply.set("poll_seconds", options_.poll_interval_seconds * 4.0);
        }
      } else if (op == "heartbeat") {
        const bool valid = table_.heartbeat(
            msg.uint_or("lease", 0), static_cast<std::size_t>(msg.uint_or("journal_bytes", 0)),
            static_cast<std::size_t>(msg.uint_or("journal_lines", 0)), parse_outcomes(msg),
            now(), effects);
        reply.set("valid", valid);
      } else if (op == "complete") {
        table_.complete(msg.uint_or("lease", 0), parse_outcomes(msg), now(), effects);
      } else if (op == "fail") {
        table_.fail(msg.uint_or("lease", 0), static_cast<int>(msg.uint_or("exit_code", 1)),
                    msg.string_or("reason", "unspecified"), parse_outcomes(msg), now(),
                    effects);
      } else if (op == "release") {
        table_.release(msg.uint_or("lease", 0), parse_outcomes(msg), now(), effects);
      } else if (op == "report") {
        const std::uint64_t job = msg.uint_or("job", 0);
        if (!table_.job_exists(job)) return error_reply("unknown job " + std::to_string(job));
        if (!table_.job_terminal(job)) {
          reply.set("state", "running");
          const Json status = table_.status_json();
          for (const Json& jd : status.at("jobs").items()) {
            if (jd.uint_or("job", 0) == job) {
              reply.set("covered", jd.at("covered_runs"));
              reply.set("total", jd.at("total_runs"));
            }
          }
        } else {
          reply.set("state", table_.job_done(job) ? "done" : "failed");
          reply.set("exit_code", table_.job_exit_code(job));
          reply.set("report", table_.job_report(job));
        }
      } else if (op == "status") {
        reply.set("status", table_.status_json());
      } else if (op == "shutdown") {
        shutdown_requested_ = true;
      } else {
        return error_reply("unknown op \"" + op + "\"");
      }
      apply(effects);
      return reply;
    } catch (const std::exception& e) {
      return error_reply(e.what());
    }
  }

  void maybe_report_progress() {
    const double t = now();
    if (t - last_status_ < options_.status_interval_seconds) return;
    last_status_ = t;
    const Json status = table_.status_json();
    for (const Json& jd : status.at("jobs").items()) {
      if (jd.string_or("state", "") != "running") continue;
      event("progress: job " + std::to_string(jd.uint_or("job", 0)) + " " +
            std::to_string(jd.uint_or("covered_runs", 0)) + "/" +
            std::to_string(jd.uint_or("total_runs", 0)) + " runs, partition " +
            std::to_string(jd.uint_or("partition", 0)) + ", " +
            std::to_string(jd.uint_or("active_leases", 0)) + " leases; partial aggregate: " +
            jd.at("aggregate").dump());
    }
  }

  DaemonOptions options_;
  JobTable table_;
  Clock::time_point start_;
  std::unique_ptr<JobLedger> ledger_;
  int listen_fd_ = -1;
  std::map<std::uint64_t, std::unique_ptr<Client>> clients_;
  std::uint64_t next_client_ = 1;
  bool shutdown_requested_ = false;
  double last_status_ = 0.0;
};

}  // namespace

int run_daemon(const DaemonOptions& options) { return DaemonLoop(options).run(); }

}  // namespace cohesion::serve
