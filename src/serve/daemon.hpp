// The cohesion_serve daemon loop: one poll(2)-driven thread moving
// line-framed JSON messages between client connections and the JobTable,
// journaling every durable fact to the append-only JobLedger.
//
// Message schema (one request line → one response line; connections are
// persistent — a worker holds one for its whole life):
//
//   {"op":"hello","role":"worker","name":S}  → {"ok":true,"worker":W}
//   {"op":"submit","name":S,"spec":{...}}    → {"ok":true,"job":J}
//       spec = a resolved ExperimentSpec echo (the submit client runs
//       run::load_spec_file, so "extends" never crosses the wire)
//   {"op":"request","worker":W}              → {"ok":true,"lease":{...}}
//                                            | {"ok":true,"idle":true,
//                                               "poll_seconds":T}
//       lease = {"id","job","shard","of","deadline_seconds","spec"}
//   {"op":"heartbeat","lease":L,"journal_bytes":B,"journal_lines":N,
//    "outcomes":[...]}                       → {"ok":true,"valid":B}
//       valid=false: the lease is revoked/expired — stop the runner,
//       flush, send "release", request fresh work
//   {"op":"complete","lease":L,"outcomes":[...]} → {"ok":true}
//   {"op":"fail","lease":L,"exit_code":C,"reason":S,"outcomes":[...]}
//                                            → {"ok":true}
//   {"op":"release","lease":L,"outcomes":[...]}  → {"ok":true}
//   {"op":"report","job":J}  → {"ok":true,"state":"running","covered":..,
//                               "total":..}
//                            | {"ok":true,"state":"done"|"failed",
//                               "exit_code":C,"report":{...}}
//   {"op":"status"}          → {"ok":true,"status":{...}}
//   {"op":"shutdown"}        → {"ok":true}, then the daemon exits 0
//   any error                → {"ok":false,"error":S}
//
// Durability: "job" events are ledgered before the submit is acked;
// outcomes stream into the ledger as workers deliver them; "done"/"failed"
// seal a job. A daemon restart replays the ledger and resumes every
// in-flight job from its journaled outcomes — job ids stay stable, so a
// waiting submit client just reconnects and keeps polling.
//
// SIGTERM/SIGINT (via DaemonOptions::stop, wired by the CLI) exits the
// loop, fsyncs + closes the ledger and returns run::kExitInterrupted —
// the same contract as cohesion_run.
#pragma once

#include <atomic>
#include <functional>
#include <string>

#include "serve/job_table.hpp"
#include "serve/protocol.hpp"

namespace cohesion::serve {

struct DaemonOptions {
  Address address;
  std::string ledger_path = "cohesion_serve.ledger";
  ServeConfig config;
  double poll_interval_seconds = 0.05;   ///< poll(2) cadence / lease-expiry clock
  double status_interval_seconds = 2.0;  ///< progress-event cadence
  double io_timeout_seconds = 10.0;      ///< per-connection send/recv bound
  const std::atomic<bool>* stop = nullptr;  ///< SIGTERM/SIGINT flag from the CLI
  std::function<void(const std::string&)> on_event;  ///< one line per call
};

/// Blocking daemon. Returns the process exit code: 0 after a clean
/// "shutdown" op, run::kExitInterrupted after a stop-flag exit. Throws
/// run::TransientError / TransientNetworkError when the ledger or listen
/// socket cannot be set up, std::runtime_error on a corrupt ledger.
int run_daemon(const DaemonOptions& options);

}  // namespace cohesion::serve
