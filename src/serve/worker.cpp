#include "serve/worker.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "run/batch_runner.hpp"
#include "run/exit_codes.hpp"
#include "run/supervisor.hpp"

namespace cohesion::serve {

namespace {

namespace fs = std::filesystem;

constexpr const char* kPartialFormat = "cohesion-partial-report/1";

std::string sibling_runner() {
  char buf[4096];
  const ::ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "cohesion_run";
  buf[n] = '\0';
  const std::string exe(buf);
  const std::size_t slash = exe.rfind('/');
  if (slash == std::string::npos) return "cohesion_run";
  return exe.substr(0, slash + 1) + "cohesion_run";
}

struct JournalStat {
  std::size_t bytes = 0;
  std::size_t outcome_lines = 0;
};

JournalStat stat_journal(const std::string& path) {
  JournalStat s;
  std::ifstream in(path, std::ios::binary);
  if (!in) return s;
  std::size_t lines = 0;
  char chunk[1 << 14];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    const std::streamsize got = in.gcount();
    s.bytes += static_cast<std::size_t>(got);
    lines += static_cast<std::size_t>(std::count(chunk, chunk + got, '\n'));
    if (got < static_cast<std::streamsize>(sizeof(chunk))) break;
  }
  s.outcome_lines = lines > 0 ? lines - 1 : 0;  // line 1 is the header
  return s;
}

Json outcomes_json(const std::vector<run::RunOutcome>& outcomes, std::size_t from = 0) {
  JsonArray arr;
  for (std::size_t i = from; i < outcomes.size(); ++i) arr.push_back(outcomes[i].to_json());
  return Json(std::move(arr));
}

class WorkerLoop {
 public:
  explicit WorkerLoop(const WorkerOptions& options) : options_(options) {
    if (options_.runner.empty()) options_.runner = sibling_runner();
    if (options_.name.empty()) options_.name = "worker-" + std::to_string(::getpid());
  }

  int run() {
    std::error_code ec;
    fs::create_directories(options_.work_dir, ec);
    if (ec) throw run::TransientError("cannot create work dir " + options_.work_dir);

    for (;;) {
      if (stopped()) return run::kExitInterrupted;
      int exit_code = 0;
      if (!connect_with_retry(exit_code)) return exit_code;
      try {
        const int code = serve_connection();
        if (code >= 0) return code;
        // code < 0: connection lost — reconnect and keep serving. The
        // daemon reclaims our lease through the dropped connection.
      } catch (const run::TransientNetworkError& e) {
        event(std::string("connection lost: ") + e.what() + " — reconnecting");
      }
      conn_.reset();
    }
  }

 private:
  bool stopped() const { return options_.stop != nullptr && options_.stop->load(); }

  void event(const std::string& line) {
    if (options_.on_event) options_.on_event(line);
  }

  /// Sleep in small slices so a stop signal is honored promptly.
  void nap(double seconds) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
    while (!stopped() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  /// Retry the connect under exponential backoff: the daemon may not be up
  /// yet, or may be mid-restart. Exhaustion returns false with exit 5 — the
  /// named transient-network cause, so an outer supervisor retries us.
  bool connect_with_retry(int& exit_code) {
    double delay = options_.connect_backoff_seconds;
    for (std::size_t attempt = 1;; ++attempt) {
      if (stopped()) {
        exit_code = run::kExitInterrupted;
        return false;
      }
      try {
        conn_.emplace(connect_to(options_.address, options_.io_timeout_seconds));
        Json hello = Json::object();
        hello.set("op", "hello");
        hello.set("role", "worker");
        hello.set("name", options_.name);
        const Json reply = transact(hello);
        worker_id_ = reply.uint_or("worker", 0);
        event("connected to " + options_.address.describe() + " as worker " +
              std::to_string(worker_id_));
        return true;
      } catch (const run::TransientNetworkError& e) {
        conn_.reset();
        if (attempt >= options_.connect_attempts) {
          event(std::string("giving up after ") + std::to_string(attempt) +
                " connect attempts: " + e.what());
          exit_code = run::kExitTransientNetwork;
          return false;
        }
        event("connect attempt " + std::to_string(attempt) + "/" +
              std::to_string(options_.connect_attempts) + " failed (" + e.what() +
              "); retrying in " + std::to_string(delay) + "s");
        nap(delay);
        delay = std::min(delay * 2.0, 5.0);
      }
    }
  }

  Json transact(const Json& request) {
    conn_->send(request);
    std::optional<Json> reply = conn_->receive();
    if (!reply) throw run::TransientNetworkError("daemon closed the connection");
    if (!reply->bool_or("ok", false)) {
      throw std::runtime_error("daemon rejected " + request.string_or("op", "?") + ": " +
                               reply->string_or("error", "unspecified"));
    }
    return std::move(*reply);
  }

  /// Serve leases until stop (>=0: process exit code) or connection loss
  /// (-1: caller reconnects).
  int serve_connection() {
    for (;;) {
      if (stopped()) return run::kExitInterrupted;
      Json request = Json::object();
      request.set("op", "request");
      request.set("worker", worker_id_);
      Json reply;
      try {
        reply = transact(request);
      } catch (const run::TransientNetworkError&) {
        return -1;
      }
      if (const Json* lease = reply.find("lease")) {
        const int code = execute_lease(*lease);
        if (code >= 0) return code;
        continue;  // -1: lease finished one way or another, ask again
      }
      if (options_.oneshot && all_jobs_settled()) {
        event("oneshot: no running jobs — exiting");
        return 0;
      }
      nap(std::max(reply.number_or("poll_seconds", options_.idle_poll_seconds),
                   options_.idle_poll_seconds));
    }
  }

  bool all_jobs_settled() {
    Json status_req = Json::object();
    status_req.set("op", "status");
    const Json reply = transact(status_req);
    for (const Json& jd : reply.at("status").at("jobs").items()) {
      if (jd.string_or("state", "") == "running") return false;
    }
    return true;
  }

  struct Runner {
    ::pid_t pid = -1;
    std::string journal;
    std::string partial;
  };

  /// -1: keep serving; >=0: exit the worker with this code.
  int execute_lease(const Json& lease) {
    const std::uint64_t lease_id = lease.uint_or("id", 0);
    const std::uint64_t job = lease.uint_or("job", 0);
    const std::size_t shard = static_cast<std::size_t>(lease.uint_or("shard", 0));
    const std::size_t of = static_cast<std::size_t>(lease.uint_or("of", 1));
    const std::string stem = options_.work_dir + "/job" + std::to_string(job) + "_s" +
                             std::to_string(shard) + "of" + std::to_string(of);
    const std::string spec_path =
        options_.work_dir + "/job" + std::to_string(job) + ".spec.json";
    {
      std::ofstream out(spec_path);
      if (!out) throw run::TransientError("cannot write " + spec_path);
      out << lease.at("spec").dump(2) << '\n';
    }
    Runner r;
    r.journal = stem + ".ckpt";
    r.partial = stem + ".partial.json";
    ::unlink(r.partial.c_str());
    event("lease " + std::to_string(lease_id) + ": job " + std::to_string(job) + " shard " +
          std::to_string(shard) + "/" + std::to_string(of));

    std::vector<std::string> args = {
        options_.runner, spec_path,
        "--shard",       std::to_string(shard) + "/" + std::to_string(of),
        "--resume",      r.journal,
        "--out",         r.partial,
        "--threads",     std::to_string(std::max<std::size_t>(options_.threads, 1)),
    };
    if (options_.throttle_ms > 0) {
      args.push_back("--throttle-ms");
      args.push_back(std::to_string(options_.throttle_ms));
    }
    r.pid = ::fork();
    if (r.pid < 0) {
      send_lease_end("fail", lease_id, {}, run::kExitTransient,
                     std::string("fork failed (") + std::strerror(errno) + ")");
      return -1;
    }
    if (r.pid == 0) {
      const std::string log_path = stem + ".log";
      const int log = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (log >= 0) {
        ::dup2(log, STDOUT_FILENO);
        ::dup2(log, STDERR_FILENO);
        if (log > STDERR_FILENO) ::close(log);
      }
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }

    // Watch loop: reap, heartbeat with journal growth + fresh outcomes,
    // obey revocations and stop signals.
    std::size_t sent = 0;
    for (;;) {
      int st = 0;
      const ::pid_t got = ::waitpid(r.pid, &st, WNOHANG);
      if (got == r.pid) return reap(lease_id, shard, of, r, st);
      if (stopped()) {
        // Graceful stop: the runner flushes its journal on SIGTERM (exit 4
        // contract); everything journaled goes back with the release.
        stop_runner(r);
        try {
          send_lease_end("release", lease_id, journal_outcomes(r.journal), 0, "");
        } catch (const std::exception&) {
          // The daemon reclaims the lease via the dropped connection.
        }
        event("interrupted: lease " + std::to_string(lease_id) +
              " released, journal flushed");
        return run::kExitInterrupted;
      }
      nap(options_.heartbeat_interval_seconds);
      const JournalStat js = stat_journal(r.journal);
      const std::vector<run::RunOutcome> outcomes = journal_outcomes(r.journal);
      Json hb = Json::object();
      hb.set("op", "heartbeat");
      hb.set("lease", lease_id);
      hb.set("journal_bytes", js.bytes);
      hb.set("journal_lines", js.outcome_lines);
      hb.set("outcomes", outcomes_json(outcomes, std::min(sent, outcomes.size())));
      Json reply;
      try {
        reply = transact(hb);
      } catch (const run::TransientNetworkError& e) {
        event(std::string("heartbeat failed: ") + e.what());
        stop_runner(r);
        return -1;  // reconnect; the daemon reclaims via the dropped conn
      }
      sent = outcomes.size();
      if (!reply.bool_or("valid", false)) {
        // Revoked (elastic re-partition) or expired: stop, hand the
        // journal back gracefully, ask for fresh work.
        event("lease " + std::to_string(lease_id) + " revoked — stopping runner");
        stop_runner(r);
        try {
          send_lease_end("release", lease_id, journal_outcomes(r.journal), 0, "");
        } catch (const run::TransientNetworkError&) {
          return -1;
        }
        return -1;
      }
    }
  }

  int reap(std::uint64_t lease_id, std::size_t shard, std::size_t of, const Runner& r,
           int status) {
    const std::vector<run::RunOutcome> outcomes = journal_outcomes(r.journal);
    std::string reason;
    int code = run::kExitTransient;
    bool covered = false;
    if (WIFSIGNALED(status)) {
      reason = "runner killed by signal " + std::to_string(WTERMSIG(status));
    } else if (WIFEXITED(status)) {
      code = WEXITSTATUS(status);
      if (code == run::kExitSuccess) {
        covered = true;
      } else if (code == run::kExitPermanent && usable_partial(r.partial, shard, of)) {
        // In-run errors: the partial report still covers the shard — the
        // merged report carries them exactly like a single process would.
        covered = true;
      } else {
        reason = "runner exited " + std::to_string(code);
      }
    } else {
      reason = "runner ended abnormally";
    }
    try {
      if (covered) {
        event("lease " + std::to_string(lease_id) + " complete (" +
              std::to_string(outcomes.size()) + " outcomes)");
        send_lease_end("complete", lease_id, outcomes, 0, "");
      } else {
        event("lease " + std::to_string(lease_id) + " failed: " + reason);
        send_lease_end("fail", lease_id, outcomes, code, reason);
      }
    } catch (const run::TransientNetworkError&) {
      return -1;  // reconnect; outcomes survive in the journal for re-lease
    }
    return -1;
  }

  void send_lease_end(const char* op, std::uint64_t lease_id,
                      const std::vector<run::RunOutcome>& outcomes, int exit_code,
                      const std::string& reason) {
    Json msg = Json::object();
    msg.set("op", op);
    msg.set("lease", lease_id);
    if (std::string(op) == "fail") {
      msg.set("exit_code", exit_code);
      msg.set("reason", reason);
    }
    msg.set("outcomes", outcomes_json(outcomes));
    (void)transact(msg);
  }

  static std::vector<run::RunOutcome> journal_outcomes(const std::string& path) {
    std::vector<run::RunOutcome> outcomes;
    run::read_journal_outcomes(path, outcomes);
    return outcomes;
  }

  void stop_runner(Runner& r) {
    if (r.pid <= 0) return;
    ::kill(r.pid, SIGTERM);
    int st = 0;
    ::waitpid(r.pid, &st, 0);
    r.pid = -1;
  }

  bool usable_partial(const std::string& path, std::size_t shard, std::size_t of) const {
    try {
      const Json doc = Json::parse_file(path);
      if (doc.string_or("format", "") != kPartialFormat) return false;
      const Json* sh = doc.find("shard");
      if (sh == nullptr) return false;
      return sh->uint_or("index", ~0ull) == shard && sh->uint_or("count", 0) == of;
    } catch (const std::exception&) {
      return false;
    }
  }

  WorkerOptions options_;
  std::optional<LineConnection> conn_;
  std::uint64_t worker_id_ = 0;
};

}  // namespace

int run_worker(const WorkerOptions& options) { return WorkerLoop(options).run(); }

}  // namespace cohesion::serve
