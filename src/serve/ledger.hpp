// Append-only job ledger: the daemon's crash-safe memory.
//
// Same durability design as the checkpoint journal (run/checkpoint.hpp):
// one '\n'-terminated JSON document per line, each append a single
// write(2) on an O_APPEND fd, fsync'd per event — a crash can tear at
// most the final line, and load() drops + truncates it. The file:
//
//   line 1   header: {"format": "cohesion-serve-ledger/1"}
//   line 2+  events, in arrival order:
//     {"event":"job","job":J,"name":"...","spec":{...},"total_runs":N}
//       — a submitted job: resolved experiment echo + grid size. Job ids
//         are assigned once, here, and stay stable across restarts.
//     {"event":"outcome","job":J,"run":{...RunOutcome...}}
//       — one recovered/completed run, exactly as workers reported it.
//         Replay folds duplicates with merge_attempt_outcomes semantics
//         (completed supersedes errored; byte-equal or conflict).
//     {"event":"done","job":J}    — report assembled and byte-complete
//     {"event":"failed","job":J}  — degraded to a supervised-partial doc
//
// Leases are deliberately *not* events: they are soft state. After a
// restart every previously-leased shard is simply unleased again; the
// outcomes already journaled make the re-lease cheap (workers resume from
// their own checkpoints), and the merged result is byte-identical either
// way — that is what contract 13 is for.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "run/json.hpp"

namespace cohesion::serve {

using Json = run::Json;
using JsonArray = run::JsonArray;

inline constexpr const char* kLedgerFormat = "cohesion-serve-ledger/1";

/// One parsed ledger event (see file header for the schema).
struct LedgerEvent {
  std::string event;  ///< "job" | "outcome" | "done" | "failed"
  std::uint64_t job = 0;
  Json payload;  ///< the whole event document, for event-specific fields
};

/// Writer/loader. Thread-compatible (the daemon is single-threaded);
/// construction opens or creates, destruction fsyncs and closes.
class JobLedger {
 public:
  struct Loaded {
    std::vector<LedgerEvent> events;     ///< complete events, file order
    std::size_t dropped_tail_bytes = 0;  ///< torn final line removed, if any
  };

  /// Open `path` for appending, creating it (with a header) when missing,
  /// validating the header and truncating a torn tail when present. The
  /// complete events are returned via `loaded` for replay. Throws
  /// run::TransientError on I/O failure, std::runtime_error on a wrong
  /// format marker or malformed non-tail line (corruption, not a crash).
  static std::unique_ptr<JobLedger> open(const std::string& path, Loaded& loaded);

  /// Append one event as a single fsync'd line. Throws run::TransientError
  /// on write failure — the daemon treats its ledger the way cohesion_run
  /// treats its journal: if durability is gone, crash loudly now rather
  /// than lose jobs silently later.
  void append(const Json& event);

  ~JobLedger();
  JobLedger(const JobLedger&) = delete;
  JobLedger& operator=(const JobLedger&) = delete;

 private:
  JobLedger(int fd, std::string path);
  int fd_ = -1;
  std::string path_;
};

}  // namespace cohesion::serve
