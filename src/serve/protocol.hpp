// Wire layer of the cohesion_serve work-queue: line-delimited JSON over a
// stream socket (TCP or Unix-domain), one request → one response.
//
// Address forms ("unix:PATH" or "HOST:PORT") are parsed by Address::parse;
// listen_on/connect_to return blocking sockets with send/receive timeouts
// already applied, so neither side can wedge forever on a half-dead peer —
// a timeout surfaces as run::TransientNetworkError (exit code 5), which
// the worker's connect-retry loop treats as "daemon not there yet, back
// off and try again" rather than a permanent death.
//
// Framing is one '\n'-terminated JSON document per message (the same
// framing as the checkpoint journal, chosen for the same reason: torn data
// is detectable by the missing newline, and every complete line stands
// alone). LineConnection buffers reads, never splits a write, and treats
// EOF mid-line as a peer failure. Message schema (which keys mean what)
// lives one level up, in daemon/worker — this layer moves Json documents.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "run/json.hpp"

namespace cohesion::serve {

using Json = run::Json;
using JsonArray = run::JsonArray;

/// A daemon endpoint: "unix:PATH" (Unix-domain stream socket at PATH) or
/// "HOST:PORT" (TCP; HOST may be a name or dotted quad).
struct Address {
  bool is_unix = false;
  std::string path;  ///< unix: socket path
  std::string host;  ///< tcp: host
  std::uint16_t port = 0;

  /// Parse the CLI form. Throws std::runtime_error naming the defect on
  /// anything else (empty path, non-numeric/out-of-range port, ...).
  static Address parse(const std::string& text);
  [[nodiscard]] std::string describe() const;
};

/// Create, bind and listen. Unix sockets unlink a stale path first (the
/// daemon owns its socket file the way it owns its ledger). Throws
/// run::TransientNetworkError on bind/listen failure (the address may be
/// in use by a dying predecessor — retryable), std::runtime_error on
/// misuse. Returns the listening fd (caller owns/closes).
int listen_on(const Address& address);

/// Connect with timeouts applied. Throws run::TransientNetworkError on
/// refusal/unreachability/timeout — the retryable "daemon not up" family.
int connect_to(const Address& address, double timeout_seconds);

/// Accept one pending connection (listening fd must be readable, e.g.
/// after poll). Returns -1 when the accept would block or was aborted.
int accept_on(int listen_fd, double timeout_seconds);

/// Blocking line-framed JSON over one connected socket. Not thread-safe;
/// one owner per side. The destructor closes the fd.
class LineConnection {
 public:
  explicit LineConnection(int fd);
  ~LineConnection();
  LineConnection(const LineConnection&) = delete;
  LineConnection& operator=(const LineConnection&) = delete;
  LineConnection(LineConnection&& other) noexcept;
  LineConnection& operator=(LineConnection&& other) noexcept;

  /// Send one document as a single '\n'-terminated line. Throws
  /// run::TransientNetworkError when the peer is gone or the send times
  /// out. (SIGPIPE must be ignored process-wide; the CLIs do.)
  void send(const Json& message);

  /// Receive the next complete line and parse it. std::nullopt on clean
  /// EOF at a message boundary; throws run::TransientNetworkError on
  /// timeout, reset, or EOF mid-line; std::runtime_error on a line that is
  /// not valid JSON (a protocol bug, not an environment failure).
  std::optional<Json> receive();

  [[nodiscard]] int fd() const { return fd_; }
  /// A complete line already sits in the read buffer — receive() will
  /// return without touching the socket. Poll loops must drain these
  /// before sleeping: poll(2) cannot see user-space buffers.
  [[nodiscard]] bool has_buffered_line() const {
    return buffer_.find('\n') != std::string::npos;
  }
  void close_now();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace cohesion::serve
