#include "serve/protocol.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "run/exit_codes.hpp"

namespace cohesion::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw run::TransientNetworkError(what + ": " + std::strerror(errno));
}

void set_timeouts(int fd, double seconds) {
  if (seconds <= 0) return;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

Address Address::parse(const std::string& text) {
  Address out;
  if (text.rfind("unix:", 0) == 0) {
    out.is_unix = true;
    out.path = text.substr(5);
    if (out.path.empty()) throw std::runtime_error("address \"" + text + "\": empty unix socket path");
    if (out.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw std::runtime_error("address \"" + text + "\": unix socket path too long (max " +
                               std::to_string(sizeof(sockaddr_un{}.sun_path) - 1) + " bytes)");
    }
    return out;
  }
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == text.size()) {
    throw std::runtime_error("address \"" + text + "\": expected unix:PATH or HOST:PORT");
  }
  out.host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0' || port < 1 || port > 65535) {
    throw std::runtime_error("address \"" + text + "\": bad port \"" + port_text + "\"");
  }
  out.port = static_cast<std::uint16_t>(port);
  return out;
}

std::string Address::describe() const {
  if (is_unix) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

int listen_on(const Address& address) {
  if (address.is_unix) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(AF_UNIX)");
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    std::strncpy(sun.sun_path, address.path.c_str(), sizeof(sun.sun_path) - 1);
    // A previous daemon's socket file would make bind fail with EADDRINUSE
    // even though nothing listens; the path belongs to whoever binds it.
    (void)::unlink(address.path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) != 0) {
      ::close(fd);
      throw_errno("bind(" + address.describe() + ")");
    }
    if (::listen(fd, 64) != 0) {
      ::close(fd);
      throw_errno("listen(" + address.describe() + ")");
    }
    return fd;
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(address.host.c_str(), std::to_string(address.port).c_str(),
                               &hints, &res);
  if (rc != 0) {
    throw run::TransientNetworkError("getaddrinfo(" + address.describe() +
                                     "): " + ::gai_strerror(rc));
  }
  int fd = -1;
  std::string last_error = "no usable address";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) { last_error = std::strerror(errno); continue; }
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 && ::listen(fd, 64) == 0) break;
    last_error = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    throw run::TransientNetworkError("listen(" + address.describe() + "): " + last_error);
  }
  return fd;
}

int connect_to(const Address& address, double timeout_seconds) {
  int fd = -1;
  if (address.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(AF_UNIX)");
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    std::strncpy(sun.sun_path, address.path.c_str(), sizeof(sun.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) != 0) {
      ::close(fd);
      throw_errno("connect(" + address.describe() + ")");
    }
  } else {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const int rc = ::getaddrinfo(address.host.c_str(), std::to_string(address.port).c_str(),
                                 &hints, &res);
    if (rc != 0) {
      throw run::TransientNetworkError("getaddrinfo(" + address.describe() +
                                       "): " + ::gai_strerror(rc));
    }
    std::string last_error = "no usable address";
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
      fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) { last_error = std::strerror(errno); continue; }
      set_timeouts(fd, timeout_seconds);  // bounds the connect itself too
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      last_error = std::strerror(errno);
      ::close(fd);
      fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
      throw run::TransientNetworkError("connect(" + address.describe() + "): " + last_error);
    }
  }
  set_timeouts(fd, timeout_seconds);
  return fd;
}

int accept_on(int listen_fd, double timeout_seconds) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return -1;
  set_timeouts(fd, timeout_seconds);
  return fd;
}

LineConnection::LineConnection(int fd) : fd_(fd) {}

LineConnection::~LineConnection() { close_now(); }

LineConnection::LineConnection(LineConnection&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

LineConnection& LineConnection::operator=(LineConnection&& other) noexcept {
  if (this != &other) {
    close_now();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void LineConnection::close_now() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void LineConnection::send(const Json& message) {
  if (fd_ < 0) throw run::TransientNetworkError("send: connection already closed");
  std::string line = message.dump();
  line.push_back('\n');
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(fd_, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<Json> LineConnection::receive() {
  if (fd_ < 0) throw run::TransientNetworkError("receive: connection already closed");
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      const std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return Json::parse(line);  // throws std::runtime_error on bad JSON
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (!buffer_.empty()) {
        throw run::TransientNetworkError("recv: peer closed mid-message (torn line)");
      }
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace cohesion::serve
