#include "serve/ledger.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "run/exit_codes.hpp"

namespace cohesion::serve {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("ledger " + path + ": " + what);
}

[[noreturn]] void fail_io(const std::string& path, const std::string& what) {
  throw run::TransientError("ledger " + path + ": " + what);
}

void write_all(int fd, const std::string& path, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ::ssize_t w = ::write(fd, data.data() + off, data.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      fail_io(path, std::string("write failed (") + std::strerror(errno) + ")");
    }
    off += static_cast<std::size_t>(w);
  }
}

}  // namespace

JobLedger::JobLedger(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

JobLedger::~JobLedger() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

std::unique_ptr<JobLedger> JobLedger::open(const std::string& path, Loaded& loaded) {
  loaded = Loaded{};
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      content = buf.str();
    }
  }

  const std::size_t last_nl = content.rfind('\n');
  const std::size_t valid_bytes = last_nl == std::string::npos ? 0 : last_nl + 1;
  loaded.dropped_tail_bytes = content.size() - valid_bytes;

  if (valid_bytes == 0) {
    // Missing, empty, or torn before the first fsync: start fresh.
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
    if (fd < 0) fail_io(path, std::string("cannot open (") + std::strerror(errno) + ")");
    Json header = Json::object();
    header.set("format", kLedgerFormat);
    write_all(fd, path, header.dump() + "\n");
    ::fsync(fd);
    return std::unique_ptr<JobLedger>(new JobLedger(fd, path));
  }

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < valid_bytes) {
    const std::size_t nl = content.find('\n', pos);
    const std::string line = content.substr(pos, nl - pos);
    ++line_no;
    Json doc;
    try {
      doc = Json::parse(line);
    } catch (const std::exception& e) {
      fail(path, "line " + std::to_string(line_no) +
                     " is not valid JSON — corruption beyond tail truncation; move the "
                     "file aside to start a fresh ledger (" + e.what() + ")");
    }
    if (line_no == 1) {
      if (!doc.is_object() || doc.string_or("format", "") != kLedgerFormat) {
        fail(path, std::string("missing/unknown format marker (expected \"") + kLedgerFormat +
                       "\") — not a cohesion serve ledger");
      }
    } else {
      LedgerEvent event;
      event.event = doc.string_or("event", "");
      event.job = doc.uint_or("job", 0);
      if (event.event.empty()) {
        fail(path, "line " + std::to_string(line_no) + " has no \"event\" field");
      }
      event.payload = std::move(doc);
      loaded.events.push_back(std::move(event));
    }
    pos = nl + 1;
  }

  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND, 0644);
  if (fd < 0) fail_io(path, std::string("cannot open (") + std::strerror(errno) + ")");
  if (loaded.dropped_tail_bytes > 0 &&
      ::ftruncate(fd, static_cast<::off_t>(valid_bytes)) != 0) {
    const int err = errno;
    ::close(fd);
    fail_io(path, std::string("cannot truncate torn tail (") + std::strerror(err) + ")");
  }
  return std::unique_ptr<JobLedger>(new JobLedger(fd, path));
}

void JobLedger::append(const Json& event) {
  write_all(fd_, path_, event.dump() + "\n");
  if (::fsync(fd_) != 0) {
    fail_io(path_, std::string("fsync failed (") + std::strerror(errno) + ")");
  }
}

}  // namespace cohesion::serve
