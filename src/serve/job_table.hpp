// The daemon's brain, factored out of all socket/process concerns so every
// scheduling decision is unit-testable with an injected clock: jobs,
// workers, shard leases, elastic re-partitioning and retry/poisoning are
// pure state transitions on this table; the daemon loop (serve/daemon)
// just moves messages between it and the wire.
//
// Scheduling model:
//
//   * A job is one ExperimentSpec. Work is partitioned over variants by
//     `variant % N` (exactly ExperimentSpec::expand_shard) where N is the
//     job's *current* partition width — chosen as min(connected workers,
//     variant count) and changed elastically when workers join or die.
//     Global grid indices and derived seeds never depend on N, so
//     outcomes collected under different widths merge exactly
//     (run::merge_attempt_outcomes semantics) — that is what makes
//     re-partitioning safe (contract 13).
//   * A lease binds (job, shard, N) to a worker. The heartbeat is the
//     worker's checkpoint-journal growth, relayed as (bytes, lines) plus
//     the newly journaled outcomes; a lease whose journal stops growing
//     for lease_timeout_seconds is expired by tick() — wedged == dead,
//     same philosophy as run/supervisor. Expired/failed leases put their
//     uncovered variants under RetryPolicy seeded backoff; a variant that
//     exhausts max_attempts is poisoned.
//   * Re-partitioning revokes outstanding leases *gracefully*: the lease
//     id moves to a revoked set, the worker learns on its next heartbeat,
//     SIGTERMs its runner (journal flushes) and returns every journaled
//     outcome via release — no attempt penalty, nothing lost. Outcomes
//     from revoked/stale leases are still folded in: work is never
//     discarded, only deduplicated.
//   * Terminal states. done: every grid index has an outcome — the report
//     is BatchRunner::report_json_from(echo, outcomes), byte-identical to
//     the single-process `--no-timing` report. failed: no outstanding
//     leases and every uncovered variant poisoned (or a determinism
//     conflict was detected) — the report degrades to a
//     "cohesion-supervised-partial/1" document naming the uncovered
//     variants/shards, never a silent wrong answer.
//
// Time is a double (seconds, any monotonic origin) passed into every
// mutator; the table never reads a clock. Mutators report side effects
// via Effects so the daemon can ledger fresh outcomes and terminal
// transitions without re-deriving them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "run/batch_runner.hpp"
#include "run/json.hpp"
#include "run/spec.hpp"
#include "run/supervisor.hpp"

namespace cohesion::serve {

using Json = run::Json;
using JsonArray = run::JsonArray;

inline constexpr const char* kSupervisedPartialFormat = "cohesion-supervised-partial/1";

struct ServeConfig {
  run::RetryPolicy retry;             ///< per-variant attempt budget + backoff
  double lease_timeout_seconds = 15.0;///< journal silence that kills a lease
};

/// What request_lease hands a worker (the daemon serializes this).
struct Lease {
  std::uint64_t id = 0;
  std::uint64_t job = 0;
  std::size_t shard = 0;   ///< i in --shard i/N
  std::size_t of = 1;      ///< N — the job's partition width at grant time
  double deadline_seconds = 15.0;  ///< lease timeout, for worker pacing
  Json spec;               ///< the job's experiment echo (worker writes it to disk)
};

/// Side effects of one mutation, for the daemon to act on (ledger writes,
/// log lines). `fresh` holds only outcomes not previously known.
struct Effects {
  std::vector<std::pair<std::uint64_t, run::RunOutcome>> fresh;
  std::vector<std::uint64_t> done_jobs;
  std::vector<std::uint64_t> failed_jobs;
  std::vector<std::string> notes;
};

class JobTable {
 public:
  explicit JobTable(ServeConfig config);

  /// Submit: parse + validate the experiment echo, assign the next job id.
  /// The stored echo is ExperimentSpec::from_json(echo).to_json() — the
  /// exact bytes a single-process report would carry (the JSON round trip
  /// is exact). Throws std::runtime_error on an invalid spec.
  std::uint64_t add_job(const std::string& name, const Json& experiment_echo, double now,
                        Effects& effects);

  /// Ledger replay (daemon restart): re-create a job under its original
  /// id, re-fold a journaled outcome, or restore a terminal state.
  void replay_job(std::uint64_t id, const std::string& name, const Json& experiment_echo);
  void replay_outcome(std::uint64_t job, const run::RunOutcome& outcome);
  void replay_terminal(std::uint64_t job, bool failed);

  std::uint64_t worker_joined(const std::string& name);
  /// Connection gone (crash, SIGKILL, network): the worker's leases are
  /// transient failures (attempt++ & backoff on uncovered variants), and
  /// jobs re-partition to the new worker count.
  void worker_left(std::uint64_t worker, double now, Effects& effects);

  /// Hand the calling worker a shard, re-partitioning first when the
  /// worker count has outgrown/shrunk the current width and that unlocks
  /// work. std::nullopt: nothing leasable right now (poll again).
  std::optional<Lease> request_lease(std::uint64_t worker, double now, Effects& effects);

  /// Journal-growth heartbeat + streamed fresh outcomes. Returns false
  /// when the lease is revoked/unknown — the worker must stop its runner
  /// and release. Outcomes are folded in either way.
  bool heartbeat(std::uint64_t lease_id, std::size_t journal_bytes, std::size_t journal_lines,
                 const std::vector<run::RunOutcome>& outcomes, double now, Effects& effects);

  /// Runner exited with a usable partial covering its shard.
  void complete(std::uint64_t lease_id, const std::vector<run::RunOutcome>& outcomes,
                double now, Effects& effects);
  /// Runner died without a usable partial. Retryable exit codes
  /// (run::exit_code_retryable) cost one attempt; permanent ones poison
  /// the shard's uncovered variants outright.
  void fail(std::uint64_t lease_id, int exit_code, const std::string& reason,
            const std::vector<run::RunOutcome>& outcomes, double now, Effects& effects);
  /// Graceful hand-back (revocation ack, worker shutdown): outcomes
  /// folded, no attempt penalty.
  void release(std::uint64_t lease_id, const std::vector<run::RunOutcome>& outcomes,
               double now, Effects& effects);

  /// Clock tick: expire leases whose journal has been silent past the
  /// timeout (attempt++ & backoff, lease revoked).
  void tick(double now, Effects& effects);

  [[nodiscard]] bool job_exists(std::uint64_t job) const;
  [[nodiscard]] bool job_done(std::uint64_t job) const;
  [[nodiscard]] bool job_failed(std::uint64_t job) const;
  [[nodiscard]] bool job_terminal(std::uint64_t job) const {
    return job_done(job) || job_failed(job);
  }
  /// Suggested process exit for a terminal job: 0 (done, no run errors),
  /// 1 (done with run errors, or failed).
  [[nodiscard]] int job_exit_code(std::uint64_t job) const;

  /// done → the byte-identical single-process `--no-timing` report;
  /// failed → the cohesion-supervised-partial/1 document. Throws while
  /// the job is still running.
  [[nodiscard]] Json job_report(std::uint64_t job) const;

  /// Streaming view for `--status` and progress logs: per-job state,
  /// coverage, partition width, active leases, partial aggregate.
  [[nodiscard]] Json status_json() const;

  [[nodiscard]] std::size_t active_workers() const { return workers_.size(); }

 private:
  struct LeaseState {
    std::uint64_t job = 0;
    std::size_t shard = 0;
    std::size_t of = 1;
    std::uint64_t worker = 0;
    double last_progress = 0.0;
    std::size_t journal_bytes = 0;
    std::size_t journal_lines = 0;
  };

  struct JobState {
    std::uint64_t id = 0;
    std::string name;
    Json echo;
    std::size_t total_runs = 0;
    std::size_t variants = 0;
    std::size_t repeats = 1;
    std::map<std::size_t, run::RunOutcome> outcomes;  ///< by global grid index
    std::vector<std::size_t> attempts;  ///< per-variant failed attempts
    std::vector<double> retry_at;       ///< per-variant earliest re-lease time
    std::size_t partition = 1;          ///< current N
    std::set<std::size_t> leased_shards;
    bool done = false;
    bool failed = false;
    std::string merge_error;  ///< determinism conflict, when one killed the job
    std::string last_failure;
  };

  JobState& job_or_throw(std::uint64_t job);
  const JobState& job_or_throw(std::uint64_t job) const;
  [[nodiscard]] bool variant_covered(const JobState& j, std::size_t v) const;
  [[nodiscard]] bool variant_poisoned(const JobState& j, std::size_t v) const;
  [[nodiscard]] std::size_t desired_partition(const JobState& j) const;
  /// Fold outcomes in (attempt-supersedes). A byte-level conflict between
  /// two completed outcomes fails the job, naming the index.
  void record_outcomes(JobState& j, const std::vector<run::RunOutcome>& outcomes,
                       Effects& effects);
  void penalize_shard(JobState& j, std::size_t shard, std::size_t of, bool poison,
                      double now, Effects& effects);
  void repartition(JobState& j, std::size_t new_n, Effects& effects);
  void check_terminal(JobState& j, Effects& effects);
  [[nodiscard]] std::size_t active_lease_count(std::uint64_t job) const;
  std::optional<Lease> try_lease_job(JobState& j, std::uint64_t worker, double now,
                                     Effects& effects);

  ServeConfig config_;
  std::map<std::uint64_t, JobState> jobs_;
  std::map<std::uint64_t, LeaseState> leases_;          ///< active, by lease id
  std::map<std::uint64_t, std::uint64_t> revoked_;      ///< lease id → job (late data still folds)
  std::map<std::uint64_t, std::string> workers_;        ///< worker id → name
  std::uint64_t next_job_ = 1;
  std::uint64_t next_lease_ = 1;
  std::uint64_t next_worker_ = 1;
};

}  // namespace cohesion::serve
