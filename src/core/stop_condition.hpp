// When to stop a run — extracted from Engine::run_until_converged so that a
// declarative RunSpec (src/run) can carry the stop rule as data and a batch
// of runs can share one description.
//
// The engine checks the rule every `check_every` committed activations:
// the run stops when the configuration diameter is <= epsilon, when the
// optional predicate returns true, or when the activation budget is
// exhausted (the scheduler ending the run stops it regardless). A negative
// epsilon never matches, which is how fixed-length runs (the old
// Engine::run(max) pattern) are expressed declaratively.
#pragma once

#include <cstddef>
#include <functional>

namespace cohesion::core {

class Engine;

struct StopCondition {
  double epsilon = 0.05;                  ///< convergence diameter (< 0: never)
  std::size_t max_activations = 200000;   ///< activation budget
  std::size_t check_every = 64;           ///< diameter-check cadence (>= 1)
  /// Simulated-time budget: the run stops once the committed Look-time
  /// frontier reaches this value (checked after every activation, so the
  /// first Look at or past the budget is still committed). <= 0 disables.
  /// This is the simulation clock, not wall time — the rule is exactly as
  /// deterministic as the activation budget.
  double max_time = 0.0;
  /// Extra stop hook, evaluated at the same cadence as the diameter check
  /// (e.g. "a close pair separated" in adversarial benches). Not part of
  /// the JSON-serializable spec; attach it programmatically.
  std::function<bool(const Engine&)> predicate;
};

}  // namespace cohesion::core
