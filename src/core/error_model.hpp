// Perception and motion imprecision (paper §2.3.3 and §6.1).
//
// The pipeline for one Look is:
//   global position -> true local frame (rotation + optional reflection)
//                   -> symmetric angle distortion mu with skew <= lambda
//                   -> multiplicative distance error within [1-delta, 1+delta]
// and for the Move, the intended local destination passes back through the
// *inverse* of the frame (the robot acts in the same distorted coordinate
// system it perceives in), after which a relative motion error that grows
// quadratically with the travelled distance may deflect the endpoint.
#pragma once

#include <cstdint>
#include <random>

#include "geometry/vec2.hpp"

namespace cohesion::core {

/// Symmetric distortion of a local coordinate system:
///   mu(theta) = theta + (lambda/2) * sin(2 * (theta - phase))
/// Continuous bijection with mu(theta+pi) = mu(theta) + pi and derivative in
/// [1 - lambda, 1 + lambda] — exactly the paper's "skew bounded by lambda".
class SymmetricDistortion {
 public:
  SymmetricDistortion() = default;
  SymmetricDistortion(double lambda, double phase);

  [[nodiscard]] double apply(double theta) const;
  /// Inverse by Newton iteration (derivative >= 1 - lambda > 0).
  [[nodiscard]] double invert(double psi) const;
  [[nodiscard]] double skew() const { return lambda_; }

 private:
  double lambda_ = 0.0;
  double phase_ = 0.0;
};

/// Adversarial/random imprecision parameters for a whole simulation.
struct ErrorModel {
  double distance_delta = 0.0;   ///< |perceived d / true d - 1| <= delta
  double skew_lambda = 0.0;      ///< angle distortion skew bound (< 1)
  double motion_quad_coeff = 0.0;  ///< endpoint deviation <= coeff * d^2 / V
  bool random_rotation = true;   ///< local frames rotated arbitrarily
  bool allow_reflection = false; ///< local frames may be mirrored (no chirality)

  [[nodiscard]] bool exact() const {
    return distance_delta == 0.0 && skew_lambda == 0.0 && motion_quad_coeff == 0.0;
  }
};

/// A robot's private coordinate system for one activation, plus the sampled
/// perception noise. Frames are resampled every activation (the paper allows
/// inconsistent frames across robots and across activations of one robot).
class LocalFrame {
 public:
  /// Sample a frame according to `model` using `rng`.
  static LocalFrame sample(const ErrorModel& model, std::mt19937_64& rng);

  /// Identity frame with no distortion (exact perception).
  static LocalFrame identity();

  /// Map a true global displacement (neighbour - self) into perceived local
  /// coordinates, applying rotation/reflection, angle distortion and a fresh
  /// per-observation distance error drawn from `rng`.
  [[nodiscard]] geom::Vec2 perceive(geom::Vec2 true_offset, std::mt19937_64& rng) const;

  /// Map an intended local destination back to a true global displacement.
  /// Distance is preserved; the angle passes through the inverse distortion
  /// and inverse rotation/reflection. (Motion error is applied separately by
  /// the engine because it depends on the realized travel distance.)
  [[nodiscard]] geom::Vec2 intent_to_global(geom::Vec2 local_destination) const;

  [[nodiscard]] double rotation() const { return rotation_; }
  [[nodiscard]] bool reflected() const { return reflect_; }

 private:
  double rotation_ = 0.0;
  bool reflect_ = false;
  SymmetricDistortion distortion_;
  double distance_delta_ = 0.0;
};

/// Deflect the realized endpoint of a motion of length d by a perpendicular
/// offset of magnitude at most coeff * d^2 / v (paper §6.1: quadratic
/// relative motion error is tolerable; linear is not). The sign/magnitude is
/// sampled from `rng`.
geom::Vec2 apply_motion_error(geom::Vec2 start, geom::Vec2 end, double coeff, double v,
                              std::mt19937_64& rng);

}  // namespace cohesion::core
