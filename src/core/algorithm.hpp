// The robot control algorithm interface (the paper's built-in algorithm A).
//
// OBLOT robots are oblivious and identical: compute() is a pure function of
// the current snapshot; one shared, stateless instance controls every robot.
#pragma once

#include <string_view>

#include "core/snapshot.hpp"
#include "geometry/vec2.hpp"

namespace cohesion::core {

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  /// Compute the intended destination, expressed in the same local frame as
  /// the snapshot (the robot itself is at the origin). Returning {0,0} is
  /// the nil movement.
  ///
  /// Must be deterministic and must not retain state across calls
  /// (obliviousness); implementations are const for this reason.
  [[nodiscard]] virtual geom::Vec2 compute(const Snapshot& snapshot) const = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

}  // namespace cohesion::core
