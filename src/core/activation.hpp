// Activation scheduling records and the committed-move trace entries.
#pragma once

#include "core/types.hpp"
#include "geometry/vec2.hpp"

namespace cohesion::core {

/// One Look-Compute-Move activity interval, as proposed by a scheduler.
///
/// Invariants (checked by the engine):
///   t_look <= t_move_start <= t_move_end   (Look instantaneous, Compute and
///                                           Move of finite duration)
///   t_look >= the robot's previous t_move_end (activity intervals of one
///                                              robot never overlap)
///   realized_fraction in (0, 1]            (xi-rigid motion, paper §2.3.2)
struct Activation {
  RobotId robot = kInvalidRobot;
  Time t_look = 0.0;
  Time t_move_start = 0.0;
  Time t_move_end = 0.0;
  /// Fraction of the planned trajectory the adversary lets the robot
  /// realize. The engine treats a nil movement as trivially complete.
  double realized_fraction = 1.0;
};

/// A committed activation: what actually happened.
struct ActivationRecord {
  Activation activation;
  geom::Vec2 from;          ///< position at t_look (== at t_move_start)
  geom::Vec2 planned;       ///< intended global destination after frame mapping
  geom::Vec2 realized;      ///< endpoint actually reached at t_move_end
  std::size_t seen = 0;     ///< number of visible neighbours in the snapshot

  [[nodiscard]] Time start() const { return activation.t_look; }
  [[nodiscard]] Time end() const { return activation.t_move_end; }
};

}  // namespace cohesion::core
