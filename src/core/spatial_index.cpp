#include "core/spatial_index.hpp"

#include <algorithm>
#include <cmath>

namespace cohesion::core {

namespace {

// Cells whose floored coordinate would overflow the packing range are clamped
// onto the boundary cell. Clamping (and the 32-bit key packing below) may
// alias distinct far-away cells onto one bucket; that only enlarges the
// candidate set, and the exact distance predicate discards the aliases, so
// query results are unaffected.
constexpr double kMaxCell = 9.0e15;

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

void SpatialGrid::set_cell_size(double cell_size) {
  cell_ = (std::isfinite(cell_size) && cell_size > 0.0) ? cell_size : 1.0;
  inv_cell_ = 1.0 / cell_;
  points_ = nullptr;
  next_.clear();
}

std::int64_t SpatialGrid::cell_of(double coord) const {
  double c = std::floor(coord * inv_cell_);
  if (std::isnan(c)) c = 0.0;
  c = std::clamp(c, -kMaxCell, kMaxCell);
  return static_cast<std::int64_t>(c);
}

std::uint64_t SpatialGrid::cell_key(std::int64_t cx, std::int64_t cy) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
}

std::size_t SpatialGrid::hash_key(std::uint64_t key) {
  // splitmix64 finalizer: adjacent cell keys must not cluster in the table.
  key += 0x9e3779b97f4a7c15ULL;
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
  key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>(key ^ (key >> 31));
}

std::size_t SpatialGrid::find_slot(std::uint64_t key) const {
  std::size_t i = hash_key(key) & mask_;
  while (slot_stamp_[i] == stamp_ && slot_key_[i] != key) i = (i + 1) & mask_;
  return i;
}

void SpatialGrid::ensure_capacity(std::size_t point_count) {
  // Keep load factor <= 1/2 relative to the worst case of one cell per point.
  const std::size_t want = next_pow2(std::max<std::size_t>(16, point_count * 2));
  if (slot_key_.size() < want) {
    slot_key_.assign(want, 0);
    slot_head_.assign(want, -1);
    slot_stamp_.assign(want, 0);
    mask_ = want - 1;
    stamp_ = 0;
  }
}

void SpatialGrid::rebuild(const std::vector<geom::Vec2>& points) {
  points_ = &points;
  ensure_capacity(points.size());
  ++stamp_;
  next_.assign(points.size(), -1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::uint64_t key = cell_key(cell_of(points[i].x), cell_of(points[i].y));
    const std::size_t slot = find_slot(key);
    if (slot_stamp_[slot] != stamp_) {
      slot_stamp_[slot] = stamp_;
      slot_key_[slot] = key;
      slot_head_[slot] = -1;
    }
    next_[i] = slot_head_[slot];
    slot_head_[slot] = static_cast<std::int32_t>(i);
  }
}

void SpatialGrid::neighbors_within(geom::Vec2 q, double r, bool open_ball,
                                   std::vector<std::size_t>& out) const {
  out.clear();
  if (points_ == nullptr || next_.empty()) return;
  const std::vector<geom::Vec2>& pts = *points_;
  const auto visible = [&](std::size_t i) {
    const double d = q.distance_to(pts[i]);
    return open_ball ? (d < r) : (d <= r + kVisibilityEpsilon);
  };

  // Bounding square of the closed ball (a superset of the open ball too).
  const double rq = std::max(r, 0.0) + kVisibilityEpsilon;
  const std::int64_t cx0 = cell_of(q.x - rq), cx1 = cell_of(q.x + rq);
  const std::int64_t cy0 = cell_of(q.y - rq), cy1 = cell_of(q.y + rq);
  const std::uint64_t span_x = static_cast<std::uint64_t>(cx1 - cx0) + 1;
  const std::uint64_t span_y = static_cast<std::uint64_t>(cy1 - cy0) + 1;
  if (span_x > 64 || span_y > 64 || span_x * span_y > pts.size() + 9) {
    // Query ball covers more cells than there are points: a direct scan is
    // cheaper (and trivially exact). Ids come out already ascending.
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (visible(i)) out.push_back(i);
    }
    return;
  }

  for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
    for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
      const std::size_t slot = find_slot(cell_key(cx, cy));
      if (slot_stamp_[slot] != stamp_) continue;
      for (std::int32_t i = slot_head_[slot]; i >= 0; i = next_[i]) {
        if (visible(static_cast<std::size_t>(i))) {
          out.push_back(static_cast<std::size_t>(i));
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  // Key aliasing can route one point through two scanned buckets only if two
  // scanned cells share a slot key; dedupe to keep the contract exact.
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

}  // namespace cohesion::core
