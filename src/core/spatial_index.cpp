#include "core/spatial_index.hpp"

#include <algorithm>
#include <cmath>

namespace cohesion::core {

namespace {

// Cells whose floored coordinate would overflow the packing range are clamped
// onto the boundary cell. Clamping (and the 32-bit key packing below) may
// alias distinct far-away cells onto one bucket; that only enlarges the
// candidate set, and the exact distance predicate discards the aliases, so
// query results are unaffected.
constexpr double kMaxCell = 9.0e15;

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::uint64_t pack_cell_key(std::int64_t cx, std::int64_t cy) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
}

// One coordinate→cell mapping shared by both grids: the candidate-superset
// guarantee between the rebuild and incremental paths relies on them
// agreeing bit-for-bit.
std::int64_t cell_index(double coord, double inv_cell) {
  double c = std::floor(coord * inv_cell);
  if (std::isnan(c)) c = 0.0;
  c = std::clamp(c, -kMaxCell, kMaxCell);
  return static_cast<std::int64_t>(c);
}

std::size_t mix_cell_key(std::uint64_t key) {
  // splitmix64 finalizer: adjacent cell keys must not cluster in the table.
  key += 0x9e3779b97f4a7c15ULL;
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
  key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>(key ^ (key >> 31));
}

/// Per-axis cap on a segment's bucket span. Committed moves are bounded by
/// ~the visibility radius (= one cell side) plus motion error, so real
/// segments span <= 2-3 cells per axis; anything larger goes to the outlier
/// list rather than flooding the table.
constexpr std::int64_t kMaxSegmentSpan = 8;

}  // namespace

void SpatialGrid::set_cell_size(double cell_size) {
  cell_ = (std::isfinite(cell_size) && cell_size > 0.0) ? cell_size : 1.0;
  inv_cell_ = 1.0 / cell_;
  points_ = nullptr;
  next_.clear();
}

std::int64_t SpatialGrid::cell_of(double coord) const { return cell_index(coord, inv_cell_); }

std::uint64_t SpatialGrid::cell_key(std::int64_t cx, std::int64_t cy) {
  return pack_cell_key(cx, cy);
}

std::size_t SpatialGrid::hash_key(std::uint64_t key) { return mix_cell_key(key); }

std::size_t SpatialGrid::find_slot(std::uint64_t key) const {
  std::size_t i = hash_key(key) & mask_;
  while (slot_stamp_[i] == stamp_ && slot_key_[i] != key) i = (i + 1) & mask_;
  return i;
}

void SpatialGrid::ensure_capacity(std::size_t point_count) {
  // Keep load factor <= 1/2 relative to the worst case of one cell per point.
  const std::size_t want = next_pow2(std::max<std::size_t>(16, point_count * 2));
  if (slot_key_.size() < want) {
    slot_key_.assign(want, 0);
    slot_head_.assign(want, -1);
    slot_stamp_.assign(want, 0);
    mask_ = want - 1;
    stamp_ = 0;
  }
}

void SpatialGrid::rebuild(const std::vector<geom::Vec2>& points) {
  points_ = &points;
  ensure_capacity(points.size());
  ++stamp_;
  next_.assign(points.size(), -1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::uint64_t key = cell_key(cell_of(points[i].x), cell_of(points[i].y));
    const std::size_t slot = find_slot(key);
    if (slot_stamp_[slot] != stamp_) {
      slot_stamp_[slot] = stamp_;
      slot_key_[slot] = key;
      slot_head_[slot] = -1;
    }
    next_[i] = slot_head_[slot];
    slot_head_[slot] = static_cast<std::int32_t>(i);
  }
}

void SpatialGrid::neighbors_within(geom::Vec2 q, double r, bool open_ball,
                                   std::vector<std::size_t>& out) const {
  out.clear();
  if (points_ == nullptr || next_.empty()) return;
  const std::vector<geom::Vec2>& pts = *points_;
  const auto visible = [&](std::size_t i) {
    const double d = q.distance_to(pts[i]);
    return open_ball ? (d < r) : (d <= r + kVisibilityEpsilon);
  };

  // Bounding square of the closed ball (a superset of the open ball too).
  const double rq = std::max(r, 0.0) + kVisibilityEpsilon;
  const std::int64_t cx0 = cell_of(q.x - rq), cx1 = cell_of(q.x + rq);
  const std::int64_t cy0 = cell_of(q.y - rq), cy1 = cell_of(q.y + rq);
  const std::uint64_t span_x = static_cast<std::uint64_t>(cx1 - cx0) + 1;
  const std::uint64_t span_y = static_cast<std::uint64_t>(cy1 - cy0) + 1;
  if (span_x > 64 || span_y > 64 || span_x * span_y > pts.size() + 9) {
    // Query ball covers more cells than there are points: a direct scan is
    // cheaper (and trivially exact). Ids come out already ascending.
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (visible(i)) out.push_back(i);
    }
    return;
  }

  for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
    for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
      const std::size_t slot = find_slot(cell_key(cx, cy));
      if (slot_stamp_[slot] != stamp_) continue;
      for (std::int32_t i = slot_head_[slot]; i >= 0; i = next_[i]) {
        if (visible(static_cast<std::size_t>(i))) {
          out.push_back(static_cast<std::size_t>(i));
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  // Key aliasing can route one point through two scanned buckets only if two
  // scanned cells share a slot key; dedupe to keep the contract exact.
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

void SpatialGrid::candidates_within(geom::Vec2 q, double r,
                                    std::vector<std::size_t>& out) const {
  out.clear();
  if (points_ == nullptr || next_.empty()) return;
  const std::vector<geom::Vec2>& pts = *points_;

  // Identical cell-window arithmetic to neighbors_within, so the returned
  // set is exactly the set that query examines — predicate deferred.
  const double rq = std::max(r, 0.0) + kVisibilityEpsilon;
  const std::int64_t cx0 = cell_of(q.x - rq), cx1 = cell_of(q.x + rq);
  const std::int64_t cy0 = cell_of(q.y - rq), cy1 = cell_of(q.y + rq);
  const std::uint64_t span_x = static_cast<std::uint64_t>(cx1 - cx0) + 1;
  const std::uint64_t span_y = static_cast<std::uint64_t>(cy1 - cy0) + 1;
  if (span_x > 64 || span_y > 64 || span_x * span_y > pts.size() + 9) {
    out.resize(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) out[i] = i;
    return;
  }

  for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
    for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
      const std::size_t slot = find_slot(cell_key(cx, cy));
      if (slot_stamp_[slot] != stamp_) continue;
      for (std::int32_t i = slot_head_[slot]; i >= 0; i = next_[i]) {
        out.push_back(static_cast<std::size_t>(i));
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

// ---------------------------------------------------------------------------
// IncrementalGrid
// ---------------------------------------------------------------------------

std::int64_t IncrementalGrid::cell_of(double coord) const {
  return cell_index(coord, inv_cell_);
}

std::size_t IncrementalGrid::find_slot(std::uint64_t key) const {
  if (table_key_.empty()) return static_cast<std::size_t>(-1);
  std::size_t i = mix_cell_key(key) & mask_;
  while (table_used_[i]) {
    if (table_key_[i] == key) return i;
    i = (i + 1) & mask_;
  }
  return static_cast<std::size_t>(-1);
}

void IncrementalGrid::grow_table(std::size_t min_slots) {
  const std::size_t want = next_pow2(std::max<std::size_t>(16, min_slots));
  if (want <= table_key_.size()) return;
  const std::vector<std::uint64_t> old_key = std::move(table_key_);
  const std::vector<std::int32_t> old_head = std::move(table_head_);
  const std::vector<bool> old_used = std::move(table_used_);
  table_key_.assign(want, 0);
  table_head_.assign(want, -1);
  table_used_.assign(want, false);
  mask_ = want - 1;
  for (std::size_t s = 0; s < old_key.size(); ++s) {
    if (!old_used[s]) continue;
    std::size_t i = mix_cell_key(old_key[s]) & mask_;
    while (table_used_[i]) i = (i + 1) & mask_;  // keys are unique
    table_used_[i] = true;
    table_key_[i] = old_key[s];
    table_head_[i] = old_head[s];
  }
}

std::size_t IncrementalGrid::find_or_insert_slot(std::uint64_t key) {
  if ((live_cells_ + 1) * 2 > table_key_.size()) grow_table(table_key_.size() * 2);
  std::size_t i = mix_cell_key(key) & mask_;
  while (table_used_[i]) {
    if (table_key_[i] == key) return i;
    i = (i + 1) & mask_;
  }
  table_used_[i] = true;
  table_key_[i] = key;
  table_head_[i] = -1;
  ++live_cells_;
  return i;
}

void IncrementalGrid::erase_slot(std::size_t slot) {
  // Backward-shift deletion (linear probing has no tombstones): pull every
  // displaced successor back over the hole so probe chains stay unbroken.
  table_used_[slot] = false;
  --live_cells_;
  std::size_t hole = slot;
  std::size_t j = slot;
  while (true) {
    j = (j + 1) & mask_;
    if (!table_used_[j]) break;
    const std::size_t home = mix_cell_key(table_key_[j]) & mask_;
    // Move j into the hole iff the hole lies on j's probe path (between its
    // home slot and j, cyclically).
    if (((hole - home) & mask_) < ((j - home) & mask_)) {
      table_used_[hole] = true;
      table_key_[hole] = table_key_[j];
      table_head_[hole] = table_head_[j];
      table_used_[j] = false;
      hole = j;
    }
  }
}

void IncrementalGrid::link(RobotId robot, std::uint64_t key) {
  const std::size_t slot = find_or_insert_slot(key);
  std::int32_t node;
  if (!free_nodes_.empty()) {
    node = free_nodes_.back();
    free_nodes_.pop_back();
  } else {
    node = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  Node& nd = nodes_[node];
  nd.key = key;
  nd.robot = static_cast<std::int32_t>(robot);
  nd.prev = -1;
  nd.next = table_head_[slot];
  if (nd.next >= 0) nodes_[nd.next].prev = node;
  table_head_[slot] = node;
  robot_nodes_[robot].push_back(node);
}

void IncrementalGrid::unlink(std::int32_t node) {
  const Node nd = nodes_[node];
  if (nd.next >= 0) nodes_[nd.next].prev = nd.prev;
  if (nd.prev >= 0) {
    nodes_[nd.prev].next = nd.next;
  } else {
    const std::size_t slot = find_slot(nd.key);
    table_head_[slot] = nd.next;
    if (nd.next < 0) erase_slot(slot);
  }
  free_nodes_.push_back(node);
}

void IncrementalGrid::clear_robot(RobotId robot) {
  for (const std::int32_t node : robot_nodes_[robot]) unlink(node);
  robot_nodes_[robot].clear();
}

void IncrementalGrid::set_outlier(RobotId robot, bool on) {
  const bool is = outlier_slot_[robot] >= 0;
  if (on == is) return;
  if (on) {
    outlier_slot_[robot] = static_cast<std::int32_t>(outliers_.size());
    outliers_.push_back(static_cast<std::uint32_t>(robot));
  } else {
    const std::int32_t at = outlier_slot_[robot];
    outliers_[at] = outliers_.back();
    outlier_slot_[outliers_.back()] = at;
    outliers_.pop_back();
    outlier_slot_[robot] = -1;
  }
}

void IncrementalGrid::reset(double cell_size, const std::vector<geom::Vec2>& initial) {
  cell_ = (std::isfinite(cell_size) && cell_size > 0.0) ? cell_size : 1.0;
  inv_cell_ = 1.0 / cell_;
  const std::size_t n = initial.size();
  nodes_.clear();
  free_nodes_.clear();
  robot_nodes_.assign(n, {});
  table_key_.clear();
  table_head_.clear();
  table_used_.clear();
  mask_ = 0;
  live_cells_ = 0;
  grow_table(next_pow2(std::max<std::size_t>(16, n * 2)));
  settle_queue_ = {};
  generation_.assign(n, 0);
  settle_pos_ = initial;
  outliers_.clear();
  outlier_slot_.assign(n, -1);
  for (RobotId r = 0; r < n; ++r) {
    link(r, pack_cell_key(cell_of(initial[r].x), cell_of(initial[r].y)));
  }
}

void IncrementalGrid::update(RobotId robot, geom::Vec2 from, geom::Vec2 to, Time settle_time) {
  ++generation_[robot];
  settle_pos_[robot] = to;
  std::int64_t cx0 = cell_of(std::min(from.x, to.x));
  std::int64_t cx1 = cell_of(std::max(from.x, to.x));
  std::int64_t cy0 = cell_of(std::min(from.y, to.y));
  std::int64_t cy1 = cell_of(std::max(from.y, to.y));
  if (cx1 < cx0) std::swap(cx0, cx1);  // NaN coordinates only
  if (cy1 < cy0) std::swap(cy0, cy1);
  const std::uint64_t tag =
      (static_cast<std::uint64_t>(robot) << 32) | generation_[robot];
  if (cx1 - cx0 >= kMaxSegmentSpan || cy1 - cy0 >= kMaxSegmentSpan) {
    // A teleport-length segment: park the robot on the always-scanned
    // outlier list until it settles, rather than bucketing a huge box.
    clear_robot(robot);
    set_outlier(robot, true);
    settle_queue_.emplace(settle_time, tag);
    return;
  }
  set_outlier(robot, false);
  clear_robot(robot);
  for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
    for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
      link(robot, pack_cell_key(cx, cy));
    }
  }
  if (cx1 > cx0 || cy1 > cy0) settle_queue_.emplace(settle_time, tag);
}

void IncrementalGrid::collapse(RobotId robot) {
  set_outlier(robot, false);
  clear_robot(robot);
  const geom::Vec2 p = settle_pos_[robot];
  link(robot, pack_cell_key(cell_of(p.x), cell_of(p.y)));
}

void IncrementalGrid::advance_to(Time t) {
  while (!settle_queue_.empty() && settle_queue_.top().first <= t) {
    const std::uint64_t tag = settle_queue_.top().second;
    settle_queue_.pop();
    const RobotId robot = static_cast<RobotId>(tag >> 32);
    if (static_cast<std::uint32_t>(tag) == generation_[robot]) collapse(robot);
  }
}

void IncrementalGrid::candidates_near(geom::Vec2 q, double r,
                                      std::vector<std::size_t>& out) const {
  out.clear();
  const std::size_t n = robot_nodes_.size();
  if (n == 0) return;

  // Bounding square of the closed ball (a superset of the open ball too) —
  // identical cell arithmetic to SpatialGrid::neighbors_within.
  const double rq = std::max(r, 0.0) + kVisibilityEpsilon;
  const std::int64_t cx0 = cell_of(q.x - rq), cx1 = cell_of(q.x + rq);
  const std::int64_t cy0 = cell_of(q.y - rq), cy1 = cell_of(q.y + rq);
  const std::uint64_t span_x = static_cast<std::uint64_t>(cx1 - cx0) + 1;
  const std::uint64_t span_y = static_cast<std::uint64_t>(cy1 - cy0) + 1;
  if (span_x > 64 || span_y > 64 || span_x * span_y > n + 9) {
    // Query ball covers more cells than there are robots: every robot is a
    // candidate (trivially a superset; the caller's predicate decides).
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    return;
  }

  for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
    for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
      const std::size_t slot = find_slot(pack_cell_key(cx, cy));
      if (slot == static_cast<std::size_t>(-1)) continue;
      for (std::int32_t i = table_head_[slot]; i >= 0; i = nodes_[i].next) {
        out.push_back(static_cast<std::size_t>(nodes_[i].robot));
      }
    }
  }
  for (const std::uint32_t r_out : outliers_) out.push_back(r_out);
  // Multi-cell segments (and clamping/key aliasing) can surface a robot
  // several times; ids must come out ascending and unique so the caller's
  // RNG-drawing perception loop sees the brute-force order.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

}  // namespace cohesion::core
