// Uniform-grid spatial hash for exact fixed-radius neighbor queries.
//
// Points are bucketed by the integer cell (floor(x / cell), floor(y / cell))
// of a grid whose side is typically the visibility radius V. A query
// enumerates only the cells overlapping the bounding square of the query
// ball — at most 3x3 cells when the query radius is <= the cell side — and
// applies the *exact* visibility predicate (closed ball d <= r + 1e-12, or
// open ball d < r, with d from Vec2::distance_to) to each candidate. The
// grid therefore changes which pairs are examined, never the predicate, so
// results are bit-identical to a brute-force scan over all points. Returned
// ids are sorted ascending, so callers that consume neighbors in id order
// (e.g. the engine's RNG-drawing perception loop) behave identically to the
// O(n) scan they replace.
//
// The bucket table is open-addressed with stamp-based invalidation, so a
// rebuild is O(n) with no per-rebuild allocation in steady state — cheap
// enough to run once per distinct Look time in the engine hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/vec2.hpp"

namespace cohesion::core {

/// Closed-ball slack shared by every visibility predicate in the simulator
/// (engine snapshots, visibility graphs, initial-pair stretch).
inline constexpr double kVisibilityEpsilon = 1e-12;

class SpatialGrid {
 public:
  SpatialGrid() = default;
  explicit SpatialGrid(double cell_size) { set_cell_size(cell_size); }

  /// Side length of a grid cell; non-positive/non-finite values fall back to
  /// 1.0. Invalidates the current index.
  void set_cell_size(double cell_size);
  [[nodiscard]] double cell_size() const { return cell_; }

  /// Index `points`. The vector is borrowed: it must stay alive and
  /// unmodified until the next rebuild. O(n) expected.
  void rebuild(const std::vector<geom::Vec2>& points);

  /// Ids (ascending) of indexed points within the closed (d <= r + 1e-12)
  /// or open (d < r) ball around `q`. Includes the query point itself when
  /// it is indexed; callers filter self-matches by id. `out` is overwritten.
  void neighbors_within(geom::Vec2 q, double r, bool open_ball,
                        std::vector<std::size_t>& out) const;

  [[nodiscard]] std::size_t size() const { return next_.size(); }

 private:
  [[nodiscard]] std::int64_t cell_of(double coord) const;
  [[nodiscard]] static std::uint64_t cell_key(std::int64_t cx, std::int64_t cy);
  [[nodiscard]] static std::size_t hash_key(std::uint64_t key);
  /// Index of the slot holding `key` this generation, or of the free slot
  /// where it would be inserted.
  [[nodiscard]] std::size_t find_slot(std::uint64_t key) const;
  void ensure_capacity(std::size_t point_count);

  double cell_ = 1.0;
  double inv_cell_ = 1.0;
  const std::vector<geom::Vec2>* points_ = nullptr;

  // Open-addressed cell table: slot i holds (key, head of an intrusive chain
  // through next_). A slot is live only when its stamp matches stamp_, which
  // lets rebuild() discard the previous generation without clearing.
  std::vector<std::uint64_t> slot_key_;
  std::vector<std::int32_t> slot_head_;
  std::vector<std::uint64_t> slot_stamp_;
  std::vector<std::int32_t> next_;
  std::uint64_t stamp_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace cohesion::core
