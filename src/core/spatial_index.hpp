// Uniform-grid spatial hash for exact fixed-radius neighbor queries.
//
// Points are bucketed by the integer cell (floor(x / cell), floor(y / cell))
// of a grid whose side is typically the visibility radius V. A query
// enumerates only the cells overlapping the bounding square of the query
// ball — at most 3x3 cells when the query radius is <= the cell side — and
// applies the *exact* visibility predicate (closed ball d <= r + 1e-12, or
// open ball d < r, with d from Vec2::distance_to) to each candidate. The
// grid therefore changes which pairs are examined, never the predicate, so
// results are bit-identical to a brute-force scan over all points. Returned
// ids are sorted ascending, so callers that consume neighbors in id order
// (e.g. the engine's RNG-drawing perception loop) behave identically to the
// O(n) scan they replace.
//
// The bucket table is open-addressed with stamp-based invalidation, so a
// rebuild is O(n) with no per-rebuild allocation in steady state — cheap
// enough to run once per distinct Look time in the engine hot path.
//
// Rebuild-per-time is the right shape for synchronous schedulers (one
// rebuild amortizes over a whole round of Looks), but async schedulers give
// every Look a distinct time, turning it into O(n) per activation.
// IncrementalGrid (below) is the persistently-maintained variant for that
// regime: robots are bucketed by the cells of their *current trajectory
// segment* — which covers the robot's exact position at every time the
// segment is current — so buckets change only on commit (O(1) amortized),
// never per Look time.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "core/types.hpp"
#include "geometry/vec2.hpp"

namespace cohesion::core {

/// Closed-ball slack shared by every visibility predicate in the simulator
/// (engine snapshots, visibility graphs, initial-pair stretch).
inline constexpr double kVisibilityEpsilon = 1e-12;

class SpatialGrid {
 public:
  SpatialGrid() = default;
  explicit SpatialGrid(double cell_size) { set_cell_size(cell_size); }

  /// Side length of a grid cell; non-positive/non-finite values fall back to
  /// 1.0. Invalidates the current index.
  void set_cell_size(double cell_size);
  [[nodiscard]] double cell_size() const { return cell_; }

  /// Index `points`. The vector is borrowed: it must stay alive and
  /// unmodified until the next rebuild. O(n) expected.
  void rebuild(const std::vector<geom::Vec2>& points);

  /// Ids (ascending) of indexed points within the closed (d <= r + 1e-12)
  /// or open (d < r) ball around `q`. Includes the query point itself when
  /// it is indexed; callers filter self-matches by id. `out` is overwritten.
  void neighbors_within(geom::Vec2 q, double r, bool open_ball,
                        std::vector<std::size_t>& out) const;

  /// Ids (ascending, unique) of every indexed point in the cells overlapping
  /// the bounding square of the ball around `q` — the same cells
  /// neighbors_within scans, without the predicate: a superset of both ball
  /// variants for the caller (e.g. the SoA kernel) to filter exactly.
  /// Includes the query point itself when indexed. `out` is overwritten.
  void candidates_within(geom::Vec2 q, double r, std::vector<std::size_t>& out) const;

  [[nodiscard]] std::size_t size() const { return next_.size(); }

 private:
  [[nodiscard]] std::int64_t cell_of(double coord) const;
  [[nodiscard]] static std::uint64_t cell_key(std::int64_t cx, std::int64_t cy);
  [[nodiscard]] static std::size_t hash_key(std::uint64_t key);
  /// Index of the slot holding `key` this generation, or of the free slot
  /// where it would be inserted.
  [[nodiscard]] std::size_t find_slot(std::uint64_t key) const;
  void ensure_capacity(std::size_t point_count);

  double cell_ = 1.0;
  double inv_cell_ = 1.0;
  const std::vector<geom::Vec2>* points_ = nullptr;

  // Open-addressed cell table: slot i holds (key, head of an intrusive chain
  // through next_). A slot is live only when its stamp matches stamp_, which
  // lets rebuild() discard the previous generation without clearing.
  std::vector<std::uint64_t> slot_key_;
  std::vector<std::int32_t> slot_head_;
  std::vector<std::uint64_t> slot_stamp_;
  std::vector<std::int32_t> next_;
  std::uint64_t stamp_ = 0;
  std::size_t mask_ = 0;
};

/// Incrementally-maintained robot→cell index for the async engine hot path.
///
/// Where SpatialGrid buckets *positions at one instant* and must be rebuilt
/// whenever the instant changes, IncrementalGrid buckets each robot by the
/// grid cells overlapped by the bounding box of its current trajectory
/// segment (from → realized). A robot's position at *every* time its
/// segment is current — `from` before the move, the lerp during it,
/// `realized` after — lies inside that box, so the bucket set only has to
/// change when the segment itself changes: once per commit, O(segment
/// cells) ≈ O(1), instead of O(n) per distinct Look time.
///
/// The price is that a query returns *candidates*, not neighbors: a cell
/// can hold robots currently elsewhere along their segment. Callers
/// evaluate each candidate's exact position (O(1) through KinematicState)
/// and apply the exact visibility predicate, so results remain bit-identical
/// to a brute-force scan — the index only ever enlarges the examined set,
/// exactly like SpatialGrid's clamping/aliasing superset guarantees.
///
/// `advance_to(t)` tightens the index as time moves forward: robots whose
/// move ended at or before `t` sit exactly at `realized` forever after, so
/// their multi-cell segment box collapses to the single end cell (a pending
/// min-heap of move-end times makes this O(log in-flight) amortized).
/// Collapsing assumes queries never go back before the collapse time;
/// the engine guards the scheduler's 1e-12 look-ordering slack by serving
/// backward queries through the reference scan instead.
class IncrementalGrid {
 public:
  /// Rebuild from scratch: robot r bucketed at the (degenerate) segment
  /// `initial[r] → initial[r]`. Non-positive/non-finite cell sizes fall
  /// back to 1.0, mirroring SpatialGrid::set_cell_size.
  void reset(double cell_size, const std::vector<geom::Vec2>& initial);

  /// Replace `robot`'s buckets with the cells of the bounding box of the
  /// segment `from → to`; from `settle_time` onward the robot sits exactly
  /// at `to` and advance_to may collapse it to the single end cell.
  /// Segments spanning implausibly many cells (a teleport much longer than
  /// the visibility radius) are kept on an always-scanned outlier list
  /// instead of flooding the table.
  void update(RobotId robot, geom::Vec2 from, geom::Vec2 to, Time settle_time);

  /// Collapse every robot whose `settle_time` is <= `t` to its end cell.
  /// Queries served after this call must be at times >= `t`.
  void advance_to(Time t);

  /// Ids (ascending, unique) of every robot whose bucket cells overlap the
  /// bounding square of the ball around `q` — a superset of the robots
  /// whose exact current position lies within distance r of `q`. The caller
  /// applies the exact visibility predicate. `out` is overwritten.
  void candidates_near(geom::Vec2 q, double r, std::vector<std::size_t>& out) const;

  [[nodiscard]] std::size_t robot_count() const { return robot_nodes_.size(); }
  [[nodiscard]] double cell_size() const { return cell_; }

 private:
  /// One (robot, cell) membership: a node of the cell's doubly-linked list.
  struct Node {
    std::uint64_t key = 0;
    std::int32_t robot = -1;
    std::int32_t prev = -1;  ///< -1: this node is the chain head
    std::int32_t next = -1;
  };

  [[nodiscard]] std::int64_t cell_of(double coord) const;
  [[nodiscard]] std::size_t find_slot(std::uint64_t key) const;  ///< live slot or npos
  std::size_t find_or_insert_slot(std::uint64_t key);
  void erase_slot(std::size_t slot);  ///< backward-shift deletion
  void grow_table(std::size_t min_slots);
  void link(RobotId robot, std::uint64_t key);
  void unlink(std::int32_t node);
  void clear_robot(RobotId robot);
  void set_outlier(RobotId robot, bool on);
  void collapse(RobotId robot);

  double cell_ = 1.0;
  double inv_cell_ = 1.0;

  // Open-addressed cell table (linear probing, backward-shift deletion):
  // live slots map a cell key to the head node of that cell's member list.
  std::vector<std::uint64_t> table_key_;
  std::vector<std::int32_t> table_head_;
  std::vector<bool> table_used_;
  std::size_t mask_ = 0;
  std::size_t live_cells_ = 0;

  std::vector<Node> nodes_;
  std::vector<std::int32_t> free_nodes_;
  std::vector<std::vector<std::int32_t>> robot_nodes_;  ///< robot → its nodes

  // Pending collapses: (settle_time, robot | generation). A stale entry
  // (robot re-committed since push) is recognized by its generation and
  // skipped on pop.
  std::priority_queue<std::pair<Time, std::uint64_t>,
                      std::vector<std::pair<Time, std::uint64_t>>,
                      std::greater<>>
      settle_queue_;
  std::vector<std::uint32_t> generation_;
  std::vector<geom::Vec2> settle_pos_;  ///< end-of-segment position per robot

  // Robots whose segment box exceeded the bucket-span cap: always scanned.
  std::vector<std::uint32_t> outliers_;
  std::vector<std::int32_t> outlier_slot_;  ///< index into outliers_, or -1
};

}  // namespace cohesion::core
