// Post-hoc validation that a trace obeys a scheduling model (paper §2.3.1
// and Fig. 1-2). Tests use these to certify the generative schedulers; the
// benches use them to certify that counterexample schedules really are
// 1-Async / 2-NestA / k-Async.
#pragma once

#include "core/trace.hpp"
#include "core/types.hpp"

namespace cohesion::core {

/// Largest number of activations of any single robot whose Look falls
/// within one activity interval [t_look, t_move_end] of another robot.
/// A trace is k-Async iff this is <= k. (Intervals that merely touch at an
/// endpoint do not count.)
std::size_t max_activations_within_interval(const Trace& trace);

/// True iff all pairs of activity intervals are disjoint or nested — the
/// NestA restriction. (Sharing a single endpoint counts as crossing.)
bool is_nested_activation(const Trace& trace);

/// True iff the trace is k-NestA: nested and at most k activations of one
/// robot within any single interval of another.
bool is_k_nesta(const Trace& trace, std::size_t k);

/// True iff the trace is k-Async.
bool is_k_async(const Trace& trace, std::size_t k);

/// True iff the trace is SSync-shaped: time partitions into rounds of length
/// `round_length` such that every activation is fully contained in one round
/// and every activated robot's interval spans look-to-move within the round.
bool is_ssync(const Trace& trace, double round_length = 1.0);

/// Fairness check: no robot goes more than `window` time units without
/// starting an activation, over the traced horizon (final partial window
/// exempt).
bool is_fair(const Trace& trace, Time window);

}  // namespace cohesion::core
