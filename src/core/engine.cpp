#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geometry/convex_hull.hpp"

namespace cohesion::core {

using geom::Vec2;

Engine::Engine(std::vector<Vec2> initial, const Algorithm& algorithm, Scheduler& scheduler,
               EngineConfig config)
    : algorithm_(algorithm),
      scheduler_(scheduler),
      config_(std::move(config)),
      trace_(std::move(initial)),
      busy_until_(trace_.robot_count(), 0.0),
      activation_counts_(trace_.robot_count(), 0),
      crashed_(trace_.robot_count(), false),
      rng_(config_.seed) {
  if (trace_.robot_count() == 0) throw std::invalid_argument("Engine: empty configuration");
}

Snapshot Engine::honest_snapshot(RobotId robot, Time t, const LocalFrame& frame) {
  const Vec2 self = trace_.position(robot, t);
  const double v = config_.visibility.radius_of(robot);
  Snapshot snap;
  for (RobotId other = 0; other < trace_.robot_count(); ++other) {
    if (other == robot) continue;
    const Vec2 p = trace_.position(other, t);
    const double d = self.distance_to(p);
    const bool visible = config_.visibility.open_ball ? (d < v) : (d <= v + 1e-12);
    if (!visible) continue;
    snap.neighbours.push_back({frame.perceive(p - self, rng_), false});
  }
  if (!config_.visibility.multiplicity_detection) {
    // Co-located robots are perceived as a single robot (paper footnote 4):
    // collapse perceived positions closer than a resolution threshold.
    auto& v_ = snap.neighbours;
    std::vector<ObservedRobot> collapsed;
    for (const auto& o : v_) {
      const bool dup = std::any_of(collapsed.begin(), collapsed.end(), [&](const ObservedRobot& c) {
        return geom::almost_equal(c.position, o.position, 1e-12);
      });
      if (!dup) collapsed.push_back(o);
    }
    v_ = std::move(collapsed);
  } else {
    for (auto& o : snap.neighbours) {
      o.multiplicity = std::count_if(snap.neighbours.begin(), snap.neighbours.end(),
                                     [&](const ObservedRobot& c) {
                                       return geom::almost_equal(c.position, o.position, 1e-12);
                                     }) > 1;
    }
  }
  return snap;
}

bool Engine::step() {
  const std::optional<Activation> proposal = scheduler_.next(*this);
  if (!proposal) return false;
  const Activation a = *proposal;

  // --- Contract checks (scheduler bugs should fail loudly). ---
  if (a.robot >= trace_.robot_count()) throw std::logic_error("Engine: bad robot id");
  if (a.t_look + 1e-12 < frontier_) throw std::logic_error("Engine: look time before frontier");
  if (a.t_look + 1e-12 < busy_until_[a.robot]) {
    throw std::logic_error("Engine: robot activated while still active");
  }
  if (!(a.t_look <= a.t_move_start + 1e-12 && a.t_move_start <= a.t_move_end + 1e-12)) {
    throw std::logic_error("Engine: activation phases out of order");
  }
  if (!(a.realized_fraction > 0.0 && a.realized_fraction <= 1.0)) {
    throw std::logic_error("Engine: realized_fraction outside (0, 1]");
  }

  // --- Look ---
  const LocalFrame frame = config_.error.exact() && !config_.error.random_rotation
                               ? LocalFrame::identity()
                               : LocalFrame::sample(config_.error, rng_);
  Snapshot snap = honest_snapshot(a.robot, a.t_look, frame);
  if (perception_hook_) snap = perception_hook_(a.robot, a.t_look, snap);

  // --- Compute ---
  const Vec2 self = trace_.position(a.robot, a.t_look);
  Vec2 local_destination = crashed_[a.robot] ? Vec2{0.0, 0.0} : algorithm_.compute(snap);
  const Vec2 planned = self + frame.intent_to_global(local_destination);

  // --- Move (xi-rigid truncation + motion error) ---
  Vec2 realized = geom::lerp(self, planned, a.realized_fraction);
  realized = apply_motion_error(self, realized, config_.error.motion_quad_coeff,
                                config_.visibility.radius_of(a.robot), rng_);

  ActivationRecord rec{a, self, planned, realized, snap.size()};
  trace_.record(rec);
  busy_until_[a.robot] = a.t_move_end;
  frontier_ = a.t_look;
  ++activation_counts_[a.robot];
  return true;
}

std::size_t Engine::run(std::size_t max_activations) {
  std::size_t done = 0;
  while (done < max_activations && step()) ++done;
  return done;
}

bool Engine::run_until_converged(double epsilon, std::size_t max_activations,
                                 std::size_t check_every) {
  std::size_t done = 0;
  while (done < max_activations) {
    for (std::size_t i = 0; i < check_every && done < max_activations; ++i, ++done) {
      if (!step()) return current_diameter() <= epsilon;
    }
    if (current_diameter() <= epsilon) return true;
  }
  return current_diameter() <= epsilon;
}

std::vector<Vec2> Engine::current_configuration() const {
  // Evaluate at the end of all committed motion: the configuration "if
  // nothing further is scheduled".
  return trace_.configuration(trace_.end_time() + 1.0);
}

double Engine::current_diameter() const {
  return geom::set_diameter(current_configuration());
}

}  // namespace cohesion::core
