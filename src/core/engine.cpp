#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "geometry/convex_hull.hpp"

namespace cohesion::core {

using geom::Vec2;

namespace {

/// Resolution below which two perceived positions count as one robot
/// (paper footnote 4).
constexpr double kColocationEps = 1e-12;

}  // namespace

Engine::Engine(std::vector<Vec2> initial, const Algorithm& algorithm, Scheduler& scheduler,
               EngineConfig config)
    : algorithm_(algorithm),
      scheduler_(scheduler),
      config_(std::move(config)),
      trace_(std::move(initial)),
      kin_(trace_.initial_configuration()),
      busy_until_(trace_.robot_count(), 0.0),
      activation_counts_(trace_.robot_count(), 0),
      crashed_(trace_.robot_count(), false),
      rng_(config_.seed) {
  if (trace_.robot_count() == 0) throw std::invalid_argument("Engine: empty configuration");
  if (!config_.record_history) {
    if (!config_.use_spatial_index) {
      throw std::invalid_argument(
          "Engine: record_history = false requires use_spatial_index — the reference "
          "scan path reconstructs positions from the Trace");
    }
    // The scheduler's 1e-12 look-ordering slack can query one segment back;
    // without a Trace that history must live in the kinematic state.
    kin_.set_keep_previous(true);
  }
  if (config_.soa_kernel && !config_.use_spatial_index) {
    throw std::invalid_argument(
        "Engine: soa_kernel requires use_spatial_index — the SoA filter sits "
        "behind the grid candidate queries, and the brute-force scan is the "
        "scalar reference it is certified against");
  }
  double max_radius = config_.visibility.radius;
  if (!config_.visibility.per_robot_radii.empty()) {
    max_radius = *std::max_element(config_.visibility.per_robot_radii.begin(),
                                   config_.visibility.per_robot_radii.end());
  }
  grid_.set_cell_size(max_radius);
  if (config_.use_spatial_index && config_.incremental_index) {
    kin_.set_track_dirty(true);
    inc_grid_.reset(max_radius, trace_.initial_configuration());
    positions_now_.resize(trace_.robot_count());
    pos_epoch_.assign(trace_.robot_count(), 0);
  }
  if (config_.soa_kernel) soa_segments_.reset(trace_.initial_configuration());
}

Vec2 Engine::history_position(RobotId robot, Time t) const {
  return config_.record_history ? trace_.position(robot, t) : kin_.position_bounded(robot, t);
}

Vec2 Engine::position(RobotId robot, Time t) const {
  if (config_.use_spatial_index && t >= kin_.segment_start(robot)) {
    return kin_.position_at(robot, t);
  }
  return history_position(robot, t);
}

void Engine::refresh_grid(Time t) {
  if (grid_valid_ && grid_time_ == t) return;
  const std::size_t n = trace_.robot_count();
  positions_now_.resize(n);
  for (RobotId r = 0; r < n; ++r) {
    // The cache is exact from the current segment's Look onward; the
    // scheduler may propose a Look up to 1e-12 before the frontier, where
    // only the Trace is.
    positions_now_[r] = t >= kin_.segment_start(r) ? kin_.position_at(r, t)
                                                   : history_position(r, t);
  }
  grid_.rebuild(positions_now_);
  grid_time_ = t;
  grid_valid_ = true;
}

void Engine::snapshot_via_grid(RobotId robot, Time t, const LocalFrame& frame, Snapshot& snap) {
  refresh_grid(t);
  const Vec2 self = positions_now_[robot];
  const double v = config_.visibility.radius_of(robot);
  if (config_.soa_kernel) {
    // SoA kernel: pull the same cell window unfiltered, gather the instant
    // positions into lanes, and let the certified squared-distance filter
    // make the (exact) visibility decisions.
    grid_.candidates_within(self, v, neighbor_ids_);
    soa_filter_.gather_positions(positions_now_, neighbor_ids_, robot);
    soa_filter_.filter(self, v, config_.visibility.open_ball);
    append_soa_survivors(frame, snap);
    return;
  }
  grid_.neighbors_within(self, v, config_.visibility.open_ball, neighbor_ids_);
  snap.neighbours.reserve(neighbor_ids_.size());
  for (const std::size_t other : neighbor_ids_) {
    if (other == robot) continue;
    snap.neighbours.push_back({frame.perceive(positions_now_[other] - self, rng_), false});
  }
}

Vec2 Engine::cached_position(RobotId robot) {
  // All segment starts are <= the incremental query time (see
  // snapshot_via_incremental), so the kinematic cache alone is exact here.
  if (pos_epoch_[robot] != epoch_) {
    positions_now_[robot] = kin_.position_at(robot, pos_time_);
    pos_epoch_[robot] = epoch_;
  }
  return positions_now_[robot];
}

void Engine::snapshot_via_incremental(RobotId robot, Time t, const LocalFrame& frame,
                                      Snapshot& snap) {
  // Re-bucket exactly the robots whose segments changed since the last
  // snapshot — between consecutive Look times that is the just-moved robot,
  // not all n. Their cached positions may describe the replaced segment.
  for (const RobotId r : kin_.dirty()) {
    inc_grid_.update(r, kin_.segment_from(r), kin_.segment_realized(r), kin_.segment_end(r));
    pos_epoch_[r] = 0;
  }
  kin_.clear_dirty();

  if (t < inc_time_) {
    // The scheduler's 1e-12 look-ordering slack can place this Look before
    // the previous one, where positions live on segments the buckets no
    // longer cover (and collapsed robots may still be mid-move). Serve the
    // query through the reference scan; the grid state remains consistent
    // for the next forward query.
    snapshot_via_scan(robot, t, frame, snap);
    return;
  }
  inc_grid_.advance_to(t);
  inc_time_ = t;
  if (pos_time_ != t) {
    pos_time_ = t;
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: stamps are ambiguous, reset them all
      std::fill(pos_epoch_.begin(), pos_epoch_.end(), 0);
      epoch_ = 1;
    }
  }

  const Vec2 self = cached_position(robot);
  const double v = config_.visibility.radius_of(robot);
  inc_grid_.candidates_near(self, v, neighbor_ids_);
  if (config_.soa_kernel) {
    // SoA kernel: evaluate every candidate's segment at t straight from the
    // SoA lanes (KinematicState::eval's exact arithmetic, vectorizably —
    // no per-candidate epoch bookkeeping), then filter with the certified
    // squared-distance bounds.
    soa_filter_.gather_segments(soa_segments_, neighbor_ids_, robot, t);
    soa_filter_.filter(self, v, config_.visibility.open_ball);
    append_soa_survivors(frame, snap);
    return;
  }
  snap.neighbours.reserve(neighbor_ids_.size());
  for (const std::size_t other : neighbor_ids_) {
    if (other == robot) continue;
    const Vec2 p = cached_position(other);
    const double d = self.distance_to(p);
    const bool visible = config_.visibility.open_ball ? (d < v) : (d <= v + kVisibilityEpsilon);
    if (!visible) continue;
    snap.neighbours.push_back({frame.perceive(p - self, rng_), false});
  }
}

void Engine::snapshot_via_scan(RobotId robot, Time t, const LocalFrame& frame, Snapshot& snap) {
  // The reference path proper always has a Trace (ctor contract); the
  // incremental path's backward-time fallback may not, and goes through the
  // bounded history instead — bit-identical wherever both can answer.
  const Vec2 self = history_position(robot, t);
  const double v = config_.visibility.radius_of(robot);
  for (RobotId other = 0; other < trace_.robot_count(); ++other) {
    if (other == robot) continue;
    const Vec2 p = history_position(other, t);
    const double d = self.distance_to(p);
    const bool visible = config_.visibility.open_ball ? (d < v) : (d <= v + kVisibilityEpsilon);
    if (!visible) continue;
    snap.neighbours.push_back({frame.perceive(p - self, rng_), false});
  }
}

void Engine::append_soa_survivors(const LocalFrame& frame, Snapshot& snap) {
  const std::size_t m = soa_filter_.survivor_count();
  snap.neighbours.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    // Survivors are ascending by robot id with self removed, and the stored
    // offset lanes are the scalar paths' `p - self` bit for bit — so this
    // perceive() loop draws RNG in exactly the scalar order and values.
    snap.neighbours.push_back({frame.perceive(soa_filter_.survivor_offset(i), rng_), false});
  }
}

void Engine::resolve_multiplicity(Snapshot& snap) {
  auto& nb = snap.neighbours;
  if (!config_.visibility.multiplicity_detection) {
    // Co-located robots are perceived as a single robot (paper footnote 4):
    // collapse perceived positions closer than a resolution threshold.
    std::vector<ObservedRobot> collapsed;
    for (const auto& o : nb) {
      const bool dup = std::any_of(collapsed.begin(), collapsed.end(), [&](const ObservedRobot& c) {
        return geom::almost_equal(c.position, o.position, kColocationEps);
      });
      if (!dup) collapsed.push_back(o);
    }
    nb = std::move(collapsed);
    return;
  }
  // Flag every robot that shares its perceived position with another.
  // Sort-and-group: after sorting by (x, y), any almost-equal partner of an
  // element lies in the forward window where the x gap is still <= eps, so
  // one windowed sweep replaces the quadratic count_if per element.
  const std::size_t k = nb.size();
  if (k < 2) return;
  mult_order_.resize(k);
  std::iota(mult_order_.begin(), mult_order_.end(), 0u);
  std::sort(mult_order_.begin(), mult_order_.end(), [&](std::uint32_t a, std::uint32_t b) {
    const Vec2 pa = nb[a].position, pb = nb[b].position;
    return pa.x != pb.x ? pa.x < pb.x : pa.y < pb.y;
  });
  for (std::size_t i = 0; i < k; ++i) {
    const Vec2 pi = nb[mult_order_[i]].position;
    for (std::size_t j = i + 1; j < k; ++j) {
      const Vec2 pj = nb[mult_order_[j]].position;
      if (pj.x - pi.x > kColocationEps) break;
      if (std::abs(pj.y - pi.y) <= kColocationEps) {
        nb[mult_order_[i]].multiplicity = true;
        nb[mult_order_[j]].multiplicity = true;
      }
    }
  }
}

Snapshot Engine::honest_snapshot(RobotId robot, Time t, const LocalFrame& frame) {
  Snapshot snap;
  if (!config_.use_spatial_index) {
    snapshot_via_scan(robot, t, frame, snap);
  } else if (config_.incremental_index) {
    snapshot_via_incremental(robot, t, frame, snap);
  } else {
    snapshot_via_grid(robot, t, frame, snap);
  }
  resolve_multiplicity(snap);
  return snap;
}

bool Engine::step() {
  const std::optional<Activation> proposal = scheduler_.next(*this);
  if (!proposal) return false;
  const Activation a = *proposal;

  // --- Contract checks (scheduler bugs should fail loudly). ---
  if (a.robot >= trace_.robot_count()) throw std::logic_error("Engine: bad robot id");
  if (a.t_look + 1e-12 < frontier_) throw std::logic_error("Engine: look time before frontier");
  if (a.t_look + 1e-12 < busy_until_[a.robot]) {
    throw std::logic_error("Engine: robot activated while still active");
  }
  if (!(a.t_look <= a.t_move_start + 1e-12 && a.t_move_start <= a.t_move_end + 1e-12)) {
    throw std::logic_error("Engine: activation phases out of order");
  }
  if (!(a.realized_fraction > 0.0 && a.realized_fraction <= 1.0)) {
    throw std::logic_error("Engine: realized_fraction outside (0, 1]");
  }

  // --- Look ---
  const LocalFrame frame = config_.error.exact() && !config_.error.random_rotation
                               ? LocalFrame::identity()
                               : LocalFrame::sample(config_.error, rng_);
  Snapshot snap = honest_snapshot(a.robot, a.t_look, frame);
  if (perception_hook_) snap = perception_hook_(a.robot, a.t_look, snap);

  // --- Compute ---
  const Vec2 self = position(a.robot, a.t_look);
  Vec2 local_destination = crashed_[a.robot] ? Vec2{0.0, 0.0} : algorithm_.compute(snap);
  const Vec2 planned = self + frame.intent_to_global(local_destination);

  // --- Move (xi-rigid truncation + motion error) ---
  Vec2 realized = geom::lerp(self, planned, a.realized_fraction);
  realized = apply_motion_error(self, realized, config_.error.motion_quad_coeff,
                                config_.visibility.radius_of(a.robot), rng_);

  ActivationRecord rec{a, self, planned, realized, snap.size()};
  if (config_.record_history) trace_.record(rec);
  kin_.commit(rec);
  if (config_.soa_kernel) soa_segments_.commit(rec);
  if (sink_) sink_->append(rec);
  end_time_ = std::max(end_time_, a.t_move_end);
  // A commit leaves every position at its own Look time unchanged — except
  // a zero-duration move (t_move_end == t_look), which teleports the robot
  // to `realized` at that very instant; a grid built at this Look must not
  // serve later Looks at it then.
  if (grid_valid_ && a.t_move_end <= grid_time_) grid_valid_ = false;
  busy_until_[a.robot] = a.t_move_end;
  frontier_ = a.t_look;
  ++activation_counts_[a.robot];
  return true;
}

std::size_t Engine::run(std::size_t max_activations) {
  std::size_t done = 0;
  while (done < max_activations && step()) ++done;
  return done;
}

bool Engine::run_until(const StopCondition& stop) {
  const std::size_t check_every = std::max<std::size_t>(stop.check_every, 1);
  // A negative epsilon can never match — skip the O(n) diameter scans
  // entirely so fixed-budget runs cost what Engine::run(max) costs.
  const bool check_diameter = stop.epsilon >= 0.0;
  const bool check_time = stop.max_time > 0.0;
  std::size_t done = 0;
  while (done < stop.max_activations) {
    for (std::size_t i = 0; i < check_every && done < stop.max_activations; ++i, ++done) {
      if (!step()) return check_diameter && current_diameter() <= stop.epsilon;
      if (check_time && frontier_ >= stop.max_time) {
        return check_diameter && current_diameter() <= stop.epsilon;
      }
    }
    if (check_diameter && current_diameter() <= stop.epsilon) return true;
    if (stop.predicate && stop.predicate(*this)) break;
  }
  return check_diameter && current_diameter() <= stop.epsilon;
}

bool Engine::run_until_converged(double epsilon, std::size_t max_activations,
                                 std::size_t check_every) {
  StopCondition stop;
  stop.epsilon = epsilon;
  stop.max_activations = max_activations;
  stop.check_every = check_every;
  return run_until(stop);
}

std::vector<Vec2> Engine::current_configuration() const {
  // Evaluate at the end of all committed motion: the configuration "if
  // nothing further is scheduled". That instant is at or after every
  // committed Look, so the kinematic cache answers in O(n) total.
  const Time t = end_time_ + 1.0;
  if (!config_.use_spatial_index) return trace_.configuration(t);
  std::vector<Vec2> out(trace_.robot_count());
  for (RobotId r = 0; r < out.size(); ++r) out[r] = kin_.position_at(r, t);
  return out;
}

double Engine::current_diameter() const {
  return geom::set_diameter(current_configuration());
}

}  // namespace cohesion::core
