#include "core/validators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace cohesion::core {

namespace {

struct Interval {
  RobotId robot;
  Time start, end;
};

std::vector<Interval> intervals_of(const Trace& trace) {
  std::vector<Interval> out;
  out.reserve(trace.records().size());
  for (const ActivationRecord& rec : trace.records()) {
    out.push_back({rec.activation.robot, rec.start(), rec.end()});
  }
  return out;
}

constexpr double kEps = 1e-9;

}  // namespace

std::size_t max_activations_within_interval(const Trace& trace) {
  const auto ivals = intervals_of(trace);
  std::size_t worst = 0;
  const std::size_t n = trace.robot_count();
  for (const Interval& outer : ivals) {
    std::vector<std::size_t> counts(n, 0);
    for (const Interval& inner : ivals) {
      if (inner.robot == outer.robot) continue;
      if (inner.start > outer.start + kEps && inner.start < outer.end - kEps) {
        worst = std::max(worst, ++counts[inner.robot]);
      }
    }
  }
  return worst;
}

bool is_nested_activation(const Trace& trace) {
  const auto ivals = intervals_of(trace);
  for (std::size_t i = 0; i < ivals.size(); ++i) {
    for (std::size_t j = i + 1; j < ivals.size(); ++j) {
      const Interval& a = ivals[i];
      const Interval& b = ivals[j];
      if (a.robot == b.robot) continue;
      // Disjoint?
      if (a.end <= b.start + kEps || b.end <= a.start + kEps) continue;
      // Nested?
      const bool a_in_b = a.start >= b.start - kEps && a.end <= b.end + kEps;
      const bool b_in_a = b.start >= a.start - kEps && b.end <= a.end + kEps;
      if (!a_in_b && !b_in_a) return false;
    }
  }
  return true;
}

bool is_k_nesta(const Trace& trace, std::size_t k) {
  return is_nested_activation(trace) && max_activations_within_interval(trace) <= k;
}

bool is_k_async(const Trace& trace, std::size_t k) {
  return max_activations_within_interval(trace) <= k;
}

bool is_ssync(const Trace& trace, double round_length) {
  for (const ActivationRecord& rec : trace.records()) {
    const Time start = rec.start();
    const Time end = rec.end();
    const double round = std::floor(start / round_length + kEps);
    const Time r0 = round * round_length;
    const Time r1 = r0 + round_length;
    if (start < r0 - kEps || end > r1 + kEps) return false;
  }
  return true;
}

bool is_fair(const Trace& trace, Time window) {
  const std::size_t n = trace.robot_count();
  std::vector<Time> last(n, 0.0);
  for (const ActivationRecord& rec : trace.records()) {
    const RobotId r = rec.activation.robot;
    if (rec.start() - last[r] > window + kEps) return false;
    last[r] = rec.start();
  }
  return true;
}

}  // namespace cohesion::core
