// The engine's trace seam: where committed activations go.
//
// The engine itself only ever needs recent trajectory segments (served by
// KinematicState); the full history exists for post-hoc analysis. TraceSink
// splits those concerns: every committed ActivationRecord is pushed through
// this interface, and the consumer decides whether to materialize it
// (core::Trace, the in-memory reference), stream it to disk
// (trace::StreamTraceWriter), fold it into online accumulators
// (trace::OnlineMetrics), or fan it out to several of these (TeeSink).
// With EngineConfig::record_history = false the engine keeps no history of
// its own, so a million-robot / billion-activation run fits in memory
// bounded by the robot count, not the activation count.
#pragma once

#include <vector>

#include "core/activation.hpp"

namespace cohesion::core {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Consume one committed activation. Records arrive in the engine's
  /// commit order (non-decreasing Look times up to the scheduler's 1e-12
  /// slack) — append-only; a sink never sees a record twice.
  virtual void append(const ActivationRecord& rec) = 0;

  /// Flush/close. Called once after the last append; appending afterwards
  /// is undefined. Implementations must make it idempotent.
  virtual void finish() {}
};

/// Fan one record stream out to several sinks, in order (e.g. a stream
/// writer plus an online-metrics accumulator). Non-owning.
class TeeSink final : public TraceSink {
 public:
  explicit TeeSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks)) {}

  void append(const ActivationRecord& rec) override {
    for (TraceSink* s : sinks_) s->append(rec);
  }
  void finish() override {
    for (TraceSink* s : sinks_) s->finish();
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace cohesion::core
