// The full history of a simulation run: initial configuration plus every
// committed activation in look-time order. Validators, metrics and tests
// all consume traces. Trace is the in-memory TraceSink implementation —
// the bit-identical reference the streaming sinks (src/trace) are proven
// against.
#pragma once

#include <algorithm>
#include <vector>

#include "core/activation.hpp"
#include "core/trace_sink.hpp"
#include "core/types.hpp"
#include "geometry/vec2.hpp"

namespace cohesion::core {

class Trace final : public TraceSink {
 public:
  Trace() = default;
  explicit Trace(std::vector<geom::Vec2> initial)
      : initial_(std::move(initial)), per_robot_(initial_.size()) {}

  void record(const ActivationRecord& rec) {
    per_robot_.at(rec.activation.robot).push_back(records_.size());
    records_.push_back(rec);
    end_time_ = std::max(end_time_, rec.activation.t_move_end);
  }

  // TraceSink: materialize every record.
  void append(const ActivationRecord& rec) override { record(rec); }

  [[nodiscard]] const std::vector<geom::Vec2>& initial_configuration() const { return initial_; }
  [[nodiscard]] const std::vector<ActivationRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t robot_count() const { return initial_.size(); }

  /// Position of `robot` at time `t`, reconstructed from the trace
  /// (piecewise-linear interpolation during Move phases).
  [[nodiscard]] geom::Vec2 position(RobotId robot, Time t) const;

  /// Positions of all robots at time `t`.
  [[nodiscard]] std::vector<geom::Vec2> configuration(Time t) const;

  /// Number of completed activations of `robot`. O(1).
  [[nodiscard]] std::size_t activation_count(RobotId robot) const {
    return per_robot_.at(robot).size();
  }

  /// Time of the last committed move end (0 for an empty trace). O(1):
  /// maintained as a running max by record().
  [[nodiscard]] Time end_time() const { return end_time_; }

  /// Round boundaries: times t_0 < t_1 < ... where each round [t_i, t_{i+1})
  /// is a minimal interval in which every robot completes at least one full
  /// activity cycle. This is the paper's notion of a "round" used to state
  /// convergence rates in asynchronous models.
  [[nodiscard]] std::vector<Time> round_boundaries() const;

 private:
  std::vector<geom::Vec2> initial_;
  std::vector<ActivationRecord> records_;  // in non-decreasing t_look order
  std::vector<std::vector<std::size_t>> per_robot_;  // record indices per robot
  Time end_time_ = 0.0;                    // running max of t_move_end
};

}  // namespace cohesion::core
