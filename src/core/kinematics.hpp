// Incremental per-robot kinematic state: the robot's *current* trajectory
// segment, updated on every commit.
//
// The engine's hot path needs every robot's position at the current Look
// time. Reconstructing that from the Trace costs a binary search over the
// robot's full activation history per query; but because activations commit
// in non-decreasing Look order, only the most recent segment of each robot
// can ever matter at or after its own Look time. KinematicState keeps
// exactly that segment ({from, realized, t_look, t_move_start, t_move_end})
// per robot, so position_at(robot, t) is O(1) for any t >= segment_start(
// robot) — and is bit-identical to Trace::position there, because it runs
// the same interpolation arithmetic on the same committed values. Queries
// before the current segment's Look (possible only through the scheduler's
// 1e-12 look-ordering slack) must fall back to the Trace — or, when the
// engine keeps no Trace (EngineConfig::record_history = false), to the
// *previous* segment retained by set_keep_previous(true): the slack only
// ever reaches one segment back unless a robot completes two full activity
// cycles within 1e-12, which position_bounded rejects loudly.
#pragma once

#include <vector>

#include "core/activation.hpp"
#include "core/types.hpp"
#include "geometry/vec2.hpp"

namespace cohesion::core {

class KinematicState {
 public:
  KinematicState() = default;
  explicit KinematicState(const std::vector<geom::Vec2>& initial);

  /// Replace `rec.activation.robot`'s current segment. Records must arrive
  /// in the engine's commit order (non-decreasing t_look).
  void commit(const ActivationRecord& rec);

  /// Position of `robot` at `t`. Exact (bit-identical to Trace::position)
  /// for t >= segment_start(robot); undefined earlier.
  [[nodiscard]] geom::Vec2 position_at(RobotId robot, Time t) const;

  /// Retain each robot's previous segment across commits, making
  /// position_bounded answer one segment further back. Enable before the
  /// first commit; the reference paths leave it off and pay nothing.
  void set_keep_previous(bool on);
  [[nodiscard]] bool keep_previous() const { return keep_previous_; }

  /// Position of `robot` at `t` from the current segment when
  /// t >= segment_start(robot), else from the retained previous segment.
  /// Bit-identical to Trace::position wherever it answers. Requires
  /// set_keep_previous(true); throws std::logic_error when `t` predates the
  /// previous segment's Look too (history the bounded mode no longer has).
  [[nodiscard]] geom::Vec2 position_bounded(RobotId robot, Time t) const;

  /// Look time of the robot's current segment (0 before any activation; the
  /// initial segment is valid at every time).
  [[nodiscard]] Time segment_start(RobotId robot) const {
    return segments_[robot].t_look;
  }

  /// Endpoints and end time of the robot's current segment: the robot sits
  /// at `segment_from` before the move, interpolates between the endpoints
  /// during it, and rests at `segment_realized` from `segment_end` onward.
  /// These are what an incremental spatial index buckets by.
  [[nodiscard]] geom::Vec2 segment_from(RobotId robot) const { return segments_[robot].from; }
  [[nodiscard]] geom::Vec2 segment_realized(RobotId robot) const {
    return segments_[robot].realized;
  }
  [[nodiscard]] Time segment_end(RobotId robot) const { return segments_[robot].t_move_end; }

  /// Dirty tracking for incremental index maintenance: when enabled, every
  /// commit() records its robot id so a consumer can re-bucket exactly the
  /// robots whose segments changed since it last drained the set. Between
  /// two consecutive Look times that is the just-moved robot (plus any
  /// same-time co-activators), never all n. Off by default — the reference
  /// paths pay nothing.
  void set_track_dirty(bool on) {
    track_dirty_ = on;
    if (!on) dirty_.clear();
  }
  /// Robots committed since the last clear_dirty(), in commit order. May
  /// repeat a robot; consumers treat re-bucketing as idempotent.
  [[nodiscard]] const std::vector<RobotId>& dirty() const { return dirty_; }
  void clear_dirty() { dirty_.clear(); }

  [[nodiscard]] std::size_t robot_count() const { return segments_.size(); }

 private:
  struct Segment {
    geom::Vec2 from;
    geom::Vec2 realized;
    Time t_look = 0.0;
    Time t_move_start = 0.0;
    Time t_move_end = 0.0;
  };
  [[nodiscard]] static geom::Vec2 eval(const Segment& s, Time t);

  std::vector<Segment> segments_;
  std::vector<Segment> previous_;  // keep_previous_ only: segment before current
  std::vector<RobotId> dirty_;
  bool track_dirty_ = false;
  bool keep_previous_ = false;
};

}  // namespace cohesion::core
