// Fundamental identifiers and time for the OBLOT simulation.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cohesion::core {

/// Index of a robot in the configuration. Robots are anonymous *to each
/// other* (snapshots carry no ids); ids exist only for the simulator,
/// scheduler and analysis code.
using RobotId = std::size_t;

/// Continuous simulation time, in arbitrary units.
using Time = double;

inline constexpr RobotId kInvalidRobot = static_cast<RobotId>(-1);

}  // namespace cohesion::core
