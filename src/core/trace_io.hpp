// Trace serialization: CSV export/import for offline analysis and replay.
//
// Format: a header line, one line `I,robot,x,y` per initial position, then
// one line `A,robot,t_look,t_move_start,t_move_end,frac,from_x,from_y,
// planned_x,planned_y,realized_x,realized_y,seen` per activation record in
// look order. Round-trips exactly (doubles printed with max_digits10).
#pragma once

#include <iosfwd>
#include <string>

#include "core/trace.hpp"

namespace cohesion::core {

void write_trace_csv(const Trace& trace, std::ostream& out);
void write_trace_csv(const Trace& trace, const std::string& path);

/// Parse a trace written by write_trace_csv. Throws std::runtime_error on
/// malformed input.
Trace read_trace_csv(std::istream& in);
Trace read_trace_csv_file(const std::string& path);

}  // namespace cohesion::core
