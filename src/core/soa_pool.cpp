#include "core/soa_pool.hpp"

#include <cmath>
#include <limits>

#include "core/spatial_index.hpp"

namespace cohesion::core {

using geom::Vec2;

CertifiedBallBounds certified_ball_bounds(double b) {
  // Degenerate defaults: no lane certified in (d2 >= 0 > -1 never passes),
  // no lane certified out (d2 > inf never holds) — everything borderline.
  CertifiedBallBounds out{-1.0, std::numeric_limits<double>::infinity()};
  if (!std::isfinite(b) || b <= 0.0) return out;
  const double lo = b * (1.0 - kSoaCertSlack);
  const double hi = b * (1.0 + kSoaCertSlack);
  const double in2 = lo * lo;
  const double out2 = hi * hi;
  // Each bound is valid only if the slack survived rounding (it collapses
  // for denormal b), squaring stayed finite, AND the squared bound is in
  // the normal range. The last condition matters: for b near sqrt(DBL_MIN)
  // the squared distances underflow — lo*lo can flush to 0 while a point
  // with exact d > b also squares to 0, so d2 <= in2 would certify it
  // inside; symmetrically a denormal out2 loses far more relative
  // precision than the 1e-9 band budgets. A subnormal bound therefore
  // stays degenerate and those lanes take the exact check.
  constexpr double kMinNormal = std::numeric_limits<double>::min();
  if (lo < b && std::isfinite(in2) && in2 >= kMinNormal) out.definite_in2 = in2;
  if (hi > b && std::isfinite(out2) && out2 >= kMinNormal) out.definite_out2 = out2;
  return out;
}

// ---------------------------------------------------------------------------
// SoaSegmentPool
// ---------------------------------------------------------------------------

void SoaSegmentPool::reset(const std::vector<Vec2>& initial) {
  const std::size_t n = initial.size();
  from_x_.resize(n);
  from_y_.resize(n);
  to_x_.resize(n);
  to_y_.resize(n);
  t_start_.assign(n, 0.0);
  t_end_.assign(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    from_x_[r] = to_x_[r] = initial[r].x;
    from_y_[r] = to_y_[r] = initial[r].y;
  }
}

void SoaSegmentPool::commit(const ActivationRecord& rec) {
  const RobotId r = rec.activation.robot;
  from_x_[r] = rec.from.x;
  from_y_[r] = rec.from.y;
  to_x_[r] = rec.realized.x;
  to_y_[r] = rec.realized.y;
  t_start_[r] = rec.activation.t_move_start;
  t_end_[r] = rec.activation.t_move_end;
}

Vec2 SoaSegmentPool::position_at(RobotId robot, Time t) const {
  // KinematicState::eval's exact branches and arithmetic.
  const double ts = t_start_[robot];
  const double te = t_end_[robot];
  if (t >= te) return {to_x_[robot], to_y_[robot]};
  if (t >= ts) {
    const Time span = te - ts;
    const double frac = span > 0.0 ? (t - ts) / span : 1.0;
    return {from_x_[robot] + (to_x_[robot] - from_x_[robot]) * frac,
            from_y_[robot] + (to_y_[robot] - from_y_[robot]) * frac};
  }
  return {from_x_[robot], from_y_[robot]};
}

// ---------------------------------------------------------------------------
// SoaNeighborFilter
// ---------------------------------------------------------------------------

void SoaNeighborFilter::gather_positions(const std::vector<Vec2>& positions,
                                         const std::vector<std::size_t>& candidates,
                                         RobotId self) {
  const std::size_t m = candidates.size();
  ids_.clear();
  px_.clear();
  py_.clear();
  ids_.reserve(m);
  px_.reserve(m);
  py_.reserve(m);
  for (const std::size_t c : candidates) {
    if (c == self) continue;
    ids_.push_back(static_cast<std::uint32_t>(c));
    px_.push_back(positions[c].x);
    py_.push_back(positions[c].y);
  }
}

namespace {

// Pass 2 of gather_segments — branchless KinematicState::eval per lane:
// the selects mirror its branches and the lerp its arithmetic exactly, so
// every lane is bit-identical to the scalar cache. Kept as a free function
// with __restrict parameters: that is the one shape GCC's vectorizer
// accepts here. Inlined into the caller it fuses with the gather pass and
// reverts to indexed loads (no vector type); restrict-qualified locals
// (instead of parameters) leave too many alias checks and the loop stays
// scalar. The division is unconditional over a value-guarded denominator
// (safe_span) because an if-converted divide is rejected by the
// vectorizer; its quotient is then selected away for lanes the scalar
// code never divides on. The branch conditions are computed once and
// shared by both coordinate lanes: duplicating `t >= te` per output grows
// the CFG past what the if-converter will flatten.
[[gnu::noinline]] void eval_segment_lanes(
    std::size_t k, Time t, const double* __restrict gts, const double* __restrict gte,
    const double* __restrict gfx, const double* __restrict gfy, const double* __restrict gtx,
    const double* __restrict gty, double* __restrict outx, double* __restrict outy) {
  for (std::size_t i = 0; i < k; ++i) {
    const double ts = gts[i];
    const double te = gte[i];
    const double span = te - ts;
    const double safe_span = span > 0.0 ? span : 1.0;
    const double ratio = (t - ts) / safe_span;
    const double frac = span > 0.0 ? ratio : 1.0;
    const double ax = gfx[i];
    const double ay = gfy[i];
    const double bx = gtx[i];
    const double by = gty[i];
    const double mx = ax + (bx - ax) * frac;
    const double my = ay + (by - ay) * frac;
    const bool moving = t >= ts;
    const bool done = t >= te;
    const double ix = moving ? mx : ax;
    const double iy = moving ? my : ay;
    outx[i] = done ? bx : ix;
    outy[i] = done ? by : iy;
  }
}

}  // namespace

void SoaNeighborFilter::gather_segments(const SoaSegmentPool& pool,
                                        const std::vector<std::size_t>& candidates,
                                        RobotId self, Time t) {
  ids_.clear();
  ids_.reserve(candidates.size());
  for (const std::size_t c : candidates) {
    if (c == self) continue;
    ids_.push_back(static_cast<std::uint32_t>(c));
  }
  const std::size_t k = ids_.size();
  px_.resize(k);
  py_.resize(k);
  seg_fx_.resize(k);
  seg_fy_.resize(k);
  seg_tx_.resize(k);
  seg_ty_.resize(k);
  seg_ts_.resize(k);
  seg_te_.resize(k);
  const double* fx = pool.from_x();
  const double* fy = pool.from_y();
  const double* tx = pool.to_x();
  const double* ty = pool.to_y();
  const double* ts_lane = pool.t_move_start();
  const double* te_lane = pool.t_move_end();
  const std::uint32_t* id = ids_.data();
  // Pass 1 — gather: pull the candidates' segment lanes into contiguous
  // scratch. Indexed loads have no vector type on baseline ISAs, and mixed
  // into the arithmetic they defeat the vectorizer entirely, so the gather
  // is kept as a plain scalar loop (pure loads, high ILP) and the math
  // below gets unit-stride inputs.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t c = id[i];
    seg_fx_[i] = fx[c];
    seg_fy_[i] = fy[c];
    seg_tx_[i] = tx[c];
    seg_ty_[i] = ty[c];
    seg_ts_[i] = ts_lane[c];
    seg_te_[i] = te_lane[c];
  }
  eval_segment_lanes(k, t, seg_ts_.data(), seg_te_.data(), seg_fx_.data(), seg_fy_.data(),
                     seg_tx_.data(), seg_ty_.data(), px_.data(), py_.data());
}

void SoaNeighborFilter::filter(Vec2 self, double radius, bool open_ball) {
  const std::size_t m = ids_.size();
  dx_.resize(m);
  dy_.resize(m);
  d2_.resize(m);
  const double sx = self.x;
  const double sy = self.y;
  const double* px = px_.data();
  const double* py = py_.data();
  double* dx = dx_.data();
  double* dy = dy_.data();
  double* d2 = d2_.data();
  // The vectorizable kernel: pure mul/add lanes, no calls, no branches.
  for (std::size_t i = 0; i < m; ++i) {
    const double ddx = px[i] - sx;
    const double ddy = py[i] - sy;
    dx[i] = ddx;
    dy[i] = ddy;
    d2[i] = ddx * ddx + ddy * ddy;
  }
  const double b = open_ball ? radius : radius + kVisibilityEpsilon;
  const CertifiedBallBounds cb = certified_ball_bounds(b);
  survivors_.clear();
  for (std::size_t i = 0; i < m; ++i) {
    const double q2 = d2[i];
    if (q2 > cb.definite_out2) continue;  // certified invisible
    if (!(q2 <= cb.definite_in2)) {
      // Borderline band (or degenerate bounds, or NaN lanes): the exact
      // scalar predicate decides — identical call to the scalar paths.
      const double d = self.distance_to({px[i], py[i]});
      const bool visible = open_ball ? (d < radius) : (d <= radius + kVisibilityEpsilon);
      if (!visible) continue;
    }
    survivors_.push_back(static_cast<std::uint32_t>(i));
  }
}

}  // namespace cohesion::core
