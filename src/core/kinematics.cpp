#include "core/kinematics.hpp"

#include <stdexcept>
#include <string>

namespace cohesion::core {

using geom::Vec2;

KinematicState::KinematicState(const std::vector<Vec2>& initial)
    : segments_(initial.size()) {
  for (std::size_t r = 0; r < initial.size(); ++r) {
    segments_[r].from = initial[r];
    segments_[r].realized = initial[r];
  }
}

void KinematicState::set_keep_previous(bool on) {
  keep_previous_ = on;
  if (on) {
    // The "previous" segment of a never-activated robot is its initial rest
    // segment (Look time 0, already settled), so position_bounded answers
    // any t >= 0 for it — matching Trace::position's initial fallback.
    previous_ = segments_;
  } else {
    previous_.clear();
  }
}

void KinematicState::commit(const ActivationRecord& rec) {
  Segment& s = segments_.at(rec.activation.robot);
  if (keep_previous_) previous_[rec.activation.robot] = s;
  s.from = rec.from;
  s.realized = rec.realized;
  s.t_look = rec.activation.t_look;
  s.t_move_start = rec.activation.t_move_start;
  s.t_move_end = rec.activation.t_move_end;
  if (track_dirty_) dirty_.push_back(rec.activation.robot);
}

Vec2 KinematicState::eval(const Segment& s, Time t) {
  // Mirrors the tail of Trace::position exactly — same branches, same
  // arithmetic — so both tiers agree to the last bit.
  if (t >= s.t_move_end) return s.realized;
  if (t >= s.t_move_start) {
    const Time span = s.t_move_end - s.t_move_start;
    const double frac = span > 0.0 ? (t - s.t_move_start) / span : 1.0;
    return geom::lerp(s.from, s.realized, frac);
  }
  return s.from;
}

Vec2 KinematicState::position_at(RobotId robot, Time t) const {
  return eval(segments_[robot], t);
}

Vec2 KinematicState::position_bounded(RobotId robot, Time t) const {
  if (t >= segments_[robot].t_look) return eval(segments_[robot], t);
  const Segment& prev = previous_.at(robot);
  if (t >= prev.t_look) return eval(prev, t);
  throw std::logic_error(
      "KinematicState::position_bounded: query at t=" + std::to_string(t) + " for robot " +
      std::to_string(robot) + " predates the retained previous segment (Look " +
      std::to_string(prev.t_look) +
      ") — with record_history=false the engine keeps no older history");
}

}  // namespace cohesion::core
