#include "core/kinematics.hpp"

namespace cohesion::core {

using geom::Vec2;

KinematicState::KinematicState(const std::vector<Vec2>& initial)
    : segments_(initial.size()) {
  for (std::size_t r = 0; r < initial.size(); ++r) {
    segments_[r].from = initial[r];
    segments_[r].realized = initial[r];
  }
}

void KinematicState::commit(const ActivationRecord& rec) {
  Segment& s = segments_.at(rec.activation.robot);
  s.from = rec.from;
  s.realized = rec.realized;
  s.t_look = rec.activation.t_look;
  s.t_move_start = rec.activation.t_move_start;
  s.t_move_end = rec.activation.t_move_end;
  if (track_dirty_) dirty_.push_back(rec.activation.robot);
}

Vec2 KinematicState::position_at(RobotId robot, Time t) const {
  // Mirrors the tail of Trace::position exactly — same branches, same
  // arithmetic — so both tiers agree to the last bit.
  const Segment& s = segments_[robot];
  if (t >= s.t_move_end) return s.realized;
  if (t >= s.t_move_start) {
    const Time span = s.t_move_end - s.t_move_start;
    const double frac = span > 0.0 ? (t - s.t_move_start) / span : 1.0;
    return geom::lerp(s.from, s.realized, frac);
  }
  return s.from;
}

}  // namespace cohesion::core
