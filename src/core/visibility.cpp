#include "core/visibility.hpp"

#include <algorithm>

#include "core/spatial_index.hpp"

namespace cohesion::core {

namespace {

// Below this size the O(n^2) pairwise scan beats building a hash grid. Both
// paths apply the identical predicate to an identical candidate order, so
// the produced edge lists are the same either way.
constexpr std::size_t kGridThreshold = 64;

}  // namespace

VisibilityGraph::VisibilityGraph(const std::vector<geom::Vec2>& positions, double v,
                                 bool open_ball)
    : n_(positions.size()) {
  if (n_ < kGridThreshold || !(v > 0.0)) {
    for (RobotId a = 0; a < n_; ++a) {
      for (RobotId b = a + 1; b < n_; ++b) {
        const double d = positions[a].distance_to(positions[b]);
        const bool vis = open_ball ? (d < v) : (d <= v + kVisibilityEpsilon);
        if (vis) edges_.emplace_back(a, b);
      }
    }
    return;
  }
  // Grid-bucketed construction: O(n + E) expected. neighbors_within returns
  // ascending ids, so edges come out sorted (a asc, then b asc) exactly like
  // the pairwise loop above.
  SpatialGrid grid(v);
  grid.rebuild(positions);
  std::vector<std::size_t> nbrs;
  for (RobotId a = 0; a < n_; ++a) {
    grid.neighbors_within(positions[a], v, open_ball, nbrs);
    for (const std::size_t b : nbrs) {
      if (b > a) edges_.emplace_back(a, b);
    }
  }
}

bool VisibilityGraph::has_edge(RobotId a, RobotId b) const {
  if (a > b) std::swap(a, b);
  return std::binary_search(edges_.begin(), edges_.end(), std::make_pair(a, b));
}

bool VisibilityGraph::connected() const {
  if (n_ == 0) return true;
  std::vector<std::vector<RobotId>> adj(n_);
  for (const auto& [a, b] : edges_) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<bool> seen(n_, false);
  std::vector<RobotId> stack{0};
  seen[0] = true;
  std::size_t count = 1;
  while (!stack.empty()) {
    const RobotId cur = stack.back();
    stack.pop_back();
    for (const RobotId nxt : adj[cur]) {
      if (!seen[nxt]) {
        seen[nxt] = true;
        ++count;
        stack.push_back(nxt);
      }
    }
  }
  return count == n_;
}

bool VisibilityGraph::subset_of(const VisibilityGraph& later) const {
  return edges_lost(later) == 0;
}

std::size_t VisibilityGraph::edges_lost(const VisibilityGraph& later) const {
  std::size_t lost = 0;
  for (const auto& [a, b] : edges_) {
    if (!later.has_edge(a, b)) ++lost;
  }
  return lost;
}

double worst_initial_pair_stretch(const std::vector<geom::Vec2>& initial,
                                  const std::vector<geom::Vec2>& positions, double v) {
  double worst = 0.0;
  if (initial.size() < kGridThreshold || !(v > 0.0)) {
    for (std::size_t a = 0; a < initial.size(); ++a) {
      for (std::size_t b = a + 1; b < initial.size(); ++b) {
        if (initial[a].distance_to(initial[b]) <= v + kVisibilityEpsilon) {
          worst = std::max(worst, positions[a].distance_to(positions[b]) / v);
        }
      }
    }
    return worst;
  }
  // The initially-visible pairs are a fixed-radius neighbor query over the
  // *initial* configuration; enumerate them through a grid and evaluate the
  // stretch at `positions`. Same pair set as the pairwise loop, and max() is
  // order-independent, so the result is identical.
  SpatialGrid grid(v);
  grid.rebuild(initial);
  std::vector<std::size_t> nbrs;
  for (std::size_t a = 0; a < initial.size(); ++a) {
    grid.neighbors_within(initial[a], v, /*open_ball=*/false, nbrs);
    for (const std::size_t b : nbrs) {
      if (b > a) worst = std::max(worst, positions[a].distance_to(positions[b]) / v);
    }
  }
  return worst;
}

}  // namespace cohesion::core
