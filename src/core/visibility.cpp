#include "core/visibility.hpp"

#include <algorithm>

namespace cohesion::core {

VisibilityGraph::VisibilityGraph(const std::vector<geom::Vec2>& positions, double v,
                                 bool open_ball)
    : n_(positions.size()) {
  for (RobotId a = 0; a < n_; ++a) {
    for (RobotId b = a + 1; b < n_; ++b) {
      const double d = positions[a].distance_to(positions[b]);
      const bool vis = open_ball ? (d < v) : (d <= v + 1e-12);
      if (vis) edges_.emplace_back(a, b);
    }
  }
}

bool VisibilityGraph::has_edge(RobotId a, RobotId b) const {
  if (a > b) std::swap(a, b);
  return std::binary_search(edges_.begin(), edges_.end(), std::make_pair(a, b));
}

bool VisibilityGraph::connected() const {
  if (n_ == 0) return true;
  std::vector<std::vector<RobotId>> adj(n_);
  for (const auto& [a, b] : edges_) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<bool> seen(n_, false);
  std::vector<RobotId> stack{0};
  seen[0] = true;
  std::size_t count = 1;
  while (!stack.empty()) {
    const RobotId cur = stack.back();
    stack.pop_back();
    for (const RobotId nxt : adj[cur]) {
      if (!seen[nxt]) {
        seen[nxt] = true;
        ++count;
        stack.push_back(nxt);
      }
    }
  }
  return count == n_;
}

bool VisibilityGraph::subset_of(const VisibilityGraph& later) const {
  return edges_lost(later) == 0;
}

std::size_t VisibilityGraph::edges_lost(const VisibilityGraph& later) const {
  std::size_t lost = 0;
  for (const auto& [a, b] : edges_) {
    if (!later.has_edge(a, b)) ++lost;
  }
  return lost;
}

double worst_initial_pair_stretch(const std::vector<geom::Vec2>& initial,
                                  const std::vector<geom::Vec2>& positions, double v) {
  double worst = 0.0;
  for (std::size_t a = 0; a < initial.size(); ++a) {
    for (std::size_t b = a + 1; b < initial.size(); ++b) {
      if (initial[a].distance_to(initial[b]) <= v + 1e-12) {
        worst = std::max(worst, positions[a].distance_to(positions[b]) / v);
      }
    }
  }
  return worst;
}

}  // namespace cohesion::core
