#include "core/error_model.hpp"

#include <cmath>
#include <stdexcept>

#include "geometry/angles.hpp"

namespace cohesion::core {

using geom::Vec2;

SymmetricDistortion::SymmetricDistortion(double lambda, double phase)
    : lambda_(lambda), phase_(phase) {
  if (lambda < 0.0 || lambda >= 1.0) {
    throw std::invalid_argument("SymmetricDistortion: skew must be in [0, 1)");
  }
}

double SymmetricDistortion::apply(double theta) const {
  if (lambda_ == 0.0) return theta;
  return theta + (lambda_ / 2.0) * std::sin(2.0 * (theta - phase_));
}

double SymmetricDistortion::invert(double psi) const {
  if (lambda_ == 0.0) return psi;
  double theta = psi;
  for (int it = 0; it < 50; ++it) {
    const double f = apply(theta) - psi;
    const double fp = 1.0 + lambda_ * std::cos(2.0 * (theta - phase_));
    const double step = f / fp;
    theta -= step;
    if (std::abs(step) < 1e-15) break;
  }
  return theta;
}

LocalFrame LocalFrame::sample(const ErrorModel& model, std::mt19937_64& rng) {
  LocalFrame f;
  if (model.random_rotation) {
    std::uniform_real_distribution<double> ang(0.0, geom::kTwoPi);
    f.rotation_ = ang(rng);
  }
  if (model.allow_reflection) {
    f.reflect_ = (rng() & 1u) != 0;
  }
  if (model.skew_lambda > 0.0) {
    std::uniform_real_distribution<double> ph(0.0, geom::kPi);
    f.distortion_ = SymmetricDistortion(model.skew_lambda, ph(rng));
  }
  f.distance_delta_ = model.distance_delta;
  return f;
}

LocalFrame LocalFrame::identity() { return LocalFrame{}; }

Vec2 LocalFrame::perceive(Vec2 true_offset, std::mt19937_64& rng) const {
  Vec2 v = true_offset;
  if (reflect_) v.y = -v.y;
  v = v.rotated(rotation_);
  const double d = v.norm();
  if (d == 0.0) return v;
  double theta = v.angle();
  theta = distortion_.apply(theta);
  double perceived_d = d;
  if (distance_delta_ > 0.0) {
    std::uniform_real_distribution<double> noise(-distance_delta_, distance_delta_);
    perceived_d = d * (1.0 + noise(rng));
  }
  return geom::unit(theta) * perceived_d;
}

Vec2 LocalFrame::intent_to_global(Vec2 local_destination) const {
  const double d = local_destination.norm();
  if (d == 0.0) return {0.0, 0.0};
  double theta = local_destination.angle();
  theta = distortion_.invert(theta);
  Vec2 v = geom::unit(theta) * d;
  v = v.rotated(-rotation_);
  if (reflect_) v.y = -v.y;
  return v;
}

Vec2 apply_motion_error(Vec2 start, Vec2 end, double coeff, double v, std::mt19937_64& rng) {
  if (coeff == 0.0 || v <= 0.0) return end;
  const Vec2 d = end - start;
  const double len = d.norm();
  if (len == 0.0) return end;
  const double max_dev = coeff * len * len / v;
  std::uniform_real_distribution<double> noise(-max_dev, max_dev);
  return end + d.normalized().perp() * noise(rng);
}

}  // namespace cohesion::core
