// Scheduler (adversary) interface — paper §2.3.1.
//
// A scheduler owns all timing decisions: when each robot is activated, how
// long its Compute and Move phases last, and how much of the planned
// trajectory is realized (xi-rigidity). The engine pulls activations one at
// a time; proposals must be in non-decreasing t_look order so that every
// Look can observe the committed (piecewise-linear) trajectories of all
// other robots.
#pragma once

#include <optional>

#include "core/activation.hpp"
#include "core/types.hpp"
#include "geometry/vec2.hpp"

namespace cohesion::core {

/// Read-only view of the simulation the scheduler may inspect. Adversarial
/// schedulers in the paper are omniscient, so full state is exposed.
class SimulationView {
 public:
  virtual ~SimulationView() = default;
  [[nodiscard]] virtual std::size_t robot_count() const = 0;
  /// End of the robot's last committed activity interval (0 if none).
  [[nodiscard]] virtual Time busy_until(RobotId robot) const = 0;
  /// Look time of the most recently committed activation (0 if none).
  [[nodiscard]] virtual Time frontier() const = 0;
  /// True position of a robot at a time not after the frontier... (times in
  /// the future of all committed moves evaluate to the final committed
  /// endpoint, i.e. "if nothing else happens").
  [[nodiscard]] virtual geom::Vec2 position(RobotId robot, Time t) const = 0;
  /// Number of committed activations of `robot`.
  [[nodiscard]] virtual std::size_t activations_of(RobotId robot) const = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Propose the next activation, or nullopt to end the run (scripted
  /// schedules end; generative schedulers never return nullopt).
  ///
  /// Contract: t_look >= view.frontier(), t_look >= view.busy_until(robot),
  /// t_look <= t_move_start <= t_move_end, realized_fraction in (0, 1].
  virtual std::optional<Activation> next(const SimulationView& view) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

}  // namespace cohesion::core
