#include "core/trace.hpp"

#include <algorithm>

namespace cohesion::core {

using geom::Vec2;

Vec2 Trace::position(RobotId robot, Time t) const {
  const auto& idx = per_robot_.at(robot);
  // Find the last activation of this robot with t_look <= t. Only that one
  // determines the position: earlier activations of the same robot ended
  // before its look (activity intervals of one robot never overlap).
  const auto it = std::upper_bound(idx.begin(), idx.end(), t, [&](Time time, std::size_t i) {
    return time < records_[i].activation.t_look;
  });
  if (it == idx.begin()) return initial_.at(robot);
  const ActivationRecord& rec = records_[*(it - 1)];
  const Activation& a = rec.activation;
  if (t >= a.t_move_end) return rec.realized;
  if (t >= a.t_move_start) {
    const Time span = a.t_move_end - a.t_move_start;
    const double frac = span > 0.0 ? (t - a.t_move_start) / span : 1.0;
    return geom::lerp(rec.from, rec.realized, frac);
  }
  return rec.from;
}

std::vector<Vec2> Trace::configuration(Time t) const {
  std::vector<Vec2> out(initial_.size());
  for (RobotId r = 0; r < initial_.size(); ++r) out[r] = position(r, t);
  return out;
}

std::vector<Time> Trace::round_boundaries() const {
  std::vector<Time> bounds{0.0};
  const std::size_t n = initial_.size();
  std::vector<bool> done(n, false);
  std::size_t remaining = n;
  Time round_end = 0.0;  // max move-end among the cycles counted this round
  for (const ActivationRecord& rec : records_) {
    const RobotId r = rec.activation.robot;
    if (rec.activation.t_look < bounds.back()) continue;  // started before round
    if (!done[r]) {
      done[r] = true;
      round_end = std::max(round_end, rec.activation.t_move_end);
      if (--remaining == 0) {
        bounds.push_back(round_end);
        std::fill(done.begin(), done.end(), false);
        remaining = n;
        round_end = bounds.back();
      }
    }
  }
  return bounds;
}

}  // namespace cohesion::core
