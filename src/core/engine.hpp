// The continuous-time Look-Compute-Move simulation engine.
//
// Activations are committed in non-decreasing Look-time order. Because a
// robot's trajectory is fixed at commit time (Compute uses only the
// snapshot; OBLOT robots are oblivious), any later Look can evaluate every
// robot's exact position by piecewise-linear interpolation — which yields
// the Async semantics of the paper: a Look may catch another robot anywhere
// along its current trajectory.
//
// Positions live in two tiers:
//
//  * Trace — the append-only full history. Replay, validators, metrics and
//    serialization consume it; reconstructing a position from it costs a
//    binary search over the robot's activation history.
//  * KinematicState — each robot's *current* trajectory segment, updated on
//    commit. Since commits arrive in non-decreasing Look order, every
//    position the hot path needs (at or after the latest segment's Look) is
//    an O(1) interpolation of that segment, bit-identical to what the Trace
//    would reconstruct.
//
// Each Look evaluates all current positions once through the cache, indexes
// them in a uniform grid (SpatialGrid, cell side = the visibility radius),
// and builds the snapshot from the <= 3x3 cells around the looking robot
// instead of scanning all n robots. Consecutive Looks at the same time
// (synchronous rounds) reuse the same grid: a commit leaves every position
// at its own Look time unchanged, except a zero-duration move — which drops
// the cached grid (see Engine::step). The pre-index brute-force path
// is kept, selectable via EngineConfig::use_spatial_index = false, as the
// reference for equivalence tests and speedup benchmarks; both paths apply
// the identical visibility predicate and draw RNG in the identical order,
// so they produce bit-identical traces.
#pragma once

#include <functional>
#include <memory>
#include <random>
#include <vector>

#include "core/activation.hpp"
#include "core/algorithm.hpp"
#include "core/error_model.hpp"
#include "core/kinematics.hpp"
#include "core/scheduler.hpp"
#include "core/soa_pool.hpp"
#include "core/spatial_index.hpp"
#include "core/stop_condition.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"
#include "geometry/vec2.hpp"

namespace cohesion::core {

/// Visibility semantics (paper §2.1 and §6.2).
struct VisibilityModel {
  double radius = 1.0;                  ///< common visibility range V
  std::vector<double> per_robot_radii;  ///< optional per-robot radii (§6.2)
  bool open_ball = false;               ///< strict < V instead of <= V
  bool multiplicity_detection = false;  ///< co-located robots distinguishable

  [[nodiscard]] double radius_of(RobotId r) const {
    return per_robot_radii.empty() ? radius : per_robot_radii.at(r);
  }
};

struct EngineConfig {
  VisibilityModel visibility;
  ErrorModel error;
  std::uint64_t seed = 1;
  /// Grid + kinematic-cache hot path. false selects the reference
  /// brute-force scan over the Trace (bit-identical results, O(n log k)
  /// per snapshot) — used by equivalence tests and scaling benchmarks.
  bool use_spatial_index = true;
  /// Incremental cell maintenance (IncrementalGrid): robots are re-bucketed
  /// only when their trajectory segment changes, so async schedulers —
  /// whose every Look has a distinct time — stop paying an O(n) grid
  /// rebuild per activation. false selects the per-Look-time full rebuild,
  /// kept as the bit-identical reference for equivalence tests and the
  /// incremental-vs-rebuild benchmark axis. Ignored when use_spatial_index
  /// is false.
  bool incremental_index = true;
  /// Structure-of-arrays snapshot kernel (src/core/soa_pool): candidate
  /// positions are gathered into parallel coordinate lanes — evaluated
  /// straight from an SoA segment pool on the incremental path — and
  /// pre-filtered by a vectorizable squared-distance loop against certified
  /// conservative bounds; only the narrow borderline band re-runs the exact
  /// hypot predicate, so results stay bit-identical to the scalar reference
  /// (architecture contract 12, certified by tests/core/soa_equivalence_
  /// test.cpp under ASan and -march=native). false keeps the scalar
  /// reference paths, which remain the default. Requires use_spatial_index
  /// — the kernel sits behind the grid candidate queries.
  bool soa_kernel = false;
  /// Materialize the full activation history in the in-memory Trace. false
  /// selects the bounded-memory mode: the engine keeps only each robot's
  /// current + previous trajectory segment (O(robot count) state, not
  /// O(activation count)); history consumers attach through
  /// set_trace_sink() instead. Requires use_spatial_index — the reference
  /// scan path reads the Trace by construction.
  bool record_history = true;
};

/// Hook that lets an adversary replace the perceived snapshot of a given
/// robot wholesale (used by the Section-7 impossibility construction, which
/// chooses worst-case in-spec perception). Receives the robot, the look
/// time, and the honestly-perceived snapshot; returns the snapshot actually
/// delivered to the algorithm.
using PerceptionHook =
    std::function<Snapshot(RobotId, Time, const Snapshot&)>;

class Engine final : public SimulationView {
 public:
  Engine(std::vector<geom::Vec2> initial, const Algorithm& algorithm, Scheduler& scheduler,
         EngineConfig config = {});

  // SimulationView:
  [[nodiscard]] std::size_t robot_count() const override { return trace_.robot_count(); }
  [[nodiscard]] Time busy_until(RobotId robot) const override { return busy_until_.at(robot); }
  [[nodiscard]] Time frontier() const override { return frontier_; }
  [[nodiscard]] geom::Vec2 position(RobotId robot, Time t) const override;
  [[nodiscard]] std::size_t activations_of(RobotId robot) const override {
    return activation_counts_.at(robot);
  }

  /// Execute one activation. Returns false iff the scheduler ended the run.
  bool step();

  /// Run until `max_activations` have been committed or the scheduler ends.
  /// Returns the number of activations executed.
  std::size_t run(std::size_t max_activations);

  /// Run until `stop` fires (diameter <= epsilon, predicate true, or budget
  /// exhausted) or the scheduler ends. Returns true iff the final diameter
  /// is <= stop.epsilon.
  bool run_until(const StopCondition& stop);

  /// Convenience overload of run_until for the common diameter-only rule.
  bool run_until_converged(double epsilon, std::size_t max_activations,
                           std::size_t check_every = 64);

  /// Mark a robot crashed (fail-stop, §6.1): from now on its activations
  /// perform the nil movement.
  void crash(RobotId robot) { crashed_.at(robot) = true; }

  /// The materialized history. With record_history = false this holds only
  /// the initial configuration (no records) — consume the sink instead.
  [[nodiscard]] const Trace& trace() const { return trace_; }
  [[nodiscard]] std::vector<geom::Vec2> current_configuration() const;
  [[nodiscard]] double current_diameter() const;

  /// Time of the last committed move end (0 before any activation).
  /// Maintained by the engine itself, so it is exact in both history modes.
  [[nodiscard]] Time end_time() const { return end_time_; }

  /// Attach a sink that receives every subsequently-committed
  /// ActivationRecord (after the in-memory Trace, when that is recording).
  /// Non-owning; pass nullptr to detach. The engine never calls finish() —
  /// the owner does, once stepping is over.
  void set_trace_sink(TraceSink* sink) { sink_ = sink; }

  void set_perception_hook(PerceptionHook hook) { perception_hook_ = std::move(hook); }

 private:
  [[nodiscard]] Snapshot honest_snapshot(RobotId robot, Time t, const LocalFrame& frame);
  /// Visible-neighbor enumeration via grid cells (positions through the
  /// kinematic cache, grid rebuilt per distinct look time).
  void snapshot_via_grid(RobotId robot, Time t, const LocalFrame& frame, Snapshot& snap);
  /// Visible-neighbor enumeration via the incrementally-maintained grid:
  /// candidate cells from IncrementalGrid, exact positions through the
  /// kinematic cache, no per-Look-time rebuild.
  void snapshot_via_incremental(RobotId robot, Time t, const LocalFrame& frame, Snapshot& snap);
  /// Reference visible-neighbor enumeration: full scan over Trace positions.
  void snapshot_via_scan(RobotId robot, Time t, const LocalFrame& frame, Snapshot& snap);
  /// Emit the SoA filter's survivors into the snapshot — the same
  /// ascending-id perceive() sequence the scalar loops produce.
  void append_soa_survivors(const LocalFrame& frame, Snapshot& snap);
  /// Collapse or flag co-located perceived robots (paper footnote 4).
  void resolve_multiplicity(Snapshot& snap);
  /// Ensure positions_now_/grid_ describe time `t`.
  void refresh_grid(Time t);
  /// positions_now_[robot] at the incremental path's current query time,
  /// computed on first use per (robot, time) and invalidated on commit.
  [[nodiscard]] geom::Vec2 cached_position(RobotId robot);
  /// Position from history for a query the kinematic cache's current
  /// segment cannot answer (t before the segment's Look): the Trace when
  /// recording, else the retained previous segment.
  [[nodiscard]] geom::Vec2 history_position(RobotId robot, Time t) const;

  const Algorithm& algorithm_;
  Scheduler& scheduler_;
  EngineConfig config_;
  Trace trace_;
  KinematicState kin_;
  std::vector<Time> busy_until_;
  std::vector<std::size_t> activation_counts_;
  std::vector<bool> crashed_;
  Time frontier_ = 0.0;
  Time end_time_ = 0.0;  // running max of committed t_move_end
  std::mt19937_64 rng_;
  TraceSink* sink_ = nullptr;
  PerceptionHook perception_hook_;

  SpatialGrid grid_;
  std::vector<geom::Vec2> positions_now_;   // all positions at grid_time_
  std::vector<std::size_t> neighbor_ids_;   // query scratch
  std::vector<std::uint32_t> mult_order_;   // multiplicity sort scratch
  Time grid_time_ = 0.0;
  bool grid_valid_ = false;

  // Incremental path (config_.incremental_index): persistent buckets,
  // per-robot position stamps instead of wholesale refreshes.
  IncrementalGrid inc_grid_;
  std::vector<std::uint64_t> pos_epoch_;  // positions_now_[r] valid iff == epoch_
  std::uint64_t epoch_ = 1;               // bumped whenever pos_time_ changes
  Time pos_time_ = 0.0;                   // time positions_now_ entries describe
  Time inc_time_ = 0.0;                   // last incremental query time

  // SoA kernel (config_.soa_kernel): segment lanes mirroring kin_, and the
  // gather/filter scratch. Empty when the scalar paths are selected.
  SoaSegmentPool soa_segments_;
  SoaNeighborFilter soa_filter_;
};

}  // namespace cohesion::core
