// Visibility graphs over configurations (paper §2.1) and the edge/
// connectivity predicates used by Cohesive Convergence.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "geometry/vec2.hpp"

namespace cohesion::core {

/// Undirected visibility graph: edge (i, j) iff |P_i P_j| <= V.
class VisibilityGraph {
 public:
  VisibilityGraph(const std::vector<geom::Vec2>& positions, double v, bool open_ball = false);

  [[nodiscard]] bool has_edge(RobotId a, RobotId b) const;
  [[nodiscard]] const std::vector<std::pair<RobotId, RobotId>>& edges() const { return edges_; }
  [[nodiscard]] std::size_t robot_count() const { return n_; }
  [[nodiscard]] bool connected() const;

  /// True iff every edge of *this also exists in `later` — the invariant
  /// E(0) subseteq E(t) of Cohesive Convergence.
  [[nodiscard]] bool subset_of(const VisibilityGraph& later) const;

  /// Number of edges of *this missing from `later`.
  [[nodiscard]] std::size_t edges_lost(const VisibilityGraph& later) const;

 private:
  std::size_t n_;
  std::vector<std::pair<RobotId, RobotId>> edges_;  // a < b, sorted
};

/// Max over initially-visible pairs of their distance at `positions`,
/// normalized by V: > 1 means some initial visibility was lost.
double worst_initial_pair_stretch(const std::vector<geom::Vec2>& initial,
                                  const std::vector<geom::Vec2>& positions, double v);

}  // namespace cohesion::core
