// The result of a Look phase: an instantaneous, egocentric, possibly
// distorted view of the visible neighbourhood (paper §2.2).
#pragma once

#include <vector>

#include "geometry/vec2.hpp"

namespace cohesion::core {

/// One robot as perceived by the observer, in the observer's local
/// (private, possibly distorted) coordinate system. The observer itself is
/// at the origin and is NOT included.
struct ObservedRobot {
  geom::Vec2 position;      ///< perceived local position
  bool multiplicity = false;  ///< >1 robot here (set only with multiplicity detection)
};

/// Input to an activation's Compute phase.
struct Snapshot {
  std::vector<ObservedRobot> neighbours;  ///< visible robots, observer excluded

  [[nodiscard]] bool empty() const { return neighbours.empty(); }
  [[nodiscard]] std::size_t size() const { return neighbours.size(); }

  /// Perceived distance to the furthest visible neighbour — the paper's
  /// working lower bound V_Y on the (unknown) visibility radius.
  [[nodiscard]] double furthest_distance() const {
    double best = 0.0;
    for (const auto& o : neighbours) best = std::max(best, o.position.norm());
    return best;
  }
};

}  // namespace cohesion::core
