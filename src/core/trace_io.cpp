#include "core/trace_io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace cohesion::core {

namespace {
constexpr const char* kHeader = "cohesion-trace-v1";
}

void write_trace_csv(const Trace& trace, std::ostream& out) {
  out << kHeader << '\n';
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (RobotId r = 0; r < trace.robot_count(); ++r) {
    const auto p = trace.initial_configuration()[r];
    out << "I," << r << ',' << p.x << ',' << p.y << '\n';
  }
  for (const ActivationRecord& rec : trace.records()) {
    const Activation& a = rec.activation;
    out << "A," << a.robot << ',' << a.t_look << ',' << a.t_move_start << ',' << a.t_move_end
        << ',' << a.realized_fraction << ',' << rec.from.x << ',' << rec.from.y << ','
        << rec.planned.x << ',' << rec.planned.y << ',' << rec.realized.x << ',' << rec.realized.y
        << ',' << rec.seen << '\n';
  }
}

void write_trace_csv(const Trace& trace, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_trace_csv: cannot open " + path);
  write_trace_csv(trace, f);
}

Trace read_trace_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    throw std::runtime_error("read_trace_csv: missing header");
  }
  std::vector<geom::Vec2> initial;
  std::vector<ActivationRecord> records;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string field;
    auto next = [&]() -> std::string {
      if (!std::getline(ss, field, ',')) {
        throw std::runtime_error("read_trace_csv: truncated line: " + line);
      }
      return field;
    };
    const std::string tag = next();
    if (tag == "I") {
      const std::size_t r = std::stoul(next());
      if (r != initial.size()) throw std::runtime_error("read_trace_csv: out-of-order robots");
      const double x = std::stod(next());
      const double y = std::stod(next());
      initial.push_back({x, y});
    } else if (tag == "A") {
      ActivationRecord rec;
      rec.activation.robot = std::stoul(next());
      rec.activation.t_look = std::stod(next());
      rec.activation.t_move_start = std::stod(next());
      rec.activation.t_move_end = std::stod(next());
      rec.activation.realized_fraction = std::stod(next());
      rec.from.x = std::stod(next());
      rec.from.y = std::stod(next());
      rec.planned.x = std::stod(next());
      rec.planned.y = std::stod(next());
      rec.realized.x = std::stod(next());
      rec.realized.y = std::stod(next());
      rec.seen = std::stoul(next());
      records.push_back(rec);
    } else {
      throw std::runtime_error("read_trace_csv: unknown tag " + tag);
    }
  }
  Trace trace(std::move(initial));
  for (const auto& rec : records) {
    if (rec.activation.robot >= trace.robot_count()) {
      throw std::runtime_error("read_trace_csv: record for unknown robot");
    }
    trace.record(rec);
  }
  return trace;
}

Trace read_trace_csv_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("read_trace_csv_file: cannot open " + path);
  return read_trace_csv(f);
}

}  // namespace cohesion::core
