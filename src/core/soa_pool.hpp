// Structure-of-arrays pools for the vectorizable snapshot kernel
// (EngineConfig::soa_kernel).
//
// The scalar snapshot paths pay one std::hypot per candidate — an exact
// but expensive libm call — plus, on the incremental path, a branchy
// per-candidate segment interpolation. This file provides the SoA
// counterparts the kernel seam in Engine::honest_snapshot dispatches to:
//
//  * SoaSegmentPool — every robot's current trajectory segment split into
//    parallel coordinate/time lanes. gather-free evaluation of many robots
//    at one time is a straight-line loop of fused select/lerp lanes the
//    compiler can vectorize, running KinematicState::eval's exact branch
//    arithmetic per lane (contract: bit-identical positions).
//
//  * SoaNeighborFilter — gathers candidate positions into x/y lanes,
//    computes squared distances in one vectorizable pass, and classifies
//    each lane against *certified* conservative bounds around the exact
//    visibility ball: lanes certainly inside are kept, lanes certainly
//    outside dropped, and only the narrow borderline band re-runs the
//    exact scalar predicate (Vec2::distance_to, i.e. std::hypot). The
//    decision per candidate is therefore the exact predicate's decision by
//    construction — never the squared-distance approximation's — so the
//    SoA path stays bit-identical to the scalar reference regardless of
//    compiler FP contraction or vector width (architecture contract 12),
//    while almost every candidate skips the hypot call.
//
// Certified bounds: for a ball of radius b (open: d < b; closed: d <= b),
//   definite_in2  = (b * (1 - kSoaCertSlack))^2   — d2 <= it  => inside
//   definite_out2 = (b * (1 + kSoaCertSlack))^2   — d2 >  it  => outside
// with kSoaCertSlack = 1e-9, nine orders of magnitude wider than the
// ~1e-16 relative error of d2 = dx*dx + dy*dy (with or without FMA) and of
// hypot, so a misclassification would need an error 10^7 times larger than
// double rounding allows. Degenerate radii (b <= 0, non-finite, or so
// small/large that the slack rounds away or the square leaves the normal
// range — underflow near sqrt(DBL_MIN) flushes squared distances toward 0
// and would fake certificates) disable the corresponding bound, degrading
// those lanes to the exact check — slow but still exact.
#pragma once

#include <cstdint>
#include <vector>

#include "core/activation.hpp"
#include "core/types.hpp"
#include "geometry/vec2.hpp"

namespace cohesion::core {

/// Relative half-width of the borderline band around the visibility radius
/// inside which the SoA filter defers to the exact scalar predicate.
inline constexpr double kSoaCertSlack = 1e-9;

/// Squared-distance bounds certifying the exact ball predicate of radius b.
/// d2 <= definite_in2 certifies the predicate true; d2 > definite_out2
/// certifies it false; between them only the exact predicate decides.
struct CertifiedBallBounds {
  double definite_in2;
  double definite_out2;
};

/// Bounds for the ball of radius `b` (open `d < b` or closed `d <= b` —
/// both are certified by the same pair). Degenerate b (<= 0, non-finite,
/// or where the slack is absorbed by rounding) disables the affected bound
/// so every lane falls back to the exact predicate.
[[nodiscard]] CertifiedBallBounds certified_ball_bounds(double b);

/// SoA mirror of KinematicState's per-robot current segments. commit() is
/// fed the same ActivationRecords in the same order, and position lanes are
/// evaluated with the exact arithmetic of KinematicState::eval, so every
/// value read out of the pool is bit-identical to the scalar cache.
class SoaSegmentPool {
 public:
  SoaSegmentPool() = default;

  /// Rebuild as n settled robots resting at `initial` (the degenerate
  /// segment initial[r] -> initial[r], matching KinematicState's ctor).
  void reset(const std::vector<geom::Vec2>& initial);

  /// Replace the committing robot's segment lanes (engine commit order).
  void commit(const ActivationRecord& rec);

  [[nodiscard]] std::size_t robot_count() const { return from_x_.size(); }

  /// Scalar per-robot evaluation — KinematicState::eval's exact branches.
  [[nodiscard]] geom::Vec2 position_at(RobotId robot, Time t) const;

  // Raw lanes for the filter's gather loop.
  [[nodiscard]] const double* from_x() const { return from_x_.data(); }
  [[nodiscard]] const double* from_y() const { return from_y_.data(); }
  [[nodiscard]] const double* to_x() const { return to_x_.data(); }
  [[nodiscard]] const double* to_y() const { return to_y_.data(); }
  [[nodiscard]] const double* t_move_start() const { return t_start_.data(); }
  [[nodiscard]] const double* t_move_end() const { return t_end_.data(); }

 private:
  std::vector<double> from_x_, from_y_;    // segment start point
  std::vector<double> to_x_, to_y_;        // realized end point
  std::vector<double> t_start_, t_end_;    // move interval [start, end]
};

/// Gather + certified squared-distance prefilter over one candidate list.
/// Scratch buffers persist across queries; one instance per engine.
class SoaNeighborFilter {
 public:
  /// Load lanes from instant positions (the grid path: positions_now_ at
  /// the current grid time), skipping `self`. Candidate order (ascending
  /// from the index) is preserved, so survivors come out ascending too.
  void gather_positions(const std::vector<geom::Vec2>& positions,
                        const std::vector<std::size_t>& candidates, RobotId self);

  /// Load lanes by evaluating each candidate's segment at time `t` (the
  /// incremental path), skipping `self`. The per-lane select/lerp runs
  /// KinematicState::eval's exact arithmetic, vectorizably.
  void gather_segments(const SoaSegmentPool& pool,
                       const std::vector<std::size_t>& candidates, RobotId self, Time t);

  /// Classify every gathered lane against the exact visibility predicate
  /// around `self` (closed: d <= radius + kVisibilityEpsilon; open:
  /// d < radius, with d = Vec2::distance_to). Certified-out lanes are
  /// dropped, certified-in lanes kept, borderline lanes re-checked exactly.
  void filter(geom::Vec2 self, double radius, bool open_ball);

  [[nodiscard]] std::size_t survivor_count() const { return survivors_.size(); }
  [[nodiscard]] std::size_t survivor_id(std::size_t i) const { return ids_[survivors_[i]]; }
  /// The offset p - self of survivor i, bit-identical to the scalar paths'
  /// `p - self` (the filter's dx/dy lanes are exactly that subtraction).
  [[nodiscard]] geom::Vec2 survivor_offset(std::size_t i) const {
    return {dx_[survivors_[i]], dy_[survivors_[i]]};
  }

 private:
  std::vector<std::uint32_t> ids_;  // candidate ids, ascending, self removed
  std::vector<double> px_, py_;     // gathered absolute positions
  // Contiguous per-candidate segment scratch: a plain scalar gather pass
  // fills these so the eval pass below is pure unit-stride lane math the
  // vectorizer accepts (indexed loads mixed into the arithmetic defeat it).
  std::vector<double> seg_fx_, seg_fy_, seg_tx_, seg_ty_, seg_ts_, seg_te_;
  std::vector<double> dx_, dy_;     // p - self per lane
  std::vector<double> d2_;          // dx*dx + dy*dy per lane
  std::vector<std::uint32_t> survivors_;  // lane indices passing the predicate
};

}  // namespace cohesion::core
