# Container image for the cohesion_serve work-queue (docs/operations.md).
# Build stage compiles just the library + tools (no tests/benches, so the
# image needs no gtest/benchmark); the runtime stage carries the two
# binaries the serve topology uses — cohesion_serve (daemon/worker/submit
# CLI) and cohesion_run (the runner workers spawn per lease) — plus the
# declarative specs under /opt/cohesion/specs for smoke submissions.
#
#   docker build -t cohesion .
#   docker run --rm cohesion --help
#
# The daemon/worker/submit topology lives in docker-compose.yml.
FROM debian:bookworm-slim AS build
RUN apt-get update \
    && apt-get install -y --no-install-recommends g++ cmake make \
    && rm -rf /var/lib/apt/lists/*
WORKDIR /src
COPY . .
RUN cmake -B build -S . \
        -DCOHESION_BUILD_TESTS=OFF \
        -DCOHESION_BUILD_BENCHES=OFF \
        -DCOHESION_BUILD_EXAMPLES=OFF \
    && cmake --build build -j"$(nproc)" --target cohesion_serve cohesion_run

FROM debian:bookworm-slim
# libstdc++/libgcc are already in bookworm-slim; the binaries need nothing
# else. Keep cohesion_run next to cohesion_serve: the worker's default
# --runner is its own sibling binary.
COPY --from=build /src/build/cohesion_serve /src/build/cohesion_run /usr/local/bin/
COPY --from=build /src/bench/specs /opt/cohesion/specs
# Daemon state (ledger) and worker scratch live under /var/lib/cohesion —
# mount a volume there so a restarted daemon container resumes its jobs.
RUN mkdir -p /var/lib/cohesion
WORKDIR /var/lib/cohesion
ENTRYPOINT ["/usr/local/bin/cohesion_serve"]
CMD ["--help"]
