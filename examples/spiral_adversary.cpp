// Domain scenario: the limits of asynchrony.
//
// Runs the Section-7 impossibility construction end to end: a discrete
// spiral of robots at the visibility threshold, an adversarial scheduler
// with unbounded nesting that flattens the spiral sliver by sliver while
// one robot's stale move is pending, and the final snap that separates the
// configuration into two linearly separable components.
#include <iostream>

#include "adversary/spiral.hpp"
#include "metrics/configurations.hpp"

int main() {
  using namespace cohesion;

  const double psi = 0.30;
  const double edge_scale = 0.92;

  const auto cfg = metrics::spiral_configuration(psi, edge_scale);
  std::cout << "spiral: psi = " << psi << ", " << cfg.positions.size()
            << " robots, chord sweep = " << cfg.total_chord_angle << " rad (target 3*pi/8 = "
            << 3.0 * 3.14159265358979 / 8.0 << ")\n";

  const auto r = adversary::run_spiral_experiment(psi, edge_scale);

  std::cout << "initially connected:        " << (r.initially_connected ? "yes" : "no") << "\n"
            << "activations (total):        " << r.activations << "\n"
            << "nested inside X_A interval: " << r.nesting_depth << "\n"
            << "schedule certified NestA:   " << (r.schedule_nested ? "yes" : "no") << "\n"
            << "X_A forced move (zeta):     " << r.zeta << "\n"
            << "max chain drift |d(X_j,A)|: " << r.max_chain_drift << "  (paper bound O(psi^2) = "
            << 4.0 * psi * psi << ")\n"
            << "final |X_A X_B|:            " << r.final_separation_ab << "  (V = 1)\n"
            << "visibility broken:          " << (r.visibility_broken ? "YES" : "no") << "\n"
            << "finally connected:          " << (r.finally_connected ? "yes" : "NO") << "\n";

  std::cout << "\nThe same construction cannot be carried out under k-Async for any\n"
               "fixed k: the adversary needed " << r.nesting_depth
            << " activations nested inside one interval,\nwhile k-Async caps that at k. "
               "This is the paper's separation between\nbounded and unbounded asynchrony.\n";
  return r.visibility_broken && !r.finally_connected ? 0 : 1;
}
