// Quickstart: ten robots on a line, limited visibility, k-Async scheduling,
// the paper's KKNPS algorithm — watch them converge to a point.
//
//   $ ./example_quickstart
//
// This is the smallest end-to-end use of the library's declarative API:
//   1. describe the run as a RunSpec — every ingredient (algorithm,
//      scheduler, initial configuration, error model, stop rule) is a
//      string registry key plus JSON params, so the whole run is one
//      serializable artifact;
//   2. instantiate it — registry lookups build the engine and derive the
//      component seeds from the spec's one master seed;
//   3. run until the stop condition fires;
//   4. inspect the trace.
//
// The printed JSON is the spec itself: save it, hand it to the
// `cohesion_run` CLI, or sweep it over a parameter grid with
// run::ExperimentSpec + run::BatchRunner (see docs/experiments.md).
#include <iostream>

#include "metrics/stats.hpp"
#include "run/instantiate.hpp"

int main() {
  using namespace cohesion;

  // 1. Ten robots, spacing 0.9, visibility radius 1: a connected chain,
  //    driven by the paper's algorithm for 2-bounded asynchrony under a
  //    random 2-Async adversarial scheduler with non-rigid motion.
  run::RunSpec spec;
  spec.name = "quickstart";
  spec.n = 10;
  spec.seed = 1;
  spec.algorithm = {.type = "kknps", .params = run::Json::parse(R"({"k": 2})")};
  spec.scheduler = {.type = "kasync", .params = run::Json::parse(R"({"k": 2, "xi": 0.5})")};
  spec.initial = {.type = "line", .params = run::Json::parse(R"({"spacing": 0.9})")};
  spec.stop.epsilon = 0.05;  // run until the swarm fits in a 0.05-ball
  spec.stop.max_activations = 200000;

  // 2. + 3. Build the engine from the registries and run it.
  run::RunInstance inst = run::instantiate(spec);
  const bool converged = inst.engine->run_until(spec.stop);

  // 4. Report.
  const auto report = metrics::analyze(inst.engine->trace(), spec.visibility_radius,
                                       spec.stop.epsilon);
  std::cout << "spec:             " << spec.to_json().dump() << "\n"
            << "algorithm:        " << inst.algorithm->name() << " (k = 2)\n"
            << "scheduler:        " << inst.scheduler->name() << "\n"
            << "robots:           " << inst.initial.size() << "\n"
            << "converged:        " << (converged ? "yes" : "no") << "\n"
            << "initial diameter: " << report.initial_diameter << "\n"
            << "final diameter:   " << report.final_diameter << "\n"
            << "rounds:           " << report.rounds << "\n"
            << "activations:      " << report.activations << "\n"
            << "cohesive:         " << (report.cohesive ? "yes (no initial edge ever lost)" : "NO")
            << "\n";
  return converged && report.cohesive ? 0 : 1;
}
