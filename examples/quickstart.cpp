// Quickstart: ten robots on a line, limited visibility, k-Async scheduling,
// the paper's KKNPS algorithm — watch them converge to a point.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the library's public API:
//   1. build an initial configuration,
//   2. pick an algorithm and a scheduler,
//   3. run the engine,
//   4. inspect the trace.
#include <iostream>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "metrics/configurations.hpp"
#include "metrics/stats.hpp"
#include "sched/asynchronous.hpp"

int main() {
  using namespace cohesion;

  // 1. Ten robots, spacing 0.9, visibility radius 1: a connected chain.
  const auto initial = metrics::line_configuration(10, 0.9);

  // 2. The paper's algorithm for 2-bounded asynchrony, and a random 2-Async
  //    adversarial scheduler with non-rigid motion.
  const algo::KknpsAlgorithm algorithm({.k = 2});
  sched::KAsyncScheduler::Params sparams;
  sparams.k = 2;
  sparams.xi = 0.5;  // the adversary may stop robots halfway
  sched::KAsyncScheduler scheduler(initial.size(), sparams);

  // 3. Run until the configuration fits in a 0.05-ball.
  core::EngineConfig config;
  config.visibility.radius = 1.0;
  core::Engine engine(initial, algorithm, scheduler, config);
  const bool converged = engine.run_until_converged(/*epsilon=*/0.05, /*max_activations=*/200000);

  // 4. Report.
  const auto report = metrics::analyze(engine.trace(), 1.0, 0.05);
  std::cout << "algorithm:        " << algorithm.name() << " (k = 2)\n"
            << "scheduler:        " << scheduler.name() << "\n"
            << "robots:           " << initial.size() << "\n"
            << "converged:        " << (converged ? "yes" : "no") << "\n"
            << "initial diameter: " << report.initial_diameter << "\n"
            << "final diameter:   " << report.final_diameter << "\n"
            << "rounds:           " << report.rounds << "\n"
            << "activations:      " << report.activations << "\n"
            << "cohesive:         " << (report.cohesive ? "yes (no initial edge ever lost)" : "NO")
            << "\n";
  return converged && report.cohesive ? 0 : 1;
}
