// cohesion_sim — the general-purpose command-line simulator.
//
// A downstream user's entry point: pick an algorithm, a scheduler, an
// initial configuration and error parameters; get convergence statistics,
// an optional CSV trace and an optional SVG rendering.
//
//   cohesion_sim --algo kknps --k 2 --sched kasync --n 24 --config random
//                --delta 0.05 --skew 0.1 --xi 0.5 --eps 0.05
//                --svg run.svg --trace run.csv        (one command line)
//
// The flags are a thin veneer over a declarative run::RunSpec: --algo,
// --sched and --config are registry keys passed through verbatim (register
// a factory and it is immediately drivable from here), and --spec prints
// the assembled spec JSON instead of running — pipe it to `cohesion_run`
// to sweep it. Run with --help for the full flag list.
#include <cmath>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "core/trace_io.hpp"
#include "metrics/stats.hpp"
#include "metrics/svg.hpp"
#include "run/instantiate.hpp"
#include "run/registry.hpp"

using namespace cohesion;

namespace {

struct Options {
  std::string algo = "kknps";
  std::string sched = "kasync";
  std::string config = "random";
  std::size_t n = 16;
  std::size_t k = 1;
  double v = 1.0;
  double delta = 0.0;
  double skew = 0.0;
  double motion = 0.0;
  double xi = 1.0;
  double eps = 0.05;
  double spacing = 0.9;
  std::size_t max_activations = 500000;
  std::uint64_t seed = 1;
  std::string svg_path;
  std::string trace_path;
  bool reflection = false;
  bool print_spec = false;
};

void usage() {
  const auto keys = [](const std::vector<std::string>& ks) {
    std::string out;
    for (const std::string& k : ks) out += (out.empty() ? "" : " | ") + k;
    return out;
  };
  std::cout <<
      "cohesion_sim — OBLOT point-convergence simulator\n\n"
      "  --algo   " << keys(run::algorithms().keys()) << "  (default kknps)\n"
      "  --sched  " << keys(run::schedulers().keys()) << "  (default kasync)\n"
      "  --config " << keys(run::initials().keys()) << "  (default random)\n"
      "  --n      robot count (default 16)\n"
      "  --k      asynchrony bound for kasync/knesta + kknps scaling (default 1)\n"
      "  --v      visibility radius (default 1)\n"
      "  --delta  relative distance-error bound (default 0)\n"
      "  --skew   angle-distortion skew lambda (default 0)\n"
      "  --motion quadratic motion-error coefficient (default 0)\n"
      "  --xi     minimum realized move fraction, (0,1] (default 1 = rigid)\n"
      "  --eps    convergence diameter (default 0.05)\n"
      "  --spacing initial spacing for line/grid/circle, in units of v (default 0.9)\n"
      "  --max    activation budget (default 500000)\n"
      "  --seed   master seed (default 1; component seeds are derived)\n"
      "  --svg    write an SVG rendering of the run to this path\n"
      "  --trace  write the full activation trace as CSV to this path\n"
      "  --reflection  allow mirrored local frames (no chirality)\n"
      "  --spec   print the assembled RunSpec JSON and exit (for cohesion_run)\n";
}

bool parse(int argc, char** argv, Options& opt) {
  std::map<std::string, std::string> kv;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--help" || key == "-h") return false;
    if (key == "--reflection") {
      opt.reflection = true;
      continue;
    }
    if (key == "--spec") {
      opt.print_spec = true;
      continue;
    }
    if (i + 1 >= argc || key.rfind("--", 0) != 0) {
      std::cerr << "bad argument: " << key << "\n";
      return false;
    }
    kv[key.substr(2)] = argv[++i];
  }
  auto get = [&](const char* name, auto& out) {
    const auto it = kv.find(name);
    if (it == kv.end()) return;
    std::istringstream ss(it->second);
    ss >> out;
  };
  get("algo", opt.algo);
  get("sched", opt.sched);
  get("config", opt.config);
  get("n", opt.n);
  get("k", opt.k);
  get("v", opt.v);
  get("delta", opt.delta);
  get("skew", opt.skew);
  get("motion", opt.motion);
  get("xi", opt.xi);
  get("eps", opt.eps);
  get("spacing", opt.spacing);
  get("max", opt.max_activations);
  get("seed", opt.seed);
  get("svg", opt.svg_path);
  get("trace", opt.trace_path);
  return true;
}

/// Map the flags onto a declarative spec; all component construction is
/// registry lookups from here on.
run::RunSpec build_spec(const Options& opt) {
  run::RunSpec spec;
  spec.name = "cohesion_sim";
  spec.n = opt.n;
  spec.seed = opt.seed;
  spec.visibility_radius = opt.v;

  spec.algorithm.type = opt.algo;
  if (opt.algo == "kknps") {
    spec.algorithm.params.set("k", opt.k);
    spec.algorithm.params.set("distance_delta", opt.delta);
  } else if (opt.algo == "kknps3d") {
    spec.algorithm.params.set("k", opt.k);
  } else if (opt.algo == "ando") {
    spec.algorithm.params.set("v", opt.v);
  }

  spec.scheduler.type = opt.sched;
  if (opt.sched == "kasync" || opt.sched == "knesta") spec.scheduler.params.set("k", opt.k);
  if (opt.sched != "fsync") spec.scheduler.params.set("xi", opt.xi);

  spec.error.type = "noisy";
  spec.error.params.set("distance_delta", opt.delta);
  spec.error.params.set("skew_lambda", opt.skew);
  spec.error.params.set("motion_quad_coeff", opt.motion);
  spec.error.params.set("allow_reflection", opt.reflection);

  spec.initial.type = opt.config;
  if (opt.config == "line" || opt.config == "grid") {
    spec.initial.params.set("spacing", opt.spacing);
  } else if (opt.config == "circle") {
    spec.initial.params.set("side", opt.spacing);
  }

  spec.stop.epsilon = opt.eps;
  spec.stop.max_activations = opt.max_activations;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }

  try {
    const run::RunSpec spec = build_spec(opt);
    if (opt.print_spec) {
      std::cout << spec.to_json().dump(2) << "\n";
      return 0;
    }

    run::RunInstance inst = run::instantiate(spec);
    const bool converged = inst.engine->run_until(spec.stop);
    const auto report = metrics::analyze(inst.engine->trace(), opt.v, opt.eps);

    std::cout << "algorithm:         " << inst.algorithm->name() << "\n"
              << "scheduler:         " << inst.scheduler->name() << " (k=" << opt.k << ")\n"
              << "robots:            " << inst.initial.size() << "\n"
              << "converged:         " << (converged ? "yes" : "no") << "\n"
              << "initial diameter:  " << report.initial_diameter << "\n"
              << "final diameter:    " << report.final_diameter << "\n"
              << "rounds:            " << report.rounds << "\n"
              << "rounds to halve:   " << report.rounds_to_halve << "\n"
              << "activations:       " << report.activations << "\n"
              << "cohesive:          " << (report.cohesive ? "yes" : "NO") << "\n"
              << "worst stretch / V: " << report.worst_stretch << "\n";

    if (!opt.svg_path.empty()) {
      metrics::write_svg(opt.svg_path, metrics::render_trace(inst.engine->trace(), opt.v));
      std::cout << "svg written:       " << opt.svg_path << "\n";
    }
    if (!opt.trace_path.empty()) {
      core::write_trace_csv(inst.engine->trace(), opt.trace_path);
      std::cout << "trace written:     " << opt.trace_path << "\n";
    }
    return converged ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "cohesion_sim: " << e.what() << "\n";
    return 2;
  }
}
