// cohesion_sim — the general-purpose command-line simulator.
//
// A downstream user's entry point: pick an algorithm, a scheduler, an
// initial configuration and error parameters; get convergence statistics,
// an optional CSV trace and an optional SVG rendering.
//
//   cohesion_sim --algo kknps --k 2 --sched kasync --n 24 --config random
//                --delta 0.05 --skew 0.1 --xi 0.5 --eps 0.05
//                --svg run.svg --trace run.csv        (one command line)
//
// Run with --help for the full flag list.
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "algo/baselines.hpp"
#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "core/trace_io.hpp"
#include "metrics/configurations.hpp"
#include "metrics/stats.hpp"
#include "metrics/svg.hpp"
#include "sched/asynchronous.hpp"
#include "sched/synchronous.hpp"

using namespace cohesion;

namespace {

struct Options {
  std::string algo = "kknps";
  std::string sched = "kasync";
  std::string config = "random";
  std::size_t n = 16;
  std::size_t k = 1;
  double v = 1.0;
  double delta = 0.0;
  double skew = 0.0;
  double motion = 0.0;
  double xi = 1.0;
  double eps = 0.05;
  double spacing = 0.9;
  std::size_t max_activations = 500000;
  std::uint64_t seed = 1;
  std::string svg_path;
  std::string trace_path;
  bool reflection = false;
};

void usage() {
  std::cout <<
      "cohesion_sim — OBLOT point-convergence simulator\n\n"
      "  --algo   kknps | ando | katreniak | cog | gcm | null    (default kknps)\n"
      "  --sched  fsync | ssync | knesta | kasync | async        (default kasync)\n"
      "  --config random | line | grid | ring | clusters | spiral (default random)\n"
      "  --n      robot count (default 16)\n"
      "  --k      asynchrony bound for kasync/knesta + kknps scaling (default 1)\n"
      "  --v      visibility radius (default 1)\n"
      "  --delta  relative distance-error bound (default 0)\n"
      "  --skew   angle-distortion skew lambda (default 0)\n"
      "  --motion quadratic motion-error coefficient (default 0)\n"
      "  --xi     minimum realized move fraction, (0,1] (default 1 = rigid)\n"
      "  --eps    convergence diameter (default 0.05)\n"
      "  --spacing initial spacing for line/grid/ring (default 0.9)\n"
      "  --max    activation budget (default 500000)\n"
      "  --seed   RNG seed (default 1)\n"
      "  --svg    write an SVG rendering of the run to this path\n"
      "  --trace  write the full activation trace as CSV to this path\n"
      "  --reflection  allow mirrored local frames (no chirality)\n";
}

bool parse(int argc, char** argv, Options& opt) {
  std::map<std::string, std::string> kv;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--help" || key == "-h") return false;
    if (key == "--reflection") {
      opt.reflection = true;
      continue;
    }
    if (i + 1 >= argc || key.rfind("--", 0) != 0) {
      std::cerr << "bad argument: " << key << "\n";
      return false;
    }
    kv[key.substr(2)] = argv[++i];
  }
  auto get = [&](const char* name, auto& out) {
    const auto it = kv.find(name);
    if (it == kv.end()) return;
    std::istringstream ss(it->second);
    ss >> out;
  };
  get("algo", opt.algo);
  get("sched", opt.sched);
  get("config", opt.config);
  get("n", opt.n);
  get("k", opt.k);
  get("v", opt.v);
  get("delta", opt.delta);
  get("skew", opt.skew);
  get("motion", opt.motion);
  get("xi", opt.xi);
  get("eps", opt.eps);
  get("spacing", opt.spacing);
  get("max", opt.max_activations);
  get("seed", opt.seed);
  get("svg", opt.svg_path);
  get("trace", opt.trace_path);
  return true;
}

std::vector<geom::Vec2> make_configuration(const Options& opt) {
  if (opt.config == "line") return metrics::line_configuration(opt.n, opt.spacing * opt.v);
  if (opt.config == "grid") return metrics::grid_configuration(opt.n, opt.spacing * opt.v);
  if (opt.config == "ring") {
    return metrics::regular_polygon_configuration(opt.n, opt.spacing * opt.v);
  }
  if (opt.config == "clusters") {
    return metrics::two_cluster_configuration(opt.n, 3, opt.v, opt.seed);
  }
  if (opt.config == "spiral") return metrics::spiral_configuration(0.3, 0.92 * opt.v).positions;
  return metrics::random_connected_configuration(
      opt.n, 0.4 * opt.v * std::sqrt(static_cast<double>(opt.n)), opt.v, opt.seed);
}

std::unique_ptr<core::Algorithm> make_algorithm(const Options& opt) {
  if (opt.algo == "ando") return std::make_unique<algo::AndoAlgorithm>(opt.v);
  if (opt.algo == "katreniak") return std::make_unique<algo::KatreniakAlgorithm>();
  if (opt.algo == "cog") return std::make_unique<algo::CogAlgorithm>();
  if (opt.algo == "gcm") return std::make_unique<algo::GcmAlgorithm>();
  if (opt.algo == "null") return std::make_unique<algo::NullAlgorithm>();
  return std::make_unique<algo::KknpsAlgorithm>(
      algo::KknpsAlgorithm::Params{.k = opt.k, .distance_delta = opt.delta});
}

std::unique_ptr<core::Scheduler> make_scheduler(const Options& opt) {
  if (opt.sched == "fsync") return std::make_unique<sched::FSyncScheduler>(opt.n);
  if (opt.sched == "ssync") {
    sched::SSyncScheduler::Params p;
    p.seed = opt.seed;
    p.xi = opt.xi;
    return std::make_unique<sched::SSyncScheduler>(opt.n, p);
  }
  if (opt.sched == "knesta") {
    sched::KNestAScheduler::Params p;
    p.k = opt.k;
    p.seed = opt.seed;
    p.xi = opt.xi;
    return std::make_unique<sched::KNestAScheduler>(opt.n, p);
  }
  sched::KAsyncScheduler::Params p;
  p.k = opt.sched == "async" ? static_cast<std::size_t>(-1) : opt.k;
  p.seed = opt.seed;
  p.xi = opt.xi;
  return std::make_unique<sched::KAsyncScheduler>(opt.n, p);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }

  const auto initial = make_configuration(opt);
  opt.n = initial.size();  // spiral/clusters may adjust n
  const auto algorithm = make_algorithm(opt);
  const auto scheduler = make_scheduler(opt);

  core::EngineConfig cfg;
  cfg.visibility.radius = opt.v;
  cfg.error.distance_delta = opt.delta;
  cfg.error.skew_lambda = opt.skew;
  cfg.error.motion_quad_coeff = opt.motion;
  cfg.error.allow_reflection = opt.reflection;
  cfg.seed = opt.seed;

  core::Engine engine(initial, *algorithm, *scheduler, cfg);
  const bool converged = engine.run_until_converged(opt.eps, opt.max_activations);
  const auto report = metrics::analyze(engine.trace(), opt.v, opt.eps);

  std::cout << "algorithm:         " << algorithm->name() << "\n"
            << "scheduler:         " << scheduler->name() << " (k=" << opt.k << ")\n"
            << "robots:            " << opt.n << "\n"
            << "converged:         " << (converged ? "yes" : "no") << "\n"
            << "initial diameter:  " << report.initial_diameter << "\n"
            << "final diameter:    " << report.final_diameter << "\n"
            << "rounds:            " << report.rounds << "\n"
            << "rounds to halve:   " << report.rounds_to_halve << "\n"
            << "activations:       " << report.activations << "\n"
            << "cohesive:          " << (report.cohesive ? "yes" : "NO") << "\n"
            << "worst stretch / V: " << report.worst_stretch << "\n";

  if (!opt.svg_path.empty()) {
    metrics::write_svg(opt.svg_path, metrics::render_trace(engine.trace(), opt.v));
    std::cout << "svg written:       " << opt.svg_path << "\n";
  }
  if (!opt.trace_path.empty()) {
    core::write_trace_csv(engine.trace(), opt.trace_path);
    std::cout << "trace written:     " << opt.trace_path << "\n";
  }
  return converged ? 0 : 1;
}
