// Domain scenario: aerial swarm in 3D (paper §6.3.2).
//
// The KKNPS safe regions generalize to balls in R^3; this example runs the
// 3D variant on a 27-robot lattice ("drone light show re-grouping") and
// prints the diameter decay per round.
#include <iostream>
#include <vector>

#include "algo/kknps3d.hpp"

int main() {
  using namespace cohesion;
  using geom::Vec3;

  // A 3x3x3 lattice with 0.7 spacing, visibility V = 1 (face neighbours
  // visible, space diagonal of a cell = 1.21 not).
  std::vector<Vec3> lattice;
  for (int x = 0; x < 3; ++x) {
    for (int y = 0; y < 3; ++y) {
      for (int z = 0; z < 3; ++z) {
        lattice.push_back({0.7 * x, 0.7 * y, 0.7 * z});
      }
    }
  }

  std::cout << "round,diameter\n";
  std::vector<Vec3> current = lattice;
  for (int block = 0; block <= 20; ++block) {
    double diam = 0.0;
    for (std::size_t i = 0; i < current.size(); ++i) {
      for (std::size_t j = i + 1; j < current.size(); ++j) {
        diam = std::max(diam, current[i].distance_to(current[j]));
      }
    }
    std::cout << block * 100 << ',' << diam << '\n';
    if (block == 20) break;
    current = algo::simulate_kknps3d(current, 1.0, /*k=*/1, /*rounds=*/100).final_positions;
  }

  const auto final_run = algo::simulate_kknps3d(lattice, 1.0, 1, 2000);
  std::cerr << "final diameter after 2000 rounds: " << final_run.final_diameter
            << "  worst initial-pair stretch: " << final_run.worst_initial_stretch << '\n';
  return final_run.final_diameter < 0.05 && final_run.worst_initial_stretch <= 1.0 + 1e-9 ? 0 : 1;
}
