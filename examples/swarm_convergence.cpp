// Domain scenario: a 64-robot swarm with sensing noise.
//
// Robots are dropped in a connected random blob; their compasses are
// arbitrary (random rotations, possible reflections), distance sensing is
// off by up to 5%, bearings are skewed, and motion overshoots quadratically.
// The swarm still congregates — the paper's §6.1 error-tolerance claims in
// action. Prints a hull-diameter decay series (Fig. 16-17 flavour) as CSV
// to stdout.
#include <iostream>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "metrics/configurations.hpp"
#include "metrics/stats.hpp"
#include "sched/asynchronous.hpp"

int main() {
  using namespace cohesion;

  constexpr std::size_t kRobots = 64;
  constexpr double kV = 1.0;
  constexpr double kDelta = 0.05;

  const auto initial = metrics::random_connected_configuration(kRobots, 3.2, kV, /*seed=*/2025);

  const algo::KknpsAlgorithm algorithm({.k = 3, .distance_delta = kDelta});
  sched::KAsyncScheduler::Params sparams;
  sparams.k = 3;
  sparams.xi = 0.4;
  sparams.seed = 2025;
  sched::KAsyncScheduler scheduler(kRobots, sparams);

  core::EngineConfig config;
  config.visibility.radius = kV;
  config.error.distance_delta = kDelta;
  config.error.skew_lambda = 0.1;
  config.error.motion_quad_coeff = 0.1;
  config.error.allow_reflection = true;  // no chirality
  config.seed = 2025;

  core::Engine engine(initial, algorithm, scheduler, config);
  const bool converged = engine.run_until_converged(0.08, 2000000);

  const auto& trace = engine.trace();
  std::cout << "round,time,diameter,hull_perimeter,connected\n";
  const auto bounds = trace.round_boundaries();
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const auto stats = metrics::configuration_stats(trace.configuration(bounds[i]), kV);
    std::cout << i << ',' << bounds[i] << ',' << stats.diameter << ',' << stats.hull_perimeter
              << ',' << (stats.connected ? 1 : 0) << '\n';
  }
  const auto report = metrics::analyze(trace, kV, 0.08);
  std::cerr << "converged=" << (converged ? "yes" : "no")
            << " cohesive=" << (report.cohesive ? "yes" : "no")
            << " rounds=" << report.rounds << " activations=" << report.activations << '\n';
  return converged && report.cohesive ? 0 : 1;
}
