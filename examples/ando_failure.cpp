// Domain scenario: why bounded asynchrony needs a different algorithm.
//
// Replays the paper's Figure-4 counterexample: a 5-robot configuration and
// a scripted 1-Async (and 2-NestA) timeline under which the classical Ando
// et al. Go-To-Centre-Of-SEC algorithm drives two robots out of visibility
// range, while KKNPS under the same timelines does not. Prints the full
// activation-by-activation story.
#include <iostream>

#include "adversary/fig4.hpp"
#include "algo/baselines.hpp"
#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "sched/asynchronous.hpp"

int main() {
  using namespace cohesion;

  for (const auto variant :
       {adversary::Fig4Variant::kOneAsync, adversary::Fig4Variant::kTwoNestA}) {
    const char* label =
        variant == adversary::Fig4Variant::kOneAsync ? "1-Async (Fig. 4a)" : "2-NestA (Fig. 4b)";
    std::cout << "=== " << label << " ===\n";

    const auto result = adversary::find_fig4_counterexample(variant, 200000, 42);
    if (result.initial.empty()) {
      std::cout << "no configuration found\n";
      continue;
    }
    const char* names[] = {"A", "B", "C", "X", "Y"};
    std::cout << "configuration (V = 1):\n";
    for (std::size_t i = 0; i < result.initial.size(); ++i) {
      std::cout << "  " << names[i] << " = (" << result.initial[i].x << ", "
                << result.initial[i].y << ")\n";
    }

    // Replay with full trace printing for Ando.
    const algo::AndoAlgorithm ando(1.0);
    sched::ScriptedScheduler sched(adversary::fig4_timeline(variant));
    core::EngineConfig config;
    config.visibility.radius = 1.0;
    config.error.random_rotation = false;
    core::Engine engine(result.initial, ando, sched, config);
    std::cout << "timeline (Ando):\n";
    while (engine.step()) {
      const auto& rec = engine.trace().records().back();
      std::cout << "  t=" << rec.activation.t_look << "  robot "
                << names[rec.activation.robot] << " looks (sees " << rec.seen
                << "), moves (" << rec.from.x << ", " << rec.from.y << ") -> ("
                << rec.realized.x << ", " << rec.realized.y << ") during ["
                << rec.activation.t_move_start << ", " << rec.activation.t_move_end << "]\n";
    }
    std::cout << "final |XY| under Ando:  " << result.final_separation
              << (result.ando_separates ? "  > V  (VISIBILITY BROKEN)\n" : "\n")
              << "final |XY| under KKNPS: " << result.kknps_separation
              << (result.kknps_separates ? "  > V\n" : "  <= V  (visibility preserved)\n")
              << "schedule certified " << (variant == adversary::Fig4Variant::kOneAsync
                                               ? "1-Async: "
                                               : "2-NestA: ")
              << (result.schedule_valid ? "yes" : "NO") << "\n\n";
  }
  return 0;
}
