#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "algo/baselines.hpp"
#include "algo/kknps.hpp"
#include "sched/asynchronous.hpp"
#include "sched/synchronous.hpp"

namespace cohesion::core {
namespace {

using geom::Vec2;

/// Algorithm that always moves one unit toward the first perceived robot
/// (or stays if none) — handy for exercising engine mechanics.
class ChaseFirst final : public Algorithm {
 public:
  [[nodiscard]] Vec2 compute(const Snapshot& s) const override {
    if (s.empty()) return {0.0, 0.0};
    return s.neighbours[0].position * 0.5;
  }
  [[nodiscard]] std::string_view name() const override { return "ChaseFirst"; }
};

Activation act(RobotId r, Time look, Time ms, Time me, double frac = 1.0) {
  return Activation{r, look, ms, me, frac};
}

EngineConfig exact_config(double v = 1.0) {
  EngineConfig c;
  c.visibility.radius = v;
  c.error.random_rotation = false;
  return c;
}

TEST(Engine, EmptyConfigurationThrows) {
  const algo::NullAlgorithm null;
  sched::ScriptedScheduler s({});
  EXPECT_THROW(Engine({}, null, s, {}), std::invalid_argument);
}

TEST(Engine, NilAlgorithmNeverMoves) {
  const algo::NullAlgorithm null;
  sched::FSyncScheduler sched(3);
  Engine engine({{0.0, 0.0}, {0.5, 0.0}, {1.0, 0.0}}, null, sched, exact_config());
  engine.run(30);
  const auto cfg = engine.current_configuration();
  EXPECT_TRUE(geom::almost_equal(cfg[0], {0.0, 0.0}));
  EXPECT_TRUE(geom::almost_equal(cfg[2], {1.0, 0.0}));
}

TEST(Engine, ScriptedMoveExecutes) {
  const ChaseFirst chase;
  sched::ScriptedScheduler sched({act(0, 0.0, 0.1, 1.0)});
  Engine engine({{0.0, 0.0}, {1.0, 0.0}}, chase, sched, exact_config(2.0));
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
  // Robot 0 moved halfway to robot 1.
  EXPECT_TRUE(geom::almost_equal(engine.current_configuration()[0], {0.5, 0.0}, 1e-9));
}

TEST(Engine, XiRigidTruncation) {
  const ChaseFirst chase;
  sched::ScriptedScheduler sched({act(0, 0.0, 0.1, 1.0, /*frac=*/0.5)});
  Engine engine({{0.0, 0.0}, {1.0, 0.0}}, chase, sched, exact_config(2.0));
  engine.run(10);
  // Planned 0.5 toward neighbour, realized half of it.
  EXPECT_TRUE(geom::almost_equal(engine.current_configuration()[0], {0.25, 0.0}, 1e-9));
}

TEST(Engine, VisibilityLimitsSnapshot) {
  const ChaseFirst chase;
  // Robot 1 is out of range of robot 0 (V = 1, distance 5): no move.
  sched::ScriptedScheduler sched({act(0, 0.0, 0.1, 1.0)});
  Engine engine({{0.0, 0.0}, {5.0, 0.0}}, chase, sched, exact_config(1.0));
  engine.run(10);
  EXPECT_TRUE(geom::almost_equal(engine.current_configuration()[0], {0.0, 0.0}));
}

TEST(Engine, OpenBallExcludesThreshold) {
  const ChaseFirst chase;
  EngineConfig cfg = exact_config(1.0);
  cfg.visibility.open_ball = true;
  sched::ScriptedScheduler sched({act(0, 0.0, 0.1, 1.0)});
  Engine engine({{0.0, 0.0}, {1.0, 0.0}}, chase, sched, cfg);
  engine.run(10);
  EXPECT_TRUE(geom::almost_equal(engine.current_configuration()[0], {0.0, 0.0}));
}

TEST(Engine, PerRobotRadii) {
  const ChaseFirst chase;
  EngineConfig cfg = exact_config(1.0);
  cfg.visibility.per_robot_radii = {3.0, 1.0};
  // Robot 0 sees robot 1 (radius 3) and moves; robot 1 would not see 0.
  sched::ScriptedScheduler sched({act(0, 0.0, 0.1, 1.0)});
  Engine engine({{0.0, 0.0}, {2.0, 0.0}}, chase, sched, cfg);
  engine.run(10);
  EXPECT_TRUE(geom::almost_equal(engine.current_configuration()[0], {1.0, 0.0}, 1e-9));
}

TEST(Engine, MidMoveObservation) {
  // Robot 1 looks while robot 0 is mid-move and sees the interpolated
  // position — the crux of Async semantics.
  const ChaseFirst chase;
  sched::ScriptedScheduler sched({
      act(0, 0.0, 0.0, 2.0),  // robot 0 moves from (0,0) to (0.5, 0) over [0,2]
      act(1, 1.0, 1.1, 1.2),  // robot 1 looks at t=1: robot 0 is at (0.25, 0)
  });
  Engine engine({{0.0, 0.0}, {1.0, 0.0}}, chase, sched, exact_config(2.0));
  engine.run(10);
  const auto& recs = engine.trace().records();
  ASSERT_EQ(recs.size(), 2u);
  // Robot 1 planned to move halfway toward (0.25, 0) from (1, 0).
  EXPECT_TRUE(geom::almost_equal(recs[1].planned, {0.625, 0.0}, 1e-9));
}

TEST(Engine, CrashedRobotStaysPut) {
  const ChaseFirst chase;
  sched::ScriptedScheduler sched({act(0, 0.0, 0.1, 1.0)});
  Engine engine({{0.0, 0.0}, {1.0, 0.0}}, chase, sched, exact_config(2.0));
  engine.crash(0);
  engine.run(10);
  EXPECT_TRUE(geom::almost_equal(engine.current_configuration()[0], {0.0, 0.0}));
}

TEST(Engine, RejectsOutOfOrderLooks) {
  const algo::NullAlgorithm null;
  sched::ScriptedScheduler sched({act(0, 5.0, 5.1, 6.0)});
  Engine engine({{0.0, 0.0}}, null, sched, exact_config());
  engine.run(1);
  // Next proposal would violate the frontier: simulate via a fresh scripted
  // scheduler pushed through the same engine is not possible, so check the
  // overlapping-activation contract instead.
  sched::ScriptedScheduler bad({act(0, 0.0, 0.1, 2.0), act(0, 1.0, 1.1, 3.0)});
  Engine engine2({{0.0, 0.0}}, null, bad, exact_config());
  EXPECT_TRUE(engine2.step());
  EXPECT_THROW(engine2.step(), std::logic_error);
}

TEST(Engine, RejectsBadPhaseOrder) {
  const algo::NullAlgorithm null;
  sched::ScriptedScheduler bad({act(0, 1.0, 0.5, 2.0)});
  Engine engine({{0.0, 0.0}}, null, bad, exact_config());
  EXPECT_THROW(engine.step(), std::logic_error);
}

TEST(Engine, RejectsBadRealizedFraction) {
  const algo::NullAlgorithm null;
  sched::ScriptedScheduler bad({act(0, 0.0, 0.1, 1.0, 0.0)});
  Engine engine({{0.0, 0.0}}, null, bad, exact_config());
  EXPECT_THROW(engine.step(), std::logic_error);
}

TEST(Engine, PerceptionHookOverridesSnapshot) {
  const ChaseFirst chase;
  sched::ScriptedScheduler sched({act(0, 0.0, 0.1, 1.0)});
  Engine engine({{0.0, 0.0}, {1.0, 0.0}}, chase, sched, exact_config(2.0));
  engine.set_perception_hook([](RobotId, Time, const Snapshot&) {
    Snapshot fake;
    fake.neighbours.push_back({{0.0, 1.0}, false});
    return fake;
  });
  engine.run(10);
  EXPECT_TRUE(geom::almost_equal(engine.current_configuration()[0], {0.0, 0.5}, 1e-9));
}

TEST(Engine, RunUntilConvergedStopsEarly) {
  const algo::KknpsAlgorithm kknps;
  sched::FSyncScheduler sched(3);
  Engine engine({{0.0, 0.0}, {0.4, 0.0}, {0.8, 0.0}}, kknps, sched, exact_config(1.0));
  EXPECT_TRUE(engine.run_until_converged(1e-3, 200000, 16));
  EXPECT_LE(engine.current_diameter(), 1e-3);
}

TEST(Engine, RunUntilHonorsSimulatedTimeBudget) {
  // FSync commits one round per unit time: Looks at t = 0..5 are under a
  // 5.5 budget; the first Look of round t = 6 crosses it and — per the
  // documented post-commit check — is itself still committed. The budget
  // is simulation time, deterministic, unlike a wall-clock limit.
  const algo::NullAlgorithm null;
  sched::FSyncScheduler sched(3);
  Engine engine({{0.0, 0.0}, {0.5, 0.0}, {1.0, 0.0}}, null, sched, exact_config());
  StopCondition stop;
  stop.epsilon = -1.0;  // never converges; only the time budget can stop it
  stop.max_activations = 200000;
  stop.max_time = 5.5;
  EXPECT_FALSE(engine.run_until(stop));
  EXPECT_EQ(engine.trace().records().size(), 6u * 3u + 1u);

  // max_time = 0 disables the budget: the activation budget rules.
  sched::FSyncScheduler sched2(3);
  Engine engine2({{0.0, 0.0}, {0.5, 0.0}, {1.0, 0.0}}, null, sched2, exact_config());
  StopCondition unlimited;
  unlimited.epsilon = -1.0;
  unlimited.max_activations = 30;
  EXPECT_FALSE(engine2.run_until(unlimited));
  EXPECT_EQ(engine2.trace().records().size(), 30u);
}

TEST(Engine, MultiplicityCollapsedWithoutDetection) {
  // Two robots co-located: observer perceives a single robot.
  const ChaseFirst chase;
  sched::ScriptedScheduler sched({act(0, 0.0, 0.1, 1.0)});
  Engine engine({{0.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}}, chase, sched, exact_config(2.0));
  engine.run(10);
  EXPECT_EQ(engine.trace().records()[0].seen, 1u);
}

TEST(Engine, MultiplicityReportedWithDetection) {
  const ChaseFirst chase;
  EngineConfig cfg = exact_config(2.0);
  cfg.visibility.multiplicity_detection = true;
  sched::ScriptedScheduler sched({act(0, 0.0, 0.1, 1.0)});
  Engine engine({{0.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}}, chase, sched, cfg);
  engine.run(10);
  EXPECT_EQ(engine.trace().records()[0].seen, 2u);
}

}  // namespace
}  // namespace cohesion::core
