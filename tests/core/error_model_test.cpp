#include "core/error_model.hpp"

#include <gtest/gtest.h>

#include <random>

#include "geometry/angles.hpp"

namespace cohesion::core {
namespace {

using geom::kPi;
using geom::kTwoPi;
using geom::Vec2;

TEST(SymmetricDistortion, IdentityWhenZeroSkew) {
  const SymmetricDistortion mu(0.0, 0.3);
  for (double t = -3.0; t < 3.0; t += 0.1) EXPECT_DOUBLE_EQ(mu.apply(t), t);
}

TEST(SymmetricDistortion, SymmetryProperty) {
  // mu(theta + pi) = mu(theta) + pi (paper §2.3.3).
  const SymmetricDistortion mu(0.4, 1.1);
  for (double t = 0.0; t < kPi; t += 0.05) {
    EXPECT_NEAR(mu.apply(t + kPi), mu.apply(t) + kPi, 1e-12);
  }
}

TEST(SymmetricDistortion, SkewBound) {
  // (1 - lambda) xi <= mu(theta+xi) - mu(theta) <= (1 + lambda) xi.
  const double lambda = 0.3;
  const SymmetricDistortion mu(lambda, 0.77);
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> ut(0.0, kTwoPi), ux(1e-4, kPi - 1e-4);
  for (int i = 0; i < 2000; ++i) {
    const double theta = ut(rng), xi = ux(rng);
    const double diff = mu.apply(theta + xi) - mu.apply(theta);
    EXPECT_GE(diff, (1.0 - lambda) * xi - 1e-9);
    EXPECT_LE(diff, (1.0 + lambda) * xi + 1e-9);
  }
}

TEST(SymmetricDistortion, InverseRoundTrip) {
  const SymmetricDistortion mu(0.6, 0.2);
  for (double t = -5.0; t < 5.0; t += 0.07) {
    EXPECT_NEAR(mu.invert(mu.apply(t)), t, 1e-10);
    EXPECT_NEAR(mu.apply(mu.invert(t)), t, 1e-10);
  }
}

TEST(SymmetricDistortion, InvalidSkewThrows) {
  EXPECT_THROW(SymmetricDistortion(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(SymmetricDistortion(-0.1, 0.0), std::invalid_argument);
}

TEST(LocalFrame, IdentityIsExact) {
  const LocalFrame f = LocalFrame::identity();
  std::mt19937_64 rng(6);
  const Vec2 p{0.3, -0.8};
  EXPECT_TRUE(geom::almost_equal(f.perceive(p, rng), p, 1e-12));
  EXPECT_TRUE(geom::almost_equal(f.intent_to_global(p), p, 1e-12));
}

TEST(LocalFrame, PerceiveThenActIsConsistent) {
  // Moving toward a perceived neighbour must move toward the true
  // neighbour: perception and actuation share the frame (paper §2.3.3).
  ErrorModel model;
  model.random_rotation = true;
  model.allow_reflection = true;
  model.skew_lambda = 0.25;
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    const LocalFrame f = LocalFrame::sample(model, rng);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    const Vec2 true_offset{u(rng), u(rng)};
    if (true_offset.norm() < 1e-6) continue;
    const Vec2 perceived = f.perceive(true_offset, rng);
    const Vec2 back = f.intent_to_global(perceived);
    // Same direction as the true offset (distance error = 0 here).
    EXPECT_NEAR(back.normalized().dot(true_offset.normalized()), 1.0, 1e-9);
  }
}

TEST(LocalFrame, DistanceErrorBounded) {
  ErrorModel model;
  model.distance_delta = 0.1;
  model.random_rotation = false;
  std::mt19937_64 rng(8);
  const LocalFrame f = LocalFrame::sample(model, rng);
  for (int i = 0; i < 1000; ++i) {
    const Vec2 p{1.0, 0.0};
    const double d = f.perceive(p, rng).norm();
    EXPECT_GE(d, 0.9 - 1e-12);
    EXPECT_LE(d, 1.1 + 1e-12);
  }
}

TEST(LocalFrame, RotationPreservesDistances) {
  ErrorModel model;
  model.random_rotation = true;
  std::mt19937_64 rng(9);
  const LocalFrame f = LocalFrame::sample(model, rng);
  for (int i = 0; i < 100; ++i) {
    std::uniform_real_distribution<double> u(-2.0, 2.0);
    const Vec2 p{u(rng), u(rng)};
    EXPECT_NEAR(f.perceive(p, rng).norm(), p.norm(), 1e-12);
  }
}

TEST(LocalFrame, ReflectionPreservesDistances) {
  ErrorModel model;
  model.random_rotation = true;
  model.allow_reflection = true;
  std::mt19937_64 rng(10);
  for (int s = 0; s < 16; ++s) {
    const LocalFrame f = LocalFrame::sample(model, rng);
    const Vec2 p{0.6, -0.4};
    EXPECT_NEAR(f.perceive(p, rng).norm(), p.norm(), 1e-12);
  }
}

TEST(LocalFrame, SkewPreservesSidedness) {
  // The distortion must preserve perceived sidedness w.r.t. lines through
  // neighbouring points (paper §6.1): relative order of angles is kept.
  ErrorModel model;
  model.skew_lambda = 0.5;
  model.random_rotation = false;
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const LocalFrame f = LocalFrame::sample(model, rng);
    std::uniform_real_distribution<double> u(0.0, kPi - 0.01);
    double a = u(rng), b = u(rng);
    if (a > b) std::swap(a, b);
    const Vec2 pa = f.perceive(geom::unit(a), rng);
    const Vec2 pb = f.perceive(geom::unit(b), rng);
    // ccw order preserved: sweep from pa to pb stays < pi when b - a < pi.
    const double sweep = geom::ccw_sweep(pa.angle(), pb.angle());
    EXPECT_LT(sweep, kPi + 1e-9);
  }
}

TEST(MotionError, ZeroCoeffIsExact) {
  std::mt19937_64 rng(12);
  const Vec2 end = apply_motion_error({0.0, 0.0}, {1.0, 1.0}, 0.0, 1.0, rng);
  EXPECT_TRUE(geom::almost_equal(end, {1.0, 1.0}));
}

TEST(MotionError, QuadraticBound) {
  std::mt19937_64 rng(13);
  const double coeff = 0.5, v = 1.0;
  for (int i = 0; i < 1000; ++i) {
    std::uniform_real_distribution<double> u(-0.2, 0.2);
    const Vec2 start{0.0, 0.0};
    const Vec2 planned{u(rng), u(rng)};
    const Vec2 realized = apply_motion_error(start, planned, coeff, v, rng);
    const double d = planned.distance_to(start);
    EXPECT_LE(realized.distance_to(planned), coeff * d * d / v + 1e-12);
  }
}

TEST(MotionError, NilMoveUnaffected) {
  std::mt19937_64 rng(14);
  const Vec2 end = apply_motion_error({1.0, 2.0}, {1.0, 2.0}, 0.9, 1.0, rng);
  EXPECT_TRUE(geom::almost_equal(end, {1.0, 2.0}));
}

TEST(ErrorModel, ExactPredicate) {
  ErrorModel m;
  EXPECT_TRUE(m.exact());
  m.distance_delta = 0.01;
  EXPECT_FALSE(m.exact());
}

}  // namespace
}  // namespace cohesion::core
