// The spatially-indexed hot path must be indistinguishable from the
// brute-force reference: same seeds -> same ActivationRecords, to the bit.
// This holds because both paths examine the same visible set through the
// same predicate and draw RNG in the same (ascending-id) order; these tests
// sweep schedulers, error models and visibility variants to pin that down.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <random>
#include <vector>

#include "algo/baselines.hpp"
#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "metrics/configurations.hpp"
#include "sched/asynchronous.hpp"
#include "sched/synchronous.hpp"

namespace cohesion::core {
namespace {

using geom::Vec2;

void expect_identical_traces(const Trace& grid, const Trace& brute, std::uint64_t seed) {
  ASSERT_EQ(grid.records().size(), brute.records().size()) << "seed " << seed;
  for (std::size_t i = 0; i < grid.records().size(); ++i) {
    const ActivationRecord& g = grid.records()[i];
    const ActivationRecord& b = brute.records()[i];
    EXPECT_EQ(g.activation.robot, b.activation.robot) << "seed " << seed << " rec " << i;
    EXPECT_EQ(g.activation.t_look, b.activation.t_look) << "seed " << seed << " rec " << i;
    EXPECT_EQ(g.activation.t_move_start, b.activation.t_move_start)
        << "seed " << seed << " rec " << i;
    EXPECT_EQ(g.activation.t_move_end, b.activation.t_move_end)
        << "seed " << seed << " rec " << i;
    EXPECT_EQ(g.activation.realized_fraction, b.activation.realized_fraction)
        << "seed " << seed << " rec " << i;
    EXPECT_EQ(g.from, b.from) << "seed " << seed << " rec " << i;
    EXPECT_EQ(g.planned, b.planned) << "seed " << seed << " rec " << i;
    EXPECT_EQ(g.realized, b.realized) << "seed " << seed << " rec " << i;
    EXPECT_EQ(g.seen, b.seen) << "seed " << seed << " rec " << i;
  }
}

std::unique_ptr<Scheduler> make_scheduler(std::uint64_t seed, std::size_t n) {
  switch (seed % 4) {
    case 0:
      return std::make_unique<sched::FSyncScheduler>(n);
    case 1: {
      sched::SSyncScheduler::Params p;
      p.seed = seed;
      p.xi = seed % 3 == 0 ? 0.5 : 1.0;
      return std::make_unique<sched::SSyncScheduler>(n, p);
    }
    case 2: {
      sched::KAsyncScheduler::Params p;
      p.seed = seed;
      p.k = 1 + seed % 3;
      return std::make_unique<sched::KAsyncScheduler>(n, p);
    }
    default: {
      sched::KNestAScheduler::Params p;
      p.seed = seed;
      p.k = 1 + seed % 2;
      return std::make_unique<sched::KNestAScheduler>(n, p);
    }
  }
}

std::vector<Vec2> make_initial(std::uint64_t seed, std::size_t n, double v) {
  switch (seed % 3) {
    case 0:
      return metrics::random_connected_configuration(n, 0.4 * std::sqrt(double(n)), v, seed + 1);
    case 1:
      // Spacing exactly v: every chain edge sits on the closed-ball boundary.
      return metrics::line_configuration(n, v);
    default:
      return metrics::grid_configuration(n, 0.8 * v);
  }
}

/// The three snapshot paths under test: reference scan over the Trace,
/// per-Look-time grid rebuild, and incremental cell maintenance.
enum class IndexMode { kBrute, kRebuild, kIncremental };

EngineConfig make_config(std::uint64_t seed, std::size_t n, IndexMode mode) {
  EngineConfig cfg;
  cfg.seed = seed * 7919 + 13;
  cfg.use_spatial_index = mode != IndexMode::kBrute;
  cfg.incremental_index = mode == IndexMode::kIncremental;
  cfg.visibility.radius = 1.0;
  cfg.visibility.open_ball = (seed / 2) % 2 == 1;
  cfg.visibility.multiplicity_detection = (seed / 4) % 2 == 1;
  if (seed % 5 == 4) {
    // Heterogeneous sensing (§6.2): per-robot radii around the common V.
    std::mt19937_64 radii_rng(seed);
    std::uniform_real_distribution<double> u(0.6, 1.7);
    for (std::size_t r = 0; r < n; ++r) cfg.visibility.per_robot_radii.push_back(u(radii_rng));
  }
  switch (seed % 6) {
    case 0:
      cfg.error.random_rotation = false;  // exact perception, identity frames
      break;
    case 1:
      break;  // random rotation only
    case 2:
      cfg.error.distance_delta = 0.05;  // per-neighbour RNG draws in the Look
      break;
    case 3:
      cfg.error.skew_lambda = 0.3;
      break;
    case 4:
      cfg.error.motion_quad_coeff = 0.1;
      break;
    default:
      cfg.error.allow_reflection = true;
      cfg.error.distance_delta = 0.02;
      break;
  }
  return cfg;
}

TEST(EngineEquivalence, AllIndexModesProduceIdenticalTraces) {
  // Three engines per seed — brute scan, rebuild grid, incremental grid —
  // over randomized schedulers (FSync / SSync / k-Async / k-NestA), error
  // models, visibility variants and initial configurations. All three must
  // commit bit-identical traces.
  const algo::KknpsAlgorithm kknps({.k = 1});
  const algo::AndoAlgorithm ando(1.0);
  for (std::uint64_t seed = 0; seed < 160; ++seed) {
    const std::size_t n = 2 + seed % 31;
    const auto initial = make_initial(seed, n, 1.0);
    const Algorithm& algorithm = seed % 2 == 0 ? static_cast<const Algorithm&>(kknps)
                                               : static_cast<const Algorithm&>(ando);

    const auto sched_inc = make_scheduler(seed, n);
    Engine inc(initial, algorithm, *sched_inc, make_config(seed, n, IndexMode::kIncremental));
    const auto sched_grid = make_scheduler(seed, n);
    Engine grid(initial, algorithm, *sched_grid, make_config(seed, n, IndexMode::kRebuild));
    const auto sched_brute = make_scheduler(seed, n);
    Engine brute(initial, algorithm, *sched_brute, make_config(seed, n, IndexMode::kBrute));

    if (seed % 7 == 3) {  // fail-stop robots ride along unchanged
      inc.crash(n / 2);
      grid.crash(n / 2);
      brute.crash(n / 2);
    }

    const std::size_t steps = 150;
    const std::size_t done_brute = brute.run(steps);
    ASSERT_EQ(grid.run(steps), done_brute) << "seed " << seed;
    ASSERT_EQ(inc.run(steps), done_brute) << "seed " << seed;
    expect_identical_traces(grid.trace(), brute.trace(), seed);
    expect_identical_traces(inc.trace(), brute.trace(), seed);
    EXPECT_EQ(grid.current_diameter(), brute.current_diameter()) << "seed " << seed;
    EXPECT_EQ(inc.current_diameter(), brute.current_diameter()) << "seed " << seed;
    const auto cfg_grid = grid.current_configuration();
    const auto cfg_inc = inc.current_configuration();
    const auto cfg_brute = brute.current_configuration();
    ASSERT_EQ(cfg_grid.size(), cfg_brute.size());
    ASSERT_EQ(cfg_inc.size(), cfg_brute.size());
    for (std::size_t r = 0; r < cfg_grid.size(); ++r) {
      EXPECT_EQ(cfg_grid[r], cfg_brute[r]) << "seed " << seed << " robot " << r;
      EXPECT_EQ(cfg_inc[r], cfg_brute[r]) << "seed " << seed << " robot " << r;
    }
  }
}

TEST(EngineEquivalence, LargeSwarmSpotCheck) {
  // One production-sized configuration: the grid path crosses many cells and
  // the per-look rebuild is reused across a whole synchronous round, while
  // the incremental path re-buckets one robot per commit.
  const algo::KknpsAlgorithm kknps({.k = 1});
  const std::size_t n = 512;
  const auto initial =
      metrics::random_connected_configuration(n, 0.4 * std::sqrt(double(n)), 1.0, 42);

  sched::FSyncScheduler sched_inc(n);
  EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  Engine inc(initial, kknps, sched_inc, cfg);

  sched::FSyncScheduler sched_grid(n);
  cfg.incremental_index = false;
  Engine grid(initial, kknps, sched_grid, cfg);

  sched::FSyncScheduler sched_brute(n);
  cfg.use_spatial_index = false;
  Engine brute(initial, kknps, sched_brute, cfg);

  const std::size_t steps = n * 4;
  const std::size_t done = brute.run(steps);
  ASSERT_EQ(grid.run(steps), done);
  ASSERT_EQ(inc.run(steps), done);
  expect_identical_traces(grid.trace(), brute.trace(), 42);
  expect_identical_traces(inc.trace(), brute.trace(), 42);
  EXPECT_EQ(grid.current_diameter(), brute.current_diameter());
  EXPECT_EQ(inc.current_diameter(), brute.current_diameter());
}

TEST(EngineEquivalence, UnrestrictedAsyncLongRunIncrementalVsRebuild) {
  // The regime the incremental index exists for: unrestricted Async
  // (k-Async with the bound removed) gives every Look a distinct time, so
  // the rebuild path re-indexes all n robots per activation while the
  // incremental path re-buckets only the just-moved one. A longer run than
  // the fuzz harness's, across several seeds and swarm sizes.
  const algo::KknpsAlgorithm kknps({.k = 2});
  for (const std::uint64_t seed : {3u, 17u, 90u}) {
    const std::size_t n = 32 + (seed % 3) * 48;
    const auto initial =
        metrics::random_connected_configuration(n, 0.4 * std::sqrt(double(n)), 1.0, seed);
    sched::KAsyncScheduler::Params p;
    p.k = std::numeric_limits<std::size_t>::max();  // Async: no asynchrony bound
    p.seed = seed * 31 + 1;

    sched::KAsyncScheduler sched_inc(n, p);
    EngineConfig cfg;
    cfg.visibility.radius = 1.0;
    cfg.error.distance_delta = 0.03;  // per-neighbour RNG draws pin the Look order
    Engine inc(initial, kknps, sched_inc, cfg);

    sched::KAsyncScheduler sched_grid(n, p);
    cfg.incremental_index = false;
    Engine grid(initial, kknps, sched_grid, cfg);

    const std::size_t steps = 2500;
    ASSERT_EQ(inc.run(steps), grid.run(steps)) << "seed " << seed;
    expect_identical_traces(inc.trace(), grid.trace(), seed);
    EXPECT_EQ(inc.current_diameter(), grid.current_diameter()) << "seed " << seed;
  }
}

TEST(EngineEquivalence, ZeroDurationMovesInvalidateSameTimeGrid) {
  // A zero-duration move (t_move_end == t_look) relocates the robot *at*
  // its Look time, so a grid built at that time must not be reused by later
  // same-time Looks. Several robots commit instantaneous moves at t = 1 and
  // observe each other at t = 1; grid and brute traces must still agree.
  const algo::CogAlgorithm cog;
  const std::vector<Vec2> initial{{0.0, 0.0}, {0.5, 0.0}, {0.9, 0.3}, {0.2, 0.6}};
  const std::vector<Activation> script{
      {0, 1.0, 1.0, 1.0, 1.0},  // instantaneous
      {1, 1.0, 1.0, 1.0, 0.5},  // instantaneous, xi-truncated
      {2, 1.0, 1.1, 1.4, 1.0},  // ordinary move proposed at the same Look time
      {3, 1.0, 1.0, 1.0, 1.0},  // instantaneous, after the ordinary one
      {0, 2.0, 2.0, 2.0, 1.0},
      {1, 2.0, 2.3, 2.5, 1.0},
  };
  EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  cfg.error.random_rotation = false;

  sched::ScriptedScheduler sched_inc(script);
  Engine inc(initial, cog, sched_inc, cfg);
  sched::ScriptedScheduler sched_grid(script);
  cfg.incremental_index = false;
  Engine grid(initial, cog, sched_grid, cfg);
  sched::ScriptedScheduler sched_brute(script);
  cfg.use_spatial_index = false;
  Engine brute(initial, cog, sched_brute, cfg);

  const std::size_t done = brute.run(script.size());
  ASSERT_EQ(grid.run(script.size()), done);
  ASSERT_EQ(inc.run(script.size()), done);
  expect_identical_traces(grid.trace(), brute.trace(), 0);
  expect_identical_traces(inc.trace(), brute.trace(), 0);
  // Robot 1 at t=1 must have seen robot 0 at its *post-teleport* position.
  EXPECT_EQ(grid.trace().records()[1].from, brute.trace().records()[1].from);
}

TEST(EngineEquivalence, BackwardLookWithinSchedulerSlackStaysExact) {
  // The Scheduler contract allows a Look up to 1e-12 *before* the current
  // frontier. The incremental path cannot serve such a query from its
  // forward-maintained buckets (positions then live on already-replaced
  // segments), so it must fall back to the reference scan for that Look —
  // and resume incremental service afterwards. All three paths must agree.
  const algo::CogAlgorithm cog;
  const std::vector<Vec2> initial{{0.0, 0.0}, {0.6, 0.0}, {0.3, 0.5}, {-0.4, 0.2}};
  const double eps = 5e-13;  // within the 1e-12 ordering slack
  const std::vector<Activation> script{
      {0, 1.0, 1.1, 1.6, 1.0},
      {1, 1.0 - eps, 1.0, 1.4, 1.0},        // backward Look: robot 0 not yet moved
      {2, 1.0 - eps / 2, 1.2, 1.5, 0.7},    // forward again, still before t = 1
      {3, 2.0, 2.1, 2.4, 1.0},              // normal forward service resumes
      {0, 3.0, 3.0, 3.3, 1.0},
      {1, 3.0 - eps, 3.1, 3.2, 1.0},        // backward again after real motion
      {2, 4.0, 4.0, 4.0, 1.0},              // zero-duration move after a fallback
      {3, 4.0, 4.2, 4.6, 1.0},
      // Chained sub-slack regression: each Look within 1e-12 of the
      // *previous* one (the engine's frontier), though the last is more
      // than 1e-12 below the first — legal per the engine contract.
      {0, 5.0, 5.1, 5.2, 1.0},
      {1, 5.0 - 9e-13, 5.0, 5.1, 1.0},
      {2, 5.0 - 1.8e-12, 5.3, 5.4, 1.0},
  };
  EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  cfg.error.random_rotation = false;

  sched::ScriptedScheduler sched_inc(script);
  Engine inc(initial, cog, sched_inc, cfg);
  sched::ScriptedScheduler sched_grid(script);
  cfg.incremental_index = false;
  Engine grid(initial, cog, sched_grid, cfg);
  sched::ScriptedScheduler sched_brute(script);
  cfg.use_spatial_index = false;
  Engine brute(initial, cog, sched_brute, cfg);

  const std::size_t done = brute.run(script.size());
  ASSERT_EQ(done, script.size());
  ASSERT_EQ(grid.run(script.size()), done);
  ASSERT_EQ(inc.run(script.size()), done);
  expect_identical_traces(grid.trace(), brute.trace(), 0);
  expect_identical_traces(inc.trace(), brute.trace(), 0);
}

TEST(EngineEquivalence, ViewPositionsAgreeMidRun) {
  // SimulationView::position (consumed by omniscient schedulers) must agree
  // between the cache tier and the trace tier at past and future times.
  const algo::KknpsAlgorithm kknps({.k = 1});
  const std::size_t n = 24;
  const auto initial =
      metrics::random_connected_configuration(n, 0.4 * std::sqrt(double(n)), 1.0, 5);
  sched::KAsyncScheduler sched(n, {.seed = 5});
  EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  Engine engine(initial, kknps, sched, cfg);
  for (int chunk = 0; chunk < 20; ++chunk) {
    engine.run(10);
    for (RobotId r = 0; r < n; ++r) {
      for (double dt : {-2.0, -0.5, 0.0, 0.7, 5.0}) {
        const Time t = engine.frontier() + dt;
        if (t < 0.0) continue;
        const Vec2 via_view = engine.position(r, t);
        const Vec2 via_trace = engine.trace().position(r, t);
        EXPECT_EQ(via_view.x, via_trace.x) << "robot " << r << " t " << t;
        EXPECT_EQ(via_view.y, via_trace.y) << "robot " << r << " t " << t;
      }
    }
  }
}

}  // namespace
}  // namespace cohesion::core
