#include "core/visibility.hpp"

#include <gtest/gtest.h>

#include "metrics/configurations.hpp"

namespace cohesion::core {
namespace {

using geom::Vec2;

TEST(VisibilityGraph, EdgesAtThreshold) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0}, {2.5, 0.0}};
  const VisibilityGraph g(pts, 1.0);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));  // symmetric
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_EQ(g.edges().size(), 1u);
}

TEST(VisibilityGraph, OpenBallExcludesThreshold) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0}};
  EXPECT_TRUE(VisibilityGraph(pts, 1.0, false).has_edge(0, 1));
  EXPECT_FALSE(VisibilityGraph(pts, 1.0, true).has_edge(0, 1));
}

TEST(VisibilityGraph, Connectivity) {
  const std::vector<Vec2> line{{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}};
  EXPECT_TRUE(VisibilityGraph(line, 1.0).connected());
  EXPECT_FALSE(VisibilityGraph(line, 0.5).connected());
  EXPECT_TRUE(VisibilityGraph({{0.0, 0.0}}, 1.0).connected());
  EXPECT_TRUE(VisibilityGraph({}, 1.0).connected());
}

TEST(VisibilityGraph, SubsetAndLostEdges) {
  const std::vector<Vec2> before{{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}};
  const std::vector<Vec2> after{{0.0, 0.0}, {1.0, 0.0}, {5.0, 0.0}};
  const VisibilityGraph g0(before, 1.0), g1(after, 1.0);
  EXPECT_FALSE(g0.subset_of(g1));
  EXPECT_EQ(g0.edges_lost(g1), 1u);
  EXPECT_TRUE(g1.subset_of(g0));
}

TEST(VisibilityGraph, WorstInitialPairStretch) {
  const std::vector<Vec2> initial{{0.0, 0.0}, {1.0, 0.0}};
  const std::vector<Vec2> later{{0.0, 0.0}, {1.5, 0.0}};
  EXPECT_NEAR(worst_initial_pair_stretch(initial, later, 1.0), 1.5, 1e-12);
  // Initially invisible pairs are ignored.
  const std::vector<Vec2> far{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_DOUBLE_EQ(worst_initial_pair_stretch(far, {{0.0, 0.0}, {100.0, 0.0}}, 1.0), 0.0);
}

TEST(VisibilityGraph, GeneratedConfigurationsConnected) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto pts = metrics::random_connected_configuration(30, 3.0, 1.0, seed);
    EXPECT_TRUE(VisibilityGraph(pts, 1.0).connected());
    EXPECT_EQ(pts.size(), 30u);
  }
}

}  // namespace
}  // namespace cohesion::core
