#include "core/trace.hpp"

#include <gtest/gtest.h>

namespace cohesion::core {
namespace {

using geom::Vec2;

ActivationRecord make_record(RobotId robot, Time look, Time ms, Time me, Vec2 from, Vec2 to) {
  ActivationRecord rec;
  rec.activation = {robot, look, ms, me, 1.0};
  rec.from = from;
  rec.planned = to;
  rec.realized = to;
  return rec;
}

TEST(Trace, InitialPositions) {
  const Trace t({{0.0, 0.0}, {1.0, 0.0}});
  EXPECT_EQ(t.robot_count(), 2u);
  EXPECT_TRUE(geom::almost_equal(t.position(0, 0.0), {0.0, 0.0}));
  EXPECT_TRUE(geom::almost_equal(t.position(1, 100.0), {1.0, 0.0}));
}

TEST(Trace, PiecewiseLinearInterpolation) {
  Trace t({{0.0, 0.0}});
  t.record(make_record(0, 0.0, 1.0, 3.0, {0.0, 0.0}, {2.0, 0.0}));
  EXPECT_TRUE(geom::almost_equal(t.position(0, 0.5), {0.0, 0.0}));   // pre-move
  EXPECT_TRUE(geom::almost_equal(t.position(0, 2.0), {1.0, 0.0}));   // mid-move
  EXPECT_TRUE(geom::almost_equal(t.position(0, 3.0), {2.0, 0.0}));   // done
  EXPECT_TRUE(geom::almost_equal(t.position(0, 99.0), {2.0, 0.0}));
}

TEST(Trace, SequentialMovesCompose) {
  Trace t({{0.0, 0.0}});
  t.record(make_record(0, 0.0, 0.0, 1.0, {0.0, 0.0}, {1.0, 0.0}));
  t.record(make_record(0, 2.0, 2.0, 3.0, {1.0, 0.0}, {1.0, 1.0}));
  EXPECT_TRUE(geom::almost_equal(t.position(0, 1.5), {1.0, 0.0}));
  EXPECT_TRUE(geom::almost_equal(t.position(0, 2.5), {1.0, 0.5}));
  EXPECT_TRUE(geom::almost_equal(t.position(0, 4.0), {1.0, 1.0}));
}

TEST(Trace, ZeroDurationMoveJumps) {
  Trace t({{0.0, 0.0}});
  t.record(make_record(0, 1.0, 1.0, 1.0, {0.0, 0.0}, {5.0, 5.0}));
  EXPECT_TRUE(geom::almost_equal(t.position(0, 1.0), {5.0, 5.0}));
  EXPECT_TRUE(geom::almost_equal(t.position(0, 0.999), {0.0, 0.0}));
}

TEST(Trace, ConfigurationSnapshotsAllRobots) {
  Trace t({{0.0, 0.0}, {3.0, 0.0}});
  t.record(make_record(1, 0.0, 0.0, 2.0, {3.0, 0.0}, {3.0, 2.0}));
  const auto cfg = t.configuration(1.0);
  EXPECT_TRUE(geom::almost_equal(cfg[0], {0.0, 0.0}));
  EXPECT_TRUE(geom::almost_equal(cfg[1], {3.0, 1.0}));
}

TEST(Trace, ActivationCountAndEndTime) {
  Trace t({{0.0, 0.0}, {1.0, 0.0}});
  t.record(make_record(0, 0.0, 0.1, 0.5, {0.0, 0.0}, {0.1, 0.0}));
  t.record(make_record(1, 0.2, 0.3, 0.9, {1.0, 0.0}, {0.9, 0.0}));
  t.record(make_record(0, 1.0, 1.1, 1.5, {0.1, 0.0}, {0.2, 0.0}));
  EXPECT_EQ(t.activation_count(0), 2u);
  EXPECT_EQ(t.activation_count(1), 1u);
  EXPECT_DOUBLE_EQ(t.end_time(), 1.5);
}

TEST(Trace, RoundBoundaries) {
  // Two robots; a round completes when both have completed a cycle.
  Trace t({{0.0, 0.0}, {1.0, 0.0}});
  t.record(make_record(0, 0.0, 0.1, 0.5, {0.0, 0.0}, {0.0, 0.0}));
  t.record(make_record(0, 0.6, 0.7, 0.9, {0.0, 0.0}, {0.0, 0.0}));
  t.record(make_record(1, 1.0, 1.1, 1.5, {1.0, 0.0}, {1.0, 0.0}));  // round 1 done at 1.5
  t.record(make_record(1, 2.0, 2.1, 2.5, {1.0, 0.0}, {1.0, 0.0}));
  t.record(make_record(0, 3.0, 3.1, 3.5, {0.0, 0.0}, {0.0, 0.0}));  // round 2 done at 3.5
  const auto bounds = t.round_boundaries();
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.0);
  EXPECT_DOUBLE_EQ(bounds[1], 1.5);
  EXPECT_DOUBLE_EQ(bounds[2], 3.5);
}

TEST(Trace, RoundRequiresActivationStartedInRound) {
  // Robot 1's first activation starts before the first round boundary is
  // fixed, so it counts; but an activation overlapping a boundary only
  // counts for the round it starts in.
  Trace t({{0.0, 0.0}, {1.0, 0.0}});
  t.record(make_record(0, 0.0, 0.1, 10.0, {0.0, 0.0}, {0.0, 0.0}));
  t.record(make_record(1, 0.5, 0.6, 0.7, {1.0, 0.0}, {1.0, 0.0}));
  const auto bounds = t.round_boundaries();
  ASSERT_EQ(bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(bounds[1], 10.0);  // closes when the slow robot finishes
}

}  // namespace
}  // namespace cohesion::core
