#include "core/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "metrics/configurations.hpp"
#include "sched/asynchronous.hpp"

namespace cohesion::core {
namespace {

Trace sample_trace() {
  const algo::KknpsAlgorithm algo({.k = 2});
  sched::KAsyncScheduler::Params p;
  p.k = 2;
  p.seed = 77;
  p.xi = 0.5;
  sched::KAsyncScheduler sched(6, p);
  EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  cfg.seed = 77;
  Engine engine(metrics::line_configuration(6, 0.8), algo, sched, cfg);
  engine.run(200);
  return engine.trace();
}

TEST(TraceIo, RoundTripExact) {
  const Trace original = sample_trace();
  std::stringstream buf;
  write_trace_csv(original, buf);
  const Trace loaded = read_trace_csv(buf);

  ASSERT_EQ(loaded.robot_count(), original.robot_count());
  ASSERT_EQ(loaded.records().size(), original.records().size());
  for (std::size_t i = 0; i < original.records().size(); ++i) {
    const auto& a = original.records()[i];
    const auto& b = loaded.records()[i];
    EXPECT_EQ(a.activation.robot, b.activation.robot);
    EXPECT_DOUBLE_EQ(a.activation.t_look, b.activation.t_look);
    EXPECT_DOUBLE_EQ(a.activation.t_move_end, b.activation.t_move_end);
    EXPECT_TRUE(geom::almost_equal(a.realized, b.realized, 0.0));
    EXPECT_EQ(a.seen, b.seen);
  }
  // Position reconstruction agrees at arbitrary times.
  for (double t = 0.0; t < original.end_time(); t += 1.3) {
    for (RobotId r = 0; r < original.robot_count(); ++r) {
      EXPECT_TRUE(geom::almost_equal(original.position(r, t), loaded.position(r, t), 0.0));
    }
  }
}

TEST(TraceIo, RejectsMissingHeader) {
  std::stringstream buf("bogus\nI,0,0,0\n");
  EXPECT_THROW(read_trace_csv(buf), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedLine) {
  std::stringstream buf("cohesion-trace-v1\nI,0,1.0\n");
  EXPECT_THROW(read_trace_csv(buf), std::runtime_error);
}

TEST(TraceIo, RejectsUnknownRobotRecord) {
  std::stringstream buf(
      "cohesion-trace-v1\nI,0,0,0\nA,5,0,0,1,1,0,0,0,0,0,0,0\n");
  EXPECT_THROW(read_trace_csv(buf), std::runtime_error);
}

TEST(TraceIo, RejectsUnknownTag) {
  std::stringstream buf("cohesion-trace-v1\nZ,0,0,0\n");
  EXPECT_THROW(read_trace_csv(buf), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const Trace original = sample_trace();
  const std::string path = ::testing::TempDir() + "/cohesion_trace_io_test.csv";
  write_trace_csv(original, path);
  const Trace loaded = read_trace_csv_file(path);
  EXPECT_EQ(loaded.records().size(), original.records().size());
  EXPECT_DOUBLE_EQ(loaded.end_time(), original.end_time());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_csv_file("/nonexistent/path.csv"), std::runtime_error);
}

}  // namespace
}  // namespace cohesion::core
