// Property tests for the SoA kernel's building blocks (src/core/soa_pool):
// the SoA segment pool must mirror KinematicState bit-for-bit across
// arbitrary commit histories, the certified squared-distance bounds must
// never misclassify against the exact hypot predicate, and the neighbor
// filter fed any sorted-unique candidate superset — from SpatialGrid's cell
// window, IncrementalGrid's buckets (including its outlier list), or the
// full id range — must reproduce the exact visible set, in ascending order,
// with bit-identical offsets. Modeled on the 400-seed IncrementalGrid
// commit-history fuzz.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <random>
#include <vector>

#include "core/kinematics.hpp"
#include "core/soa_pool.hpp"
#include "core/spatial_index.hpp"

namespace cohesion::core {
namespace {

using geom::Vec2;

/// The engine's exact visibility predicate, verbatim.
bool exact_visible(Vec2 self, Vec2 p, double r, bool open_ball) {
  const double d = self.distance_to(p);
  return open_ball ? (d < r) : (d <= r + kVisibilityEpsilon);
}

/// Brute reference: ids (ascending) of visible points, self removed.
std::vector<std::size_t> brute_visible(const std::vector<Vec2>& pts, std::size_t self,
                                       double r, bool open_ball) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i == self) continue;
    if (exact_visible(pts[self], pts[i], r, open_ball)) out.push_back(i);
  }
  return out;
}

/// Survivor ids of a filter pass, plus a bit-identity check on the offsets.
std::vector<std::size_t> survivors_of(const SoaNeighborFilter& f, const std::vector<Vec2>& pts,
                                      Vec2 self) {
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < f.survivor_count(); ++i) {
    const std::size_t id = f.survivor_id(i);
    ids.push_back(id);
    const Vec2 off = f.survivor_offset(i);
    // The stored offset must be the scalar paths' p - self, to the bit.
    EXPECT_EQ(off.x, pts[id].x - self.x);
    EXPECT_EQ(off.y, pts[id].y - self.y);
  }
  return ids;
}

TEST(CertifiedBallBounds, NeverMisclassifyAcrossAdversarialRadii) {
  // For radii from denormal to overflow-inducing, points planted exactly
  // on, just inside and just outside the boundary must never be certified
  // against the exact predicate's verdict. The bounds may be degenerate
  // (everything borderline) — that is allowed; a wrong certificate is not.
  const double radii[] = {0.0,     5e-324,  1e-308, 1e-12,  0.37,  1.0,
                          1e3,     1e155,   1e200,  std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::quiet_NaN(), -1.0};
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> jitter(-1.0, 1.0);
  for (const double b : radii) {
    const CertifiedBallBounds cb = certified_ball_bounds(b);
    // Distances probing the boundary from both sides at several scales.
    std::vector<double> probes = {0.0, 5e-324, 1e-12, 0.5, 1.0, 1e200,
                                  std::numeric_limits<double>::infinity()};
    if (std::isfinite(b) && b > 0.0) {
      for (const double f : {0.5, 1.0 - 1e-15, 1.0 - 1e-10, 1.0 - 1e-8, 1.0, 1.0 + 1e-15,
                             1.0 + 1e-10, 1.0 + 1e-8, 2.0}) {
        probes.push_back(b * f);
      }
    }
    for (const double d : probes) {
      for (int dir = 0; dir < 4; ++dir) {
        // Several dx/dy decompositions of (roughly) distance d.
        const double ang = dir * 0.7 + jitter(rng) * 0.01;
        const double dx = d * std::cos(ang);
        const double dy = d * std::sin(ang);
        const double d2 = dx * dx + dy * dy;
        const double exact = std::hypot(dx, dy);
        // Open ball of radius b: d < b. Closed ball is exercised by the
        // filter tests via b = r + kVisibilityEpsilon; the certificates
        // must hold for both comparisons, so check the stricter (<) and
        // the looser (<=) against the same bounds.
        if (d2 <= cb.definite_in2) {
          EXPECT_LT(exact, b) << "b " << b << " d " << d;
        }
        if (d2 > cb.definite_out2) {
          EXPECT_FALSE(exact <= b) << "b " << b << " d " << d;
        }
      }
    }
  }
}

TEST(SoaSegmentPool, MatchesKinematicStateBitExactlyAcrossCommitHistories) {
  // Random committed segment histories — the exact inputs the engine feeds
  // both tiers — with zero-duration moves, nil segments and multi-cell
  // lurches. After every commit the pool must answer position_at
  // bit-identically to KinematicState at the Look time, mid-move, and far
  // in the future; a fresh commit must replace the robot's lanes
  // immediately (no stale entries).
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    std::mt19937_64 rng(seed);
    const std::size_t n = 1 + seed % 24;
    std::uniform_real_distribution<double> u(-4.0, 4.0);
    std::vector<Vec2> initial;
    for (std::size_t i = 0; i < n; ++i) initial.push_back({u(rng), u(rng)});

    KinematicState kin(initial);
    SoaSegmentPool pool;
    pool.reset(initial);
    ASSERT_EQ(pool.robot_count(), n);

    std::vector<Time> busy(n, 0.0);
    Time frontier = 0.0;
    std::uniform_real_distribution<double> dur(0.0, 1.0);
    std::uniform_int_distribution<std::size_t> pick(0, n - 1);
    for (int step = 0; step < 30; ++step) {
      const RobotId rob = pick(rng);
      Activation a;
      a.robot = rob;
      a.t_look = std::max(frontier, busy[rob]) + dur(rng);
      a.t_move_start = a.t_look + dur(rng);
      a.t_move_end = a.t_move_start + (step % 7 == 0 ? 0.0 : dur(rng));
      a.realized_fraction = 1.0;
      const Vec2 from = kin.position_at(rob, a.t_look);
      const double reach = step % 11 == 0 ? 3.0 : 0.5;
      std::uniform_real_distribution<double> hop(-reach, reach);
      const Vec2 realized = from + Vec2{hop(rng), hop(rng)};
      const ActivationRecord rec{a, from, realized, realized, 0};
      kin.commit(rec);
      pool.commit(rec);
      frontier = a.t_look;
      busy[rob] = a.t_move_end;

      for (const Time t :
           {a.t_look, a.t_move_start, (a.t_move_start + a.t_move_end) / 2.0, a.t_move_end,
            a.t_move_end + 0.25, frontier + 50.0}) {
        for (RobotId q = 0; q < n; ++q) {
          if (t < kin.segment_start(q)) continue;  // both tiers undefined there
          const Vec2 want = kin.position_at(q, t);
          const Vec2 got = pool.position_at(q, t);
          EXPECT_EQ(got.x, want.x) << "seed " << seed << " step " << step << " robot " << q;
          EXPECT_EQ(got.y, want.y) << "seed " << seed << " step " << step << " robot " << q;
        }
      }
    }
  }
}

TEST(SoaNeighborFilter, MatchesExactVisibleSetOnAnySortedUniqueSuperset) {
  // 400-seed fuzz over clustered point sets with exact-boundary pairs and
  // duplicates: fed (a) the full id range and (b) SpatialGrid's unfiltered
  // cell-window candidates, the filter must output exactly the brute
  // visible set — ascending, unique, self removed — for open and closed
  // balls. Superset choice must never change the result.
  SpatialGrid grid;
  SoaNeighborFilter filter;
  std::vector<std::size_t> all_ids, cand;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    std::mt19937_64 rng(seed * 31 + 7);
    const std::size_t n = 2 + seed % 40;
    const double r = 0.05 + (seed % 7) * 0.33;
    const bool open_ball = seed % 2 == 0;
    std::uniform_real_distribution<double> u(-3.0, 3.0);
    std::vector<Vec2> pts;
    for (std::size_t i = 0; i < n; ++i) pts.push_back({u(rng), u(rng)});
    // Exact-boundary pair: distance exactly r along an axis (borderline
    // band traffic), plus an exact duplicate of point 0.
    if (n >= 3) {
      pts[1] = pts[0] + Vec2{r, 0.0};
      pts[2] = pts[0];
    }

    grid.set_cell_size(r > 0.0 ? r : 1.0);
    grid.rebuild(pts);
    all_ids.resize(n);
    std::iota(all_ids.begin(), all_ids.end(), std::size_t{0});

    for (std::size_t self = 0; self < n; self += 1 + n / 6) {
      const Vec2 q = pts[self];
      const auto want = brute_visible(pts, self, r, open_ball);

      filter.gather_positions(pts, all_ids, self);
      filter.filter(q, r, open_ball);
      EXPECT_EQ(survivors_of(filter, pts, q), want) << "seed " << seed << " full ids";

      grid.candidates_within(q, r, cand);
      // candidates_within must itself be a sorted-unique superset of the
      // predicate-true set (plus self, which is indexed).
      EXPECT_TRUE(std::is_sorted(cand.begin(), cand.end()));
      EXPECT_EQ(std::adjacent_find(cand.begin(), cand.end()), cand.end());
      for (const std::size_t id : want) {
        EXPECT_TRUE(std::binary_search(cand.begin(), cand.end(), id))
            << "seed " << seed << " id " << id << " missing from candidates";
      }
      filter.gather_positions(pts, cand, self);
      filter.filter(q, r, open_ball);
      EXPECT_EQ(survivors_of(filter, pts, q), want) << "seed " << seed << " grid candidates";
    }
  }
}

TEST(SoaNeighborFilter, GatherSegmentsMatchesScalarEvalThroughIncrementalCandidates) {
  // The incremental-path shape end to end, engine-free: random commit
  // histories drive KinematicState + SoaSegmentPool + IncrementalGrid in
  // lockstep (teleport lurches exercise the outlier list); at forward query
  // times the pool-gathered, certified-filtered survivors must equal the
  // brute visible set over the scalar cache's exact positions.
  SoaNeighborFilter filter;
  std::vector<std::size_t> cand;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    std::mt19937_64 rng(seed);
    const std::size_t n = 2 + seed % 20;
    const double cell = 0.3 + (seed % 5) * 0.4;
    const double r = 0.1 + 1.2 * ((seed / 5) % 4) / 4.0;
    const bool open_ball = seed % 2 == 0;
    std::uniform_real_distribution<double> u(-4.0, 4.0);
    std::vector<Vec2> initial;
    for (std::size_t i = 0; i < n; ++i) initial.push_back({u(rng), u(rng)});

    KinematicState kin(initial);
    SoaSegmentPool pool;
    pool.reset(initial);
    IncrementalGrid inc;
    inc.reset(cell, initial);

    std::vector<Time> busy(n, 0.0);
    Time frontier = 0.0;
    std::uniform_real_distribution<double> dur(0.0, 1.0);
    std::uniform_int_distribution<std::size_t> pick(0, n - 1);
    for (int step = 0; step < 25; ++step) {
      const RobotId rob = pick(rng);
      Activation a;
      a.robot = rob;
      a.t_look = std::max(frontier, busy[rob]) + dur(rng);
      a.t_move_start = a.t_look + dur(rng);
      a.t_move_end = a.t_move_start + (step % 7 == 0 ? 0.0 : dur(rng));
      a.realized_fraction = 1.0;
      const Vec2 from = kin.position_at(rob, a.t_look);
      // Mostly short hops; every 9th step a teleport far beyond the
      // segment-span cap, parking the robot on the outlier list.
      const double reach = step % 9 == 0 ? 40.0 * cell : 0.6 * cell;
      std::uniform_real_distribution<double> hop(-reach, reach);
      const Vec2 realized = from + Vec2{hop(rng), hop(rng)};
      const ActivationRecord rec{a, from, realized, realized, 0};
      kin.commit(rec);
      pool.commit(rec);
      inc.update(rob, from, realized, a.t_move_end);
      frontier = a.t_look;
      busy[rob] = a.t_move_end;

      for (const Time t : {frontier, frontier + 0.4, frontier + 50.0}) {
        inc.advance_to(t);
        std::vector<Vec2> exact(n);
        for (RobotId q = 0; q < n; ++q) exact[q] = kin.position_at(q, t);
        for (std::size_t self = 0; self < n; self += 1 + n / 5) {
          const Vec2 q = exact[self];
          inc.candidates_near(q, r, cand);
          filter.gather_segments(pool, cand, self, t);
          filter.filter(q, r, open_ball);
          EXPECT_EQ(survivors_of(filter, exact, q), brute_visible(exact, self, r, open_ball))
              << "seed " << seed << " step " << step << " t " << t;
        }
      }
      frontier += 50.0;
      for (RobotId q = 0; q < n; ++q) busy[q] = std::max(busy[q], frontier);
    }
  }
}

TEST(SoaNeighborFilter, DegenerateInputsStayExact) {
  // Huge coordinates overflow dx*dx + dy*dy to inf, zero and negative radii
  // degenerate the certified bounds, and an open ball of radius 0 must
  // reject even exact coincidence. In every case the filter must agree
  // with the brute predicate.
  const std::vector<Vec2> pts{{0.0, 0.0}, {1e200, 1e200}, {-1e200, 5.0},
                              {0.0, 0.0}, {0.5, 0.0},     {3e7, -4e7}};
  std::vector<std::size_t> ids(pts.size());
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  SoaNeighborFilter filter;
  for (const double r : {0.0, 1e-12, 0.5, 1e8, 1e200, 1e308, -2.0}) {
    for (const bool open_ball : {false, true}) {
      for (std::size_t self = 0; self < pts.size(); ++self) {
        filter.gather_positions(pts, ids, self);
        filter.filter(pts[self], r, open_ball);
        EXPECT_EQ(survivors_of(filter, pts, pts[self]),
                  brute_visible(pts, self, r, open_ball))
            << "r " << r << " open " << open_ball << " self " << self;
      }
    }
  }
}

TEST(SoaNeighborFilter, GatherSkipsSelfAndPreservesAscendingOrder) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {0.1, 0.0}, {0.2, 0.0}, {0.3, 0.0}};
  const std::vector<std::size_t> cands{0, 1, 2, 3};
  SoaNeighborFilter filter;
  filter.gather_positions(pts, cands, 2);
  filter.filter(pts[2], 10.0, false);
  const std::vector<std::size_t> want{0, 1, 3};
  ASSERT_EQ(filter.survivor_count(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(filter.survivor_id(i), want[i]);
}

}  // namespace
}  // namespace cohesion::core
