#include "core/validators.hpp"

#include <gtest/gtest.h>

namespace cohesion::core {
namespace {

ActivationRecord rec(RobotId r, Time look, Time end) {
  ActivationRecord out;
  out.activation = {r, look, look, end, 1.0};
  return out;
}

Trace two_robot_trace(std::initializer_list<ActivationRecord> recs) {
  Trace t({{0.0, 0.0}, {1.0, 0.0}});
  for (const auto& r : recs) t.record(r);
  return t;
}

TEST(Validators, DisjointIntervalsAreOneAsyncAndNested) {
  const Trace t = two_robot_trace({rec(0, 0.0, 1.0), rec(1, 2.0, 3.0), rec(0, 4.0, 5.0)});
  EXPECT_EQ(max_activations_within_interval(t), 0u);
  EXPECT_TRUE(is_nested_activation(t));
  EXPECT_TRUE(is_k_async(t, 1));
  EXPECT_TRUE(is_k_nesta(t, 1));
}

TEST(Validators, SingleNestedActivation) {
  const Trace t = two_robot_trace({rec(0, 0.0, 10.0), rec(1, 2.0, 3.0)});
  EXPECT_EQ(max_activations_within_interval(t), 1u);
  EXPECT_TRUE(is_nested_activation(t));
  EXPECT_TRUE(is_k_nesta(t, 1));
  EXPECT_FALSE(is_k_nesta(t, 0));
}

TEST(Validators, CrossingIntervalsNotNested) {
  const Trace t = two_robot_trace({rec(0, 0.0, 5.0), rec(1, 3.0, 8.0)});
  EXPECT_FALSE(is_nested_activation(t));
  EXPECT_EQ(max_activations_within_interval(t), 1u);
  EXPECT_TRUE(is_k_async(t, 1));
}

TEST(Validators, KCounting) {
  const Trace t = two_robot_trace(
      {rec(0, 0.0, 10.0), rec(1, 1.0, 2.0), rec(1, 3.0, 4.0), rec(1, 5.0, 6.0)});
  EXPECT_EQ(max_activations_within_interval(t), 3u);
  EXPECT_FALSE(is_k_async(t, 2));
  EXPECT_TRUE(is_k_async(t, 3));
  EXPECT_TRUE(is_k_nesta(t, 3));
}

TEST(Validators, TouchingEndpointsAreDisjoint) {
  const Trace t = two_robot_trace({rec(0, 0.0, 2.0), rec(1, 2.0, 4.0)});
  EXPECT_TRUE(is_nested_activation(t));
  EXPECT_EQ(max_activations_within_interval(t), 0u);
}

TEST(Validators, EqualIntervalsAreNested) {
  const Trace t = two_robot_trace({rec(0, 0.0, 1.0), rec(1, 0.0, 1.0)});
  EXPECT_TRUE(is_nested_activation(t));
}

TEST(Validators, SameRobotIntervalsIgnored) {
  // A robot's own successive intervals never count toward k.
  const Trace t = two_robot_trace({rec(0, 0.0, 1.0), rec(0, 2.0, 3.0), rec(0, 4.0, 5.0)});
  EXPECT_EQ(max_activations_within_interval(t), 0u);
}

TEST(Validators, SsyncShape) {
  Trace t({{0.0, 0.0}, {1.0, 0.0}});
  t.record(rec(0, 0.0, 0.75));
  t.record(rec(1, 0.0, 0.75));
  t.record(rec(0, 1.0, 1.75));
  EXPECT_TRUE(is_ssync(t, 1.0));
  t.record(rec(1, 2.5, 3.5));  // spans rounds 2 and 3
  EXPECT_FALSE(is_ssync(t, 1.0));
}

TEST(Validators, Fairness) {
  Trace t({{0.0, 0.0}, {1.0, 0.0}});
  t.record(rec(0, 0.0, 1.0));
  t.record(rec(1, 0.5, 1.5));
  t.record(rec(0, 3.0, 4.0));
  t.record(rec(1, 3.5, 4.5));
  EXPECT_TRUE(is_fair(t, 3.0));
  EXPECT_FALSE(is_fair(t, 2.0));
}

TEST(Validators, ThreeRobotChainedOverlaps) {
  // 0 and 1 cross, 1 and 2 cross: Async but not NestA; each contains one
  // look of the other => 1-Async.
  Trace t({{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}});
  t.record(rec(0, 0.0, 2.0));
  t.record(rec(1, 1.0, 3.0));
  t.record(rec(2, 2.5, 4.5));
  EXPECT_FALSE(is_nested_activation(t));
  EXPECT_TRUE(is_k_async(t, 1));
}

}  // namespace
}  // namespace cohesion::core
