// Certification battery for architecture contract 12: the SoA snapshot
// kernel (EngineConfig::soa_kernel) must be indistinguishable from the
// scalar reference — same seeds -> same ActivationRecords, to the bit —
// across every scheduler, error model, visibility variant, index mode and
// history mode. tools/check_soa_certification.sh re-runs this file under
// COHESION_SANITIZE=address and COHESION_NATIVE=ON (the `soa_certification`
// ctest test), so a vector-width or UB regression fails tier-1.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <random>
#include <vector>

#include "algo/baselines.hpp"
#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "core/trace_sink.hpp"
#include "metrics/configurations.hpp"
#include "sched/asynchronous.hpp"
#include "sched/synchronous.hpp"

namespace cohesion::core {
namespace {

using geom::Vec2;

void expect_identical_records(const std::vector<ActivationRecord>& soa,
                              const std::vector<ActivationRecord>& ref, std::uint64_t seed) {
  ASSERT_EQ(soa.size(), ref.size()) << "seed " << seed;
  for (std::size_t i = 0; i < soa.size(); ++i) {
    const ActivationRecord& s = soa[i];
    const ActivationRecord& r = ref[i];
    EXPECT_EQ(s.activation.robot, r.activation.robot) << "seed " << seed << " rec " << i;
    EXPECT_EQ(s.activation.t_look, r.activation.t_look) << "seed " << seed << " rec " << i;
    EXPECT_EQ(s.activation.t_move_start, r.activation.t_move_start)
        << "seed " << seed << " rec " << i;
    EXPECT_EQ(s.activation.t_move_end, r.activation.t_move_end)
        << "seed " << seed << " rec " << i;
    EXPECT_EQ(s.activation.realized_fraction, r.activation.realized_fraction)
        << "seed " << seed << " rec " << i;
    EXPECT_EQ(s.from, r.from) << "seed " << seed << " rec " << i;
    EXPECT_EQ(s.planned, r.planned) << "seed " << seed << " rec " << i;
    EXPECT_EQ(s.realized, r.realized) << "seed " << seed << " rec " << i;
    EXPECT_EQ(s.seen, r.seen) << "seed " << seed << " rec " << i;
  }
}

/// Schedulers under certification: FSync / SSync / k-Async / k-NestA /
/// unrestricted Async (k = SIZE_MAX), with KAsync's heap_selection axis
/// driven by a separate seed bit (it is a different but equally valid
/// seeded stream — both engines of a pair share it).
std::unique_ptr<Scheduler> make_scheduler(std::uint64_t seed, std::size_t n) {
  switch (seed % 5) {
    case 0:
      return std::make_unique<sched::FSyncScheduler>(n);
    case 1: {
      sched::SSyncScheduler::Params p;
      p.seed = seed;
      p.xi = seed % 3 == 0 ? 0.5 : 1.0;
      return std::make_unique<sched::SSyncScheduler>(n, p);
    }
    case 2: {
      sched::KAsyncScheduler::Params p;
      p.seed = seed;
      p.k = 1 + seed % 3;
      p.heap_selection = (seed / 8) % 2 == 1;
      return std::make_unique<sched::KAsyncScheduler>(n, p);
    }
    case 3: {
      sched::KNestAScheduler::Params p;
      p.seed = seed;
      p.k = 1 + seed % 2;
      return std::make_unique<sched::KNestAScheduler>(n, p);
    }
    default: {
      sched::KAsyncScheduler::Params p;
      p.seed = seed;
      p.k = std::numeric_limits<std::size_t>::max();  // Async: no bound
      p.heap_selection = (seed / 8) % 2 == 1;
      return std::make_unique<sched::KAsyncScheduler>(n, p);
    }
  }
}

std::vector<Vec2> make_initial(std::uint64_t seed, std::size_t n, double v) {
  switch (seed % 3) {
    case 0:
      return metrics::random_connected_configuration(n, 0.4 * std::sqrt(double(n)), v, seed + 1);
    case 1:
      // Spacing exactly v: every chain edge sits on the closed-ball
      // boundary — the certified borderline band gets real traffic.
      return metrics::line_configuration(n, v);
    default:
      return metrics::grid_configuration(n, 0.8 * v);
  }
}

EngineConfig make_config(std::uint64_t seed, std::size_t n, bool soa, bool incremental) {
  EngineConfig cfg;
  cfg.seed = seed * 7919 + 13;
  cfg.use_spatial_index = true;
  cfg.incremental_index = incremental;
  cfg.soa_kernel = soa;
  cfg.visibility.radius = 1.0;
  cfg.visibility.open_ball = (seed / 2) % 2 == 1;
  cfg.visibility.multiplicity_detection = (seed / 4) % 2 == 1;
  if (seed % 5 == 4) {
    // Heterogeneous sensing (§6.2): per-robot radii around the common V.
    std::mt19937_64 radii_rng(seed);
    std::uniform_real_distribution<double> u(0.6, 1.7);
    for (std::size_t r = 0; r < n; ++r) cfg.visibility.per_robot_radii.push_back(u(radii_rng));
  }
  switch (seed % 6) {
    case 0:
      cfg.error.random_rotation = false;  // exact perception, identity frames
      break;
    case 1:
      break;  // random rotation only
    case 2:
      cfg.error.distance_delta = 0.05;  // per-neighbour RNG draws in the Look
      break;
    case 3:
      cfg.error.skew_lambda = 0.3;
      break;
    case 4:
      cfg.error.motion_quad_coeff = 0.1;
      break;
    default:
      cfg.error.allow_reflection = true;
      cfg.error.distance_delta = 0.02;
      break;
  }
  return cfg;
}

TEST(SoaEquivalence, FiveHundredSeedDifferentialFuzz) {
  // 500 seeds x (SoA vs scalar) over both index modes (incremental cell
  // maintenance and per-Look-time rebuild), all schedulers, all error
  // models and all visibility variants. Also triangulated against the
  // brute-force scan every 16th seed so the pair cannot drift together.
  const algo::KknpsAlgorithm kknps({.k = 1});
  const algo::AndoAlgorithm ando(1.0);
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    const std::size_t n = 2 + seed % 29;
    const bool incremental = (seed / 16) % 2 == 0;
    const auto initial = make_initial(seed, n, 1.0);
    const Algorithm& algorithm = seed % 2 == 0 ? static_cast<const Algorithm&>(kknps)
                                               : static_cast<const Algorithm&>(ando);

    const auto sched_soa = make_scheduler(seed, n);
    Engine soa(initial, algorithm, *sched_soa, make_config(seed, n, true, incremental));
    const auto sched_ref = make_scheduler(seed, n);
    Engine ref(initial, algorithm, *sched_ref, make_config(seed, n, false, incremental));

    if (seed % 7 == 3) {  // fail-stop robots ride along unchanged
      soa.crash(n / 2);
      ref.crash(n / 2);
    }

    const std::size_t steps = 120;
    const std::size_t done = ref.run(steps);
    ASSERT_EQ(soa.run(steps), done) << "seed " << seed;
    expect_identical_records(soa.trace().records(), ref.trace().records(), seed);
    EXPECT_EQ(soa.current_diameter(), ref.current_diameter()) << "seed " << seed;
    const auto cfg_soa = soa.current_configuration();
    const auto cfg_ref = ref.current_configuration();
    ASSERT_EQ(cfg_soa.size(), cfg_ref.size());
    for (std::size_t r = 0; r < cfg_soa.size(); ++r) {
      EXPECT_EQ(cfg_soa[r], cfg_ref[r]) << "seed " << seed << " robot " << r;
    }

    if (seed % 16 == 5) {
      auto brute_cfg = make_config(seed, n, false, incremental);
      brute_cfg.use_spatial_index = false;
      brute_cfg.soa_kernel = false;
      const auto sched_brute = make_scheduler(seed, n);
      Engine brute(initial, algorithm, *sched_brute, brute_cfg);
      if (seed % 7 == 3) brute.crash(n / 2);
      ASSERT_EQ(brute.run(steps), done) << "seed " << seed;
      expect_identical_records(soa.trace().records(), brute.trace().records(), seed);
    }
  }
}

/// Minimal materializing sink for the bounded-memory legs: collects the
/// record stream the way Trace would, without the engine keeping history.
class CollectingSink final : public TraceSink {
 public:
  void append(const ActivationRecord& rec) override { records_.push_back(rec); }
  [[nodiscard]] const std::vector<ActivationRecord>& records() const { return records_; }

 private:
  std::vector<ActivationRecord> records_;
};

TEST(SoaEquivalence, BoundedMemoryStreamModeMatchesMemoryPath) {
  // record_history = false: the engine keeps no Trace and feeds a TeeSink
  // instead (the stream-mode shape). The SoA kernel must produce the same
  // record stream as the scalar bounded-memory engine AND as its own
  // memory-mode twin — across schedulers and both index modes.
  const algo::KknpsAlgorithm kknps({.k = 2});
  for (std::uint64_t seed = 1000; seed < 1120; ++seed) {
    const std::size_t n = 3 + seed % 23;
    const bool incremental = (seed / 16) % 2 == 0;
    const auto initial = make_initial(seed, n, 1.0);

    auto soa_cfg = make_config(seed, n, true, incremental);
    auto ref_cfg = make_config(seed, n, false, incremental);

    // Bounded-memory SoA engine, records through a TeeSink fan-out.
    auto stream_cfg = soa_cfg;
    stream_cfg.record_history = false;
    const auto sched_stream = make_scheduler(seed, n);
    Engine stream(initial, kknps, *sched_stream, stream_cfg);
    CollectingSink collected;
    CollectingSink collected_copy;
    TeeSink tee({&collected, &collected_copy});
    stream.set_trace_sink(&tee);

    // Bounded-memory scalar engine.
    auto ref_stream_cfg = ref_cfg;
    ref_stream_cfg.record_history = false;
    const auto sched_ref = make_scheduler(seed, n);
    Engine ref_stream(initial, kknps, *sched_ref, ref_stream_cfg);
    CollectingSink ref_collected;
    ref_stream.set_trace_sink(&ref_collected);

    // Memory-mode SoA engine — the in-memory reference path.
    const auto sched_mem = make_scheduler(seed, n);
    Engine memory(initial, kknps, *sched_mem, soa_cfg);

    const std::size_t steps = 100;
    const std::size_t done = memory.run(steps);
    ASSERT_EQ(stream.run(steps), done) << "seed " << seed;
    ASSERT_EQ(ref_stream.run(steps), done) << "seed " << seed;
    expect_identical_records(collected.records(), memory.trace().records(), seed);
    expect_identical_records(collected.records(), ref_collected.records(), seed);
    expect_identical_records(collected.records(), collected_copy.records(), seed);
    EXPECT_EQ(stream.current_diameter(), memory.current_diameter()) << "seed " << seed;
    EXPECT_EQ(stream.end_time(), memory.end_time()) << "seed " << seed;
  }
}

TEST(SoaEquivalence, ZeroDurationAndBackwardSlackScriptsStayExact) {
  // The engine's two scheduler-slack subtleties, under the SoA kernel on
  // both index modes vs the brute reference: a zero-duration move must
  // invalidate the same-time grid, and a Look within the 1e-12 ordering
  // slack *before* the frontier must be served by the scan fallback.
  const algo::CogAlgorithm cog;
  const std::vector<Vec2> initial{{0.0, 0.0}, {0.6, 0.0}, {0.3, 0.5}, {-0.4, 0.2}};
  const double eps = 5e-13;
  const std::vector<Activation> script{
      {0, 1.0, 1.0, 1.0, 1.0},            // instantaneous move at the Look
      {1, 1.0, 1.0, 1.0, 0.5},            // instantaneous, xi-truncated
      {2, 1.0, 1.1, 1.4, 1.0},            // ordinary move at the same Look time
      {3, 2.0 - eps, 2.0, 2.3, 1.0},      // backward Look within the slack
      {0, 2.0, 2.0, 2.0, 1.0},            // zero-duration after the fallback
      {1, 3.0, 3.1, 3.4, 1.0},
      {2, 3.0 - eps, 3.0, 3.2, 0.7},      // backward again after real motion
      {3, 4.0, 4.2, 4.6, 1.0},
  };
  EngineConfig base;
  base.visibility.radius = 1.0;
  base.error.random_rotation = false;

  for (const bool incremental : {true, false}) {
    auto soa_cfg = base;
    soa_cfg.incremental_index = incremental;
    soa_cfg.soa_kernel = true;
    sched::ScriptedScheduler sched_soa(script);
    Engine soa(initial, cog, sched_soa, soa_cfg);

    auto brute_cfg = base;
    brute_cfg.use_spatial_index = false;
    sched::ScriptedScheduler sched_brute(script);
    Engine brute(initial, cog, sched_brute, brute_cfg);

    const std::size_t done = brute.run(script.size());
    ASSERT_EQ(done, script.size());
    ASSERT_EQ(soa.run(script.size()), done);
    expect_identical_records(soa.trace().records(), brute.trace().records(), incremental);
  }
}

TEST(SoaEquivalence, LargeSwarmSpotCheck) {
  // One production-sized configuration: the SoA filter sees wide candidate
  // lanes (many per cell window) instead of the fuzz harness's short ones.
  const algo::KknpsAlgorithm kknps({.k = 1});
  const std::size_t n = 512;
  const auto initial =
      metrics::random_connected_configuration(n, 0.4 * std::sqrt(double(n)), 1.0, 42);

  EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  cfg.soa_kernel = true;
  sched::FSyncScheduler sched_soa_inc(n);
  Engine soa_inc(initial, kknps, sched_soa_inc, cfg);

  cfg.incremental_index = false;
  sched::FSyncScheduler sched_soa_grid(n);
  Engine soa_grid(initial, kknps, sched_soa_grid, cfg);

  cfg.use_spatial_index = false;
  cfg.soa_kernel = false;
  sched::FSyncScheduler sched_brute(n);
  Engine brute(initial, kknps, sched_brute, cfg);

  const std::size_t steps = n * 4;
  const std::size_t done = brute.run(steps);
  ASSERT_EQ(soa_grid.run(steps), done);
  ASSERT_EQ(soa_inc.run(steps), done);
  expect_identical_records(soa_grid.trace().records(), brute.trace().records(), 42);
  expect_identical_records(soa_inc.trace().records(), brute.trace().records(), 42);
}

TEST(SoaEquivalence, SoaKernelRequiresSpatialIndex) {
  const algo::CogAlgorithm cog;
  sched::FSyncScheduler sched(2);
  EngineConfig cfg;
  cfg.use_spatial_index = false;
  cfg.soa_kernel = true;
  EXPECT_THROW(Engine({{0.0, 0.0}, {0.5, 0.0}}, cog, sched, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace cohesion::core
