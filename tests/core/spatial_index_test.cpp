#include "core/spatial_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/kinematics.hpp"
#include "core/trace.hpp"
#include "core/visibility.hpp"
#include "geometry/vec2.hpp"

namespace cohesion::core {
namespace {

using geom::Vec2;

std::vector<std::size_t> brute_neighbors(const std::vector<Vec2>& pts, Vec2 q, double r,
                                         bool open_ball) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double d = q.distance_to(pts[i]);
    const bool vis = open_ball ? (d < r) : (d <= r + kVisibilityEpsilon);
    if (vis) out.push_back(i);
  }
  return out;
}

std::vector<std::pair<RobotId, RobotId>> brute_edges(const std::vector<Vec2>& pts, double v,
                                                     bool open_ball) {
  std::vector<std::pair<RobotId, RobotId>> edges;
  for (RobotId a = 0; a < pts.size(); ++a) {
    for (RobotId b = a + 1; b < pts.size(); ++b) {
      const double d = pts[a].distance_to(pts[b]);
      const bool vis = open_ball ? (d < v) : (d <= v + kVisibilityEpsilon);
      if (vis) edges.emplace_back(a, b);
    }
  }
  return edges;
}

/// Random point set with adversarial structure: exact duplicates and pairs
/// at exactly the query radius (so the closed/open boundary is exercised).
std::vector<Vec2> make_points(std::mt19937_64& rng, std::size_t n, double world, double r) {
  std::uniform_real_distribution<double> u(-world, world);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pts.push_back({u(rng), u(rng)});
  if (n >= 4) {
    pts[1] = pts[0];                         // exact duplicate
    pts[3] = pts[2] + Vec2{r, 0.0};          // pair at exactly distance r
  }
  return pts;
}

TEST(SpatialGrid, RandomizedEquivalenceHarness1000Seeds) {
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    std::mt19937_64 rng(seed);
    const std::size_t n = seed % 49;  // includes n = 0
    const double r = 0.05 + 2.0 * (seed % 7) / 7.0;
    const double world = 0.5 + 3.0 * (seed % 5) / 5.0;
    const bool open_ball = (seed / 7) % 2 == 0;
    const auto pts = make_points(rng, n, world, r);

    SpatialGrid grid(r);
    grid.rebuild(pts);
    std::vector<std::size_t> got;
    // Query from every indexed point plus a few arbitrary off-grid points.
    std::uniform_real_distribution<double> u(-2.0 * world, 2.0 * world);
    std::vector<Vec2> queries = pts;
    queries.push_back({u(rng), u(rng)});
    queries.push_back({u(rng), u(rng)});
    for (const Vec2 q : queries) {
      grid.neighbors_within(q, r, open_ball, got);
      EXPECT_EQ(got, brute_neighbors(pts, q, r, open_ball)) << "seed " << seed;
    }
  }
}

TEST(SpatialGrid, CellSizeIndependence) {
  // The query radius need not match the cell size: results must be exact for
  // cells far smaller and far larger than the ball.
  std::mt19937_64 rng(99);
  const auto pts = make_points(rng, 200, 3.0, 0.7);
  for (const double cell : {0.05, 0.3, 0.7, 2.5, 100.0}) {
    SpatialGrid grid(cell);
    grid.rebuild(pts);
    std::vector<std::size_t> got;
    for (const Vec2 q : pts) {
      grid.neighbors_within(q, 0.7, false, got);
      EXPECT_EQ(got, brute_neighbors(pts, q, 0.7, false)) << "cell " << cell;
    }
  }
}

TEST(SpatialGrid, DegenerateInputs) {
  SpatialGrid grid(1.0);
  std::vector<std::size_t> got;
  // Query before any rebuild.
  grid.neighbors_within({0.0, 0.0}, 1.0, false, got);
  EXPECT_TRUE(got.empty());
  // Empty point set.
  const std::vector<Vec2> empty;
  grid.rebuild(empty);
  grid.neighbors_within({0.0, 0.0}, 1.0, false, got);
  EXPECT_TRUE(got.empty());
  // Huge coordinates must not trip the cell clamping.
  const std::vector<Vec2> far{{1e200, -1e200}, {1e200, -1e200}, {0.0, 0.0}};
  grid.rebuild(far);
  grid.neighbors_within({1e200, -1e200}, 1.0, false, got);
  EXPECT_EQ(got, (std::vector<std::size_t>{0, 1}));
  // Zero and negative radius behave like the brute predicate.
  grid.neighbors_within({0.0, 0.0}, 0.0, false, got);
  EXPECT_EQ(got, (std::vector<std::size_t>{2}));
  grid.neighbors_within({0.0, 0.0}, 0.0, true, got);
  EXPECT_TRUE(got.empty());
}

TEST(VisibilityGraph, GridPathMatchesBruteForce) {
  // n above the grid threshold: the constructor takes the grid path; the
  // edge list must be identical (same pairs, same order) to the O(n^2) scan.
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    std::mt19937_64 rng(seed);
    const std::size_t n = 64 + seed % 150;
    const double v = 0.3 + (seed % 9) / 9.0;
    const bool open_ball = seed % 2 == 0;
    const auto pts = make_points(rng, n, 0.4 * std::sqrt(double(n)), v);
    const VisibilityGraph g(pts, v, open_ball);
    EXPECT_EQ(g.edges(), brute_edges(pts, v, open_ball)) << "seed " << seed;
  }
}

TEST(VisibilityGraph, StretchGridPathMatchesBruteForce) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    std::mt19937_64 rng(seed * 31 + 7);
    const std::size_t n = 64 + seed % 120;
    const double v = 0.4 + (seed % 5) / 5.0;
    const auto initial = make_points(rng, n, 0.4 * std::sqrt(double(n)), v);
    std::vector<Vec2> later = initial;
    std::uniform_real_distribution<double> jitter(-0.3, 0.3);
    for (Vec2& p : later) p += Vec2{jitter(rng), jitter(rng)};

    double brute = 0.0;
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (initial[a].distance_to(initial[b]) <= v + kVisibilityEpsilon) {
          brute = std::max(brute, later[a].distance_to(later[b]) / v);
        }
      }
    }
    EXPECT_EQ(worst_initial_pair_stretch(initial, later, v), brute) << "seed " << seed;
  }
}

TEST(IncrementalGrid, FuzzAdvanceMatchesRebuildAcrossCommitHistories) {
  // Drive an IncrementalGrid through random committed segment histories —
  // the exact inputs the engine feeds it — and after every commit compare,
  // at several non-decreasing query times, the predicate-filtered candidate
  // set against (a) a SpatialGrid rebuilt from scratch over the exact
  // positions and (b) the brute-force scan. Histories include zero-duration
  // moves, degenerate (nil) segments, multi-cell moves and long idle spans
  // that let settled robots collapse to their end cell.
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    std::mt19937_64 rng(seed);
    const std::size_t n = 1 + seed % 24;
    const double cell = 0.3 + (seed % 5) * 0.4;
    const double r = 0.1 + 1.2 * ((seed / 5) % 4) / 4.0;
    const bool open_ball = seed % 2 == 0;
    std::uniform_real_distribution<double> u(-4.0, 4.0);

    std::vector<Vec2> initial;
    for (std::size_t i = 0; i < n; ++i) initial.push_back({u(rng), u(rng)});

    KinematicState kin(initial);
    IncrementalGrid inc;
    inc.reset(cell, initial);
    SpatialGrid rebuilt(cell);

    std::vector<Time> busy(n, 0.0);
    Time frontier = 0.0;
    std::uniform_real_distribution<double> dur(0.0, 1.0);
    std::uniform_int_distribution<std::size_t> pick(0, n - 1);
    std::vector<std::size_t> got, want;
    for (int step = 0; step < 40; ++step) {
      const RobotId rob = pick(rng);
      Activation a;
      a.robot = rob;
      a.t_look = std::max(frontier, busy[rob]) + dur(rng);
      a.t_move_start = a.t_look + dur(rng);
      a.t_move_end = a.t_move_start + (step % 7 == 0 ? 0.0 : dur(rng));
      a.realized_fraction = 1.0;
      const Vec2 from = kin.position_at(rob, a.t_look);
      // Mostly short hops; occasionally a multi-cell lurch.
      const double reach = step % 11 == 0 ? 3.0 : 0.6 * cell;
      std::uniform_real_distribution<double> hop(-reach, reach);
      const Vec2 realized = from + Vec2{hop(rng), hop(rng)};
      ActivationRecord rec{a, from, realized, realized, 0};
      kin.commit(rec);
      inc.update(rob, from, realized, a.t_move_end);
      frontier = a.t_look;
      busy[rob] = a.t_move_end;

      // Query at the commit's Look time, mid-move, and far in the future
      // (all robots settled) — times non-decreasing, as the engine's
      // forward-query contract requires.
      for (const Time t : {frontier, frontier + 0.3, frontier + 50.0}) {
        inc.advance_to(t);
        std::vector<Vec2> exact(n);
        for (RobotId q = 0; q < n; ++q) exact[q] = kin.position_at(q, t);
        rebuilt.rebuild(exact);
        for (std::size_t qi = 0; qi < n; ++qi) {
          const Vec2 q = exact[qi];
          inc.candidates_near(q, r, got);
          // Predicate-filter the candidates exactly as the engine does.
          std::erase_if(got, [&](std::size_t i) {
            const double d = q.distance_to(exact[i]);
            return open_ball ? !(d < r) : !(d <= r + kVisibilityEpsilon);
          });
          rebuilt.neighbors_within(q, r, open_ball, want);
          EXPECT_EQ(got, want) << "seed " << seed << " step " << step << " t " << t;
          EXPECT_EQ(got, brute_neighbors(exact, q, r, open_ball))
              << "seed " << seed << " step " << step << " t " << t;
        }
      }
      // The far-future advance settled everyone; continue committing past it
      // only with Look times that respect the non-decreasing contract.
      frontier += 50.0;
      for (RobotId q = 0; q < n; ++q) busy[q] = std::max(busy[q], frontier);
    }
  }
}

TEST(IncrementalGrid, TeleportSegmentsStayExactViaOutlierList) {
  // A segment spanning far more cells than any real move (bounded by ~the
  // visibility radius) parks the robot on the always-scanned outlier list;
  // queries must stay exact while it is in flight and after it settles.
  const std::vector<Vec2> initial{{0.0, 0.0}, {0.5, 0.0}, {100.0, 100.0}, {-3.0, 2.0}};
  IncrementalGrid inc;
  inc.reset(1.0, initial);
  KinematicState kin(initial);

  Activation a;
  a.robot = 2;
  a.t_look = 1.0;
  a.t_move_start = 1.0;
  a.t_move_end = 5.0;
  a.realized_fraction = 1.0;
  const Vec2 realized{0.25, 0.1};  // 100-cell teleport toward the cluster
  kin.commit({a, initial[2], realized, realized, 0});
  inc.update(2, initial[2], realized, a.t_move_end);

  std::vector<std::size_t> got;
  for (const Time t : {1.0, 2.5, 5.0, 9.0}) {
    inc.advance_to(t);
    std::vector<Vec2> exact(initial.size());
    for (RobotId q = 0; q < initial.size(); ++q) exact[q] = kin.position_at(q, t);
    for (RobotId q = 0; q < initial.size(); ++q) {
      inc.candidates_near(exact[q], 1.0, got);
      std::erase_if(got, [&](std::size_t i) {
        return !(exact[q].distance_to(exact[i]) <= 1.0 + kVisibilityEpsilon);
      });
      EXPECT_EQ(got, brute_neighbors(exact, exact[q], 1.0, false)) << "t " << t;
    }
  }
}

TEST(IncrementalGrid, StaleSettleEntriesAreIgnoredAfterRecommit) {
  // Robot recommits before its previous segment's settle time: the stale
  // queue entry must not collapse the new segment's buckets.
  const std::vector<Vec2> initial{{0.0, 0.0}, {2.6, 0.0}};
  IncrementalGrid inc;
  inc.reset(1.0, initial);
  // First segment: long slow move rightward, would settle at t = 10.
  inc.update(0, {0.0, 0.0}, {1.8, 0.0}, 10.0);
  // Recommit at t = 3 (engine would only do this once the robot is free
  // again; here we only care about queue staleness): short move near the
  // second robot, settling at t = 4.
  inc.update(0, {1.8, 0.0}, {2.2, 0.0}, 4.0);
  inc.advance_to(10.0);  // pops both entries; only the live one may collapse
  std::vector<std::size_t> got;
  // Robot 0 rests at (2.2, 0): visible from robot 1 at distance 0.4.
  inc.candidates_near({2.6, 0.0}, 1.0, got);
  EXPECT_EQ(got, (std::vector<std::size_t>{0, 1}));
}

TEST(KinematicState, MatchesTraceReplayBitExactly) {
  // Replay random committed histories into both tiers and check the cache
  // agrees with the trace wherever the cache is defined (t >= its segment's
  // Look time) — including mid-move interpolation and degenerate segments.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    std::mt19937_64 rng(seed);
    const std::size_t n = 1 + seed % 8;
    std::uniform_real_distribution<double> u(-5.0, 5.0);
    std::vector<Vec2> initial;
    for (std::size_t r = 0; r < n; ++r) initial.push_back({u(rng), u(rng)});

    Trace trace(initial);
    KinematicState kin(initial);
    std::vector<Time> busy(n, 0.0);
    Time frontier = 0.0;
    std::uniform_real_distribution<double> dur(0.0, 1.5);
    std::uniform_int_distribution<std::size_t> pick(0, n - 1);
    for (int step = 0; step < 60; ++step) {
      const RobotId r = pick(rng);
      Activation a;
      a.robot = r;
      a.t_look = std::max(frontier, busy[r]) + dur(rng);
      a.t_move_start = a.t_look + dur(rng);
      a.t_move_end = a.t_move_start + dur(rng);  // may be zero-length
      a.realized_fraction = 1.0;
      ActivationRecord rec{a, trace.position(r, a.t_look), {u(rng), u(rng)}, {u(rng), u(rng)}, 0};
      trace.record(rec);
      kin.commit(rec);
      frontier = a.t_look;
      busy[r] = a.t_move_end;

      for (RobotId q = 0; q < n; ++q) {
        for (const Time t : {frontier, frontier + 0.2, a.t_move_start, a.t_move_end,
                             a.t_move_end + 3.0}) {
          if (t < kin.segment_start(q)) continue;  // cache undefined there
          const Vec2 cached = kin.position_at(q, t);
          const Vec2 replayed = trace.position(q, t);
          EXPECT_EQ(cached.x, replayed.x) << "seed " << seed;
          EXPECT_EQ(cached.y, replayed.y) << "seed " << seed;
        }
      }
    }
    EXPECT_EQ(trace.end_time(), [&] {
      Time end = 0.0;
      for (const auto& rec : trace.records()) end = std::max(end, rec.activation.t_move_end);
      return end;
    }());
    for (RobotId r = 0; r < n; ++r) {
      std::size_t count = 0;
      for (const auto& rec : trace.records()) count += rec.activation.robot == r;
      EXPECT_EQ(trace.activation_count(r), count);
    }
  }
}

TEST(KinematicState, DirtyTrackingRecordsCommitsSinceLastDrain) {
  const std::vector<Vec2> initial{{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}};
  KinematicState kin(initial);
  const auto commit = [&](RobotId r, Time look) {
    Activation a;
    a.robot = r;
    a.t_look = look;
    a.t_move_start = look;
    a.t_move_end = look + 0.5;
    a.realized_fraction = 1.0;
    kin.commit({a, initial[r], initial[r], initial[r], 0});
  };
  commit(1, 1.0);
  EXPECT_TRUE(kin.dirty().empty());  // off by default: reference paths pay nothing
  kin.set_track_dirty(true);
  commit(2, 2.0);
  commit(0, 3.0);
  commit(2, 4.0);
  EXPECT_EQ(kin.dirty(), (std::vector<RobotId>{2, 0, 2}));  // commit order, repeats kept
  kin.clear_dirty();
  EXPECT_TRUE(kin.dirty().empty());
  commit(1, 5.0);
  EXPECT_EQ(kin.dirty(), (std::vector<RobotId>{1}));
  EXPECT_EQ(kin.segment_end(1), 5.5);
  EXPECT_EQ(kin.segment_from(1), initial[1]);
  EXPECT_EQ(kin.segment_realized(1), initial[1]);
}

}  // namespace
}  // namespace cohesion::core
