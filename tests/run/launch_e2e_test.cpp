// Process-level fault-injection matrix for the supervisor (unit layer:
// supervisor_test.cpp). Each test drives real `cohesion_run` worker
// processes from the build tree through Supervisor and holds it to the
// acceptance bar: the supervised report is byte-identical to the fresh
// single-process `--no-timing` report under every fault schedule — kill,
// heartbeat stall, journal corruption — or an explicit partial report
// naming the uncovered shards. Also covers the workers' exit-code
// taxonomy and SIGTERM -> flush -> resume behavior end to end.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "run/batch_runner.hpp"
#include "run/exit_codes.hpp"
#include "run/supervisor.hpp"

namespace cohesion::run {
namespace {

namespace fs = std::filesystem;

std::string build_dir() {
  char buf[4096];
  const ::ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return fs::path(buf).parent_path().string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Exit code of a finished child: WEXITSTATUS, or 128+signal (shell style).
int wait_code(::pid_t pid) {
  int st = 0;
  ::waitpid(pid, &st, 0);
  if (WIFEXITED(st)) return WEXITSTATUS(st);
  if (WIFSIGNALED(st)) return 128 + WTERMSIG(st);
  return -1;
}

::pid_t spawn_tool(const std::vector<std::string>& args, const std::string& log_path) {
  std::vector<std::string> copy = args;
  const ::pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int log = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log >= 0) {
    ::dup2(log, STDOUT_FILENO);
    ::dup2(log, STDERR_FILENO);
    if (log > STDERR_FILENO) ::close(log);
  }
  std::vector<char*> argv;
  for (std::string& a : copy) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  ::_exit(127);
}

int run_tool(const std::vector<std::string>& args, const std::string& log_path) {
  return wait_code(spawn_tool(args, log_path));
}

class LaunchE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    runner_ = build_dir() + "/cohesion_run";
    if (!fs::exists(runner_)) {
      GTEST_SKIP() << "cohesion_run not found next to the test binary (" << runner_ << ")";
    }
    dir_ = std::string(::testing::TempDir()) + "launch_e2e_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    spec_path_ = dir_ + "/sweep.json";
    std::ofstream out(spec_path_);
    out << sweep_spec().to_json().dump(2) << '\n';
  }

  void TearDown() override { fs::remove_all(dir_); }

  /// shard_test's sharded_sweep: 3 scheduler-k variants x 3 repeats = 9
  /// runs, each a few thousand activations — big enough that a throttled
  /// worker is killable mid-shard, small enough to run many times here.
  static ExperimentSpec sweep_spec() {
    ExperimentSpec e;
    e.name = "supervised";
    e.base.n = 8;
    e.base.seed = 2024;
    e.base.algorithm = {.type = "kknps", .params = Json::parse(R"({"k": 2})")};
    e.base.scheduler = {.type = "kasync", .params = Json::parse(R"({"xi": 0.5})")};
    e.base.initial = {.type = "line", .params = Json::parse(R"({"spacing": 0.9})")};
    e.base.stop.epsilon = 0.05;
    e.base.stop.max_activations = 20000;
    e.repeats = 3;
    e.axes.push_back({"scheduler.params.k", {Json(1), Json(2), Json(3)}});
    return e;
  }

  /// The acceptance reference: the fresh single-process `--no-timing`
  /// report, computed from the very spec file the workers will read.
  std::string expected_report() const {
    const ExperimentSpec e = ExperimentSpec::from_json(Json::parse_file(spec_path_));
    const BatchResult result = BatchRunner().run(e);
    return BatchRunner::report_json(e, result, false).dump(2);
  }

  SupervisorOptions base_options() {
    SupervisorOptions o;
    o.runner = runner_;
    o.spec_path = spec_path_;
    o.shards = 3;
    o.throttle_ms = 50;  // steady journal cadence for the fault triggers
    o.work_dir = dir_ + "/work";
    o.retry.base_delay_seconds = 0.05;
    o.retry.max_delay_seconds = 0.2;
    o.lease.poll_interval_seconds = 0.01;
    o.lease.status_interval_seconds = 0.5;
    o.on_event = [this](const std::string& line) { events_.push_back(line); };
    return o;
  }

  [[nodiscard]] bool saw_event(const std::string& needle) const {
    for (const std::string& e : events_) {
      if (e.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  std::string runner_;
  std::string dir_;
  std::string spec_path_;
  std::vector<std::string> events_;
};

// --- supervised byte-identity matrix ---------------------------------------

TEST_F(LaunchE2E, NoFaultsMergesByteIdenticalToSingleProcess) {
  SupervisorOptions o = base_options();
  o.throttle_ms = 0;  // no faults to pace for
  const SupervisorResult r = Supervisor(o).run();
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.exit_code, kExitSuccess);
  EXPECT_EQ(r.covered_runs, 9u);
  EXPECT_EQ(r.report.dump(2), expected_report());
  ASSERT_EQ(r.shards.size(), 3u);
  for (const ShardStatus& s : r.shards) {
    EXPECT_EQ(s.state, ShardStatus::State::done);
    EXPECT_EQ(s.attempts, 1u);
  }
}

TEST_F(LaunchE2E, KillFaultIsRetriedAndStillByteIdentical) {
  SupervisorOptions o = base_options();
  o.faults.push_back(FaultPlan::parse("kill:shard=1,after=1"));
  const SupervisorResult r = Supervisor(o).run();
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.report.dump(2), expected_report());
  // The sabotaged shard died and came back; resume kept its first journal
  // line from being recomputed (asserted indirectly: the bytes match).
  EXPECT_GE(r.shards[1].attempts, 2u);
  EXPECT_EQ(r.shards[1].state, ShardStatus::State::done);
  EXPECT_TRUE(saw_event("fault injected on shard 1"));
  EXPECT_TRUE(saw_event("killed by signal 9"));
}

TEST_F(LaunchE2E, StalledHeartbeatExpiresTheLeaseAndRecovers) {
  SupervisorOptions o = base_options();
  // SIGSTOP stops the journal heartbeat but the process lives — only the
  // lease can catch it. Short timeout so the test stays quick; the worker
  // appends a line every ~50ms, so 1s of silence is unambiguous.
  o.lease.timeout_seconds = 1.0;
  o.faults.push_back(FaultPlan::parse("stall:shard=0,after=1"));
  const SupervisorResult r = Supervisor(o).run();
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.report.dump(2), expected_report());
  EXPECT_GE(r.shards[0].attempts, 2u);
  EXPECT_TRUE(saw_event("lease expired"));
}

TEST_F(LaunchE2E, CorruptedJournalTailIsTruncatedByResumeAndStillByteIdentical) {
  SupervisorOptions o = base_options();
  o.faults.push_back(FaultPlan::parse("corrupt:shard=2,after=1"));
  const SupervisorResult r = Supervisor(o).run();
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.report.dump(2), expected_report());
  EXPECT_GE(r.shards[2].attempts, 2u);
  EXPECT_TRUE(saw_event("fault injected on shard 2"));
}

TEST_F(LaunchE2E, ExhaustedRetryBudgetYieldsPartialReportNamingTheShard) {
  SupervisorOptions o = base_options();
  o.retry.max_attempts = 2;
  // Sabotage every launch of shard 1 the moment it starts: the shard can
  // never complete and must be reported as uncovered — never silently.
  o.faults.push_back(FaultPlan::parse("kill:shard=1,attempt=1,after=0"));
  o.faults.push_back(FaultPlan::parse("kill:shard=1,attempt=2,after=0"));
  const SupervisorResult r = Supervisor(o).run();
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.exit_code, kExitPermanent);
  EXPECT_EQ(r.shards[1].state, ShardStatus::State::failed);
  EXPECT_EQ(r.shards[1].attempts, 2u);
  EXPECT_EQ(r.shards[0].state, ShardStatus::State::done);
  EXPECT_EQ(r.shards[2].state, ShardStatus::State::done);

  EXPECT_EQ(r.report.string_or("format", ""), "cohesion-supervised-partial/1");
  ASSERT_EQ(r.report.at("uncovered_shards").items().size(), 1u);
  EXPECT_EQ(r.report.at("uncovered_shards").items()[0].as_uint(), 1u);
  // Shards 0 and 2 each own 3 of the 9 runs; whatever shard 1 journaled
  // before dying is recovered on top, but it can never reach full coverage.
  EXPECT_GE(r.covered_runs, 6u);
  EXPECT_LT(r.covered_runs, 9u);
  EXPECT_EQ(r.report.at("covered_runs").as_uint(), r.covered_runs);
  EXPECT_EQ(r.report.at("runs").items().size(), r.covered_runs);
  EXPECT_TRUE(saw_event("retry budget exhausted"));
}

TEST_F(LaunchE2E, LaunchCliWritesTheByteIdenticalReportUnderAFault) {
  const std::string launch = build_dir() + "/cohesion_launch";
  if (!fs::exists(launch)) GTEST_SKIP() << "cohesion_launch not built";
  const std::string out = dir_ + "/report.json";
  const int code = run_tool(
      {launch, spec_path_, "--shards", "3", "--fault", "kill:shard=0,after=1",
       "--throttle-ms", "50", "--backoff-base", "0.05", "--poll-interval", "0.01",
       "--work-dir", dir_ + "/cli_work", "--out", out, "--quiet"},
      dir_ + "/launch.log");
  EXPECT_EQ(code, kExitSuccess) << read_file(dir_ + "/launch.log");
  EXPECT_EQ(read_file(out), expected_report() + "\n");
}

// --- worker SIGTERM -> flush -> resume --------------------------------------

TEST_F(LaunchE2E, SigtermFlushesTheJournalAndResumeReproducesTheReport) {
  const std::string ckpt = dir_ + "/run.ckpt";
  const std::string report = dir_ + "/report.json";
  const ::pid_t pid = spawn_tool({runner_, spec_path_, "--checkpoint", ckpt, "--throttle-ms",
                                  "60", "--no-timing", "--out", report},
                                 dir_ + "/worker.log");

  // Wait for the first journaled outcome, then interrupt mid-batch (the
  // 60ms/run throttle leaves ~8 runs of headroom).
  std::vector<RunOutcome> journaled;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    if (read_journal_outcomes(ckpt, journaled) && !journaled.empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_FALSE(journaled.empty()) << "worker never journaled: " << read_file(dir_ + "/worker.log");
  ::kill(pid, SIGTERM);
  EXPECT_EQ(wait_code(pid), kExitInterrupted) << read_file(dir_ + "/worker.log");

  // No report for a truncated batch; the journal is well-formed and short.
  EXPECT_FALSE(fs::exists(report));
  ASSERT_TRUE(read_journal_outcomes(ckpt, journaled));
  EXPECT_LT(journaled.size(), 9u);

  // Resume completes the batch and reproduces the fresh report exactly.
  const int code = run_tool(
      {runner_, spec_path_, "--resume", ckpt, "--no-timing", "--out", report},
      dir_ + "/worker.log");
  EXPECT_EQ(code, kExitSuccess) << read_file(dir_ + "/worker.log");
  EXPECT_EQ(read_file(report), expected_report() + "\n");
}

// --- exit-code taxonomy ------------------------------------------------------

TEST_F(LaunchE2E, WorkerExitCodesDistinguishTransientFromPermanent) {
  const std::string log = dir_ + "/taxonomy.log";
  // Unreadable spec: transient (it may not have been copied yet).
  EXPECT_EQ(run_tool({runner_, dir_ + "/no_such_spec.json"}, log), kExitTransient);
  // Unparseable spec: permanent — retrying cannot help.
  const std::string bad = dir_ + "/bad.json";
  std::ofstream(bad) << "this is not json";
  EXPECT_EQ(run_tool({runner_, bad}, log), kExitPermanent);
  // No spec at all: usage.
  EXPECT_EQ(run_tool({runner_}, log), kExitUsage);
}

TEST_F(LaunchE2E, MergeExitCodesDistinguishTransientFromPermanent) {
  const std::string merge = build_dir() + "/cohesion_merge";
  if (!fs::exists(merge)) GTEST_SKIP() << "cohesion_merge not built";
  const std::string log = dir_ + "/merge_taxonomy.log";
  // A missing partial is transient: its shard may still be running.
  EXPECT_EQ(run_tool({merge, dir_ + "/absent_partial.json"}, log), kExitTransient);
  // A present-but-invalid partial is a permanent input error.
  const std::string junk = dir_ + "/junk.json";
  std::ofstream(junk) << R"({"hello": 1})";
  EXPECT_EQ(run_tool({merge, junk}, log), kExitPermanent);
  EXPECT_EQ(run_tool({merge}, log), kExitUsage);
}

}  // namespace
}  // namespace cohesion::run
