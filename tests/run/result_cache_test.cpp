// Invalidation battery for run/result_cache — the proof behind architecture
// contract #11 ("cached outcome ≡ recomputed outcome, or the entry is
// rejected as corrupt with a named cause"):
//
//   * adversarial entries (truncated, bit-flipped, wrong format/version,
//     misfiled identity, gutted payload) are rejected by message, counted,
//     and the run recomputed to the byte-identical cold report;
//   * a seeded 200-variant edit-one-axis fuzz shows exactly the edited
//     variants miss and the warm report equals the cold one byte for byte;
//   * two sweeps with overlapping pinned-seed grids dedup through one
//     directory despite disjoint display names;
//   * read-only mode serves hits but never writes; errored/skipped
//     outcomes and stream-mode lookups are refused/bypassed.
#include "run/result_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "run/batch_runner.hpp"
#include "run/spec.hpp"

namespace cohesion::run {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((fs::temp_directory_path() / ("cohesion_result_cache_" + tag)).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Tiny but nontrivial sweep: every variant pins its own seed (so edits to
/// the axis are the only thing that changes a variant's identity) and runs
/// finish in well under a millisecond.
ExperimentSpec pinned_seed_experiment(const std::string& name, std::uint64_t first_seed,
                                      std::size_t variants) {
  ExperimentSpec e;
  e.name = name;
  e.base.n = 4;
  e.base.seed = 999;  // never pinned by the axis, so derivation is skipped
  e.base.stop.max_activations = 400;
  e.base.stop.check_every = 16;
  SweepAxis axis;
  axis.path = "seed";
  for (std::size_t i = 0; i < variants; ++i) axis.values.push_back(Json(first_seed + i));
  e.axes.push_back(std::move(axis));
  return e;
}

std::string run_report(const ExperimentSpec& e, ResultCache* cache) {
  BatchRunner::Options options;
  options.threads = 2;
  options.cache = cache;
  const BatchResult result = BatchRunner(options).run(e);
  return BatchRunner::report_json(e, result, /*include_timing=*/false).dump(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

TEST(ResultCache, ColdThenWarmIsByteIdenticalAndAllHits) {
  TempDir dir("warm");
  const ExperimentSpec e = pinned_seed_experiment("warmup", 100, 5);
  const std::string reference = run_report(e, nullptr);

  ResultCache cold(ResultCache::Options{.dir = dir.path()});
  EXPECT_EQ(run_report(e, &cold), reference);
  EXPECT_EQ(cold.stats().misses, 5u);
  EXPECT_EQ(cold.stats().inserts, 5u);
  EXPECT_EQ(cold.stats().hits, 0u);

  ResultCache warm(ResultCache::Options{.dir = dir.path()});
  EXPECT_EQ(run_report(e, &warm), reference);
  EXPECT_EQ(warm.stats().hits, 5u);
  EXPECT_EQ(warm.stats().misses, 0u);
  EXPECT_EQ(warm.stats().inserts, 0u);
  EXPECT_TRUE(warm.reject_causes().empty());
}

/// Each corruption must produce a reject whose cause names the failure,
/// and the batch must recompute to the byte-identical cold report — a
/// corrupt cache may cost time, never correctness.
TEST(ResultCache, CorruptEntriesAreRejectedByNameAndRecomputed) {
  TempDir dir("adversarial");
  const ExperimentSpec e = pinned_seed_experiment("adv", 200, 1);
  const std::string reference = run_report(e, nullptr);
  const std::string entry = ResultCache(ResultCache::Options{.dir = dir.path()})
                                .entry_path(e.expand()[0].spec);

  struct Corruption {
    const char* tag;
    const char* expected_cause;  // substring of the recorded reject line
    std::string (*apply)(const std::string& pristine);
  };
  const Corruption corruptions[] = {
      {"truncated", "not valid JSON",
       [](const std::string& pristine) { return pristine.substr(0, pristine.size() / 2); }},
      {"bit-flipped", "checksum mismatch",
       [](const std::string& pristine) {
         // Change one digit of the payload: still valid JSON, wrong bytes.
         std::string bytes = pristine;
         const std::size_t pos = bytes.find("\"activations\":");
         const std::size_t digit = bytes.find_first_of("0123456789", pos + 14);
         bytes[digit] = bytes[digit] == '1' ? '2' : '1';
         return bytes;
       }},
      {"wrong-version", "format marker",
       [](const std::string& pristine) {
         std::string bytes = pristine;
         const std::size_t pos = bytes.find("cohesion-result-cache/1");
         bytes.replace(pos, 23, "cohesion-result-cache/9");
         return bytes;
       }},
      {"misfiled", "identity mismatch",
       [](const std::string& pristine) {
         Json doc = Json::parse(pristine);
         doc.set("identity", std::string(16, '0'));
         return doc.dump() + "\n";
       }},
      {"gutted", "no outcome object",
       [](const std::string& pristine) {
         Json doc = Json::parse(pristine);
         doc.set("outcome", Json(7));
         return doc.dump() + "\n";
       }},
      {"mistyped-payload", "not a run outcome",
       [](const std::string& pristine) {
         Json doc = Json::parse(pristine);
         Json* payload = doc.find("outcome");
         payload->set("rounds", "many");  // wrong kind; checksum must be redone
         // Re-checksum so validation reaches the payload parse. Mirrors the
         // writer: FNV-1a 64 over the payload dump.
         std::uint64_t h = 0xCBF29CE484222325ull;
         for (const char c : payload->dump()) {
           h ^= static_cast<unsigned char>(c);
           h *= 0x100000001B3ull;
         }
         doc.set("checksum", fingerprint_hex(h));
         return doc.dump() + "\n";
       }},
  };

  for (const Corruption& corruption : corruptions) {
    SCOPED_TRACE(corruption.tag);
    // Re-seed a pristine entry, then corrupt it on disk.
    {
      ResultCache seed_cache(ResultCache::Options{.dir = dir.path()});
      ASSERT_EQ(run_report(e, &seed_cache), reference);
    }
    const std::string pristine = read_file(entry);
    ASSERT_FALSE(pristine.empty());
    write_file(entry, corruption.apply(pristine));

    ResultCache cache(ResultCache::Options{.dir = dir.path()});
    EXPECT_EQ(run_report(e, &cache), reference) << "recomputation must restore the cold report";
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.rejects, 1u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.inserts, 1u) << "the recomputed outcome must heal the entry";
    const std::vector<std::string> causes = cache.reject_causes();
    ASSERT_EQ(causes.size(), 1u);
    EXPECT_NE(causes[0].find(entry), std::string::npos) << causes[0];
    EXPECT_NE(causes[0].find(corruption.expected_cause), std::string::npos) << causes[0];

    // The healed entry serves again.
    ResultCache healed(ResultCache::Options{.dir = dir.path()});
    EXPECT_EQ(run_report(e, &healed), reference);
    EXPECT_EQ(healed.stats().hits, 1u);
    EXPECT_EQ(healed.stats().rejects, 0u);
  }
}

/// The tentpole invalidation property, fuzzed: edit one axis value at a
/// seeded-random subset of a 200-variant sweep; exactly the edited
/// variants miss, everything else hits, and the warm report is
/// byte-identical to a cold run of the edited sweep.
TEST(ResultCache, EditOneAxisFuzz200Variants) {
  TempDir dir("fuzz");
  ExperimentSpec e = pinned_seed_experiment("fuzz", 1, 200);

  {
    ResultCache cold(ResultCache::Options{.dir = dir.path()});
    run_report(e, &cold);
    ASSERT_EQ(cold.stats().inserts, 200u);
  }

  // Seeded edit: a fixed mt19937 picks the variants whose pinned seed
  // moves out of the original range (1001+i collides with nothing).
  std::mt19937 rng(20260808u);
  std::set<std::size_t> edited;
  while (edited.size() < 17) {
    edited.insert(static_cast<std::size_t>(rng() % 200));
  }
  for (const std::size_t v : edited) {
    e.axes[0].values[v] = Json(1001 + v);
  }

  const std::string cold_edited = run_report(e, nullptr);
  ResultCache warm(ResultCache::Options{.dir = dir.path()});
  EXPECT_EQ(run_report(e, &warm), cold_edited)
      << "warm report of the edited sweep must equal its cold report byte for byte";
  const CacheStats stats = warm.stats();
  EXPECT_EQ(stats.misses, edited.size()) << "exactly the edited variants recompute";
  EXPECT_EQ(stats.hits, 200u - edited.size()) << "every unedited variant is served";
  EXPECT_EQ(stats.rejects, 0u);
  EXPECT_EQ(stats.inserts, edited.size());
}

TEST(ResultCache, OverlappingSweepsDedupThroughOneDirectory) {
  TempDir dir("dedup");
  const ExperimentSpec a = pinned_seed_experiment("sweepA", 1, 8);   // seeds 1..8
  const ExperimentSpec b = pinned_seed_experiment("sweepB", 5, 8);   // seeds 5..12

  ResultCache cache_a(ResultCache::Options{.dir = dir.path()});
  run_report(a, &cache_a);
  ASSERT_EQ(cache_a.stats().inserts, 8u);

  // sweepB's display names ("sweepB/seed=5#...") never matched sweepA's,
  // but the four overlapping pinned-seed variants resolve to the same
  // specs — name is excluded from run_identity, so they hit.
  ResultCache cache_b(ResultCache::Options{.dir = dir.path()});
  run_report(b, &cache_b);
  EXPECT_EQ(cache_b.stats().hits, 4u);
  EXPECT_EQ(cache_b.stats().misses, 4u);
  EXPECT_EQ(cache_b.stats().inserts, 4u);
}

TEST(ResultCache, ReadOnlyServesHitsButNeverWrites) {
  TempDir dir("readonly");
  const ExperimentSpec e = pinned_seed_experiment("ro", 300, 3);
  const std::string reference = run_report(e, nullptr);

  {
    ResultCache writer(ResultCache::Options{.dir = dir.path()});
    run_report(e, &writer);
  }
  const auto entry_count = [&dir] {
    std::size_t count = 0;
    for (const auto& it : fs::directory_iterator(dir.path())) {
      (void)it;
      ++count;
    }
    return count;
  };
  ASSERT_EQ(entry_count(), 3u);

  ResultCache ro(ResultCache::Options{.dir = dir.path(), .read_only = true});
  EXPECT_EQ(run_report(e, &ro), reference);
  EXPECT_EQ(ro.stats().hits, 3u);
  EXPECT_EQ(ro.stats().inserts, 0u);
  EXPECT_EQ(entry_count(), 3u);

  // Read-only against a missing directory degrades to misses — it must
  // not create the directory either.
  const std::string absent = dir.path() + "/nonexistent";
  ResultCache ghost(ResultCache::Options{.dir = absent, .read_only = true});
  EXPECT_EQ(run_report(e, &ghost), reference);
  EXPECT_EQ(ghost.stats().misses, 3u);
  EXPECT_FALSE(fs::exists(absent));
}

TEST(ResultCache, ErroredAndSkippedOutcomesAreRefused) {
  TempDir dir("refuse");
  ResultCache cache(ResultCache::Options{.dir = dir.path()});
  ExpandedRun run;
  run.spec.n = 4;
  run.spec.seed = 41;

  RunOutcome errored;
  errored.error = "factory exploded";
  cache.insert(run, errored);
  RunOutcome skipped;
  skipped.skipped = true;
  cache.insert(run, skipped);
  EXPECT_EQ(cache.stats().inserts, 0u);
  EXPECT_FALSE(fs::exists(cache.entry_path(run.spec)));
}

TEST(ResultCache, StreamModeBypassesLookupButStillInserts) {
  TempDir dir("stream");
  ResultCache cache(ResultCache::Options{.dir = dir.path()});

  ExpandedRun run;
  run.spec.n = 4;
  run.spec.seed = 42;
  RunOutcome outcome;
  outcome.n = 4;
  outcome.converged = true;
  outcome.report.converged = true;
  outcome.report.cohesive = true;
  outcome.report.rounds = 9;
  cache.insert(run, outcome);
  ASSERT_EQ(cache.stats().inserts, 1u);

  // The same physics requested by a stream-mode run: bypassed, not hit —
  // the run must execute so its .cohtrace gets written.
  ExpandedRun streaming = run;
  streaming.spec.trace.mode = "stream";
  streaming.spec.trace.path = dir.path() + "/t.cohtrace";
  EXPECT_FALSE(cache.lookup(streaming).has_value());
  EXPECT_EQ(cache.stats().bypassed, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  // Memory-mode lookup of the same spec hits (trace is not identity).
  EXPECT_TRUE(cache.lookup(run).has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ResultCache, HitCarriesTheLookingRunsGridShell) {
  TempDir dir("shell");
  ResultCache cache(ResultCache::Options{.dir = dir.path()});

  ExpandedRun inserter;
  inserter.spec.name = "sweepA/k=1#0";
  inserter.spec.n = 4;
  inserter.spec.seed = 77;
  inserter.index = 0;
  inserter.label = "k=1";
  RunOutcome outcome;
  outcome.n = 4;
  outcome.converged = true;
  outcome.report.converged = true;
  outcome.report.rounds = 5;
  outcome.report.final_diameter = 0.25;
  outcome.seed = inserter.spec.seed;
  cache.insert(inserter, outcome);

  ExpandedRun looker;
  looker.spec = inserter.spec;
  looker.spec.name = "sweepB/other-label#2";  // different display identity
  looker.index = 11;
  looker.variant = 3;
  looker.repeat = 2;
  looker.label = "other-label";
  const std::optional<RunOutcome> hit = cache.lookup(looker);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->index, 11u);
  EXPECT_EQ(hit->variant, 3u);
  EXPECT_EQ(hit->repeat, 2u);
  EXPECT_EQ(hit->label, "other-label");
  EXPECT_EQ(hit->seed, 77u);
  EXPECT_EQ(hit->report.rounds, 5u);
  EXPECT_DOUBLE_EQ(hit->report.final_diameter, 0.25);
  EXPECT_TRUE(hit->converged);
}

}  // namespace
}  // namespace cohesion::run
