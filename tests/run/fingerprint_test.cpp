// Fingerprint battery for the two run identities (run/spec.hpp):
//
//   spec_fingerprint — stream/checkpoint identity; hashes everything in the
//                      resolved spec JSON except the trace block.
//   run_identity     — result-cache key; additionally excludes `name`
//                      (display identity: sweep label + repeat suffix).
//
// The core test is exhaustive by construction rather than by enumeration:
// it walks every leaf of the serialized sample spec, perturbs exactly that
// leaf, and asserts the fingerprint moved (or, for trace/name leaves,
// stayed put). A new RunSpec field added to to_json() is covered here
// automatically — and if it is added to the exclusion set by mistake, the
// walker fails on it by name.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "run/spec.hpp"

namespace cohesion::run {
namespace {

/// Sample spec with every field off its default and non-empty params, so
/// every serialized leaf actually appears in the JSON (conditionally
/// serialized blocks like `trace` are absent when default).
RunSpec sample_spec() {
  RunSpec s;
  s.name = "fp-sample";
  s.n = 24;
  s.seed = 0xFEEDFACE12345678ull;
  s.algorithm = {.type = "kknps", .params = Json::parse(R"({"k": 3, "distance_delta": 0.05})")};
  s.scheduler = {.type = "kasync", .params = Json::parse(R"({"k": 3, "xi": 0.4})")};
  s.error = {.type = "noisy", .params = Json::parse(R"({"skew_lambda": 0.1})")};
  s.initial = {.type = "random", .params = Json::parse(R"({"world_radius": 2.0})")};
  s.visibility_radius = 1.5;
  s.open_ball = true;
  s.multiplicity_detection = true;
  s.use_spatial_index = false;
  s.incremental_index = false;
  s.soa_kernel = true;  // serialized (and thus walked) only when true
  s.stop.epsilon = 0.08;
  s.stop.max_activations = 1234;
  s.stop.check_every = 32;
  s.stop.max_time = 75.5;
  s.trace.mode = "stream";
  s.trace.path = "/tmp/{name}-{index}.cohtrace";
  s.trace.flush_every = 8;
  s.trace.index_every = 16;
  return s;
}

/// Collect the dotted path of every leaf (non-object, non-array value) in a
/// JSON document. Array elements get a ".<i>" segment.
void collect_leaves(const Json& j, const std::string& prefix, std::vector<std::string>* out) {
  if (j.is_object()) {
    for (const auto& [key, value] : j.entries()) {
      collect_leaves(value, prefix.empty() ? key : prefix + "." + key, out);
    }
  } else if (j.is_array()) {
    for (std::size_t i = 0; i < j.items().size(); ++i) {
      collect_leaves(j.items()[i], prefix + "." + std::to_string(i), out);
    }
  } else {
    out->push_back(prefix);
  }
}

/// Mutable pointer to the leaf at dotted `path` (as produced above).
Json* leaf_at(Json* j, const std::string& path) {
  std::size_t start = 0;
  while (start < path.size()) {
    const std::size_t dot = path.find('.', start);
    const std::string seg = path.substr(start, dot == std::string::npos ? dot : dot - start);
    if (j->is_array()) {
      j = &j->items()[static_cast<std::size_t>(std::stoul(seg))];
    } else {
      j = j->find(seg);
      if (j == nullptr) return nullptr;
    }
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return j;
}

/// Perturb a leaf to a different value of the same JSON kind: bool flips,
/// numbers move by +1 / +0.5, strings get a suffix.
void perturb(Json* leaf) {
  if (leaf->is_bool()) {
    *leaf = Json(!leaf->as_bool());
  } else if (leaf->is_number()) {
    // Integer flavors survive +1 without overflow in the sample; doubles
    // move by a half so 0.05 -> 0.55 stays exactly representable enough.
    const double d = leaf->as_double();
    if (d == static_cast<double>(static_cast<std::uint64_t>(d)) && d >= 0) {
      *leaf = Json(leaf->as_uint() + 1);
    } else {
      *leaf = Json(d + 0.5);
    }
  } else if (leaf->is_string()) {
    *leaf = Json(leaf->as_string() + "x");
  } else {
    FAIL() << "unexpected leaf kind";
  }
}

bool in_trace_block(const std::string& path) { return path.rfind("trace.", 0) == 0 || path == "trace"; }

TEST(Fingerprint, EveryNonTraceLeafChangesSpecFingerprint) {
  const RunSpec base = sample_spec();
  const Json doc = base.to_json();
  const std::uint64_t fp = spec_fingerprint(base);
  const std::uint64_t id = run_identity(base);

  std::vector<std::string> leaves;
  collect_leaves(doc, "", &leaves);
  ASSERT_GT(leaves.size(), 20u) << "sample spec should serialize a rich leaf set";
  ASSERT_TRUE(doc.contains("trace")) << "sample spec must exercise the trace exclusion";

  for (const std::string& path : leaves) {
    Json mutated = doc;
    Json* leaf = leaf_at(&mutated, path);
    ASSERT_NE(leaf, nullptr) << path;
    if (path == "trace.mode") {
      *leaf = Json("off");  // the mode enum is validated; "off" != "stream"
    } else {
      perturb(leaf);
    }
    const RunSpec spec = RunSpec::from_json(mutated);
    if (in_trace_block(path)) {
      EXPECT_EQ(spec_fingerprint(spec), fp) << "trace leaf must not change identity: " << path;
      EXPECT_EQ(run_identity(spec), id) << "trace leaf must not change cache key: " << path;
    } else {
      EXPECT_NE(spec_fingerprint(spec), fp) << "leaf not covered by fingerprint: " << path;
      if (path == "name") {
        EXPECT_EQ(run_identity(spec), id) << "name is display identity, not physics";
      } else {
        EXPECT_NE(run_identity(spec), id) << "leaf not covered by cache key: " << path;
      }
    }
  }
}

TEST(Fingerprint, KeyOrderIsCanonicalizedAway) {
  // from_json reads schema fields by key and to_json re-emits them in
  // declaration order, so a spec document with its schema keys reversed
  // (recursively) fingerprints the same — hand-edited spec files are
  // cache-stable. The one deliberate exception: factory `params` objects
  // are opaque to the schema (their layout belongs to the factory), so
  // their key order is carried verbatim and IS identity — asserted below.
  const RunSpec base = sample_spec();
  Json doc = base.to_json();

  struct Reverser {
    static void reverse(Json* j, bool opaque) {
      if (j->is_object()) {
        auto& entries = j->entries();
        if (!opaque) std::reverse(entries.begin(), entries.end());
        for (auto& [key, value] : entries) reverse(&value, opaque || key == "params");
      } else if (j->is_array()) {
        for (Json& item : j->items()) reverse(&item, opaque);  // element order is semantic
      }
    }
  };
  Reverser::reverse(&doc, /*opaque=*/false);
  ASSERT_NE(doc.dump(), base.to_json().dump()) << "reversal must actually reorder keys";

  const RunSpec reparsed = RunSpec::from_json(doc);
  EXPECT_EQ(spec_fingerprint(reparsed), spec_fingerprint(base));
  EXPECT_EQ(run_identity(reparsed), run_identity(base));

  // Reordering keys *inside* a params object does change identity.
  Json params_reordered = base.to_json();
  auto& k = params_reordered.find("scheduler")->find("params")->entries();
  ASSERT_GE(k.size(), 2u);
  std::reverse(k.begin(), k.end());
  EXPECT_NE(spec_fingerprint(RunSpec::from_json(params_reordered)), spec_fingerprint(base));
}

TEST(Fingerprint, DefaultTraceAndExplicitDefaultTraceAgree) {
  // A spec that spells out the default trace block hashes like one that
  // omits it — the exclusion happens before serialization.
  RunSpec plain = sample_spec();
  plain.trace = TraceSpec{};
  RunSpec spelled = plain;
  spelled.trace.mode = "memory";  // is_default() stays true
  EXPECT_EQ(spec_fingerprint(plain), spec_fingerprint(spelled));

  RunSpec streamy = plain;
  streamy.trace.mode = "stream";
  streamy.trace.path = "/tmp/x.cohtrace";
  EXPECT_EQ(spec_fingerprint(plain), spec_fingerprint(streamy));
  EXPECT_EQ(run_identity(plain), run_identity(streamy));
}

TEST(Fingerprint, RepeatSiblingsWithPinnedSeedShareRunIdentity) {
  // A sweep axis that pins the seed makes a variant's repeats physically
  // identical runs: expand() bakes distinct "#r" suffixes into their names
  // (distinct spec_fingerprint — streams/checkpoints must tell them apart)
  // but the cache must serve them from one entry (equal run_identity).
  ExperimentSpec e;
  e.name = "pinned";
  e.base.n = 6;
  e.base.seed = 7;
  e.repeats = 3;
  e.axes.push_back({"seed", {Json(11), Json(12)}});

  const std::vector<ExpandedRun> runs = e.expand();
  ASSERT_EQ(runs.size(), 6u);
  for (std::size_t v = 0; v < 2; ++v) {
    const ExpandedRun& first = runs[v * 3];
    for (std::size_t r = 1; r < 3; ++r) {
      const ExpandedRun& sibling = runs[v * 3 + r];
      EXPECT_NE(sibling.spec.name, first.spec.name);
      EXPECT_NE(spec_fingerprint(sibling.spec), spec_fingerprint(first.spec));
      EXPECT_EQ(run_identity(sibling.spec), run_identity(first.spec))
          << "pinned-seed repeat #" << r << " must share the cache entry";
    }
  }
  // Across variants the pinned seeds differ, so identities must too.
  EXPECT_NE(run_identity(runs[0].spec), run_identity(runs[3].spec));
}

TEST(Fingerprint, DerivedSeedRepeatsDiffer) {
  // Without a pinned seed every repeat derives a distinct seed from its
  // grid index — distinct physics, distinct cache entries.
  ExperimentSpec e;
  e.name = "derived";
  e.base.n = 6;
  e.base.seed = 7;
  e.repeats = 3;
  const std::vector<ExpandedRun> runs = e.expand();
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_NE(run_identity(runs[0].spec), run_identity(runs[1].spec));
  EXPECT_NE(run_identity(runs[1].spec), run_identity(runs[2].spec));
}

TEST(Fingerprint, IdentityIsIndependentOfGridPosition) {
  // Reordering an axis's values permutes grid indices/labels but must not
  // change any pinned variant's identity: position reaches the outcome
  // only through the derived seed, and these seeds are pinned.
  ExperimentSpec fwd;
  fwd.base.n = 6;
  fwd.base.seed = 7;
  fwd.axes.push_back({"seed", {Json(11), Json(12), Json(13)}});
  ExperimentSpec rev = fwd;
  rev.axes[0].values = {Json(13), Json(12), Json(11)};

  const std::vector<ExpandedRun> a = fwd.expand();
  const std::vector<ExpandedRun> b = rev.expand();
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(run_identity(a[i].spec), run_identity(b[2 - i].spec))
        << "same pinned seed at a different grid index must keep its identity";
  }
}

TEST(Fingerprint, CrossSweepVariantsShareIdentityDespiteLabels) {
  // Two sweeps with different names whose grids overlap on pinned seeds:
  // the overlapping variants carry different display names but identical
  // run identities — the dedup property result_cache relies on.
  ExperimentSpec a;
  a.name = "sweepA";
  a.base.n = 6;
  a.base.seed = 7;
  a.axes.push_back({"seed", {Json(21), Json(22)}});
  ExperimentSpec b = a;
  b.name = "sweepB";
  b.axes[0].values = {Json(22), Json(23)};

  const std::vector<ExpandedRun> ra = a.expand();
  const std::vector<ExpandedRun> rb = b.expand();
  EXPECT_NE(ra[1].spec.name, rb[0].spec.name);
  EXPECT_EQ(run_identity(ra[1].spec), run_identity(rb[0].spec));
  EXPECT_NE(run_identity(ra[0].spec), run_identity(rb[1].spec));
}

TEST(Fingerprint, HexRenderingIsStable) {
  const RunSpec s = sample_spec();
  const std::string hex = fingerprint_hex(run_identity(s));
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(hex, fingerprint_hex(run_identity(s)));
}

}  // namespace
}  // namespace cohesion::run
