#include "run/spec.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cohesion::run {
namespace {

RunSpec sample_spec() {
  RunSpec s;
  s.name = "sample";
  s.n = 24;
  s.seed = 0xFEEDFACE12345678ull;
  s.algorithm = {.type = "kknps", .params = Json::parse(R"({"k": 3, "distance_delta": 0.05})")};
  s.scheduler = {.type = "kasync", .params = Json::parse(R"({"k": 3, "xi": 0.4})")};
  s.error = {.type = "noisy", .params = Json::parse(R"({"skew_lambda": 0.1})")};
  s.initial = {.type = "random", .params = Json::parse(R"({"world_radius": 2.0})")};
  s.visibility_radius = 1.5;
  s.open_ball = true;
  s.multiplicity_detection = true;
  s.use_spatial_index = false;
  s.incremental_index = false;
  s.soa_kernel = true;
  s.stop.epsilon = 0.08;
  s.stop.max_activations = 1234;
  s.stop.check_every = 32;
  s.stop.max_time = 75.5;
  return s;
}

TEST(RunSpec, JsonRoundTripIsExact) {
  const RunSpec s = sample_spec();
  const Json j = s.to_json();
  const RunSpec back = RunSpec::from_json(j);
  // Round trip through JSON text, compare the canonical serializations.
  EXPECT_EQ(back.to_json().dump(), j.dump());
  EXPECT_EQ(Json::parse(j.dump(2)).dump(), j.dump());
  EXPECT_EQ(back.seed, s.seed);  // 64-bit seed survives
  EXPECT_EQ(back.stop.max_activations, 1234u);
  EXPECT_DOUBLE_EQ(back.stop.max_time, 75.5);
  EXPECT_TRUE(back.open_ball);
  EXPECT_FALSE(back.use_spatial_index);
  EXPECT_FALSE(back.incremental_index);
  EXPECT_TRUE(back.soa_kernel);
}

TEST(RunSpec, DefaultsApplyForAbsentFields) {
  const RunSpec s = RunSpec::from_json(Json::parse(R"({"n": 5})"));
  EXPECT_EQ(s.n, 5u);
  EXPECT_EQ(s.algorithm.type, "kknps");
  EXPECT_EQ(s.scheduler.type, "kasync");
  EXPECT_DOUBLE_EQ(s.visibility_radius, 1.0);
  EXPECT_DOUBLE_EQ(s.stop.epsilon, 0.05);
  EXPECT_TRUE(s.use_spatial_index);
  EXPECT_TRUE(s.incremental_index);
  EXPECT_FALSE(s.soa_kernel);
}

TEST(RunSpec, SoaKernelSerializedOnlyWhenEnabled) {
  // Off (the default) must not appear in the JSON at all — existing spec
  // bytes, fingerprints, cache keys and checkpoints stay untouched.
  const RunSpec off;
  EXPECT_EQ(off.to_json().dump().find("soa_kernel"), std::string::npos);
  RunSpec on;
  on.soa_kernel = true;
  const Json j = on.to_json();
  EXPECT_NE(j.dump().find("\"soa_kernel\":true"), std::string::npos);
  EXPECT_TRUE(RunSpec::from_json(j).soa_kernel);
  // The flag participates in the identity exactly when serialized.
  EXPECT_NE(spec_fingerprint(off), spec_fingerprint(on));
  EXPECT_NE(run_identity(off), run_identity(on));
}

TEST(RunSpec, FactoryShorthandString) {
  const RunSpec s = RunSpec::from_json(Json::parse(R"({"scheduler": "fsync"})"));
  EXPECT_EQ(s.scheduler.type, "fsync");
}

TEST(ExperimentSpec, JsonRoundTrip) {
  ExperimentSpec e;
  e.name = "sweep";
  e.base = sample_spec();
  e.repeats = 4;
  e.axes.push_back({"scheduler.params.k", {Json(1), Json(2), Json(4)}});
  e.axes.push_back({"n", {Json(8), Json(16)}});
  const Json j = e.to_json();
  const ExperimentSpec back = ExperimentSpec::from_json(j);
  EXPECT_EQ(back.to_json().dump(), j.dump());
  EXPECT_EQ(back.repeats, 4u);
  ASSERT_EQ(back.axes.size(), 2u);
  EXPECT_EQ(back.axes[0].path, "scheduler.params.k");
  EXPECT_EQ(back.axes[1].values.size(), 2u);
  // A disabled early-stop rule is absent from the JSON and stays disabled.
  EXPECT_FALSE(j.contains("early_stop"));
  EXPECT_FALSE(back.early_stop.enabled());
}

TEST(ExperimentSpec, EarlyStopRoundTripsExactly) {
  ExperimentSpec e;
  e.base = sample_spec();
  e.repeats = 8;
  e.early_stop.window = 3;
  e.early_stop.epsilon = 0.015;
  e.early_stop.metric = "rounds";
  const Json j = e.to_json();
  ASSERT_TRUE(j.contains("early_stop"));
  const ExperimentSpec back = ExperimentSpec::from_json(j);
  EXPECT_EQ(back.to_json().dump(), j.dump());  // fixed point (shard merge relies on it)
  EXPECT_EQ(back.early_stop.window, 3u);
  EXPECT_DOUBLE_EQ(back.early_stop.epsilon, 0.015);
  EXPECT_EQ(back.early_stop.metric, "rounds");
  // Partial early_stop objects take defaults for the rest.
  const ExperimentSpec partial = ExperimentSpec::from_json(
      Json::parse(R"({"base": {"n": 4}, "early_stop": {"window": 2}})"));
  EXPECT_EQ(partial.early_stop.window, 2u);
  EXPECT_EQ(partial.early_stop.metric, "final_diameter");
  EXPECT_THROW(ExperimentSpec::from_json(
                   Json::parse(R"({"base": {"n": 4}, "early_stop": 3})")),
               std::runtime_error);
}

TEST(ExperimentSpec, ExpansionGridOrderAndOverrides) {
  ExperimentSpec e;
  e.base.seed = 7;
  e.repeats = 2;
  e.axes.push_back({"scheduler.params.k", {Json(1), Json(2)}});
  e.axes.push_back({"n", {Json(8), Json(16), Json(32)}});
  const auto runs = e.expand();
  ASSERT_EQ(runs.size(), 2u * 3u * 2u);
  EXPECT_EQ(e.variant_count(), 6u);

  // First axis outermost, repeats innermost; indices are contiguous.
  EXPECT_EQ(runs[0].spec.scheduler.params.uint_or("k", 0), 1u);
  EXPECT_EQ(runs[0].spec.n, 8u);
  EXPECT_EQ(runs[0].label, "k=1,n=8");
  EXPECT_EQ(runs[1].variant, 0u);
  EXPECT_EQ(runs[1].repeat, 1u);
  EXPECT_EQ(runs[2].spec.n, 16u);
  EXPECT_EQ(runs[6].spec.scheduler.params.uint_or("k", 0), 2u);
  EXPECT_EQ(runs[6].spec.n, 8u);
  for (std::size_t i = 0; i < runs.size(); ++i) EXPECT_EQ(runs[i].index, i);
}

TEST(ExperimentSpec, RootMergeAxisAppliesNestedOverrides) {
  ExperimentSpec e;
  e.base = sample_spec();
  Json variant = Json::parse(
      R"({"label": "big", "n": 64, "stop": {"max_activations": 9999},
          "algorithm": {"params": {"k": 9}}})");
  e.axes.push_back({"", {variant}});
  const auto runs = e.expand();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].label, "big");
  EXPECT_EQ(runs[0].spec.n, 64u);
  EXPECT_EQ(runs[0].spec.stop.max_activations, 9999u);
  // Nested merge: k overridden, sibling param distance_delta preserved.
  EXPECT_EQ(runs[0].spec.algorithm.params.uint_or("k", 0), 9u);
  EXPECT_DOUBLE_EQ(runs[0].spec.algorithm.params.number_or("distance_delta", 0), 0.05);
  // stop.epsilon preserved through the partial stop override.
  EXPECT_DOUBLE_EQ(runs[0].spec.stop.epsilon, 0.08);
}

TEST(Seeds, DerivationIsDeterministicDecorrelatedAndThreadCountFree) {
  // Pure function of (experiment seed, run index).
  const RunSeeds a = derive_seeds(42, 0);
  const RunSeeds b = derive_seeds(42, 0);
  EXPECT_EQ(a.run, b.run);
  EXPECT_EQ(a.engine, b.engine);
  EXPECT_EQ(a.scheduler, b.scheduler);
  EXPECT_EQ(a.initial, b.initial);

  // All streams distinct across a sweep's worth of runs and components.
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 256; ++i) {
    const RunSeeds s = derive_seeds(42, i);
    seen.insert(s.run);
    seen.insert(s.engine);
    seen.insert(s.scheduler);
    seen.insert(s.initial);
  }
  EXPECT_EQ(seen.size(), 4u * 256u);

  // Nearby experiment seeds do not collide either.
  for (std::uint64_t i = 0; i < 256; ++i) {
    const RunSeeds s = derive_seeds(43, i);
    seen.insert(s.run);
    seen.insert(s.engine);
    seen.insert(s.scheduler);
    seen.insert(s.initial);
  }
  EXPECT_EQ(seen.size(), 8u * 256u);

  // Expansion pins the derived run seed, and streams re-derive from it.
  ExperimentSpec e;
  e.base.seed = 42;
  e.repeats = 3;
  const auto runs = e.expand();
  EXPECT_EQ(runs[2].spec.seed, derive_seeds(42, 2).run);
  EXPECT_EQ(seed_streams(runs[2].spec.seed).engine, derive_seeds(42, 2).engine);
}

TEST(Seeds, SweepAxisMayPinTheSeedItself) {
  ExperimentSpec e;
  e.base.seed = 42;
  e.axes.push_back({"seed", {Json(1000), Json(2000)}});
  const auto runs = e.expand();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].spec.seed, 1000u);  // honored, not re-derived
  EXPECT_EQ(runs[1].spec.seed, 2000u);
}

TEST(ApplyOverride, CreatesIntermediateObjectsAndRejectsBadPaths) {
  Json doc = Json::parse(R"({"a": 1})");
  apply_override(doc, "b.c.d", Json(5));
  EXPECT_EQ(doc.at("b").at("c").at("d").as_uint(), 5u);
  EXPECT_THROW(apply_override(doc, "a.x", Json(1)), std::runtime_error);  // descends into number
  EXPECT_THROW(apply_override(doc, "", Json(3)), std::runtime_error);     // root needs object
  EXPECT_THROW(apply_override(doc, "..", Json(3)), std::runtime_error);   // empty segment
}

}  // namespace
}  // namespace cohesion::run
