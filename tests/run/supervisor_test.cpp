// Unit layer of the fault-tolerant supervisor (the process-level matrix
// lives in launch_e2e_test.cpp): deterministic seeded backoff schedules,
// FaultPlan CLI parsing, attempt-supersedes merging of overlapping retry
// journals, and the heartbeat-side journal reader.
#include "run/supervisor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "run/batch_runner.hpp"

namespace cohesion::run {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(std::string(::testing::TempDir()) + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

/// A real (executed) outcome list to merge: 2 variants x 2 repeats of a
/// tiny sweep, so outcomes carry genuine report payloads whose bytes the
/// merge must preserve exactly.
std::vector<RunOutcome> executed_outcomes() {
  ExperimentSpec e;
  e.name = "merge-fixture";
  e.base.n = 6;
  e.base.seed = 7;
  e.base.algorithm = {.type = "kknps", .params = Json::parse(R"({"k": 2})")};
  e.base.scheduler = {.type = "kasync", .params = Json::parse(R"({"xi": 0.5})")};
  e.base.initial = {.type = "line", .params = Json::parse(R"({"spacing": 0.9})")};
  e.base.stop.epsilon = 0.05;
  e.base.stop.max_activations = 5000;
  e.repeats = 2;
  e.axes.push_back({"scheduler.params.k", {Json(1), Json(2)}});
  return BatchRunner().run(e).outcomes;
}

// --- RetryPolicy ------------------------------------------------------------

TEST(RetryPolicy, BackoffIsAPureFunctionOfSeedShardAndAttempt) {
  RetryPolicy p;
  // Same inputs, same schedule — across calls and across instances.
  for (std::size_t shard = 0; shard < 4; ++shard) {
    for (std::size_t attempt = 1; attempt <= 5; ++attempt) {
      EXPECT_EQ(p.backoff_seconds(shard, attempt), RetryPolicy{}.backoff_seconds(shard, attempt));
    }
  }
  // The seed matters: a different jitter_seed reshuffles the schedule.
  RetryPolicy reseeded = p;
  reseeded.jitter_seed = 0xdeadbeefull;
  EXPECT_NE(p.backoff_seconds(1, 1), reseeded.backoff_seconds(1, 1));
  // Shards that died together relaunch at different times.
  EXPECT_NE(p.backoff_seconds(0, 1), p.backoff_seconds(1, 1));
}

TEST(RetryPolicy, BackoffGrowsExponentiallyWithinJitterBounds) {
  RetryPolicy p;
  p.base_delay_seconds = 1.0;
  p.multiplier = 2.0;
  p.max_delay_seconds = 8.0;
  p.jitter = 0.5;
  for (std::size_t shard = 0; shard < 3; ++shard) {
    double previous_floor = 0.0;
    for (std::size_t attempt = 1; attempt <= 6; ++attempt) {
      // Un-jittered delay doubles per attempt and saturates at the cap.
      const double floor = std::min(p.max_delay_seconds, 1.0 * (1 << (attempt - 1)));
      const double d = p.backoff_seconds(shard, attempt);
      EXPECT_GE(d, floor) << "shard " << shard << " attempt " << attempt;
      EXPECT_LE(d, floor * (1.0 + p.jitter)) << "shard " << shard << " attempt " << attempt;
      EXPECT_GE(floor, previous_floor);
      previous_floor = floor;
    }
  }
}

TEST(RetryPolicy, ZeroJitterIsExactExponentialBackoff) {
  RetryPolicy p;
  p.base_delay_seconds = 0.5;
  p.multiplier = 3.0;
  p.max_delay_seconds = 100.0;
  p.jitter = 0.0;
  EXPECT_DOUBLE_EQ(p.backoff_seconds(2, 1), 0.5);
  EXPECT_DOUBLE_EQ(p.backoff_seconds(2, 2), 1.5);
  EXPECT_DOUBLE_EQ(p.backoff_seconds(2, 3), 4.5);
  p.max_delay_seconds = 2.0;
  EXPECT_DOUBLE_EQ(p.backoff_seconds(2, 3), 2.0);  // capped before jitter
}

// --- FaultPlan --------------------------------------------------------------

TEST(FaultPlan, ParseReadsTheCliFormWithDefaults) {
  const FaultPlan kill = FaultPlan::parse("kill:shard=1,after=3");
  EXPECT_EQ(kill.kind, FaultPlan::Kind::kill);
  EXPECT_EQ(kill.shard, 1u);
  EXPECT_EQ(kill.attempt, 1u);  // default: sabotage the first launch
  EXPECT_EQ(kill.after_lines, 3u);

  const FaultPlan stall = FaultPlan::parse("stall:shard=0,attempt=2");
  EXPECT_EQ(stall.kind, FaultPlan::Kind::stall);
  EXPECT_EQ(stall.attempt, 2u);
  EXPECT_EQ(stall.after_lines, 0u);  // default: arm immediately

  const FaultPlan corrupt = FaultPlan::parse("corrupt:shard=2,attempt=1,after=1");
  EXPECT_EQ(corrupt.kind, FaultPlan::Kind::corrupt);
  EXPECT_EQ(corrupt.shard, 2u);
  EXPECT_EQ(corrupt.after_lines, 1u);
}

TEST(FaultPlan, DescribeRoundTripsThroughParse) {
  for (const char* text : {"kill:shard=1,after=3", "stall:shard=0,attempt=2",
                           "corrupt:shard=2,attempt=3,after=5"}) {
    const FaultPlan plan = FaultPlan::parse(text);
    const FaultPlan reparsed = FaultPlan::parse(plan.describe());
    EXPECT_EQ(reparsed.kind, plan.kind) << text;
    EXPECT_EQ(reparsed.shard, plan.shard) << text;
    EXPECT_EQ(reparsed.attempt, plan.attempt) << text;
    EXPECT_EQ(reparsed.after_lines, plan.after_lines) << text;
  }
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse(""), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("kill"), std::runtime_error);          // no shard
  EXPECT_THROW(FaultPlan::parse("explode:shard=1"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("kill:after=3"), std::runtime_error);  // shard required
  EXPECT_THROW(FaultPlan::parse("kill:shard=x"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("kill:shard=1,bogus=2"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("kill:shard=1,attempt=0"), std::runtime_error);  // 1-based
}

// --- merge_attempt_outcomes -------------------------------------------------

TEST(MergeAttempts, DisjointAttemptsUnionAndSortByIndex) {
  const std::vector<RunOutcome> all = executed_outcomes();
  ASSERT_EQ(all.size(), 4u);
  // Attempt 1 journaled runs {2, 0}; the retry picked up {1, 3}.
  const std::vector<RunOutcome> merged =
      merge_attempt_outcomes({{all[2], all[0]}, {all[1], all[3]}});
  ASSERT_EQ(merged.size(), 4u);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].index, i);
    EXPECT_EQ(merged[i].to_json().dump(), all[i].to_json().dump());
  }
}

TEST(MergeAttempts, IdenticalCompletedDuplicatesCollapseToOne) {
  const std::vector<RunOutcome> all = executed_outcomes();
  // The retry re-ran runs the dead attempt had already journaled — the
  // normal overlap when a worker dies between fsync and its partial report.
  const std::vector<RunOutcome> merged =
      merge_attempt_outcomes({{all[0], all[1]}, {all[1], all[2], all[3]}});
  ASSERT_EQ(merged.size(), 4u);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].to_json().dump(), all[i].to_json().dump());
  }
}

TEST(MergeAttempts, ConflictingCompletedOutcomesAreRejectedNamingTheIndex) {
  std::vector<RunOutcome> all = executed_outcomes();
  RunOutcome tampered = all[1];
  tampered.seed ^= 1;  // same index, different bytes: not the same run
  try {
    merge_attempt_outcomes({{all[0], all[1]}, {tampered}});
    FAIL() << "expected conflict rejection";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("index 1"), std::string::npos) << err.what();
  }
}

TEST(MergeAttempts, CompletedSupersedesErroredInEitherDirection) {
  const std::vector<RunOutcome> all = executed_outcomes();
  RunOutcome errored = all[0];
  errored.error = "engine: transient wobble";

  // Error first, completion on retry: the completed outcome wins.
  std::vector<RunOutcome> merged = merge_attempt_outcomes({{errored}, {all[0]}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_TRUE(merged[0].error.empty());
  EXPECT_EQ(merged[0].to_json().dump(), all[0].to_json().dump());

  // Completion first, error on a (redundant) later attempt: the completed
  // outcome still wins — runs are deterministic, the error was environmental.
  merged = merge_attempt_outcomes({{all[0]}, {errored}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_TRUE(merged[0].error.empty());
}

TEST(MergeAttempts, BetweenTwoErrorsTheLaterAttemptWins) {
  const std::vector<RunOutcome> all = executed_outcomes();
  RunOutcome first = all[2];
  first.error = "first failure";
  RunOutcome second = all[2];
  second.error = "second failure";
  const std::vector<RunOutcome> merged = merge_attempt_outcomes({{first}, {second}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].error, "second failure");
}

TEST(MergeAttempts, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(merge_attempt_outcomes({}).empty());
  EXPECT_TRUE(merge_attempt_outcomes({{}, {}}).empty());
}

// --- read_journal_outcomes --------------------------------------------------

TEST(JournalReader, ReadsCompleteLinesSkipsHeaderTornTailAndGarbage) {
  const std::vector<RunOutcome> all = executed_outcomes();
  TempFile journal("supervisor_reader.ckpt");
  std::string content =
      R"({"format": "cohesion-checkpoint/1", "fingerprint": "f", "total_runs": 4})";
  content += "\n";
  content += all[0].to_json().dump() + "\n";
  content += "this line is not json\n";  // mid-write weirdness: skipped
  content += all[1].to_json().dump() + "\n";
  content += R"({"index": 3, "variant": 1, "repe)";  // torn tail, no newline
  write_file(journal.path(), content);

  std::vector<RunOutcome> outcomes;
  ASSERT_TRUE(read_journal_outcomes(journal.path(), outcomes));
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].to_json().dump(), all[0].to_json().dump());
  EXPECT_EQ(outcomes[1].to_json().dump(), all[1].to_json().dump());
}

TEST(JournalReader, MissingOrEmptyFileReportsNoJournal) {
  std::vector<RunOutcome> outcomes;
  EXPECT_FALSE(read_journal_outcomes(std::string(::testing::TempDir()) + "no_such.ckpt",
                                     outcomes));
  TempFile empty("supervisor_reader_empty.ckpt");
  write_file(empty.path(), "");
  EXPECT_FALSE(read_journal_outcomes(empty.path(), outcomes));
  EXPECT_TRUE(outcomes.empty());
}

}  // namespace
}  // namespace cohesion::run
