#include "run/checkpoint.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "run/shard.hpp"

namespace cohesion::run {
namespace {

namespace fs = std::filesystem;

/// Fresh path under the system temp dir; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("cohesion_ckpt_" + tag + "_" + std::to_string(::getpid())))
                  .string()) {
    fs::remove(path_);
  }
  ~TempFile() { fs::remove(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

ExperimentSpec checkpoint_sweep() {
  ExperimentSpec e;
  e.name = "ckpt";
  e.base.n = 8;
  e.base.seed = 77;
  e.base.algorithm = {.type = "kknps", .params = Json::parse(R"({"k": 2})")};
  e.base.scheduler = {.type = "kasync", .params = Json::parse(R"({"xi": 0.5})")};
  e.base.initial = {.type = "line", .params = Json::parse(R"({"spacing": 0.9})")};
  e.base.stop.epsilon = 0.05;
  e.base.stop.max_activations = 20000;
  e.repeats = 2;
  e.axes.push_back({"scheduler.params.k", {Json(1), Json(2), Json(3)}});
  return e;
}

std::string fresh_report(const ExperimentSpec& e) {
  return BatchRunner::report_json(e, BatchRunner().run(e), false).dump(2);
}

TEST(Checkpoint, FingerprintTracksSpecShardAndEarlyStop) {
  const ExperimentSpec e = checkpoint_sweep();
  const std::string base = runs_fingerprint(e.expand(), e.early_stop);
  EXPECT_EQ(base, runs_fingerprint(e.expand(), e.early_stop));  // pure function
  EXPECT_EQ(base.size(), 16u);

  ExperimentSpec other = checkpoint_sweep();
  other.base.seed = 78;
  EXPECT_NE(base, runs_fingerprint(other.expand(), other.early_stop));
  EXPECT_NE(base, runs_fingerprint(e.expand_shard(0, 2), e.early_stop));
  EarlyStop es;
  es.window = 2;
  es.epsilon = 0.1;
  EXPECT_NE(base, runs_fingerprint(e.expand(), es));
}

TEST(Checkpoint, JournalRunProducesSameReportAndAJournalLinePerRun) {
  const ExperimentSpec e = checkpoint_sweep();
  const std::string expected = fresh_report(e);
  TempFile ckpt("journal");

  BatchRunner::Options opt;
  opt.checkpoint_path = ckpt.path();
  const BatchResult r = BatchRunner(opt).run(e);
  EXPECT_EQ(BatchRunner::report_json(e, r, false).dump(2), expected);

  const std::string content = read_file(ckpt.path());
  const std::size_t lines =
      static_cast<std::size_t>(std::count(content.begin(), content.end(), '\n'));
  EXPECT_EQ(lines, e.expand().size() + 1);  // header + one line per run
  EXPECT_NE(content.find("cohesion-checkpoint/1"), std::string::npos);
}

TEST(Checkpoint, ResumeFromAnyTruncationPointReproducesTheFreshReport) {
  // The kill-at-random-point test the resume contract is stated in terms
  // of: truncate the journal at many byte offsets (deterministic stride —
  // covers torn header, torn mid-line, and clean-line boundaries), resume,
  // and require the byte-identical final report every time.
  const ExperimentSpec e = checkpoint_sweep();
  const std::string expected = fresh_report(e);
  TempFile ckpt("fuzz");

  BatchRunner::Options writer;
  writer.checkpoint_path = ckpt.path();
  (void)BatchRunner(writer).run(e);
  const std::string full = read_file(ckpt.path());
  ASSERT_GT(full.size(), 100u);

  const std::size_t stride = std::max<std::size_t>(full.size() / 37, 1);
  for (std::size_t cut = 0; cut <= full.size(); cut += stride) {
    write_file(ckpt.path(), full.substr(0, cut));
    BatchRunner::Options opt;
    opt.checkpoint_path = ckpt.path();
    opt.resume = true;
    opt.threads = 3;
    const BatchResult r = BatchRunner(opt).run(e);
    EXPECT_EQ(BatchRunner::report_json(e, r, false).dump(2), expected) << "cut at " << cut;
    // After the resumed run, the journal is complete again: resuming once
    // more executes nothing new and still matches.
    BatchRunner::Options again = opt;
    const BatchResult r2 = BatchRunner(again).run(e);
    EXPECT_EQ(BatchRunner::report_json(e, r2, false).dump(2), expected) << "re-resume " << cut;
  }
}

TEST(Checkpoint, ResumeOnMissingFileStartsFresh) {
  const ExperimentSpec e = checkpoint_sweep();
  TempFile ckpt("missing");
  BatchRunner::Options opt;
  opt.checkpoint_path = ckpt.path();
  opt.resume = true;
  const BatchResult r = BatchRunner(opt).run(e);
  EXPECT_EQ(BatchRunner::report_json(e, r, false).dump(2), fresh_report(e));
  EXPECT_TRUE(fs::exists(ckpt.path()));
}

TEST(Checkpoint, StaleCheckpointIsRejectedWithActionableError) {
  const ExperimentSpec e = checkpoint_sweep();
  TempFile ckpt("stale");
  BatchRunner::Options writer;
  writer.checkpoint_path = ckpt.path();
  (void)BatchRunner(writer).run(e);

  // Different spec (seed changed) -> different fingerprint -> rejection
  // that names the mismatch instead of silently mixing outcomes.
  ExperimentSpec other = checkpoint_sweep();
  other.base.seed = 12345;
  BatchRunner::Options opt;
  opt.checkpoint_path = ckpt.path();
  opt.resume = true;
  try {
    (void)BatchRunner(opt).run(other);
    FAIL() << "expected stale-checkpoint rejection";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("fingerprint mismatch"), std::string::npos)
        << err.what();
  }

  // Same spec but a different shard selection is stale too.
  try {
    (void)BatchRunner(opt).run(e.expand_shard(0, 2), e.early_stop);
    FAIL() << "expected shard-mismatch rejection";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("fingerprint"), std::string::npos) << err.what();
  }
}

TEST(Checkpoint, MalformedBodyBeforeTheTailIsRejected) {
  const ExperimentSpec e = checkpoint_sweep();
  TempFile ckpt("malformed");
  BatchRunner::Options writer;
  writer.checkpoint_path = ckpt.path();
  (void)BatchRunner(writer).run(e);

  // Corrupt a *complete* interior line: that is not crash-truncation and
  // must be refused (a torn line can only ever be the final one).
  std::string content = read_file(ckpt.path());
  const std::size_t second_line = content.find('\n') + 1;
  content[second_line] = '#';
  write_file(ckpt.path(), content);

  BatchRunner::Options opt;
  opt.checkpoint_path = ckpt.path();
  opt.resume = true;
  try {
    (void)BatchRunner(opt).run(e);
    FAIL() << "expected corruption rejection";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("not valid JSON"), std::string::npos) << err.what();
  }

  // A file that is not a checkpoint at all names the format marker.
  write_file(ckpt.path(), "{\"something\": \"else\"}\n");
  try {
    (void)BatchRunner(opt).run(e);
    FAIL() << "expected format rejection";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("format"), std::string::npos) << err.what();
  }
}

TEST(Checkpoint, ShardedJournalsResumeIndependentlyAndStillMergeExactly) {
  const ExperimentSpec e = checkpoint_sweep();
  const std::string expected = fresh_report(e);
  const std::size_t total = e.expand().size();

  std::vector<Json> partials;
  for (std::size_t s = 0; s < 2; ++s) {
    TempFile ckpt("shard" + std::to_string(s));
    const std::vector<ExpandedRun> runs = e.expand_shard(s, 2);

    // Write a full journal, truncate it mid-file, resume the shard.
    BatchRunner::Options writer;
    writer.checkpoint_path = ckpt.path();
    (void)BatchRunner(writer).run(runs, e.early_stop);
    const std::string full = read_file(ckpt.path());
    write_file(ckpt.path(), full.substr(0, full.size() / 2));

    BatchRunner::Options opt;
    opt.checkpoint_path = ckpt.path();
    opt.resume = true;
    const BatchResult r = BatchRunner(opt).run(runs, e.early_stop);
    partials.push_back(partial_report_json(e, Shard{s, 2}, total, r.outcomes));
  }
  EXPECT_EQ(merge_partial_reports(partials).dump(2), expected);
}

TEST(Checkpoint, FsyncCadenceZeroAndCoarseBothJournalEveryOutcome) {
  const ExperimentSpec e = checkpoint_sweep();
  for (const std::size_t cadence : {0u, 16u}) {
    TempFile ckpt("cadence" + std::to_string(cadence));
    BatchRunner::Options opt;
    opt.checkpoint_path = ckpt.path();
    opt.checkpoint_fsync_every = cadence;
    (void)BatchRunner(opt).run(e);
    const std::string content = read_file(ckpt.path());
    EXPECT_EQ(static_cast<std::size_t>(std::count(content.begin(), content.end(), '\n')),
              e.expand().size() + 1);
  }
}

TEST(Checkpoint, RunOutcomeJsonRoundTripIsExactForAllShapes) {
  RunOutcome full;
  full.index = 3;
  full.variant = 1;
  full.repeat = 1;
  full.label = "k=2";
  full.seed = 0xDEADBEEFCAFEF00Dull;
  full.n = 8;
  full.converged = true;
  full.report.converged = true;
  full.report.cohesive = true;
  full.report.initial_diameter = 6.3;
  full.report.final_diameter = 0.04999999999999993;  // a non-round double
  full.report.rounds = 41;
  full.report.rounds_to_halve = 17;
  full.report.activations = 4242;
  full.report.worst_stretch = 1.2500000000000002;
  full.custom = 0.1 + 0.2;  // 0.30000000000000004

  RunOutcome failed;
  failed.index = 4;
  failed.label = "bad";
  failed.seed = 9;
  failed.error = "unknown algorithm \"nope\"";

  RunOutcome skipped;
  skipped.index = 5;
  skipped.variant = 1;
  skipped.repeat = 3;
  skipped.label = "k=2";
  skipped.seed = 11;
  skipped.skipped = true;

  for (const RunOutcome& o : {full, failed, skipped}) {
    const Json j = o.to_json();
    // Exact fixed point through text as well (what the JSONL file stores).
    EXPECT_EQ(RunOutcome::from_json(Json::parse(j.dump())).to_json().dump(), j.dump());
  }
  EXPECT_THROW(RunOutcome::from_json(Json::parse("[1]")), std::runtime_error);
  EXPECT_THROW(RunOutcome::from_json(Json::parse(R"({"index": 0})")), std::runtime_error);
}

}  // namespace
}  // namespace cohesion::run
