#include "run/batch_runner.hpp"

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "run/instantiate.hpp"

namespace cohesion::run {
namespace {

/// A small but real sweep: 2 scheduler-k variants x 4 repeats of KKNPS on a
/// line chain, a few thousand activations each.
ExperimentSpec small_sweep() {
  ExperimentSpec e;
  e.name = "determinism";
  e.base.n = 8;
  e.base.seed = 2024;
  e.base.algorithm = {.type = "kknps", .params = Json::parse(R"({"k": 2})")};
  e.base.scheduler = {.type = "kasync", .params = Json::parse(R"({"xi": 0.5})")};
  e.base.initial = {.type = "line", .params = Json::parse(R"({"spacing": 0.9})")};
  e.base.stop.epsilon = 0.05;
  e.base.stop.max_activations = 20000;
  e.repeats = 4;
  e.axes.push_back({"scheduler.params.k", {Json(1), Json(2)}});
  return e;
}

TEST(BatchRunner, SweepIsBitIdenticalAt1And8WorkerThreads) {
  const ExperimentSpec e = small_sweep();

  BatchRunner::Options one;
  one.threads = 1;
  BatchRunner::Options eight;
  eight.threads = 8;
  const BatchResult r1 = BatchRunner(one).run(e);
  const BatchResult r8 = BatchRunner(eight).run(e);

  ASSERT_EQ(r1.outcomes.size(), 8u);
  ASSERT_EQ(r8.outcomes.size(), 8u);
  // Per-run results identical, including every analyzed metric...
  for (std::size_t i = 0; i < r1.outcomes.size(); ++i) {
    EXPECT_EQ(r1.outcomes[i].to_json().dump(), r8.outcomes[i].to_json().dump()) << i;
  }
  // ...and so the aggregated report (timing excluded) is byte-identical.
  EXPECT_EQ(BatchRunner::report_json(e, r1, false).dump(2),
            BatchRunner::report_json(e, r8, false).dump(2));
}

TEST(BatchRunner, AggregateFoldsTheExpectedFields) {
  const ExperimentSpec e = small_sweep();
  BatchRunner::Options options;
  options.threads = 2;
  const BatchResult r = BatchRunner(options).run(e);
  const Aggregate a = BatchRunner::aggregate(r.outcomes);
  EXPECT_EQ(a.runs, 8u);
  EXPECT_EQ(a.errors, 0u);
  EXPECT_EQ(a.converged, 8u);  // an 8-robot chain converges well within budget
  EXPECT_EQ(a.cohesion_failures, 0u);
  EXPECT_GT(a.mean_rounds, 0.0);
  EXPECT_LE(a.p50_rounds, a.p90_rounds);
  EXPECT_GT(a.total_activations, 0u);
  EXPECT_NEAR(a.mean_initial_diameter, 0.9 * 7, 1e-9);

  const auto by_variant = BatchRunner::aggregate_by_variant(r.outcomes);
  ASSERT_EQ(by_variant.size(), 2u);
  EXPECT_EQ(by_variant[0].runs, 4u);
  EXPECT_EQ(by_variant[1].runs, 4u);
}

TEST(BatchRunner, TraceMetricHookRunsPerRun) {
  ExperimentSpec e = small_sweep();
  e.repeats = 2;
  BatchRunner::Options options;
  options.threads = 4;
  options.trace_metric = [](const RunSpec& spec, const core::Engine& engine) {
    // Anything derivable from the finished engine; here: activations per
    // robot, which is > 0 for every robot under a fair scheduler.
    return static_cast<double>(engine.trace().records().size()) /
           static_cast<double>(spec.n);
  };
  const BatchResult r = BatchRunner(options).run(e);
  for (const RunOutcome& o : r.outcomes) EXPECT_GT(o.custom, 0.0);
}

TEST(BatchRunner, ARunFailureIsCapturedNotFatal) {
  ExperimentSpec e = small_sweep();
  e.repeats = 1;
  // Second variant names a nonexistent algorithm: expansion succeeds (the
  // key is data), execution of that run fails, the rest are unaffected.
  Json bad = Json::object();
  bad.set("label", "bad");
  Json algo = Json::object();
  algo.set("type", "definitely_not_registered");
  bad.set("algorithm", algo);
  Json good = Json::object();
  good.set("label", "good");
  e.axes = {SweepAxis{"", {good, bad}}};

  const BatchResult r = BatchRunner().run(e);
  ASSERT_EQ(r.outcomes.size(), 2u);
  EXPECT_TRUE(r.outcomes[0].error.empty());
  EXPECT_NE(r.outcomes[1].error.find("definitely_not_registered"), std::string::npos);
  const Aggregate a = BatchRunner::aggregate(r.outcomes);
  EXPECT_EQ(a.errors, 1u);
  EXPECT_EQ(a.converged, 1u);
}

/// Early stopping under a rule every repeat satisfies trivially: the first
/// `window` repeats of each variant run, the rest are skipped.
TEST(BatchRunner, EarlyStopSkipsRemainingRepeatsAndStaysDeterministic) {
  ExperimentSpec e = small_sweep();
  e.repeats = 6;
  e.early_stop.window = 2;
  e.early_stop.epsilon = 1.0;  // generous: converged diameters all agree within this
  e.early_stop.metric = "converged";

  BatchRunner::Options one;
  one.threads = 1;
  BatchRunner::Options eight;
  eight.threads = 8;
  const BatchResult r1 = BatchRunner(one).run(e);
  const BatchResult r8 = BatchRunner(eight).run(e);

  ASSERT_EQ(r1.outcomes.size(), 12u);
  // Which repeats are skipped is a pure function of the spec — identical
  // at 1 and 8 worker threads, down to the report bytes.
  EXPECT_EQ(BatchRunner::report_json(e, r1, false).dump(2),
            BatchRunner::report_json(e, r8, false).dump(2));
  for (const RunOutcome& o : r1.outcomes) {
    EXPECT_EQ(o.skipped, o.repeat >= 2) << "variant " << o.variant << " repeat " << o.repeat;
  }
  const Aggregate a = BatchRunner::aggregate(r1.outcomes);
  EXPECT_EQ(a.runs, 12u);
  EXPECT_EQ(a.skipped, 8u);
  EXPECT_EQ(a.converged, 4u);  // folds cover only the executed repeats
  const auto by_variant = BatchRunner::aggregate_by_variant(r1.outcomes);
  ASSERT_EQ(by_variant.size(), 2u);
  EXPECT_EQ(by_variant[0].skipped, 4u);
}

TEST(BatchRunner, EarlyStopWindowNeverFillingSkipsNothing) {
  ExperimentSpec plain = small_sweep();
  ExperimentSpec gated = small_sweep();
  gated.early_stop.window = 5;      // > repeats (4): can never fire
  gated.early_stop.epsilon = -1.0;  // and even the spread test is unsatisfiable
  const BatchResult rp = BatchRunner().run(plain);
  const BatchResult rg = BatchRunner().run(gated);
  for (const RunOutcome& o : rg.outcomes) EXPECT_FALSE(o.skipped);
  // The sequential per-variant path must execute the identical outcomes
  // the flat work-stealing path does.
  ASSERT_EQ(rp.outcomes.size(), rg.outcomes.size());
  for (std::size_t i = 0; i < rp.outcomes.size(); ++i) {
    EXPECT_EQ(rp.outcomes[i].to_json().dump(), rg.outcomes[i].to_json().dump()) << i;
  }
}

TEST(BatchRunner, EarlyStopUnknownMetricThrowsBeforeRunning) {
  ExperimentSpec e = small_sweep();
  e.early_stop.window = 2;
  e.early_stop.metric = "definitely_not_a_metric";
  EXPECT_THROW((void)BatchRunner().run(e), std::runtime_error);
}

TEST(Instantiate, BuildsEverySlotFromTheSpec) {
  RunSpec spec;
  spec.n = 6;
  spec.seed = 5;
  spec.algorithm = {.type = "null"};
  spec.scheduler = {.type = "fsync"};
  spec.error = {.type = "exact"};
  spec.initial = {.type = "grid", .params = Json::parse(R"({"spacing": 0.5})")};
  spec.visibility_radius = 2.0;
  RunInstance inst = instantiate(spec);
  EXPECT_EQ(inst.algorithm->name(), "Null");
  EXPECT_EQ(inst.scheduler->name(), "FSync");
  EXPECT_EQ(inst.initial.size(), 6u);
  EXPECT_DOUBLE_EQ(inst.config.visibility.radius, 2.0);
  EXPECT_FALSE(inst.config.error.random_rotation);
  EXPECT_EQ(inst.config.seed, seed_streams(5).engine);
  ASSERT_NE(inst.engine, nullptr);
  EXPECT_EQ(inst.engine->robot_count(), 6u);
  // A null-algorithm FSync run executes and never moves anyone.
  inst.engine->run(12);
  EXPECT_DOUBLE_EQ(inst.engine->current_diameter(),
                   metrics::analyze(inst.engine->trace(), 2.0, 0.01).initial_diameter);
}

}  // namespace
}  // namespace cohesion::run
