// Preset layering (run/preset.hpp): chained "extends", override-wins deep
// merge, chain-naming error messages, and the property the result cache
// leans on — a spec refactored into presets fingerprints identically to
// the inlined document, because resolution happens before hashing.
#include "run/preset.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "run/spec.hpp"

namespace cohesion::run {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((fs::temp_directory_path() / ("cohesion_preset_" + tag)).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

  std::string write(const std::string& name, const std::string& content) const {
    const std::string full = path_ + "/" + name;
    fs::create_directories(fs::path(full).parent_path());
    std::ofstream out(full);
    out << content;
    return full;
  }

 private:
  std::string path_;
};

TEST(DeepMerge, ObjectsMergeScalarsAndArraysReplace) {
  Json base = Json::parse(R"({"a": 1, "nested": {"x": 1, "y": 2}, "list": [1, 2, 3]})");
  const Json overlay = Json::parse(R"({"a": 9, "nested": {"y": 7, "z": 8}, "list": [4]})");
  deep_merge(base, overlay);
  EXPECT_EQ(base, Json::parse(R"({"a": 9, "nested": {"x": 1, "y": 7, "z": 8}, "list": [4]})"));
}

TEST(DeepMerge, NonObjectOverlayReplacesWholesale) {
  Json base = Json::parse(R"({"a": 1})");
  deep_merge(base, Json(42));
  EXPECT_EQ(base, Json(42));
}

TEST(Preset, SingleExtendsMergesWithOverrideWins) {
  TempDir dir("single");
  dir.write("base.json", R"({"name": "base", "base": {"n": 16, "seed": 1}, "repeats": 4})");
  const std::string top =
      dir.write("top.json", R"({"extends": "base.json", "name": "top", "base": {"n": 32}})");

  const Json resolved = load_spec_file(top);
  EXPECT_EQ(resolved.string_or("name", ""), "top");
  EXPECT_EQ(resolved.at("base").uint_or("n", 0), 32u);          // overridden
  EXPECT_EQ(resolved.at("base").uint_or("seed", 0), 1u);        // inherited
  EXPECT_EQ(resolved.uint_or("repeats", 0), 4u);                // inherited
  EXPECT_FALSE(resolved.contains("extends")) << "the key must be consumed";
}

TEST(Preset, ChainedExtendsResolvesDepthFirst) {
  // c extends b extends a: the most-derived file wins at every depth.
  TempDir dir("chain");
  dir.write("a.json", R"({"base": {"n": 8, "seed": 1, "scheduler": {"type": "fsync"}}})");
  dir.write("b.json", R"({"extends": "a.json", "base": {"seed": 2}, "repeats": 3})");
  const std::string c =
      dir.write("c.json", R"({"extends": "b.json", "base": {"scheduler": {"params": {"k": 2}}}})");

  const Json resolved = load_spec_file(c);
  EXPECT_EQ(resolved.at("base").uint_or("n", 0), 8u);     // from a
  EXPECT_EQ(resolved.at("base").uint_or("seed", 0), 2u);  // b overrides a
  EXPECT_EQ(resolved.at("base").at("scheduler").string_or("type", ""), "fsync");  // from a
  EXPECT_EQ(resolved.at("base").at("scheduler").at("params").uint_or("k", 0), 2u);  // from c
  EXPECT_EQ(resolved.uint_or("repeats", 0), 3u);          // from b
}

TEST(Preset, ArrayExtendsLaterBasesOverrideEarlier) {
  TempDir dir("array");
  dir.write("one.json", R"({"base": {"n": 8}, "repeats": 1})");
  dir.write("two.json", R"({"base": {"n": 16}})");
  const std::string top = dir.write("top.json", R"({"extends": ["one.json", "two.json"]})");

  const Json resolved = load_spec_file(top);
  EXPECT_EQ(resolved.at("base").uint_or("n", 0), 16u);  // two.json wins
  EXPECT_EQ(resolved.uint_or("repeats", 0), 1u);        // only one.json has it
}

TEST(Preset, BasePathsResolveRelativeToReferringFile) {
  TempDir dir("relative");
  dir.write("presets/base.json", R"({"base": {"n": 24}})");
  dir.write("presets/mid.json", R"({"extends": "base.json", "repeats": 2})");
  const std::string top = dir.write("sweeps/top.json", R"({"extends": "../presets/mid.json"})");

  const Json resolved = load_spec_file(top);
  EXPECT_EQ(resolved.at("base").uint_or("n", 0), 24u);
  EXPECT_EQ(resolved.uint_or("repeats", 0), 2u);
}

TEST(Preset, CycleErrorNamesTheWholeChain) {
  TempDir dir("cycle");
  dir.write("a.json", R"({"extends": "b.json"})");
  const std::string a = dir.path() + "/a.json";
  dir.write("b.json", R"({"extends": "a.json"})");

  try {
    (void)load_spec_file(a);
    FAIL() << "cycle must throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("preset chain"), std::string::npos) << msg;
    EXPECT_NE(msg.find("a.json -> b.json -> a.json"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cycle"), std::string::npos) << msg;
  }
}

TEST(Preset, SelfExtendsIsACycleToo) {
  TempDir dir("self");
  const std::string a = dir.write("a.json", R"({"extends": "a.json"})");
  try {
    (void)load_spec_file(a);
    FAIL() << "self-extends must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos) << e.what();
  }
}

TEST(Preset, MissingBaseNamesChainAndFile) {
  TempDir dir("missing");
  dir.write("mid.json", R"({"extends": "ghost.json"})");
  const std::string top = dir.write("top.json", R"({"extends": "mid.json"})");

  try {
    (void)load_spec_file(top);
    FAIL() << "missing base must throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("top.json -> mid.json -> ghost.json"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cannot open"), std::string::npos) << msg;
  }
}

TEST(Preset, MalformedExtendsValueIsNamed) {
  TempDir dir("malformed");
  const std::string top = dir.write("top.json", R"({"extends": 7})");
  EXPECT_THROW((void)load_spec_file(top), std::runtime_error);
  const std::string mixed = dir.write("mixed.json", R"({"extends": ["ok", 7]})");
  EXPECT_THROW((void)load_spec_file(mixed), std::runtime_error);
}

TEST(Preset, NoExtendsIsPlainParse) {
  TempDir dir("plain");
  const std::string top = dir.write("top.json", R"({"name": "plain", "base": {"n": 4}})");
  EXPECT_EQ(load_spec_file(top).dump(), Json::parse_file(top).dump());
}

TEST(Preset, ResolvedSpecFingerprintsLikeTheInlinedOne) {
  // The cache-compatibility property: splitting a spec into preset layers
  // must not move a single fingerprint, because load_spec_file resolves
  // before anything hashes. Assert both identities on the expanded runs.
  TempDir dir("fp");
  const std::string inlined = dir.write("inlined.json", R"({
    "name": "sweep",
    "base": {"n": 12, "seed": 5, "scheduler": {"type": "kasync", "params": {"k": 2}}},
    "repeats": 2,
    "sweep": [{"path": "seed", "values": [31, 32]}]
  })");
  dir.write("defaults.json",
            R"({"base": {"n": 12, "scheduler": {"type": "kasync", "params": {"k": 1}}}})");
  const std::string layered = dir.write("layered.json", R"({
    "extends": "defaults.json",
    "name": "sweep",
    "base": {"seed": 5, "scheduler": {"params": {"k": 2}}},
    "repeats": 2,
    "sweep": [{"path": "seed", "values": [31, 32]}]
  })");

  const ExperimentSpec a = ExperimentSpec::from_json(load_spec_file(inlined));
  const ExperimentSpec b = ExperimentSpec::from_json(load_spec_file(layered));
  const auto runs_a = a.expand();
  const auto runs_b = b.expand();
  ASSERT_EQ(runs_a.size(), runs_b.size());
  for (std::size_t i = 0; i < runs_a.size(); ++i) {
    EXPECT_EQ(spec_fingerprint(runs_a[i].spec), spec_fingerprint(runs_b[i].spec)) << "run " << i;
    EXPECT_EQ(run_identity(runs_a[i].spec), run_identity(runs_b[i].spec)) << "run " << i;
  }
}

}  // namespace
}  // namespace cohesion::run
