#include "run/shard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace cohesion::run {
namespace {

/// The shard/merge counterpart of batch_runner_test's small_sweep: 3
/// scheduler-k variants x 3 repeats = 9 runs, each a few thousand
/// activations.
ExperimentSpec sharded_sweep() {
  ExperimentSpec e;
  e.name = "sharded";
  e.base.n = 8;
  e.base.seed = 2024;
  e.base.algorithm = {.type = "kknps", .params = Json::parse(R"({"k": 2})")};
  e.base.scheduler = {.type = "kasync", .params = Json::parse(R"({"xi": 0.5})")};
  e.base.initial = {.type = "line", .params = Json::parse(R"({"spacing": 0.9})")};
  e.base.stop.epsilon = 0.05;
  e.base.stop.max_activations = 20000;
  e.repeats = 3;
  e.axes.push_back({"scheduler.params.k", {Json(1), Json(2), Json(3)}});
  return e;
}

TEST(Shard, ParseAcceptsIOverNAndRejectsEverythingElse) {
  const Shard s = Shard::parse("2/5");
  EXPECT_EQ(s.index, 2u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(Shard::parse("0/1").count, 1u);
  EXPECT_THROW(Shard::parse("3/3"), std::runtime_error);   // 0-based: index < count
  EXPECT_THROW(Shard::parse("1/0"), std::runtime_error);
  EXPECT_THROW(Shard::parse("1"), std::runtime_error);
  EXPECT_THROW(Shard::parse("a/3"), std::runtime_error);
  EXPECT_THROW(Shard::parse("1/"), std::runtime_error);
  EXPECT_THROW(Shard::parse("/3"), std::runtime_error);
  EXPECT_THROW(Shard::parse("-1/3"), std::runtime_error);
}

TEST(Shard, UnionOverShardsIsExactlyTheSingleProcessGrid) {
  const ExperimentSpec e = sharded_sweep();
  const std::vector<ExpandedRun> all = e.expand();
  for (const std::size_t count : {1u, 2u, 3u, 5u, 8u}) {
    std::vector<std::vector<ExpandedRun>> shards;
    for (std::size_t s = 0; s < count; ++s) shards.push_back(e.expand_shard(s, count));
    std::map<std::size_t, const ExpandedRun*> seen;  // global index -> run
    for (std::size_t s = 0; s < count; ++s) {
      for (const ExpandedRun& run : shards[s]) {
        EXPECT_EQ(run.variant % count, s);  // the documented partition rule
        EXPECT_TRUE(seen.emplace(run.index, &run).second) << "duplicate index " << run.index;
      }
    }
    ASSERT_EQ(seen.size(), all.size()) << "N=" << count;
    for (const ExpandedRun& run : all) {
      const auto it = seen.find(run.index);
      ASSERT_NE(it, seen.end());
      // Same grid position and, critically, the same resolved spec bytes —
      // derived seeds are a function of the *global* index, so sharding
      // must not disturb them.
      EXPECT_EQ(it->second->spec.to_json().dump(), run.spec.to_json().dump());
      EXPECT_EQ(it->second->variant, run.variant);
      EXPECT_EQ(it->second->repeat, run.repeat);
      EXPECT_EQ(it->second->label, run.label);
    }
  }
  EXPECT_THROW(e.expand_shard(3, 3), std::runtime_error);
  EXPECT_THROW(e.expand_shard(0, 0), std::runtime_error);
}

TEST(Shard, VariantsStayWholeWithinOneShard) {
  const ExperimentSpec e = sharded_sweep();
  // Every repeat of a variant lands in the same shard, which is what lets
  // per-variant early stopping run under sharding.
  for (const std::size_t count : {2u, 3u}) {
    for (std::size_t s = 0; s < count; ++s) {
      std::map<std::size_t, std::size_t> repeats_of;
      for (const ExpandedRun& run : e.expand_shard(s, count)) ++repeats_of[run.variant];
      for (const auto& [variant, reps] : repeats_of) EXPECT_EQ(reps, e.repeats) << variant;
    }
  }
}

TEST(Shard, MergedPartialReportsAreByteIdenticalToSingleProcess) {
  const ExperimentSpec e = sharded_sweep();
  const BatchResult single = BatchRunner().run(e);
  const std::string expected = BatchRunner::report_json(e, single, false).dump(2);
  const std::size_t total = e.expand().size();

  for (const std::size_t count : {2u, 3u, 5u}) {
    std::vector<Json> partials;
    for (std::size_t s = 0; s < count; ++s) {
      const std::vector<ExpandedRun> runs = e.expand_shard(s, count);
      const BatchResult r = BatchRunner().run(runs, e.early_stop);
      partials.push_back(partial_report_json(e, Shard{s, count}, total, r.outcomes));
    }
    // Merge is order-insensitive; hand the shards over rotated.
    std::rotate(partials.begin(), partials.begin() + 1, partials.end());
    EXPECT_EQ(merge_partial_reports(partials).dump(2), expected) << "N=" << count;
  }
}

TEST(Shard, MergeSurvivesAJsonFileRoundTrip) {
  // The CLI path writes partials to disk and reparses them; dump -> parse
  // -> dump must be a fixed point for the merged bytes to match.
  const ExperimentSpec e = sharded_sweep();
  const BatchResult single = BatchRunner().run(e);
  const std::string expected = BatchRunner::report_json(e, single, false).dump(2);
  const std::size_t total = e.expand().size();

  std::vector<Json> partials;
  for (std::size_t s = 0; s < 3; ++s) {
    const BatchResult r = BatchRunner().run(e.expand_shard(s, 3), e.early_stop);
    const Json p = partial_report_json(e, Shard{s, 3}, total, r.outcomes);
    partials.push_back(Json::parse(p.dump(2)));
  }
  EXPECT_EQ(merge_partial_reports(partials).dump(2), expected);
}

TEST(Shard, MergeRejectsIncompleteOrInconsistentPartialSets) {
  const ExperimentSpec e = sharded_sweep();
  const std::size_t total = e.expand().size();
  std::vector<Json> partials;
  for (std::size_t s = 0; s < 3; ++s) {
    const BatchResult r = BatchRunner().run(e.expand_shard(s, 3), e.early_stop);
    partials.push_back(partial_report_json(e, Shard{s, 3}, total, r.outcomes));
  }

  EXPECT_THROW(merge_partial_reports({}), std::runtime_error);

  // Missing shard: error names which one.
  try {
    merge_partial_reports({partials[0], partials[2]});
    FAIL() << "expected missing-shard rejection";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("missing: 1"), std::string::npos) << err.what();
  }

  // Duplicate shard.
  EXPECT_THROW(merge_partial_reports({partials[0], partials[0], partials[1]}),
               std::runtime_error);

  // Partial from a different experiment.
  ExperimentSpec other = sharded_sweep();
  other.base.seed = 999;
  const BatchResult r0 = BatchRunner().run(other.expand_shard(0, 3), other.early_stop);
  std::vector<Json> mixed = partials;
  mixed[0] = partial_report_json(other, Shard{0, 3}, other.expand().size(), r0.outcomes);
  EXPECT_THROW(merge_partial_reports(mixed), std::runtime_error);

  // Not a partial report at all.
  EXPECT_THROW(merge_partial_reports({Json::parse(R"({"hello": 1})")}), std::runtime_error);
}

TEST(Shard, MoreShardsThanVariantsYieldsEmptyShards) {
  ExperimentSpec e = sharded_sweep();  // 3 variants
  const std::size_t total = e.expand().size();
  std::vector<Json> partials;
  for (std::size_t s = 0; s < 5; ++s) {
    const std::vector<ExpandedRun> runs = e.expand_shard(s, 5);
    if (s >= 3) EXPECT_TRUE(runs.empty());
    const BatchResult r = BatchRunner().run(runs, e.early_stop);
    partials.push_back(partial_report_json(e, Shard{s, 5}, total, r.outcomes));
  }
  const BatchResult single = BatchRunner().run(e);
  EXPECT_EQ(merge_partial_reports(partials).dump(2),
            BatchRunner::report_json(e, single, false).dump(2));
}

}  // namespace
}  // namespace cohesion::run
