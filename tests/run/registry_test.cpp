#include "run/registry.hpp"

#include <gtest/gtest.h>

#include "algo/kknps.hpp"

namespace cohesion::run {
namespace {

TEST(Registry, BuiltinAlgorithmKeys) {
  for (const char* key : {"kknps", "kknps3d", "ando", "katreniak", "cog", "gcm", "null",
                          "lens_midpoint"}) {
    const auto algo = algorithms().get(key)(Json::object());
    ASSERT_NE(algo, nullptr) << key;
    EXPECT_FALSE(algo->name().empty());
  }
}

TEST(Registry, BuiltinSchedulerKeys) {
  for (const char* key : {"fsync", "ssync", "kasync", "async", "knesta"}) {
    const auto sched = schedulers().get(key)(4, 7, Json::object());
    ASSERT_NE(sched, nullptr) << key;
  }
  // scripted needs its script param.
  const Json params = Json::parse(R"({"script": [[0, 0.0, 0.1, 0.5, 1.0]]})");
  EXPECT_NE(schedulers().get("scripted")(2, 7, params), nullptr);
}

TEST(Registry, BuiltinErrorAndInitialKeys) {
  EXPECT_FALSE(errors().get("exact")(Json::object()).random_rotation);
  EXPECT_TRUE(errors().get("noisy")(Json::object()).random_rotation);
  for (const char* key : {"line", "grid", "circle", "random", "two_cluster"}) {
    EXPECT_EQ(initials().get(key)(12, 1.0, 5, Json::object()).size(), 12u) << key;
  }
  // spiral dictates its own robot count.
  EXPECT_GT(initials().get("spiral")(1, 1.0, 5, Json::object()).size(), 3u);
}

TEST(Registry, UnknownKeyThrowsListingKnownKeys) {
  try {
    (void)algorithms().get("no_such_algorithm");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no_such_algorithm"), std::string::npos);
    EXPECT_NE(what.find("kknps"), std::string::npos);  // lists registered keys
  }
  EXPECT_THROW((void)schedulers().get("bogus"), std::runtime_error);
  EXPECT_THROW((void)errors().get("bogus"), std::runtime_error);
  EXPECT_THROW((void)initials().get("bogus"), std::runtime_error);
}

TEST(Registry, ParamsReachTheFactory) {
  const Json params = Json::parse(R"({"k": 4, "distance_delta": 0.05})");
  const auto algo = algorithms().get("kknps")(params);
  const auto* kknps = dynamic_cast<const algo::KknpsAlgorithm*>(algo.get());
  ASSERT_NE(kknps, nullptr);
  EXPECT_EQ(kknps->params().k, 4u);
  EXPECT_DOUBLE_EQ(kknps->params().distance_delta, 0.05);
}

TEST(Registry, UserRegistrationAndOverride) {
  auto& reg = initials();
  reg.add("three_in_a_row", [](std::size_t, double, std::uint64_t, const Json&) {
    return std::vector<geom::Vec2>{{0, 0}, {1, 0}, {2, 0}};
  });
  EXPECT_TRUE(reg.contains("three_in_a_row"));
  EXPECT_EQ(reg.get("three_in_a_row")(99, 1.0, 1, Json::object()).size(), 3u);
  // Re-registration replaces.
  reg.add("three_in_a_row", [](std::size_t, double, std::uint64_t, const Json&) {
    return std::vector<geom::Vec2>{{0, 0}};
  });
  EXPECT_EQ(reg.get("three_in_a_row")(99, 1.0, 1, Json::object()).size(), 1u);
}

TEST(Registry, SeedParamPinsOverDerivedSeed) {
  // Two different derived seeds with the same pinned params seed must build
  // identically-behaving schedulers.
  const Json params = Json::parse(R"({"seed": 123, "k": 2})");
  auto a = schedulers().get("kasync")(4, 1, params);
  auto b = schedulers().get("kasync")(4, 2, params);

  struct View final : core::SimulationView {
    core::Time front = 0.0;
    [[nodiscard]] std::size_t robot_count() const override { return 4; }
    [[nodiscard]] core::Time busy_until(core::RobotId) const override { return 0.0; }
    [[nodiscard]] core::Time frontier() const override { return front; }
    [[nodiscard]] geom::Vec2 position(core::RobotId, core::Time) const override { return {}; }
    [[nodiscard]] std::size_t activations_of(core::RobotId) const override { return 0; }
  };
  View va, vb;
  for (int i = 0; i < 50; ++i) {
    const auto pa = a->next(va);
    const auto pb = b->next(vb);
    ASSERT_TRUE(pa && pb);
    EXPECT_EQ(pa->robot, pb->robot);
    EXPECT_EQ(pa->t_look, pb->t_look);
    va.front = pa->t_look;
    vb.front = pb->t_look;
  }
}

}  // namespace
}  // namespace cohesion::run
