#include "run/json.hpp"

#include <gtest/gtest.h>

namespace cohesion::run {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e3").as_double(), -2500.0);
  EXPECT_EQ(Json::parse("\"hi\\nthere\"").as_string(), "hi\nthere");
}

TEST(Json, IntegerFidelityAt64Bits) {
  // Above 2^53: a double would corrupt these — exactly the values derived
  // per-run seeds take.
  const std::uint64_t seed = 0xDEADBEEFCAFEF00Dull;
  Json j = Json::object();
  j.set("seed", seed);
  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back.at("seed").as_uint(), seed);

  EXPECT_EQ(Json::parse("18446744073709551615").as_uint(), UINT64_MAX);
  EXPECT_EQ(Json::parse("-9223372036854775808").as_int(), INT64_MIN);
}

TEST(Json, DoublesRoundTripShortest) {
  for (const double d : {0.1, 1.0 / 3.0, 1e-300, 6.3, 0.030000000000000002}) {
    const Json back = Json::parse(Json(d).dump());
    EXPECT_EQ(back.as_double(), d) << Json(d).dump();
  }
  // Integral doubles keep their flavor visible.
  EXPECT_EQ(Json(2.0).dump(), "2.0");
}

TEST(Json, ObjectOrderIsPreserved) {
  const Json j = Json::parse(R"({"z": 1, "a": 2, "m": 3})");
  const JsonObject& o = j.entries();
  ASSERT_EQ(o.size(), 3u);
  EXPECT_EQ(o[0].first, "z");
  EXPECT_EQ(o[1].first, "a");
  EXPECT_EQ(o[2].first, "m");
  EXPECT_EQ(j.dump(), R"({"z":1,"a":2,"m":3})");
}

TEST(Json, NestedRoundTrip) {
  const std::string text =
      R"({"name":"e","base":{"n":12,"seed":9000,"xs":[1,2.5,"s",null,true]},"sweep":[]})";
  const Json j = Json::parse(text);
  EXPECT_EQ(j.dump(), text);
  EXPECT_EQ(Json::parse(j.dump(2)), j);  // pretty-printing re-parses equal
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{\"a\":1 \"b\":2}"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("12 34"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{\"a\":1,\"a\":2}"), std::runtime_error);  // dup key
  EXPECT_THROW((void)Json::parse(""), std::runtime_error);
}

TEST(Json, AccessorsEnforceKindAndRange) {
  EXPECT_THROW((void)Json::parse("\"s\"").as_double(), std::runtime_error);
  EXPECT_THROW((void)Json::parse("-1").as_uint(), std::runtime_error);
  EXPECT_THROW((void)Json::parse("2.5").as_int(), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{}").at("missing"), std::runtime_error);
  EXPECT_EQ(Json::parse("7").as_double(), 7.0);  // widening is fine
}

TEST(Json, DefaultedLookups) {
  const Json j = Json::parse(R"({"k": 3, "xi": 0.5, "on": true, "s": "x"})");
  EXPECT_EQ(j.uint_or("k", 9), 3u);
  EXPECT_EQ(j.uint_or("absent", 9), 9u);
  EXPECT_DOUBLE_EQ(j.number_or("xi", 1.0), 0.5);
  EXPECT_EQ(j.bool_or("on", false), true);
  EXPECT_EQ(j.string_or("s", "d"), "x");
  EXPECT_EQ(j.string_or("absent", "d"), "d");
}

}  // namespace
}  // namespace cohesion::run
