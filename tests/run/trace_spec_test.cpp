// Run-layer wiring of the streaming trace subsystem: TraceSpec JSON (and
// the byte-compatibility rule that default blocks never serialize), the
// capture-invariant spec fingerprint, per-run path templating, RunOutcome
// trace fields, instantiate()'s mode validation, and the BatchRunner
// stream path producing byte-identical reports plus replayable files.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "metrics/online.hpp"
#include "run/batch_runner.hpp"
#include "run/instantiate.hpp"
#include "run/spec.hpp"
#include "trace/stream_reader.hpp"

namespace cohesion::run {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((fs::temp_directory_path() / ("cohesion_trace_spec_" + tag)).string()) {
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

ExperimentSpec small_sweep() {
  ExperimentSpec e;
  e.name = "trace-wiring";
  e.base.n = 8;
  e.base.seed = 99;
  e.base.algorithm = {.type = "kknps", .params = Json::parse(R"({"k": 1})")};
  e.base.scheduler = {.type = "kasync", .params = Json::parse(R"({"xi": 0.5})")};
  e.base.initial = {.type = "line", .params = Json::parse(R"({"spacing": 0.9})")};
  e.base.stop.epsilon = 0.05;
  e.base.stop.max_activations = 4000;
  e.repeats = 2;
  e.axes.push_back({"scheduler.params.k", {Json(1), Json(2)}});
  return e;
}

TEST(TraceSpec, DefaultBlockNeverSerializes) {
  // Existing specs, reports and fingerprints must keep their bytes: a
  // default TraceSpec leaves no mark on the JSON.
  const RunSpec spec;
  EXPECT_TRUE(spec.trace.is_default());
  EXPECT_FALSE(spec.to_json().contains("trace"));
  const RunSpec back = RunSpec::from_json(spec.to_json());
  EXPECT_TRUE(back.trace.is_default());
  EXPECT_EQ(spec.to_json().dump(), back.to_json().dump());
}

TEST(TraceSpec, JsonRoundTripAndShorthand) {
  RunSpec spec;
  spec.trace.mode = "stream";
  spec.trace.path = "traces/{name}_{index}.cohtrace";
  spec.trace.flush_every = 128;
  spec.trace.index_every = 256;
  const Json j = spec.to_json();
  ASSERT_TRUE(j.contains("trace"));
  const RunSpec back = RunSpec::from_json(j);
  EXPECT_EQ(back.trace.mode, "stream");
  EXPECT_EQ(back.trace.path, spec.trace.path);
  EXPECT_EQ(back.trace.flush_every, 128u);
  EXPECT_EQ(back.trace.index_every, 256u);

  // String shorthand: "trace": "off" selects a mode with all defaults.
  const TraceSpec off = TraceSpec::from_json(Json("off"));
  EXPECT_EQ(off.mode, "off");
  EXPECT_TRUE(off.path.empty());

  EXPECT_THROW(TraceSpec::from_json(Json("ring-buffer")), std::exception);
  Json bad = Json::object();
  bad.set("mode", Json("ring-buffer"));
  EXPECT_THROW(TraceSpec::from_json(bad), std::exception);
}

TEST(TraceSpec, FingerprintIgnoresCaptureConfiguration) {
  // The fingerprint is the *physical* run identity: any trace mode of the
  // same dynamics must agree, so a stream can be validated against the
  // report of a memory-mode run (and vice versa).
  RunSpec memory;
  RunSpec stream = memory;
  stream.trace.mode = "stream";
  stream.trace.path = "somewhere/else_{index}.cohtrace";
  stream.trace.flush_every = 1;
  RunSpec off = memory;
  off.trace.mode = "off";
  const std::uint64_t fp = spec_fingerprint(memory);
  EXPECT_EQ(spec_fingerprint(stream), fp);
  EXPECT_EQ(spec_fingerprint(off), fp);

  RunSpec different = memory;
  different.n = memory.n + 1;
  EXPECT_NE(spec_fingerprint(different), fp);

  EXPECT_EQ(fingerprint_hex(fp).size(), 16u);
  EXPECT_EQ(fingerprint_hex(0x00000000000000abull), "00000000000000ab");
}

TEST(TraceSpec, ExpandSubstitutesPathTemplatesPerRun) {
  ExperimentSpec e = small_sweep();
  e.base.trace.mode = "stream";
  e.base.trace.path = "{name}-{index}-v{variant}-r{repeat}-s{seed}.cohtrace";
  const std::vector<ExpandedRun> runs = e.expand();
  ASSERT_EQ(runs.size(), 4u);
  for (const ExpandedRun& run : runs) {
    // {name} is the run's resolved name, experiment/label#repeat, with the
    // '/' and '#' separators mapped to '_' so it cannot fragment the path.
    const std::string k = run.variant == 0 ? "1" : "2";
    const std::string expected = "trace-wiring_k=" + k + "_" + std::to_string(run.repeat) + "-" +
                                 std::to_string(run.index) + "-v" + std::to_string(run.variant) +
                                 "-r" + std::to_string(run.repeat) + "-s" +
                                 std::to_string(run.spec.seed) + ".cohtrace";
    EXPECT_EQ(run.spec.trace.path, expected) << "run " << run.index;
  }
  // Distinct runs resolve to distinct files (the {index} token).
  EXPECT_NE(runs[0].spec.trace.path, runs[1].spec.trace.path);
}

TEST(TraceSpec, RunOutcomeTraceFieldsRoundTripOnlyWhenSet) {
  RunOutcome plain;
  plain.index = 3;
  plain.label = "k=1";
  plain.converged = true;
  EXPECT_FALSE(plain.to_json().contains("trace_path"));
  EXPECT_FALSE(plain.to_json().contains("trace_fingerprint"));

  RunOutcome streamed = plain;
  streamed.trace_path = "traces/run_3.cohtrace";
  streamed.trace_fingerprint = "00c0ffee00c0ffee";
  const Json j = streamed.to_json();
  ASSERT_TRUE(j.contains("trace_path"));
  const RunOutcome back = RunOutcome::from_json(j);
  EXPECT_EQ(back.trace_path, streamed.trace_path);
  EXPECT_EQ(back.trace_fingerprint, streamed.trace_fingerprint);
  EXPECT_EQ(back.to_json().dump(), j.dump());
}

TEST(TraceSpec, InstantiateRejectsBoundedModeWithoutSpatialIndex) {
  RunSpec spec;
  spec.trace.mode = "stream";
  spec.trace.path = "x.cohtrace";
  spec.use_spatial_index = false;
  try {
    (void)instantiate(spec);
    FAIL() << "stream mode without the spatial index accepted";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("use_spatial_index"), std::string::npos) << e.what();
  }
  spec.use_spatial_index = true;
  const RunInstance inst = instantiate(spec);
  EXPECT_FALSE(inst.config.record_history);  // bounded-memory engine
}

TEST(TraceSpec, BatchRunnerStreamModeMatchesMemoryReportAndReplays) {
  const ExperimentSpec memory_experiment = small_sweep();

  TempDir dir("batch");
  ExperimentSpec stream_experiment = small_sweep();
  stream_experiment.base.trace.mode = "stream";
  stream_experiment.base.trace.path = dir.path() + "/run_{index}.cohtrace";
  stream_experiment.base.trace.flush_every = 64;
  stream_experiment.base.trace.index_every = 128;

  BatchRunner::Options options;
  options.threads = 2;
  const BatchResult memory_result = BatchRunner(options).run(memory_experiment);
  const BatchResult stream_result = BatchRunner(options).run(stream_experiment);
  ASSERT_EQ(memory_result.outcomes.size(), stream_result.outcomes.size());

  const std::vector<ExpandedRun> expanded = stream_experiment.expand();
  ASSERT_EQ(expanded.size(), stream_result.outcomes.size());
  for (std::size_t i = 0; i < memory_result.outcomes.size(); ++i) {
    // Per-run identity: the resolved spec at this grid point (the sweep
    // overrides change it), with capture configuration excluded.
    const std::uint64_t fp = spec_fingerprint(expanded[i].spec);
    const RunOutcome& mem = memory_result.outcomes[i];
    RunOutcome streamed = stream_result.outcomes[i];
    ASSERT_TRUE(streamed.error.empty()) << "run " << i << ": " << streamed.error;

    // The stream outcome carries its file and fingerprint...
    EXPECT_EQ(streamed.trace_path, dir.path() + "/run_" + std::to_string(i) + ".cohtrace");
    ASSERT_FALSE(streamed.trace_fingerprint.empty());
    EXPECT_EQ(streamed.trace_fingerprint.size(), 16u);

    // ...and stripping those two fields leaves the memory outcome, byte
    // for byte (the online fold is bit-identical to analyze()).
    streamed.trace_path.clear();
    streamed.trace_fingerprint.clear();
    streamed.wall_seconds = mem.wall_seconds;
    EXPECT_EQ(streamed.to_json().dump(), mem.to_json().dump()) << "run " << i;

    // The written stream replays to the reported metrics.
    const std::string path = stream_result.outcomes[i].trace_path;
    ASSERT_TRUE(fs::exists(path)) << path;
    trace::StreamTraceReader reader(path);
    EXPECT_EQ(reader.header().fingerprint, fp);
    EXPECT_EQ(stream_result.outcomes[i].trace_fingerprint, fingerprint_hex(fp)) << "run " << i;
    metrics::ConvergenceAccumulator acc(reader.header().initial, reader.header().visibility_radius,
                                        reader.header().stop_epsilon);
    core::ActivationRecord rec;
    while (reader.next(rec)) acc.add(rec);
    ASSERT_TRUE(reader.closed_cleanly()) << "run " << i;
    const metrics::ConvergenceReport replayed = acc.finish();
    EXPECT_EQ(replayed.converged, mem.report.converged) << "run " << i;
    EXPECT_EQ(replayed.final_diameter, mem.report.final_diameter) << "run " << i;
    EXPECT_EQ(replayed.rounds, mem.report.rounds) << "run " << i;
    EXPECT_EQ(replayed.activations, mem.report.activations) << "run " << i;
    EXPECT_EQ(replayed.worst_stretch, mem.report.worst_stretch) << "run " << i;
  }

  // Mode "off": bounded memory, online metrics, no files — same report.
  ExperimentSpec off_experiment = small_sweep();
  off_experiment.base.trace.mode = "off";
  const BatchResult off_result = BatchRunner(options).run(off_experiment);
  ASSERT_EQ(off_result.outcomes.size(), memory_result.outcomes.size());
  for (std::size_t i = 0; i < off_result.outcomes.size(); ++i) {
    RunOutcome off = off_result.outcomes[i];
    ASSERT_TRUE(off.error.empty()) << off.error;
    EXPECT_TRUE(off.trace_path.empty());
    off.wall_seconds = memory_result.outcomes[i].wall_seconds;
    EXPECT_EQ(off.to_json().dump(), memory_result.outcomes[i].to_json().dump()) << "run " << i;
  }

  // Stream mode without a path is a per-run error, not a crash.
  ExperimentSpec pathless = small_sweep();
  pathless.base.trace.mode = "stream";
  const BatchResult bad = BatchRunner(options).run(pathless);
  ASSERT_FALSE(bad.outcomes.empty());
  EXPECT_FALSE(bad.outcomes[0].error.empty());
  EXPECT_NE(bad.outcomes[0].error.find("trace"), std::string::npos);
}

}  // namespace
}  // namespace cohesion::run
