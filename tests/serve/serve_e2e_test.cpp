// Crash-injection acceptance battery for cohesion_serve (unit layer:
// job_table_test.cpp). Each test stands up a real daemon plus real
// `cohesion_serve --worker` processes (which spawn real `cohesion_run`
// runners) from the build tree over a Unix socket, injects the fault the
// ISSUE names — SIGKILL a worker mid-run, SIGTERM + restart the daemon
// mid-run, elastic grow/shrink, retry exhaustion — and holds the served
// report to contract 13: byte-identical to the fresh single-process
// `--no-timing` report under every partition history, or an explicit
// cohesion-supervised-partial/1 document naming the uncovered work.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "run/batch_runner.hpp"
#include "run/exit_codes.hpp"
#include "run/spec.hpp"
#include "serve/job_table.hpp"

namespace cohesion::serve {
namespace {

namespace fs = std::filesystem;

std::string build_dir() {
  char buf[4096];
  const ::ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return fs::path(buf).parent_path().string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Exit code of a finished child: WEXITSTATUS, or 128+signal (shell style).
int wait_code(::pid_t pid) {
  int st = 0;
  ::waitpid(pid, &st, 0);
  if (WIFEXITED(st)) return WEXITSTATUS(st);
  if (WIFSIGNALED(st)) return 128 + WTERMSIG(st);
  return -1;
}

::pid_t spawn_tool(const std::vector<std::string>& args, const std::string& log_path) {
  std::vector<std::string> copy = args;
  const ::pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int log = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log >= 0) {
    ::dup2(log, STDOUT_FILENO);
    ::dup2(log, STDERR_FILENO);
    if (log > STDERR_FILENO) ::close(log);
  }
  std::vector<char*> argv;
  for (std::string& a : copy) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  ::_exit(127);
}

bool wait_for(const std::function<bool()>& pred, double timeout_seconds = 90.0) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_seconds);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return true;
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

class ServeE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    serve_ = build_dir() + "/cohesion_serve";
    runner_ = build_dir() + "/cohesion_run";
    if (!fs::exists(serve_) || !fs::exists(runner_)) {
      GTEST_SKIP() << "cohesion_serve/cohesion_run not found next to the test binary";
    }
    dir_ = std::string(::testing::TempDir()) + "serve_e2e_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    address_ = "unix:" + dir_ + "/serve.sock";
    ledger_ = dir_ + "/serve.ledger";
    spec_path_ = dir_ + "/sweep.json";
    std::ofstream out(spec_path_);
    out << sweep_spec().to_json().dump(2) << '\n';
  }

  void TearDown() override {
    // Belt and braces: no child outlives its test.
    for (const ::pid_t pid : spawned_) {
      if (::kill(pid, 0) == 0) {
        ::kill(pid, SIGKILL);
        wait_code(pid);
      }
    }
    fs::remove_all(dir_);
  }

  /// launch_e2e's sharded sweep: 3 scheduler-k variants x 3 repeats = 9
  /// runs, each throttle-paced so faults land mid-shard.
  static run::ExperimentSpec sweep_spec() {
    run::ExperimentSpec e;
    e.name = "served";
    e.base.n = 8;
    e.base.seed = 2024;
    e.base.algorithm = {.type = "kknps", .params = Json::parse(R"({"k": 2})")};
    e.base.scheduler = {.type = "kasync", .params = Json::parse(R"({"xi": 0.5})")};
    e.base.initial = {.type = "line", .params = Json::parse(R"({"spacing": 0.9})")};
    e.base.stop.epsilon = 0.05;
    e.base.stop.max_activations = 20000;
    e.repeats = 3;
    e.axes.push_back({"scheduler.params.k", {Json(1), Json(2), Json(3)}});
    return e;
  }

  /// Wider grid (8 variants x 2 repeats) for the elastic-grow test: N=4
  /// needs at least 4 variants to be a meaningful partition.
  static run::ExperimentSpec wide_spec() {
    run::ExperimentSpec e = sweep_spec();
    e.name = "served_wide";
    e.repeats = 2;
    e.axes.clear();
    e.axes.push_back({"scheduler.params.k",
                      {Json(1), Json(2), Json(3), Json(4), Json(5), Json(6), Json(7), Json(8)}});
    return e;
  }

  void write_spec(const run::ExperimentSpec& e) {
    std::ofstream out(spec_path_, std::ios::trunc);
    out << e.to_json().dump(2) << '\n';
  }

  /// The acceptance reference: the fresh single-process `--no-timing`
  /// report computed from the very spec file the daemon serves, plus the
  /// trailing newline `--out` files carry.
  std::string expected_report() const {
    const run::ExperimentSpec e =
        run::ExperimentSpec::from_json(Json::parse_file(spec_path_));
    const run::BatchResult result = run::BatchRunner().run(e);
    return run::BatchRunner::report_json(e, result, false).dump(2) + "\n";
  }

  ::pid_t start_daemon(const std::vector<std::string>& extra = {}) {
    std::vector<std::string> args = {serve_,          "--listen",       address_,
                                     "--ledger",      ledger_,          "--poll-interval",
                                     "0.01",          "--status-interval", "0.5",
                                     "--backoff-base", "0.05",          "--backoff-max",
                                     "0.2",           "--jitter",       "0"};
    args.insert(args.end(), extra.begin(), extra.end());
    return track(spawn_tool(args, dir_ + "/daemon.log"));
  }

  ::pid_t start_worker(const std::string& name, std::size_t throttle_ms,
                       const std::vector<std::string>& extra = {}) {
    std::vector<std::string> args = {serve_,
                                     "--worker",
                                     address_,
                                     "--name",
                                     name,
                                     "--work-dir",
                                     dir_ + "/" + name + ".work",
                                     "--runner",
                                     runner_,
                                     "--throttle-ms",
                                     std::to_string(throttle_ms)};
    args.insert(args.end(), extra.begin(), extra.end());
    return track(spawn_tool(args, dir_ + "/" + name + ".log"));
  }

  ::pid_t start_submit_wait() {
    return track(spawn_tool({serve_, "--submit", spec_path_, address_, "--wait", "--out",
                             dir_ + "/report.json"},
                            dir_ + "/submit.log"));
  }

  [[nodiscard]] std::string daemon_log() const { return read_file(dir_ + "/daemon.log"); }
  [[nodiscard]] std::string ledger_bytes() const { return read_file(ledger_); }

  bool daemon_log_contains(const std::string& needle) const {
    return daemon_log().find(needle) != std::string::npos;
  }
  [[nodiscard]] std::size_t ledger_outcomes() const {
    return count_occurrences(ledger_bytes(), "\"event\":\"outcome\"");
  }
  [[nodiscard]] bool job_terminal_in_ledger() const {
    const std::string bytes = ledger_bytes();
    return bytes.find("\"event\":\"done\"") != std::string::npos ||
           bytes.find("\"event\":\"failed\"") != std::string::npos;
  }

  void term_and_expect(::pid_t pid, int code) {
    ::kill(pid, SIGTERM);
    EXPECT_EQ(wait_code(pid), code);
  }

  ::pid_t track(::pid_t pid) {
    spawned_.push_back(pid);
    return pid;
  }

  std::string serve_, runner_, dir_, address_, ledger_, spec_path_;
  std::vector<::pid_t> spawned_;
};

TEST_F(ServeE2E, TwoWorkersServeByteIdenticalReport) {
  const ::pid_t daemon = start_daemon();
  const ::pid_t submit = start_submit_wait();
  start_worker("w1", 20);
  start_worker("w2", 20);
  ASSERT_EQ(wait_code(submit), 0);
  EXPECT_EQ(read_file(dir_ + "/report.json"), expected_report());
  EXPECT_TRUE(daemon_log_contains("\"event\":\"done\"") || job_terminal_in_ledger());
  // Orderly shutdown: the op answers, then the daemon exits 0.
  EXPECT_EQ(wait_code(spawn_tool({serve_, "--shutdown", address_}, dir_ + "/shutdown.log")), 0);
  EXPECT_EQ(wait_code(daemon), 0);
}

TEST_F(ServeE2E, SigkilledWorkerShrinksPartitionReportStaysByteIdentical) {
  start_daemon();
  // All three workers join BEFORE the job exists, so the first lease
  // request partitions the grid straight to N=3 with every shard a full,
  // untouched 3-run slice. 400ms/run keeps each shard alive (~1.2s) well
  // past the 0.5s heartbeat cadence, so outcomes stream to the ledger
  // while every lease still has uncovered work.
  start_worker("w1", 400);
  start_worker("w2", 400);
  const ::pid_t victim = start_worker("w3", 400);
  ASSERT_TRUE(wait_for([&] { return daemon_log_contains("(3 active)"); })) << daemon_log();
  const ::pid_t submit = start_submit_wait();

  // Wait until every /3 shard is leased — the victim provably holds one —
  // and real work is streaming in, then SIGKILL mid-run: no flush, no
  // release, a true crash on a lease with unfinished work.
  ASSERT_TRUE(wait_for([&] {
    return daemon_log_contains("leased shard 0/3") &&
           daemon_log_contains("leased shard 1/3") &&
           daemon_log_contains("leased shard 2/3") &&
           ledger_outcomes() >= 1 && !job_terminal_in_ledger();
  })) << daemon_log();
  ::kill(victim, SIGKILL);
  ASSERT_EQ(wait_code(victim), 128 + SIGKILL);

  ASSERT_EQ(wait_code(submit), 0) << daemon_log() << read_file(dir_ + "/submit.log");
  EXPECT_EQ(read_file(dir_ + "/report.json"), expected_report());
  // The death was observed and answered with an elastic shrink.
  EXPECT_TRUE(daemon_log_contains("re-partitioned 3 -> 2")) << daemon_log();
}

TEST_F(ServeE2E, JoiningWorkersGrowPartitionReportStaysByteIdentical) {
  write_spec(wide_spec());
  start_daemon();
  const ::pid_t submit = start_submit_wait();
  start_worker("w1", 100);
  start_worker("w2", 100);
  ASSERT_TRUE(wait_for([&] { return daemon_log_contains("/2 to worker"); })) << daemon_log();

  // Two late joiners: their idle lease requests grow the partition to 4,
  // revoking the outstanding leases gracefully (journals flush, outcomes
  // fold back). Whether that is one step (2 -> 4) or two (2 -> 3 -> 4)
  // depends on join timing; only the destination is contractual.
  start_worker("w3", 100);
  start_worker("w4", 100);
  ASSERT_TRUE(wait_for([&] { return daemon_log_contains("-> 4 shards"); })) << daemon_log();
  EXPECT_TRUE(daemon_log_contains("re-partitioned 2 -> ")) << daemon_log();

  ASSERT_EQ(wait_code(submit), 0) << daemon_log() << read_file(dir_ + "/submit.log");
  EXPECT_EQ(read_file(dir_ + "/report.json"), expected_report());
  EXPECT_TRUE(daemon_log_contains("/4 to worker")) << daemon_log();
}

TEST_F(ServeE2E, DaemonRestartResumesFromLedgerByteIdentical) {
  const ::pid_t daemon = start_daemon();
  const ::pid_t submit = start_submit_wait();
  start_worker("w1", 300);
  start_worker("w2", 300);
  ASSERT_TRUE(wait_for([&] { return ledger_outcomes() >= 1 && !job_terminal_in_ledger(); }))
      << daemon_log();

  // SIGTERM mid-run: the daemon flushes its ledger and exits 4, exactly
  // like an interrupted cohesion_run. Workers and the waiting submit are
  // now talking to nobody — both retry their connects under backoff.
  term_and_expect(daemon, run::kExitInterrupted);
  const std::size_t journaled = ledger_outcomes();
  start_daemon();

  ASSERT_EQ(wait_code(submit), 0) << daemon_log() << read_file(dir_ + "/submit.log");
  EXPECT_EQ(read_file(dir_ + "/report.json"), expected_report());
  // The successor started from the predecessor's ledger, not from zero:
  // its startup line counts the replayed job + outcome events.
  EXPECT_GE(journaled, 1u);
  EXPECT_GE(count_occurrences(daemon_log(), "events replayed)"), 2u) << daemon_log();
  EXPECT_TRUE(daemon_log_contains("interrupted (SIGTERM/SIGINT)")) << daemon_log();
}

TEST_F(ServeE2E, RetryExhaustionDegradesToSupervisedPartial) {
  // A runner that always dies with the transient exit code exercises the
  // full attempt/backoff budget before the daemon gives up.
  const std::string bad_runner = dir_ + "/bad_runner.sh";
  {
    std::ofstream out(bad_runner);
    out << "#!/bin/sh\nexit 3\n";
  }
  fs::permissions(bad_runner, fs::perms::owner_all | fs::perms::group_exec |
                                  fs::perms::others_exec);

  start_daemon({"--max-attempts", "2", "--lease-timeout", "5"});
  const ::pid_t submit = start_submit_wait();
  start_worker("w1", 0, {"--runner", bad_runner});

  // The job fails loudly: exit 1 at the submitter, and the report file is
  // the explicit supervised-partial document naming the uncovered work.
  ASSERT_EQ(wait_code(submit), run::kExitPermanent)
      << daemon_log() << read_file(dir_ + "/submit.log");
  const Json doc = Json::parse_file(dir_ + "/report.json");
  EXPECT_EQ(doc.string_or("format", ""), kSupervisedPartialFormat);
  EXPECT_FALSE(doc.at("complete").as_bool());
  EXPECT_EQ(doc.at("uncovered_variants").items().size(), 3u);
  EXPECT_GE(doc.at("uncovered_shards").items().size(), 1u);
  EXPECT_NE(doc.string_or("last_failure", "").find("exit 3"), std::string::npos);
  EXPECT_TRUE(daemon_log_contains("[retryable]")) << daemon_log();
}

TEST_F(ServeE2E, SigtermedWorkerReleasesLeaseSuccessorCompletes) {
  start_daemon();
  const ::pid_t submit = start_submit_wait();
  const ::pid_t worker = start_worker("w1", 150);
  ASSERT_TRUE(wait_for([&] { return ledger_outcomes() >= 1 && !job_terminal_in_ledger(); }))
      << daemon_log();

  // Graceful stop: the worker SIGTERMs its runner (journal flushes),
  // releases the lease with every journaled outcome, and exits 4.
  term_and_expect(worker, run::kExitInterrupted);
  const std::size_t salvaged = ledger_outcomes();
  EXPECT_GE(salvaged, 1u);

  start_worker("w2", 20);
  ASSERT_EQ(wait_code(submit), 0) << daemon_log() << read_file(dir_ + "/submit.log");
  EXPECT_EQ(read_file(dir_ + "/report.json"), expected_report());
}

TEST_F(ServeE2E, WorkerExitsTransientNetworkWhenDaemonNeverAppears) {
  const ::pid_t worker = track(spawn_tool(
      {serve_, "--worker", "unix:" + dir_ + "/nobody.sock", "--work-dir", dir_ + "/w.work",
       "--runner", runner_, "--connect-attempts", "2", "--connect-backoff", "0.05"},
      dir_ + "/lonely.log"));
  EXPECT_EQ(wait_code(worker), run::kExitTransientNetwork);
}

}  // namespace
}  // namespace cohesion::serve
