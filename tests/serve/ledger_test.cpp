#include "serve/ledger.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "run/exit_codes.hpp"

namespace cohesion::serve {
namespace {

namespace fs = std::filesystem;

/// Fresh path under the system temp dir; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("cohesion_ledger_" + tag + "_" + std::to_string(::getpid())))
                  .string()) {
    fs::remove(path_);
  }
  ~TempFile() { fs::remove(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

Json job_event(std::uint64_t id) {
  Json e = Json::object();
  e.set("event", "job");
  e.set("job", id);
  e.set("name", "n" + std::to_string(id));
  e.set("spec", Json::object());
  e.set("total_runs", 4);
  return e;
}

TEST(JobLedgerTest, FreshFileGetsHeaderAndNoEvents) {
  TempFile f("fresh");
  JobLedger::Loaded loaded;
  auto ledger = JobLedger::open(f.path(), loaded);
  ASSERT_NE(ledger, nullptr);
  EXPECT_TRUE(loaded.events.empty());
  EXPECT_EQ(loaded.dropped_tail_bytes, 0u);
  const std::string bytes = read_file(f.path());
  EXPECT_NE(bytes.find(kLedgerFormat), std::string::npos);
  EXPECT_EQ(bytes.back(), '\n');
}

TEST(JobLedgerTest, ReopenReplaysEventsInOrder) {
  TempFile f("replay");
  {
    JobLedger::Loaded loaded;
    auto ledger = JobLedger::open(f.path(), loaded);
    ledger->append(job_event(1));
    Json done = Json::object();
    done.set("event", "done");
    done.set("job", 1);
    ledger->append(done);
  }
  JobLedger::Loaded loaded;
  auto ledger = JobLedger::open(f.path(), loaded);
  ASSERT_EQ(loaded.events.size(), 2u);
  EXPECT_EQ(loaded.events[0].event, "job");
  EXPECT_EQ(loaded.events[0].job, 1u);
  EXPECT_EQ(loaded.events[0].payload.string_or("name", ""), "n1");
  EXPECT_EQ(loaded.events[1].event, "done");
}

TEST(JobLedgerTest, TornTailIsDroppedAndTruncated) {
  TempFile f("torn");
  {
    JobLedger::Loaded loaded;
    auto ledger = JobLedger::open(f.path(), loaded);
    ledger->append(job_event(1));
  }
  const std::string intact = read_file(f.path());
  write_file(f.path(), intact + R"({"event":"outcome","job":1,"run":{"ind)");

  JobLedger::Loaded loaded;
  auto ledger = JobLedger::open(f.path(), loaded);
  ASSERT_EQ(loaded.events.size(), 1u);
  EXPECT_GT(loaded.dropped_tail_bytes, 0u);
  // The torn bytes are physically gone: appends continue at a clean line.
  EXPECT_EQ(read_file(f.path()), intact);
  ledger->append(job_event(2));
  JobLedger::Loaded again;
  auto reopened = JobLedger::open(f.path(), again);
  ASSERT_EQ(again.events.size(), 2u);
  EXPECT_EQ(again.events[1].job, 2u);
}

TEST(JobLedgerTest, WrongFormatMarkerIsCorruptionNotCrash) {
  TempFile f("format");
  write_file(f.path(), "{\"format\":\"some-other-ledger/9\"}\n");
  JobLedger::Loaded loaded;
  EXPECT_THROW(
      {
        try {
          JobLedger::open(f.path(), loaded);
        } catch (const run::TransientError&) {
          ADD_FAILURE() << "wrong format must not be classified transient";
          throw;
        }
      },
      std::runtime_error);
}

TEST(JobLedgerTest, MalformedMiddleLineIsCorruptionNotCrash) {
  TempFile f("middle");
  {
    JobLedger::Loaded loaded;
    auto ledger = JobLedger::open(f.path(), loaded);
    ledger->append(job_event(1));
    ledger->append(job_event(2));
  }
  // Corrupt the *first* event line, keeping the newline structure: this is
  // disk corruption, not a crash tail, and must be refused loudly.
  std::string bytes = read_file(f.path());
  const std::size_t first_nl = bytes.find('\n');
  bytes[first_nl + 1] = '#';
  write_file(f.path(), bytes);
  JobLedger::Loaded loaded;
  EXPECT_THROW(JobLedger::open(f.path(), loaded), std::runtime_error);
}

TEST(JobLedgerTest, EmptyFileIsTreatedAsFresh) {
  TempFile f("empty");
  write_file(f.path(), "");
  JobLedger::Loaded loaded;
  auto ledger = JobLedger::open(f.path(), loaded);
  ASSERT_NE(ledger, nullptr);
  EXPECT_TRUE(loaded.events.empty());
  EXPECT_NE(read_file(f.path()).find(kLedgerFormat), std::string::npos);
}

}  // namespace
}  // namespace cohesion::serve
