#include "serve/protocol.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <thread>

#include "run/exit_codes.hpp"

namespace cohesion::serve {
namespace {

namespace fs = std::filesystem;

TEST(AddressTest, ParsesUnixAndTcpForms) {
  const Address u = Address::parse("unix:/tmp/cohesion.sock");
  EXPECT_TRUE(u.is_unix);
  EXPECT_EQ(u.path, "/tmp/cohesion.sock");
  EXPECT_NE(u.describe().find("/tmp/cohesion.sock"), std::string::npos);

  const Address t = Address::parse("127.0.0.1:9100");
  EXPECT_FALSE(t.is_unix);
  EXPECT_EQ(t.host, "127.0.0.1");
  EXPECT_EQ(t.port, 9100);

  const Address named = Address::parse("localhost:80");
  EXPECT_EQ(named.host, "localhost");
  EXPECT_EQ(named.port, 80);
}

TEST(AddressTest, RejectsMalformedForms) {
  EXPECT_THROW(Address::parse(""), std::runtime_error);
  EXPECT_THROW(Address::parse("unix:"), std::runtime_error);
  EXPECT_THROW(Address::parse("no-port"), std::runtime_error);
  EXPECT_THROW(Address::parse("host:notaport"), std::runtime_error);
  EXPECT_THROW(Address::parse("host:99999"), std::runtime_error);
  EXPECT_THROW(Address::parse("host:"), std::runtime_error);
}

TEST(LineConnectionTest, RoundTripsDocumentsOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  LineConnection a(fds[0]);
  LineConnection b(fds[1]);

  Json msg = Json::object();
  msg.set("op", "hello");
  msg.set("n", 42);
  a.send(msg);
  auto got = b.receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->string_or("op", ""), "hello");
  EXPECT_EQ(got->at("n").as_uint(), 42u);

  // Two messages written back to back arrive as two documents; the second
  // is visible via has_buffered_line before any further socket read.
  b.send(msg);
  b.send(Json::object());
  auto first = a.receive();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(a.has_buffered_line());
  auto second = a.receive();
  ASSERT_TRUE(second.has_value());
}

TEST(LineConnectionTest, CleanEofIsNulloptMidLineEofThrows) {
  {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    LineConnection reader(fds[0]);
    LineConnection writer(fds[1]);
    writer.close_now();
    EXPECT_FALSE(reader.receive().has_value());
  }
  {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    LineConnection reader(fds[0]);
    // Half a message, then the peer dies: torn data must not be parsed.
    const char torn[] = "{\"op\":\"tr";
    ASSERT_GT(::send(fds[1], torn, sizeof(torn) - 1, 0), 0);
    ::close(fds[1]);
    EXPECT_THROW(reader.receive(), run::TransientNetworkError);
  }
}

TEST(LineConnectionTest, InvalidJsonLineIsAProtocolBug) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  LineConnection reader(fds[0]);
  const char junk[] = "not json\n";
  ASSERT_GT(::send(fds[1], junk, sizeof(junk) - 1, 0), 0);
  ::close(fds[1]);
  EXPECT_THROW(
      {
        try {
          reader.receive();
        } catch (const run::TransientNetworkError&) {
          ADD_FAILURE() << "bad JSON is a bug, not a transient condition";
          throw;
        }
      },
      std::runtime_error);
}

TEST(UnixSocketTest, ListenConnectAcceptRoundTrip) {
  const std::string sock =
      (fs::temp_directory_path() / ("cohesion_proto_" + std::to_string(::getpid()) + ".sock"))
          .string();
  const Address addr = Address::parse("unix:" + sock);
  const int listen_fd = listen_on(addr);
  ASSERT_GE(listen_fd, 0);

  std::thread client([&] {
    LineConnection c(connect_to(addr, 5.0));
    Json hello = Json::object();
    hello.set("op", "hello");
    c.send(hello);
    auto reply = c.receive();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->string_or("op", ""), "ack");
  });

  const int accepted = accept_on(listen_fd, 5.0);
  ASSERT_GE(accepted, 0);
  LineConnection server(accepted);
  auto msg = server.receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->string_or("op", ""), "hello");
  Json ack = Json::object();
  ack.set("op", "ack");
  server.send(ack);
  client.join();

  ::close(listen_fd);
  fs::remove(sock);
}

TEST(UnixSocketTest, StaleSocketPathIsReclaimedByListen) {
  const std::string sock =
      (fs::temp_directory_path() / ("cohesion_stale_" + std::to_string(::getpid()) + ".sock"))
          .string();
  const Address addr = Address::parse("unix:" + sock);
  const int first = listen_on(addr);
  ASSERT_GE(first, 0);
  ::close(first);  // dead daemon leaves the path behind
  const int second = listen_on(addr);
  EXPECT_GE(second, 0);
  ::close(second);
  fs::remove(sock);
}

TEST(UnixSocketTest, ConnectToAbsentDaemonIsTransientNetwork) {
  const std::string sock =
      (fs::temp_directory_path() / ("cohesion_nobody_" + std::to_string(::getpid()) + ".sock"))
          .string();
  fs::remove(sock);
  EXPECT_THROW(connect_to(Address::parse("unix:" + sock), 0.5), run::TransientNetworkError);
}

TEST(TcpSocketTest, ConnectRefusedIsTransientNetwork) {
  // Grab a free port by listening and closing: connecting to it afterwards
  // is refused, the canonical "daemon not up yet" condition. (parse()
  // rejects port 0 on purpose, so build the ephemeral-bind address by hand.)
  Address addr;
  addr.host = "127.0.0.1";
  addr.port = 0;
  const int listen_fd = listen_on(addr);
  ASSERT_GE(listen_fd, 0);
  sockaddr_storage ss{};
  socklen_t len = sizeof(ss);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&ss), &len), 0);
  const std::uint16_t port =
      ntohs(reinterpret_cast<const sockaddr_in*>(&ss)->sin_port);
  ::close(listen_fd);
  EXPECT_THROW(connect_to(Address::parse("127.0.0.1:" + std::to_string(port)), 0.5),
               run::TransientNetworkError);
}

TEST(ExitCodeTest, TransientNetworkIsRetryable) {
  EXPECT_TRUE(run::exit_code_retryable(run::kExitTransientNetwork));
  EXPECT_EQ(run::kExitTransientNetwork, 5);
}

}  // namespace
}  // namespace cohesion::serve
