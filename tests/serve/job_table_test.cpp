// Unit layer for the serve scheduler: every lease/retry/re-partition
// decision as a pure state transition under an injected clock — no
// sockets, no processes. The process-level acceptance bar (byte-identity
// of served reports under crash schedules) lives in serve_e2e_test.cpp.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "run/batch_runner.hpp"
#include "run/exit_codes.hpp"
#include "serve/job_table.hpp"

namespace cohesion::serve {
namespace {

/// A 6-variant x 2-repeat grid. The JobTable never executes anything, so
/// the spec only has to parse and expand consistently.
run::Json sweep_echo() {
  run::ExperimentSpec e;
  e.name = "serve_unit";
  e.base.n = 8;
  e.base.seed = 2024;
  e.base.algorithm = {.type = "kknps", .params = Json::parse(R"({"k": 2})")};
  e.base.scheduler = {.type = "kasync", .params = Json::parse(R"({"xi": 0.5})")};
  e.base.initial = {.type = "line", .params = Json::parse(R"({"spacing": 0.9})")};
  e.base.stop.epsilon = 0.05;
  e.base.stop.max_activations = 1000;
  e.repeats = 2;
  e.axes.push_back({"scheduler.params.k", {Json(1), Json(2), Json(3), Json(4), Json(5), Json(6)}});
  return e.to_json();
}

run::RunOutcome outcome_for(std::size_t index, std::size_t repeats,
                            const std::string& error = "") {
  run::RunOutcome o;
  o.index = index;
  o.variant = index / repeats;
  o.repeat = index % repeats;
  o.label = "v" + std::to_string(o.variant);
  o.seed = 1000 + index;
  o.n = 8;
  o.converged = error.empty();
  o.error = error;
  return o;
}

std::vector<run::RunOutcome> shard_outcomes(std::size_t shard, std::size_t of,
                                            std::size_t variants, std::size_t repeats) {
  std::vector<run::RunOutcome> out;
  for (std::size_t v = shard; v < variants; v += of) {
    for (std::size_t r = 0; r < repeats; ++r) out.push_back(outcome_for(v * repeats + r, repeats));
  }
  return out;
}

ServeConfig quick_config() {
  ServeConfig c;
  c.retry.max_attempts = 2;
  c.retry.base_delay_seconds = 1.0;
  c.retry.jitter = 0.0;
  c.lease_timeout_seconds = 5.0;
  return c;
}

class JobTableTest : public ::testing::Test {
 protected:
  Effects fx_;
  JobTable table_{quick_config()};

  std::uint64_t add_default_job() { return table_.add_job("j", sweep_echo(), 0.0, fx_); }
};

TEST_F(JobTableTest, SingleWorkerGetsWholeGridAsOneShard) {
  const std::uint64_t job = add_default_job();
  const std::uint64_t w = table_.worker_joined("a");
  auto lease = table_.request_lease(w, 0.0, fx_);
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->job, job);
  EXPECT_EQ(lease->shard, 0u);
  EXPECT_EQ(lease->of, 1u);
  // The echo travels with the lease — the worker writes it to disk.
  EXPECT_EQ(lease->spec.dump(), sweep_echo().dump());
  // The whole grid is leased: nothing left for a second request.
  EXPECT_FALSE(table_.request_lease(w, 0.0, fx_).has_value());

  table_.complete(lease->id, shard_outcomes(0, 1, 6, 2), 1.0, fx_);
  EXPECT_TRUE(table_.job_done(job));
  EXPECT_EQ(table_.job_exit_code(job), run::kExitSuccess);
}

TEST_F(JobTableTest, DoneReportIsReportJsonFromEcho) {
  const std::uint64_t job = add_default_job();
  const std::uint64_t w = table_.worker_joined("a");
  auto lease = table_.request_lease(w, 0.0, fx_);
  std::vector<run::RunOutcome> all = shard_outcomes(0, 1, 6, 2);
  table_.complete(lease->id, all, 1.0, fx_);
  const run::Json expected = run::BatchRunner::report_json_from(
      run::ExperimentSpec::from_json(sweep_echo()).to_json(), all);
  EXPECT_EQ(table_.job_report(job).dump(2), expected.dump(2));
}

TEST_F(JobTableTest, TwoWorkersPartitionTheGrid) {
  add_default_job();
  const std::uint64_t w1 = table_.worker_joined("a");
  const std::uint64_t w2 = table_.worker_joined("b");
  auto l1 = table_.request_lease(w1, 0.0, fx_);
  ASSERT_TRUE(l1.has_value());
  EXPECT_EQ(l1->of, 2u);
  auto l2 = table_.request_lease(w2, 0.0, fx_);
  ASSERT_TRUE(l2.has_value());
  EXPECT_EQ(l2->of, 2u);
  EXPECT_NE(l1->shard, l2->shard);
}

TEST_F(JobTableTest, JoiningWorkersTriggerElasticGrowAndRevocation) {
  const std::uint64_t job = add_default_job();
  const std::uint64_t w1 = table_.worker_joined("a");
  const std::uint64_t w2 = table_.worker_joined("b");
  auto l1 = table_.request_lease(w1, 0.0, fx_);
  auto l2 = table_.request_lease(w2, 0.0, fx_);
  ASSERT_TRUE(l1 && l2);

  // Two more workers join: the idle request re-partitions 2 -> 4,
  // revoking the outstanding leases gracefully.
  const std::uint64_t w3 = table_.worker_joined("c");
  const std::uint64_t w4 = table_.worker_joined("d");
  auto l3 = table_.request_lease(w3, 1.0, fx_);
  ASSERT_TRUE(l3.has_value());
  EXPECT_EQ(l3->of, 4u);
  // The old leases answer invalid on their next heartbeat...
  EXPECT_FALSE(table_.heartbeat(l1->id, 100, 1, {}, 1.0, fx_));
  // ...and their journaled outcomes still fold in via release.
  table_.release(l1->id, shard_outcomes(0, 2, 6, 2), 1.1, fx_);
  auto l4 = table_.request_lease(w4, 1.2, fx_);
  ASSERT_TRUE(l4.has_value());
  EXPECT_EQ(l4->of, 4u);

  // Finish the rest under N=4: every uncovered variant is reachable.
  table_.release(l2->id, {}, 1.3, fx_);
  std::vector<std::uint64_t> workers = {w1, w2};
  for (std::size_t i = 0; !table_.job_done(job) && i < 16; ++i) {
    for (const std::uint64_t w : workers) {
      auto lease = table_.request_lease(w, 2.0 + static_cast<double>(i), fx_);
      if (lease) {
        table_.complete(lease->id,
                        shard_outcomes(lease->shard, lease->of, 6, 2), 2.0, fx_);
      }
    }
    if (l3) {
      table_.complete(l3->id, shard_outcomes(l3->shard, l3->of, 6, 2), 2.0, fx_);
      l3.reset();
    }
    if (l4) {
      table_.complete(l4->id, shard_outcomes(l4->shard, l4->of, 6, 2), 2.0, fx_);
      l4.reset();
    }
  }
  EXPECT_TRUE(table_.job_done(job));
}

TEST_F(JobTableTest, WorkerDeathPenalizesAndShrinksThePartition) {
  const std::uint64_t job = add_default_job();
  const std::uint64_t w1 = table_.worker_joined("a");
  const std::uint64_t w2 = table_.worker_joined("b");
  const std::uint64_t w3 = table_.worker_joined("c");
  auto l1 = table_.request_lease(w1, 0.0, fx_);
  auto l2 = table_.request_lease(w2, 0.0, fx_);
  auto l3 = table_.request_lease(w3, 0.0, fx_);
  ASSERT_TRUE(l1 && l2 && l3);
  EXPECT_EQ(l1->of, 3u);

  // w3's connection dies. Its lease costs an attempt; the job re-partitions
  // 3 -> 2, revoking the two survivors' leases gracefully.
  Effects fx;
  table_.worker_left(w3, 1.0, fx);
  bool saw_repartition = false;
  for (const std::string& note : fx.notes) {
    if (note.find("re-partitioned 3 -> 2") != std::string::npos) saw_repartition = true;
  }
  EXPECT_TRUE(saw_repartition);
  EXPECT_FALSE(table_.heartbeat(l1->id, 100, 1, {}, 1.0, fx_));
  table_.release(l1->id, {}, 1.0, fx_);
  table_.release(l2->id, {}, 1.0, fx_);

  // The survivors re-lease under N=2 and finish; the merged outcome set is
  // complete even though partitions 3 and 2 both contributed.
  for (double t = 2.0; !table_.job_done(job) && t < 64.0; t += 1.0) {
    for (const std::uint64_t w : {w1, w2}) {
      auto lease = table_.request_lease(w, t, fx_);
      if (!lease) continue;
      EXPECT_EQ(lease->of, 2u);
      table_.complete(lease->id, shard_outcomes(lease->shard, lease->of, 6, 2), t, fx_);
    }
  }
  EXPECT_TRUE(table_.job_done(job));
}

TEST_F(JobTableTest, WedgedLeaseExpiresOnlyWithoutJournalGrowth) {
  add_default_job();
  const std::uint64_t w = table_.worker_joined("a");
  auto lease = table_.request_lease(w, 0.0, fx_);
  ASSERT_TRUE(lease.has_value());

  // Growth keeps the lease alive past the nominal timeout...
  EXPECT_TRUE(table_.heartbeat(lease->id, 100, 1, {}, 4.0, fx_));
  table_.tick(8.0, fx_);
  EXPECT_TRUE(table_.heartbeat(lease->id, 200, 2, {}, 8.5, fx_));
  // ...but heartbeats without growth do not: wedged == dead.
  EXPECT_TRUE(table_.heartbeat(lease->id, 200, 2, {}, 12.0, fx_));
  Effects fx;
  table_.tick(14.0, fx);  // 5.5s since last *growth* at t=8.5
  bool expired = false;
  for (const std::string& note : fx.notes) {
    if (note.find("expired") != std::string::npos) expired = true;
  }
  EXPECT_TRUE(expired);
  EXPECT_FALSE(table_.heartbeat(lease->id, 200, 2, {}, 14.1, fx_));
}

TEST_F(JobTableTest, RetryableFailureBacksOffThenPoisonsAfterBudget) {
  const std::uint64_t job = add_default_job();
  const std::uint64_t w = table_.worker_joined("a");
  auto lease = table_.request_lease(w, 0.0, fx_);
  ASSERT_TRUE(lease.has_value());
  table_.fail(lease->id, run::kExitTransient, "crash", {}, 1.0, fx_);
  EXPECT_FALSE(table_.job_failed(job));
  // Backoff window: nothing leasable immediately...
  EXPECT_FALSE(table_.request_lease(w, 1.01, fx_).has_value());
  // ...but the deterministic backoff (base 1s, no jitter) passes.
  auto retry = table_.request_lease(w, 2.5, fx_);
  ASSERT_TRUE(retry.has_value());
  // Second failure exhausts max_attempts=2: every variant poisoned, no
  // leases outstanding -> the job fails with an explicit partial doc.
  table_.fail(retry->id, run::kExitTransient, "crash again", {}, 3.0, fx_);
  EXPECT_TRUE(table_.job_failed(job));
  EXPECT_EQ(table_.job_exit_code(job), run::kExitPermanent);
  const run::Json doc = table_.job_report(job);
  EXPECT_EQ(doc.string_or("format", ""), kSupervisedPartialFormat);
  EXPECT_EQ(doc.at("uncovered_variants").items().size(), 6u);
  EXPECT_GE(doc.at("uncovered_shards").items().size(), 1u);
}

TEST_F(JobTableTest, PermanentExitPoisonsWithoutRetry) {
  const std::uint64_t job = add_default_job();
  const std::uint64_t w = table_.worker_joined("a");
  auto lease = table_.request_lease(w, 0.0, fx_);
  ASSERT_TRUE(lease.has_value());
  table_.fail(lease->id, run::kExitUsage, "bad runner", {}, 1.0, fx_);
  EXPECT_TRUE(table_.job_failed(job));
}

TEST_F(JobTableTest, PartialCoverageFailureNamesTheUncoveredWork) {
  const std::uint64_t job = add_default_job();
  const std::uint64_t w1 = table_.worker_joined("a");
  const std::uint64_t w2 = table_.worker_joined("b");
  auto l1 = table_.request_lease(w1, 0.0, fx_);
  auto l2 = table_.request_lease(w2, 0.0, fx_);
  ASSERT_TRUE(l1 && l2);
  // Shard l1 completes; shard l2 fails permanently.
  table_.complete(l1->id, shard_outcomes(l1->shard, 2, 6, 2), 1.0, fx_);
  table_.fail(l2->id, run::kExitPermanent, "spec rejected", {}, 1.0, fx_);
  ASSERT_TRUE(table_.job_failed(job));
  const run::Json doc = table_.job_report(job);
  EXPECT_EQ(doc.string_or("format", ""), kSupervisedPartialFormat);
  EXPECT_EQ(doc.at("covered_runs").as_uint(), 6u);
  EXPECT_EQ(doc.at("uncovered_variants").items().size(), 3u);
  ASSERT_EQ(doc.at("uncovered_shards").items().size(), 1u);
  EXPECT_EQ(doc.at("uncovered_shards").items()[0].as_uint(), l2->shard);
  // Everything recovered is still in the doc.
  EXPECT_EQ(doc.at("runs").items().size(), 6u);
}

TEST_F(JobTableTest, ConflictingCompletedOutcomesFailTheJobNamingTheIndex) {
  const std::uint64_t job = add_default_job();
  const std::uint64_t w = table_.worker_joined("a");
  auto lease = table_.request_lease(w, 0.0, fx_);
  ASSERT_TRUE(lease.has_value());
  run::RunOutcome a = outcome_for(3, 2);
  run::RunOutcome b = outcome_for(3, 2);
  b.seed = a.seed + 1;  // same grid index, different bytes
  Effects fx;
  const bool valid1 = table_.heartbeat(lease->id, 10, 1, {a}, 0.5, fx);
  EXPECT_TRUE(valid1);
  table_.heartbeat(lease->id, 20, 2, {b}, 0.6, fx);
  ASSERT_TRUE(table_.job_failed(job));
  const run::Json doc = table_.job_report(job);
  const std::string err = doc.string_or("merge_error", "");
  EXPECT_NE(err.find("index 3"), std::string::npos) << err;
}

TEST_F(JobTableTest, CompletedOutcomeSupersedesErrored) {
  const std::uint64_t job = add_default_job();
  const std::uint64_t w = table_.worker_joined("a");
  auto lease = table_.request_lease(w, 0.0, fx_);
  ASSERT_TRUE(lease.has_value());
  table_.heartbeat(lease->id, 10, 1, {outcome_for(0, 2, "transient engine error")}, 0.5, fx_);
  // The retried run completes: the error was environmental, the completed
  // outcome is the run's one true result.
  table_.heartbeat(lease->id, 20, 2, {outcome_for(0, 2)}, 0.6, fx_);
  std::vector<run::RunOutcome> rest = shard_outcomes(0, 1, 6, 2);
  table_.complete(lease->id, rest, 1.0, fx_);
  EXPECT_TRUE(table_.job_done(job));
  EXPECT_EQ(table_.job_exit_code(job), run::kExitSuccess);
}

TEST_F(JobTableTest, LedgerReplayRestoresJobsOutcomesAndTerminalStates) {
  // Simulate the daemon's restart path: replay a job, some outcomes, and
  // check the rebuilt table resumes exactly where the old one stopped.
  JobTable fresh(quick_config());
  fresh.replay_job(7, "replayed", sweep_echo());
  for (const run::RunOutcome& o : shard_outcomes(0, 2, 6, 2)) fresh.replay_outcome(7, o);
  EXPECT_FALSE(fresh.job_terminal(7));

  const std::uint64_t w = fresh.worker_joined("a");
  Effects fx;
  // Half the grid is covered; one worker leases the remainder as 0/1 and
  // only the uncovered variants are left to run.
  auto lease = fresh.request_lease(w, 0.0, fx);
  ASSERT_TRUE(lease.has_value());
  fresh.complete(lease->id, shard_outcomes(1, 2, 6, 2), 1.0, fx);
  EXPECT_TRUE(fresh.job_done(7));

  JobTable sealed(quick_config());
  sealed.replay_job(9, "sealed", sweep_echo());
  sealed.replay_terminal(9, /*failed=*/true);
  EXPECT_TRUE(sealed.job_failed(9));
  // Job ids stay stable: the next fresh id continues past the replayed one.
  Effects fx2;
  EXPECT_EQ(sealed.add_job("next", sweep_echo(), 0.0, fx2), 10u);
}

TEST_F(JobTableTest, InvalidSpecIsRejectedAtSubmit) {
  Json bad = Json::object();
  bad.set("nonsense", 1);
  EXPECT_THROW(table_.add_job("bad", bad, 0.0, fx_), std::exception);
}

}  // namespace
}  // namespace cohesion::serve
