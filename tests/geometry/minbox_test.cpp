#include "geometry/minbox.hpp"

#include <gtest/gtest.h>

#include <random>

namespace cohesion::geom {
namespace {

TEST(MinBox, Basic) {
  const MinBox b = minbox({{0.0, 0.0}, {2.0, 1.0}, {-1.0, 3.0}});
  EXPECT_TRUE(almost_equal(b.lo, {-1.0, 0.0}));
  EXPECT_TRUE(almost_equal(b.hi, {2.0, 3.0}));
  EXPECT_TRUE(almost_equal(b.center(), {0.5, 1.5}));
  EXPECT_DOUBLE_EQ(b.width(), 3.0);
  EXPECT_DOUBLE_EQ(b.height(), 3.0);
}

TEST(MinBox, Empty) {
  const MinBox b = minbox({});
  EXPECT_DOUBLE_EQ(b.width(), 0.0);
  EXPECT_DOUBLE_EQ(b.height(), 0.0);
}

TEST(MinBox, SinglePoint) {
  const MinBox b = minbox({{4.0, -2.0}});
  EXPECT_TRUE(almost_equal(b.center(), {4.0, -2.0}));
  EXPECT_DOUBLE_EQ(b.diagonal(), 0.0);
}

TEST(MinBox, ContainsAllPoints) {
  std::mt19937_64 rng(66);
  std::uniform_real_distribution<double> u(-20.0, 20.0);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Vec2> pts;
    for (int i = 0; i < 30; ++i) pts.push_back({u(rng), u(rng)});
    const MinBox b = minbox(pts);
    for (const Vec2 p : pts) EXPECT_TRUE(b.contains(p));
    // Shrinking on any side loses some point.
    const MinBox shrunk{b.lo + Vec2{1e-3, 1e-3}, b.hi - Vec2{1e-3, 1e-3}};
    bool lost = false;
    for (const Vec2 p : pts) {
      if (!shrunk.contains(p, 0.0)) lost = true;
    }
    EXPECT_TRUE(lost);
  }
}

TEST(MinBox, CenterIsGcmFixedPointForSymmetricSets) {
  // For a centrally symmetric set the minbox centre is the symmetry centre.
  const std::vector<Vec2> pts{{1.0, 2.0}, {-1.0, -2.0}, {2.0, -1.0}, {-2.0, 1.0}};
  EXPECT_TRUE(almost_equal(minbox(pts).center(), {0.0, 0.0}));
}

}  // namespace
}  // namespace cohesion::geom
