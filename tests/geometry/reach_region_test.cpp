// Property tests for the reach regions R^r_{Y0}(X0, X1) of paper §3.2.1:
// Monte-Carlo verification of Lemma 1 (stationary neighbour) and Lemma 2
// (base region extension, moving neighbour).
#include "geometry/reach_region.hpp"

#include <gtest/gtest.h>

#include <random>

#include "geometry/angles.hpp"
#include "geometry/safe_region.hpp"

namespace cohesion::geom {
namespace {

TEST(ReachRegion, DegenerateEqualsSafeRegion) {
  // Observation 1(i): R^r_{Y0}(X0, X0) coincides with S^r_{Y0}(X0).
  const Vec2 y0{0.0, 0.0}, x0{1.0, 0.0};
  const double r = 0.125;
  const ReachRegion region(y0, x0, x0, r);
  const Circle safe = kknps_safe_region(y0, x0, r);
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> u(-0.3, 0.5);
  for (int i = 0; i < 2000; ++i) {
    const Vec2 p{u(rng), u(rng)};
    EXPECT_EQ(region.contains(p, 1e-7), safe.contains(p, 1e-7)) << p.x << "," << p.y;
  }
}

TEST(ReachRegion, CoreCentersLieOnCircleAroundY0) {
  const ReachRegion region({0.0, 0.0}, {1.0, 0.0}, {0.8, 0.6}, 0.125);
  for (double s = 0.0; s <= 1.0; s += 0.1) {
    EXPECT_NEAR(region.core_center(s).norm(), 0.125, 1e-12);
  }
}

TEST(ReachRegion, ContainsY0) {
  const ReachRegion region({0.0, 0.0}, {1.0, 0.0}, {0.8, 0.6}, 0.125);
  EXPECT_TRUE(region.contains({0.0, 0.0}));
}

TEST(ReachRegion, ExtremePointsAreMembers) {
  const ReachRegion region({0.0, 0.0}, {1.0, 0.0}, {0.9, 0.5}, 0.1);
  EXPECT_TRUE(region.contains(region.y_plus(), 1e-7));
  EXPECT_TRUE(region.contains(region.y_minus(), 1e-7));
}

TEST(ReachRegion, ExtremePointDistanceBound) {
  // The step in Theorem 3's proof: |X1 Y0+| <= |X0 Y0| whenever X1 lies in
  // X's scaled safe region w.r.t. Y0 — so the reach-region's worst endpoint
  // still sees X1 within the original separation.
  std::mt19937_64 rng(71);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::uniform_real_distribution<double> ang(-kPi, kPi);
  const double v = 1.0;
  for (const std::size_t k : {1u, 2u, 4u}) {
    const double r = v / (8.0 * static_cast<double>(k));
    for (int trial = 0; trial < 500; ++trial) {
      const Vec2 y0{0.0, 0.0};
      const Vec2 x0 = unit(ang(rng)) * (0.55 * v + 0.45 * v * u01(rng));
      const Circle sx = kknps_safe_region(x0, y0, r);
      const Vec2 x1 = sx.center + unit(ang(rng)) * (sx.radius * u01(rng));
      if (almost_equal(x1, y0, 1e-9)) continue;
      const ReachRegion region(y0, x0, x1, r);
      EXPECT_LE(x1.distance_to(region.y_plus()), x0.distance_to(y0) + 1e-9)
          << "k=" << k << " trial=" << trial;
    }
  }
}

TEST(ReachRegion, CoincidentWithY0Throws) {
  EXPECT_THROW(ReachRegion({0.0, 0.0}, {0.0, 0.0}, {1.0, 0.0}, 0.1), std::invalid_argument);
  EXPECT_THROW(ReachRegion({0.0, 0.0}, {1.0, 0.0}, {0.0, 0.0}, 0.1), std::invalid_argument);
}

struct LemmaCase {
  std::size_t k;
  std::uint64_t seed;
};

class ReachRegionLemma : public ::testing::TestWithParam<LemmaCase> {};

// Lemma 1: with X stationary at X0, any j <= k successive moves of Y, each
// confined to the current 1/k-scaled safe region w.r.t. X0, end inside
// R^{j r}_{Y0}(X0, X0) = S^{j r}_{Y0}(X0).
TEST_P(ReachRegionLemma, Lemma1StationaryNeighbour) {
  const auto [k, seed] = GetParam();
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::uniform_real_distribution<double> ang(-kPi, kPi);

  const double v_y = 1.0;
  const double r = v_y / (8.0 * static_cast<double>(k));

  for (int trial = 0; trial < 400; ++trial) {
    const Vec2 y0{0.0, 0.0};
    // Distant neighbour: distance in (V_Y/2, V_Y].
    const Vec2 x0 = unit(ang(rng)) * (v_y / 2.0 + (v_y / 2.0) * u01(rng));
    Vec2 y = y0;
    for (std::size_t j = 1; j <= k; ++j) {
      // Random point of the current scaled safe region w.r.t. X0.
      const Circle s = kknps_safe_region(y, x0, r);
      y = s.center + unit(ang(rng)) * (s.radius * u01(rng));
      const Circle bound = kknps_safe_region(y0, x0, static_cast<double>(j) * r);
      ASSERT_TRUE(bound.contains(y, 1e-9))
          << "k=" << k << " j=" << j << " trial=" << trial;
    }
  }
}

// Lemma 2 (base region extension): with X moving monotonically from X0 to
// X1, each move of Y confined to the scaled safe region w.r.t. the current
// location of X; endpoints lie in R^{j r}_{Y0}(X0, X1).
TEST_P(ReachRegionLemma, Lemma2MovingNeighbour) {
  const auto [k, seed] = GetParam();
  std::mt19937_64 rng(seed * 31 + 7);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::uniform_real_distribution<double> ang(-kPi, kPi);

  const double v_y = 1.0;
  const double r = v_y / (8.0 * static_cast<double>(k));

  for (int trial = 0; trial < 200; ++trial) {
    const Vec2 y0{0.0, 0.0};
    const Vec2 x0 = unit(ang(rng)) * (v_y / 2.0 + (v_y / 2.0) * u01(rng));
    // X's own move respects its (unscaled would be V_X/8 <= V/8) bound; take
    // a destination within V/8 of X0, avoiding Y0's vicinity.
    Vec2 x1 = x0 + unit(ang(rng)) * (v_y / 8.0 * u01(rng));
    if (x1.norm() < 1e-3) x1 = x0;  // keep X1 != Y0

    // X's progress along its segment is monotone in time.
    std::vector<double> progress(k);
    for (auto& p : progress) p = u01(rng);
    std::sort(progress.begin(), progress.end());

    Vec2 y = y0;
    for (std::size_t j = 1; j <= k; ++j) {
      const Vec2 x_star = lerp(x0, x1, progress[j - 1]);
      if (almost_equal(x_star, y, 1e-9)) continue;
      const Circle s = kknps_safe_region(y, x_star, r);
      y = s.center + unit(ang(rng)) * (s.radius * u01(rng));
      const ReachRegion bound(y0, x0, x1, static_cast<double>(j) * r);
      ASSERT_TRUE(bound.contains(y, 1e-7))
          << "k=" << k << " j=" << j << " trial=" << trial;
    }
  }
}

// Visibility consequence used by Theorem 3: after j <= k nested moves the
// distance from X1 to Y_j is at most |X0 Y0| (so mutual visibility is kept).
TEST_P(ReachRegionLemma, NestedMovesPreserveVisibilityBound) {
  const auto [k, seed] = GetParam();
  std::mt19937_64 rng(seed * 101 + 3);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::uniform_real_distribution<double> ang(-kPi, kPi);

  const double v = 1.0;
  const double r_y = v / (8.0 * static_cast<double>(k));

  for (int trial = 0; trial < 300; ++trial) {
    const Vec2 y0{0.0, 0.0};
    // Initially visible pair near the threshold (worst case).
    const Vec2 x0 = unit(ang(rng)) * (0.8 * v + 0.2 * v * u01(rng));
    // X moves inside its own scaled safe region w.r.t. Y0.
    const Circle sx = kknps_safe_region(x0, y0, v / (8.0 * static_cast<double>(k)));
    const Vec2 x1 = sx.center + unit(ang(rng)) * (sx.radius * u01(rng));

    std::vector<double> progress(k);
    for (auto& p : progress) p = u01(rng);
    std::sort(progress.begin(), progress.end());

    Vec2 y = y0;
    for (std::size_t j = 0; j < k; ++j) {
      const Vec2 x_star = lerp(x0, x1, progress[j]);
      if (almost_equal(x_star, y, 1e-9)) continue;
      const Circle s = kknps_safe_region(y, x_star, r_y);
      y = s.center + unit(ang(rng)) * (s.radius * u01(rng));
    }
    EXPECT_LE(x1.distance_to(y), v + 1e-9) << "k=" << k << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReachRegionLemma,
                         ::testing::Values(LemmaCase{1, 1000}, LemmaCase{2, 2000},
                                           LemmaCase{3, 3000}, LemmaCase{4, 4000},
                                           LemmaCase{8, 8000}),
                         [](const auto& info) { return "k" + std::to_string(info.param.k); });

}  // namespace
}  // namespace cohesion::geom
