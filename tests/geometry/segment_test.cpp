#include "geometry/segment.hpp"

#include <gtest/gtest.h>

#include <random>

namespace cohesion::geom {
namespace {

TEST(Segment, LengthAndPointAt) {
  const Segment s{{0.0, 0.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(s.length(), 5.0);
  EXPECT_TRUE(almost_equal(s.point_at(0.5), {1.5, 2.0}));
  EXPECT_TRUE(almost_equal(s.direction(), {0.6, 0.8}));
}

TEST(Segment, ClosestPointInterior) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_TRUE(almost_equal(s.closest_point({5.0, 3.0}), {5.0, 0.0}));
  EXPECT_DOUBLE_EQ(s.distance_to({5.0, 3.0}), 3.0);
}

TEST(Segment, ClosestPointClampsToEndpoints) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_TRUE(almost_equal(s.closest_point({-5.0, 0.0}), {0.0, 0.0}));
  EXPECT_TRUE(almost_equal(s.closest_point({15.0, 2.0}), {10.0, 0.0}));
}

TEST(Segment, DegenerateSegment) {
  const Segment s{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(s.length(), 0.0);
  EXPECT_TRUE(almost_equal(s.closest_point({4.0, 5.0}), {1.0, 1.0}));
  EXPECT_DOUBLE_EQ(s.distance_to({1.0, 2.0}), 1.0);
}

TEST(SegmentIntersect, ProperCrossing) {
  const Segment a{{0.0, 0.0}, {2.0, 2.0}};
  const Segment b{{0.0, 2.0}, {2.0, 0.0}};
  const auto p = intersect(a, b);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(almost_equal(*p, {1.0, 1.0}));
}

TEST(SegmentIntersect, NoIntersection) {
  const Segment a{{0.0, 0.0}, {1.0, 0.0}};
  const Segment b{{0.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(intersect(a, b).has_value());
}

TEST(SegmentIntersect, TouchingAtEndpoint) {
  const Segment a{{0.0, 0.0}, {1.0, 0.0}};
  const Segment b{{1.0, 0.0}, {2.0, 3.0}};
  const auto p = intersect(a, b);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(almost_equal(*p, {1.0, 0.0}, 1e-9));
}

TEST(SegmentIntersect, CollinearOverlap) {
  const Segment a{{0.0, 0.0}, {2.0, 0.0}};
  const Segment b{{1.0, 0.0}, {3.0, 0.0}};
  const auto p = intersect(a, b);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->y, 0.0, 1e-12);
  EXPECT_GE(p->x, 1.0 - 1e-9);
  EXPECT_LE(p->x, 2.0 + 1e-9);
}

TEST(SegmentIntersect, CollinearDisjoint) {
  const Segment a{{0.0, 0.0}, {1.0, 0.0}};
  const Segment b{{2.0, 0.0}, {3.0, 0.0}};
  EXPECT_FALSE(intersect(a, b).has_value());
}

TEST(SegmentIntersect, ParallelNonCollinear) {
  const Segment a{{0.0, 0.0}, {1.0, 1.0}};
  const Segment b{{0.0, 0.5}, {1.0, 1.5}};
  EXPECT_FALSE(intersect(a, b).has_value());
}

TEST(Orientation, Predicates) {
  EXPECT_EQ(orientation({0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}), 1);
  EXPECT_EQ(orientation({0.0, 0.0}, {1.0, 0.0}, {1.0, -1.0}), -1);
  EXPECT_EQ(orientation({0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}), 0);
}

TEST(SegmentProperty, ClosestPointIsNearestOnSegment) {
  std::mt19937_64 rng(21);
  std::uniform_real_distribution<double> u(-5.0, 5.0);
  for (int i = 0; i < 200; ++i) {
    const Segment s{{u(rng), u(rng)}, {u(rng), u(rng)}};
    const Vec2 p{u(rng), u(rng)};
    const double d = s.distance_to(p);
    for (double t = 0.0; t <= 1.0; t += 0.05) {
      EXPECT_LE(d, s.point_at(t).distance_to(p) + 1e-9);
    }
  }
}

}  // namespace
}  // namespace cohesion::geom
