#include "geometry/convex_hull.hpp"

#include <gtest/gtest.h>

#include <random>

#include "geometry/angles.hpp"

namespace cohesion::geom {
namespace {

TEST(ConvexHull, Square) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}, {0.5, 0.5}};
  const auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_DOUBLE_EQ(polygon_perimeter(hull), 4.0);
  EXPECT_DOUBLE_EQ(polygon_area(hull), 1.0);
  EXPECT_DOUBLE_EQ(hull_diameter(hull), std::sqrt(2.0));
}

TEST(ConvexHull, CollinearPointsRemoved) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {2.0, 2.0}};
  const auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 3u);
}

TEST(ConvexHull, Degenerate) {
  EXPECT_EQ(convex_hull({{1.0, 1.0}}).size(), 1u);
  EXPECT_EQ(convex_hull({{1.0, 1.0}, {1.0, 1.0}}).size(), 1u);
  EXPECT_EQ(convex_hull({{0.0, 0.0}, {1.0, 0.0}}).size(), 2u);
  // All collinear.
  const auto hull = convex_hull({{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}});
  EXPECT_EQ(hull.size(), 2u);
  EXPECT_DOUBLE_EQ(hull_diameter(hull), 2.0);
}

TEST(ConvexHull, PerimeterOfSegmentCountedOnce) {
  EXPECT_DOUBLE_EQ(polygon_perimeter({{0.0, 0.0}, {3.0, 0.0}}), 3.0);
}

TEST(ConvexHull, CcwOrientation) {
  const auto hull = convex_hull({{0.0, 0.0}, {2.0, 0.0}, {2.0, 2.0}, {0.0, 2.0}});
  ASSERT_EQ(hull.size(), 4u);
  EXPECT_GT(polygon_area(hull), 0.0);  // ccw => positive signed area
}

TEST(ConvexHull, ContainsInteriorAndBoundary) {
  const auto hull = convex_hull({{0.0, 0.0}, {4.0, 0.0}, {4.0, 4.0}, {0.0, 4.0}});
  EXPECT_TRUE(hull_contains(hull, {2.0, 2.0}));
  EXPECT_TRUE(hull_contains(hull, {0.0, 2.0}));   // edge
  EXPECT_TRUE(hull_contains(hull, {0.0, 0.0}));   // vertex
  EXPECT_FALSE(hull_contains(hull, {5.0, 2.0}));
  EXPECT_FALSE(hull_contains(hull, {-0.1, 2.0}));
}

TEST(ConvexHullProperty, AllPointsInsideHull) {
  std::mt19937_64 rng(41);
  std::uniform_real_distribution<double> u(-10.0, 10.0);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Vec2> pts;
    for (int i = 0; i < 40; ++i) pts.push_back({u(rng), u(rng)});
    const auto hull = convex_hull(pts);
    for (const Vec2 p : pts) EXPECT_TRUE(hull_contains(hull, p, 1e-7));
  }
}

TEST(ConvexHullProperty, DiameterMatchesBruteForce) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> u(-10.0, 10.0);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Vec2> pts;
    for (int i = 0; i < 30; ++i) pts.push_back({u(rng), u(rng)});
    double brute = 0.0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      for (std::size_t j = i + 1; j < pts.size(); ++j) {
        brute = std::max(brute, pts[i].distance_to(pts[j]));
      }
    }
    EXPECT_NEAR(set_diameter(pts), brute, 1e-9);
  }
}

TEST(ConvexHullProperty, HullOfHullIsIdempotent) {
  std::mt19937_64 rng(43);
  std::uniform_real_distribution<double> u(-5.0, 5.0);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Vec2> pts;
    for (int i = 0; i < 25; ++i) pts.push_back({u(rng), u(rng)});
    const auto h1 = convex_hull(pts);
    const auto h2 = convex_hull(h1);
    EXPECT_EQ(h1.size(), h2.size());
    EXPECT_NEAR(polygon_area(h1), polygon_area(h2), 1e-9);
  }
}

// The congregation argument's workhorse: points inside the hull keep the
// hull unchanged; this mirrors "planned destinations inside CH_t never grow
// the hull" (paper §5).
TEST(ConvexHullProperty, AddingInteriorPointKeepsHull) {
  std::mt19937_64 rng(44);
  std::uniform_real_distribution<double> u(-5.0, 5.0);
  std::uniform_real_distribution<double> w(0.0, 1.0);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Vec2> pts;
    for (int i = 0; i < 15; ++i) pts.push_back({u(rng), u(rng)});
    const auto hull = convex_hull(pts);
    if (hull.size() < 3) continue;
    // Random convex combination of three hull vertices.
    double w1 = w(rng), w2 = w(rng), w3 = w(rng);
    const double s = w1 + w2 + w3;
    const Vec2 inner = (hull[0] * w1 + hull[1] * w2 + hull[2] * w3) / s;
    auto grown = pts;
    grown.push_back(inner);
    EXPECT_NEAR(polygon_area(convex_hull(grown)), polygon_area(hull), 1e-9);
    EXPECT_NEAR(polygon_perimeter(convex_hull(grown)), polygon_perimeter(hull), 1e-9);
  }
}

class RegularPolygonHull : public ::testing::TestWithParam<int> {};

TEST_P(RegularPolygonHull, PerimeterAndAreaFormulas) {
  const int n = GetParam();
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) pts.push_back(unit(kTwoPi * i / n));
  const auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), static_cast<std::size_t>(n));
  EXPECT_NEAR(polygon_perimeter(hull), 2.0 * n * std::sin(kPi / n), 1e-9);
  EXPECT_NEAR(polygon_area(hull), 0.5 * n * std::sin(kTwoPi / n), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RegularPolygonHull, ::testing::Values(3, 4, 5, 6, 12, 100));

}  // namespace
}  // namespace cohesion::geom
