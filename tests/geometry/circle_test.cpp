#include "geometry/circle.hpp"

#include <gtest/gtest.h>

#include <random>

#include "geometry/angles.hpp"

namespace cohesion::geom {
namespace {

TEST(Circle, Contains) {
  const Circle c{{0.0, 0.0}, 2.0};
  EXPECT_TRUE(c.contains({1.0, 1.0}));
  EXPECT_TRUE(c.contains({2.0, 0.0}));  // boundary
  EXPECT_FALSE(c.contains({2.1, 0.0}));
}

TEST(Circle, Area) {
  const Circle c{{0.0, 0.0}, 2.0};
  EXPECT_NEAR(c.area(), 4.0 * kPi, 1e-12);
}

TEST(CircleCircleIntersect, TwoPoints) {
  const Circle a{{0.0, 0.0}, 1.0};
  const Circle b{{1.0, 0.0}, 1.0};
  const auto pts = intersect(a, b);
  ASSERT_EQ(pts.size(), 2u);
  for (const Vec2 p : pts) {
    EXPECT_NEAR(p.distance_to(a.center), 1.0, 1e-9);
    EXPECT_NEAR(p.distance_to(b.center), 1.0, 1e-9);
  }
}

TEST(CircleCircleIntersect, Tangent) {
  const Circle a{{0.0, 0.0}, 1.0};
  const Circle b{{2.0, 0.0}, 1.0};
  const auto pts = intersect(a, b);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_TRUE(almost_equal(pts[0], {1.0, 0.0}, 1e-9));
}

TEST(CircleCircleIntersect, Disjoint) {
  EXPECT_TRUE(intersect(Circle{{0.0, 0.0}, 1.0}, Circle{{5.0, 0.0}, 1.0}).empty());
}

TEST(CircleCircleIntersect, OneInsideOther) {
  EXPECT_TRUE(intersect(Circle{{0.0, 0.0}, 3.0}, Circle{{0.5, 0.0}, 1.0}).empty());
}

TEST(CircleSegmentIntersect, Chord) {
  const Circle c{{0.0, 0.0}, 1.0};
  const Segment s{{-2.0, 0.0}, {2.0, 0.0}};
  const auto pts = intersect(c, s);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_TRUE(almost_equal(pts[0], {-1.0, 0.0}, 1e-9));
  EXPECT_TRUE(almost_equal(pts[1], {1.0, 0.0}, 1e-9));
}

TEST(CircleSegmentIntersect, TangentLine) {
  const Circle c{{0.0, 0.0}, 1.0};
  const Segment s{{-2.0, 1.0}, {2.0, 1.0}};
  const auto pts = intersect(c, s);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_TRUE(almost_equal(pts[0], {0.0, 1.0}, 1e-6));
}

TEST(CircleSegmentIntersect, SegmentInside) {
  const Circle c{{0.0, 0.0}, 2.0};
  const Segment s{{-0.5, 0.0}, {0.5, 0.0}};
  EXPECT_TRUE(intersect(c, s).empty());
}

TEST(LensArea, DisjointIsZero) {
  EXPECT_DOUBLE_EQ(lens_area({{0.0, 0.0}, 1.0}, {{5.0, 0.0}, 1.0}), 0.0);
}

TEST(LensArea, ContainedIsSmallerDisk) {
  EXPECT_NEAR(lens_area({{0.0, 0.0}, 3.0}, {{0.0, 0.0}, 1.0}), kPi, 1e-12);
}

TEST(LensArea, SymmetricHalfOverlap) {
  // Two unit circles at distance 1: known lens area 2*pi/3 - sqrt(3)/2.
  const double expected = 2.0 * kPi / 3.0 - std::sqrt(3.0) / 2.0;
  EXPECT_NEAR(lens_area({{0.0, 0.0}, 1.0}, {{1.0, 0.0}, 1.0}), expected, 1e-9);
}

TEST(LensArea, MonteCarloAgreement) {
  const Circle a{{0.0, 0.0}, 1.3};
  const Circle b{{0.9, 0.4}, 0.8};
  std::mt19937_64 rng(33);
  std::uniform_real_distribution<double> ux(-1.3, 1.7), uy(-1.3, 1.3);
  const int n = 200000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    const Vec2 p{ux(rng), uy(rng)};
    if (a.contains(p) && b.contains(p)) ++hits;
  }
  const double box = 3.0 * 2.6;
  EXPECT_NEAR(lens_area(a, b), box * hits / n, 0.02);
}

TEST(ClampRay, UnconstrainedWhenInsideAll) {
  const std::vector<Circle> disks{{{0.0, 0.0}, 10.0}};
  const auto t = clamp_ray_to_disks({0.0, 0.0}, {1.0, 0.0}, disks);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 1.0);
}

TEST(ClampRay, StopsAtBoundary) {
  const std::vector<Circle> disks{{{0.0, 0.0}, 1.0}};
  const auto t = clamp_ray_to_disks({0.0, 0.0}, {2.0, 0.0}, disks);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 0.5, 1e-9);
}

TEST(ClampRay, OriginOutsideFails) {
  const std::vector<Circle> disks{{{10.0, 0.0}, 1.0}};
  EXPECT_FALSE(clamp_ray_to_disks({0.0, 0.0}, {1.0, 0.0}, disks).has_value());
}

TEST(ClampRay, ResultStaysInAllDisks) {
  std::mt19937_64 rng(34);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Circle> disks;
    for (int i = 0; i < 4; ++i) {
      // Disks all containing the origin.
      const Vec2 c{u(rng), u(rng)};
      disks.push_back({c, c.norm() + 0.2});
    }
    const Vec2 dest{2.0 * u(rng), 2.0 * u(rng)};
    const auto t = clamp_ray_to_disks({0.0, 0.0}, dest, disks);
    ASSERT_TRUE(t.has_value());
    const Vec2 reached = dest * *t;
    for (const Circle& d : disks) EXPECT_TRUE(d.contains(reached, 1e-6));
  }
}

TEST(Circumcircle, EquilateralTriangle) {
  const auto c = circumcircle({0.0, 0.0}, {1.0, 0.0}, {0.5, std::sqrt(3.0) / 2.0});
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->radius, 1.0 / std::sqrt(3.0), 1e-9);
  EXPECT_TRUE(almost_equal(c->center, {0.5, std::sqrt(3.0) / 6.0}, 1e-9));
}

TEST(Circumcircle, CollinearReturnsNothing) {
  EXPECT_FALSE(circumcircle({0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}).has_value());
}

TEST(Circumcircle, EquidistantProperty) {
  std::mt19937_64 rng(35);
  std::uniform_real_distribution<double> u(-5.0, 5.0);
  for (int i = 0; i < 100; ++i) {
    const Vec2 a{u(rng), u(rng)}, b{u(rng), u(rng)}, c{u(rng), u(rng)};
    const auto cc = circumcircle(a, b, c);
    if (!cc) continue;
    EXPECT_NEAR(cc->center.distance_to(a), cc->radius, 1e-6);
    EXPECT_NEAR(cc->center.distance_to(b), cc->radius, 1e-6);
    EXPECT_NEAR(cc->center.distance_to(c), cc->radius, 1e-6);
  }
}

}  // namespace
}  // namespace cohesion::geom
