#include "geometry/vec2.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "geometry/angles.hpp"

namespace cohesion::geom {
namespace {

TEST(Vec2, ArithmeticBasics) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Vec2{0.5, 1.0}));
  EXPECT_EQ(-a, (Vec2{-1.0, -2.0}));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, (Vec2{3.0, 4.0}));
  v -= {1.0, 1.0};
  EXPECT_EQ(v, (Vec2{2.0, 3.0}));
  v *= 2.0;
  EXPECT_EQ(v, (Vec2{4.0, 6.0}));
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{1.0, 0.0}, b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.cross(b), 1.0);
  EXPECT_DOUBLE_EQ(b.cross(a), -1.0);
  EXPECT_DOUBLE_EQ(a.dot(a), 1.0);
}

TEST(Vec2, NormAndDistance) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(v.distance_to({0.0, 0.0}), 5.0);
  EXPECT_DOUBLE_EQ(v.distance2_to({3.0, 0.0}), 16.0);
}

TEST(Vec2, NormalizedUnitLength) {
  const Vec2 v{3.0, 4.0};
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-15);
  EXPECT_NEAR(v.normalized().x, 0.6, 1e-15);
}

TEST(Vec2, NormalizedZeroVectorIsZero) {
  EXPECT_EQ((Vec2{0.0, 0.0}).normalized(), (Vec2{0.0, 0.0}));
}

TEST(Vec2, AngleMatchesAtan2) {
  EXPECT_DOUBLE_EQ((Vec2{1.0, 0.0}).angle(), 0.0);
  EXPECT_DOUBLE_EQ((Vec2{0.0, 1.0}).angle(), kPi / 2.0);
  EXPECT_DOUBLE_EQ((Vec2{-1.0, 0.0}).angle(), kPi);
}

TEST(Vec2, RotationQuarterTurn) {
  const Vec2 v{1.0, 0.0};
  const Vec2 r = v.rotated(kPi / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-15);
  EXPECT_NEAR(r.y, 1.0, 1e-15);
  EXPECT_TRUE(almost_equal(v.perp(), r, 1e-15));
}

TEST(Vec2, RotationPreservesNorm) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(-10.0, 10.0);
  for (int i = 0; i < 100; ++i) {
    const Vec2 v{u(rng), u(rng)};
    const double theta = u(rng);
    EXPECT_NEAR(v.rotated(theta).norm(), v.norm(), 1e-12);
  }
}

TEST(Vec2, RotationComposition) {
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> u(-3.0, 3.0);
  for (int i = 0; i < 50; ++i) {
    const Vec2 v{u(rng), u(rng)};
    const double a = u(rng), b = u(rng);
    EXPECT_TRUE(almost_equal(v.rotated(a).rotated(b), v.rotated(a + b), 1e-12));
  }
}

TEST(Vec2, LerpEndpointsAndMidpoint) {
  const Vec2 a{0.0, 0.0}, b{2.0, 4.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), midpoint(a, b));
  EXPECT_EQ(midpoint(a, b), (Vec2{1.0, 2.0}));
}

TEST(Vec2, UnitVector) {
  EXPECT_TRUE(almost_equal(unit(0.0), {1.0, 0.0}, 1e-15));
  EXPECT_TRUE(almost_equal(unit(kPi / 2.0), {0.0, 1.0}, 1e-15));
  for (double t = -3.0; t < 3.0; t += 0.37) {
    EXPECT_NEAR(unit(t).norm(), 1.0, 1e-15);
    EXPECT_NEAR(unit(t).angle(), normalize_angle_signed(t), 1e-12);
  }
}

TEST(Vec2, AlmostEqualTolerance) {
  EXPECT_TRUE(almost_equal({1.0, 1.0}, {1.0 + 1e-10, 1.0}, 1e-9));
  EXPECT_FALSE(almost_equal({1.0, 1.0}, {1.0 + 1e-8, 1.0}, 1e-9));
}

}  // namespace
}  // namespace cohesion::geom
