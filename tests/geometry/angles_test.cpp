#include "geometry/angles.hpp"

#include <gtest/gtest.h>

#include <random>

namespace cohesion::geom {
namespace {

TEST(Angles, NormalizeIntoRange) {
  EXPECT_DOUBLE_EQ(normalize_angle(0.0), 0.0);
  EXPECT_NEAR(normalize_angle(kTwoPi + 0.5), 0.5, 1e-12);
  EXPECT_NEAR(normalize_angle(-0.5), kTwoPi - 0.5, 1e-12);
  EXPECT_NEAR(normalize_angle(-5.0 * kTwoPi + 1.0), 1.0, 1e-12);
}

TEST(Angles, NormalizeSigned) {
  EXPECT_NEAR(normalize_angle_signed(kPi + 0.25), -kPi + 0.25, 1e-12);
  EXPECT_NEAR(normalize_angle_signed(-kPi + 0.25), -kPi + 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(normalize_angle_signed(kPi), kPi);  // (-pi, pi]
}

TEST(Angles, AngleDistanceSymmetricAndBounded) {
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> u(-20.0, 20.0);
  for (int i = 0; i < 200; ++i) {
    const double a = u(rng), b = u(rng);
    const double d = angle_distance(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, kPi + 1e-12);
    EXPECT_NEAR(d, angle_distance(b, a), 1e-12);
    EXPECT_NEAR(angle_distance(a, a), 0.0, 1e-12);
  }
}

TEST(Angles, CcwSweep) {
  EXPECT_NEAR(ccw_sweep(0.0, kPi / 2.0), kPi / 2.0, 1e-12);
  EXPECT_NEAR(ccw_sweep(kPi / 2.0, 0.0), 3.0 * kPi / 2.0, 1e-12);
}

TEST(Angles, InteriorAngleRightAngle) {
  EXPECT_NEAR(interior_angle({1.0, 0.0}, {0.0, 0.0}, {0.0, 1.0}), kPi / 2.0, 1e-12);
}

TEST(Angles, InteriorAngleCollinear) {
  EXPECT_NEAR(interior_angle({-1.0, 0.0}, {0.0, 0.0}, {1.0, 0.0}), kPi, 1e-12);
  EXPECT_NEAR(interior_angle({1.0, 0.0}, {0.0, 0.0}, {2.0, 0.0}), 0.0, 1e-12);
}

TEST(Angles, TurnAngleSign) {
  // Walking along +x then turning up (ccw) is positive.
  EXPECT_GT(turn_angle({0.0, 0.0}, {1.0, 0.0}, {2.0, 1.0}), 0.0);
  EXPECT_LT(turn_angle({0.0, 0.0}, {1.0, 0.0}, {2.0, -1.0}), 0.0);
  EXPECT_NEAR(turn_angle({0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}), 0.0, 1e-12);
}

TEST(Angles, TurnPlusInteriorIsPi) {
  std::mt19937_64 rng(10);
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  for (int i = 0; i < 100; ++i) {
    const Vec2 p{u(rng), u(rng)}, q{u(rng), u(rng)}, r{u(rng), u(rng)};
    if ((q - p).norm() < 1e-6 || (r - q).norm() < 1e-6) continue;
    EXPECT_NEAR(std::abs(turn_angle(p, q, r)) + interior_angle(p, q, r), kPi, 1e-9);
  }
}

TEST(AngularGapTest, SingleDirection) {
  const AngularGap g = largest_angular_gap({0.7});
  EXPECT_DOUBLE_EQ(g.gap, kTwoPi);
  EXPECT_EQ(g.before, 0u);
  EXPECT_EQ(g.after, 0u);
}

TEST(AngularGapTest, TwoOppositeDirections) {
  const AngularGap g = largest_angular_gap({0.0, kPi});
  EXPECT_NEAR(g.gap, kPi, 1e-12);
}

TEST(AngularGapTest, ClusterLeavesBigGap) {
  // Directions in a narrow cone around 0: the gap is almost 2*pi, and its
  // bounding indices are the extreme members of the cone.
  const std::vector<double> dirs{-0.2, -0.1, 0.0, 0.1, 0.2};
  const AngularGap g = largest_angular_gap(dirs);
  EXPECT_NEAR(g.gap, kTwoPi - 0.4, 1e-12);
  EXPECT_EQ(g.before, 4u);  // direction 0.2 precedes the gap going ccw
  EXPECT_EQ(g.after, 0u);   // direction -0.2 follows it
}

TEST(AngularGapTest, EmptyThrows) {
  EXPECT_THROW(largest_angular_gap({}), std::invalid_argument);
}

TEST(AngularGapTest, GapsSumToTwoPi) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> u(0.0, kTwoPi);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> dirs;
    for (int i = 0; i < 8; ++i) dirs.push_back(u(rng));
    const AngularGap g = largest_angular_gap(dirs);
    EXPECT_GE(g.gap, kTwoPi / 8.0 - 1e-12);  // pigeonhole
    EXPECT_LE(g.gap, kTwoPi + 1e-12);
  }
}

// Property sweep: for n equally spaced directions the largest gap is 2*pi/n.
class EquallySpacedGap : public ::testing::TestWithParam<int> {};

TEST_P(EquallySpacedGap, GapIsTwoPiOverN) {
  const int n = GetParam();
  std::vector<double> dirs;
  for (int i = 0; i < n; ++i) dirs.push_back(kTwoPi * i / n);
  EXPECT_NEAR(largest_angular_gap(dirs).gap, kTwoPi / n, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EquallySpacedGap, ::testing::Values(2, 3, 4, 5, 8, 16, 64));

}  // namespace
}  // namespace cohesion::geom
