#include "geometry/safe_region.hpp"

#include <gtest/gtest.h>

#include <random>

#include "geometry/angles.hpp"

namespace cohesion::geom {
namespace {

TEST(KknpsSafeRegion, GeometryMatchesDefinition) {
  // S^r_{Y0}(X0): disk of radius r centred at distance r from Y0 toward X0.
  const Vec2 y0{0.0, 0.0}, x0{10.0, 0.0};
  const double r = 0.125;
  const Circle s = kknps_safe_region(y0, x0, r);
  EXPECT_TRUE(almost_equal(s.center, {r, 0.0}, 1e-12));
  EXPECT_DOUBLE_EQ(s.radius, r);
  // Y0 is on the boundary.
  EXPECT_NEAR(s.center.distance_to(y0), s.radius, 1e-12);
}

TEST(KknpsSafeRegion, DependsOnlyOnDirection) {
  // Paper §3.2.1(ii): the region depends only on the direction of X0, not
  // its distance.
  const Vec2 y0{1.0, 2.0};
  const Circle near = kknps_safe_region(y0, y0 + Vec2{0.6, 0.8}, 0.2);
  const Circle far = kknps_safe_region(y0, y0 + Vec2{6.0, 8.0}, 0.2);
  EXPECT_TRUE(almost_equal(near.center, far.center, 1e-12));
  EXPECT_DOUBLE_EQ(near.radius, far.radius);
}

TEST(KknpsSafeRegion, MaxMoveIsTwiceRadius) {
  const Circle s = kknps_safe_region({0.0, 0.0}, {1.0, 1.0}, 0.125);
  EXPECT_NEAR(max_move_within(s, {0.0, 0.0}), 0.25, 1e-12);
}

TEST(KknpsSafeRegion, CoincidentPointsThrow) {
  EXPECT_THROW(kknps_safe_region({1.0, 1.0}, {1.0, 1.0}, 0.1), std::invalid_argument);
}

TEST(KknpsSafeRegion, ScalingProperty) {
  // If P is in S^r then alpha-scaled P (about Y0) is in S^{alpha r}
  // (paper §3.2.1).
  std::mt19937_64 rng(77);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::uniform_real_distribution<double> ua(0.05, 1.0);
  for (int trial = 0; trial < 500; ++trial) {
    const Vec2 y0{u(rng), u(rng)};
    const Vec2 x0 = y0 + Vec2{u(rng) + 1.5, u(rng)};
    const double r = 0.1 + 0.2 * ua(rng);
    const Circle s = kknps_safe_region(y0, x0, r);
    // Sample P inside s.
    const Vec2 p = s.center + unit(u(rng) * kPi) * (s.radius * ua(rng));
    const double alpha = ua(rng);
    const Vec2 p_scaled = y0 + (p - y0) * alpha;
    const Circle s_scaled = kknps_safe_region(y0, x0, alpha * r);
    EXPECT_TRUE(s_scaled.contains(p_scaled, 1e-9));
  }
}

TEST(AndoSafeRegion, GeometryMatchesDefinition) {
  const Circle s = ando_safe_region({0.0, 0.0}, {1.0, 0.0}, 1.0);
  EXPECT_TRUE(almost_equal(s.center, {0.5, 0.0}));
  EXPECT_DOUBLE_EQ(s.radius, 0.5);
}

TEST(AndoSafeRegion, MutualMovesPreserveVisibilitySSync) {
  // If X and Y at distance <= V each move inside their Ando safe region,
  // the new separation is <= V (the SSync preservation argument of [2]).
  std::mt19937_64 rng(78);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::uniform_real_distribution<double> ua(0.0, 1.0);
  const double v = 1.0;
  for (int trial = 0; trial < 2000; ++trial) {
    const Vec2 y0{0.0, 0.0};
    const Vec2 x0 = unit(u(rng) * kPi) * (v * ua(rng));
    if (x0.norm() < 1e-6) continue;
    const Circle sy = ando_safe_region(y0, x0, v);
    const Circle sx = ando_safe_region(x0, y0, v);
    const Vec2 y1 = sy.center + unit(u(rng) * kPi) * (sy.radius * ua(rng));
    const Vec2 x1 = sx.center + unit(u(rng) * kPi) * (sx.radius * ua(rng));
    EXPECT_LE(y1.distance_to(x1), v + 1e-9);
  }
}

TEST(KatreniakRegion, GeometryMatchesDefinition) {
  const Vec2 y0{0.0, 0.0}, x0{0.8, 0.0};
  const double v_y = 1.0;
  const KatreniakRegion region = katreniak_safe_region(y0, x0, v_y);
  EXPECT_TRUE(almost_equal(region.near_disk.center, {0.2, 0.0}, 1e-12));
  EXPECT_DOUBLE_EQ(region.near_disk.radius, 0.2);
  EXPECT_TRUE(almost_equal(region.self_disk.center, y0));
  EXPECT_DOUBLE_EQ(region.self_disk.radius, 0.05);
}

TEST(KatreniakRegion, ContainsSelfAlways) {
  std::mt19937_64 rng(79);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::uniform_real_distribution<double> ud(0.2, 1.0);
  for (int trial = 0; trial < 500; ++trial) {
    const Vec2 y0{u(rng), u(rng)};
    const double d = ud(rng);
    const Vec2 x0 = y0 + unit(u(rng) * kPi) * d;
    const KatreniakRegion region = katreniak_safe_region(y0, x0, std::max(d, ud(rng)));
    EXPECT_TRUE(region.contains(y0));
  }
}

TEST(KatreniakRegion, AreaIsUnionNotSum) {
  // Overlapping disks: area strictly less than sum of parts.
  const KatreniakRegion region = katreniak_safe_region({0.0, 0.0}, {0.4, 0.0}, 1.0);
  const double sum = region.near_disk.area() + region.self_disk.area();
  if (disks_intersect(region.near_disk, region.self_disk)) {
    EXPECT_LT(region.area(), sum);
  }
  EXPECT_GT(region.area(), 0.0);
}

TEST(Fig3Comparison, PlannedMoveBounds) {
  // Fig. 3 quantitative shape: for a distant neighbour at distance d = V,
  // max planned move is V for Ando (toward the neighbour), V/4 for the
  // unscaled KKNPS region (= 2r with r = V/8).
  const double v = 1.0;
  const Vec2 y0{0.0, 0.0}, x0{v, 0.0};
  EXPECT_NEAR(max_move_within(ando_safe_region(y0, x0, v), y0), v, 1e-12);
  EXPECT_NEAR(max_move_within(kknps_safe_region(y0, x0, v / 8.0), y0), v / 4.0, 1e-12);
}

}  // namespace
}  // namespace cohesion::geom
