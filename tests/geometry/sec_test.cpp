#include "geometry/smallest_enclosing_circle.hpp"

#include <gtest/gtest.h>

#include <random>

#include "geometry/angles.hpp"

namespace cohesion::geom {
namespace {

TEST(Sec, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(smallest_enclosing_circle({}).radius, 0.0);
  const Circle c = smallest_enclosing_circle({{2.0, 3.0}});
  EXPECT_DOUBLE_EQ(c.radius, 0.0);
  EXPECT_TRUE(almost_equal(c.center, {2.0, 3.0}));
}

TEST(Sec, TwoPoints) {
  const Circle c = smallest_enclosing_circle({{0.0, 0.0}, {2.0, 0.0}});
  EXPECT_NEAR(c.radius, 1.0, 1e-9);
  EXPECT_TRUE(almost_equal(c.center, {1.0, 0.0}, 1e-9));
}

TEST(Sec, EquilateralTriangle) {
  const Circle c =
      smallest_enclosing_circle({{0.0, 0.0}, {1.0, 0.0}, {0.5, std::sqrt(3.0) / 2.0}});
  EXPECT_NEAR(c.radius, 1.0 / std::sqrt(3.0), 1e-9);
}

TEST(Sec, ObtuseTriangleUsesDiameter) {
  // For an obtuse triangle the SEC is the circle on the longest side.
  const Circle c = smallest_enclosing_circle({{0.0, 0.0}, {10.0, 0.0}, {5.0, 0.1}});
  EXPECT_NEAR(c.radius, 5.0, 1e-6);
  EXPECT_TRUE(almost_equal(c.center, {5.0, 0.0}, 1e-6));
}

TEST(Sec, DuplicatePoints) {
  const Circle c = smallest_enclosing_circle({{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}});
  EXPECT_NEAR(c.radius, 0.0, 1e-12);
}

TEST(Sec, CollinearPoints) {
  const Circle c = smallest_enclosing_circle({{0.0, 0.0}, {1.0, 0.0}, {4.0, 0.0}, {2.0, 0.0}});
  EXPECT_NEAR(c.radius, 2.0, 1e-9);
  EXPECT_TRUE(almost_equal(c.center, {2.0, 0.0}, 1e-9));
}

TEST(Sec, PointsOnCircle) {
  std::vector<Vec2> pts;
  for (int i = 0; i < 17; ++i) pts.push_back(unit(kTwoPi * i / 17.0) * 3.0);
  const Circle c = smallest_enclosing_circle(pts);
  EXPECT_NEAR(c.radius, 3.0, 1e-9);
  EXPECT_TRUE(almost_equal(c.center, {0.0, 0.0}, 1e-9));
}

class SecRandom : public ::testing::TestWithParam<int> {};

TEST_P(SecRandom, EnclosesAllAndIsMinimal) {
  std::mt19937_64 rng(100 + GetParam());
  std::uniform_real_distribution<double> u(-10.0, 10.0);
  std::vector<Vec2> pts;
  for (int i = 0; i < GetParam(); ++i) pts.push_back({u(rng), u(rng)});
  const Circle c = smallest_enclosing_circle(pts);

  EXPECT_TRUE(encloses(c, pts));

  // Minimality certificate: at least two points on the boundary, and the
  // radius cannot shrink by 1% and still enclose.
  int on_boundary = 0;
  for (const Vec2 p : pts) {
    if (std::abs(p.distance_to(c.center) - c.radius) < 1e-6) ++on_boundary;
  }
  EXPECT_GE(on_boundary, 2);
  EXPECT_FALSE(encloses({c.center, c.radius * 0.99}, pts, 0.0));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SecRandom, ::testing::Values(3, 5, 10, 50, 200, 1000));

TEST(Sec, DeterministicAcrossCalls) {
  std::mt19937_64 rng(55);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<Vec2> pts;
  for (int i = 0; i < 64; ++i) pts.push_back({u(rng), u(rng)});
  const Circle a = smallest_enclosing_circle(pts);
  const Circle b = smallest_enclosing_circle(pts);
  EXPECT_TRUE(almost_equal(a.center, b.center, 0.0));
  EXPECT_DOUBLE_EQ(a.radius, b.radius);
}

}  // namespace
}  // namespace cohesion::geom
