// The grid-accelerated min_pairwise_distance must agree with the brute
// force bit-for-bit: the expanding-radius query changes which pairs are
// examined, never the distance arithmetic, and min() is order-independent.
#include <gtest/gtest.h>

#include <random>

#include "metrics/configurations.hpp"
#include "metrics/stats.hpp"

namespace cohesion::metrics {
namespace {

using geom::Vec2;

TEST(MinPairwise, DegenerateInputs) {
  EXPECT_EQ(min_pairwise_distance({}), 0.0);
  EXPECT_EQ(min_pairwise_distance({{3.0, 4.0}}), 0.0);
  EXPECT_EQ(min_pairwise_distance_brute({{3.0, 4.0}}), 0.0);
  EXPECT_EQ(min_pairwise_distance({{1.0, 2.0}, {1.0, 2.0}}), 0.0);  // coincident
  EXPECT_EQ(min_pairwise_distance({{1.0, 2.0}, {4.0, 6.0}}), 5.0);
}

TEST(MinPairwise, AllCoincident) {
  const std::vector<Vec2> pts(17, Vec2{2.5, -1.0});
  EXPECT_EQ(min_pairwise_distance(pts), 0.0);
}

TEST(MinPairwise, MatchesBruteOnGenerators) {
  for (const std::size_t n : {2u, 3u, 10u, 64u, 199u}) {
    const auto line = line_configuration(n, 0.7);
    EXPECT_EQ(min_pairwise_distance(line), min_pairwise_distance_brute(line)) << "line " << n;
    const auto grid = grid_configuration(n, 1.3);
    EXPECT_EQ(min_pairwise_distance(grid), min_pairwise_distance_brute(grid)) << "grid " << n;
    if (n >= 3) {
      const auto ring = regular_polygon_configuration(n, 0.9);
      EXPECT_EQ(min_pairwise_distance(ring), min_pairwise_distance_brute(ring)) << "ring " << n;
    }
  }
}

TEST(MinPairwise, MatchesBruteOnRandomClouds) {
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    std::uniform_int_distribution<std::size_t> count(2, 120);
    std::uniform_real_distribution<double> scale(1e-3, 1e3);
    std::uniform_real_distribution<double> coord(-1.0, 1.0);
    const std::size_t n = count(rng);
    const double s = scale(rng);
    std::vector<Vec2> pts;
    pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) pts.push_back({coord(rng) * s, coord(rng) * s});
    // Occasionally inject duplicates and near-duplicates.
    if (trial % 3 == 0) pts.push_back(pts.front());
    if (trial % 4 == 0) pts.push_back(pts.back() + Vec2{1e-9 * s, 0.0});
    EXPECT_EQ(min_pairwise_distance(pts), min_pairwise_distance_brute(pts)) << "trial " << trial;
  }
}

TEST(MinPairwise, OutlierDoesNotForceFullExpansion) {
  // A tight cluster plus one far outlier: the early-exit (best <= radius)
  // must still return the exact cluster minimum.
  std::vector<Vec2> pts;
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> coord(0.0, 1.0);
  for (int i = 0; i < 50; ++i) pts.push_back({coord(rng), coord(rng)});
  pts.push_back({1e6, 1e6});
  EXPECT_EQ(min_pairwise_distance(pts), min_pairwise_distance_brute(pts));
}

TEST(MinPairwise, ConfigurationStatsUsesIt) {
  const auto pts = random_connected_configuration(40, 2.0, 1.0, 9);
  const ConfigurationStats s = configuration_stats(pts, 1.0);
  EXPECT_EQ(s.min_pairwise, min_pairwise_distance_brute(pts));
}

}  // namespace
}  // namespace cohesion::metrics
