#include "metrics/svg.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "metrics/configurations.hpp"
#include "sched/synchronous.hpp"

namespace cohesion::metrics {
namespace {

TEST(Svg, ConfigurationContainsRobotsAndEdges) {
  const auto pts = line_configuration(4, 0.5);
  const std::string svg = render_configuration(pts, 0.6);
  // 4 robots, 3 visibility edges.
  std::size_t circles = 0, lines = 0, pos = 0;
  while ((pos = svg.find("<circle", pos)) != std::string::npos) {
    ++circles;
    ++pos;
  }
  pos = 0;
  while ((pos = svg.find("<line", pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(circles, 4u);
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, DisksOptionAddsCircles) {
  const auto pts = line_configuration(3, 0.5);
  SvgStyle style;
  style.draw_visibility_disks = true;
  const std::string svg = render_configuration(pts, 0.6, style);
  std::size_t circles = 0, pos = 0;
  while ((pos = svg.find("<circle", pos)) != std::string::npos) {
    ++circles;
    ++pos;
  }
  EXPECT_EQ(circles, 6u);  // 3 robots + 3 visibility disks
}

TEST(Svg, TraceRenderingHasTrajectories) {
  const algo::KknpsAlgorithm algo;
  sched::FSyncScheduler sched(5);
  core::EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  core::Engine engine(line_configuration(5, 0.8), algo, sched, cfg);
  engine.run(200);
  const std::string svg = render_trace(engine.trace(), 1.0, 50);
  std::size_t polylines = 0, pos = 0;
  while ((pos = svg.find("<polyline", pos)) != std::string::npos) {
    ++polylines;
    ++pos;
  }
  EXPECT_EQ(polylines, 5u);  // one trajectory per robot
}

TEST(Svg, WriteToFile) {
  const auto pts = line_configuration(3, 0.5);
  const std::string path = ::testing::TempDir() + "/cohesion_svg_test.svg";
  write_svg(path, render_configuration(pts, 0.6));
  std::ifstream f(path);
  std::string first;
  std::getline(f, first);
  EXPECT_NE(first.find("<svg"), std::string::npos);
}

TEST(Svg, DegenerateSingleRobot) {
  const std::string svg = render_configuration({{1.0, 1.0}}, 1.0);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
}

}  // namespace
}  // namespace cohesion::metrics
