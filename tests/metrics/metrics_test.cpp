#include <gtest/gtest.h>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "core/visibility.hpp"
#include "geometry/angles.hpp"
#include "metrics/configurations.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "sched/synchronous.hpp"

namespace cohesion::metrics {
namespace {

using geom::Vec2;

TEST(Configurations, Line) {
  const auto pts = line_configuration(5, 0.5);
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_TRUE(geom::almost_equal(pts[4], {2.0, 0.0}));
  EXPECT_TRUE(core::VisibilityGraph(pts, 0.5).connected());
}

TEST(Configurations, Grid) {
  const auto pts = grid_configuration(9, 1.0);
  ASSERT_EQ(pts.size(), 9u);
  EXPECT_TRUE(core::VisibilityGraph(pts, 1.0).connected());
}

TEST(Configurations, RegularPolygonSideLength) {
  const auto pts = regular_polygon_configuration(6, 1.0);
  ASSERT_EQ(pts.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(pts[i].distance_to(pts[(i + 1) % 6]), 1.0, 1e-9);
  }
  EXPECT_THROW(regular_polygon_configuration(2, 1.0), std::invalid_argument);
}

TEST(Configurations, RandomConnectedIsConnectedAndDeterministic) {
  const auto a = random_connected_configuration(25, 2.5, 1.0, 7);
  const auto b = random_connected_configuration(25, 2.5, 1.0, 7);
  EXPECT_EQ(a.size(), 25u);
  EXPECT_TRUE(core::VisibilityGraph(a, 1.0).connected());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(geom::almost_equal(a[i], b[i], 0.0));
}

TEST(Configurations, TwoClusterConnected) {
  const auto pts = two_cluster_configuration(20, 3, 1.0, 5);
  EXPECT_EQ(pts.size(), 20u);
  EXPECT_TRUE(core::VisibilityGraph(pts, 1.0).connected());
}

TEST(Configurations, SpiralShape) {
  const auto cfg = spiral_configuration(0.3);
  const auto& p = cfg.positions;
  ASSERT_GE(p.size(), 10u);
  // A at origin, C at distance 1, B at distance 1.
  EXPECT_TRUE(geom::almost_equal(p[0], {0.0, 0.0}));
  EXPECT_NEAR(p[1].norm(), 1.0, 1e-9);
  EXPECT_NEAR(p[2].norm(), 1.0, 1e-9);
  // Unit edges along the tail.
  for (std::size_t i = 2; i + 1 < p.size(); ++i) {
    EXPECT_NEAR(p[i].distance_to(p[i + 1]), 1.0, 1e-9);
  }
  // Total chord sweep reached the 3*pi/8 target.
  EXPECT_GE(cfg.total_chord_angle, 3.0 * geom::kPi / 8.0);
  // Chord lengths grow by just under 1 per edge (paper §7.1's recurrence
  // d_i^2 = d_{i-1}^2 + 1 + 2 d_{i-1} cos(psi), d_0 = |AB| = 1), so
  // d_m in ((m+1)(1 - psi^2/2), m+1] for the m-th tail point.
  for (std::size_t i = 3; i < p.size(); ++i) {
    const double di = p[i].norm();
    const double m1 = static_cast<double>(i - 2) + 1.0;
    EXPECT_LE(di, m1 + 1e-9);
    EXPECT_GE(di, m1 * (1.0 - 0.3 * 0.3 / 2.0) - 1e-9);
  }
}

TEST(Configurations, SpiralScaling) {
  const auto cfg = spiral_configuration(0.3, 0.9);
  for (std::size_t i = 2; i + 1 < cfg.positions.size(); ++i) {
    EXPECT_NEAR(cfg.positions[i].distance_to(cfg.positions[i + 1]), 0.9, 1e-9);
  }
}

TEST(Configurations, SpiralRejectsBadPsi) {
  EXPECT_THROW(spiral_configuration(0.0), std::invalid_argument);
  EXPECT_THROW(spiral_configuration(0.6), std::invalid_argument);
}

TEST(Stats, BasicQuantities) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
  const ConfigurationStats s = configuration_stats(pts, 1.5);
  EXPECT_NEAR(s.diameter, std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(s.hull_perimeter, 4.0, 1e-9);
  EXPECT_NEAR(s.sec_radius, std::sqrt(2.0) / 2.0, 1e-9);
  EXPECT_NEAR(s.min_pairwise, 1.0, 1e-9);
  EXPECT_TRUE(s.connected);
}

TEST(Stats, AnalyzeConvergenceRun) {
  const algo::KknpsAlgorithm algo;
  sched::FSyncScheduler sched(4);
  core::EngineConfig config;
  config.visibility.radius = 1.0;
  config.error.random_rotation = false;
  core::Engine engine(line_configuration(4, 0.6), algo, sched, config);
  engine.run_until_converged(0.01, 100000);
  const ConvergenceReport rep = analyze(engine.trace(), 1.0, 0.01);
  EXPECT_TRUE(rep.converged);
  EXPECT_TRUE(rep.cohesive);
  EXPECT_GT(rep.rounds, 0u);
  EXPECT_GT(rep.rounds_to_halve, 0u);
  EXPECT_LE(rep.final_diameter, 0.01);
  EXPECT_NEAR(rep.initial_diameter, 1.8, 1e-9);
  EXPECT_LE(rep.worst_stretch, 1.0 + 1e-9);
}

TEST(Table, PrintAndCsv) {
  Table t({"a", "b"});
  t.add_row(1, 2.5);
  t.add_row("x", "y");
  std::ostringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  const std::string path = ::testing::TempDir() + "/cohesion_table_test.csv";
  t.write_csv(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2.5");
}

}  // namespace
}  // namespace cohesion::metrics
